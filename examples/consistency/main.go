// Consistency re-enacts the running example of the paper's Figure 2: a
// CON cache tracking the validity of two cached queries (g′ and g″) as
// the dataset absorbs an ADD, a UR, a DEL and a UA. g′ ends at exactly
// Figure 3(a)'s state, CGvalid(g′) = {G2}; g″ additionally demonstrates
// Algorithm 2's survival rule — its positive answers ride out the
// UA-exclusive change on G1, so its validity indicator stays full.
//
//	go run ./examples/consistency
package main

import (
	"fmt"
	"log"

	"gcplus"
)

const (
	A gcplus.Label = iota
	B
)

// mustQuery runs a subgraph query and dumps the cache state after it.
func mustQuery(sys *gcplus.System, q *gcplus.Graph, note string) {
	res, err := sys.SubgraphQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: answer=%v tests=%d/%d\n",
		note, res.IDs(), res.Stats().SubIsoTests, res.Stats().CandidatesBefore)
	for _, e := range sys.CacheEntries() {
		fmt.Printf("    cached %-3s answer=%v CGvalid=%v\n", e.Query, e.Answer, e.Valid)
	}
}

func main() {
	// T0: dataset {G0, G1, G2, G3}. G2 and G3 contain the pattern A-B-A;
	// G0 and G1 do not.
	g0 := gcplus.PathGraph(A, A)
	g1 := gcplus.PathGraph(B, A, A) // will gain an edge at T4 (UA)
	g2 := gcplus.CycleGraph(A, B, A, B)
	g3 := gcplus.PathGraph(A, B, A, B) // will lose an edge at T2 (UR)
	sys, err := gcplus.Open([]*gcplus.Graph{g0, g1, g2, g3}, gcplus.Options{
		Model:      gcplus.CON,
		CacheSize:  10,
		WindowSize: 1, // admit immediately so the timeline is visible
	})
	if err != nil {
		log.Fatal(err)
	}

	// T1: query g′ = A-B-A executes and enters the cache, valid on all
	// of {G0..G3}.
	gPrime := gcplus.PathGraph(A, B, A)
	gPrime.SetName("g'")
	fmt.Println("T1: execute g' = A-B-A")
	mustQuery(sys, gPrime, "  g'")

	// T2: the dataset changes — ADD G4, UR on G3. g′ has no clue about
	// G4, and its positive on G3 is no longer guaranteed (edge removal);
	// both bits must turn off at the next consistency point.
	fmt.Println("\nT2: ADD G4, UR G3 (remove one edge)")
	if _, err := sys.AddGraph(gcplus.PathGraph(A, B, A, B)); err != nil {
		log.Fatal(err)
	}
	if err := sys.RemoveEdge(3, 2, 3); err != nil {
		log.Fatal(err)
	}

	// T3: query g″ executes; the validator refreshed g′ first.
	gDouble := gcplus.PathGraph(A, B)
	gDouble.SetName("g\"")
	fmt.Println("\nT3: execute g\" = A-B")
	mustQuery(sys, gDouble, "  g\"")

	// T4: DEL G0, UA on G1. Both cached queries lose validity on G1
	// (g′ ⊄ G1 and g″'s relation may flip when edges are added), and G0
	// disappears entirely.
	fmt.Println("\nT4: DEL G0, UA G1 (add one edge)")
	if err := sys.DeleteGraph(0); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddEdge(1, 0, 2); err != nil {
		log.Fatal(err)
	}

	// T5: a new query triggers validation; the cache now shows the
	// Figure 3(a) state for g′. The new query g = A-B-A-B contains both
	// cached queries, so formulas (4)–(5) bound its candidate set by
	// their still-valid facts (here the bound is loose: both cached
	// answers cover nearly the whole live dataset).
	g := gcplus.PathGraph(A, B, A, B)
	g.SetName("g")
	fmt.Println("\nT5: execute g = A-B-A-B (bounded by g' and g\")")
	mustQuery(sys, g, "  g")

	fmt.Println("\nNote how validity bits only ever turn off unless the entry is")
	fmt.Println("re-executed: UA-exclusive changes preserve cached positives,")
	fmt.Println("UR-exclusive ones preserve cached negatives, everything else fades.")
}
