// Social models the paper's social-network motivation (§1): exploratory
// query sessions that "start off broad and become gradually narrower".
// Each community graph links people labelled by demographic; an analyst
// refines a pattern step by step, and GC+ turns the earlier, broader
// queries into pruning power for the narrower ones — while communities
// keep forming, dissolving and rewiring underneath.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gcplus"
)

// Demographic labels.
const (
	Student gcplus.Label = iota
	Engineer
	Artist
	Doctor
	Retired
)

var labelNames = []string{"Student", "Engineer", "Artist", "Doctor", "Retired"}

// community synthesizes one social group: a friendship tree plus random
// acquaintance links.
func community(rng *rand.Rand, people int) *gcplus.Graph {
	b := gcplus.NewGraphBuilder()
	seen := map[[2]int]bool{}
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			return
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	for i := 0; i < people; i++ {
		b.AddVertex(gcplus.Label(rng.Intn(len(labelNames))))
	}
	for i := 1; i < people; i++ {
		addEdge(i, rng.Intn(i))
	}
	for k := 0; k < people/2; k++ {
		addEdge(rng.Intn(people), rng.Intn(people))
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	rng := rand.New(rand.NewSource(7))
	var communities []*gcplus.Graph
	for i := 0; i < 120; i++ {
		g := community(rng, 8+rng.Intn(20))
		g.SetName(fmt.Sprintf("community-%d", i))
		communities = append(communities, g)
	}
	sys, err := gcplus.Open(communities, gcplus.Options{Method: "GQL"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d community graphs\n\n", sys.GraphCount())

	// The analyst session: each query refines the previous one by adding
	// a vertex+edge, so every earlier query contains... is contained in
	// the later ones — exactly the containment chain GC+ exploits.
	steps := []struct {
		note  string
		build func() *gcplus.Graph
	}{
		{"engineers who know students", func() *gcplus.Graph {
			return gcplus.PathGraph(Engineer, Student)
		}},
		{"…where the student also knows an artist", func() *gcplus.Graph {
			return gcplus.PathGraph(Engineer, Student, Artist)
		}},
		{"…and the artist knows a doctor", func() *gcplus.Graph {
			return gcplus.PathGraph(Engineer, Student, Artist, Doctor)
		}},
		{"…closing the engineer-doctor loop", func() *gcplus.Graph {
			return gcplus.CycleGraph(Engineer, Student, Artist, Doctor)
		}},
	}

	for round := 0; round < 2; round++ {
		if round == 1 {
			// The network evolves between sessions: a community folds,
			// another forms, friendships change.
			fmt.Println("\n-- the network evolves: one community dissolves, one forms, edges rewire --")
			if err := sys.DeleteGraph(3); err != nil {
				log.Fatal(err)
			}
			fresh := community(rng, 14)
			fresh.SetName("community-new")
			if _, err := sys.AddGraph(fresh); err != nil {
				log.Fatal(err)
			}
			for _, id := range sys.LiveIDs()[:5] {
				g := sys.Graph(id)
				if g.NumEdges() > 1 {
					e := g.EdgeList()[0]
					if err := sys.RemoveEdge(id, int(e.U), int(e.V)); err != nil {
						log.Fatal(err)
					}
				}
			}
			fmt.Println()
		}
		for _, step := range steps {
			res, err := sys.SubgraphQuery(step.build())
			if err != nil {
				log.Fatal(err)
			}
			st := res.Stats()
			fmt.Printf("%-42s -> %3d communities (tests %3d of %3d, hits %d/%d)\n",
				step.note, res.Len(), st.SubIsoTests, st.CandidatesBefore,
				st.ContainingHits, st.ContainedHits)
		}
	}

	m := sys.Metrics()
	fmt.Printf("\nsession totals: %d queries, %.0f of %.0f tests spared by the cache (%.0f%%)\n",
		m.Queries, m.TestsSaved.Sum(), m.TestsSaved.Sum()+m.SubIsoTests.Sum(),
		100*m.TestsSaved.Sum()/(m.TestsSaved.Sum()+m.SubIsoTests.Sum()))
}
