// Quickstart: open a GC+ system over a handful of labelled graphs, run
// subgraph queries, evolve the dataset, and watch the cache keep answers
// exact while sparing sub-iso tests.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gcplus"
)

// Labels for a toy chemistry: 0=C, 1=O, 2=N.
const (
	C gcplus.Label = iota
	O
	N
)

func main() {
	// A small dataset: three molecule-like graphs.
	ethanolish := gcplus.PathGraph(C, C, O) // C-C-O chain
	ring := gcplus.CycleGraph(C, C, C, C, C, O)
	amine := gcplus.StarGraph(N, C, C, C)
	ethanolish.SetName("chain")
	ring.SetName("ring")
	amine.SetName("amine")

	sys, err := gcplus.Open([]*gcplus.Graph{ethanolish, ring, amine}, gcplus.Options{
		Method: "VF2+", // Method M: the sub-iso verifier GC+ accelerates
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys)

	// Query 1: which graphs contain a C-O edge?
	co := gcplus.PathGraph(C, O)
	res, err := sys.SubgraphQuery(co)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C-O edge is contained in graphs %v (ran %d sub-iso tests)\n",
		res.IDs(), res.Stats().SubIsoTests)

	// Query 2: the same pattern again — an exact-match cache hit answers
	// it with zero sub-iso tests (§6.3 of the paper).
	res, err = sys.SubgraphQuery(co.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat query: %v, exact hit=%v, tests=%d\n",
		res.IDs(), res.Stats().ExactHit, res.Stats().SubIsoTests)

	// The dataset evolves: a new graph arrives, the chain loses its O.
	id, err := sys.AddGraph(gcplus.PathGraph(O, C, O))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("added graph %d (O-C-O)\n", id)
	if err := sys.RemoveEdge(0, 1, 2); err != nil { // chain: drop C-O edge
		log.Fatal(err)
	}
	fmt.Println("removed the C-O edge from graph 0")

	// Query 3: same pattern — the cache validates itself against the
	// change log first (CON model), so the answer reflects the changes.
	res, err = sys.SubgraphQuery(co.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after changes: %v (graph 0 gone, graph %d found; tests=%d of %d candidates)\n",
		res.IDs(), id, res.Stats().SubIsoTests, res.Stats().CandidatesBefore)

	// Supergraph queries work symmetrically: which graphs fit inside a
	// big template?
	template := gcplus.CliqueGraph(C, C, O, N)
	sup, err := sys.SupergraphQuery(template)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graphs contained in a C,C,O,N clique: %v\n", sup.IDs())

	m := sys.Metrics()
	fmt.Printf("\ntotals: %d queries, %.0f sub-iso tests, %.0f spared by the cache\n",
		m.Queries, m.SubIsoTests.Sum(), m.TestsSaved.Sum())
}
