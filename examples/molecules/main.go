// Molecules models the paper's biochemical motivation (§1): a screening
// pipeline over an AIDS-like molecule collection that keeps refreshing
// ("newly-translated, disregarded or transformed proteins"), queried with
// a hierarchy of growing fragments — "aminoacids, proteins, protein
// mixtures" — as subgraph queries, plus supergraph queries asking which
// catalogued fragments fit inside a candidate compound.
//
// The example runs the same screening session twice, once under the EVI
// consistency model and once under CON, and prints the benefit gap —
// a miniature of the paper's Figure 4.
//
//	go run ./examples/molecules
package main

import (
	"fmt"
	"log"

	"gcplus"
)

// screen runs the screening session and returns (tests run, tests spared).
func screen(model gcplus.Model) (float64, float64) {
	// A fresh, identical dataset per run: 300 AIDS-like molecules.
	mols, err := gcplus.GenerateAIDSLike(300, 11)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gcplus.Open(mols, gcplus.Options{Method: "VF2+", Model: model})
	if err != nil {
		log.Fatal(err)
	}

	// The fragment hierarchy: each probe extends the previous one, built
	// from the dataset's own most common labels so answers are non-empty.
	base := sys.Graph(0)
	l0, l1 := base.Label(0), base.Label(1)
	probes := []*gcplus.Graph{
		gcplus.PathGraph(l0, l1),
		gcplus.PathGraph(l0, l1, l0),
		gcplus.PathGraph(l0, l1, l0, l0),
		gcplus.CycleGraph(l0, l1, l0, l0),
		gcplus.CycleGraph(l0, l1, l0, l0, l1),
	}

	churn := 0
	for round := 0; round < 30; round++ {
		// Screening pass: the fragment hierarchy, smallest first.
		for _, p := range probes {
			if _, err := sys.SubgraphQuery(p.Clone()); err != nil {
				log.Fatal(err)
			}
		}
		// A candidate compound arrives; which catalogued fragments does
		// it contain? (supergraph query)
		candidate := sys.Graph(sys.LiveIDs()[round%sys.GraphCount()])
		if candidate != nil {
			if _, err := sys.SupergraphQuery(candidate.Clone()); err != nil {
				log.Fatal(err)
			}
		}
		// Every few rounds the collection refreshes: one compound is
		// re-examined (edge updates), one is retired, one arrives.
		if round%5 == 4 {
			ids := sys.LiveIDs()
			victim := ids[(round*7)%len(ids)]
			if g := sys.Graph(victim); g != nil && g.NumEdges() > 1 {
				e := g.EdgeList()[0]
				if err := sys.RemoveEdge(victim, int(e.U), int(e.V)); err != nil {
					log.Fatal(err)
				}
			}
			if err := sys.DeleteGraph(ids[(round*13+1)%len(ids)]); err == nil {
				churn++
			}
			if _, err := sys.AddGraph(mols[round%len(mols)].Clone()); err != nil {
				log.Fatal(err)
			}
			churn += 2
		}
	}

	m := sys.Metrics()
	fmt.Printf("  %s: %4d queries, %7.0f sub-iso tests run, %7.0f spared, %d exact hits, %d churn ops\n",
		model, m.Queries, m.SubIsoTests.Sum(), m.TestsSaved.Sum(), m.ExactHits, churn)
	return m.SubIsoTests.Sum(), m.TestsSaved.Sum()
}

func main() {
	fmt.Println("screening 300 AIDS-like molecules with a fragment hierarchy under churn:")
	eviTests, _ := screen(gcplus.EVI)
	conTests, _ := screen(gcplus.CON)
	fmt.Printf("\nCON ran %.1f× fewer sub-iso tests than EVI on the same session\n",
		eviTests/conTests)
	fmt.Println("(EVI forgets everything at each refresh; CON only forgets what the refresh touched)")
}
