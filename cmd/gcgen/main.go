// Command gcgen generates the artifacts the evaluation consumes: an
// AIDS-like synthetic dataset, a Type A or Type B query workload over a
// dataset, or a dataset change plan, all written as files.
//
// Usage:
//
//	gcgen dataset  -n 1200 -seed 1 -out data.txt
//	gcgen workload -dataset data.txt -kind ZZ -queries 600 -seed 2 -out queries.txt
//	gcgen workload -dataset data.txt -kind 20% -queries 600 -out queries.txt
//	gcgen plan     -queries 600 -seed 3 -out plan.json
//
// Datasets and workloads use the text graph format ("t/v/e" records);
// plans are JSON. gcquery executes the three together.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gcplus/internal/bench"
	"gcplus/internal/changeplan"
	"gcplus/internal/graph"
	"gcplus/internal/synthetic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "dataset":
		genDataset(os.Args[2:])
	case "workload":
		genWorkload(os.Args[2:])
	case "plan":
		genPlan(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gcgen dataset|workload|plan [flags]")
	os.Exit(2)
}

func genDataset(args []string) {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	n := fs.Int("n", 1200, "number of graphs")
	seed := fs.Int64("seed", 1, "generator seed")
	meanV := fs.Float64("mean-vertices", 45, "mean vertices per graph")
	out := fs.String("out", "", "output file (default stdout)")
	_ = fs.Parse(args)

	cfg := synthetic.Default().WithGraphs(*n)
	cfg.Seed = *seed
	cfg.MeanVertices = *meanV
	gs, err := synthetic.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := openOut(*out)
	defer w.Close()
	if err := graph.Write(w, gs); err != nil {
		fatal(err)
	}
}

func genWorkload(args []string) {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	datasetPath := fs.String("dataset", "", "dataset file (required)")
	kind := fs.String("kind", "ZZ", "workload: ZZ, ZU, UU, 0%, 20%, 50%")
	queries := fs.Int("queries", 600, "number of queries")
	seed := fs.Int64("seed", 2, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	_ = fs.Parse(args)
	if *datasetPath == "" {
		fatal(fmt.Errorf("-dataset is required"))
	}
	f, err := os.Open(*datasetPath)
	if err != nil {
		fatal(err)
	}
	gs, err := graph.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	spec, err := bench.SpecByName(*kind)
	if err != nil {
		fatal(err)
	}
	sc := bench.ScaleRepro()
	sc.Queries = *queries
	wl, err := spec.Generate(gs, sc, *seed)
	if err != nil {
		fatal(err)
	}
	w := openOut(*out)
	defer w.Close()
	if err := graph.Write(w, wl.Queries); err != nil {
		fatal(err)
	}
}

func genPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	queries := fs.Int("queries", 600, "workload length the plan spans")
	batches := fs.Int("batches", 0, "number of batches (default: paper density)")
	ops := fs.Int("ops", 20, "operations per batch")
	seed := fs.Int64("seed", 3, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	_ = fs.Parse(args)

	cfg := changeplan.Scaled(*queries, *seed)
	if *batches > 0 {
		cfg.Batches = *batches
	}
	cfg.OpsPerBatch = *ops
	plan, err := changeplan.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := openOut(*out)
	defer w.Close()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(plan); err != nil {
		fatal(err)
	}
}

func openOut(path string) *os.File {
	if path == "" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcgen:", err)
	os.Exit(1)
}
