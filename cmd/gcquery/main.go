// Command gcquery executes a query workload against a dataset through
// GC+, optionally replaying a change plan as the workload advances, and
// reports per-query answers plus the aggregate benefit/overhead metrics.
//
// Usage:
//
//	gcquery -dataset data.txt -queries queries.txt
//	gcquery -dataset data.txt -queries queries.txt -plan plan.json -model EVI
//	gcquery -dataset data.txt -queries queries.txt -mode super -method GQL -quiet
//
// Files come from gcgen (or any producer of the text graph format).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gcplus/internal/bench"
	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
)

func main() {
	var (
		datasetPath = flag.String("dataset", "", "dataset file (required)")
		queriesPath = flag.String("queries", "", "workload file (required)")
		planPath    = flag.String("plan", "", "change plan JSON (optional)")
		mode        = flag.String("mode", "sub", "query mode: sub or super")
		method      = flag.String("method", "VF2", "Method M: VF2, VF2+ or GQL")
		model       = flag.String("model", "CON", "cache model: CON, EVI or OFF")
		policy      = flag.String("policy", "HD", "replacement policy")
		capacity    = flag.Int("cache", 100, "cache capacity")
		window      = flag.Int("window", 20, "admission window size")
		seed        = flag.Int64("seed", 4, "change-plan execution seed")
		quiet       = flag.Bool("quiet", false, "suppress per-query output")
	)
	flag.Parse()
	if *datasetPath == "" || *queriesPath == "" {
		fmt.Fprintln(os.Stderr, "gcquery: -dataset and -queries are required")
		os.Exit(2)
	}

	initial := mustParse(*datasetPath)
	queries := mustParse(*queriesPath)
	ds := dataset.New(initial)

	algo, err := subiso.New(*method)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Algorithm: algo}
	if *model != "OFF" {
		m, err := cache.ParseModel(*model)
		if err != nil {
			fatal(err)
		}
		p, err := cache.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		opts.Cache = &cache.Config{Capacity: *capacity, WindowSize: *window, Model: m, Policy: p}
	}
	rt, err := core.NewRuntime(ds, opts)
	if err != nil {
		fatal(err)
	}

	var exec *changeplan.Executor
	if *planPath != "" {
		f, err := os.Open(*planPath)
		if err != nil {
			fatal(err)
		}
		var plan changeplan.Plan
		if err := json.NewDecoder(f).Decode(&plan); err != nil {
			fatal(fmt.Errorf("parse plan: %w", err))
		}
		f.Close()
		exec = changeplan.NewExecutor(&plan, initial, *seed)
	}

	for i, q := range queries {
		if exec != nil {
			if n := exec.ApplyDue(ds, i); n > 0 && !*quiet {
				fmt.Printf("# applied %d dataset changes before query %d\n", n, i)
			}
		}
		var (
			res *core.Result
			err error
		)
		if *mode == "super" {
			res, err = rt.SupergraphQuery(q)
		} else {
			res, err = rt.SubgraphQuery(q)
		}
		if err != nil {
			fatal(fmt.Errorf("query %d: %w", i, err))
		}
		if !*quiet {
			fmt.Printf("%s -> %d graphs %v (tests=%d/%d, %.2fms)\n",
				q.Name(), res.Answer.Count(), res.AnswerIDs(),
				res.Stats.SubIsoTests, res.Stats.CandidatesBefore,
				res.Stats.QueryTime.Seconds()*1000)
		}
	}
	fmt.Printf("\nSummary: %s\n", bench.MetricsSummary(rt.Metrics()))
}

func mustParse(path string) []*graph.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	gs, err := graph.Parse(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return gs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcquery:", err)
	os.Exit(1)
}
