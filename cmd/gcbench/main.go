// Command gcbench regenerates the evaluation of "Ensuring Consistency in
// Graph Cache for Graph-Pattern Queries" (EDBT 2017): Figures 4–6, the
// §7.2 insight statistics, and the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	gcbench -figure all                 # Figures 4, 5 and 6 at repro scale
//	gcbench -figure 4 -scale smoke      # quick pass
//	gcbench -insights                   # §7.2 exact/sub/super hit stats
//	gcbench -ablation all               # policies, cache sizes, validity, churn
//	gcbench -figure all -scale paper    # full 40k × 10k run (hours)
//	gcbench -throughput -shards 8 -clients 16   # concurrent serving summary
//	gcbench -throughput -update-kind churn -update-every 10 -eager         # repair on
//	gcbench -throughput -update-kind churn -update-every 10 -eager -norepair  # baseline
//	gcbench -throughput -cache 2000 -queries 5000 -update-every 0             # large cache, query index on
//	gcbench -throughput -cache 2000 -queries 5000 -update-every 0 -hit-index=false  # linear-scan baseline
//	gcbench -throughput -planner                 # cost-based planner + plan cache on
//	gcbench -throughput -planner -plan-cache -1  # planning on, plan caching off
//	gcbench -warm-restart -scale smoke           # durability: recovery vs cold start
//	gcbench -throughput -burst 32 -max-inflight-queries 8   # flash crowd vs admission control
//	gcbench -throughput -trace-overhead          # tracing cost: untraced vs fully-sampled qps
//	gcbench -chaos -scale smoke                  # fault-injected soak + crash + warm restart
//	gcbench -chaos -wal-policy degrade-to-volatile
//
// The -warm-restart mode exercises the durability subsystem end to end:
// it warms a persistent server under churn, forces a snapshot, lands
// more churn in the WAL tail, kills the server without flushing, then
// measures recovery time, time-to-full-validity (background repair
// re-verifying replay-touched bits), and the recovered instance's hit
// rate over a repeat of the stream against both the pre-restart
// instance and a cold start — asserting the answers are bit-identical.
//
// The -throughput mode drives the sharded serving front-end (the system
// behind cmd/gcserve) with concurrent clients and a live update stream,
// and emits a JSON summary (queries/sec, p50/p95/p99 latency) so serving
// performance has a trajectory to compare across changes. With
// -update-kind churn the writer toggles edges of existing graphs (UA/UR)
// instead of adding new ones — the update-heavy scenario in which the
// background cache-repair pipeline recovers the validity ratio and hit
// rate that invalidation would otherwise bleed away; compare against a
// -norepair run on the same seed.
//
// The -burst flag turns a -throughput run into a flash-crowd scenario:
// N extra query clients spin up for the middle third of the run and the
// summary gains the shed rate, degraded-mode seconds and the p99 split
// into before/during/after the spike — the overload-resilience numbers
// (see README "Operating under failure").
//
// The -chaos mode is the fault-injection harness end to end: WAL and
// snapshot I/O fail, tear and stall on a seeded schedule while a query
// stream with interleaved churn runs; the server is then killed
// abruptly and warm-restarted, and every answer digest is compared
// against a fault-free reference replica. The JSON includes the full
// fault schedule, so a failing CI run is replayable from the artifact.
//
// Absolute times depend on the host; the speedup shapes are what
// reproduce the paper (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gcplus/internal/bench"
)

func main() {
	var (
		scaleName = flag.String("scale", "repro", "experiment scale: smoke, repro or paper")
		figure    = flag.String("figure", "", "figure to regenerate: 4, 5, 6 or all")
		insights  = flag.Bool("insights", false, "print the §7.2 insight statistics")
		ablation  = flag.String("ablation", "", "ablation study: policy, cachesize, validity, changerate or all")
		methods   = flag.String("methods", "VF2,VF2+,GQL", "comma-separated Method M list")
		workloads = flag.String("workloads", "", "comma-separated workload list (default all six)")
		seed      = flag.Int64("seed", 42, "experiment seed")
		verbose   = flag.Bool("v", false, "print per-run progress")

		throughput  = flag.Bool("throughput", false, "run the concurrent-serving throughput benchmark (JSON output)")
		shards      = flag.Int("shards", 4, "throughput: server shard count")
		clients     = flag.Int("clients", 8, "throughput: concurrent query clients")
		tpQueries   = flag.Int("queries", 0, "throughput: total queries (default scale's query count)")
		updateEvery = flag.Int("update-every", 50, "throughput: apply an update batch every N queries (0 disables)")
		eager       = flag.Bool("eager", false, "throughput: validate shard caches at update time")
		nocache     = flag.Bool("nocache", false, "throughput: serve through raw Method M")
		verifyPar   = flag.Int("verify-parallelism", 0, "throughput: per-shard intra-query verification workers (0 = auto: GOMAXPROCS/shards, 1 = sequential)")
		updateKind  = flag.String("update-kind", "add", "throughput: update stream shape: add (live ingest) or churn (UA/UR edge toggles on existing graphs)")
		repairPar   = flag.Int("repair-parallelism", 0, "throughput: per-shard background cache-repair workers (0 = default of 1)")
		norepair    = flag.Bool("norepair", false, "throughput: disable background cache repair (baseline for the churn scenario)")
		cacheCap    = flag.Int("cache", 0, "throughput: per-shard cache capacity (0 = scale default; the query index targets 2000-10000)")
		hitIndex    = flag.Bool("hit-index", true, "throughput: maintain the cache query index for sub-linear hit discovery (false = linear scan baseline)")
		burst       = flag.Int("burst", 0, "throughput: flash-crowd mode — N extra query clients for the middle third of the run (0 disables)")
		maxInflight = flag.Int("max-inflight-queries", 0, "throughput: server admission limit on concurrent queries (0 = serving default, negative = unlimited)")
		planner     = flag.Bool("planner", false, "throughput: enable the cost-based query planner + compiled-plan cache (answers stay bit-identical to -planner=false)")
		planCache   = flag.Int("plan-cache", 0, "throughput: per-shard compiled-plan cache size (0 = default of 256, negative = planning without plan caching; needs -planner)")
		transport   = flag.String("transport", "local", "throughput/chaos/warm-restart: router→shard transport: local (in-process) or loopback (full wire path over 127.0.0.1 TCP)")
		traceRate   = flag.Float64("trace-sample-rate", 0, "throughput: distributed-tracing head-sample rate for the run (0 = tracing off, the benchmark default)")
		traceOver   = flag.Bool("trace-overhead", false, "throughput: rerun with every request traced and report the qps delta as trace_overhead (answers must stay bit-identical)")

		chaos     = flag.Bool("chaos", false, "run the chaos benchmark: fault-injected WAL/snapshot I/O under load, abrupt kill, warm restart, differential answer check (JSON output)")
		walPolicy = flag.String("wal-policy", "", "chaos: WAL append-failure policy: fail-update (default) or degrade-to-volatile")

		warmRestart = flag.Bool("warm-restart", false, "run the durability warm-restart benchmark: time-to-full-validity and hit-rate-at-t after crash recovery vs a cold start (JSON output)")
		dataDir     = flag.String("data-dir", "", "warm-restart/chaos: durability directory (default: a fresh temp dir, removed after)")
		tailBatches = flag.Int("tail-batches", 0, "warm-restart: churn batches applied after the snapshot, i.e. the WAL tail replayed on recovery (0 = default)")
	)
	flag.Parse()
	if *figure == "" && !*insights && *ablation == "" && !*throughput && !*warmRestart && !*chaos {
		*figure = "all"
	}

	sc, err := bench.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	progress := bench.Progress(nil)
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	methodList := splitList(*methods)
	var specs []bench.WorkloadSpec
	for _, name := range splitList(*workloads) {
		spec, err := bench.SpecByName(name)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, spec)
	}

	if *throughput {
		var spec bench.WorkloadSpec // zero value: RunThroughput's default
		if len(specs) > 0 {
			spec = specs[0]
		}
		res, err := bench.RunThroughput(bench.ThroughputConfig{
			Scale:              sc,
			Workload:           spec,
			Method:             methodList[0],
			Shards:             *shards,
			Clients:            *clients,
			Queries:            *tpQueries,
			UpdateEvery:        *updateEvery,
			UpdateKind:         *updateKind,
			EagerValidate:      *eager,
			DisableCache:       *nocache,
			VerifyParallelism:  *verifyPar,
			RepairParallelism:  *repairPar,
			DisableRepair:      *norepair,
			CacheCapacity:      *cacheCap,
			DisableHitIndex:    !*hitIndex,
			BurstClients:       *burst,
			MaxInFlightQueries: *maxInflight,
			EnablePlanner:      *planner,
			PlanCacheSize:      *planCache,
			Transport:          *transport,
			TraceSampleRate:    *traceRate,
			TraceOverhead:      *traceOver,
			Seed:               *seed,
		}, progress)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteThroughputJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
	}
	if *warmRestart {
		var spec bench.WorkloadSpec
		if len(specs) > 0 {
			spec = specs[0]
		}
		res, err := bench.RunWarmRestart(bench.WarmRestartConfig{
			Scale:         sc,
			Workload:      spec,
			Method:        methodList[0],
			Shards:        *shards,
			Queries:       *tpQueries,
			CacheCapacity: *cacheCap,
			UpdateEvery:   *updateEvery,
			TailBatches:   *tailBatches,
			DataDir:       *dataDir,
			Transport:     *transport,
			Seed:          *seed,
		}, progress)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteWarmRestartJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
	}
	if *chaos {
		var spec bench.WorkloadSpec
		if len(specs) > 0 {
			spec = specs[0]
		}
		res, err := bench.RunChaos(bench.ChaosConfig{
			Scale:         sc,
			Workload:      spec,
			Method:        methodList[0],
			Shards:        *shards,
			Queries:       *tpQueries,
			CacheCapacity: *cacheCap,
			UpdateEvery:   *updateEvery,
			WALPolicy:     *walPolicy,
			DataDir:       *dataDir,
			Transport:     *transport,
			Seed:          *seed,
		}, progress)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteChaosJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
	}
	if *figure != "" {
		runFigures(*figure, sc, *seed, methodList, specs, progress)
	}
	if *insights {
		rows, err := bench.RunInsights(sc, *seed, methodList[0], progress)
		if err != nil {
			fatal(err)
		}
		bench.PrintInsights(os.Stdout, rows)
	}
	if *ablation != "" {
		runAblations(*ablation, sc, *seed, methodList[0], progress)
	}
}

func runFigures(figure string, sc bench.Scale, seed int64, methods []string, specs []bench.WorkloadSpec, progress bench.Progress) {
	switch figure {
	case "4", "5", "6", "all":
	default:
		fatal(fmt.Errorf("unknown figure %q (want 4, 5, 6 or all)", figure))
	}
	// Figures 5 and 6 need only one method; Figure 4 needs all three.
	if figure == "5" || figure == "6" {
		methods = methods[:1]
	}
	m, err := bench.RunMatrix(sc, seed, methods, specs, progress)
	if err != nil {
		fatal(err)
	}
	if err := m.VerifyIndependence(); err != nil {
		fmt.Fprintf(os.Stderr, "WARNING: %v\n", err)
	}
	if figure == "4" || figure == "all" {
		m.Figure4(os.Stdout)
		fmt.Println()
	}
	if figure == "5" || figure == "all" {
		m.Figure5(os.Stdout)
		fmt.Println()
	}
	if figure == "6" || figure == "all" {
		m.Figure6(os.Stdout)
		fmt.Println()
	}
}

func runAblations(which string, sc bench.Scale, seed int64, method string, progress bench.Progress) {
	spec, _ := bench.SpecByName("ZZ")
	type study struct {
		name string
		run  func() ([]bench.AblationRow, error)
	}
	studies := []study{
		{"Ablation: replacement policies (CON, ZZ)", func() ([]bench.AblationRow, error) {
			return bench.RunPolicyAblation(sc, seed, method, spec, progress)
		}},
		{"Ablation: cache capacity (CON, ZZ)", func() ([]bench.AblationRow, error) {
			return bench.RunCacheSizeAblation(sc, seed, method, spec, nil, progress)
		}},
		{"Ablation: Algorithm 2 validity optimizations (CON, ZZ)", func() ([]bench.AblationRow, error) {
			return bench.RunValidityAblation(sc, seed, method, spec, progress)
		}},
		{"Ablation: dataset change rate (ZZ)", func() ([]bench.AblationRow, error) {
			return bench.RunChangeRateAblation(sc, seed, method, spec, progress)
		}},
	}
	selected := map[string]int{"policy": 0, "cachesize": 1, "validity": 2, "changerate": 3}
	if which != "all" {
		idx, ok := selected[which]
		if !ok {
			fatal(fmt.Errorf("unknown ablation %q", which))
		}
		studies = studies[idx : idx+1]
	}
	for _, s := range studies {
		rows, err := s.run()
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, s.name, rows)
		fmt.Println()
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcbench:", err)
	os.Exit(1)
}
