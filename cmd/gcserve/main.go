// Command gcserve is the GC+ query-serving daemon: a sharded, concurrent
// HTTP front-end over the semantic graph cache. Queries fan out to N
// runtime shards (each with its own partition, cache and CON/EVI
// consistency machinery) while dataset updates flow through an
// epoch-sequenced single-writer path, so every answer reflects one
// consistent dataset version.
//
// With -data-dir the daemon is durable: update batches are written to a
// per-shard WAL and dataset + cache state is snapshotted periodically,
// so a restart warm-starts from the persisted state (the dataset flags
// are only used when the directory holds no state yet) with every
// warmed cache entry intact. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight requests drain, shard queues flush, and a final
// snapshot is written before the process exits 0.
//
// Usage:
//
//	gcserve -synthetic 2000 -shards 8            # serve a generated dataset
//	gcserve -dataset graphs.txt -model EVI       # serve graphs from a file
//	gcserve -synthetic 2000 -data-dir /var/lib/gcplus   # durable serving
//	gcserve -data-dir /var/lib/gcplus            # warm restart from state
//
// API:
//
//	POST /query?kind=sub|super    body: one graph in the text codec
//	     &trace=1                 include the per-shard stage trace
//	     &limit=N                 return the N smallest answer ids (exact
//	                              prefix; "truncated" marks a cut)
//	POST /update                  body: {"ops":[{"op":"ADD","graph":"..."},
//	                                            {"op":"DEL","id":3},
//	                                            {"op":"UA","id":2,"u":0,"v":1}]}
//	GET  /stats                   server + per-shard statistics
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness probe
//	GET  /readyz                  readiness probe (repair backlog gated)
//	GET  /debug/slowlog           slow-query log (-slowlog-threshold)
//	GET  /debug/traces            retained distributed traces (sampled +
//	                              anomalous); /debug/traces/{id} expands
//	                              one span tree
//
// Observability:
//
//	-slowlog-threshold 50ms       capture queries at/above 50ms wall time
//	-trace-sample-rate 0.01       head-sample this fraction of requests
//	                              into /debug/traces (anomalous requests
//	                              are always retained; negative = off)
//	-pprof-addr localhost:6060    serve net/http/pprof on a side listener
//	-log-json                     structured logs as JSON lines
//
// Resilience (see README "Operating under failure"):
//
//	-query-timeout 2s             per-query deadline (504 when exceeded)
//	-update-timeout 10s           per-update-batch deadline
//	-max-inflight-queries 64      admission limit before shedding with 429
//	-max-inflight-updates 16      same for update batches
//	-wal-policy fail-update       or degrade-to-volatile
//	-nodegrade                    disable graceful degradation under load
//
// Example:
//
//	printf 't q\nv 0 1\nv 1 2\ne 0 1\n' | curl -s --data-binary @- \
//	    'localhost:8844/query?kind=sub'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the side listener only (-pprof-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcplus"
	"gcplus/internal/cache"
	"gcplus/internal/persist"
)

func main() {
	var (
		addr      = flag.String("addr", ":8844", "listen address")
		shards    = flag.Int("shards", 4, "number of runtime shards")
		datafile  = flag.String("dataset", "", "initial dataset file (text codec); mutually exclusive with -synthetic")
		synthN    = flag.Int("synthetic", 0, "generate an AIDS-like synthetic dataset of this many graphs")
		seed      = flag.Int64("seed", 42, "synthetic dataset seed")
		method    = flag.String("method", "VF2", "Method M verifier: VF2, VF2+ or GQL")
		modelName = flag.String("model", "CON", "cache consistency model: CON or EVI")
		policy    = flag.String("policy", "HD", "cache replacement policy: HD, PIN, PINC, LRU or LFU")
		cacheCap  = flag.Int("cache", 100, "per-shard cache capacity")
		window    = flag.Int("window", 20, "per-shard admission window size")
		nocache   = flag.Bool("nocache", false, "disable GC+ caching (raw Method M baseline)")
		eager     = flag.Bool("eager", false, "validate caches at update time instead of lazily at query time")
		verifyPar = flag.Int("verify-parallelism", 0, "per-shard intra-query verification workers (0 = auto: GOMAXPROCS/shards, 1 = sequential)")
		hitIndex  = flag.Bool("hit-index", true, "maintain the cache query index for sub-linear hit discovery (false = linear scan reference)")
		planner   = flag.Bool("planner", false, "enable the cost-based query planner + compiled-plan cache (per-query algorithm choice; answers unchanged)")
		planCache = flag.Int("plan-cache", 0, "per-shard compiled-plan cache size (0 = default of 256, negative = planning without plan caching; needs -planner)")
		repairPar = flag.Int("repair-parallelism", 0, "per-shard background cache-repair workers (0 = default of 1)")
		norepair  = flag.Bool("norepair", false, "disable background cache repair (invalidated bits stay dead until a query re-verifies them)")
		dataDir   = flag.String("data-dir", "", "durability directory: WAL + snapshots for crash-safe warm restarts (empty = no persistence)")
		snapEvery = flag.Int("snapshot-every", 0, "update batches between automatic snapshots (0 = default; needs -data-dir)")
		nowal     = flag.Bool("nowal", false, "disable the write-ahead log, keeping snapshots only (a crash loses batches since the last snapshot)")
		slowThr   = flag.Duration("slowlog-threshold", 0, "capture queries at/above this wall time into GET /debug/slowlog (0 = off)")
		slowSize  = flag.Int("slowlog-size", 0, "slow-query ring capacity (0 = default of 128)")
		traceRate = flag.Float64("trace-sample-rate", 0, "fraction of requests head-sampled into GET /debug/traces (0 = default of 0.01, negative = tracing off; anomalous requests are always retained)")
		traceSize = flag.Int("trace-store-size", 0, "retained-trace ring capacity (0 = default of 256)")
		readyMax  = flag.Int("ready-max-pending", 0, "readyz threshold: 503 while more invalidated pairs than this await repair (0 = default, negative = require empty backlog)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this side listener (e.g. localhost:6060; empty = off)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")

		queryTimeout  = flag.Duration("query-timeout", 2*time.Second, "per-query deadline; exceeding it returns 504 (0 = no deadline)")
		updateTimeout = flag.Duration("update-timeout", 10*time.Second, "per-update-batch deadline; expiring before application returns 504 with nothing applied (0 = no deadline)")
		maxQueries    = flag.Int("max-inflight-queries", 0, "admitted concurrent queries before shedding with 429 (0 = default of 64, negative = unlimited)")
		maxUpdates    = flag.Int("max-inflight-updates", 0, "admitted concurrent update batches before shedding with 429 (0 = default of 16, negative = unlimited)")
		walPolicy     = flag.String("wal-policy", "fail-update", "WAL append-failure policy: fail-update (503 the batch) or degrade-to-volatile (ack and raise the volatile-WAL alarm)")
		transport     = flag.String("transport", "local", "router→shard transport: local (in-process) or loopback (each shard behind its own 127.0.0.1 TCP connection; the cluster seed)")
		nodegrade     = flag.Bool("nodegrade", false, "disable graceful degradation under overload (no verify capping or cache bypass)")
	)
	flag.Parse()

	logger := newLogger(*logJSON)

	haveState := *dataDir != "" && persist.HasState(*dataDir)
	initial, err := loadDataset(*datafile, *synthN, *seed, haveState)
	if err != nil {
		fatal(logger, "dataset load failed", err)
	}
	if haveState {
		// The shard partition is baked into the persisted state; adopt
		// its count so a bare `gcserve -data-dir DIR` restart just works.
		if n, ok := persist.StateShards(*dataDir); ok && n != *shards {
			logger.Warn("overriding -shards with persisted partition count",
				"data_dir", *dataDir, "persisted_shards", n, "flag_shards", *shards)
			*shards = n
		}
	}

	opts := gcplus.ServeOptions{Shards: *shards, EagerValidate: *eager}
	opts.Method = *method
	opts.CacheSize = *cacheCap
	opts.WindowSize = *window
	opts.DisableCache = *nocache
	opts.VerifyParallelism = *verifyPar
	opts.RepairParallelism = *repairPar
	opts.DisableRepair = *norepair
	opts.DisableHitIndex = !*hitIndex
	opts.EnablePlanner = *planner
	opts.PlanCacheSize = *planCache
	opts.DataDir = *dataDir
	opts.SnapshotEvery = *snapEvery
	opts.DisableWAL = *nowal
	opts.SlowLogThreshold = *slowThr
	opts.SlowLogSize = *slowSize
	opts.TraceSampleRate = *traceRate
	opts.TraceStoreSize = *traceSize
	opts.ReadyMaxPendingRepairs = *readyMax
	opts.QueryTimeout = *queryTimeout
	opts.UpdateTimeout = *updateTimeout
	opts.MaxInFlightQueries = *maxQueries
	opts.MaxInFlightUpdates = *maxUpdates
	opts.WALPolicy = *walPolicy
	opts.DisableDegradation = *nodegrade
	opts.Transport = *transport
	opts.Logger = logger
	if opts.Model, err = cache.ParseModel(*modelName); err != nil {
		fatal(logger, "bad -model", err)
	}
	if opts.Policy, err = cache.ParsePolicy(*policy); err != nil {
		fatal(logger, "bad -policy", err)
	}

	srv, err := gcplus.NewServer(initial, opts)
	if err != nil {
		fatal(logger, "server construction failed", err)
	}

	// Repair only runs for CON caches and the query index only exists
	// when a cache does; report the resolved states, not the raw flags.
	repairOn := !*norepair && !*nocache && opts.Model == cache.ModelCON
	hitIndexOn := *hitIndex && !*nocache
	if entries, epoch, ok := srv.Recovered(); ok {
		logger.Info("warm restart", "data_dir", *dataDir, "cache_entries", entries, "epoch", epoch)
	}
	st, err := srv.Stats()
	if err != nil {
		fatal(logger, "stats failed", err)
	}
	logger.Info("serving",
		"addr", *addr, "graphs", st.LiveGraphs, "shards", srv.Shards(),
		"method", *method, "model", *modelName, "policy", *policy,
		"cache", *cacheCap, "eager", *eager, "repair", repairOn,
		"hit_index", hitIndexOn, "planner", *planner, "durable", *dataDir != "",
		"wal_policy", *walPolicy, "transport", *transport,
		"query_timeout", queryTimeout.String(),
		"max_inflight_queries", *maxQueries,
		"slowlog_threshold", slowThr.String())

	// Listener timeouts: a slow or stalled client must never hold a
	// connection (and its admission slot) forever. The write timeout
	// tracks the configured request deadlines so a legitimately long
	// query is not cut off mid-response by the transport.
	writeTimeout := 30 * time.Second
	for _, d := range []time.Duration{*queryTimeout, *updateTimeout} {
		if d > 0 && d+5*time.Second > writeTimeout {
			writeTimeout = d + 5*time.Second
		}
	}

	// The pprof side listener serves http.DefaultServeMux (where the
	// net/http/pprof import registers) so the profiling surface never
	// leaks onto the public API mux. Profile captures stream for tens
	// of seconds, so its write timeout is generous rather than tight.
	if *pprofAddr != "" {
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           nil, // DefaultServeMux
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			logger.Info("pprof listener up", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
	}

	// Graceful shutdown: SIGINT/SIGTERM stop the listener, drain
	// in-flight requests, then Close flushes shard queues, the WAL and
	// a final snapshot before the process exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.Close()
		fatal(logger, "listener failed", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down (signal received)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := srv.Close(); err != nil {
		// The daemon is down either way, but the final snapshot did not
		// land; exit non-zero so supervisors notice the degraded flush.
		fatal(logger, "final flush failed (previous snapshot + WAL remain)", err)
	}
	logger.Info("state flushed, bye")
}

// newLogger builds the process logger: text for humans by default,
// JSON lines under -log-json for log pipelines.
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func loadDataset(file string, synthN int, seed int64, haveState bool) ([]*gcplus.Graph, error) {
	switch {
	case file != "" && synthN > 0:
		return nil, fmt.Errorf("-dataset and -synthetic are mutually exclusive")
	case haveState:
		// Recovery replaces the initial dataset entirely; don't spend
		// boot time parsing or synthesizing graphs recovery will drop
		// (restart units routinely keep the first boot's dataset flags).
		return nil, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gcplus.ParseGraphs(f)
	case synthN > 0:
		return gcplus.GenerateAIDSLike(synthN, seed)
	}
	return nil, errors.New("provide -dataset FILE or -synthetic N (or -data-dir with existing state)")
}
