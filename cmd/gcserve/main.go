// Command gcserve is the GC+ query-serving daemon: a sharded, concurrent
// HTTP front-end over the semantic graph cache. Queries fan out to N
// runtime shards (each with its own partition, cache and CON/EVI
// consistency machinery) while dataset updates flow through an
// epoch-sequenced single-writer path, so every answer reflects one
// consistent dataset version.
//
// Usage:
//
//	gcserve -synthetic 2000 -shards 8            # serve a generated dataset
//	gcserve -dataset graphs.txt -model EVI       # serve graphs from a file
//
// API:
//
//	POST /query?kind=sub|super    body: one graph in the text codec
//	POST /update                  body: {"ops":[{"op":"ADD","graph":"..."},
//	                                            {"op":"DEL","id":3},
//	                                            {"op":"UA","id":2,"u":0,"v":1}]}
//	GET  /stats                   server + per-shard statistics
//
// Example:
//
//	printf 't q\nv 0 1\nv 1 2\ne 0 1\n' | curl -s --data-binary @- \
//	    'localhost:8844/query?kind=sub'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"gcplus"
	"gcplus/internal/cache"
)

func main() {
	var (
		addr      = flag.String("addr", ":8844", "listen address")
		shards    = flag.Int("shards", 4, "number of runtime shards")
		datafile  = flag.String("dataset", "", "initial dataset file (text codec); mutually exclusive with -synthetic")
		synthN    = flag.Int("synthetic", 0, "generate an AIDS-like synthetic dataset of this many graphs")
		seed      = flag.Int64("seed", 42, "synthetic dataset seed")
		method    = flag.String("method", "VF2", "Method M verifier: VF2, VF2+ or GQL")
		modelName = flag.String("model", "CON", "cache consistency model: CON or EVI")
		policy    = flag.String("policy", "HD", "cache replacement policy: HD, PIN, PINC, LRU or LFU")
		cacheCap  = flag.Int("cache", 100, "per-shard cache capacity")
		window    = flag.Int("window", 20, "per-shard admission window size")
		nocache   = flag.Bool("nocache", false, "disable GC+ caching (raw Method M baseline)")
		eager     = flag.Bool("eager", false, "validate caches at update time instead of lazily at query time")
		verifyPar = flag.Int("verify-parallelism", 0, "per-shard intra-query verification workers (0 = auto: GOMAXPROCS/shards, 1 = sequential)")
		hitIndex  = flag.Bool("hit-index", true, "maintain the cache query index for sub-linear hit discovery (false = linear scan reference)")
		repairPar = flag.Int("repair-parallelism", 0, "per-shard background cache-repair workers (0 = default of 1)")
		norepair  = flag.Bool("norepair", false, "disable background cache repair (invalidated bits stay dead until a query re-verifies them)")
	)
	flag.Parse()

	initial, err := loadDataset(*datafile, *synthN, *seed)
	if err != nil {
		log.Fatal("gcserve: ", err)
	}

	opts := gcplus.ServeOptions{Shards: *shards, EagerValidate: *eager}
	opts.Method = *method
	opts.CacheSize = *cacheCap
	opts.WindowSize = *window
	opts.DisableCache = *nocache
	opts.VerifyParallelism = *verifyPar
	opts.RepairParallelism = *repairPar
	opts.DisableRepair = *norepair
	opts.DisableHitIndex = !*hitIndex
	if opts.Model, err = cache.ParseModel(*modelName); err != nil {
		log.Fatal("gcserve: ", err)
	}
	if opts.Policy, err = cache.ParsePolicy(*policy); err != nil {
		log.Fatal("gcserve: ", err)
	}

	srv, err := gcplus.NewServer(initial, opts)
	if err != nil {
		log.Fatal("gcserve: ", err)
	}
	defer srv.Close()

	// Repair only runs for CON caches and the query index only exists
	// when a cache does; report the resolved states, not the raw flags.
	repairOn := !*norepair && !*nocache && opts.Model == cache.ModelCON
	hitIndexOn := *hitIndex && !*nocache
	log.Printf("gcserve: %d graphs across %d shards (method=%s model=%s policy=%s cache=%d eager=%v repair=%v hit-index=%v) on %s",
		len(initial), srv.Shards(), *method, *modelName, *policy, *cacheCap, *eager, repairOn, hitIndexOn, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func loadDataset(file string, synthN int, seed int64) ([]*gcplus.Graph, error) {
	switch {
	case file != "" && synthN > 0:
		return nil, fmt.Errorf("-dataset and -synthetic are mutually exclusive")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gcplus.ParseGraphs(f)
	case synthN > 0:
		return gcplus.GenerateAIDSLike(synthN, seed)
	}
	return nil, fmt.Errorf("provide -dataset FILE or -synthetic N")
}
