// Command gcserve is the GC+ query-serving daemon: a sharded, concurrent
// HTTP front-end over the semantic graph cache. Queries fan out to N
// runtime shards (each with its own partition, cache and CON/EVI
// consistency machinery) while dataset updates flow through an
// epoch-sequenced single-writer path, so every answer reflects one
// consistent dataset version.
//
// With -data-dir the daemon is durable: update batches are written to a
// per-shard WAL and dataset + cache state is snapshotted periodically,
// so a restart warm-starts from the persisted state (the dataset flags
// are only used when the directory holds no state yet) with every
// warmed cache entry intact. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight requests drain, shard queues flush, and a final
// snapshot is written before the process exits 0.
//
// Usage:
//
//	gcserve -synthetic 2000 -shards 8            # serve a generated dataset
//	gcserve -dataset graphs.txt -model EVI       # serve graphs from a file
//	gcserve -synthetic 2000 -data-dir /var/lib/gcplus   # durable serving
//	gcserve -data-dir /var/lib/gcplus            # warm restart from state
//
// API:
//
//	POST /query?kind=sub|super    body: one graph in the text codec
//	POST /update                  body: {"ops":[{"op":"ADD","graph":"..."},
//	                                            {"op":"DEL","id":3},
//	                                            {"op":"UA","id":2,"u":0,"v":1}]}
//	GET  /stats                   server + per-shard statistics
//
// Example:
//
//	printf 't q\nv 0 1\nv 1 2\ne 0 1\n' | curl -s --data-binary @- \
//	    'localhost:8844/query?kind=sub'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcplus"
	"gcplus/internal/cache"
	"gcplus/internal/persist"
)

func main() {
	var (
		addr      = flag.String("addr", ":8844", "listen address")
		shards    = flag.Int("shards", 4, "number of runtime shards")
		datafile  = flag.String("dataset", "", "initial dataset file (text codec); mutually exclusive with -synthetic")
		synthN    = flag.Int("synthetic", 0, "generate an AIDS-like synthetic dataset of this many graphs")
		seed      = flag.Int64("seed", 42, "synthetic dataset seed")
		method    = flag.String("method", "VF2", "Method M verifier: VF2, VF2+ or GQL")
		modelName = flag.String("model", "CON", "cache consistency model: CON or EVI")
		policy    = flag.String("policy", "HD", "cache replacement policy: HD, PIN, PINC, LRU or LFU")
		cacheCap  = flag.Int("cache", 100, "per-shard cache capacity")
		window    = flag.Int("window", 20, "per-shard admission window size")
		nocache   = flag.Bool("nocache", false, "disable GC+ caching (raw Method M baseline)")
		eager     = flag.Bool("eager", false, "validate caches at update time instead of lazily at query time")
		verifyPar = flag.Int("verify-parallelism", 0, "per-shard intra-query verification workers (0 = auto: GOMAXPROCS/shards, 1 = sequential)")
		hitIndex  = flag.Bool("hit-index", true, "maintain the cache query index for sub-linear hit discovery (false = linear scan reference)")
		repairPar = flag.Int("repair-parallelism", 0, "per-shard background cache-repair workers (0 = default of 1)")
		norepair  = flag.Bool("norepair", false, "disable background cache repair (invalidated bits stay dead until a query re-verifies them)")
		dataDir   = flag.String("data-dir", "", "durability directory: WAL + snapshots for crash-safe warm restarts (empty = no persistence)")
		snapEvery = flag.Int("snapshot-every", 0, "update batches between automatic snapshots (0 = default; needs -data-dir)")
		nowal     = flag.Bool("nowal", false, "disable the write-ahead log, keeping snapshots only (a crash loses batches since the last snapshot)")
	)
	flag.Parse()

	haveState := *dataDir != "" && persist.HasState(*dataDir)
	initial, err := loadDataset(*datafile, *synthN, *seed, haveState)
	if err != nil {
		log.Fatal("gcserve: ", err)
	}
	if haveState {
		// The shard partition is baked into the persisted state; adopt
		// its count so a bare `gcserve -data-dir DIR` restart just works.
		if n, ok := persist.StateShards(*dataDir); ok && n != *shards {
			log.Printf("gcserve: data dir %s was written with %d shards; overriding -shards=%d", *dataDir, n, *shards)
			*shards = n
		}
	}

	opts := gcplus.ServeOptions{Shards: *shards, EagerValidate: *eager}
	opts.Method = *method
	opts.CacheSize = *cacheCap
	opts.WindowSize = *window
	opts.DisableCache = *nocache
	opts.VerifyParallelism = *verifyPar
	opts.RepairParallelism = *repairPar
	opts.DisableRepair = *norepair
	opts.DisableHitIndex = !*hitIndex
	opts.DataDir = *dataDir
	opts.SnapshotEvery = *snapEvery
	opts.DisableWAL = *nowal
	if opts.Model, err = cache.ParseModel(*modelName); err != nil {
		log.Fatal("gcserve: ", err)
	}
	if opts.Policy, err = cache.ParsePolicy(*policy); err != nil {
		log.Fatal("gcserve: ", err)
	}

	srv, err := gcplus.NewServer(initial, opts)
	if err != nil {
		log.Fatal("gcserve: ", err)
	}

	// Repair only runs for CON caches and the query index only exists
	// when a cache does; report the resolved states, not the raw flags.
	repairOn := !*norepair && !*nocache && opts.Model == cache.ModelCON
	hitIndexOn := *hitIndex && !*nocache
	if entries, epoch, ok := srv.Recovered(); ok {
		log.Printf("gcserve: warm restart from %s: %d cache entries recovered, epoch %d", *dataDir, entries, epoch)
	}
	st, err := srv.Stats()
	if err != nil {
		log.Fatal("gcserve: ", err)
	}
	log.Printf("gcserve: %d graphs across %d shards (method=%s model=%s policy=%s cache=%d eager=%v repair=%v hit-index=%v durable=%v) on %s",
		st.LiveGraphs, srv.Shards(), *method, *modelName, *policy, *cacheCap, *eager, repairOn, hitIndexOn, *dataDir != "", *addr)

	// Graceful shutdown: SIGINT/SIGTERM stop the listener, drain
	// in-flight requests, then Close flushes shard queues, the WAL and
	// a final snapshot before the process exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.Close()
		log.Fatal("gcserve: ", err)
	case <-ctx.Done():
	}
	stop()
	log.Print("gcserve: shutting down (signal received)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Print("gcserve: http shutdown: ", err)
	}
	if err := srv.Close(); err != nil {
		// The daemon is down either way, but the final snapshot did not
		// land; exit non-zero so supervisors notice the degraded flush.
		log.Fatal("gcserve: final flush failed (previous snapshot + WAL remain): ", err)
	}
	log.Print("gcserve: state flushed, bye")
}

func loadDataset(file string, synthN int, seed int64, haveState bool) ([]*gcplus.Graph, error) {
	switch {
	case file != "" && synthN > 0:
		return nil, fmt.Errorf("-dataset and -synthetic are mutually exclusive")
	case haveState:
		// Recovery replaces the initial dataset entirely; don't spend
		// boot time parsing or synthesizing graphs recovery will drop
		// (restart units routinely keep the first boot's dataset flags).
		return nil, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gcplus.ParseGraphs(f)
	case synthN > 0:
		return gcplus.GenerateAIDSLike(synthN, seed)
	}
	return nil, errors.New("provide -dataset FILE or -synthetic N (or -data-dir with existing state)")
}
