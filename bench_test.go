package gcplus

// Benchmarks regenerating the paper's evaluation figures as testing.B
// targets, one per figure/series, at the seconds-level "smoke" scale.
// The interesting output is the custom metrics: ms/query, tests/query and
// speedup-vs-M (the shapes behind Figures 4–6). For the full repro- or
// paper-scale tables, use cmd/gcbench; EXPERIMENTS.md records both.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gcplus/internal/bench"
	"gcplus/internal/cache"
)

// benchScale trims the smoke scale so a full grid stays benchmark-fast.
func benchScale() bench.Scale {
	sc := bench.ScaleSmoke()
	sc.Queries = 100
	return sc
}

// runCell executes one experiment per b.N iteration and reports the
// per-query metrics the figures are built from.
func runCell(b *testing.B, cfg bench.RunConfig, baseline *bench.RunResult) *bench.RunResult {
	b.Helper()
	var last *bench.RunResult
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	m := last.Metrics
	b.ReportMetric(m.QueryTime.Mean()*1000, "ms/query")
	b.ReportMetric(m.MeanSubIsoTests(), "tests/query")
	if baseline != nil {
		bt := baseline.Metrics.QueryTime.Mean()
		if qt := m.QueryTime.Mean(); qt > 0 {
			b.ReportMetric(bt/qt, "time-speedup")
		}
		btests := baseline.Metrics.MeanSubIsoTests()
		if tq := m.MeanSubIsoTests(); tq > 0 {
			b.ReportMetric(btests/tq, "test-speedup")
		}
	}
	return last
}

// BenchmarkFigure4QueryTimeSpeedup covers Figure 4: query-time speedup of
// EVI and CON over raw Method M, per method × workload.
func BenchmarkFigure4QueryTimeSpeedup(b *testing.B) {
	sc := benchScale()
	for _, method := range []string{"VF2", "VF2+", "GQL"} {
		for _, wl := range []string{"ZZ", "0%"} {
			spec, err := bench.SpecByName(wl)
			if err != nil {
				b.Fatal(err)
			}
			base, err := bench.Run(bench.RunConfig{Scale: sc, Workload: spec, Method: method, System: bench.SystemM, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			for _, sys := range []bench.System{bench.SystemM, bench.SystemEVI, bench.SystemCON} {
				b.Run(fmt.Sprintf("%s/%s/%s", method, wl, sys), func(b *testing.B) {
					runCell(b, bench.RunConfig{Scale: sc, Workload: spec, Method: method, System: sys, Seed: 42}, base)
				})
			}
		}
	}
}

// BenchmarkFigure5SubIsoSpeedup covers Figure 5: speedup in the number of
// sub-iso tests per query across all six workloads (method-independent;
// VF2 is used).
func BenchmarkFigure5SubIsoSpeedup(b *testing.B) {
	sc := benchScale()
	for _, spec := range bench.AllSpecs() {
		base, err := bench.Run(bench.RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: bench.SystemM, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range []bench.System{bench.SystemEVI, bench.SystemCON} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, sys), func(b *testing.B) {
				runCell(b, bench.RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: sys, Seed: 42}, base)
			})
		}
	}
}

// BenchmarkFigure6Overhead covers Figure 6: per-query execution time and
// cache-maintenance overhead for M, EVI and CON (VF2, ZZ and 0%).
func BenchmarkFigure6Overhead(b *testing.B) {
	sc := benchScale()
	for _, wl := range []string{"ZZ", "0%"} {
		spec, err := bench.SpecByName(wl)
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range []bench.System{bench.SystemM, bench.SystemEVI, bench.SystemCON} {
			b.Run(fmt.Sprintf("%s/%s", wl, sys), func(b *testing.B) {
				res := runCell(b, bench.RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: sys, Seed: 42}, nil)
				m := res.Metrics
				b.ReportMetric(m.Overhead.Mean()*1e6, "overhead-µs/query")
				b.ReportMetric(m.ConsistencyTime.Mean()*1e6, "consistency-µs/query")
			})
		}
	}
}

// BenchmarkAblationPolicies sweeps the replacement policies under CON
// (the HD-vs-PIN-vs-PINC comparison behind §7.1's policy discussion).
func BenchmarkAblationPolicies(b *testing.B) {
	sc := benchScale()
	spec, err := bench.SpecByName("ZZ")
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []cache.Policy{cache.PolicyHD, cache.PolicyPIN, cache.PolicyPINC, cache.PolicyLRU, cache.PolicyLFU} {
		b.Run(string(pol), func(b *testing.B) {
			runCell(b, bench.RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: bench.SystemCON, Policy: pol, Seed: 42}, nil)
		})
	}
}

// BenchmarkAblationValidityRules compares full Algorithm 2 against the
// strict variant without the UA/UR-exclusive survival rules.
func BenchmarkAblationValidityRules(b *testing.B) {
	sc := benchScale()
	spec, err := bench.SpecByName("ZZ")
	if err != nil {
		b.Fatal(err)
	}
	for _, strict := range []bool{false, true} {
		name := "algorithm2"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			runCell(b, bench.RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: bench.SystemCON, StrictInvalidation: strict, Seed: 42}, nil)
		})
	}
}

// BenchmarkConcurrentThroughput measures the sharded serving front-end:
// parallel clients issue subgraph queries against a warm Server while a
// background writer applies ADD batches, exercising the epoch-sequenced
// update path under load. Compare ns/op across shard counts for the
// scaling trajectory (cmd/gcbench -throughput reports qps/p50/p99 for the
// same system).
func BenchmarkConcurrentThroughput(b *testing.B) {
	graphs, err := GenerateAIDSLike(400, 3)
	if err != nil {
		b.Fatal(err)
	}
	base := graphs[0]
	queries := []*Graph{
		PathGraph(base.Label(0), base.Label(1)),
		PathGraph(base.Label(0), base.Label(1), base.Label(2)),
		StarGraph(base.Label(1), base.Label(0), base.Label(2)),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := NewServer(graphs, ServeOptions{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			for _, q := range queries { // warm the shard caches
				if _, err := srv.SubgraphQuery(q); err != nil {
					b.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					op := NewAddOp(graphs[i%len(graphs)].Clone())
					if _, err := srv.Update([]UpdateOp{op}); err != nil {
						b.Error(err)
						return
					}
					i++
					time.Sleep(time.Millisecond)
				}
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := srv.SubgraphQuery(queries[i%len(queries)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			close(stop)
			writerWG.Wait()
		})
	}
}

// BenchmarkQueryWarmCache measures the steady-state cost of a single
// query against a warm CON cache — the operation a deployed GC+ serves.
func BenchmarkQueryWarmCache(b *testing.B) {
	graphs, err := GenerateAIDSLike(400, 3)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Open(graphs, Options{Method: "VF2+"})
	if err != nil {
		b.Fatal(err)
	}
	base := sys.Graph(0)
	queries := make([]*Graph, 8)
	for i := range queries {
		queries[i] = PathGraph(base.Label(0), base.Label(1), base.Label(0))
	}
	// warm
	for _, q := range queries {
		if _, err := sys.SubgraphQuery(q.Clone()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SubgraphQuery(queries[i%len(queries)].Clone()); err != nil {
			b.Fatal(err)
		}
	}
}
