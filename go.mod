module gcplus

go 1.24
