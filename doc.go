// Package gcplus is a semantic graph cache for subgraph and supergraph
// pattern queries over evolving graph datasets — a from-scratch Go
// implementation of GraphCache+ (GC+) from "Ensuring Consistency in Graph
// Cache for Graph-Pattern Queries" (Wang, Ntarmos, Triantafillou,
// EDBT/ICDT Workshops 2017).
//
// # The problem
//
// A subgraph query g against a dataset D of labelled graphs asks for all
// G ∈ D with g ⊆ G (subgraph isomorphism, NP-complete); a supergraph
// query asks for all G ⊆ g. GC+ caches executed queries together with
// their answer sets and uses containment relations between a new query
// and cached ones to prune the candidate set before the expensive
// verification — while the dataset concurrently changes through graph
// additions (ADD), deletions (DEL) and per-edge updates (UA/UR).
//
// # Consistency models
//
// Two cache-consistency models are provided. EVI evicts the entire cache
// whenever the dataset changes. CON keeps the cache and tracks, per
// cached query and dataset graph, whether the cached result still holds
// (a CGvalid bitset refreshed from the dataset's update log); only
// still-valid facts participate in pruning, which the paper proves — and
// this package's tests check against ground truth — yields answers with
// no false positives and no false negatives.
//
// # Quick start
//
//	sys, err := gcplus.Open(initialGraphs, gcplus.Options{Method: "VF2"})
//	if err != nil { ... }
//	res, err := sys.SubgraphQuery(pattern)
//	// res.IDs() are the dataset graphs containing pattern.
//	id, _ := sys.AddGraph(g)             // dataset evolves...
//	_ = sys.RemoveEdge(id, 0, 1)
//	res2, err := sys.SubgraphQuery(pattern) // ...answers stay exact
//
// Three Method M verifiers are built in — VF2, VF2+ and GraphQL ("GQL")
// — all implemented in this module with no external dependencies. See
// the examples directory for runnable scenarios and cmd/gcbench for the
// harness regenerating the paper's evaluation figures.
//
// # Compiled verification
//
// The sub-iso tests that survive GC+ pruning run through a compiled
// matcher engine: the query is compiled once per verification loop
// (visit order, anchors, structural summary, neighbourhood profiles)
// and each candidate test reuses pooled scratch, allocating nothing in
// steady state. Every dataset graph carries a memoized structural
// summary (sorted label counts, degree sequence, per-vertex neighbour
// profiles) computed at insert/update time, making the per-candidate
// quick-reject a map-free slice comparison. The surviving candidates
// can additionally be verified by a bounded worker pool inside one
// query — Options.VerifyParallelism, default GOMAXPROCS — with answers
// bit-identical to sequential verification (checked by a randomized
// -race stress test).
//
// # Concurrent serving
//
// A System is single-threaded by design; for serving concurrent traffic
// use a Server instead. NewServer partitions the dataset round-robin
// across N shards, each owning its own System-equivalent runtime and
// GC+ cache behind one worker goroutine; queries fan out to all shards
// in parallel and the per-shard answers are merged. Dataset updates flow
// through an epoch-sequenced single-writer path: a batch is applied
// atomically with respect to queries, and every answer reports the epoch
// (dataset version) it reflects — each query observes exactly the update
// batches with epoch ≤ its snapshot, never a torn state, so the paper's
// exactness guarantees carry over to concurrent serving per shard.
//
//	srv, err := gcplus.NewServer(initialGraphs, gcplus.ServeOptions{Shards: 8})
//	if err != nil { ... }
//	res, err := srv.SubgraphQuery(pattern)   // safe from any goroutine
//	_, err = srv.Update([]gcplus.UpdateOp{gcplus.NewAddOp(g), gcplus.NewDeleteOp(3)})
//	http.ListenAndServe(":8844", srv.Handler())  // the cmd/gcserve API
//
// Internally the Server is three layers: a router (placement, epoch
// sequencing, fan-out/merge), per-shard hosts (runtime + cache + WAL
// behind one worker goroutine), and a transport seam between them.
// ServeOptions.Transport selects it: TransportLocal (default) makes
// direct in-process calls; TransportLoopback puts every shard behind a
// real TCP connection on 127.0.0.1 speaking a binary wire protocol —
// answers, epochs and durability semantics are identical, and the wire
// path is the seed for multi-node clustering.
//
// cmd/gcserve wraps the Server in a standalone HTTP daemon (POST /query,
// POST /update, GET /stats, GET /metrics, GET /healthz, GET /readyz,
// GET /debug/slowlog), and cmd/gcbench's -throughput mode measures its
// queries/sec and latency percentiles under concurrent load (with
// -transport selecting the shard transport on both commands).
//
// # Background cache repair
//
// CON validation only ever clears validity bits, so update-heavy
// traffic steadily erodes the cache's pruning power. Each Server shard
// runs a background repair worker: validity bits cleared by validation
// are queued (via an inverted invalidation index that also makes
// validation touch only affected entries), re-verified off the query
// path with forked compiled matchers, and atomically restored when the
// relation still holds against the current graph version. Repair is
// coordinated with the single-writer update sequence — the capture and
// commit steps run on the shard's worker goroutine, and a commit is
// dropped if the graph changed mid-verification — so it never races an
// in-flight batch and answers remain bit-identical to the cache-
// disabled ground truth (enforced by the differential consistency
// oracle test in internal/core). ServeOptions.RepairParallelism bounds
// the per-shard verification fan-out; DisableRepair restores the
// pre-repair behavior. Stats report validity_ratio, repaired_bits and
// pending_repairs per shard.
//
// # Query index
//
// Hit discovery — finding the cached queries that contain a new query
// and those it contains — used to scan every cache entry, which caps
// usable cache capacity. Each cache maintains a query index instead:
// per-label count postings, size and degree buckets and short-path
// signature postings over entry slots select the few candidates a
// query could relate to, and a memoized query-to-query relation graph
// lets a repeated (isomorphic) query replay a cached entry's hit
// classification with zero pairwise sub-iso tests. The index is on by
// default and answers are bit-identical with it on or off
// (Options.DisableHitIndex keeps the linear scan available as the
// reference; a differential property test pins the two paths to each
// other). QueryStats.HitCandidates and HitScanned — and the
// hit_candidates metric on serving stats — report the realized
// selectivity. The index is what makes per-shard cache capacities in
// the thousands serve without hit discovery becoming the bottleneck.
//
// # Cost-based query planner and streaming verification
//
// With Options.EnablePlanner (serving: ServeOptions.EnablePlanner,
// gcserve -planner), each query executes under a compiled plan: the
// Method M algorithm is chosen per query kind from measured per-test
// cost moments (all candidates are exact, so the choice affects cost,
// never answers), verification is forced sequential when the measured
// cost says a worker pool would only add fan-out latency, and the
// compiled artifacts — matchers, feature fingerprint, hit-discovery
// verdict memo, path signatures — are cached per shard under an O(V+E)
// structural digest confirmed by an exact equality check, so repeated
// queries skip compilation, planning and the per-query signature
// extraction entirely (PlanCacheSize bounds the cache; the
// gcplus_plan_cache_hits_total metric counts the reuse). Server
// queries can additionally stream: SubgraphQueryLimit /
// SupergraphQueryLimit (HTTP: ?limit=N) verify in ascending-id order
// and return exactly the N smallest answer ids with a Truncated flag,
// leaving exact-answer mode and cache contents untouched — a truncated
// answer is never admitted to the cache. The differential oracle runs
// planner-on, plan-cache-on and streaming runtimes against cache-
// disabled ground truth to pin bit-identical answers.
//
// # Durability and warm restart
//
// With ServeOptions.DataDir set, the Server persists its state: every
// update batch is appended to a per-shard write-ahead log (epoch-
// stamped, CRC-checked frames, fsynced before the batch is
// acknowledged) and dataset + cache state — entry queries, Answer and
// CGvalid bitsets, replacement-policy bookkeeping, the relation graph
// and the pending repair queue — is snapshotted periodically and at
// graceful Close. A reboot on the same directory warm-restarts: the
// newest complete snapshot generation loads, the WAL tail replays
// through the ordinary executor up to the newest batch durable on
// every shard (torn tails and half-acknowledged batches are truncated
// away), and instead of trusting validity bits the replay may have
// invalidated, recovery queues every replay-touched (entry, graph)
// pair for the background repair pipeline. Answers are bit-identical
// to a cold rebuild from the first post-restart query, and the cache
// arrives warm — the kill-point differential tests and the gcbench
// -warm-restart mode pin both properties.
//
// # Observability
//
// Every query stage records into log-bucketed latency histograms
// (internal/obs: O(1) lock-free observe, exact-bound percentiles,
// ≤12.5% bucket width) alongside the Welford aggregates, per shard.
// A Server exposes them — together with cache validity, repair
// backlog, WAL and snapshot counters — as Prometheus text exposition
// at GET /metrics (gcplus_stage_duration_seconds{shard,stage},
// gcplus_queue_wait_seconds, gcplus_queries_total, ...); the
// histogram totals are pinned to Metrics.Queries by tests, and the
// bench harness computes its reported p50/p95/p99 from the same
// histogram code path. POST /query?trace=1 returns the per-shard
// stage trace inline; queries crossing ServeOptions.SlowLogThreshold
// are captured into a bounded ring served at GET /debug/slowlog.
// GET /healthz and GET /readyz are the liveness and readiness probes
// (readiness is gated on the repair backlog via
// ServeOptions.ReadyMaxPendingRepairs), ServeOptions.Logger receives
// structured lifecycle events (log/slog), and cmd/gcserve's
// -pprof-addr serves net/http/pprof on a side listener.
//
// Requests additionally carry distributed traces (internal/trace, a
// dependency-free span model): the router opens the root span, times
// admission/fan-out/merge, and propagates a trace context across the
// transport seam; shards contribute a queue/plan/consistency/hit/
// verify subtree annotated with every cache decision (hit class, plan
// verdict, degradation rung), piggybacked on wire reply frames under
// protocol v2. ServeOptions.TraceSampleRate head-samples healthy
// requests (default 1%) and tail retention always keeps anomalous
// traces — slow, error, shed, deadline-exceeded, degraded — in a
// bounded store served at GET /debug/traces (list) and
// GET /debug/traces/{id} (span tree). Histogram buckets on /metrics
// cite exemplar trace ids linking latency outliers to their traces,
// and slow-log entries link their retained trace by trace_id.
package gcplus
