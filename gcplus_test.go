package gcplus

import (
	"bytes"
	"strings"
	"testing"
)

func testGraphs() []*Graph {
	return []*Graph{
		PathGraph(1, 2, 3),
		CycleGraph(1, 2, 3),
		StarGraph(1, 2, 2, 3),
		PathGraph(2, 1, 2),
	}
}

func TestOpenDefaults(t *testing.T) {
	sys, err := Open(testGraphs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.GraphCount() != 4 {
		t.Fatalf("GraphCount = %d", sys.GraphCount())
	}
	if !strings.Contains(sys.String(), "VF2") {
		t.Errorf("String() = %q", sys)
	}
}

func TestOpenBadMethod(t *testing.T) {
	if _, err := Open(testGraphs(), Options{Method: "nope"}); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestSubgraphQueryAndResult(t *testing.T) {
	sys, err := Open(testGraphs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SubgraphQuery(PathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// edge 1-2 appears in graphs 0, 1, 2, 3
	if res.Len() != 4 {
		t.Fatalf("answer = %v", res.IDs())
	}
	if !res.Contains(0) || res.Contains(9) {
		t.Fatal("Contains wrong")
	}
	st := res.Stats()
	if st.CandidatesBefore != 4 {
		t.Fatalf("CandidatesBefore = %d", st.CandidatesBefore)
	}
}

func TestSupergraphQuery(t *testing.T) {
	sys, err := Open(testGraphs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a big clique contains the small path graphs
	res, err := sys.SupergraphQuery(CliqueGraph(1, 2, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected some contained graphs")
	}
}

func TestDatasetEvolutionKeepsAnswersExact(t *testing.T) {
	sys, err := Open(testGraphs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := PathGraph(1, 2)
	if _, err := sys.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	id, err := sys.AddGraph(PathGraph(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(id) {
		t.Fatal("new graph missing from answer after ADD")
	}
	if err := sys.DeleteGraph(id); err != nil {
		t.Fatal(err)
	}
	res, err = sys.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Contains(id) {
		t.Fatal("deleted graph still answered")
	}
	// UR then UA round trip on graph 0 (path 1-2-3)
	if err := sys.RemoveEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	res, err = sys.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Contains(0) {
		t.Fatal("graph 0 no longer contains 1-2 after UR")
	}
	if err := sys.AddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	res, err = sys.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(0) {
		t.Fatal("graph 0 should contain 1-2 again after UA")
	}
}

func TestCacheEntriesIntrospection(t *testing.T) {
	sys, err := Open(testGraphs(), Options{CacheSize: 10, WindowSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := PathGraph(1, 2)
	q.SetName("q0")
	if _, err := sys.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	entries := sys.CacheEntries()
	if len(entries) != 1 || entries[0].Query != "q0" || entries[0].Kind != "sub" {
		t.Fatalf("entries = %+v", entries)
	}
	if len(entries[0].Answer) != 4 || len(entries[0].Valid) != 4 {
		t.Fatalf("entry snapshot wrong: %+v", entries[0])
	}
	// a deletion invalidates the bit on the next query
	if err := sys.DeleteGraph(3); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SubgraphQuery(PathGraph(3, 1)); err != nil {
		t.Fatal(err)
	}
	entries = sys.CacheEntries()
	for _, e := range entries {
		if e.Query == "q0" {
			for _, v := range e.Valid {
				if v == 3 {
					t.Fatal("deleted graph still valid in CGvalid")
				}
			}
		}
	}
}

func TestDisableCache(t *testing.T) {
	sys, err := Open(testGraphs(), Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SubgraphQuery(PathGraph(1, 2)); err != nil {
		t.Fatal(err)
	}
	if sys.CacheSize() != 0 || len(sys.CacheEntries()) != 0 {
		t.Fatal("cache should be disabled")
	}
	m := sys.Metrics()
	if m.Queries != 1 || m.SubIsoTests.Sum() != 4 {
		t.Fatalf("metrics wrong: %+v", m)
	}
}

func TestModelsAndPolicies(t *testing.T) {
	for _, model := range []Model{CON, EVI} {
		for _, pol := range []Policy{HD, PIN, PINC, LRU, LFU} {
			sys, err := Open(testGraphs(), Options{Model: model, Policy: pol})
			if err != nil {
				t.Fatalf("%v/%v: %v", model, pol, err)
			}
			if _, err := sys.SubgraphQuery(PathGraph(1, 2)); err != nil {
				t.Fatalf("%v/%v: %v", model, pol, err)
			}
		}
	}
}

func TestCodecRoundTripPublic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGraphs(&buf, testGraphs()); err != nil {
		t.Fatal(err)
	}
	gs, err := ParseGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("parsed %d graphs", len(gs))
	}
}

func TestGenerateAIDSLike(t *testing.T) {
	gs, err := GenerateAIDSLike(25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 25 {
		t.Fatalf("generated %d graphs", len(gs))
	}
	for _, g := range gs {
		if !g.Connected() {
			t.Fatal("generated graph disconnected")
		}
	}
	// determinism
	gs2, _ := GenerateAIDSLike(25, 7)
	if gs[3].NumEdges() != gs2[3].NumEdges() {
		t.Fatal("generation not deterministic")
	}
}

func TestMetricsAndReset(t *testing.T) {
	sys, err := Open(testGraphs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := PathGraph(1, 2)
	for i := 0; i < 3; i++ {
		if _, err := sys.SubgraphQuery(q.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	m := sys.Metrics()
	if m.Queries != 3 {
		t.Fatalf("Queries = %d", m.Queries)
	}
	if m.ExactHits < 1 {
		t.Fatal("repeated query produced no exact hits")
	}
	sys.ResetMetrics()
	if sys.Metrics().MeasuredQueries != 0 {
		t.Fatal("reset failed")
	}
}

func TestServerMatchesSystem(t *testing.T) {
	graphs, err := GenerateAIDSLike(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Open(graphs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(graphs, ServeOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Shards() != 4 {
		t.Fatalf("Shards = %d", srv.Shards())
	}

	base := graphs[0]
	queries := []*Graph{
		PathGraph(base.Label(0), base.Label(1)),
		PathGraph(base.Label(0), base.Label(1), base.Label(2)),
		StarGraph(base.Label(1), base.Label(0), base.Label(2)),
	}
	check := func() {
		t.Helper()
		for qi, q := range queries {
			want, err := sys.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			wantIDs := want.IDs()
			if len(got.IDs) != len(wantIDs) {
				t.Fatalf("query %d: server %v, system %v", qi, got.IDs, wantIDs)
			}
			for i := range wantIDs {
				if got.IDs[i] != wantIDs[i] {
					t.Fatalf("query %d: server %v, system %v", qi, got.IDs, wantIDs)
				}
			}
		}
	}
	check()

	// The same updates through both front-ends keep answers identical.
	added, err := srv.AddGraph(graphs[1].Clone())
	if err != nil {
		t.Fatal(err)
	}
	if added != 50 {
		t.Fatalf("AddGraph id = %d, want 50", added)
	}
	if _, err := sys.AddGraph(graphs[1].Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Update([]UpdateOp{NewDeleteOp(3), NewRemoveEdgeOp(added, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Epoch != 2 {
		t.Fatalf("update result: %+v", res)
	}
	if err := sys.DeleteGraph(3); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveEdge(added, 0, 1); err != nil {
		t.Fatal(err)
	}
	check()

	if srv.Epoch() != 2 {
		t.Fatalf("Epoch = %d", srv.Epoch())
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveGraphs != 50 || st.Shards != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

// TestServerLoopbackTransport builds the same sharded server over the
// loopback TCP transport and demands answers identical to the default
// in-process one — the facade-level contract that the transport seam
// never bends a result.
func TestServerLoopbackTransport(t *testing.T) {
	graphs, err := GenerateAIDSLike(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewServer(graphs, ServeOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := NewServer(graphs, ServeOptions{Shards: 3, Transport: TransportLoopback})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	base := graphs[0]
	queries := []*Graph{
		PathGraph(base.Label(0), base.Label(1)),
		StarGraph(base.Label(1), base.Label(0), base.Label(2)),
	}
	for qi, q := range queries {
		a, err := local.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := remote.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.IDs) != len(b.IDs) {
			t.Fatalf("query %d: local %v loopback %v", qi, a.IDs, b.IDs)
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] {
				t.Fatalf("query %d: local %v loopback %v", qi, a.IDs, b.IDs)
			}
		}
	}
	if _, err := NewServer(graphs, ServeOptions{Shards: 2, Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("bogus transport accepted")
	}
}
