package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gcplus/internal/persist"
)

// TestWriteFault: a scheduled write error fires after the configured
// number of matching calls, is recorded, and stops at its Count.
func TestWriteFault(t *testing.T) {
	dir := t.TempDir()
	ffs := New(persist.OSFS, 1, Rule{ID: "w", Op: OpWrite, Path: "target", After: 1, Count: 1})
	f, err := ffs.OpenFile(filepath.Join(dir, "target.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("write 1 (inside After) should pass: %v", err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 should fail injected, got %v", err)
	}
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("write 3 (past Count) should pass: %v", err)
	}
	evs := ffs.Events()
	if len(evs) != 1 || evs[0].Rule != "w" || evs[0].Op != OpWrite {
		t.Fatalf("want one event for rule w, got %+v", evs)
	}
}

// TestTornWriteLeavesPrefix: a torn write really lands its prefix in
// the file, so recovery-style readers see a short tail.
func TestTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.dat")
	ffs := New(persist.OSFS, 1, Rule{Op: OpWrite, Torn: 3, Count: 1})
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("want torn write of 3 bytes + injected error, got n=%d err=%v", n, err)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("file should hold the torn prefix \"abc\", got %q err=%v", got, err)
	}
}

// TestWALAppendRetryAfterInjectedSync: the WAL rolls back after an
// injected fsync error and the same payload appends cleanly on retry —
// the contract the serve layer's bounded-retry policy depends on.
func TestWALAppendRetryAfterInjectedSync(t *testing.T) {
	dir := t.TempDir()
	ffs := New(persist.OSFS, 1, Rule{Op: OpSync, Path: "wal-", After: 1, Count: 1})
	w, err := persist.CreateWALFS(ffs, filepath.Join(dir, "wal-0.log"), 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Append([]byte("payload"))
	if !persist.IsRetryableAppend(err) {
		t.Fatalf("append under injected fsync fault should be retryable, got %v", err)
	}
	if w.Broken() {
		t.Fatal("rolled-back WAL must not be poisoned")
	}
	if err := w.Append([]byte("payload")); err != nil {
		t.Fatalf("retry should succeed: %v", err)
	}
	base, frames, _, torn, err := persist.ReadWALFileFS(ffs, w.Path(), 0)
	if err != nil || torn || base != 1 || len(frames) != 1 || string(frames[0].Payload) != "payload" {
		t.Fatalf("want one intact frame after retry, got base=%d frames=%d torn=%v err=%v",
			base, len(frames), torn, err)
	}
}

// TestWALPoisonWhenRollbackFails: when the rollback truncate is also
// failing, the WAL latches broken and refuses further appends.
func TestWALPoisonWhenRollbackFails(t *testing.T) {
	dir := t.TempDir()
	ffs := New(persist.OSFS, 1,
		Rule{Op: OpWrite, Path: "wal-", After: 1, Count: 1},
		Rule{Op: OpTruncate, Path: "wal-", Count: 1})
	w, err := persist.CreateWALFS(ffs, filepath.Join(dir, "wal-0.log"), 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.CloseRaw()
	err = w.Append([]byte("payload"))
	if err == nil || persist.IsRetryableAppend(err) {
		t.Fatalf("append with failing rollback must be non-retryable, got %v", err)
	}
	if !w.Broken() {
		t.Fatal("WAL should be poisoned")
	}
	if err := w.Append([]byte("next")); err == nil {
		t.Fatal("poisoned WAL must refuse appends")
	}
}

// TestDeterminism: the same seed and schedule fire on the same calls.
func TestDeterminism(t *testing.T) {
	run := func() []int {
		dir := t.TempDir()
		ffs := New(persist.OSFS, 99, Rule{Op: OpWrite, Prob: 0.4})
		f, err := ffs.OpenFile(filepath.Join(dir, "d.dat"), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var failed []int
		for i := 0; i < 40; i++ {
			if _, err := f.Write([]byte("x")); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("prob 0.4 over 40 writes should fail some but not all, got %d", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed must fire identically: %v vs %v", a, b)
		}
	}
}

// TestDelayOnlyAndStop: delay-only rules slow the call without failing
// it, and Stop disables the whole schedule.
func TestDelayOnlyAndStop(t *testing.T) {
	dir := t.TempDir()
	ffs := New(persist.OSFS, 1, Rule{Op: OpSync, Delay: 20 * time.Millisecond, DelayOnly: true})
	f, err := ffs.OpenFile(filepath.Join(dir, "s.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("delay-only rule must not fail the call: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sync should have been delayed ~20ms, took %v", d)
	}
	if got := len(ffs.Events()); got != 1 {
		t.Fatalf("delay event should be logged, got %d events", got)
	}
	ffs.Stop()
	start = time.Now()
	if err := f.Sync(); err != nil || time.Since(start) > 10*time.Millisecond {
		t.Fatalf("after Stop, sync must be clean and fast: err=%v", err)
	}
}
