// Package faultfs wraps a persist.FS with deterministic fault
// injection: write/fsync/rename/open errors, torn (short) writes and
// latency spikes, scheduled per path pattern and drawn from a seeded
// RNG so a chaos run replays bit-identically from its seed. Every
// injected fault is recorded in an event log that chaos harnesses dump
// as the "fault schedule" artifact next to their results.
//
// The wrapper injects failures at the persist layer's filesystem seam,
// so the serving stack above it exercises its real retry, poisoning,
// rotation and recovery paths against faults that behave like the
// storage failures they imitate (a torn write really leaves a short
// frame on disk; a failed fsync really leaves durability unknown).
package faultfs

import (
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"gcplus/internal/persist"
	"gcplus/internal/randx"
)

// ErrInjected is the default error returned by a firing rule, wrapped
// so callers can both detect injection (errors.Is) and see which rule
// fired (the Error string).
var ErrInjected = errors.New("faultfs: injected fault")

// Op names a filesystem operation a Rule can target.
type Op string

const (
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
)

// Rule is one entry in a fault schedule. A rule matches a call when
// the operation equals Op and the path contains Path (empty matches
// every path). Matching calls are counted; the rule skips the first
// After of them, then fires with probability Prob (0 means always) on
// each subsequent match, at most Count times (0 means unlimited).
//
// A firing rule sleeps Delay (latency spike), then — unless it is
// delay-only (Err == nil and Torn == 0 and DelayOnly) — fails the call
// with Err (ErrInjected when nil). For OpWrite, Torn > 0 first lets a
// short prefix of min(Torn, len(p)) bytes through to the underlying
// file, leaving a genuinely torn frame for recovery to find.
type Rule struct {
	ID        string        // label in the event log (defaults to "op:path")
	Path      string        // substring the path must contain ("" = any)
	Op        Op            // operation to intercept
	After     int           // skip the first N matching calls
	Count     int           // fire at most N times (0 = unlimited)
	Prob      float64       // per-match fire probability (0 = always)
	Err       error         // injected error (nil = ErrInjected)
	Torn      int           // OpWrite: bytes written before the failure
	Delay     time.Duration // sleep before acting
	DelayOnly bool          // sleep but let the call succeed
}

func (r *Rule) label() string {
	if r.ID != "" {
		return r.ID
	}
	return string(r.Op) + ":" + r.Path
}

// Event records one fired rule.
type Event struct {
	Seq   int           `json:"seq"`
	Rule  string        `json:"rule"`
	Op    Op            `json:"op"`
	Path  string        `json:"path"`
	Err   string        `json:"err,omitempty"`
	Torn  int           `json:"torn_bytes,omitempty"`
	Delay time.Duration `json:"delay_ns,omitempty"`
}

// ruleState pairs a Rule with its match/fire counters.
type ruleState struct {
	Rule
	matched int
	fired   int
}

// FS is a fault-injecting persist.FS. Safe for concurrent use; the
// rule engine is serialized under one mutex so the seeded RNG draws in
// a deterministic order for a single-threaded caller (concurrent
// callers interleave draws, which is still reproducible enough for
// probabilistic schedules and exactly reproducible for Prob-0 rules).
type FS struct {
	base persist.FS

	mu      sync.Mutex
	rng     *rand.Rand
	rules   []*ruleState
	events  []Event
	stopped bool
}

// New wraps base with the given fault schedule. The seed fixes every
// probabilistic draw.
func New(base persist.FS, seed int64, rules ...Rule) *FS {
	f := &FS{base: base, rng: randx.New(seed)}
	for i := range rules {
		f.rules = append(f.rules, &ruleState{Rule: rules[i]})
	}
	return f
}

// AddRule appends a rule to the schedule at runtime.
func (f *FS) AddRule(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &ruleState{Rule: r})
}

// Stop disables all injection (recovery phases run clean).
func (f *FS) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stopped = true
}

// Resume re-enables injection after Stop.
func (f *FS) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stopped = false
}

// Events returns a copy of the fired-fault log, in firing order.
func (f *FS) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, len(f.events))
	copy(out, f.events)
	return out
}

// check runs the rule engine for one call. It returns the injected
// error (nil when the call should proceed) and, for torn writes, how
// many bytes to let through first (-1 = not torn).
func (f *FS) check(op Op, path string) (error, int) {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return nil, -1
	}
	var (
		fire  *ruleState
		delay time.Duration
	)
	for _, rs := range f.rules {
		if rs.Op != op || !strings.Contains(path, rs.Path) {
			continue
		}
		rs.matched++
		if rs.matched <= rs.After {
			continue
		}
		if rs.Count > 0 && rs.fired >= rs.Count {
			continue
		}
		if rs.Prob > 0 && f.rng.Float64() >= rs.Prob {
			continue
		}
		rs.fired++
		fire = rs
		delay = rs.Delay
		break
	}
	if fire == nil {
		f.mu.Unlock()
		return nil, -1
	}
	ev := Event{Seq: len(f.events) + 1, Rule: fire.label(), Op: op, Path: path, Delay: delay}
	torn := -1
	var err error
	if !fire.DelayOnly {
		err = fire.Err
		if err == nil {
			err = ErrInjected
		}
		if op == OpWrite && fire.Torn > 0 {
			torn = fire.Torn
			ev.Torn = torn
		}
		ev.Err = err.Error()
	}
	f.events = append(f.events, ev)
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err, torn
}

// --- persist.FS implementation ---

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: name}, nil
}

func (f *FS) Open(name string) (persist.File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: name}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check(OpRead, name); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.base.ReadFile(name)
}

func (f *FS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err, torn := f.check(OpWrite, name); err != nil {
		if torn > 0 && torn < len(data) {
			f.base.WriteFile(name, data[:torn], perm)
		}
		return &os.PathError{Op: "write", Path: name, Err: err}
	}
	return f.base.WriteFile(name, data, perm)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err, _ := f.check(OpRemove, name); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.base.Remove(name)
}

func (f *FS) RemoveAll(path string) error {
	if err, _ := f.check(OpRemove, path); err != nil {
		return &os.PathError{Op: "removeall", Path: path, Err: err}
	}
	return f.base.RemoveAll(path)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	return f.base.ReadDir(name)
}

// faultFile interposes the rule engine on the write-side file ops. The
// read side passes through: chaos schedules target the durability
// path, and failing reads would only re-test ReadFile's error plumbing.
type faultFile struct {
	fs   *FS
	f    persist.File
	path string
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	if err, torn := ff.fs.check(OpWrite, ff.path); err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			// Torn write: the prefix really lands in the file, so a
			// later recovery scan finds a genuinely short frame.
			n, _ = ff.f.Write(p[:torn])
		}
		return n, &os.PathError{Op: "write", Path: ff.path, Err: err}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.check(OpSync, ff.path); err != nil {
		return &os.PathError{Op: "sync", Path: ff.path, Err: err}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err, _ := ff.fs.check(OpTruncate, ff.path); err != nil {
		return &os.PathError{Op: "truncate", Path: ff.path, Err: err}
	}
	return ff.f.Truncate(size)
}
