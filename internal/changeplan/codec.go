package changeplan

import (
	"encoding/binary"
	"fmt"

	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

// Binary codec for resolved operations — the currency of the durability
// subsystem's write-ahead log (internal/persist). An op encodes as:
//
//	byte    operation type (dataset.OpType)
//	ADD:    uvarint payload length, then the graph in the text codec
//	DEL:    uvarint graph id
//	UA/UR:  uvarint graph id, uvarint u, uvarint v
//
// The encoding is self-delimiting, so ops concatenate into a frame
// payload without separators; DecodeOp returns the remaining bytes.

// AppendBinary appends the op's binary encoding to buf and returns the
// extended slice. ADD ops must carry a graph.
func (op Op) AppendBinary(buf []byte) ([]byte, error) {
	buf = append(buf, byte(op.Type))
	switch op.Type {
	case dataset.OpAdd:
		if op.Graph == nil {
			return nil, fmt.Errorf("changeplan: cannot encode ADD with nil graph")
		}
		blob := graph.Marshal(op.Graph)
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		return append(buf, blob...), nil
	case dataset.OpDelete:
		return binary.AppendUvarint(buf, uint64(op.GraphID)), nil
	case dataset.OpUpdateAddEdge, dataset.OpUpdateRemoveEdge:
		buf = binary.AppendUvarint(buf, uint64(op.GraphID))
		buf = binary.AppendUvarint(buf, uint64(op.U))
		return binary.AppendUvarint(buf, uint64(op.V)), nil
	}
	return nil, fmt.Errorf("changeplan: cannot encode unknown op type %v", op.Type)
}

// DecodeOp decodes one op from the front of data, returning the op and
// the remaining bytes.
func DecodeOp(data []byte) (Op, []byte, error) {
	if len(data) == 0 {
		return Op{}, nil, fmt.Errorf("changeplan: empty op encoding")
	}
	op := Op{Type: dataset.OpType(data[0])}
	data = data[1:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("changeplan: truncated op varint")
		}
		data = data[n:]
		return v, nil
	}
	switch op.Type {
	case dataset.OpAdd:
		blobLen, err := readUvarint()
		if err != nil {
			return Op{}, nil, err
		}
		if blobLen > uint64(len(data)) {
			return Op{}, nil, fmt.Errorf("changeplan: ADD graph payload truncated (%d > %d bytes)", blobLen, len(data))
		}
		g, err := graph.Unmarshal(data[:blobLen])
		if err != nil {
			return Op{}, nil, fmt.Errorf("changeplan: ADD graph: %w", err)
		}
		op.Graph = g
		return op, data[blobLen:], nil
	case dataset.OpDelete:
		id, err := readUvarint()
		if err != nil {
			return Op{}, nil, err
		}
		op.GraphID = int(id)
		return op, data, nil
	case dataset.OpUpdateAddEdge, dataset.OpUpdateRemoveEdge:
		id, err := readUvarint()
		if err != nil {
			return Op{}, nil, err
		}
		u, err := readUvarint()
		if err != nil {
			return Op{}, nil, err
		}
		v, err := readUvarint()
		if err != nil {
			return Op{}, nil, err
		}
		op.GraphID, op.U, op.V = int(id), int(u), int(v)
		return op, data, nil
	}
	return Op{}, nil, fmt.Errorf("changeplan: unknown encoded op type %d", uint8(op.Type))
}
