package changeplan

import (
	"testing"

	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

func TestOpBinaryRoundTrip(t *testing.T) {
	g := graph.Path(1, 2, 3)
	ops := []Op{
		AddOp(g),
		DeleteOp(12),
		AddEdgeOp(7, 0, 4),
		RemoveEdgeOp(3, 2, 1),
	}
	// Concatenate all ops into one buffer: the encoding must be
	// self-delimiting.
	var buf []byte
	var err error
	for _, op := range ops {
		if buf, err = op.AppendBinary(buf); err != nil {
			t.Fatal(err)
		}
	}
	rest := buf
	for i, want := range ops {
		var got Op
		got, rest, err = DecodeOp(rest)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got.Type != want.Type || got.GraphID != want.GraphID || got.U != want.U || got.V != want.V {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	// The ADD graph survives structurally.
	dec, _, err := DecodeOp(func() []byte { b, _ := ops[0].AppendBinary(nil); return b }())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Graph.NumVertices() != 3 || dec.Graph.NumEdges() != 2 || dec.Graph.Label(1) != 2 {
		t.Fatalf("ADD graph mangled: %v", dec.Graph)
	}
}

func TestOpBinaryErrors(t *testing.T) {
	if _, err := (Op{Type: dataset.OpAdd}).AppendBinary(nil); err == nil {
		t.Fatal("ADD with nil graph encoded")
	}
	if _, err := (Op{Type: dataset.OpType(9)}).AppendBinary(nil); err == nil {
		t.Fatal("unknown op type encoded")
	}
	if _, _, err := DecodeOp(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	if _, _, err := DecodeOp([]byte{9}); err == nil {
		t.Fatal("unknown op type decoded")
	}
	// Truncated ADD payload.
	buf, err := AddOp(graph.Path(1, 2)).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeOp(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated ADD decoded")
	}
}
