package changeplan

import (
	"testing"

	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/synthetic"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Queries: 0, Batches: 1, OpsPerBatch: 1}); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := Generate(Config{Queries: 10, Batches: -1, OpsPerBatch: 1}); err == nil {
		t.Error("negative batches accepted")
	}
	if _, err := Generate(Config{Queries: 10, Batches: 1, OpsPerBatch: 0}); err == nil {
		t.Error("zero ops accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Queries: 100, Batches: 10, OpsPerBatch: 5, Seed: 1}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Batches) != 10 || p.TotalOps() != 50 || p.Queries != 100 {
		t.Fatalf("plan shape wrong: %d batches, %d ops", len(p.Batches), p.TotalOps())
	}
	last := -1
	for _, b := range p.Batches {
		if b.AtQuery < 0 || b.AtQuery >= 100 {
			t.Fatalf("occurrence time %d out of range", b.AtQuery)
		}
		if b.AtQuery < last {
			t.Fatal("batches not sorted")
		}
		last = b.AtQuery
		if len(b.Ops) != 5 {
			t.Fatalf("batch has %d ops", len(b.Ops))
		}
	}
}

func TestGenerateOpMix(t *testing.T) {
	p := MustGenerate(Config{Queries: 1000, Batches: 100, OpsPerBatch: 20, Seed: 2})
	counts := map[dataset.OpType]int{}
	for _, b := range p.Batches {
		for _, op := range b.Ops {
			counts[op]++
		}
	}
	total := p.TotalOps()
	for op := dataset.OpAdd; op <= dataset.OpUpdateRemoveEdge; op++ {
		frac := float64(counts[op]) / float64(total)
		if frac < 0.18 || frac > 0.32 {
			t.Errorf("op %v fraction %.2f, want ≈0.25", op, frac)
		}
	}
}

func TestDefaultAndScaled(t *testing.T) {
	d := Default()
	if d.Queries != 10000 || d.Batches != 100 || d.OpsPerBatch != 20 {
		t.Fatalf("Default = %+v", d)
	}
	s := Scaled(1000, 5)
	if s.Batches != 10 || s.OpsPerBatch != 20 || s.Queries != 1000 {
		t.Fatalf("Scaled = %+v", s)
	}
	// density preserved: ops/queries == 0.2
	if got := float64(s.Batches*s.OpsPerBatch) / float64(s.Queries); got != 0.2 {
		t.Fatalf("scaled density %g", got)
	}
	tiny := Scaled(5, 1)
	if tiny.Batches < 1 {
		t.Fatal("Scaled must keep at least one batch")
	}
}

func testDataset(t *testing.T, n int) (*dataset.Dataset, []*graph.Graph) {
	t.Helper()
	cfg := synthetic.Default().WithGraphs(n)
	cfg.MeanVertices = 12
	cfg.StdVertices = 3
	cfg.MaxVertices = 20
	gs, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.New(gs), gs
}

func TestExecutorAppliesInOrder(t *testing.T) {
	ds, initial := testDataset(t, 20)
	p := MustGenerate(Config{Queries: 50, Batches: 10, OpsPerBatch: 3, Seed: 3})
	ex := NewExecutor(p, initial, 4)
	totalApplied := 0
	for q := 0; q < 50; q++ {
		n := ex.ApplyDue(ds, q)
		totalApplied += n
	}
	if !ex.Done() {
		t.Fatal("executor not done after final query")
	}
	if totalApplied != ex.Applied() {
		t.Fatalf("accounting mismatch: %d vs %d", totalApplied, ex.Applied())
	}
	if ex.Applied()+ex.Skipped() != p.TotalOps() {
		t.Fatalf("applied %d + skipped %d != %d ops", ex.Applied(), ex.Skipped(), p.TotalOps())
	}
	if ex.Skipped() > p.TotalOps()/4 {
		t.Fatalf("too many skipped ops: %d", ex.Skipped())
	}
	// log must reflect the applied operations
	if int(ds.Seq()) != ex.Applied() {
		t.Fatalf("dataset log has %d records, executor applied %d", ds.Seq(), ex.Applied())
	}
}

func TestExecutorIdempotentPerQueryIndex(t *testing.T) {
	ds, initial := testDataset(t, 10)
	p := MustGenerate(Config{Queries: 10, Batches: 4, OpsPerBatch: 2, Seed: 5})
	ex := NewExecutor(p, initial, 6)
	n1 := ex.ApplyDue(ds, 9)
	n2 := ex.ApplyDue(ds, 9)
	if n2 != 0 {
		t.Fatalf("second ApplyDue applied %d ops", n2)
	}
	if n1 != ex.Applied() {
		t.Fatal("accounting mismatch")
	}
}

func TestExecutorDatasetStaysUsable(t *testing.T) {
	ds, initial := testDataset(t, 15)
	p := MustGenerate(Config{Queries: 30, Batches: 30, OpsPerBatch: 4, Seed: 7})
	ex := NewExecutor(p, initial, 8)
	for q := 0; q < 30; q++ {
		ex.ApplyDue(ds, q)
		if ds.LiveCount() == 0 {
			t.Fatal("dataset drained")
		}
		for _, id := range ds.LiveIDs() {
			if err := ds.Graph(id).Validate(); err != nil {
				t.Fatalf("graph %d corrupted: %v", id, err)
			}
		}
	}
}

func TestExecutorDeterminism(t *testing.T) {
	run := func() uint64 {
		ds, initial := testDataset(t, 10)
		p := MustGenerate(Config{Queries: 20, Batches: 8, OpsPerBatch: 3, Seed: 9})
		ex := NewExecutor(p, initial, 10)
		for q := 0; q < 20; q++ {
			ex.ApplyDue(ds, q)
		}
		// summarize final state
		h := uint64(17)
		for _, id := range ds.LiveIDs() {
			g := ds.Graph(id)
			h = h*31 + uint64(id)
			h = h*31 + uint64(g.NumEdges())
		}
		return h
	}
	if run() != run() {
		t.Fatal("executor not deterministic")
	}
}
