// Package changeplan generates and executes the paper's dataset change
// plans (§7.1 "Dataset Change Plan").
//
// A plan is a set of operation batches; each batch has an occurrence time
// expressed as a query index ("occurrence time for the batch is selected
// uniformly at random from the id of queries") and a list of operation
// types drawn uniformly from {ADD, DEL, UA, UR}. The *types* are fixed at
// generation, but the paper resolves the *targets* against the up-to-date
// dataset at running time (DEL/UA/UR "using the up-to-date dataset at
// running time", ADD "using the initial dataset ... so as to maximally
// keep the original dataset characteristics"), so target resolution
// happens in the Executor as the workload advances.
//
// The paper's AIDS plan: 2,000 operations in 100 batches of 20 during
// 10,000 queries. Scaled configurations preserve the ops-per-query
// density.
package changeplan

import (
	"fmt"
	"math/rand"
	"sort"

	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/randx"
)

// Config parameterizes plan generation.
type Config struct {
	// Queries is the workload length the plan spans (paper: 10,000).
	Queries int
	// Batches is the number of operation batches (paper: 100).
	Batches int
	// OpsPerBatch is the number of operations per batch (paper: 20).
	OpsPerBatch int
	// Seed drives both batch placement and runtime target resolution.
	Seed int64
}

// Default returns the paper-scale plan configuration.
func Default() Config {
	return Config{Queries: 10000, Batches: 100, OpsPerBatch: 20, Seed: 1}
}

// Scaled shrinks the plan to q queries, preserving the paper's density of
// operations per query (2,000 ops / 10,000 queries = 0.2).
func Scaled(q int, seed int64) Config {
	d := Default()
	batches := d.Batches * q / d.Queries
	if batches < 1 {
		batches = 1
	}
	return Config{Queries: q, Batches: batches, OpsPerBatch: d.OpsPerBatch, Seed: seed}
}

// Batch is a group of operations applied immediately before the query
// with index AtQuery executes.
type Batch struct {
	// AtQuery is the occurrence time (query index in [0, Queries)).
	AtQuery int
	// Ops are the operation types, resolved to targets at execution.
	Ops []dataset.OpType
}

// Plan is an ordered sequence of batches (ascending AtQuery).
type Plan struct {
	// Batches sorted by AtQuery; several batches may share a time.
	Batches []Batch
	// Queries is the workload length the plan was generated for.
	Queries int
}

// TotalOps returns the number of operations across all batches.
func (p *Plan) TotalOps() int {
	n := 0
	for _, b := range p.Batches {
		n += len(b.Ops)
	}
	return n
}

// Generate creates a plan: batch times uniform over query ids, operation
// types uniform over {ADD, DEL, UA, UR}.
func Generate(cfg Config) (*Plan, error) {
	if cfg.Queries <= 0 || cfg.Batches < 0 || cfg.OpsPerBatch <= 0 {
		return nil, fmt.Errorf("changeplan: invalid config %+v", cfg)
	}
	rng := randx.New(cfg.Seed)
	p := &Plan{Queries: cfg.Queries, Batches: make([]Batch, cfg.Batches)}
	for i := range p.Batches {
		ops := make([]dataset.OpType, cfg.OpsPerBatch)
		for j := range ops {
			ops[j] = dataset.OpType(rng.Intn(4))
		}
		p.Batches[i] = Batch{AtQuery: rng.Intn(cfg.Queries), Ops: ops}
	}
	sort.SliceStable(p.Batches, func(a, b int) bool {
		return p.Batches[a].AtQuery < p.Batches[b].AtQuery
	})
	return p, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *Plan {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Op is one fully resolved dataset change operation: the operation type
// plus its concrete target. It is the reusable currency between change
// plans, the serving layer's update API (POST /update on gcserve) and
// ad-hoc dataset manipulation — anything that needs to describe "one ADD
// / DEL / UA / UR against specific targets" independent of how the
// targets were chosen.
type Op struct {
	// Type is the operation type.
	Type dataset.OpType
	// Graph is the graph to insert; required for ADD, ignored otherwise.
	Graph *graph.Graph
	// GraphID is the target dataset graph for DEL/UA/UR.
	GraphID int
	// U, V are the edge endpoints for UA/UR.
	U, V int
}

// AddOp describes an ADD of g.
func AddOp(g *graph.Graph) Op { return Op{Type: dataset.OpAdd, Graph: g} }

// DeleteOp describes a DEL of graph id.
func DeleteOp(id int) Op { return Op{Type: dataset.OpDelete, GraphID: id} }

// AddEdgeOp describes a UA adding {u,v} to graph id.
func AddEdgeOp(id, u, v int) Op {
	return Op{Type: dataset.OpUpdateAddEdge, GraphID: id, U: u, V: v}
}

// RemoveEdgeOp describes a UR removing {u,v} from graph id.
func RemoveEdgeOp(id, u, v int) Op {
	return Op{Type: dataset.OpUpdateRemoveEdge, GraphID: id, U: u, V: v}
}

// String renders the op in the paper's notation.
func (op Op) String() string {
	switch op.Type {
	case dataset.OpAdd:
		name := "?"
		if op.Graph != nil {
			name = op.Graph.Name()
		}
		return fmt.Sprintf("ADD(%s)", name)
	case dataset.OpDelete:
		return fmt.Sprintf("DEL(G%d)", op.GraphID)
	case dataset.OpUpdateAddEdge:
		return fmt.Sprintf("UA(G%d,{%d,%d})", op.GraphID, op.U, op.V)
	case dataset.OpUpdateRemoveEdge:
		return fmt.Sprintf("UR(G%d,{%d,%d})", op.GraphID, op.U, op.V)
	}
	return op.Type.String()
}

// Apply executes the op against ds. For ADD it returns the id assigned to
// the new graph; for the other operations it returns op.GraphID.
func (op Op) Apply(ds *dataset.Dataset) (int, error) {
	switch op.Type {
	case dataset.OpAdd:
		return ds.Add(op.Graph)
	case dataset.OpDelete:
		return op.GraphID, ds.Delete(op.GraphID)
	case dataset.OpUpdateAddEdge:
		return op.GraphID, ds.UpdateAddEdge(op.GraphID, op.U, op.V)
	case dataset.OpUpdateRemoveEdge:
		return op.GraphID, ds.UpdateRemoveEdge(op.GraphID, op.U, op.V)
	}
	return 0, fmt.Errorf("changeplan: unknown op type %v", op.Type)
}

// Executor applies a plan against a dataset as a workload advances. It
// resolves operation targets at application time with its own seeded RNG,
// per the paper's running-time semantics.
type Executor struct {
	plan *Plan
	rng  *rand.Rand
	// initial is the frozen initial dataset used as the ADD pool.
	initial []*graph.Graph
	next    int // index of the next unapplied batch
	applied int // operations successfully applied
	skipped int // operations dropped after exhausting retries
}

// NewExecutor prepares a plan for execution. The initial slice is the
// dataset's original graph list (cloned on ADD).
func NewExecutor(plan *Plan, initial []*graph.Graph, seed int64) *Executor {
	return &Executor{plan: plan, rng: randx.New(seed), initial: initial}
}

// Applied returns the number of operations applied so far.
func (e *Executor) Applied() int { return e.applied }

// Skipped returns the number of operations that could not be resolved
// (e.g. UR on an edgeless graph after many retries).
func (e *Executor) Skipped() int { return e.skipped }

// Done reports whether every batch has fired.
func (e *Executor) Done() bool { return e.next >= len(e.plan.Batches) }

// ApplyDue applies every batch with AtQuery ≤ queryIndex that has not yet
// fired, resolving targets against the current dataset. It returns the
// number of operations applied by this call.
func (e *Executor) ApplyDue(ds *dataset.Dataset, queryIndex int) int {
	n := 0
	for e.next < len(e.plan.Batches) && e.plan.Batches[e.next].AtQuery <= queryIndex {
		for _, op := range e.plan.Batches[e.next].Ops {
			if e.applyOne(ds, op) {
				n++
				e.applied++
			} else {
				e.skipped++
			}
		}
		e.next++
	}
	return n
}

// applyOne resolves a single operation into an Op against the current
// dataset and applies it, retrying target draws a bounded number of times.
func (e *Executor) applyOne(ds *dataset.Dataset, op dataset.OpType) bool {
	for tries := 0; tries < 32; tries++ {
		resolved, status := e.resolve(ds, op)
		switch status {
		case resolveImpossible:
			return false
		case resolveRetry:
			continue
		}
		if _, err := resolved.Apply(ds); err == nil {
			return true
		}
	}
	return false
}

type resolveStatus uint8

const (
	resolveOK resolveStatus = iota
	// resolveRetry means this draw was unusable (e.g. the drawn edge
	// already exists) but another draw may succeed.
	resolveRetry
	// resolveImpossible means no draw can succeed in the current state.
	resolveImpossible
)

// resolve draws concrete targets for one operation type against the
// up-to-date dataset, per the paper's running-time semantics.
func (e *Executor) resolve(ds *dataset.Dataset, op dataset.OpType) (Op, resolveStatus) {
	switch op {
	case dataset.OpAdd:
		if len(e.initial) == 0 {
			return Op{}, resolveImpossible
		}
		return AddOp(e.initial[e.rng.Intn(len(e.initial))].Clone()), resolveOK
	case dataset.OpDelete:
		ids := ds.LiveIDs()
		if len(ids) <= 1 {
			return Op{}, resolveImpossible // never drain the dataset
		}
		return DeleteOp(ids[e.rng.Intn(len(ids))]), resolveOK
	case dataset.OpUpdateAddEdge:
		ids := ds.LiveIDs()
		if len(ids) == 0 {
			return Op{}, resolveImpossible
		}
		id := ids[e.rng.Intn(len(ids))]
		g := ds.Graph(id)
		n := g.NumVertices()
		if n < 2 {
			return Op{}, resolveRetry
		}
		u, v := e.rng.Intn(n), e.rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			return Op{}, resolveRetry
		}
		return AddEdgeOp(id, u, v), resolveOK
	case dataset.OpUpdateRemoveEdge:
		ids := ds.LiveIDs()
		if len(ids) == 0 {
			return Op{}, resolveImpossible
		}
		id := ids[e.rng.Intn(len(ids))]
		g := ds.Graph(id)
		if g.NumEdges() == 0 {
			return Op{}, resolveRetry
		}
		es := g.EdgeList()
		ed := es[e.rng.Intn(len(es))]
		return RemoveEdgeOp(id, int(ed.U), int(ed.V)), resolveOK
	}
	return Op{}, resolveImpossible
}
