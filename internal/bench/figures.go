package bench

import (
	"fmt"
	"io"
	"time"

	"gcplus/internal/core"
	"gcplus/internal/subiso"
)

// Matrix holds the results of the method × workload × system grid that
// Figures 4–6 are printed from.
type Matrix struct {
	Scale   Scale
	Seed    int64
	Methods []string
	Specs   []WorkloadSpec
	results map[string]*RunResult // key: method/workload/system
}

func key(method, wl string, sys System) string {
	return method + "/" + wl + "/" + string(sys)
}

// Get returns one cell (nil if the cell was not run).
func (m *Matrix) Get(method, wl string, sys System) *RunResult {
	return m.results[key(method, wl, sys)]
}

// Progress receives human-readable progress lines during long runs.
type Progress func(format string, args ...any)

func nop(string, ...any) {}

// RunMatrix executes the full grid needed by Figures 4–6: for every
// method and workload, the three systems M, EVI and CON.
func RunMatrix(sc Scale, seed int64, methods []string, specs []WorkloadSpec, progress Progress) (*Matrix, error) {
	if progress == nil {
		progress = nop
	}
	if len(methods) == 0 {
		methods = subiso.Names()
	}
	if len(specs) == 0 {
		specs = AllSpecs()
	}
	m := &Matrix{Scale: sc, Seed: seed, Methods: methods, Specs: specs, results: map[string]*RunResult{}}
	for _, method := range methods {
		for _, spec := range specs {
			for _, sys := range []System{SystemM, SystemEVI, SystemCON} {
				cfg := RunConfig{Scale: sc, Workload: spec, Method: method, System: sys, Seed: seed}
				progress("run %-16s ...", cfg.Label())
				res, err := Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: %s: %w", cfg.Label(), err)
				}
				m.results[key(method, spec.Name, sys)] = res
				progress("run %-16s done in %v (mean query %.3fms, %.1f tests)",
					cfg.Label(), res.Wall.Round(time.Millisecond),
					res.Metrics.QueryTime.Mean()*1000, res.Metrics.MeanSubIsoTests())
			}
		}
	}
	return m, nil
}

// speedup returns base/x guarding against zero denominators.
func speedup(base, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return base / x
}

// Figure4 prints the query-time speedups of EVI and CON over raw Method M
// for every method × workload — the paper's Figure 4.
func (m *Matrix) Figure4(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: GC+ Speedup in Query Time (scale=%s, %d graphs, %d queries, seed=%d)\n",
		m.Scale.Name, m.Scale.DatasetGraphs, m.Scale.Queries, m.Seed)
	fmt.Fprintf(w, "%-6s %-8s %8s %8s\n", "Method", "Workload", "EVI", "CON")
	for _, method := range m.Methods {
		for _, spec := range m.Specs {
			base := m.Get(method, spec.Name, SystemM)
			evi := m.Get(method, spec.Name, SystemEVI)
			con := m.Get(method, spec.Name, SystemCON)
			if base == nil || evi == nil || con == nil {
				continue
			}
			bt := base.Metrics.QueryTime.Mean()
			fmt.Fprintf(w, "%-6s %-8s %8.2f %8.2f\n", method, spec.Name,
				speedup(bt, evi.Metrics.QueryTime.Mean()),
				speedup(bt, con.Metrics.QueryTime.Mean()))
		}
	}
}

// Figure5 prints the speedups in number of sub-iso tests per query. The
// paper notes these are independent of the choice of Method M (the pruned
// candidate sets coincide); the first configured method's runs are used
// and VerifyIndependence can assert the invariance.
func (m *Matrix) Figure5(w io.Writer) {
	method := m.Methods[0]
	fmt.Fprintf(w, "Figure 5: GC+ Speedup in Number of Sub-iso Tests (scale=%s, method-independent)\n", m.Scale.Name)
	fmt.Fprintf(w, "%-8s %8s %8s\n", "Workload", "EVI", "CON")
	for _, spec := range m.Specs {
		base := m.Get(method, spec.Name, SystemM)
		evi := m.Get(method, spec.Name, SystemEVI)
		con := m.Get(method, spec.Name, SystemCON)
		if base == nil || evi == nil || con == nil {
			continue
		}
		bt := base.Metrics.MeanSubIsoTests()
		fmt.Fprintf(w, "%-8s %8.2f %8.2f\n", spec.Name,
			speedup(bt, evi.Metrics.MeanSubIsoTests()),
			speedup(bt, con.Metrics.MeanSubIsoTests()))
	}
}

// VerifyIndependence checks the §7.2 invariant behind Figure 5: for every
// workload, the mean number of sub-iso tests is identical across methods
// (within floating slack). It returns a descriptive error on violation.
func (m *Matrix) VerifyIndependence() error {
	if len(m.Methods) < 2 {
		return nil
	}
	for _, spec := range m.Specs {
		for _, sys := range []System{SystemEVI, SystemCON} {
			base := m.Get(m.Methods[0], spec.Name, sys)
			if base == nil {
				continue
			}
			for _, method := range m.Methods[1:] {
				other := m.Get(method, spec.Name, sys)
				if other == nil {
					continue
				}
				a, b := base.Metrics.SubIsoTests.Sum(), other.Metrics.SubIsoTests.Sum()
				if a != b {
					return fmt.Errorf("bench: %s/%s tests differ: %s=%.0f %s=%.0f",
						spec.Name, sys, m.Methods[0], a, method, b)
				}
			}
		}
	}
	return nil
}

// Figure6 prints the average execution time and overhead per query for
// Method M, EVI and CON — the paper's Figure 6 (shown for the first
// configured method; the paper uses VF2).
func (m *Matrix) Figure6(w io.Writer) {
	method := m.Methods[0]
	fmt.Fprintf(w, "Figure 6: Average Execution Time and Overhead per Query (method=%s, scale=%s)\n", method, m.Scale.Name)
	fmt.Fprintf(w, "%-8s %-6s %14s %14s %18s\n", "Workload", "System", "QueryTime(ms)", "Overhead(ms)", "Consistency(%ovh)")
	for _, spec := range m.Specs {
		for _, sys := range []System{SystemM, SystemEVI, SystemCON} {
			res := m.Get(method, spec.Name, sys)
			if res == nil {
				continue
			}
			qt := res.Metrics.QueryTime.Mean() * 1000
			ov := res.Metrics.Overhead.Mean() * 1000
			share := 0.0
			if ov > 0 {
				share = res.Metrics.ConsistencyTime.Mean() / res.Metrics.Overhead.Mean() * 100
			}
			fmt.Fprintf(w, "%-8s %-6s %14.3f %14.4f %17.1f%%\n", spec.Name, sys, qt, ov, share)
		}
	}
}

// InsightResult carries the §7.2 textual-insight statistics for one
// workload under CON.
type InsightResult struct {
	Workload string
	// IsoHitQueries is the number of queries with an exact-match
	// (isomorphic) cache hit.
	IsoHitQueries int64
	// ZeroTestExact is the number whose exact hit produced zero sub-iso
	// tests (the fully valid ones).
	ZeroTestExact int64
	// ContainmentHits is the total number of subgraph/supergraph cache
	// hits (containing + contained).
	ContainmentHits int64
	// EmptyShortcuts is the number of §6.3 case-2 firings.
	EmptyShortcuts int64
	// MeanTests is the mean sub-iso tests per query.
	MeanTests float64
}

// RunInsights reproduces the §7.2 comparison between the ZU and UU
// workloads under CON: ZU sees ~2.5× the exact-match hits of UU, but a
// smaller share of them is zero-test; UU sees ~2× the sub/super hits.
func RunInsights(sc Scale, seed int64, method string, progress Progress) ([]InsightResult, error) {
	if progress == nil {
		progress = nop
	}
	var out []InsightResult
	for _, spec := range TypeASpecs() {
		cfg := RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemCON, Seed: seed}
		progress("insights %-4s ...", spec.Name)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		met := res.Metrics
		out = append(out, InsightResult{
			Workload:        spec.Name,
			IsoHitQueries:   met.IsoHitQueries,
			ZeroTestExact:   met.ExactHits,
			ContainmentHits: met.ContainingHits + met.ContainedHits,
			EmptyShortcuts:  met.EmptyShortcuts,
			MeanTests:       met.MeanSubIsoTests(),
		})
	}
	return out, nil
}

// PrintInsights renders the insight table.
func PrintInsights(w io.Writer, rows []InsightResult) {
	fmt.Fprintf(w, "§7.2 insight statistics (CON):\n")
	fmt.Fprintf(w, "%-8s %12s %14s %16s %12s %10s\n",
		"Workload", "exact-hits", "zero-test", "sub/super-hits", "empty-cuts", "tests/q")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %14d %16d %12d %10.1f\n",
			r.Workload, r.IsoHitQueries, r.ZeroTestExact, r.ContainmentHits, r.EmptyShortcuts, r.MeanTests)
	}
}

// MetricsSummary formats a one-line digest of a run for logs.
func MetricsSummary(m core.Metrics) string {
	return fmt.Sprintf("q=%d time=%.3fms tests=%.1f saved=%.1f ovh=%.4fms iso=%d exact=%d empty=%d",
		m.MeasuredQueries, m.QueryTime.Mean()*1000, m.SubIsoTests.Mean(), m.TestsSaved.Mean(),
		m.Overhead.Mean()*1000, m.IsoHitQueries, m.ExactHits, m.EmptyShortcuts)
}
