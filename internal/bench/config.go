// Package bench is the benchmark harness that regenerates the paper's
// evaluation (§7): Figure 4 (query-time speedups of EVI and CON over raw
// Method M), Figure 5 (speedups in number of sub-iso tests), Figure 6
// (time and overhead break-down), the §7.2 insight statistics, and a set
// of ablations (replacement policies, cache sizes, Algorithm 2's validity
// optimizations, change rates).
//
// Experiments are deterministic: a (Scale, WorkloadSpec, Method, System,
// Seed) tuple fully determines the dataset, the query stream, the change
// plan and hence every answer. Absolute times depend on the host; the
// speedup *shapes* are what reproduce the paper (see EXPERIMENTS.md).
package bench

import (
	"fmt"

	"gcplus/internal/graph"
	"gcplus/internal/workload"
)

// Scale sizes an experiment. The paper runs 40,000 AIDS graphs × 10,000
// queries on a 60-core server; the default "repro" scale keeps every
// mechanism parameter (cache 100, window 20, Zipf α, query sizes, ops per
// query) and shrinks only the population sizes.
type Scale struct {
	// Name tags reports.
	Name string
	// DatasetGraphs is the initial dataset size.
	DatasetGraphs int
	// Queries is the workload length (excluding nothing; the first
	// WarmupQueries are executed but excluded from averages, as the
	// paper allows one window before measuring).
	Queries int
	// WarmupQueries are executed before measurement starts (paper: one
	// window = 20).
	WarmupQueries int
	// MeanVertices/StdVertices/MaxVertices shape dataset graphs.
	MeanVertices float64
	StdVertices  float64
	MaxVertices  int
	// CacheCapacity and WindowSize mirror §7.1 (100 and 20).
	CacheCapacity int
	WindowSize    int
	// PoolSize and NoAnswerPoolSize size the Type B pools.
	PoolSize         int
	NoAnswerPoolSize int
}

// ScaleSmoke is a seconds-level scale for go test benches and CI.
func ScaleSmoke() Scale {
	return Scale{
		Name:             "smoke",
		DatasetGraphs:    150,
		Queries:          120,
		WarmupQueries:    20,
		MeanVertices:     22,
		StdVertices:      8,
		MaxVertices:      60,
		CacheCapacity:    100,
		WindowSize:       20,
		PoolSize:         60,
		NoAnswerPoolSize: 18,
	}
}

// ScaleRepro is the default scale for cmd/gcbench: minutes-level, AIDS-
// like per-graph statistics.
func ScaleRepro() Scale {
	return Scale{
		Name:             "repro",
		DatasetGraphs:    1200,
		Queries:          600,
		WarmupQueries:    20,
		MeanVertices:     45,
		StdVertices:      22,
		MaxVertices:      245,
		CacheCapacity:    100,
		WindowSize:       20,
		PoolSize:         400,
		NoAnswerPoolSize: 120,
	}
}

// ScalePaper is the full §7.1 configuration (hours of compute).
func ScalePaper() Scale {
	return Scale{
		Name:             "paper",
		DatasetGraphs:    40000,
		Queries:          10000,
		WarmupQueries:    20,
		MeanVertices:     45,
		StdVertices:      22,
		MaxVertices:      245,
		CacheCapacity:    100,
		WindowSize:       20,
		PoolSize:         10000,
		NoAnswerPoolSize: 3000,
	}
}

// ScaleByName resolves "smoke", "repro" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "smoke":
		return ScaleSmoke(), nil
	case "repro":
		return ScaleRepro(), nil
	case "paper":
		return ScalePaper(), nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want smoke, repro or paper)", name)
}

// WorkloadSpec names one of the paper's six workloads and generates it.
type WorkloadSpec struct {
	// Name is the paper's label ("ZZ", "ZU", "UU", "0%", "20%", "50%").
	Name string
	// TypeA tells whether this is a Type A (BFS-extracted) workload.
	TypeA bool
	// GraphDist and NodeDist apply to Type A.
	GraphDist, NodeDist workload.Dist
	// NoAnswerProb applies to Type B.
	NoAnswerProb float64
}

// TypeASpecs returns the paper's Type A workloads in figure order.
func TypeASpecs() []WorkloadSpec {
	return []WorkloadSpec{
		{Name: "ZZ", TypeA: true, GraphDist: workload.Zipf, NodeDist: workload.Zipf},
		{Name: "ZU", TypeA: true, GraphDist: workload.Zipf, NodeDist: workload.Uniform},
		{Name: "UU", TypeA: true, GraphDist: workload.Uniform, NodeDist: workload.Uniform},
	}
}

// TypeBSpecs returns the paper's Type B workloads in figure order.
func TypeBSpecs() []WorkloadSpec {
	return []WorkloadSpec{
		{Name: "0%", NoAnswerProb: 0},
		{Name: "20%", NoAnswerProb: 0.2},
		{Name: "50%", NoAnswerProb: 0.5},
	}
}

// AllSpecs returns all six workloads in the paper's presentation order.
func AllSpecs() []WorkloadSpec { return append(TypeASpecs(), TypeBSpecs()...) }

// SpecByName resolves a workload label.
func SpecByName(name string) (WorkloadSpec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("bench: unknown workload %q", name)
}

// Generate materializes the workload over the initial dataset graphs.
func (s WorkloadSpec) Generate(initial []*graph.Graph, sc Scale, seed int64) (*workload.Workload, error) {
	if s.TypeA {
		return workload.TypeA(initial, workload.TypeAConfig{
			Queries:   sc.Queries,
			GraphDist: s.GraphDist,
			NodeDist:  s.NodeDist,
			Seed:      seed,
		})
	}
	return workload.TypeB(initial, workload.TypeBConfig{
		Queries:          sc.Queries,
		PoolSize:         sc.PoolSize,
		NoAnswerPoolSize: sc.NoAnswerPoolSize,
		NoAnswerProb:     s.NoAnswerProb,
		Seed:             seed,
	})
}
