package bench

import (
	"fmt"
	"io"

	"gcplus/internal/cache"
)

// This file implements the ablation studies DESIGN.md commits to beyond
// the paper's figures: replacement policies, cache sizes, Algorithm 2's
// validity optimizations, and dataset change rates. All are CON-centric,
// since CON is the paper's headline contribution.

// AblationRow is one (variant, measurement) pair.
type AblationRow struct {
	Variant   string
	MeanTime  float64 // seconds
	MeanTests float64
	Speedup   float64 // vs the study's baseline (raw M where applicable)
}

// RunPolicyAblation sweeps the replacement policies under CON for the
// given workload, reporting query-time speedup over raw Method M. The
// paper argues HD always matches or beats PIN/PINC (§7.1).
func RunPolicyAblation(sc Scale, seed int64, method string, spec WorkloadSpec, progress Progress) ([]AblationRow, error) {
	if progress == nil {
		progress = nop
	}
	base, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemM, Seed: seed})
	if err != nil {
		return nil, err
	}
	bt := base.Metrics.QueryTime.Mean()
	var rows []AblationRow
	for _, p := range []cache.Policy{cache.PolicyHD, cache.PolicyPIN, cache.PolicyPINC, cache.PolicyLRU, cache.PolicyLFU} {
		progress("policy %-5s ...", p)
		res, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemCON, Policy: p, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:   string(p),
			MeanTime:  res.Metrics.QueryTime.Mean(),
			MeanTests: res.Metrics.MeanSubIsoTests(),
			Speedup:   speedup(bt, res.Metrics.QueryTime.Mean()),
		})
	}
	return rows, nil
}

// RunCacheSizeAblation sweeps the cache capacity under CON (the paper
// fixes 100 and calls it "meagre"; the sweep shows the benefit curve).
func RunCacheSizeAblation(sc Scale, seed int64, method string, spec WorkloadSpec, sizes []int, progress Progress) ([]AblationRow, error) {
	if progress == nil {
		progress = nop
	}
	if len(sizes) == 0 {
		sizes = []int{25, 50, 100, 200}
	}
	base, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemM, Seed: seed})
	if err != nil {
		return nil, err
	}
	bt := base.Metrics.QueryTime.Mean()
	var rows []AblationRow
	for _, size := range sizes {
		progress("cache size %4d ...", size)
		res, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemCON, CacheCapacity: size, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:   fmt.Sprintf("cap=%d", size),
			MeanTime:  res.Metrics.QueryTime.Mean(),
			MeanTests: res.Metrics.MeanSubIsoTests(),
			Speedup:   speedup(bt, res.Metrics.QueryTime.Mean()),
		})
	}
	return rows, nil
}

// RunValidityAblation compares full Algorithm 2 against the strict
// variant that invalidates every touched bit, quantifying the UA/UR-
// exclusive survival rules' contribution (fewer valid bits ⇒ fewer spared
// tests; correctness is unaffected, which the core tests assert).
func RunValidityAblation(sc Scale, seed int64, method string, spec WorkloadSpec, progress Progress) ([]AblationRow, error) {
	if progress == nil {
		progress = nop
	}
	base, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemM, Seed: seed})
	if err != nil {
		return nil, err
	}
	bt := base.Metrics.QueryTime.Mean()
	var rows []AblationRow
	for _, strict := range []bool{false, true} {
		name := "Algorithm 2"
		if strict {
			name = "strict (no UA/UR rules)"
		}
		progress("validity %-24s ...", name)
		res, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemCON, StrictInvalidation: strict, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:   name,
			MeanTime:  res.Metrics.QueryTime.Mean(),
			MeanTests: res.Metrics.MeanSubIsoTests(),
			Speedup:   speedup(bt, res.Metrics.QueryTime.Mean()),
		})
	}
	return rows, nil
}

// RunChangeRateAblation sweeps the dataset change rate: a static dataset
// (EVI ≡ CON ≡ the original GraphCache), the paper's density, and a 4×
// churn, showing EVI's degradation as changes become frequent.
func RunChangeRateAblation(sc Scale, seed int64, method string, spec WorkloadSpec, progress Progress) ([]AblationRow, error) {
	if progress == nil {
		progress = nop
	}
	type variant struct {
		name    string
		factor  float64
		none    bool
		systems []System
	}
	variants := []variant{
		{name: "static", none: true},
		{name: "1x (paper)", factor: 1},
		{name: "4x churn", factor: 4},
	}
	var rows []AblationRow
	for _, v := range variants {
		base, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: SystemM,
			ChangeOpsFactor: v.factor, NoChanges: v.none, Seed: seed})
		if err != nil {
			return nil, err
		}
		bt := base.Metrics.QueryTime.Mean()
		for _, sys := range []System{SystemEVI, SystemCON} {
			progress("change rate %-10s %s ...", v.name, sys)
			res, err := Run(RunConfig{Scale: sc, Workload: spec, Method: method, System: sys,
				ChangeOpsFactor: v.factor, NoChanges: v.none, Seed: seed})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Variant:   fmt.Sprintf("%s/%s", v.name, sys),
				MeanTime:  res.Metrics.QueryTime.Mean(),
				MeanTests: res.Metrics.MeanSubIsoTests(),
				Speedup:   speedup(bt, res.Metrics.QueryTime.Mean()),
			})
		}
	}
	return rows, nil
}

// PrintAblation renders an ablation table.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-26s %14s %12s %10s\n", "Variant", "QueryTime(ms)", "Tests/query", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %14.3f %12.1f %9.2fx\n", r.Variant, r.MeanTime*1000, r.MeanTests, r.Speedup)
	}
}
