package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/graph"
	"gcplus/internal/persist"
	"gcplus/internal/randx"
	"gcplus/internal/router"
)

// The -warm-restart benchmark measures what the durability subsystem
// buys: after a crash-shaped shutdown, how fast does a warm-restarted
// server return to full cache validity, and what hit rate does it serve
// at immediately, compared to (a) the pre-restart instance and (b) a
// cold start that rebuilds the dataset and re-warms the cache from
// scratch?
//
// The run has five phases over one deterministic query stream:
//
//  1. fill: the stream runs once against a durable server, with churn
//     update batches interleaved; a snapshot is forced at the end;
//  2. tail churn: more update batches land after the snapshot, so the
//     WAL has a tail to replay and validity bits to re-verify;
//  3. measure: the stream runs again — the pre-restart hit rate and the
//     reference answer digest — and the server is closed abruptly (no
//     final snapshot: the crash-recovery path is what is measured);
//  4. warm restart: a new server recovers from the data directory; the
//     benchmark clocks recovery and the time until background repair
//     restores full validity, then replays the stream for the warm hit
//     rate and digest;
//  5. cold baseline: a fresh non-durable server applies the same update
//     batches, then serves the same stream — the cold hit rate, and the
//     digest the warm answers must equal bit for bit.

// WarmRestartConfig sizes the warm-restart benchmark.
type WarmRestartConfig struct {
	// Scale sizes the dataset (smoke/repro/paper).
	Scale Scale
	// Workload selects the query mix (default ZZ).
	Workload WorkloadSpec
	// Method names Method M's verifier (default VF2).
	Method string
	// Shards is the server's shard count (default 4).
	Shards int
	// Queries is the stream length (default Scale.Queries).
	Queries int
	// CacheCapacity is the per-shard capacity (default: the stream
	// length, so the whole stream stays resident and the warm restart's
	// recovered entries can serve every repeat).
	CacheCapacity int
	// UpdateEvery interleaves one churn batch per this many fill-pass
	// queries (default 25; 0 disables).
	UpdateEvery int
	// OpsPerBatch is the churn batch size (default 5).
	OpsPerBatch int
	// TailBatches is the number of churn batches applied after the
	// snapshot — the WAL tail recovery must replay and repair
	// (default 4).
	TailBatches int
	// DataDir is the durability directory (default: a fresh temporary
	// directory, removed when the run ends).
	DataDir string
	// Transport selects the router→shard transport for every instance
	// in the comparison — pre-restart, warm-restarted and cold baseline
	// run the same seam ("local" default, "loopback" for the wire path).
	Transport string
	// Seed drives dataset, workload and churn generation.
	Seed int64
}

func (c WarmRestartConfig) withDefaults() WarmRestartConfig {
	if c.Workload.Name == "" {
		c.Workload, _ = SpecByName("ZZ")
	}
	if c.Method == "" {
		c.Method = "VF2"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Queries <= 0 {
		c.Queries = c.Scale.Queries
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = c.Queries
	}
	if c.UpdateEvery < 0 {
		c.UpdateEvery = 0
	} else if c.UpdateEvery == 0 {
		c.UpdateEvery = 25
	}
	if c.OpsPerBatch <= 0 {
		c.OpsPerBatch = 5
	}
	if c.TailBatches <= 0 {
		c.TailBatches = 4
	}
	return c
}

// WarmRestartResult is the JSON summary the -warm-restart mode emits.
type WarmRestartResult struct {
	Mode          string `json:"mode"`
	Scale         string `json:"scale"`
	Workload      string `json:"workload"`
	Method        string `json:"method"`
	Shards        int    `json:"shards"`
	Queries       int    `json:"queries"`
	CacheCapacity int    `json:"cache_capacity"`
	UpdateBatches int    `json:"update_batches"`
	Transport     string `json:"transport"`
	Seed          int64  `json:"seed"`

	// PreRestartHitRate is the hit rate of the warmed pre-restart
	// instance over the measurement pass; WarmHitRate and ColdHitRate
	// are the warm-restarted and cold-started instances' hit rates over
	// the same stream — hit-rate-at-t with t = one stream length.
	PreRestartHitRate float64 `json:"pre_restart_hit_rate"`
	WarmHitRate       float64 `json:"warm_hit_rate_at_t"`
	ColdHitRate       float64 `json:"cold_hit_rate_at_t"`
	// WarmOverPre is WarmHitRate / PreRestartHitRate — the acceptance
	// metric (≥ 0.9: the warm instance reaches at least 90% of the
	// pre-restart hit rate).
	WarmOverPre float64 `json:"warm_over_pre"`

	// RecoveredEntries is the number of cache entries the warm restart
	// restored; WarmAdmitted counts entries admitted during the warm
	// pass (≈0: repeats refresh restored entries instead of recomputing
	// them from scratch).
	RecoveredEntries int    `json:"recovered_entries"`
	RecoveredEpoch   uint64 `json:"recovered_epoch"`
	WarmAdmitted     int64  `json:"warm_admitted"`

	// RecoveryMillis is the wall time of router.New on the persisted
	// state (snapshot load + WAL replay); TimeToFullValidityMillis adds
	// the background repair drain until every validity bit the replay
	// touched is re-verified.
	RecoveryMillis           float64 `json:"recovery_ms"`
	TimeToFullValidityMillis float64 `json:"time_to_full_validity_ms"`
	FinalValidityRatio       float64 `json:"final_validity_ratio"`
	RepairedBits             int64   `json:"repaired_bits"`
	WALBytes                 int64   `json:"wal_bytes"`

	// Digest equality proves the recovered instance answers
	// bit-identically to a cold rebuild over the identical stream.
	WarmAnswersFNV string `json:"warm_answers_fnv"`
	ColdAnswersFNV string `json:"cold_answers_fnv"`
	AnswersMatch   bool   `json:"answers_match"`
}

// RunWarmRestart runs the warm-restart benchmark.
func RunWarmRestart(cfg WarmRestartConfig, progress Progress) (*WarmRestartResult, error) {
	cfg = cfg.withDefaults()
	initial, err := generateDataset(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wlScale := cfg.Scale
	if cfg.Queries > wlScale.Queries {
		wlScale.Queries = cfg.Queries
	}
	wl, err := memoizedWorkload(cfg.Workload, initial, wlScale, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	queries := wl.Queries[:min(cfg.Queries, len(wl.Queries))]

	dir := cfg.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gcplus-warm-restart-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if persist.HasState(dir) {
		// A leftover store would warm-restart the *fill* phase and
		// poison every metric; demand a fresh directory.
		return nil, fmt.Errorf("bench: data dir %s already holds state; the warm-restart benchmark needs a fresh directory", dir)
	}
	persistOpts := router.Options{
		Shards: cfg.Shards,
		Method: cfg.Method,
		Cache:  &cache.Config{Capacity: cfg.CacheCapacity, WindowSize: cfg.Scale.WindowSize},
		// Snapshots are forced explicitly so the WAL tail is exactly
		// TailBatches long; make the automatic trigger unreachable.
		DataDir:       dir,
		SnapshotEvery: 1 << 30,
		Transport:     cfg.Transport,
	}

	srvA, err := router.New(initial, persistOpts)
	if err != nil {
		return nil, err
	}
	// Error returns below must not leak srvA's goroutines, WAL files and
	// directory lock (the planned shutdown is the CloseAbrupt in phase 3).
	srvAClosed := false
	defer func() {
		if !srvAClosed {
			srvA.CloseAbrupt()
		}
	}()
	res := &WarmRestartResult{
		Mode:          "warm-restart",
		Scale:         cfg.Scale.Name,
		Workload:      cfg.Workload.Name,
		Method:        cfg.Method,
		Shards:        cfg.Shards,
		Queries:       len(queries),
		CacheCapacity: cfg.CacheCapacity,
		Transport:     srvA.Transport(),
		Seed:          cfg.Seed,
	}

	// Phase 1: fill pass with interleaved churn.
	if progress != nil {
		progress("warm-restart: fill pass, %d queries", len(queries))
	}
	rng := randx.New(cfg.Seed + 7)
	churn := newChurnState(initial)
	var batches [][]changeplan.Op // every batch, replayed on the cold baseline
	applyChurn := func(srv *router.Server) error {
		ops, toggled := churn.batch(rng, cfg.OpsPerBatch)
		if len(ops) == 0 {
			return nil
		}
		out, err := srv.Update(ops)
		if err != nil {
			return err
		}
		for i, t := range toggled {
			if out.Ops[i].Err == nil {
				t.present = !t.present
			}
		}
		batches = append(batches, ops)
		res.UpdateBatches++
		return nil
	}
	for i, q := range queries {
		if _, err := srvA.SubgraphQuery(q); err != nil {
			return nil, err
		}
		if cfg.UpdateEvery > 0 && (i+1)%cfg.UpdateEvery == 0 {
			if err := applyChurn(srvA); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: snapshot, then the post-snapshot churn tail.
	if err := srvA.Snapshot(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.TailBatches; i++ {
		if err := applyChurn(srvA); err != nil {
			return nil, err
		}
	}

	// Phase 3: pre-restart measurement pass, then the crash.
	pre, err := measurePass(srvA, queries)
	if err != nil {
		return nil, err
	}
	res.PreRestartHitRate = pre.hitRate
	srvA.CloseAbrupt()
	srvAClosed = true

	// Phase 4: warm restart.
	t0 := time.Now()
	srvB, err := router.New(nil, persistOpts)
	if err != nil {
		return nil, err
	}
	defer srvB.Close()
	res.RecoveryMillis = float64(time.Since(t0).Microseconds()) / 1000
	res.RecoveredEntries, res.RecoveredEpoch, _ = srvB.Recovered()
	if progress != nil {
		progress("warm-restart: recovered %d entries at epoch %d in %.1fms",
			res.RecoveredEntries, res.RecoveredEpoch, res.RecoveryMillis)
	}
	full, err := awaitFullValidity(srvB, 60*time.Second)
	if err != nil {
		return nil, err
	}
	res.TimeToFullValidityMillis = float64(time.Since(t0).Microseconds()) / 1000
	res.FinalValidityRatio = full.ValidityRatio
	res.RepairedBits = full.RepairedBits
	res.WALBytes = full.WALBytes
	warm, err := measurePass(srvB, queries)
	if err != nil {
		return nil, err
	}
	res.WarmHitRate = warm.hitRate
	res.WarmAdmitted = warm.admitted
	res.WarmAnswersFNV = fmt.Sprintf("%016x", warm.digest)
	if res.PreRestartHitRate > 0 {
		res.WarmOverPre = res.WarmHitRate / res.PreRestartHitRate
	}

	// Phase 5: cold baseline — fresh server, same updates, same stream.
	if progress != nil {
		progress("warm-restart: cold baseline")
	}
	coldOpts := persistOpts
	coldOpts.DataDir = ""
	srvC, err := router.New(initial, coldOpts)
	if err != nil {
		return nil, err
	}
	defer srvC.Close()
	for _, ops := range batches {
		if _, err := srvC.Update(ops); err != nil {
			return nil, err
		}
	}
	cold, err := measurePass(srvC, queries)
	if err != nil {
		return nil, err
	}
	res.ColdHitRate = cold.hitRate
	res.ColdAnswersFNV = fmt.Sprintf("%016x", cold.digest)
	res.AnswersMatch = res.WarmAnswersFNV == res.ColdAnswersFNV
	return res, nil
}

// passStats summarizes one measurement pass over the query stream.
type passStats struct {
	hitRate  float64
	admitted int64
	digest   uint64
}

// measurePass runs the stream once and reports the pass's hit rate
// (mean per-shard zero-test rate over exactly these queries), the
// entries admitted during the pass, and the order-independent answer
// digest.
func measurePass(srv *router.Server, queries []*graph.Graph) (passStats, error) {
	before, err := srv.Stats()
	if err != nil {
		return passStats{}, err
	}
	var ps passStats
	for i, q := range queries {
		out, err := srv.SubgraphQuery(q)
		if err != nil {
			return passStats{}, err
		}
		ps.digest ^= answerHash(i, out.IDs)
	}
	after, err := srv.Stats()
	if err != nil {
		return passStats{}, err
	}
	var rates float64
	for i := range after.PerShard {
		a, b := &after.PerShard[i].Metrics, &before.PerShard[i].Metrics
		if dq := a.MeasuredQueries - b.MeasuredQueries; dq > 0 {
			rates += float64(a.ZeroTestQueries-b.ZeroTestQueries) / float64(dq)
		}
		// Admitted counts window *flushes*; add the window-length delta
		// so entries recomputed into a not-yet-flushed window are
		// counted too (otherwise "zero admissions" could hold vacuously
		// while up to WindowSize-1 entries per shard were recomputed).
		ca, cb := &after.PerShard[i].Cache, &before.PerShard[i].Cache
		ps.admitted += (ca.Admitted - cb.Admitted) + int64(ca.Window-cb.Window)
	}
	if len(after.PerShard) > 0 {
		ps.hitRate = rates / float64(len(after.PerShard))
	}
	return ps, nil
}

// awaitFullValidity polls until the background repair pipeline has
// drained — no pending pairs and a fully valid cache — or the timeout
// elapses (the state reached by then is reported, not an error: a
// lossy-but-live system is still a result).
func awaitFullValidity(srv *router.Server, timeout time.Duration) (*router.Stats, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := srv.Stats()
		if err != nil {
			return nil, err
		}
		if (st.PendingRepairs == 0 && st.ValidityRatio > 0.9999) || time.Now().After(deadline) {
			return st, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WriteWarmRestartJSON emits the summary as indented JSON.
func WriteWarmRestartJSON(w io.Writer, res *WarmRestartResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
