package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunWarmRestartSmoke drives the whole warm-restart benchmark at a
// tiny scale: crash-shaped shutdown, recovery, repair drain, and the
// acceptance properties — bit-identical answers to the cold rebuild,
// recovered entries serving repeats without re-admission, and a warm
// hit rate at or near the pre-restart level.
func TestRunWarmRestartSmoke(t *testing.T) {
	sc := ScaleSmoke()
	sc.DatasetGraphs = 60
	sc.Queries = 40
	res, err := RunWarmRestart(WarmRestartConfig{
		Scale:       sc,
		Shards:      2,
		UpdateEvery: 10,
		TailBatches: 3,
		Seed:        7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AnswersMatch {
		t.Fatalf("warm answers %s != cold answers %s", res.WarmAnswersFNV, res.ColdAnswersFNV)
	}
	if res.RecoveredEntries == 0 {
		t.Fatal("no cache entries recovered")
	}
	if res.WarmAdmitted != 0 {
		t.Fatalf("%d entries admitted during the warm pass; repeats should refresh restored entries", res.WarmAdmitted)
	}
	if res.PreRestartHitRate > 0 && res.WarmOverPre < 0.9 {
		t.Fatalf("warm hit rate %.3f is below 90%% of pre-restart %.3f",
			res.WarmHitRate, res.PreRestartHitRate)
	}
	if res.UpdateBatches == 0 || res.WALBytes == 0 {
		t.Fatalf("test should exercise churn and the WAL: %+v", res)
	}
	var buf bytes.Buffer
	if err := WriteWarmRestartJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back WarmRestartResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Mode != "warm-restart" || back.RecoveredEntries != res.RecoveredEntries {
		t.Fatalf("JSON round trip mangled the result: %+v", back)
	}
}
