package bench

import (
	"fmt"
	"sync"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/synthetic"
	"gcplus/internal/workload"
)

// System identifies what executes the workload.
type System string

const (
	// SystemM is raw Method M: no cache, every live graph tested.
	SystemM System = "M"
	// SystemEVI is GC+ with the evict-on-change model.
	SystemEVI System = "EVI"
	// SystemCON is GC+ with the consistency model.
	SystemCON System = "CON"
)

// RunConfig fully determines one experiment.
type RunConfig struct {
	// Scale sizes the experiment.
	Scale Scale
	// Workload selects one of the six §7.1 workloads.
	Workload WorkloadSpec
	// Method names Method M's algorithm: "VF2", "VF2+" or "GQL".
	Method string
	// System selects M / EVI / CON.
	System System
	// Policy is the replacement policy (default HD, as in the paper).
	Policy cache.Policy
	// CacheCapacity overrides Scale.CacheCapacity when positive
	// (cache-size ablation).
	CacheCapacity int
	// StrictInvalidation ablates Algorithm 2's survival rules.
	StrictInvalidation bool
	// ChangeOpsFactor scales the number of change batches relative to
	// the paper's density; the zero value means 1 (paper density). Used
	// by the change-rate ablation.
	ChangeOpsFactor float64
	// NoChanges freezes the dataset (no change plan at all).
	NoChanges bool
	// Seed determines dataset, workload and change plan.
	Seed int64
}

// RunResult carries everything the figure printers need.
type RunResult struct {
	Config       RunConfig
	Metrics      core.Metrics
	Wall         time.Duration
	OpsApplied   int
	OpsSkipped   int
	DatasetStats dataset.Stats
	FinalCache   int
}

// Run executes one experiment end to end: generate dataset, workload and
// change plan from the seed; stream the queries through the configured
// system, firing due change batches before each query; measure after the
// warm-up prefix.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.ChangeOpsFactor < 0 {
		return nil, fmt.Errorf("bench: negative ChangeOpsFactor")
	}
	if cfg.Policy == "" {
		cfg.Policy = cache.PolicyHD
	}

	algo, err := subiso.New(cfg.Method)
	if err != nil {
		return nil, err
	}

	// Dataset (AIDS-like; §3 substitution documented in DESIGN.md).
	initial, err := generateDataset(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ds := dataset.New(initial)

	// Workload. Generation is memoized across runs of the same grid:
	// systems M, EVI and CON must see the identical query stream anyway,
	// and Type B pool synthesis (no-answer relabelling with verification)
	// costs far more than a run itself.
	wl, err := memoizedWorkload(cfg.Workload, initial, cfg.Scale, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// Change plan at the paper's ops-per-query density, scaled.
	planCfg := changeplan.Scaled(cfg.Scale.Queries, cfg.Seed+2)
	planCfg.Batches = int(float64(planCfg.Batches) * cfg.ChangeOpsFactorOrDefault())
	if cfg.NoChanges {
		planCfg.Batches = 0
	}
	plan, err := changeplan.Generate(planCfg)
	if err != nil {
		return nil, err
	}
	exec := changeplan.NewExecutor(plan, initial, cfg.Seed+3)

	// System under test. Verification stays sequential here: the figure,
	// insight and ablation experiments reproduce the paper's
	// single-streamed per-query timings, which must not depend on the
	// host's core count (the throughput mode is where parallel
	// verification is measured).
	opts := core.Options{Algorithm: algo, VerifyParallelism: 1}
	if cfg.System != SystemM {
		capacity := cfg.Scale.CacheCapacity
		if cfg.CacheCapacity > 0 {
			capacity = cfg.CacheCapacity
		}
		model := cache.ModelCON
		if cfg.System == SystemEVI {
			model = cache.ModelEVI
		}
		opts.Cache = &cache.Config{
			Capacity:           capacity,
			WindowSize:         cfg.Scale.WindowSize,
			Model:              model,
			Policy:             cfg.Policy,
			StrictInvalidation: cfg.StrictInvalidation,
		}
	}
	rt, err := core.NewRuntime(ds, opts)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	for i, q := range wl.Queries {
		exec.ApplyDue(ds, i)
		if i == cfg.Scale.WarmupQueries {
			rt.ResetMeasurements()
		}
		if _, err := rt.SubgraphQuery(q); err != nil {
			return nil, fmt.Errorf("bench: query %d: %w", i, err)
		}
	}
	return &RunResult{
		Config:       cfg,
		Metrics:      rt.Metrics(),
		Wall:         time.Since(start),
		OpsApplied:   exec.Applied(),
		OpsSkipped:   exec.Skipped(),
		DatasetStats: ds.ComputeStats(),
		FinalCache:   rt.CacheSize(),
	}, nil
}

// workloadMemo caches generated workloads by (scale, spec, seed). Query
// graphs are immutable once built, so sharing them across runs is safe.
var workloadMemo sync.Map // key string -> *workload.Workload

// datasetMemo caches the *initial* graph list per (scale, seed). Each run
// builds a fresh dataset.Dataset on top; runs never mutate the initial
// graphs (UA/UR are copy-on-write and ADD clones pool graphs), so sharing
// the list is safe.
var datasetMemo sync.Map // key string -> []*graph.Graph

func generateDataset(sc Scale, seed int64) ([]*graph.Graph, error) {
	key := fmt.Sprintf("%d|%d|%g|%g|%d", sc.DatasetGraphs, seed, sc.MeanVertices, sc.StdVertices, sc.MaxVertices)
	if v, ok := datasetMemo.Load(key); ok {
		return v.([]*graph.Graph), nil
	}
	synCfg := synthetic.Default().WithGraphs(sc.DatasetGraphs)
	synCfg.MeanVertices = sc.MeanVertices
	synCfg.StdVertices = sc.StdVertices
	synCfg.MaxVertices = sc.MaxVertices
	synCfg.Seed = seed
	initial, err := synthetic.Generate(synCfg)
	if err != nil {
		return nil, err
	}
	datasetMemo.Store(key, initial)
	return initial, nil
}

func memoizedWorkload(spec WorkloadSpec, initial []*graph.Graph, sc Scale, seed int64) (*workload.Workload, error) {
	key := fmt.Sprintf("%s|%d|%d|%d|%g|%v|%v|%v", spec.Name, sc.DatasetGraphs, sc.Queries, seed,
		spec.NoAnswerProb, spec.TypeA, spec.GraphDist, spec.NodeDist)
	if v, ok := workloadMemo.Load(key); ok {
		return v.(*workload.Workload), nil
	}
	wl, err := spec.Generate(initial, sc, seed)
	if err != nil {
		return nil, err
	}
	workloadMemo.Store(key, wl)
	return wl, nil
}

// ChangeOpsFactorOrDefault returns the change-rate factor, defaulting to
// the paper's density (1).
func (c RunConfig) ChangeOpsFactorOrDefault() float64 {
	if c.ChangeOpsFactor == 0 {
		return 1
	}
	return c.ChangeOpsFactor
}

// Label renders a short run identifier for reports.
func (c RunConfig) Label() string {
	return fmt.Sprintf("%s/%s/%s", c.Method, c.Workload.Name, c.System)
}
