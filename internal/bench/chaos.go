package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/faultfs"
	"gcplus/internal/persist"
	"gcplus/internal/randx"
	"gcplus/internal/router"
)

// The -chaos benchmark is the CI-facing slice of the fault-injection
// harness: a durable server runs a query stream with interleaved churn
// while internal/faultfs fails and tears WAL writes, fails snapshot
// fsyncs and renames, stalls shard jobs and skews the serving clock —
// then the server is killed abruptly and warm-restarted on the settled
// disk. A fault-free reference replica applies the same updates; the
// acceptance criterion is bit-identical answer digests, before the
// crash and after recovery plus re-application of the lost tail. The
// emitted JSON carries the full fault schedule so a failing CI run is
// replayable from the artifact alone.

// ChaosConfig sizes the chaos benchmark.
type ChaosConfig struct {
	// Scale sizes the dataset (smoke/repro/paper).
	Scale Scale
	// Workload selects the query mix (default ZZ).
	Workload WorkloadSpec
	// Method names Method M's verifier (default VF2).
	Method string
	// Shards is the server's shard count (default 2).
	Shards int
	// Queries is the stream length (default Scale.Queries).
	Queries int
	// CacheCapacity is the per-shard capacity (default: the stream
	// length, so recovered entries can serve the post-restart pass).
	CacheCapacity int
	// UpdateEvery interleaves one churn batch per this many queries
	// (default 10).
	UpdateEvery int
	// OpsPerBatch is the churn batch size (default 5).
	OpsPerBatch int
	// WALPolicy selects the append-failure policy under test
	// (default router.WALPolicyFailUpdate).
	WALPolicy string
	// DataDir is the durability directory (default: a fresh temporary
	// directory, removed when the run ends).
	DataDir string
	// Transport selects the router→shard transport for the system under
	// test and its warm restart ("local" default, or "loopback" for the
	// full wire path). The fault-free reference replica always runs
	// local — the oracle must stay independent of the seam under test.
	Transport string
	// Seed drives dataset, workload, churn and the fault schedule.
	Seed int64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Workload.Name == "" {
		c.Workload, _ = SpecByName("ZZ")
	}
	if c.Method == "" {
		c.Method = "VF2"
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Queries <= 0 {
		c.Queries = c.Scale.Queries
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = c.Queries
	}
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = 10
	}
	if c.OpsPerBatch <= 0 {
		c.OpsPerBatch = 5
	}
	if c.WALPolicy == "" {
		c.WALPolicy = router.WALPolicyFailUpdate
	}
	return c
}

// ChaosResult is the JSON summary the -chaos mode emits.
type ChaosResult struct {
	Mode          string `json:"mode"`
	Scale         string `json:"scale"`
	Workload      string `json:"workload"`
	Method        string `json:"method"`
	Shards        int    `json:"shards"`
	Queries       int    `json:"queries"`
	WALPolicy     string `json:"wal_policy"`
	Transport     string `json:"transport"`
	Seed          int64  `json:"seed"`
	UpdateBatches int    `json:"update_batches"`

	// Fault load actually delivered: total fired injections, split by
	// intercepted operation, and the WAL appends that saw them.
	FaultsInjected  int            `json:"faults_injected"`
	FaultsByOp      map[string]int `json:"faults_by_op"`
	WALAppendErrors int64          `json:"wal_append_errors"`

	// Pre-crash resilience state: how far the durable-epoch claim fell
	// behind the applied epoch, which shards latched volatile, and what
	// the overload machinery did while the storage misbehaved.
	FinalEpoch        uint64  `json:"final_epoch"`
	DurableEpoch      uint64  `json:"durable_epoch"`
	WALVolatileShards int     `json:"wal_volatile_shards"`
	ShedQueries       int64   `json:"shed_queries"`
	DeadlineExceeded  int64   `json:"deadline_exceeded"`
	DegradedSeconds   float64 `json:"degraded_seconds"`
	CleanReads        int64   `json:"clean_reads"`

	// Warm-restart outcome on the settled disk.
	RecoveryMillis   float64 `json:"recovery_ms"`
	RecoveredEntries int     `json:"recovered_entries"`
	RecoveredEpoch   uint64  `json:"recovered_epoch"`
	ReappliedBatches int     `json:"reapplied_batches"`

	// Digest equality against the fault-free reference replica — the
	// differential oracle. PreCrashMatch proves faults never corrupted
	// a served answer; AnswersMatch proves recovery converged.
	PreCrashAnswersFNV  string `json:"pre_crash_answers_fnv"`
	RecoveredAnswersFNV string `json:"recovered_answers_fnv"`
	ReferenceAnswersFNV string `json:"reference_answers_fnv"`
	PreCrashMatch       bool   `json:"pre_crash_match"`
	AnswersMatch        bool   `json:"answers_match"`

	// FaultSchedule is the injector's fired-event log, in order — the
	// replay recipe for a failing run.
	FaultSchedule []faultfs.Event `json:"fault_schedule"`
}

// RunChaos runs the chaos benchmark.
func RunChaos(cfg ChaosConfig, progress Progress) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	initial, err := generateDataset(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wlScale := cfg.Scale
	if cfg.Queries > wlScale.Queries {
		wlScale.Queries = cfg.Queries
	}
	wl, err := memoizedWorkload(cfg.Workload, initial, wlScale, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	queries := wl.Queries[:min(cfg.Queries, len(wl.Queries))]

	dir := cfg.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gcplus-chaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if persist.HasState(dir) {
		return nil, fmt.Errorf("bench: data dir %s already holds state; the chaos benchmark needs a fresh directory", dir)
	}

	// The injector boots with no rules — the initial snapshot generation
	// must land or router.New fails — and is armed right after New.
	ffs := faultfs.New(persist.OSFS, cfg.Seed)

	// Clock skew (every 13th bookkeeping clock read steps 40ms back) and
	// shard stalls (every 31st job pauses) ride along: skew must only
	// distort duration metrics, stalls only back up the FIFO queues.
	var clockReads, jobCount atomic.Int64
	skewedNow := func() time.Time {
		if clockReads.Add(1)%13 == 0 {
			return time.Now().Add(-40 * time.Millisecond)
		}
		return time.Now()
	}
	stall := func(int) {
		if jobCount.Add(1)%31 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	opts := router.Options{
		Shards:        cfg.Shards,
		Method:        cfg.Method,
		Cache:         &cache.Config{Capacity: cfg.CacheCapacity, WindowSize: cfg.Scale.WindowSize},
		DataDir:       dir,
		SnapshotEvery: 3,
		WALPolicy:     cfg.WALPolicy,
		Transport:     cfg.Transport,
		Faults:        &router.FaultInjection{FS: ffs, ShardStall: stall, Now: skewedNow},
	}
	srvA, err := router.New(initial, opts)
	if err != nil {
		return nil, err
	}
	srvAClosed := false
	defer func() {
		if !srvAClosed {
			srvA.CloseAbrupt()
		}
	}()
	for _, r := range []faultfs.Rule{
		{ID: "wal-write-fail", Op: faultfs.OpWrite, Path: "wal-", Prob: 0.20},
		{ID: "wal-torn", Op: faultfs.OpWrite, Path: "wal-", Prob: 0.10, Torn: 7},
		{ID: "wal-sync-fail", Op: faultfs.OpSync, Path: "wal-", Prob: 0.10},
		{ID: "wal-latency", Op: faultfs.OpWrite, Path: "wal-", Prob: 0.10, Delay: 500 * time.Microsecond, DelayOnly: true},
		{ID: "snap-write-fail", Op: faultfs.OpWrite, Path: "snap-", Prob: 0.25},
		{ID: "snap-sync-fail", Op: faultfs.OpSync, Path: "snap-", Prob: 0.20},
		{ID: "snap-rename-fail", Op: faultfs.OpRename, Path: "snap-", Prob: 0.25},
	} {
		ffs.AddRule(r)
	}

	// Fault-free reference replica: same sharding and cache, no
	// persistence. The oracle every digest is compared against.
	refOpts := opts
	refOpts.DataDir = ""
	refOpts.SnapshotEvery = 0
	refOpts.WALPolicy = ""
	refOpts.Faults = nil
	ref, err := router.New(initial, refOpts)
	if err != nil {
		return nil, err
	}
	defer ref.Close()

	res := &ChaosResult{
		Mode:      "chaos",
		Scale:     cfg.Scale.Name,
		Workload:  cfg.Workload.Name,
		Method:    cfg.Method,
		Shards:    cfg.Shards,
		Queries:   len(queries),
		WALPolicy: cfg.WALPolicy,
		Transport: srvA.Transport(),
		Seed:      cfg.Seed,
	}
	if progress != nil {
		progress("chaos: %d queries, policy %s, data dir %s", len(queries), cfg.WALPolicy, dir)
	}

	// Background readers keep concurrent query load on the chaotic
	// server for the whole soak. Queries never touch the failing
	// filesystem, so any error here is a real serving bug.
	var (
		readerMu   sync.Mutex
		readerErr  error
		stop       atomic.Bool
		cleanReads atomic.Int64
		readers    sync.WaitGroup
	)
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for j := r; !stop.Load(); j += 2 {
				if _, err := srvA.SubgraphQuery(queries[j%len(queries)]); err != nil {
					if router.IsOverload(err) {
						continue
					}
					readerMu.Lock()
					if readerErr == nil {
						readerErr = fmt.Errorf("chaos reader: %w", err)
					}
					readerMu.Unlock()
					return
				}
				cleanReads.Add(1)
			}
		}(r)
	}

	// The chaotic stream: queries with interleaved churn, the churn
	// mirrored onto the reference. Under fail-update an update error
	// that still carries a result is the durability report — the batch
	// IS applied in memory and the WAL gap is open; that is the chaos
	// under test, not a benchmark failure.
	rng := randx.New(cfg.Seed + 7)
	churn := newChurnState(initial)
	var batches [][]changeplan.Op
	applyChurn := func() error {
		ops, toggled := churn.batch(rng, cfg.OpsPerBatch)
		if len(ops) == 0 {
			return nil
		}
		out, err := srvA.Update(ops)
		if out == nil {
			return fmt.Errorf("chaos: update batch rejected outright: %w", err)
		}
		for i, t := range toggled {
			if out.Ops[i].Err == nil {
				t.present = !t.present
			}
		}
		if _, err := ref.Update(ops); err != nil {
			return err
		}
		batches = append(batches, ops)
		res.UpdateBatches++
		return nil
	}
	for i, q := range queries {
		if _, err := srvA.SubgraphQuery(q); err != nil {
			return nil, err
		}
		if (i+1)%cfg.UpdateEvery == 0 {
			if err := applyChurn(); err != nil {
				return nil, err
			}
		}
	}
	stop.Store(true)
	readers.Wait()
	if readerErr != nil {
		return nil, readerErr
	}
	res.CleanReads = cleanReads.Load()

	// Pre-crash differential: both replicas answer the full stream.
	pre, err := measurePass(srvA, queries)
	if err != nil {
		return nil, err
	}
	refPass, err := measurePass(ref, queries)
	if err != nil {
		return nil, err
	}
	res.PreCrashAnswersFNV = fmt.Sprintf("%016x", pre.digest)
	res.ReferenceAnswersFNV = fmt.Sprintf("%016x", refPass.digest)
	res.PreCrashMatch = res.PreCrashAnswersFNV == res.ReferenceAnswersFNV

	st, err := srvA.Stats()
	if err != nil {
		return nil, err
	}
	res.FinalEpoch = st.Epoch
	res.DurableEpoch = st.DurableEpoch
	res.WALVolatileShards = st.WALVolatileShards
	res.ShedQueries = st.ShedQueries
	res.DeadlineExceeded = st.DeadlineExceeded
	res.DegradedSeconds = st.DegradedSeconds
	res.WALAppendErrors = st.WALAppendErrors

	// Abrupt kill mid-chaos, then stop the injector: recovery runs on
	// the settled (healthy) disk, the crash-shaped state it left behind.
	srvA.CloseAbrupt()
	srvAClosed = true
	ffs.Stop()
	res.FaultSchedule = ffs.Events()
	res.FaultsInjected = len(res.FaultSchedule)
	res.FaultsByOp = make(map[string]int)
	for _, ev := range res.FaultSchedule {
		res.FaultsByOp[string(ev.Op)]++
	}
	if res.FaultsInjected == 0 {
		return nil, fmt.Errorf("chaos: schedule fired no faults — nothing was tested")
	}
	if progress != nil {
		progress("chaos: %d faults injected, epoch %d (durable %d), warm restarting",
			res.FaultsInjected, res.FinalEpoch, res.DurableEpoch)
	}

	// Warm restart, re-apply the lost tail (the client retry path), and
	// demand convergence with the reference.
	t0 := time.Now()
	srvB, err := router.New(nil, opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: warm restart: %w", err)
	}
	defer srvB.Close()
	res.RecoveryMillis = float64(time.Since(t0).Microseconds()) / 1000
	var recEpoch uint64
	res.RecoveredEntries, recEpoch, _ = srvB.Recovered()
	res.RecoveredEpoch = recEpoch
	if recEpoch > uint64(len(batches)) {
		return nil, fmt.Errorf("chaos: recovered epoch %d beyond %d applied batches", recEpoch, len(batches))
	}
	for _, ops := range batches[recEpoch:] {
		if _, err := srvB.Update(ops); err != nil {
			return nil, fmt.Errorf("chaos: re-applying lost tail: %w", err)
		}
		res.ReappliedBatches++
	}
	if _, err := awaitFullValidity(srvB, 60*time.Second); err != nil {
		return nil, err
	}
	rec, err := measurePass(srvB, queries)
	if err != nil {
		return nil, err
	}
	res.RecoveredAnswersFNV = fmt.Sprintf("%016x", rec.digest)
	res.AnswersMatch = res.PreCrashMatch && res.RecoveredAnswersFNV == res.ReferenceAnswersFNV
	return res, nil
}

// WriteChaosJSON emits the summary as indented JSON.
func WriteChaosJSON(w io.Writer, res *ChaosResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
