package bench

import (
	"math/rand"
	"testing"
	"time"

	"gcplus/internal/obs"
	"gcplus/internal/stats"
)

func TestRunThroughputSmoke(t *testing.T) {
	scale, err := ScaleByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunThroughput(ThroughputConfig{
		Scale:       scale,
		Shards:      2,
		Clients:     3,
		UpdateEvery: 10,
		UpdateKind:  UpdateKindChurn,
		Seed:        42,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != scale.Queries {
		t.Fatalf("completed %d queries, want %d", res.Queries, scale.Queries)
	}
	if res.QPS <= 0 {
		t.Fatalf("QPS = %v", res.QPS)
	}
	// Percentiles come from the shared obs histogram: ordered, positive.
	if res.P50Millis <= 0 || res.P95Millis < res.P50Millis || res.P99Millis < res.P95Millis {
		t.Fatalf("percentiles disordered: p50=%v p95=%v p99=%v",
			res.P50Millis, res.P95Millis, res.P99Millis)
	}
	if res.MeanMillis <= 0 {
		t.Fatalf("mean = %v", res.MeanMillis)
	}
}

// TestHistogramPercentilesMatchSort pins the acceptance bound for the
// bench summary's switch to histogram percentiles: against the old
// sort-based computation, the histogram may only ever round *up*, by at
// most one log-bucket width (12.5%).
func TestHistogramPercentilesMatchSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := obs.NewHistogram()
	lat := make([]float64, 2000)
	for i := range lat {
		// Latency-shaped: log-normal-ish spread around 1ms.
		d := time.Duration(float64(time.Millisecond) * (0.1 + rng.ExpFloat64()))
		h.Observe(d)
		lat[i] = d.Seconds()
	}
	for _, p := range []float64{50, 95, 99} {
		sorted := stats.Percentile(lat, p) * 1000
		bucketed := h.Quantile(p/100) * 1000
		if bucketed < sorted {
			t.Errorf("p%v: histogram %vms below sort-based %vms", p, bucketed, sorted)
		}
		if bucketed > sorted*1.125+1e-9 {
			t.Errorf("p%v: histogram %vms more than one bucket above sort-based %vms", p, bucketed, sorted)
		}
	}
}
