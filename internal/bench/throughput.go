package bench

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/randx"
	"gcplus/internal/serve"
	"gcplus/internal/stats"
)

// ThroughputConfig sizes a concurrent-serving benchmark: C client
// goroutines drive queries against a sharded serve.Server while a writer
// applies update batches at the paper's ops-per-query density, giving
// future PRs a queries/sec + latency-percentile trajectory to compare
// against.
type ThroughputConfig struct {
	// Scale sizes dataset and workload (smoke/repro/paper).
	Scale Scale
	// Workload selects the query mix (default ZZ).
	Workload WorkloadSpec
	// Method names Method M's verifier (default VF2).
	Method string
	// Shards is the server's shard count (default 4).
	Shards int
	// Clients is the number of concurrent query goroutines (default 8).
	Clients int
	// Queries is the total number of queries issued across clients;
	// defaults to Scale.Queries.
	Queries int
	// UpdateEvery applies one update batch of OpsPerBatch operations
	// after every UpdateEvery queries (0 disables updates).
	UpdateEvery int
	// OpsPerBatch is the batch size (default 5).
	OpsPerBatch int
	// EagerValidate reconciles shard caches at update time.
	EagerValidate bool
	// DisableCache serves through raw Method M (baseline).
	DisableCache bool
	// VerifyParallelism bounds each shard's intra-query verification
	// worker pool (0 = auto: GOMAXPROCS/shards min 1, 1 = sequential).
	VerifyParallelism int
	// Seed drives dataset, workload and update generation.
	Seed int64
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.Workload.Name == "" {
		c.Workload, _ = SpecByName("ZZ")
	}
	if c.Method == "" {
		c.Method = "VF2"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Queries <= 0 {
		c.Queries = c.Scale.Queries
	}
	if c.OpsPerBatch <= 0 {
		c.OpsPerBatch = 5
	}
	return c
}

// ThroughputResult is the JSON summary the -throughput mode emits.
type ThroughputResult struct {
	Scale         string  `json:"scale"`
	Workload      string  `json:"workload"`
	Method        string  `json:"method"`
	Shards        int     `json:"shards"`
	Clients       int     `json:"clients"`
	EagerValidate bool    `json:"eager_validate"`
	DisableCache  bool    `json:"disable_cache"`
	VerifyPar     int     `json:"verify_parallelism"`
	Seed          int64   `json:"seed"`
	Queries       int     `json:"queries"`
	UpdateBatches int     `json:"update_batches"`
	OpsApplied    int     `json:"ops_applied"`
	Epoch         uint64  `json:"epoch"`
	WallSeconds   float64 `json:"wall_seconds"`
	QPS           float64 `json:"qps"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`
	MeanMillis    float64 `json:"mean_ms"`
	SubIsoTests   float64 `json:"subiso_tests_per_query"`
	HitRate       float64 `json:"hit_rate"`
	LiveGraphs    int     `json:"live_graphs"`
}

// RunThroughput drives a sharded server with concurrent clients and a
// serialized update stream, and summarizes throughput and latency.
func RunThroughput(cfg ThroughputConfig, progress Progress) (*ThroughputResult, error) {
	cfg = cfg.withDefaults()
	initial, err := generateDataset(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wl, err := memoizedWorkload(cfg.Workload, initial, cfg.Scale, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	srvOpts := serve.Options{
		Shards:            cfg.Shards,
		Method:            cfg.Method,
		DisableCache:      cfg.DisableCache,
		EagerValidate:     cfg.EagerValidate,
		VerifyParallelism: cfg.VerifyParallelism,
	}
	if !cfg.DisableCache {
		srvOpts.Cache = &cache.Config{
			Capacity:   cfg.Scale.CacheCapacity,
			WindowSize: cfg.Scale.WindowSize,
		}
	}
	srv, err := serve.New(initial, srvOpts)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	if progress != nil {
		progress("throughput: %d queries, %d clients, %d shards", cfg.Queries, cfg.Clients, cfg.Shards)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies = make([]float64, 0, cfg.Queries)
		firstErr  error
		next      int // next query index to claim; guarded by mu
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= cfg.Queries || firstErr != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// The writer applies one batch after every UpdateEvery queries have
	// been *issued*; it samples progress rather than synchronizing with
	// the clients, matching a live system's decoupled update stream.
	updates := make(chan struct{}, 1)
	var updateBatches, opsApplied int
	var writerWG sync.WaitGroup
	if cfg.UpdateEvery > 0 {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rng := randx.New(cfg.Seed + 7)
			for range updates {
				ops := make([]changeplan.Op, 0, cfg.OpsPerBatch)
				for len(ops) < cfg.OpsPerBatch {
					// ADD-only update stream: target resolution against
					// the sharded server is the front-end's job, and ADD
					// keeps the dataset growing like live ingest.
					ops = append(ops, changeplan.AddOp(initial[rng.Intn(len(initial))].Clone()))
				}
				res, err := srv.Update(ops)
				if err != nil {
					fail(err)
					return
				}
				updateBatches++
				opsApplied += res.Applied
			}
		}()
	}

	start := time.Now()
	wg.Add(cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		go func() {
			defer wg.Done()
			local := make([]float64, 0, cfg.Queries/cfg.Clients+1)
			for {
				i := claim()
				if i < 0 {
					break
				}
				q := wl.Queries[i%len(wl.Queries)]
				t0 := time.Now()
				if _, err := srv.SubgraphQuery(q); err != nil {
					fail(err)
					break
				}
				local = append(local, time.Since(t0).Seconds())
				if cfg.UpdateEvery > 0 && (i+1)%cfg.UpdateEvery == 0 {
					select {
					case updates <- struct{}{}:
					default: // writer busy; skip rather than queue up
					}
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(updates)
	writerWG.Wait()
	wall := time.Since(start)

	if firstErr != nil {
		return nil, firstErr
	}

	st, err := srv.Stats()
	if err != nil {
		return nil, err
	}
	// Total Method M tests across shards, per front-end query.
	totalTests := 0.0
	for _, ss := range st.PerShard {
		totalTests += ss.Metrics.SubIsoTests.Mean * float64(ss.Metrics.SubIsoTests.N)
	}
	res := &ThroughputResult{
		Scale:         cfg.Scale.Name,
		Workload:      cfg.Workload.Name,
		Method:        cfg.Method,
		Shards:        cfg.Shards,
		Clients:       cfg.Clients,
		EagerValidate: cfg.EagerValidate,
		DisableCache:  cfg.DisableCache,
		// Record the resolved worker count, not the raw config: the auto
		// default (0) is machine-dependent, and trajectory entries must
		// say what actually ran.
		VerifyPar:     serve.ResolveVerifyParallelism(cfg.VerifyParallelism, cfg.Shards),
		Seed:          cfg.Seed,
		Queries:       len(latencies),
		UpdateBatches: updateBatches,
		OpsApplied:    opsApplied,
		Epoch:         st.Epoch,
		WallSeconds:   wall.Seconds(),
		P50Millis:     stats.Percentile(latencies, 50) * 1000,
		P95Millis:     stats.Percentile(latencies, 95) * 1000,
		P99Millis:     stats.Percentile(latencies, 99) * 1000,
		MeanMillis:    stats.Mean(latencies) * 1000,
		HitRate:       st.HitRate,
		LiveGraphs:    st.LiveGraphs,
	}
	if wall > 0 {
		res.QPS = float64(len(latencies)) / wall.Seconds()
	}
	if len(latencies) > 0 {
		res.SubIsoTests = totalTests / float64(len(latencies))
	}
	return res, nil
}

// WriteThroughputJSON emits the summary as indented JSON.
func WriteThroughputJSON(w io.Writer, res *ThroughputResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
