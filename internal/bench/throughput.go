package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/graph"
	"gcplus/internal/obs"
	"gcplus/internal/randx"
	"gcplus/internal/router"
)

// ThroughputConfig sizes a concurrent-serving benchmark: C client
// goroutines drive queries against a sharded router.Server while a writer
// applies update batches at the paper's ops-per-query density, giving
// future PRs a queries/sec + latency-percentile trajectory to compare
// against.
type ThroughputConfig struct {
	// Scale sizes dataset and workload (smoke/repro/paper).
	Scale Scale
	// Workload selects the query mix (default ZZ).
	Workload WorkloadSpec
	// Method names Method M's verifier (default VF2).
	Method string
	// Shards is the server's shard count (default 4).
	Shards int
	// Clients is the number of concurrent query goroutines (default 8).
	Clients int
	// Queries is the total number of queries issued across clients;
	// defaults to Scale.Queries. When it exceeds Scale.Queries the
	// workload is generated at the larger size, so every issued query
	// is distinct — the shape a large per-shard cache needs to actually
	// fill (repeating a short query list would collapse into isomorphic
	// refreshes after the first lap).
	Queries int
	// CacheCapacity overrides the per-shard cache capacity when
	// positive (Scale.CacheCapacity otherwise) — the large-capacity
	// scenarios the query index exists for run at 2000–10000.
	CacheCapacity int
	// DisableHitIndex turns the cache query index off, so hit discovery
	// linearly scans every cached entry: the baseline the index's
	// hit-discovery speedup is measured against.
	DisableHitIndex bool
	// UpdateEvery applies one update batch of OpsPerBatch operations
	// after every UpdateEvery queries (0 disables updates).
	UpdateEvery int
	// OpsPerBatch is the batch size (default 5).
	OpsPerBatch int
	// UpdateKind selects the update stream: "add" (default) grows the
	// dataset with clones of initial graphs, like live ingest; "churn"
	// toggles edges of existing graphs (UA/UR), the update-heavy
	// scenario that invalidates cached validity bits and exercises the
	// background repair pipeline.
	UpdateKind string
	// EagerValidate reconciles shard caches at update time.
	EagerValidate bool
	// DisableCache serves through raw Method M (baseline).
	DisableCache bool
	// VerifyParallelism bounds each shard's intra-query verification
	// worker pool (0 = auto: GOMAXPROCS/shards min 1, 1 = sequential).
	VerifyParallelism int
	// RepairParallelism bounds each shard's background repair worker
	// (0 = default of 1).
	RepairParallelism int
	// DisableRepair turns background cache repair off — the baseline the
	// churn scenario compares hit-rate recovery against.
	DisableRepair bool
	// BurstClients, when positive, turns on the flash-crowd mode: that
	// many extra query clients spin up once a third of the query budget
	// has been claimed and stop at two thirds — an N× load spike in the
	// middle of the run. Burst traffic repeats workload queries without
	// consuming the budget; its served count is reported separately and
	// excluded from QPS. Requests the admission controller sheds are
	// counted and dropped, never retried — the flash-crowd contract is
	// fast failure.
	BurstClients int
	// MaxInFlightQueries caps concurrently admitted queries server-side
	// (0 = the serving default, negative = unlimited) — the admission
	// limit the burst slams into.
	MaxInFlightQueries int
	// EnablePlanner turns on each shard's cost-based query planner and
	// compiled-plan cache. Answers are bit-identical to a planner-off run
	// on the same seed — the planner ablation's invariant.
	EnablePlanner bool
	// PlanCacheSize bounds the per-shard compiled-plan cache (0 =
	// default; negative disables plan caching but keeps cost-based
	// algorithm selection). Only meaningful with EnablePlanner.
	PlanCacheSize int
	// Transport selects the router→shard transport: "local" (direct
	// in-process dispatch, the default) or "loopback" (the full wire
	// path — encode, TCP over 127.0.0.1, decode — on both legs).
	// Answers are bit-identical across transports on the same seed;
	// the per-query transport overhead is reported separately.
	Transport string
	// TraceSampleRate is the router's distributed-tracing head-sample
	// rate for the run. Zero (the default) disables tracing entirely —
	// benchmark numbers measure the untraced fast path unless a rate is
	// asked for explicitly.
	TraceSampleRate float64
	// TraceOverhead measures the cost of tracing: the workload runs four
	// passes in counterbalanced order — untraced, fully-traced, fully-
	// traced, untraced — and the fractional delta between the two modes'
	// mean qps is reported. The ABBA order cancels the machine's
	// lifetime throughput drift out of the comparison. Every pass must
	// report the same answer digest — tracing can never change an
	// answer.
	TraceOverhead bool
	// Seed drives dataset, workload and update generation.
	Seed int64
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.Workload.Name == "" {
		c.Workload, _ = SpecByName("ZZ")
	}
	if c.Method == "" {
		c.Method = "VF2"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Queries <= 0 {
		c.Queries = c.Scale.Queries
	}
	if c.OpsPerBatch <= 0 {
		c.OpsPerBatch = 5
	}
	if c.UpdateKind == "" {
		c.UpdateKind = UpdateKindAdd
	}
	if c.Transport == "" {
		c.Transport = router.TransportLocal
	}
	return c
}

// shedBackoff is the pause a bench client takes after an admission
// shed before issuing its next (different) query — long enough that
// the shed counter tracks offered load rather than a busy-loop's spin
// rate, short enough to keep the flash crowd saturating.
const shedBackoff = 250 * time.Microsecond

// Update-stream kinds for ThroughputConfig.UpdateKind.
const (
	// UpdateKindAdd grows the dataset with ADDs (live-ingest shape).
	UpdateKindAdd = "add"
	// UpdateKindChurn toggles edges of existing graphs with UA/UR — the
	// update-heavy shape that decays cache validity.
	UpdateKindChurn = "churn"
)

// ThroughputResult is the JSON summary the -throughput mode emits.
type ThroughputResult struct {
	Scale         string  `json:"scale"`
	Workload      string  `json:"workload"`
	Method        string  `json:"method"`
	Shards        int     `json:"shards"`
	Clients       int     `json:"clients"`
	UpdateKind    string  `json:"update_kind"`
	EagerValidate bool    `json:"eager_validate"`
	DisableCache  bool    `json:"disable_cache"`
	VerifyPar     int     `json:"verify_parallelism"`
	RepairPar     int     `json:"repair_parallelism"`
	CacheCapacity int     `json:"cache_capacity"`
	HitIndex      bool    `json:"hit_index"`
	Planner       bool    `json:"planner"`
	Transport     string  `json:"transport"`
	Seed          int64   `json:"seed"`
	Queries       int     `json:"queries"`
	UpdateBatches int     `json:"update_batches"`
	OpsApplied    int     `json:"ops_applied"`
	Epoch         uint64  `json:"epoch"`
	WallSeconds   float64 `json:"wall_seconds"`
	QPS           float64 `json:"qps"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`
	MeanMillis    float64 `json:"mean_ms"`
	// Transport overhead per query, microseconds: the router-observed
	// round trip minus the host-measured service time, summed over the
	// query's shard dispatches. Near zero over the local transport;
	// framing + TCP + scheduling over loopback. The qps delta between a
	// local and a loopback run on the same seed is this series' macro
	// twin.
	TransportMeanMicros float64 `json:"transport_mean_us"`
	TransportP50Micros  float64 `json:"transport_p50_us"`
	TransportP99Micros  float64 `json:"transport_p99_us"`
	SubIsoTests         float64 `json:"subiso_tests_per_query"`
	HitRate             float64 `json:"hit_rate"`
	LiveGraphs          int     `json:"live_graphs"`
	// HitMsMean is the mean hit-discovery time per front-end query,
	// summed across shards (milliseconds) — the series the query index
	// drives down as capacity grows.
	HitMsMean float64 `json:"hit_ms_mean"`
	// HitCandidates and HitScanned are the per-front-end-query mean
	// number of entries hit discovery examined vs the cache+window size
	// it faced; their ratio is the index's realized selectivity (1.0
	// when the index is off, up to kind filtering).
	HitCandidates float64 `json:"hit_candidates_per_query"`
	HitScanned    float64 `json:"hit_scanned_per_query"`
	// QPSTraced and TraceOverhead are the tracing-overhead pair,
	// populated only by a TraceOverhead run: the mean fully-sampled qps
	// across the two traced passes and the fractional qps lost to
	// tracing, (untraced − traced) / untraced over the two modes' mean
	// rates. Small negative values are run-to-run noise, not a speedup.
	QPSTraced     float64 `json:"qps_traced,omitempty"`
	TraceOverhead float64 `json:"trace_overhead,omitempty"`
	// AnswersFNV is an order-independent FNV-1a digest over every
	// (query index, answer ids) pair. Two runs on the same seed and
	// workload with updates disabled must report the same digest —
	// the bit-identical-answers check for index-on vs index-off runs.
	AnswersFNV string `json:"answers_fnv"`
	// PlanCacheHits and PlanCacheMisses summarize the compiled-plan
	// cache across shards (both zero with the planner off): hits are the
	// queries whose compilation and planning were skipped entirely.
	PlanCacheHits   int64 `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses int64 `json:"plan_cache_misses,omitempty"`
	// ValidityRatio is the final mean per-shard cache validity ratio —
	// the health metric background repair recovers under churn.
	ValidityRatio float64 `json:"validity_ratio"`
	// RepairedBits and PendingRepairs summarize the repair pipeline at
	// the end of the run.
	RepairedBits   int64 `json:"repaired_bits"`
	PendingRepairs int   `json:"pending_repairs"`
	// Flash-crowd (-burst) summary, populated when BurstClients > 0.
	// ShedQueries counts admission sheds (the 429 path: fast-failed,
	// never executed); ShedRate divides by every attempt, budgeted or
	// burst. The split p99s bracket the spike — during-burst degradation
	// and after-burst recovery are the two numbers the overload story is
	// judged on. DegradedSeconds is the wall time the pressure
	// controller spent above rung 0.
	BurstClients    int     `json:"burst_clients,omitempty"`
	BurstServed     int64   `json:"burst_served,omitempty"`
	ShedQueries     int64   `json:"shed_queries,omitempty"`
	ShedRate        float64 `json:"shed_rate,omitempty"`
	DegradedSeconds float64 `json:"degraded_seconds,omitempty"`
	P99BeforeBurst  float64 `json:"p99_before_burst_ms,omitempty"`
	P99DuringBurst  float64 `json:"p99_during_burst_ms,omitempty"`
	P99AfterBurst   float64 `json:"p99_after_burst_ms,omitempty"`
}

// RunThroughput drives a sharded server with concurrent clients and a
// serialized update stream, and summarizes throughput and latency.
// With cfg.TraceOverhead it runs the workload twice — tracing off,
// then every request traced — and annotates the base summary with the
// qps delta.
func RunThroughput(cfg ThroughputConfig, progress Progress) (*ThroughputResult, error) {
	cfg = cfg.withDefaults()
	res, err := runThroughputOnce(cfg, progress)
	if err != nil || !cfg.TraceOverhead {
		return res, err
	}
	// Tracing overhead is a small signal under machine-level noise:
	// shared CPUs swing run-to-run qps by ±10%, and throughput commonly
	// drifts downward over a process's lifetime (burst credits, thermal
	// and frequency scaling), so any design that always runs the traced
	// pass after the untraced one biases the delta against tracing. The
	// counterbalanced ABBA order — untraced, traced, traced, untraced —
	// puts both modes at the same mean position in time, so linear drift
	// cancels out of the mean-vs-mean delta.
	traced := cfg
	traced.TraceOverhead = false
	traced.TraceSampleRate = 1
	sumU, sumT := res.QPS, 0.0
	rerun := func(c ThroughputConfig, label string) (float64, error) {
		if progress != nil {
			progress("trace overhead: " + label)
		}
		r, err := runThroughputOnce(c, progress)
		if err != nil {
			return 0, err
		}
		if r.AnswersFNV != res.AnswersFNV {
			return 0, fmt.Errorf("bench: %s answers diverge: %s vs %s (tracing can never change an answer)",
				label, res.AnswersFNV, r.AnswersFNV)
		}
		return r.QPS, nil
	}
	for i := 0; i < 2; i++ {
		q, err := rerun(traced, fmt.Sprintf("traced pass %d/2 (every request sampled)", i+1))
		if err != nil {
			return nil, err
		}
		sumT += q
	}
	q, err := rerun(cfg, "untraced pass 2/2")
	if err != nil {
		return nil, err
	}
	sumU += q
	res.QPSTraced = sumT / 2
	res.TraceOverhead = (sumU - sumT) / sumU
	return res, nil
}

func runThroughputOnce(cfg ThroughputConfig, progress Progress) (*ThroughputResult, error) {
	initial, err := generateDataset(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Size the workload to the issued query count so large-capacity runs
	// see distinct queries throughout (see ThroughputConfig.Queries).
	wlScale := cfg.Scale
	if cfg.Queries > wlScale.Queries {
		wlScale.Queries = cfg.Queries
	}
	wl, err := memoizedWorkload(cfg.Workload, initial, wlScale, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	if cfg.UpdateKind != UpdateKindAdd && cfg.UpdateKind != UpdateKindChurn {
		return nil, fmt.Errorf("bench: unknown update kind %q (want %q or %q)",
			cfg.UpdateKind, UpdateKindAdd, UpdateKindChurn)
	}

	srvOpts := router.Options{
		Shards:             cfg.Shards,
		Method:             cfg.Method,
		DisableCache:       cfg.DisableCache,
		EagerValidate:      cfg.EagerValidate,
		VerifyParallelism:  cfg.VerifyParallelism,
		RepairParallelism:  cfg.RepairParallelism,
		DisableRepair:      cfg.DisableRepair,
		MaxInFlightQueries: cfg.MaxInFlightQueries,
		EnablePlanner:      cfg.EnablePlanner,
		PlanCacheSize:      cfg.PlanCacheSize,
		Transport:          cfg.Transport,
		// The router treats zero as "default rate"; the bench treats it
		// as "off" so baselines never pay for sampling they didn't ask for.
		TraceSampleRate: cfg.TraceSampleRate,
	}
	if srvOpts.TraceSampleRate <= 0 {
		srvOpts.TraceSampleRate = -1
	}
	capacity := cfg.Scale.CacheCapacity
	if cfg.CacheCapacity > 0 {
		capacity = cfg.CacheCapacity
	}
	if !cfg.DisableCache {
		srvOpts.Cache = &cache.Config{
			Capacity:        capacity,
			WindowSize:      cfg.Scale.WindowSize,
			DisableHitIndex: cfg.DisableHitIndex,
		}
	}
	srv, err := router.New(initial, srvOpts)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	if progress != nil {
		progress("throughput: %d queries, %d clients, %d shards", cfg.Queries, cfg.Clients, cfg.Shards)
	}

	// One shared latency histogram across clients: lock-free atomic
	// recording, and the *same* bucketing/percentile code path the
	// serving layer's /metrics exposes — a p99 in a BENCH_*.json and a
	// p99 on a dashboard can never disagree about method.
	hist := obs.NewHistogram()
	// Per-query transport overhead (summed across shard dispatches),
	// recorded only for the budgeted stream so local vs loopback runs
	// compare like for like.
	thist := obs.NewHistogram()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		ansDigest uint64 // XOR of per-query answer hashes; guarded by mu
		firstErr  error
		next      int // next query index to claim; guarded by mu
	)

	// Flash-crowd instrumentation: a phase index (0 before, 1 during,
	// 2 after the spike) selects which histogram records each latency,
	// so the spike's p99 is separable from the calm on either side. The
	// transitions ride the claim counter — deterministic in the query
	// stream, not in wall time.
	burst := cfg.BurstClients > 0
	var (
		phase       atomic.Int32
		shed        atomic.Int64
		burstServed atomic.Int64
		startBurst  sync.Once
		stopBurst   sync.Once
	)
	phaseHists := [3]*obs.Histogram{obs.NewHistogram(), obs.NewHistogram(), obs.NewHistogram()}
	burstStart := make(chan struct{})
	burstStop := make(chan struct{})
	burstLo, burstHi := cfg.Queries/3, 2*cfg.Queries/3

	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= cfg.Queries || firstErr != nil {
			return -1
		}
		i := next
		next++
		if burst {
			if i == burstLo {
				phase.Store(1)
				startBurst.Do(func() { close(burstStart) })
			}
			if i == burstHi {
				phase.Store(2)
				stopBurst.Do(func() { close(burstStop) })
			}
		}
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// The writer applies one batch after every UpdateEvery queries have
	// been *issued*; it samples progress rather than synchronizing with
	// the clients, matching a live system's decoupled update stream.
	updates := make(chan struct{}, 1)
	var updateBatches, opsApplied int
	var writerWG sync.WaitGroup
	if cfg.UpdateEvery > 0 {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rng := randx.New(cfg.Seed + 7)
			churn := newChurnState(initial)
			for range updates {
				var ops []changeplan.Op
				var toggled []*toggleEdge
				if cfg.UpdateKind == UpdateKindChurn {
					ops, toggled = churn.batch(rng, cfg.OpsPerBatch)
				} else {
					ops = make([]changeplan.Op, 0, cfg.OpsPerBatch)
					for len(ops) < cfg.OpsPerBatch {
						// ADD stream: target resolution against the
						// sharded server is the front-end's job, and ADD
						// keeps the dataset growing like live ingest.
						ops = append(ops, changeplan.AddOp(initial[rng.Intn(len(initial))].Clone()))
					}
				}
				res, err := srv.Update(ops)
				if err != nil {
					fail(err)
					return
				}
				for i, t := range toggled {
					if res.Ops[i].Err == nil {
						t.present = !t.present
					}
				}
				updateBatches++
				opsApplied += res.Applied
			}
		}()
	}

	// Burst clients: pure extra load, gated on the stream position. They
	// repeat workload queries without claiming budget indices, so the
	// budgeted stream's digest and QPS stay comparable across runs.
	var burstWG sync.WaitGroup
	if burst {
		burstWG.Add(cfg.BurstClients)
		for b := 0; b < cfg.BurstClients; b++ {
			go func(b int) {
				defer burstWG.Done()
				select {
				case <-burstStart:
				case <-burstStop:
					return
				}
				for j := b; ; j += cfg.BurstClients {
					select {
					case <-burstStop:
						return
					default:
					}
					q := wl.Queries[j%len(wl.Queries)]
					t0 := time.Now()
					if _, err := srv.SubgraphQuery(q); err != nil {
						if router.IsOverload(err) {
							shed.Add(1)
							// Brief pause, no retry of this query: sheds
							// should track offered load, not the spin rate
							// of a rejection busy-loop.
							time.Sleep(shedBackoff)
							continue
						}
						fail(err)
						return
					}
					phaseHists[phase.Load()].Observe(time.Since(t0))
					burstServed.Add(1)
				}
			}(b)
		}
	}

	start := time.Now()
	wg.Add(cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		go func() {
			defer wg.Done()
			var digest uint64
			for {
				i := claim()
				if i < 0 {
					break
				}
				q := wl.Queries[i%len(wl.Queries)]
				t0 := time.Now()
				res, err := srv.SubgraphQuery(q)
				switch {
				case err != nil && router.IsOverload(err):
					// Admission shed: count it and move on. The query's
					// answer hash is skipped, so a run that sheds reports
					// a different digest than one that does not — digest
					// comparisons only hold between shed-free runs.
					shed.Add(1)
					time.Sleep(shedBackoff)
				case err != nil:
					fail(err)
				default:
					d := time.Since(t0)
					hist.Observe(d)
					var tsum time.Duration
					for _, td := range res.Transport {
						tsum += td
					}
					thist.Observe(tsum)
					if burst {
						phaseHists[phase.Load()].Observe(d)
					}
					digest ^= answerHash(i, res.IDs)
				}
				if err != nil && !router.IsOverload(err) {
					break
				}
				if cfg.UpdateEvery > 0 && (i+1)%cfg.UpdateEvery == 0 {
					select {
					case updates <- struct{}{}:
					default: // writer busy; skip rather than queue up
					}
				}
			}
			mu.Lock()
			ansDigest ^= digest
			mu.Unlock()
		}()
	}
	wg.Wait()
	if burst {
		// The budget may drain before the 2/3 mark is claimed (an error
		// aborts the run early); make the stop edge unconditional.
		stopBurst.Do(func() { close(burstStop) })
		burstWG.Wait()
	}
	close(updates)
	writerWG.Wait()
	wall := time.Since(start)

	if firstErr != nil {
		return nil, firstErr
	}

	st, err := srv.Stats()
	if err != nil {
		return nil, err
	}
	// Total Method M tests, hit-discovery time and hit-discovery work
	// across shards, per front-end query.
	var totalTests, totalHitSec, totalHitCands, totalHitScanned float64
	for _, ss := range st.PerShard {
		totalTests += ss.Metrics.SubIsoTests.Mean * float64(ss.Metrics.SubIsoTests.N)
		totalHitSec += ss.Metrics.HitTimeSec.Mean * float64(ss.Metrics.HitTimeSec.N)
		totalHitCands += ss.Metrics.HitCandidates.Mean * float64(ss.Metrics.HitCandidates.N)
		totalHitScanned += ss.Metrics.HitScanned.Mean * float64(ss.Metrics.HitScanned.N)
	}
	res := &ThroughputResult{
		Scale:         cfg.Scale.Name,
		Workload:      cfg.Workload.Name,
		Method:        cfg.Method,
		Shards:        cfg.Shards,
		Clients:       cfg.Clients,
		UpdateKind:    cfg.UpdateKind,
		EagerValidate: cfg.EagerValidate,
		DisableCache:  cfg.DisableCache,
		// Record the resolved worker counts, not the raw config: the auto
		// defaults (0) are machine-dependent, and trajectory entries must
		// say what actually ran.
		VerifyPar:           router.ResolveVerifyParallelism(cfg.VerifyParallelism, cfg.Shards),
		RepairPar:           router.ResolveRepairParallelism(cfg.RepairParallelism, !cfg.DisableRepair && !cfg.DisableCache),
		CacheCapacity:       capacity,
		HitIndex:            !cfg.DisableHitIndex && !cfg.DisableCache,
		Planner:             cfg.EnablePlanner,
		Transport:           srv.Transport(),
		Seed:                cfg.Seed,
		Queries:             int(hist.Count()),
		UpdateBatches:       updateBatches,
		OpsApplied:          opsApplied,
		Epoch:               st.Epoch,
		WallSeconds:         wall.Seconds(),
		P50Millis:           hist.Quantile(0.50) * 1000,
		P95Millis:           hist.Quantile(0.95) * 1000,
		P99Millis:           hist.Quantile(0.99) * 1000,
		MeanMillis:          hist.MeanSeconds() * 1000,
		TransportMeanMicros: thist.MeanSeconds() * 1e6,
		TransportP50Micros:  thist.Quantile(0.50) * 1e6,
		TransportP99Micros:  thist.Quantile(0.99) * 1e6,
		HitRate:             st.HitRate,
		LiveGraphs:          st.LiveGraphs,
		ValidityRatio:       st.ValidityRatio,
		RepairedBits:        st.RepairedBits,
		PendingRepairs:      st.PendingRepairs,

		PlanCacheHits:   st.PlanCacheHits,
		PlanCacheMisses: st.PlanCacheMisses,
	}
	if wall > 0 {
		res.QPS = float64(res.Queries) / wall.Seconds()
	}
	if res.Queries > 0 {
		n := float64(res.Queries)
		res.SubIsoTests = totalTests / n
		res.HitMsMean = totalHitSec / n * 1000
		res.HitCandidates = totalHitCands / n
		res.HitScanned = totalHitScanned / n
	}
	res.ShedQueries = shed.Load()
	res.DegradedSeconds = st.DegradedSeconds
	if burst {
		res.BurstClients = cfg.BurstClients
		res.BurstServed = burstServed.Load()
		if attempts := float64(res.Queries) + float64(res.BurstServed+res.ShedQueries); attempts > 0 {
			res.ShedRate = float64(res.ShedQueries) / attempts
		}
		res.P99BeforeBurst = phaseHists[0].Quantile(0.99) * 1000
		res.P99DuringBurst = phaseHists[1].Quantile(0.99) * 1000
		res.P99AfterBurst = phaseHists[2].Quantile(0.99) * 1000
	}
	res.AnswersFNV = fmt.Sprintf("%016x", ansDigest)
	return res, nil
}

// answerHash digests one query's answer: FNV-1a over the query's index
// in the stream and its (already sorted) global answer ids. Per-query
// hashes are XORed together so the digest is independent of client
// interleaving.
func answerHash(queryIdx int, ids []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(queryIdx))
	for _, id := range ids {
		put(uint64(id))
	}
	return h.Sum64()
}

// toggleEdge is the writer's belief about one tracked edge of an
// initial graph. The benchmark's writer is the only mutator of the
// served dataset, so flipping the belief on each acknowledged op keeps
// it exact and every generated UA/UR applicable.
type toggleEdge struct {
	u, v    int
	present bool
}

// churnState picks, per dataset graph, one edge to toggle with
// alternating UA/UR ops — a sustained update-heavy stream over existing
// graphs that clears cached validity bits without ever failing an op.
type churnState struct {
	initial []*graph.Graph
	edges   map[int]*toggleEdge
}

func newChurnState(initial []*graph.Graph) *churnState {
	return &churnState{initial: initial, edges: make(map[int]*toggleEdge)}
}

// batch draws up to n ops on distinct graphs (distinct so each touched
// graph sees a UA- or UR-exclusive batch, exercising Algorithm 2's
// survival rules rather than only the mixed-ops clear). It returns the
// ops plus the toggle each op came from, index-aligned, so the caller
// can flip beliefs for acknowledged ops.
func (cs *churnState) batch(rng *rand.Rand, n int) ([]changeplan.Op, []*toggleEdge) {
	ops := make([]changeplan.Op, 0, n)
	toggled := make([]*toggleEdge, 0, n)
	used := make(map[int]bool, n)
	for tries := 0; len(ops) < n && tries < 8*n; tries++ {
		id := rng.Intn(len(cs.initial))
		if used[id] {
			continue
		}
		t := cs.toggleFor(rng, id)
		if t == nil {
			continue
		}
		used[id] = true
		if t.present {
			ops = append(ops, changeplan.RemoveEdgeOp(id, t.u, t.v))
		} else {
			ops = append(ops, changeplan.AddEdgeOp(id, t.u, t.v))
		}
		toggled = append(toggled, t)
	}
	return ops, toggled
}

// toggleFor returns graph id's tracked edge, choosing one on first use:
// preferably an absent vertex pair (so the first op is a UA), falling
// back to an existing edge, or nil for graphs too small to toggle.
func (cs *churnState) toggleFor(rng *rand.Rand, id int) *toggleEdge {
	if t, ok := cs.edges[id]; ok {
		return t
	}
	g := cs.initial[id]
	n := g.NumVertices()
	var t *toggleEdge
	for tries := 0; t == nil && n >= 2 && tries < 32; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			t = &toggleEdge{u: u, v: v}
		}
	}
	if t == nil && g.NumEdges() > 0 {
		e := g.EdgeList()[rng.Intn(g.NumEdges())]
		t = &toggleEdge{u: int(e.U), v: int(e.V), present: true}
	}
	if t != nil {
		cs.edges[id] = t
	}
	return t
}

// WriteThroughputJSON emits the summary as indented JSON.
func WriteThroughputJSON(w io.Writer, res *ThroughputResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
