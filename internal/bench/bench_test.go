package bench

import (
	"bytes"
	"strings"
	"testing"

	"gcplus/internal/cache"
)

// tinyScale keeps unit tests fast.
func tinyScale() Scale {
	return Scale{
		Name:             "tiny",
		DatasetGraphs:    60,
		Queries:          80,
		WarmupQueries:    20,
		MeanVertices:     16,
		StdVertices:      5,
		MaxVertices:      30,
		CacheCapacity:    50,
		WindowSize:       10,
		PoolSize:         30,
		NoAnswerPoolSize: 8,
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"smoke", "repro", "paper"} {
		s, err := ScaleByName(n)
		if err != nil || s.Name != n {
			t.Errorf("ScaleByName(%q) = %+v, %v", n, s, err)
		}
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestSpecByName(t *testing.T) {
	for _, n := range []string{"ZZ", "ZU", "UU", "0%", "20%", "50%"} {
		s, err := SpecByName(n)
		if err != nil || s.Name != n {
			t.Errorf("SpecByName(%q) failed: %v", n, err)
		}
	}
	if _, err := SpecByName("QQ"); err == nil {
		t.Error("bad workload accepted")
	}
	if len(AllSpecs()) != 6 {
		t.Error("AllSpecs should have 6 entries")
	}
}

func TestRunBaseline(t *testing.T) {
	res, err := Run(RunConfig{
		Scale:    tinyScale(),
		Workload: TypeASpecs()[0],
		Method:   "VF2",
		System:   SystemM,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.MeasuredQueries != 60 { // 80 - 20 warmup
		t.Fatalf("measured %d queries", m.MeasuredQueries)
	}
	// baseline tests every live graph
	if m.SubIsoTests.Mean() < float64(tinyScale().DatasetGraphs)/2 {
		t.Fatalf("baseline tested too few graphs: %.1f", m.SubIsoTests.Mean())
	}
	if m.Overhead.Sum() != 0 {
		t.Fatal("baseline must have no overhead")
	}
	if res.OpsApplied == 0 {
		t.Fatal("change plan did not run")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	if _, err := Run(RunConfig{Scale: tinyScale(), Workload: TypeASpecs()[0], Method: "X", System: SystemM}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunCONOutprunesEVI(t *testing.T) {
	sc := tinyScale()
	spec := TypeASpecs()[0] // ZZ: most cache-friendly
	var tests [3]float64
	for i, sys := range []System{SystemM, SystemEVI, SystemCON} {
		res, err := Run(RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: sys, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		tests[i] = res.Metrics.MeanSubIsoTests()
	}
	if !(tests[2] < tests[1] && tests[1] <= tests[0]) {
		t.Fatalf("expected CON < EVI <= M in mean tests, got M=%.1f EVI=%.1f CON=%.1f",
			tests[0], tests[1], tests[2])
	}
}

func TestRunNoChangesMakesModelsEquivalent(t *testing.T) {
	sc := tinyScale()
	spec := TypeASpecs()[0]
	get := func(sys System) float64 {
		res, err := Run(RunConfig{Scale: sc, Workload: spec, Method: "VF2", System: sys, NoChanges: true, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.SubIsoTests.Sum()
	}
	if evi, con := get(SystemEVI), get(SystemCON); evi != con {
		t.Fatalf("static dataset: EVI (%.0f) and CON (%.0f) must coincide", evi, con)
	}
}

func TestMatrixAndFigures(t *testing.T) {
	sc := tinyScale()
	specs := []WorkloadSpec{TypeASpecs()[0], TypeBSpecs()[0]}
	m, err := RunMatrix(sc, 2, []string{"VF2", "VF2+"}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyIndependence(); err != nil {
		t.Fatalf("method independence violated: %v", err)
	}
	var f4, f5, f6 bytes.Buffer
	m.Figure4(&f4)
	m.Figure5(&f5)
	m.Figure6(&f6)
	for name, out := range map[string]string{"fig4": f4.String(), "fig5": f5.String(), "fig6": f6.String()} {
		if !strings.Contains(out, "ZZ") || !strings.Contains(out, "0%") {
			t.Errorf("%s output missing workloads:\n%s", name, out)
		}
	}
	if !strings.Contains(f4.String(), "VF2+") {
		t.Error("Figure 4 missing second method")
	}
	if got := m.Get("VF2", "ZZ", SystemCON); got == nil {
		t.Error("Get failed")
	}
	if got := m.Get("GQL", "ZZ", SystemCON); got != nil {
		t.Error("Get returned a cell that was not run")
	}
}

func TestInsights(t *testing.T) {
	rows, err := RunInsights(tinyScale(), 3, "VF2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d insight rows", len(rows))
	}
	var buf bytes.Buffer
	PrintInsights(&buf, rows)
	if !strings.Contains(buf.String(), "exact-hits") {
		t.Error("insight table malformed")
	}
	for _, r := range rows {
		if r.ZeroTestExact > r.IsoHitQueries {
			t.Errorf("%s: zero-test exact hits (%d) exceed exact hits (%d)",
				r.Workload, r.ZeroTestExact, r.IsoHitQueries)
		}
	}
}

func TestPolicyAblation(t *testing.T) {
	rows, err := RunPolicyAblation(tinyScale(), 5, "VF2", TypeASpecs()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d policy rows", len(rows))
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "policies", rows)
	if !strings.Contains(buf.String(), "HD") {
		t.Error("ablation table malformed")
	}
}

func TestValidityAblation(t *testing.T) {
	rows, err := RunValidityAblation(tinyScale(), 5, "VF2", TypeASpecs()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d validity rows", len(rows))
	}
	// strict invalidation can only prune less (more tests per query)
	if rows[1].MeanTests+1e-9 < rows[0].MeanTests {
		t.Errorf("strict variant pruned more than Algorithm 2: %.2f vs %.2f",
			rows[1].MeanTests, rows[0].MeanTests)
	}
}

func TestCacheSizeAblation(t *testing.T) {
	rows, err := RunCacheSizeAblation(tinyScale(), 5, "VF2", TypeASpecs()[0], []int{10, 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d size rows", len(rows))
	}
}

func TestChangeRateAblation(t *testing.T) {
	rows, err := RunChangeRateAblation(tinyScale(), 5, "VF2", TypeASpecs()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d change-rate rows", len(rows))
	}
	_ = cache.PolicyHD // silence import when assertions change
}
