package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"gcplus/internal/dataset"
	"gcplus/internal/persist"
)

// This file is the serving side of the durability subsystem
// (internal/persist): WAL appends as owner jobs, snapshot generations,
// and warm-restart recovery. See the persist package comment for the
// on-disk layout and the crash-safety argument.

// enqueueWALAppends enqueues, on every shard, the owner job that drains
// the batch's walPending ops into one epoch-stamped frame and appends it
// (fsynced unless NoSync). Called with seqMu held exclusively, right
// after the batch's op jobs — FIFO order guarantees the pending list
// holds exactly this batch's applied ops when the job runs. Untouched
// shards log an empty frame, keeping per-shard epochs dense.
func (s *Server) enqueueWALAppends(epoch uint64) []<-chan error {
	acks := make([]<-chan error, len(s.shards))
	for i, sh := range s.shards {
		ch := make(chan error, 1)
		acks[i] = ch
		sh.enqueue(func() {
			batch := persist.WALBatch{Epoch: epoch, Ops: sh.walPending}
			sh.walPending = nil
			if sh.wal == nil {
				sh.walAppendErrors.Add(1)
				ch <- fmt.Errorf("serve: shard %d has no open WAL segment", sh.id)
				return
			}
			if sh.volatileWAL.Load() {
				// A durability gap is already open: recovery replays only
				// a contiguous epoch chain, so frames appended past the
				// gap can never prove anything durable. Don't pretend —
				// resolve per policy and wait for rotation to heal.
				sh.walAppendErrors.Add(1)
				if s.opts.WALPolicy == WALPolicyDegradeToVolatile {
					ch <- nil
					return
				}
				ch <- fmt.Errorf("serve: shard %d WAL has a durability gap since batch %d; awaiting snapshot rotation", sh.id, sh.walGapEpoch)
				return
			}
			at := time.Now()
			payload, err := persist.EncodeWALBatch(&batch)
			if err == nil {
				err = sh.wal.Append(payload)
				// Bounded in-place retries: a retryable failure means the
				// appender rolled the segment back to the previous frame
				// boundary, so the same frame can simply be written again
				// after an exponential backoff. The jitter is derived
				// deterministically from (epoch, shard, attempt) so chaos
				// runs replay bit-identically from their seed.
				for attempt := 0; err != nil && persist.IsRetryableAppend(err) && attempt < walAppendRetries; attempt++ {
					d := walRetryBase << attempt
					d += time.Duration((epoch*2654435761 + uint64(sh.id)*7919 + uint64(attempt)*104729) % uint64(walRetryBase))
					time.Sleep(d)
					err = sh.wal.Append(payload)
				}
			}
			// The append latency is dominated by the fsync (unless
			// NoSync) — the per-batch durability price the histogram
			// exists to expose.
			sh.walAppend.Observe(time.Since(at))
			sh.walAppends.Add(1)
			if err == nil {
				storeMax(&sh.durableEpoch, epoch)
				ch <- nil
				return
			}
			sh.walAppendErrors.Add(1)
			s.noteWALGap(sh, epoch, err)
			if s.opts.WALPolicy == WALPolicyDegradeToVolatile {
				ch <- nil
				return
			}
			ch <- err
		})
	}
	return acks
}

// storeMax monotonically raises a to at least v.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// noteWALGap latches shard sh's durability gap after a final (post-
// retry) append failure: an edge-triggered alarm fires once, the
// shard's durable-epoch claim freezes, and a healing snapshot is
// scheduled — rotation anchors a fresh segment past the gap. Runs on
// the owner goroutine (walGapEpoch is owner state).
func (s *Server) noteWALGap(sh *shard, epoch uint64, cause error) {
	if !sh.volatileWAL.Swap(true) {
		sh.walGapEpoch = epoch
		s.log.Error("WAL durability gap opened",
			"shard", sh.id, "epoch", epoch, "policy", s.opts.WALPolicy, "err", cause)
	}
	s.scheduleSnapshotRetry()
}

// scheduleSnapshotRetry arranges a background snapshot attempt after a
// backoff that doubles with consecutive generation failures, instead of
// waiting for the next SnapshotEvery trigger. At most one retry is
// pending at a time; a failed attempt re-schedules itself through the
// collector's failure path.
func (s *Server) scheduleSnapshotRetry() {
	if s.store == nil || !s.snapRetryPending.CompareAndSwap(false, true) {
		return
	}
	d := snapRetryCap
	if n := s.snapFailures.Load(); n < 6 {
		d = snapRetryBase << n
	}
	time.AfterFunc(d, func() {
		s.snapRetryPending.Store(false)
		// ErrClosed and repeat failures need no handling here: the
		// collector's failure path schedules the next retry.
		_ = s.Snapshot()
	})
}

// Snapshot forces a snapshot generation at the current epoch and waits
// until it is durable on every shard (or fails; a failed generation
// leaves the previous one and its WAL chain intact). It returns an
// error when persistence is not configured.
func (s *Server) Snapshot() error {
	if s.store == nil {
		return fmt.Errorf("serve: persistence is not configured")
	}
	s.snapMu.Lock() // lock order: snapMu before seqMu
	s.seqMu.RLock()
	if s.closed {
		s.seqMu.RUnlock()
		s.snapMu.Unlock()
		return ErrClosed
	}
	done := s.enqueueSnapshotLocked(s.epoch) // releases snapMu when done
	s.seqMu.RUnlock()
	return <-done
}

// maybeSnapshotLocked starts an asynchronous snapshot generation at
// epoch if none is in flight. Called from Update with seqMu held
// exclusively; TryLock keeps the writer path from ever blocking on an
// in-flight generation.
func (s *Server) maybeSnapshotLocked(epoch uint64) {
	if !s.snapMu.TryLock() {
		return
	}
	s.enqueueSnapshotLocked(epoch)
}

// enqueueSnapshotLocked enqueues one snapshot-export job per shard and
// spawns the collector that writes the generation's files. Caller holds
// snapMu and seqMu (either mode); holding seqMu across the enqueues is
// what makes the generation consistent — every shard exports at exactly
// the given epoch. The collector releases snapMu and reports on the
// returned channel.
//
// The owner job does three things back to back: reconcile the cache
// with the shard log (so the exported cache's AppliedSeq equals the
// dataset's sequence number — the precondition for not persisting the
// log itself), export dataset + runtime state (cheap: graph pointers
// are shared, bitsets cloned), and rotate the WAL so the new segment's
// frames are exactly the batches after this generation. File encoding
// and IO run on the collector, off the owner.
func (s *Server) enqueueSnapshotLocked(epoch uint64) <-chan error {
	done := make(chan error, 1)
	start := time.Now()
	exports := make([]*persist.ShardSnapshot, len(s.shards))
	rotateErrs := make([]error, len(s.shards))
	acks := make(chan int, len(s.shards))
	for i, sh := range s.shards {
		sh.enqueue(func() {
			defer func() { acks <- 1 }()
			sh.rt.Sync()
			l2g := make([]int, len(sh.localToGlobal))
			copy(l2g, sh.localToGlobal)
			exports[i] = &persist.ShardSnapshot{
				Epoch:         epoch,
				Dataset:       sh.ds.Export(),
				LocalToGlobal: l2g,
				State:         sh.rt.ExportState(),
			}
			if s.walWanted() {
				// Rotation also heals a missing or poisoned segment
				// from an earlier failed append or rotation — every
				// generation retries, so a transient disk error does
				// not disable logging for the process's lifetime.
				if sh.wal != nil {
					if err := sh.wal.Close(); err != nil && !sh.volatileWAL.Load() {
						// A clean segment must flush before rotation; a
						// gapped one is already useless for replay, so its
						// close failure must not fail the generation that
						// exists to heal it.
						rotateErrs[i] = err
					}
					sh.wal = nil
				}
				w, err := persist.CreateWALFS(s.store.FS(), s.store.WALPath(sh.id, epoch), sh.id, epoch, !s.opts.NoSync)
				if err != nil {
					// Fail loudly on the next Update rather than drop
					// batches silently: enqueueWALAppends errors on a
					// nil segment.
					rotateErrs[i] = err
					return
				}
				sh.wal = w
			}
		})
	}
	go func() {
		defer s.snapMu.Unlock()
		for range s.shards {
			<-acks
		}
		var firstErr error
		for _, err := range rotateErrs {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("serve: WAL rotation: %w", err)
			}
		}
		for i, ex := range exports {
			if firstErr != nil {
				break
			}
			payload, err := persist.EncodeShardSnapshot(ex)
			if err == nil {
				err = persist.WriteSnapshotFileFS(s.store.FS(), s.store.SnapshotPath(i, epoch), i, payload)
			}
			if err != nil {
				firstErr = fmt.Errorf("serve: snapshot shard %d: %w", i, err)
			}
		}
		if firstErr == nil {
			s.store.RemoveObsolete(epoch)
			s.lastSnapshotEpoch.Store(epoch)
			s.snapshotsWritten.Add(1)
			s.snapFailures.Store(0)
			for _, sh := range s.shards {
				// The generation itself proves everything ≤ epoch
				// durable, and the rotation anchored a fresh segment —
				// any open durability gap is healed.
				storeMax(&sh.durableEpoch, epoch)
				if sh.volatileWAL.CompareAndSwap(true, false) {
					s.log.Warn("WAL durability gap healed by snapshot rotation",
						"shard", sh.id, "epoch", epoch)
				}
			}
			if s.snapHist != nil {
				s.snapHist.Observe(time.Since(start))
			}
			s.log.Info("snapshot generation durable",
				"epoch", epoch, "wall", time.Since(start),
				"generations", s.snapshotsWritten.Load())
		} else {
			// Best-effort removal of the failed generation's files: a
			// stray snap-<epoch> surviving here could later pair with a
			// different attempt's files at the same epoch and
			// masquerade as a complete generation.
			for i := range s.shards {
				s.store.FS().Remove(s.store.SnapshotPath(i, epoch))
			}
			s.snapFailures.Add(1)
			s.log.Error("snapshot generation failed", "epoch", epoch,
				"consecutive_failures", s.snapFailures.Load(), "err", firstErr)
			s.scheduleSnapshotRetry()
		}
		done <- firstErr
	}()
	return done
}

// Recovered reports whether this server booted via warm-restart
// recovery, and if so how many cache entries were restored and the
// epoch recovery reached after WAL replay.
func (s *Server) Recovered() (entries int, epoch uint64, ok bool) {
	return s.recoveredEntries, s.recoveredEpoch, s.recovered
}

// replayFrame is one decoded WAL batch plus where it lives on disk, so
// recovery can truncate the segment chain at the cross-shard
// consistency point.
type replayFrame struct {
	batch   *persist.WALBatch
	segBase uint64
	end     int64 // offset just past the frame within its segment
}

// recover performs the warm restart: load the newest complete snapshot
// generation, replay each shard's WAL chain up to the newest batch
// durable on every shard, truncate the torn remainder, and rebuild the
// server-level id map and epoch. Shard goroutines are not running yet —
// everything here is single-threaded construction.
func (s *Server) recover() error {
	snaps, err := s.loadSnapshots()
	if err != nil {
		return err
	}
	snapEpoch := snaps[0].Epoch
	s.shards = make([]*shard, s.opts.Shards)
	for i, snap := range snaps {
		coreOpts, err := s.shardCoreOptions()
		if err != nil {
			return err
		}
		sh, err := newShardOver(i, dataset.Restore(snap.Dataset), snap.LocalToGlobal, coreOpts)
		if err != nil {
			return err
		}
		if err := sh.rt.RestoreState(snap.State); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		s.recoveredEntries += sh.rt.CacheSize() + sh.rt.CacheStats().Window
		s.shards[i] = sh
	}

	// Read each shard's segment chain: contiguous epochs starting at
	// snapEpoch+1, stopping at the first gap, torn frame or decode
	// failure. The newest batch durable on every shard is the minimum
	// of the per-shard chain ends — batches beyond it were never
	// acknowledged (their frames are not durable everywhere) and are
	// discarded exactly as if they had never happened.
	chains := make([][]replayFrame, len(s.shards))
	safe := ^uint64(0)
	for i := range s.shards {
		chain, err := s.readChain(i, snapEpoch)
		if err != nil {
			return err
		}
		chains[i] = chain
		last := snapEpoch
		if len(chain) > 0 {
			last = chain[len(chain)-1].batch.Epoch
		}
		if last < safe {
			safe = last
		}
	}

	for i, sh := range s.shards {
		for _, f := range chains[i] {
			if f.batch.Epoch > safe {
				break
			}
			if err := sh.replayBatch(f.batch); err != nil {
				return fmt.Errorf("shard %d, batch %d: %w", i, f.batch.Epoch, err)
			}
		}
		if err := s.resetShardWAL(sh, chains[i], snapEpoch, safe); err != nil {
			return err
		}
	}

	// Rebuild the global id map from the shard-local maps: every global
	// id ever assigned belongs to exactly one shard.
	total := 0
	for _, sh := range s.shards {
		total += len(sh.localToGlobal)
	}
	s.loc = make([]location, total)
	seen := make([]bool, total)
	for _, sh := range s.shards {
		for local, gid := range sh.localToGlobal {
			if gid < 0 || gid >= total || seen[gid] {
				return fmt.Errorf("shard %d maps local %d to invalid or duplicate global id %d", sh.id, local, gid)
			}
			seen[gid] = true
			s.loc[gid] = location{shard: int32(sh.id), local: int32(local)}
		}
	}
	s.nextAdd = total
	s.epoch = safe
	s.recoveredEpoch = safe
	s.recovered = true
	s.lastSnapshotEpoch.Store(snapEpoch)
	for _, sh := range s.shards {
		// Everything replayed is durable by definition — it was read
		// back from disk.
		sh.durableEpoch.Store(safe)
	}
	// Purge partial debris of generations newer than the recovery
	// point, so it can never pair up with a future generation attempt
	// at the same epoch.
	s.store.RemoveSnapshotsAfter(snapEpoch)
	return nil
}

// loadSnapshots decodes the newest complete snapshot generation. A
// decode failure is fatal, not a trigger to fall back to an older
// generation: the newest generation's WAL predecessors were deleted
// when it became durable, so booting from an older one would silently
// roll back batches that were fsynced and acknowledged — a loud
// refusal (operator restores from backup) is the only answer that
// keeps the durability contract honest.
func (s *Server) loadSnapshots() ([]*persist.ShardSnapshot, error) {
	gens := s.store.CompleteSnapshotEpochs()
	if len(gens) == 0 {
		return nil, fmt.Errorf("data directory holds state but no complete snapshot generation")
	}
	epoch := gens[0]
	snaps := make([]*persist.ShardSnapshot, s.opts.Shards)
	for i := range snaps {
		payload, err := persist.ReadSnapshotFileFS(s.store.FS(), s.store.SnapshotPath(i, epoch), i)
		if err == nil {
			snaps[i], err = persist.DecodeShardSnapshot(payload)
		}
		if err == nil && snaps[i].Epoch != epoch {
			err = fmt.Errorf("snapshot file claims epoch %d, name says %d", snaps[i].Epoch, epoch)
		}
		if err != nil {
			return nil, fmt.Errorf("newest snapshot generation %d is unreadable (shard %d): %w; refusing to roll back to an older generation", epoch, i, err)
		}
	}
	return snaps, nil
}

// readChain reads shard i's WAL segments from the snapshot epoch on,
// returning the contiguous batch chain. Unreadable or out-of-sequence
// tails are cut, not fatal — they are the expected debris of a crash.
func (s *Server) readChain(i int, snapEpoch uint64) ([]replayFrame, error) {
	segs := s.store.WALSegments(i)
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	var chain []replayFrame
	expect := snapEpoch + 1
	for _, base := range segs {
		if base < snapEpoch {
			continue // pre-generation segment awaiting cleanup
		}
		baseEpoch, frames, _, _, err := persist.ReadWALFileFS(s.store.FS(), s.store.WALPath(i, base), i)
		if err != nil {
			return nil, fmt.Errorf("shard %d, segment %d: %w", i, base, err)
		}
		if len(frames) == 0 {
			break // empty (possibly torn-header) segment ends the chain
		}
		if baseEpoch != base {
			return nil, fmt.Errorf("shard %d: segment file %d has base epoch %d", i, base, baseEpoch)
		}
		brokeChain := false
		for _, f := range frames {
			batch, err := persist.DecodeWALBatch(f.Payload)
			if err != nil || batch.Epoch != expect {
				brokeChain = true
				break // treat like a torn tail: keep the intact prefix
			}
			chain = append(chain, replayFrame{batch: batch, segBase: base, end: f.End})
			expect++
		}
		if brokeChain {
			break
		}
	}
	return chain, nil
}

// replayBatch applies one logged batch to the shard: ops run through
// the existing executor (changeplan.Op.Apply) against the shard
// dataset, in shard-local id space, and ADDs extend the local→global
// map with their logged global ids. Every logged op applied once
// before, so a replay failure means corruption and is fatal.
func (sh *shard) replayBatch(b *persist.WALBatch) error {
	for _, wop := range b.Ops {
		if wop.Op.Type == dataset.OpAdd {
			local, err := sh.ds.Add(wop.Op.Graph)
			if err != nil {
				return err
			}
			if local != len(sh.localToGlobal) {
				return fmt.Errorf("replayed ADD got local id %d, want %d", local, len(sh.localToGlobal))
			}
			sh.localToGlobal = append(sh.localToGlobal, wop.GlobalID)
			continue
		}
		if _, err := wop.Op.Apply(sh.ds); err != nil {
			return err
		}
	}
	sh.nextLocal = len(sh.localToGlobal)
	return nil
}

// resetShardWAL puts shard sh's on-disk WAL in sync with the recovered
// state: the segment holding the last replayed batch is truncated just
// past it (cutting torn frames and discarded batches), later segments
// are removed, and the shard's appender continues from there. With the
// WAL disabled, stale segments are left for the next snapshot's cleanup.
func (s *Server) resetShardWAL(sh *shard, chain []replayFrame, snapEpoch, safe uint64) error {
	if !s.walWanted() {
		return nil
	}
	keepBase, keepEnd := snapEpoch, int64(-1) // -1: truncate to just past the header
	for _, f := range chain {
		if f.batch.Epoch > safe {
			break
		}
		keepBase, keepEnd = f.segBase, f.end
	}
	for _, base := range s.store.WALSegments(sh.id) {
		if base > keepBase {
			s.store.FS().Remove(s.store.WALPath(sh.id, base))
		}
	}
	path := s.store.WALPath(sh.id, keepBase)
	if keepEnd < 0 {
		// No replayed frame lives in a segment: start the base segment
		// afresh (it may not exist, or hold only discarded frames).
		w, err := persist.CreateWALFS(s.store.FS(), path, sh.id, keepBase, !s.opts.NoSync)
		if err != nil {
			return err
		}
		sh.wal = w
		return nil
	}
	w, err := persist.OpenWALAppendFS(s.store.FS(), path, sh.id, keepEnd, !s.opts.NoSync)
	if err != nil {
		return err
	}
	sh.wal = w
	return nil
}
