package serve

import (
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

// jobQueueDepth bounds how many jobs can wait per shard before enqueue
// blocks. Enqueues happen under the sequence lock, so a deep queue keeps
// bursts from serializing front-end callers on a single slow shard.
const jobQueueDepth = 128

// shard owns one partition of the dataset: its own dataset.Dataset (with
// its own update log for §5.2 CON validation), core.Runtime and GC+
// cache. A single worker goroutine — this shard's member of the query
// worker pool — executes every job touching the shard state, which is
// what makes the not-thread-safe runtime safe to serve from: all access
// is funnelled through the FIFO jobs queue.
type shard struct {
	id   int
	ds   *dataset.Dataset
	rt   *core.Runtime
	jobs chan func()
	done chan struct{}

	// localToGlobal translates shard-local graph ids to global ids. It
	// is appended to by ADD jobs and read by query jobs — both run on
	// the worker goroutine, so no locking is needed.
	localToGlobal []int

	// nextLocal predicts the local id the next ADD will receive. It is
	// writer-path state (guarded by Server.seqMu exclusive): the update
	// router needs the mapping before the shard job has run, so later
	// ops in the same batch can target a graph added earlier in it.
	nextLocal int
}

// newShard builds a shard over its partition. gids lists the global ids
// of the partition graphs in local-id order.
func newShard(id int, part []*graph.Graph, gids []int, opts core.Options) (*shard, error) {
	ds := dataset.New(part)
	rt, err := core.NewRuntime(ds, opts)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:            id,
		ds:            ds,
		rt:            rt,
		jobs:          make(chan func(), jobQueueDepth),
		done:          make(chan struct{}),
		localToGlobal: gids,
		nextLocal:     len(part),
	}
	go sh.loop()
	return sh, nil
}

// loop is the worker goroutine: drain jobs in FIFO order until stopped.
func (sh *shard) loop() {
	defer close(sh.done)
	for job := range sh.jobs {
		job()
	}
}

// stop closes the job queue and waits for the worker to drain it.
func (sh *shard) stop() {
	close(sh.jobs)
	<-sh.done
}
