package serve

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/obs"
	"gcplus/internal/persist"
)

// jobQueueDepth bounds how many jobs can wait per shard before enqueue
// blocks. Enqueues happen under the sequence lock, so a deep queue keeps
// bursts from serializing front-end callers on a single slow shard.
const jobQueueDepth = 128

// shard owns one partition of the dataset: its own dataset.Dataset (with
// its own update log for §5.2 CON validation), core.Runtime and GC+
// cache. A single worker goroutine — this shard's member of the query
// worker pool — executes every job touching the shard state, which is
// what makes the not-thread-safe runtime safe to serve from: all access
// is funnelled through the FIFO jobs queue.
type shard struct {
	id   int
	ds   *dataset.Dataset
	rt   *core.Runtime
	jobs chan func()
	done chan struct{}

	// Background repair pipeline (nil channels when repair is off). The
	// repair goroutine never touches shard state directly: it enqueues a
	// plan job and a commit job on the worker (owner context) and runs
	// only the verification phase — which reads immutable data — itself.
	repairKick chan struct{} // worker → repair loop: queue non-empty
	repairQuit chan struct{} // closed by stop, before jobs is closed
	repairDone chan struct{} // closed when the repair loop has exited

	// Durability state (nil/empty when persistence is off). wal is the
	// shard's current WAL segment; appends, rotation and walPending are
	// all owner-goroutine state, ordered with the dataset mutations they
	// record by the FIFO queue itself. walPending accumulates the
	// current batch's successfully applied ops between the batch's op
	// jobs and its WAL-append job.
	wal        *persist.WAL
	walPending []persist.WALOp

	// durableEpoch is the newest epoch this shard can prove durable
	// (last successful WAL append or snapshot covering it); stats reads
	// it lock-free and the server's durable-epoch claim is the minimum
	// over shards. volatileWAL latches when the degrade-to-volatile
	// policy swallows an append failure; cleared when a snapshot
	// rotation installs a fresh healthy segment.
	durableEpoch atomic.Uint64
	volatileWAL  atomic.Bool
	walGapEpoch  uint64 // first epoch lost to the open gap (owner state)

	// localToGlobal translates shard-local graph ids to global ids. It
	// is appended to by ADD jobs and read by query jobs — both run on
	// the worker goroutine, so no locking is needed.
	localToGlobal []int

	// nextLocal predicts the local id the next ADD will receive. It is
	// writer-path state (guarded by Server.seqMu exclusive): the update
	// router needs the mapping before the shard job has run, so later
	// ops in the same batch can target a graph an earlier op is about to
	// add.
	nextLocal int

	// Observability. queueWait measures enqueue-to-execution latency of
	// every job routed through enqueue — the head-of-line blocking a
	// query experiences behind updates, repairs and snapshots on this
	// shard. walAppend measures the WAL append (encode + write + fsync)
	// inside the owner job; walAppends/walAppendErrors are its lifetime
	// counters, read lock-free by stats and metrics scrapes.
	queueWait       *obs.Histogram
	walAppend       *obs.Histogram
	walAppends      atomic.Int64
	walAppendErrors atomic.Int64
	// log receives shard lifecycle warnings (repair-queue drops); set by
	// the Server before start. lastRepairDropped is owner-goroutine
	// state backing the drop-detection edge trigger.
	log               *slog.Logger
	lastRepairDropped int64

	// pendingRepairs mirrors the runtime's repair backlog for lock-free
	// reads by the pressure controller; the owner goroutine publishes it
	// after every job (PendingRepairs itself is owner-context only).
	pendingRepairs atomic.Int64

	// Fault-injection and clock hooks, set by the Server before start.
	// stall (nil in production) runs at the start of every job; now
	// replaces time.Now for queue-wait bookkeeping.
	stall func(int)
	now   func() time.Time

	// repairCtx is cancelled by stop so an in-flight repair verification
	// exits at its next cooperative checkpoint instead of finishing the
	// whole batch.
	repairCtx    context.Context
	repairCancel context.CancelFunc
}

// newShard builds a shard over its partition. gids lists the global ids
// of the partition graphs in local-id order. The shard's goroutines are
// not started: callers run start once the shard state — possibly
// overlaid with recovered snapshot/WAL state — is final.
func newShard(id int, part []*graph.Graph, gids []int, opts core.Options) (*shard, error) {
	return newShardOver(id, dataset.New(part), gids, opts)
}

// newShardOver builds a shard over an existing dataset (the recovery
// path restores the dataset first).
func newShardOver(id int, ds *dataset.Dataset, gids []int, opts core.Options) (*shard, error) {
	rt, err := core.NewRuntime(ds, opts)
	if err != nil {
		return nil, err
	}
	return &shard{
		id:            id,
		ds:            ds,
		rt:            rt,
		jobs:          make(chan func(), jobQueueDepth),
		done:          make(chan struct{}),
		localToGlobal: gids,
		nextLocal:     len(gids),
		queueWait:     obs.NewHistogram(),
		walAppend:     obs.NewHistogram(),
		now:           time.Now,
	}, nil
}

// enqueue submits a job to the shard worker, recording how long it
// waited in the queue before running. Every job producer goes through
// here so the queue-wait histogram covers the shard's whole workload
// and the stall hook covers every job. The wait is clamped at zero:
// under clock-skew injection sh.now may step backwards, and a skewed
// clock must only distort metrics, never state.
func (sh *shard) enqueue(fn func()) {
	at := sh.now()
	sh.jobs <- func() {
		if sh.stall != nil {
			sh.stall(sh.id)
		}
		if d := sh.now().Sub(at); d > 0 {
			sh.queueWait.Observe(d)
		} else {
			sh.queueWait.Observe(0)
		}
		fn()
	}
}

// start launches the shard's worker goroutine and, when repairPar > 0
// and the shard has a cache, its background repair worker.
func (sh *shard) start(repairPar int) {
	if repairPar > 0 && sh.rt.CacheEnabled() {
		sh.repairKick = make(chan struct{}, 1)
		sh.repairQuit = make(chan struct{})
		sh.repairDone = make(chan struct{})
		sh.repairCtx, sh.repairCancel = context.WithCancel(context.Background())
		go sh.repairLoop(repairPar)
	}
	go sh.loop()
}

// loop is the worker goroutine: drain jobs in FIFO order until stopped.
// After every job it kicks the repair loop if validation left
// invalidated pairs behind (PendingRepairs is an owner-context read).
func (sh *shard) loop() {
	defer close(sh.done)
	for job := range sh.jobs {
		job()
		if sh.rt.CacheEnabled() {
			// Publish the repair backlog for the pressure controller's
			// lock-free sampling (owner-context read, atomic publish).
			sh.pendingRepairs.Store(int64(sh.rt.PendingRepairs()))
		}
		if sh.repairKick != nil {
			if sh.log != nil {
				// Edge-triggered drop warning: the cache counts pairs it
				// sheds on a full repair queue; surface each increase once
				// instead of flooding one line per dropped pair.
				if d := sh.rt.CacheStats().RepairDropped; d > sh.lastRepairDropped {
					sh.log.Warn("repair queue full, invalidated pairs dropped",
						"shard", sh.id, "dropped", d-sh.lastRepairDropped, "total_dropped", d)
					sh.lastRepairDropped = d
				}
			}
			if sh.rt.PendingRepairs() > 0 {
				select {
				case sh.repairKick <- struct{}{}:
				default: // a kick is already pending
				}
			}
		}
	}
}

// repairLoop is the shard's background repair worker. Each round drains
// one batch of invalidated (entry, graph) pairs via an owner-context
// plan job, re-verifies them on this goroutine (fanning out to
// parallelism workers over immutable data), and restores the surviving
// bits via an owner-context commit job. Because plan and commit run on
// the worker goroutine, repair interleaves with queries and update
// batches without locks and can never race an in-flight batch; the
// graph-version pointer check in CommitRepairs drops any result an
// interleaved update made stale.
func (sh *shard) repairLoop(parallelism int) {
	defer close(sh.repairDone)
	for {
		select {
		case <-sh.repairQuit:
			return
		case <-sh.repairKick:
		}
		for {
			select {
			case <-sh.repairQuit:
				return
			default:
			}
			var jobs []core.RepairJob
			planned := make(chan struct{})
			sh.enqueue(func() {
				jobs = sh.rt.PlanRepairs(core.DefaultRepairBatch)
				close(planned)
			})
			<-planned
			if len(jobs) == 0 {
				break
			}
			results := sh.rt.VerifyRepairsCtx(sh.repairCtx, jobs, parallelism)
			committed := make(chan struct{})
			sh.enqueue(func() {
				sh.rt.CommitRepairs(results)
				close(committed)
			})
			<-committed
		}
	}
}

// stop shuts the shard down: first the repair loop (it enqueues jobs,
// so it must exit before the queue closes), then the worker. The WAL
// segment stays open — in-flight appends have drained by the time stop
// returns, and the Server closes the files last.
func (sh *shard) stop() {
	if sh.repairQuit != nil {
		close(sh.repairQuit)
		sh.repairCancel() // abort an in-flight verification batch early
		<-sh.repairDone
	}
	close(sh.jobs)
	<-sh.done
}
