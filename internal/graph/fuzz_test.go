package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzGraphCodecRoundTrip feeds arbitrary bytes to the text-codec
// parser; whatever parses successfully must survive a Write → Parse
// round trip structurally unchanged. The first parse normalizes the
// input (whitespace, name joining), so the round-tripped graphs are
// compared against the *first* parse, which is the codec's fixed point.
func FuzzGraphCodecRoundTrip(f *testing.F) {
	f.Add("t g\nv 0 1\nv 1 2\ne 0 1\n")
	f.Add("t a b\nv 0 0\n# comment\n\nt second\nv 0 4294967295\n")
	f.Add("t cycle\nv 0 1\nv 1 1\nv 2 1\ne 0 1\ne 1 2\ne 0 2\n")
	f.Add("v 0 1\n")     // vertex before header: must error
	f.Add("t g\ne 0 1")  // edge with no vertices: must error
	f.Add("t g\nv 1 1")  // non-dense ids: must error
	f.Add("t g\nv 0 -1") // negative label: must error
	f.Fuzz(func(t *testing.T, input string) {
		first, err := Parse(strings.NewReader(input))
		if err != nil {
			return // invalid input is fine; it just must not crash
		}
		var buf bytes.Buffer
		if err := Write(&buf, first); err != nil {
			t.Fatalf("Write failed on parsed graphs: %v", err)
		}
		second, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written output failed: %v\noutput:\n%s", err, buf.String())
		}
		if len(second) != len(first) {
			t.Fatalf("round trip changed graph count: %d → %d", len(first), len(second))
		}
		for i := range first {
			requireSameGraph(t, first[i], second[i])
		}
	})
}

func requireSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name() != b.Name() {
		t.Fatalf("name %q → %q", a.Name(), b.Name())
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape %d/%d → %d/%d vertices/edges",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(v) != b.Label(v) {
			t.Fatalf("vertex %d label %d → %d", v, a.Label(v), b.Label(v))
		}
	}
	ae, be := a.EdgeList(), b.EdgeList()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d: %v → %v", i, ae[i], be[i])
		}
	}
}
