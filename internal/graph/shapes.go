package graph

// Convenience constructors for common shapes. They are used throughout the
// test suite and the examples; queries in the paper's workloads are
// connected graphs of 4–20 edges, which these shapes emulate directly.

// Path returns the path graph v0-v1-...-vn with the given vertex labels.
func Path(labels ...Label) *Graph {
	b := NewBuilder()
	for _, l := range labels {
		b.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		b.AddEdge(i-1, i)
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph over the given labels (needs >= 3 vertices
// to have a cycle; fewer degenerate to Path).
func Cycle(labels ...Label) *Graph {
	if len(labels) < 3 {
		return Path(labels...)
	}
	b := NewBuilder()
	for _, l := range labels {
		b.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		b.AddEdge(i-1, i)
	}
	b.AddEdge(len(labels)-1, 0)
	return b.MustBuild()
}

// Star returns a star with the given center label and leaf labels.
func Star(center Label, leaves ...Label) *Graph {
	b := NewBuilder()
	c := b.AddVertex(center)
	for _, l := range leaves {
		v := b.AddVertex(l)
		b.AddEdge(c, v)
	}
	return b.MustBuild()
}

// Clique returns the complete graph over the given labels.
func Clique(labels ...Label) *Graph {
	b := NewBuilder()
	for _, l := range labels {
		b.AddVertex(l)
	}
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

// Single returns the one-vertex graph with the given label.
func Single(l Label) *Graph {
	b := NewBuilder()
	b.AddVertex(l)
	return b.MustBuild()
}
