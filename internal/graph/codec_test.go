package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	in := []*Graph{Path(1, 2, 3), Cycle(4, 5, 6, 7), Star(0, 1, 1, 2)}
	in[0].SetName("p")
	in[1].SetName("c")
	in[2].SetName("s")
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("parsed %d graphs, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name() != in[i].Name() {
			t.Errorf("graph %d name %q want %q", i, out[i].Name(), in[i].Name())
		}
		if !sameGraph(in[i], out[i]) {
			t.Errorf("graph %d round trip mismatch", i)
		}
	}
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(v) != b.Label(v) || a.Degree(v) != b.Degree(v) {
			return false
		}
		for i, w := range a.Neighbors(v) {
			if b.Neighbors(v)[i] != w {
				return false
			}
		}
	}
	return true
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
t one

v 0 7
v 1 8
# another
e 0 1
`
	gs, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].Name() != "one" || gs[0].NumEdges() != 1 || gs[0].Label(0) != 7 {
		t.Fatalf("parsed %v", gs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"vertex before header": "v 0 1\n",
		"edge before header":   "e 0 1\n",
		"sparse vertex ids":    "t g\nv 1 0\n",
		"bad vertex id":        "t g\nv x 0\n",
		"bad label":            "t g\nv 0 -1\n",
		"bad edge arity":       "t g\nv 0 1\nv 1 1\ne 0\n",
		"bad endpoint":         "t g\nv 0 1\ne 0 z\n",
		"unknown record":       "t g\nq 1\n",
		"self loop":            "t g\nv 0 1\ne 0 0\n",
		"duplicate edge":       "t g\nv 0 1\nv 1 1\ne 0 1\ne 1 0\n",
		"dangling endpoint":    "t g\nv 0 1\ne 0 3\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, src)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	gs, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 0 {
		t.Fatalf("parsed %d graphs from empty input", len(gs))
	}
}

func TestParseMultiWordName(t *testing.T) {
	gs, err := Parse(strings.NewReader("t hello world\nv 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].Name() != "hello world" {
		t.Fatalf("name = %q", gs[0].Name())
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make([]*Graph, 1+rng.Intn(4))
		for i := range in {
			in[i] = randomGraph(rng, 15)
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Parse(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !sameGraph(in[i], out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	g := Path(1, 2, 3)
	back, err := Unmarshal(Marshal(g))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 3 || back.NumEdges() != 2 || back.Label(2) != 3 {
		t.Fatalf("round trip mangled the graph: %v", back)
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty input should not parse as one graph")
	}
	two := append(Marshal(Path(1)), Marshal(Path(2))...)
	if _, err := Unmarshal(two); err == nil {
		t.Fatal("two graphs should be rejected")
	}
}
