// Package graph implements the labelled undirected graphs that GC+ (the
// EDBT 2017 GraphCache+ system) operates on.
//
// Following §3 of the paper, a graph G = (V, E, l) has vertices V
// identified by dense integer indices, undirected edges E, and a labelling
// function l over the vertices only (edge labels generalize trivially and
// are omitted, as in the paper). Graphs are small (tens to a few hundred
// vertices — the AIDS dataset used in the evaluation averages 45 vertices
// and 47 edges) while datasets hold tens of thousands of them, so the
// representation favours compactness: adjacency lists of int32 kept in
// sorted order.
//
// Graph values are treated as immutable once published to a Dataset or a
// cache; dataset update operations (UA/UR) use the copy-on-write WithEdge
// and WithoutEdge so that answer snapshots taken by the cache remain
// meaningful historical facts.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Label is a vertex label. The evaluation dataset (AIDS) uses atom types;
// the synthetic generator uses small integers with a skewed distribution.
type Label uint32

// Graph is a labelled undirected graph. The zero value is an empty graph.
type Graph struct {
	name   string
	labels []Label
	adj    [][]int32 // adj[v] sorted ascending; both directions stored
	m      int       // number of undirected edges

	// summary memoizes the structural Summary once the graph is published
	// (graphs are immutable after construction; Clone and the copy-on-write
	// edge updates build fresh Graph values, so a stale summary can never
	// be observed).
	summary summaryCell
}

// Name returns the graph's optional name (dataset id, query id, ...).
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's name. Names are metadata and do not take part
// in isomorphism.
func (g *Graph) SetName(n string) { g.name = n }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E| (undirected edges counted once).
func (g *Graph) NumEdges() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v int) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The caller must not
// modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbour list of v. The caller must not
// modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int32
}

// EdgeList returns all undirected edges with U < V, sorted.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				out = append(out, Edge{int32(u), v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{name: g.name, m: g.m}
	c.labels = append([]Label(nil), g.labels...)
	c.adj = make([][]int32, len(g.adj))
	for v, ns := range g.adj {
		c.adj[v] = append([]int32(nil), ns...)
	}
	return c
}

// WithEdge returns a copy of g with the undirected edge {u, v} added.
// It returns an error if the edge already exists, is a self loop, or an
// endpoint is out of range. This is the dataset UA (update by edge
// addition) primitive.
func (g *Graph) WithEdge(u, v int) (*Graph, error) {
	if err := g.checkEndpoints(u, v); err != nil {
		return nil, err
	}
	if g.HasEdge(u, v) {
		return nil, fmt.Errorf("graph: edge {%d,%d} already present", u, v)
	}
	c := g.Clone()
	c.insertArc(u, v)
	c.insertArc(v, u)
	c.m++
	return c, nil
}

// WithoutEdge returns a copy of g with the undirected edge {u, v} removed.
// It returns an error if the edge does not exist. This is the dataset UR
// (update by edge removal) primitive.
func (g *Graph) WithoutEdge(u, v int) (*Graph, error) {
	if err := g.checkEndpoints(u, v); err != nil {
		return nil, err
	}
	if !g.HasEdge(u, v) {
		return nil, fmt.Errorf("graph: edge {%d,%d} not present", u, v)
	}
	c := g.Clone()
	c.removeArc(u, v)
	c.removeArc(v, u)
	c.m--
	return c, nil
}

func (g *Graph) checkEndpoints(u, v int) error {
	if u < 0 || v < 0 || u >= len(g.labels) || v >= len(g.labels) {
		return fmt.Errorf("graph: endpoint out of range: {%d,%d} with %d vertices", u, v, len(g.labels))
	}
	if u == v {
		return errors.New("graph: self loops are not allowed")
	}
	return nil
}

func (g *Graph) insertArc(u, v int) {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = int32(v)
	g.adj[u] = a
}

func (g *Graph) removeArc(u, v int) {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		g.adj[u] = append(a[:i], a[i+1:]...)
	}
}

// LabelCounts returns the multiset of vertex labels as a map.
func (g *Graph) LabelCounts() map[Label]int {
	c := make(map[Label]int, 8)
	for _, l := range g.labels {
		c[l]++
	}
	return c
}

// MaxDegree returns the maximum vertex degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for _, ns := range g.adj {
		if len(ns) > d {
			d = len(ns)
		}
	}
	return d
}

// Connected reports whether g is connected. The empty graph counts as
// connected; a single vertex does too.
func (g *Graph) Connected() bool {
	n := len(g.labels)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// Validate checks internal invariants: sorted adjacency, symmetry, no self
// loops or duplicates, edge count consistency. It is used by the codec and
// by tests.
func (g *Graph) Validate() error {
	arcs := 0
	for u, ns := range g.adj {
		for i, v := range ns {
			if v < 0 || int(v) >= len(g.labels) {
				return fmt.Errorf("graph %q: vertex %d has out-of-range neighbour %d", g.name, u, v)
			}
			if int(v) == u {
				return fmt.Errorf("graph %q: self loop at %d", g.name, u)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("graph %q: adjacency of %d not strictly sorted", g.name, u)
			}
			if !g.HasEdge(int(v), u) {
				return fmt.Errorf("graph %q: asymmetric edge {%d,%d}", g.name, u, v)
			}
		}
		arcs += len(ns)
	}
	if arcs != 2*g.m {
		return fmt.Errorf("graph %q: edge count %d inconsistent with %d arcs", g.name, g.m, arcs)
	}
	return nil
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%q |V|=%d |E|=%d)", g.name, len(g.labels), g.m)
}

// A Builder incrementally constructs a Graph. It tolerates edges inserted
// in any order and duplicates are rejected at Build time.
type Builder struct {
	labels []Label
	edges  []Edge
	name   string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// SetName sets the name of the graph under construction.
func (b *Builder) SetName(n string) *Builder { b.name = n; return b }

// AddVertex appends a vertex with the given label and returns its index.
func (b *Builder) AddVertex(l Label) int {
	b.labels = append(b.labels, l)
	return len(b.labels) - 1
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// AddEdge records the undirected edge {u, v}. Validation happens in Build.
func (b *Builder) AddEdge(u, v int) *Builder {
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{int32(u), int32(v)})
	return b
}

// Build materializes the graph, validating endpoints, rejecting self loops
// and duplicate edges.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{
		name:   b.name,
		labels: append([]Label(nil), b.labels...),
		adj:    make([][]int32, len(b.labels)),
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", e.U, e.V)
		}
		if int(e.U) < 0 || int(e.V) >= len(b.labels) {
			return nil, fmt.Errorf("graph: edge {%d,%d} endpoint out of range", e.U, e.V)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self loop at %d", e.U)
		}
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
		g.m++
	}
	for v := range g.adj {
		ns := g.adj[v]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
