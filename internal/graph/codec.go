package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec reads and writes the line-oriented format customary for
// graph-database benchmarks (a close relative of the format the AIDS
// dataset ships in):
//
//	t <name>        start of a graph
//	v <id> <label>  vertex declaration; ids must be dense, in order
//	e <u> <v>       undirected edge
//	# ...           comment, ignored
//
// Blank lines are ignored. A file may contain any number of graphs.

// Write serializes the graphs to w in the text format.
func Write(w io.Writer, graphs []*Graph) error {
	bw := bufio.NewWriter(w)
	for _, g := range graphs {
		if _, err := fmt.Fprintf(bw, "t %s\n", g.Name()); err != nil {
			return err
		}
		for v := 0; v < g.NumVertices(); v++ {
			if _, err := fmt.Fprintf(bw, "v %d %d\n", v, g.Label(v)); err != nil {
				return err
			}
		}
		for _, e := range g.EdgeList() {
			if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.V); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Marshal serializes a single graph to the text format — the payload
// form the durability subsystem embeds in snapshots and WAL frames
// (length-prefixed by the frame codec, so the text form needs no
// escaping of its own).
func Marshal(g *Graph) []byte {
	var buf bytes.Buffer
	// Write on a bytes.Buffer cannot fail.
	_ = Write(&buf, []*Graph{g})
	return buf.Bytes()
}

// Unmarshal parses exactly one graph in the text format.
func Unmarshal(data []byte) (*Graph, error) {
	gs, err := Parse(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("graph: want exactly one graph, got %d", len(gs))
	}
	return gs[0], nil
}

// Parse reads every graph in the text format from r.
func Parse(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		graphs []*Graph
		b      *Builder
		line   int
	)
	flush := func() error {
		if b == nil {
			return nil
		}
		g, err := b.Build()
		if err != nil {
			return fmt.Errorf("graph %d ending at line %d: %w", len(graphs), line, err)
		}
		graphs = append(graphs, g)
		b = nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "t":
			if err := flush(); err != nil {
				return nil, err
			}
			b = NewBuilder()
			if len(fields) > 1 {
				b.SetName(strings.Join(fields[1:], " "))
			}
		case "v":
			if b == nil {
				return nil, fmt.Errorf("line %d: vertex before graph header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want 'v <id> <label>'", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad vertex id: %w", line, err)
			}
			if id != b.NumVertices() {
				return nil, fmt.Errorf("line %d: vertex ids must be dense and ordered; got %d want %d", line, id, b.NumVertices())
			}
			lbl, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad label: %w", line, err)
			}
			b.AddVertex(Label(lbl))
		case "e":
			if b == nil {
				return nil, fmt.Errorf("line %d: edge before graph header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want 'e <u> <v>'", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad endpoint: %w", line, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad endpoint: %w", line, err)
			}
			b.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return graphs, nil
}
