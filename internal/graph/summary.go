package graph

import (
	"sort"
	"sync/atomic"
)

// Summary is an immutable, precomputed digest of one graph: the pieces of
// structure every sub-iso quick-reject and candidate-pruning step keeps
// re-deriving — label multiset, degree sequence, per-vertex neighbourhood
// label profiles — materialized once so the verification hot path touches
// only sorted slices, never maps.
//
// Summaries are memoized on the Graph itself (graphs are immutable once
// published) and the Dataset Manager warms them at insert/update time, so
// query-time verification finds them already built.
type Summary struct {
	vertices  int
	edges     int
	maxDegree int
	// degrees is the degree sequence sorted descending.
	degrees []int32
	// labels holds per-label vertex counts sorted ascending by label.
	labels []LabelCount
	// profOff/profLab hold, per vertex, the sorted multiset of its
	// neighbours' labels: vertex v's profile is profLab[profOff[v]:profOff[v+1]].
	profOff []int32
	profLab []Label
}

// LabelCount is one (label, vertex count) pair of a Summary.
type LabelCount struct {
	Label Label
	Count int32
}

// Summary returns the graph's structural summary, computing and memoizing
// it on first use. Safe for concurrent use on published (immutable) graphs.
func (g *Graph) Summary() *Summary {
	if s := g.summary.Load(); s != nil {
		return s
	}
	s := summarize(g)
	g.summary.Store(s)
	return s
}

func summarize(g *Graph) *Summary {
	nv := g.NumVertices()
	s := &Summary{
		vertices: nv,
		edges:    g.NumEdges(),
		degrees:  make([]int32, nv),
		profOff:  make([]int32, nv+1),
		profLab:  make([]Label, 0, 2*g.NumEdges()),
	}
	for v := 0; v < nv; v++ {
		d := g.Degree(v)
		s.degrees[v] = int32(d)
		if d > s.maxDegree {
			s.maxDegree = d
		}
	}
	sort.Slice(s.degrees, func(i, j int) bool { return s.degrees[i] > s.degrees[j] })

	// Label counts via sort + run-length encoding: no map, and the result
	// is born in the sorted order SubsumedBy's merge walk needs.
	sorted := make([]Label, nv)
	copy(sorted, g.Labels())
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < nv; {
		j := i
		for j < nv && sorted[j] == sorted[i] {
			j++
		}
		s.labels = append(s.labels, LabelCount{Label: sorted[i], Count: int32(j - i)})
		i = j
	}

	for v := 0; v < nv; v++ {
		s.profOff[v] = int32(len(s.profLab))
		start := len(s.profLab)
		for _, w := range g.Neighbors(v) {
			s.profLab = append(s.profLab, g.Label(int(w)))
		}
		seg := s.profLab[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	s.profOff[nv] = int32(len(s.profLab))
	return s
}

// Vertices returns |V|.
func (s *Summary) Vertices() int { return s.vertices }

// Edges returns |E|.
func (s *Summary) Edges() int { return s.edges }

// MaxDegree returns the maximum vertex degree.
func (s *Summary) MaxDegree() int { return s.maxDegree }

// Degrees returns the degree sequence sorted descending. The caller must
// not modify it.
func (s *Summary) Degrees() []int32 { return s.degrees }

// LabelCounts returns the per-label vertex counts sorted ascending by
// label. The caller must not modify it.
func (s *Summary) LabelCounts() []LabelCount { return s.labels }

// Profile returns the sorted multiset of vertex v's neighbours' labels.
// The caller must not modify it.
func (s *Summary) Profile(v int) []Label {
	return s.profLab[s.profOff[v]:s.profOff[v+1]]
}

// LabelFreq returns the number of vertices carrying label l.
func (s *Summary) LabelFreq(l Label) int32 {
	i := sort.Search(len(s.labels), func(i int) bool { return s.labels[i].Label >= l })
	if i < len(s.labels) && s.labels[i].Label == l {
		return s.labels[i].Count
	}
	return 0
}

// SubsumedBy reports whether every summary component of s is dominated by
// o's: vertex/edge counts, the sorted degree sequence (the k-th largest
// degree of s must not exceed o's — valid because an embedding pairs every
// pattern vertex with a distinct target vertex of at least its degree),
// and the per-label vertex counts. It is a necessary condition for the
// graph of s being subgraph-isomorphic (as a monomorphism) to that of o,
// and strictly subsumes the classic size/max-degree/label quick-reject.
func (s *Summary) SubsumedBy(o *Summary) bool {
	if s.vertices > o.vertices || s.edges > o.edges || s.maxDegree > o.maxDegree {
		return false
	}
	for k, d := range s.degrees {
		if d > o.degrees[k] {
			return false
		}
	}
	i, j := 0, 0
	for i < len(s.labels) {
		if j == len(o.labels) || s.labels[i].Label < o.labels[j].Label {
			return false // label of s missing in o
		}
		if s.labels[i].Label > o.labels[j].Label {
			j++
			continue
		}
		if s.labels[i].Count > o.labels[j].Count {
			return false
		}
		i++
		j++
	}
	return true
}

// summaryCell wraps the memoized summary pointer. A dedicated type keeps
// the atomic out of Graph's public face and documents that copying Graph
// values (which no code does — graphs live behind pointers) would reset it.
type summaryCell struct {
	p atomic.Pointer[Summary]
}

func (c *summaryCell) Load() *Summary   { return c.p.Load() }
func (c *summaryCell) Store(s *Summary) { c.p.Store(s) }
