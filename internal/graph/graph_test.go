package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder().SetName("g0")
	a := b.AddVertex(1)
	c := b.AddVertex(2)
	d := b.AddVertex(1)
	b.AddEdge(a, c).AddEdge(c, d)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "g0" {
		t.Errorf("Name = %q", g.Name())
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(a, c) || !g.HasEdge(c, a) {
		t.Error("edge {a,c} missing")
	}
	if g.HasEdge(a, d) {
		t.Error("phantom edge {a,d}")
	}
	if g.Label(c) != 2 {
		t.Errorf("Label(c) = %d", g.Label(c))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuilderRejectsDuplicateEdge(t *testing.T) {
	b := NewBuilder()
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddEdge(0, 1).AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder()
	b.AddVertex(0)
	b.AddEdge(0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder()
	b.AddVertex(0)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestWithEdgeWithoutEdge(t *testing.T) {
	g := Path(1, 2, 3) // 0-1-2
	g2, err := g.WithEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 2) || g2.NumEdges() != 3 {
		t.Fatal("WithEdge did not add edge")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("WithEdge mutated the receiver")
	}
	g3, err := g2.WithoutEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g3.HasEdge(0, 2) || g3.NumEdges() != 2 {
		t.Fatal("WithoutEdge did not remove edge")
	}
	if !g2.HasEdge(0, 2) {
		t.Fatal("WithoutEdge mutated the receiver")
	}
	if err := g2.Validate(); err != nil {
		t.Error(err)
	}
	if err := g3.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWithEdgeErrors(t *testing.T) {
	g := Path(1, 2)
	if _, err := g.WithEdge(0, 1); err == nil {
		t.Error("adding existing edge should fail")
	}
	if _, err := g.WithEdge(0, 0); err == nil {
		t.Error("self loop should fail")
	}
	if _, err := g.WithEdge(0, 9); err == nil {
		t.Error("out-of-range should fail")
	}
	if _, err := g.WithoutEdge(0, 9); err == nil {
		t.Error("removing out-of-range should fail")
	}
	if _, err := Path(1, 2, 3).WithoutEdge(0, 2); err == nil {
		t.Error("removing absent edge should fail")
	}
}

func TestEdgeList(t *testing.T) {
	g := Cycle(1, 2, 3)
	es := g.EdgeList()
	if len(es) != 3 {
		t.Fatalf("EdgeList len = %d", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
}

func TestLabelCounts(t *testing.T) {
	g := Path(1, 1, 2, 7)
	c := g.LabelCounts()
	if c[1] != 2 || c[2] != 1 || c[7] != 1 {
		t.Fatalf("LabelCounts = %v", c)
	}
}

func TestConnected(t *testing.T) {
	if !Path(1, 2, 3).Connected() {
		t.Error("path should be connected")
	}
	if !Single(5).Connected() {
		t.Error("single vertex should be connected")
	}
	b := NewBuilder()
	b.AddVertex(1)
	b.AddVertex(2)
	g := b.MustBuild()
	if g.Connected() {
		t.Error("two isolated vertices should not be connected")
	}
	var empty Graph
	if !empty.Connected() {
		t.Error("empty graph counts as connected")
	}
}

func TestMaxDegree(t *testing.T) {
	if d := Star(0, 1, 2, 3, 4).MaxDegree(); d != 4 {
		t.Fatalf("MaxDegree = %d, want 4", d)
	}
	var empty Graph
	if empty.MaxDegree() != 0 {
		t.Fatal("empty MaxDegree should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(1, 2, 3)
	c := g.Clone()
	c2, err := c.WithEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = c2
	if g.NumEdges() != 2 {
		t.Fatal("clone mutation leaked")
	}
}

func TestShapes(t *testing.T) {
	if g := Clique(1, 2, 3, 4); g.NumEdges() != 6 || g.MaxDegree() != 3 {
		t.Errorf("Clique(4): %v", g)
	}
	if g := Cycle(1, 2); g.NumEdges() != 1 {
		t.Errorf("degenerate cycle: %v", g)
	}
	if g := Star(9); g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Errorf("leafless star: %v", g)
	}
}

// randomGraph builds a random valid graph for property tests.
func randomGraph(rng *rand.Rand, maxN int) *Graph {
	n := 1 + rng.Intn(maxN)
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(5)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.25 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestQuickWithEdgeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12)
		// pick an absent pair if any
		n := g.NumVertices()
		for tries := 0; tries < 32 && n >= 2; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g2, err := g.WithEdge(u, v)
			if err != nil {
				return false
			}
			g3, err := g2.WithoutEdge(u, v)
			if err != nil {
				return false
			}
			if g3.NumEdges() != g.NumEdges() || g3.Validate() != nil || g2.Validate() != nil {
				return false
			}
			// adjacency content equal to original
			for w := 0; w < n; w++ {
				if len(g3.Neighbors(w)) != len(g.Neighbors(w)) {
					return false
				}
				for i, x := range g3.Neighbors(w) {
					if g.Neighbors(w)[i] != x {
						return false
					}
				}
			}
			return true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(1, 2, 3)
	g.adj[0] = append(g.adj[0], 2) // asymmetric arc
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric arc")
	}
	h := Path(1, 2)
	h.m = 42
	if err := h.Validate(); err == nil {
		t.Fatal("Validate missed bad edge count")
	}
}
