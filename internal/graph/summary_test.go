package graph_test

import (
	"math/rand"
	"sort"
	"testing"

	"gcplus/internal/graph"
)

func randomTestGraph(rng *rand.Rand, maxN, labels int, p float64) *graph.Graph {
	n := 1 + rng.Intn(maxN)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestSummaryMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		g := randomTestGraph(rng, 20, 4, 0.3)
		s := g.Summary()
		if s.Vertices() != g.NumVertices() || s.Edges() != g.NumEdges() || s.MaxDegree() != g.MaxDegree() {
			t.Fatalf("summary size fields disagree with graph: %v", g)
		}
		// label counts agree with the map-based LabelCounts
		lc := g.LabelCounts()
		if len(s.LabelCounts()) != len(lc) {
			t.Fatalf("label count kinds %d != %d", len(s.LabelCounts()), len(lc))
		}
		for k, c := range s.LabelCounts() {
			if int(c.Count) != lc[c.Label] {
				t.Fatalf("label %d count %d != %d", c.Label, c.Count, lc[c.Label])
			}
			if s.LabelFreq(c.Label) != c.Count {
				t.Fatalf("LabelFreq(%d) inconsistent", c.Label)
			}
			if k > 0 && s.LabelCounts()[k-1].Label >= c.Label {
				t.Fatal("label counts not strictly sorted")
			}
		}
		if s.LabelFreq(graph.Label(999)) != 0 {
			t.Fatal("absent label should have frequency 0")
		}
		// degree sequence: descending, and a permutation of the degrees
		degs := make([]int, g.NumVertices())
		for v := range degs {
			degs[v] = g.Degree(v)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(degs)))
		for k, d := range s.Degrees() {
			if int(d) != degs[k] {
				t.Fatalf("degree sequence mismatch at %d: %d != %d", k, d, degs[k])
			}
		}
		// per-vertex profiles: sorted multiset of neighbour labels
		for v := 0; v < g.NumVertices(); v++ {
			prof := s.Profile(v)
			if len(prof) != g.Degree(v) {
				t.Fatalf("profile of %d has %d entries, degree %d", v, len(prof), g.Degree(v))
			}
			want := make([]graph.Label, 0, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				want = append(want, g.Label(int(w)))
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for k, l := range prof {
				if l != want[k] {
					t.Fatalf("profile of %d mismatch at %d", v, k)
				}
			}
		}
	}
}

func TestSummaryMemoized(t *testing.T) {
	g := graph.Path(1, 2, 3)
	if g.Summary() != g.Summary() {
		t.Fatal("Summary not memoized")
	}
	// copy-on-write updates must carry fresh summaries
	g2, err := g.WithEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Summary() == g.Summary() {
		t.Fatal("updated graph shares the stale summary")
	}
	if g2.Summary().Edges() != g.Summary().Edges()+1 {
		t.Fatal("updated summary has wrong edge count")
	}
	if c := g.Clone(); c.Summary() == g.Summary() {
		t.Fatal("clone shares the memoized summary pointer")
	}
}

// TestSummarySubsumedBy checks the necessary-condition direction (an
// actual subgraph's summary is always subsumed) and a few definite
// rejections.
func TestSummarySubsumedBy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		g := randomTestGraph(rng, 16, 3, 0.3)
		// build an induced-ish subgraph by deleting edges/vertices via the
		// builder: take a random subset of vertices and the edges between
		// them.
		keep := make([]int, 0, g.NumVertices())
		idx := make(map[int]int)
		b := graph.NewBuilder()
		for v := 0; v < g.NumVertices(); v++ {
			if rng.Intn(2) == 0 {
				idx[v] = b.AddVertex(g.Label(v))
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			continue
		}
		for _, e := range g.EdgeList() {
			if iu, ok := idx[int(e.U)]; ok {
				if iv, ok := idx[int(e.V)]; ok {
					b.AddEdge(iu, iv)
				}
			}
		}
		sub := b.MustBuild()
		if !sub.Summary().SubsumedBy(g.Summary()) {
			t.Fatalf("subgraph summary not subsumed (iter %d)", i)
		}
	}
	// definite rejections
	if graph.Path(1, 1).Summary().SubsumedBy(graph.Path(1, 2).Summary()) {
		t.Fatal("label multiset violation accepted")
	}
	if graph.Star(1, 2, 2, 2).Summary().SubsumedBy(graph.Path(2, 1, 2, 2).Summary()) {
		t.Fatal("degree violation accepted")
	}
	if graph.Path(1, 2, 1).Summary().SubsumedBy(graph.Path(1, 2).Summary()) {
		t.Fatal("size violation accepted")
	}
}
