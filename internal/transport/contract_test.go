package transport

// The ShardService contract test: one table of behavioral requirements
// run identically against the local (in-process) and loopback (TCP)
// transports. Whatever ShardClient the router is handed, these are the
// properties its consistency and resilience layers assume — answer
// equivalence, per-stage deadline propagation, mid-stream cancellation,
// the streaming limit-prefix contract, error taxonomy round-trips, and
// stats/epoch consistency. A future remote transport earns its place by
// passing this same table.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/persist"
	"gcplus/internal/shardhost"
	"gcplus/internal/subiso"
	"gcplus/internal/synthetic"
	"gcplus/internal/trace"
)

func genGraphs(t testing.TB, n int, seed int64) []*graph.Graph {
	t.Helper()
	cfg := synthetic.Default().WithGraphs(n)
	cfg.MeanVertices = 12
	cfg.StdVertices = 4
	cfg.MaxVertices = 24
	cfg.Seed = seed
	gs, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

// newTestHosts partitions a synthetic dataset round-robin over shards
// and starts one host per shard. cfg.Store == nil means no WAL.
func newTestHosts(t testing.TB, shards int, cfg shardhost.Config) []*shardhost.Host {
	t.Helper()
	gs := genGraphs(t, 60, 7)
	algo, err := subiso.New("VF2")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Algorithm: algo, Cache: &cache.Config{Capacity: 64}}
	hosts := make([]*shardhost.Host, shards)
	for s := 0; s < shards; s++ {
		var part []*graph.Graph
		var gids []int
		for i := s; i < len(gs); i += shards {
			part = append(part, gs[i])
			gids = append(gids, i)
		}
		h, err := shardhost.New(s, part, gids, opts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.Start(1)
		t.Cleanup(h.Stop)
		hosts[s] = h
	}
	return hosts
}

// dialAll connects clients of the named kind to hosts, registering
// cleanup for the sockets and server.
func dialAll(t testing.TB, kind string, hosts []*shardhost.Host) []ShardClient {
	t.Helper()
	clients := make([]ShardClient, len(hosts))
	switch kind {
	case "local":
		for i, h := range hosts {
			clients[i] = NewLocal(h)
		}
	case "loopback":
		srv, err := ServeLoopback(hosts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		for i := range hosts {
			c, err := DialLoopback(srv.Addr(), i)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			clients[i] = c
		}
	default:
		t.Fatalf("unknown transport kind %q", kind)
	}
	return clients
}

// queryShard runs one query against a single shard and waits for the
// reply.
func queryShard(ctx context.Context, c ShardClient, kind cache.Kind, q *graph.Graph, opts core.QueryOptions) *shardhost.QueryReply {
	reply := &shardhost.QueryReply{}
	done := make(chan struct{})
	c.Query(ctx, &shardhost.QueryRequest{Kind: kind, Query: q, Opts: opts}, reply, func() { close(done) })
	<-done
	return reply
}

func applyShard(c ShardClient, op changeplan.Op, gid int) *shardhost.OpReply {
	reply := &shardhost.OpReply{}
	done := make(chan struct{})
	c.ApplyOp(&shardhost.OpRequest{Op: op, GlobalID: gid}, reply, func() { close(done) })
	<-done
	return reply
}

func statsShard(c ShardClient, t *testing.T) *shardhost.StatsReply {
	t.Helper()
	reply := &shardhost.StatsReply{}
	done := make(chan struct{})
	c.Stats(reply, func() { close(done) })
	<-done
	if reply.Err != nil {
		t.Fatalf("stats: %v", reply.Err)
	}
	return reply
}

func testQueries(gs []*graph.Graph) []*graph.Graph {
	var qs []*graph.Graph
	for i := 0; i < 6 && i < len(gs); i++ {
		g := gs[i]
		if g.NumVertices() < 3 {
			continue
		}
		l0, l1, l2 := g.Label(0), g.Label(1), g.Label(2)
		switch i % 3 {
		case 0:
			qs = append(qs, graph.Path(l0, l1))
		case 1:
			qs = append(qs, graph.Path(l0, l1, l2))
		default:
			qs = append(qs, graph.Star(l1, l0, l2))
		}
	}
	return qs
}

// eachTransport runs f once per transport kind, against shared hosts.
func eachTransport(t *testing.T, hosts []*shardhost.Host, f func(t *testing.T, kind string, clients []ShardClient)) {
	for _, kind := range []string{"local", "loopback"} {
		t.Run(kind, func(t *testing.T) {
			f(t, kind, dialAll(t, kind, hosts))
		})
	}
}

// TestContractQueryEquivalence: both transports return bit-identical
// answers and work counters for the same queries against the same
// hosts — the differential heart of the contract.
func TestContractQueryEquivalence(t *testing.T) {
	hosts := newTestHosts(t, 3, shardhost.Config{})
	local := dialAll(t, "local", hosts)
	loop := dialAll(t, "loopback", hosts)
	qs := testQueries(genGraphs(t, 60, 7))
	if len(qs) == 0 {
		t.Fatal("no test queries")
	}
	for qi, q := range qs {
		for _, kind := range []cache.Kind{cache.KindSub, cache.KindSuper} {
			for s := range hosts {
				a := queryShard(context.Background(), local[s], kind, q, core.QueryOptions{BypassCache: true})
				b := queryShard(context.Background(), loop[s], kind, q, core.QueryOptions{BypassCache: true})
				if a.Err != nil || b.Err != nil {
					t.Fatalf("q%d kind %v shard %d: errs %v / %v", qi, kind, s, a.Err, b.Err)
				}
				if !equalInts(a.IDs, b.IDs) {
					t.Fatalf("q%d kind %v shard %d: answers differ: local %v loopback %v", qi, kind, s, a.IDs, b.IDs)
				}
				if a.Stats.SubIsoTests != b.Stats.SubIsoTests || a.Stats.CandidatesBefore != b.Stats.CandidatesBefore {
					t.Fatalf("q%d kind %v shard %d: work counters differ: %+v vs %+v", qi, kind, s, a.Stats, b.Stats)
				}
				if b.HostNanos <= 0 {
					t.Fatalf("q%d shard %d: loopback reply missing HostNanos", qi, s)
				}
			}
		}
	}
}

// TestContractDeadlineQueueStage: a request whose deadline expired
// before dispatch fails with a queue-stage CancelError on every
// transport (the budget crosses the wire as 1ns, not zero/none).
func TestContractDeadlineQueueStage(t *testing.T) {
	hosts := newTestHosts(t, 1, shardhost.Config{})
	qs := testQueries(genGraphs(t, 60, 7))
	eachTransport(t, hosts, func(t *testing.T, kind string, clients []ShardClient) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		reply := queryShard(ctx, clients[0], cache.KindSub, qs[0], core.QueryOptions{})
		var ce *core.CancelError
		if !errors.As(reply.Err, &ce) {
			t.Fatalf("want CancelError, got %v", reply.Err)
		}
		if ce.Stage != "queue" {
			t.Fatalf("want queue-stage cancellation, got stage %q", ce.Stage)
		}
		if got := StatusOf(reply.Err); got != StatusCanceled {
			t.Fatalf("StatusOf = %v, want StatusCanceled", got)
		}
	})
}

// TestContractMidStreamCancel: cancelling the context after dispatch
// aborts a request stuck behind a blocked owner queue. Over loopback
// this exercises the CANCEL frame: the server reader handles it inline
// while the owner goroutine is still busy.
func TestContractMidStreamCancel(t *testing.T) {
	hosts := newTestHosts(t, 1, shardhost.Config{})
	qs := testQueries(genGraphs(t, 60, 7))
	eachTransport(t, hosts, func(t *testing.T, kind string, clients []ShardClient) {
		gate := make(chan struct{})
		hosts[0].Enqueue(func() { <-gate })
		ctx, cancel := context.WithCancel(context.Background())
		reply := &shardhost.QueryReply{}
		done := make(chan struct{})
		clients[0].Query(ctx, &shardhost.QueryRequest{Kind: cache.KindSub, Query: qs[0], Opts: core.QueryOptions{}}, reply, func() { close(done) })
		cancel()
		if kind == "loopback" {
			// Give the CANCEL frame time to land before the queue drains;
			// correctness does not depend on it (the context would also
			// expire the query host-side), but the race being exercised
			// should usually be the frame path.
			time.Sleep(20 * time.Millisecond)
		}
		close(gate)
		<-done
		var ce *core.CancelError
		if !errors.As(reply.Err, &ce) {
			t.Fatalf("want CancelError after mid-stream cancel, got %v", reply.Err)
		}
		if got := StatusOf(reply.Err); got != StatusCanceled {
			t.Fatalf("StatusOf = %v, want StatusCanceled", got)
		}
	})
}

// TestContractLimitPrefix: Opts.Limit returns exactly the N smallest
// ids of the full answer, with Truncated set iff something was cut —
// on every transport (the wire ships Limit and the Truncated flag).
func TestContractLimitPrefix(t *testing.T) {
	hosts := newTestHosts(t, 2, shardhost.Config{})
	qs := testQueries(genGraphs(t, 60, 7))
	eachTransport(t, hosts, func(t *testing.T, kind string, clients []ShardClient) {
		for s, c := range clients {
			full := queryShard(context.Background(), c, cache.KindSub, qs[0], core.QueryOptions{})
			if full.Err != nil {
				t.Fatal(full.Err)
			}
			for _, limit := range []int{1, 2, len(full.IDs), len(full.IDs) + 5} {
				if limit == 0 {
					continue
				}
				got := queryShard(context.Background(), c, cache.KindSub, qs[0], core.QueryOptions{Limit: limit})
				if got.Err != nil {
					t.Fatal(got.Err)
				}
				want := full.IDs
				if limit < len(want) {
					want = want[:limit]
				}
				if !equalInts(got.IDs, want) {
					t.Fatalf("shard %d limit %d: got %v want %v", s, limit, got.IDs, want)
				}
				if wantTrunc := limit < len(full.IDs); got.Stats.Truncated != wantTrunc {
					t.Fatalf("shard %d limit %d: Truncated = %v, want %v", s, limit, got.Stats.Truncated, wantTrunc)
				}
			}
		}
	})
}

// TestContractOversizeFrame: an outbound frame larger than the limit is
// rejected client-side as StatusBadRequest without poisoning the
// connection. Frame limits are a wire concept; the local transport has
// no frames and passes any request through.
func TestContractOversizeFrame(t *testing.T) {
	hosts := newTestHosts(t, 1, shardhost.Config{})
	qs := testQueries(genGraphs(t, 60, 7))
	eachTransport(t, hosts, func(t *testing.T, kind string, clients []ShardClient) {
		if kind != "loopback" {
			if clients[0].Kind() != "local" {
				t.Fatalf("Kind() = %q, want local", clients[0].Kind())
			}
			reply := queryShard(context.Background(), clients[0], cache.KindSub, qs[0], core.QueryOptions{})
			if reply.Err != nil {
				t.Fatalf("local transport must not enforce frame limits: %v", reply.Err)
			}
			return
		}
		lc := clients[0].(*LoopbackClient)
		lc.maxFrame = 16 // every query frame exceeds this
		reply := queryShard(context.Background(), lc, cache.KindSub, qs[0], core.QueryOptions{})
		if got := StatusOf(reply.Err); got != StatusBadRequest {
			t.Fatalf("StatusOf = %v (err %v), want StatusBadRequest", got, reply.Err)
		}
		lc.maxFrame = MaxFramePayload
		reply = queryShard(context.Background(), lc, cache.KindSub, qs[0], core.QueryOptions{})
		if reply.Err != nil {
			t.Fatalf("connection poisoned by rejected frame: %v", reply.Err)
		}
	})
}

// TestContractOpsWALAndStats: the full update path — snapshot-driven WAL
// rotation, ADD/UA/DEL ops, per-epoch WAL appends — advances the
// durable epoch identically over both transports, shard errors keep
// their taxonomy and message across the wire, and the stats snapshot is
// consistent with the op stream.
func TestContractOpsWALAndStats(t *testing.T) {
	gs := genGraphs(t, 60, 7)
	eachTransport := []string{"local", "loopback"}
	type outcome struct {
		durable    uint64
		liveGraphs int
		logSeq     uint64
		addID      int
		errStr     string
	}
	results := make(map[string]outcome)
	for _, kind := range eachTransport {
		t.Run(kind, func(t *testing.T) {
			store, err := persist.OpenStore(t.TempDir(), 1)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(store.Close)
			cfg := shardhost.Config{Store: store, WAL: true, NoSync: true, FailUpdateOnGap: true}
			hosts := newTestHosts(t, 1, cfg)
			c := dialAll(t, kind, hosts)[0]

			// Rotation via Snapshot installs the first WAL segment.
			snap := &shardhost.SnapshotReply{}
			done := make(chan struct{})
			c.Snapshot(0, snap, func() { close(done) })
			<-done
			if snap.RotateErr != nil {
				t.Fatal(snap.RotateErr)
			}
			switch kind {
			case "local":
				if snap.Snap == nil {
					t.Fatal("local snapshot reply must carry the raw export")
				}
			case "loopback":
				if snap.Payload == nil {
					t.Fatal("loopback snapshot reply must carry the encoded payload")
				}
				ss, err := persist.DecodeShardSnapshot(snap.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if ss.Epoch != 0 || len(ss.LocalToGlobal) == 0 {
					t.Fatalf("decoded snapshot inconsistent: epoch %d, %d ids", ss.Epoch, len(ss.LocalToGlobal))
				}
			}

			before := statsShard(c, t)
			gid := 60 // next global id after the seed partition
			add := applyShard(c, changeplan.AddOp(gs[0]), gid)
			if add.Err != nil || add.ID != gid {
				t.Fatalf("ADD: id %d err %v", add.ID, add.Err)
			}
			ua := applyShard(c, changeplan.Op{Type: dataset.OpUpdateAddEdge, GraphID: 0, U: 0, V: 2}, 0)
			if ua.Err != nil {
				t.Fatalf("UA: %v", ua.Err)
			}
			wal := &shardhost.WALAppendReply{}
			done = make(chan struct{})
			c.AppendWAL(1, wal, func() { close(done) })
			<-done
			if wal.Err != nil {
				t.Fatal(wal.Err)
			}
			// Sync with nil done: fire-and-forget, ordered by the queue —
			// the following Stats proves it completed.
			c.Sync(nil)

			after := statsShard(c, t)
			if after.DurableEpoch != 1 {
				t.Fatalf("durable epoch = %d, want 1", after.DurableEpoch)
			}
			if after.LiveGraphs != before.LiveGraphs+1 {
				t.Fatalf("live graphs %d -> %d, want +1", before.LiveGraphs, after.LiveGraphs)
			}
			if after.LogSeq != before.LogSeq+2 {
				t.Fatalf("log seq %d -> %d, want +2", before.LogSeq, after.LogSeq)
			}
			if after.WALAppends != 1 || after.WALAppendErrors != 0 {
				t.Fatalf("wal appends %d errors %d, want 1/0", after.WALAppends, after.WALAppendErrors)
			}

			// A shard error keeps its "serve:" message and BadRequest-class
			// taxonomy across the transport.
			bad := applyShard(c, changeplan.Op{Type: dataset.OpUpdateAddEdge, GraphID: 0, U: 0, V: 2}, 0)
			if bad.Err == nil || bad.ID != -1 {
				t.Fatalf("duplicate edge must fail: id %d err %v", bad.ID, bad.Err)
			}
			if !strings.HasPrefix(bad.Err.Error(), "serve: ") {
				t.Fatalf("shard error lost its prefix: %q", bad.Err.Error())
			}
			results[kind] = outcome{
				durable:    after.DurableEpoch,
				liveGraphs: after.LiveGraphs,
				logSeq:     after.LogSeq,
				addID:      add.ID,
				errStr:     bad.Err.Error(),
			}
		})
	}
	if a, b := results["local"], results["loopback"]; a != b {
		t.Fatalf("transports diverged:\n local    %+v\n loopback %+v", a, b)
	}
}

// TestContractSignalsPiggyback: the loopback client's Signals are
// refreshed by reply frames without extra round trips and match the
// host's own sample once the queue is idle.
func TestContractSignalsPiggyback(t *testing.T) {
	hosts := newTestHosts(t, 1, shardhost.Config{})
	qs := testQueries(genGraphs(t, 60, 7))
	clients := dialAll(t, "loopback", hosts)
	if got := queryShard(context.Background(), clients[0], cache.KindSub, qs[0], core.QueryOptions{}); got.Err != nil {
		t.Fatal(got.Err)
	}
	sig := clients[0].Signals()
	if sig.QueueLen < 0 || sig.PendingRepairs < 0 {
		t.Fatalf("negative signals: %+v", sig)
	}
	want := hosts[0].Signals()
	if sig.PendingRepairs != want.PendingRepairs {
		t.Fatalf("piggybacked repairs %d, host says %d", sig.PendingRepairs, want.PendingRepairs)
	}
}

// TestContractOrdering: per-shard call order is fixed at call time —
// a burst of interleaved ops and queries issued from one goroutine
// lands in exactly issue order, so a query sees every earlier op and
// no later one. This is the property the router's epoch sequencing
// rests on, over any transport.
func TestContractOrdering(t *testing.T) {
	gs := genGraphs(t, 60, 7)
	eachTransport(t, newTestHosts(t, 1, shardhost.Config{}), func(t *testing.T, kind string, clients []ShardClient) {
		c := clients[0]
		const rounds = 8
		var mu sync.Mutex
		counts := make([]int, 0, rounds)
		var wg sync.WaitGroup
		q := graph.Path(gs[0].Label(0), gs[0].Label(1))
		base := 60
		if kind == "loopback" {
			base = 200 // fresh id space; hosts are shared across subtests
		}
		for i := 0; i < rounds; i++ {
			wg.Add(1)
			reply := &shardhost.OpReply{}
			c.ApplyOp(&shardhost.OpRequest{Op: changeplan.AddOp(gs[i%4]), GlobalID: base + i}, reply, func() { wg.Done() })
			wg.Add(1)
			st := &shardhost.StatsReply{}
			c.Stats(st, func() {
				mu.Lock()
				counts = append(counts, st.LiveGraphs)
				mu.Unlock()
				wg.Done()
			})
		}
		_ = q
		wg.Wait()
		if len(counts) != rounds {
			t.Fatalf("got %d stats replies, want %d", len(counts), rounds)
		}
		for i := 1; i < rounds; i++ {
			if counts[i] != counts[i-1]+1 {
				t.Fatalf("stats out of order: live-graph counts %v", counts)
			}
		}
	})
}

// queryShardTraced is queryShard with a propagated trace context.
func queryShardTraced(ctx context.Context, c ShardClient, q *graph.Graph, tc trace.Context) *shardhost.QueryReply {
	reply := &shardhost.QueryReply{}
	done := make(chan struct{})
	c.Query(ctx, &shardhost.QueryRequest{Kind: cache.KindSub, Query: q, Trace: tc}, reply, func() { close(done) })
	<-done
	return reply
}

// spanShape canonicalizes a span list to its structural shape: names in
// emission order with a parent marker — the thing that must be
// transport-independent even though every duration differs.
func spanShape(spans []trace.Span) string {
	if len(spans) == 0 {
		return ""
	}
	root := spans[0].ID
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(s.Name)
		if s.Parent == root {
			b.WriteByte('*') // child of the shard root
		}
	}
	return b.String()
}

// TestContractTracing: the tracing dimension of the contract. Where the
// span subtree materializes is transport-specific — wire transports
// piggyback it on the reply frame (built server-side, off the owner
// goroutine), while the in-process transport leaves Spans nil and the
// router synthesizes the subtree from the reply stats — but the
// resulting tree must be identically shaped either way, an unsampled
// request carries none, the queue wait is reported regardless, and a
// mid-stream cancellation keeps its partial trace on the error reply.
func TestContractTracing(t *testing.T) {
	hosts := newTestHosts(t, 1, shardhost.Config{})
	qs := testQueries(genGraphs(t, 60, 7))

	// replySpans resolves one reply to its span subtree the way the
	// router would: wire replies carry their spans, in-process replies
	// carry none and the subtree is synthesized from the reply stats.
	replySpans := func(t *testing.T, kind string, reply *shardhost.QueryReply, tc trace.Context) []trace.Span {
		t.Helper()
		if kind == "local" {
			if len(reply.Spans) != 0 {
				t.Fatalf("in-process transport materialized %d spans on the reply", len(reply.Spans))
			}
			return shardhost.BuildShardSpans(tc, 0, time.Now().UnixNano(),
				time.Duration(reply.QueueNanos), &reply.Stats, reply.Err, hosts[0].CacheEnabled())
		}
		if len(reply.Spans) == 0 {
			t.Fatal("sampled query returned no spans over the wire")
		}
		return reply.Spans
	}

	shapes := make(map[string]string)
	for _, kind := range []string{"local", "loopback"} {
		t.Run(kind, func(t *testing.T) {
			clients := dialAll(t, kind, hosts)
			tc := trace.Context{TraceID: trace.NewTraceID(), Parent: trace.NewSpanID(), Sampled: true}
			reply := queryShardTraced(context.Background(), clients[0], qs[0], tc)
			if reply.Err != nil {
				t.Fatal(reply.Err)
			}
			spans := replySpans(t, kind, reply, tc)
			root := spans[0]
			if root.Name != "shard" || root.TraceID != tc.TraceID || root.Parent != tc.Parent {
				t.Fatalf("root span not parented under the request context: %+v", root)
			}
			for _, s := range spans[1:] {
				if s.Parent != root.ID || s.TraceID != tc.TraceID {
					t.Fatalf("stage span detached from root: %+v", s)
				}
			}
			shape := spanShape(spans)
			for _, stage := range []string{"queue", "consistency", "hit", "verify"} {
				if !strings.Contains(shape, stage) {
					t.Fatalf("span set %q missing stage %q", shape, stage)
				}
			}
			if reply.QueueNanos < 0 {
				t.Fatalf("negative queue nanos %d", reply.QueueNanos)
			}
			shapes[kind] = shape

			// Unsampled: the trace context rides along but no spans come
			// back on any transport; the queue wait is still reported.
			un := queryShardTraced(context.Background(), clients[0], qs[0],
				trace.Context{TraceID: trace.NewTraceID(), Parent: trace.NewSpanID()})
			if un.Err != nil {
				t.Fatal(un.Err)
			}
			if len(un.Spans) != 0 {
				t.Fatalf("unsampled query returned %d spans", len(un.Spans))
			}

			// Mid-stream cancel: the error reply keeps its partial trace.
			gate := make(chan struct{})
			hosts[0].Enqueue(func() { <-gate })
			ctx, cancel := context.WithCancel(context.Background())
			ctc := trace.Context{TraceID: trace.NewTraceID(), Parent: trace.NewSpanID(), Sampled: true}
			creply := &shardhost.QueryReply{}
			done := make(chan struct{})
			clients[0].Query(ctx, &shardhost.QueryRequest{
				Kind: cache.KindSub, Query: qs[0], Trace: ctc,
			}, creply, func() { close(done) })
			cancel()
			if kind == "loopback" {
				time.Sleep(20 * time.Millisecond) // let the CANCEL frame land
			}
			close(gate)
			<-done
			var ce *core.CancelError
			if !errors.As(creply.Err, &ce) {
				t.Fatalf("want CancelError, got %v", creply.Err)
			}
			cspans := replySpans(t, kind, creply, ctc)
			if len(cspans) == 0 {
				t.Fatal("cancelled query dropped its partial trace")
			}
			if cspans[0].Attr("error") == "" {
				t.Fatalf("partial root span missing error attribute: %+v", cspans[0])
			}
		})
	}
	if shapes["local"] != shapes["loopback"] {
		t.Fatalf("span shapes diverge across transports:\n local    %q\n loopback %q",
			shapes["local"], shapes["loopback"])
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
