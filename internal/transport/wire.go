package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/graph"
	"gcplus/internal/shardhost"
	"gcplus/internal/trace"
)

// Wire format. Every message travels in one frame, framed exactly like
// the internal/persist WAL:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Client→server payloads are {msg type byte, request id uvarint, body};
// server→client payloads are {msgReply, request id uvarint, echoed msg
// type byte, queue-len uvarint, pending-repairs uvarint, body}. The
// piggybacked queue/repair sample keeps the client's Signals fresh with
// zero extra round trips — exactly as fresh as the traffic that makes
// the pressure ladder care.
//
// Bodies use the persist codec conventions: uvarints, length-prefixed
// byte strings, bounds-checked decode with an error latch and
// allocation guards, so a malformed or truncated frame produces a
// decode error — never a panic, never a silent truncation. Graphs ride
// in the internal/graph binary codec; update operations in the
// internal/changeplan binary codec.

// Message types.
const (
	msgHello byte = iota + 1
	msgQuery
	msgApplyOp
	msgAppendWAL
	msgSync
	msgSnapshot
	msgStats
	msgCancel
	msgReply
)

// protocolVersion is the version the client announces in its HELLO
// frame (a trailing uvarint the v1 server ignored; absence means v1).
// Version 2 adds the tracing extensions: QUERY and APPLY_OP requests
// may carry a trailing trace context, and the server appends a trailing
// extension to QUERY replies (queue nanos + piggybacked span block) and
// APPEND_WAL replies (append nanos) when the connection announced ≥ 2.
// Request extensions are self-describing trailing blocks, so the
// decoders accept both shapes regardless of the announced version.
const protocolVersion = 2

// appendTraceCtx appends the v2 trace-context extension. Callers only
// append it for a valid context; an absent block decodes as the zero
// context.
func appendTraceCtx(dst []byte, tc trace.Context) []byte {
	dst = appendUvarint(dst, uint64(tc.TraceID))
	dst = appendUvarint(dst, uint64(tc.Parent))
	return appendBool(dst, tc.Sampled)
}

func (d *dec) traceCtx() trace.Context {
	var tc trace.Context
	tc.TraceID = trace.ID(d.uvarint())
	tc.Parent = trace.SpanID(d.uvarint())
	tc.Sampled = d.bool()
	return tc
}

// MaxFramePayload bounds a frame payload (1 GiB, matching the persist
// framing). An oversized outbound frame is rejected client-side with
// StatusBadRequest before anything is sent; an oversized inbound length
// prefix poisons the connection.
const MaxFramePayload = 1 << 30

const frameHeaderSize = 8

// appendFrame frames payload into dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one frame payload, enforcing the size bound and the
// checksum. maxPayload <= 0 means MaxFramePayload.
func readFrame(r io.Reader, maxPayload int) ([]byte, error) {
	if maxPayload <= 0 {
		maxPayload = MaxFramePayload
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > uint32(maxPayload) {
		return nil, fmt.Errorf("transport: frame payload %d exceeds limit %d", n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("transport: frame checksum mismatch")
	}
	return payload, nil
}

// --- primitive append helpers ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendDuration(dst []byte, d time.Duration) []byte {
	if d < 0 {
		d = 0
	}
	return appendUvarint(dst, uint64(d))
}

// --- bounds-checked decoder (persist codec idiom: latch the first
// error, guard every allocation against the remaining byte count) ---

type dec struct {
	data []byte
	err  error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: "+format, args...)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("truncated or malformed uvarint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

// count decodes a collection length and guards the coming allocation:
// the collection cannot hold more elements than the remaining bytes
// divided by the minimum element width.
func (d *dec) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(len(d.data)/minBytes) {
		d.fail("count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.fail("truncated byte")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) bytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

func (d *dec) str() string { return string(d.bytes()) }

func (d *dec) duration() time.Duration {
	v := d.uvarint()
	if v > math.MaxInt64 {
		d.fail("duration overflows int64")
		return 0
	}
	return time.Duration(v)
}

func (d *dec) intNonNeg() int {
	v := d.uvarint()
	if v > math.MaxInt32 {
		d.fail("value %d overflows int32 range", v)
		return 0
	}
	return int(v)
}

// --- query request ---

// AppendQueryRequest encodes a QueryRequest body. deadline is the
// remaining time budget (0 = none), shipped as a relative duration so
// the two processes need no clock agreement.
func AppendQueryRequest(dst []byte, req *shardhost.QueryRequest, deadline time.Duration) []byte {
	dst = append(dst, byte(req.Kind))
	dst = appendDuration(dst, deadline)
	dst = appendUvarint(dst, uint64(req.Opts.Limit))
	dst = appendBool(dst, req.Opts.BypassCache)
	dst = appendUvarint(dst, uint64(req.Opts.MaxVerifyParallelism))
	dst = appendBytes(dst, graph.Marshal(req.Query))
	if req.Trace.Valid() {
		dst = appendTraceCtx(dst, req.Trace)
	}
	return dst
}

// DecodeQueryRequest is AppendQueryRequest's inverse.
func DecodeQueryRequest(data []byte) (*shardhost.QueryRequest, time.Duration, error) {
	d := &dec{data: data}
	req := &shardhost.QueryRequest{Kind: cache.Kind(d.byte())}
	deadline := d.duration()
	req.Opts.Limit = d.intNonNeg()
	req.Opts.BypassCache = d.bool()
	req.Opts.MaxVerifyParallelism = d.intNonNeg()
	gb := d.bytes()
	if d.err == nil && len(d.data) > 0 {
		req.Trace = d.traceCtx()
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if req.Kind != cache.KindSub && req.Kind != cache.KindSuper {
		return nil, 0, badRequestf("transport: unknown query kind %d", req.Kind)
	}
	g, err := graph.Unmarshal(gb)
	if err != nil {
		return nil, 0, err
	}
	req.Query = g
	if len(d.data) != 0 {
		return nil, 0, badRequestf("transport: %d trailing bytes after query request", len(d.data))
	}
	return req, deadline, nil
}

// --- op request ---

// AppendOpRequest encodes an OpRequest body via the changeplan binary
// codec (which carries the graph for ADD ops).
func AppendOpRequest(dst []byte, req *shardhost.OpRequest) ([]byte, error) {
	dst = appendUvarint(dst, uint64(req.GlobalID))
	dst, err := req.Op.AppendBinary(dst)
	if err != nil {
		return dst, err
	}
	if req.Trace.Valid() {
		dst = appendTraceCtx(dst, req.Trace)
	}
	return dst, nil
}

// DecodeOpRequest is AppendOpRequest's inverse.
func DecodeOpRequest(data []byte) (*shardhost.OpRequest, error) {
	d := &dec{data: data}
	gid := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if gid > math.MaxInt32 {
		return nil, badRequestf("transport: global id %d out of range", gid)
	}
	op, rest, err := changeplan.DecodeOp(d.data)
	if err != nil {
		return nil, err
	}
	req := &shardhost.OpRequest{Op: op, GlobalID: int(gid)}
	if len(rest) != 0 {
		d.data = rest
		req.Trace = d.traceCtx()
		if d.err != nil {
			return nil, d.err
		}
		if len(d.data) != 0 {
			return nil, badRequestf("transport: %d trailing bytes after op request", len(d.data))
		}
	}
	return req, nil
}

// --- query reply ---

// AppendQueryReply encodes a QueryReply body: host nanos, the taxonomy-
// classified error, and on success the ascending answer ids
// (delta-coded) plus the full per-shard QueryStats — every field, so
// aggregate stats and traces are bit-identical across transports. When
// ver ≥ 2 a trailing extension carries the queue wait and the shard's
// piggybacked span block — on error replies too, so a cancelled query
// keeps its partial trace.
func AppendQueryReply(dst []byte, reply *shardhost.QueryReply, ver uint64) []byte {
	dst = appendUvarint(dst, uint64(max64(reply.HostNanos, 0)))
	dst = appendWireError(dst, reply.Err)
	if reply.Err != nil {
		return appendQueryReplyExt(dst, reply, ver)
	}
	dst = appendUvarint(dst, uint64(len(reply.IDs)))
	prev := 0
	for _, id := range reply.IDs {
		dst = appendUvarint(dst, uint64(id-prev))
		prev = id
	}
	st := &reply.Stats
	dst = append(dst, byte(st.Kind))
	dst = appendUvarint(dst, uint64(st.CandidatesBefore))
	dst = appendUvarint(dst, uint64(st.SubIsoTests))
	dst = appendUvarint(dst, uint64(st.TestsSaved))
	dst = appendUvarint(dst, uint64(st.ContainingHits))
	dst = appendUvarint(dst, uint64(st.ContainedHits))
	dst = appendUvarint(dst, uint64(st.IsoHits))
	dst = appendBool(dst, st.ExactHit)
	dst = appendBool(dst, st.EmptyShortcut)
	dst = appendDuration(dst, st.QueryTime)
	dst = appendDuration(dst, st.VerifyTime)
	dst = appendDuration(dst, st.VerifyCPUTime)
	dst = appendUvarint(dst, uint64(st.VerifyWorkers))
	dst = appendDuration(dst, st.HitTime)
	dst = appendUvarint(dst, uint64(st.HitScanned))
	dst = appendUvarint(dst, uint64(st.HitCandidates))
	dst = appendDuration(dst, st.Overhead)
	dst = appendDuration(dst, st.ConsistencyTime)
	dst = appendBool(dst, st.CacheBypassed)
	dst = appendDuration(dst, st.PlanTime)
	dst = appendString(dst, st.PlanAlgorithm)
	dst = appendBool(dst, st.PlanCached)
	dst = appendBool(dst, st.Truncated)
	return appendQueryReplyExt(dst, reply, ver)
}

// appendQueryReplyExt appends the v2 reply extension: queue wait nanos
// plus the span block as one length-delimited field (bounds-checked on
// decode by the ordinary bytes guard).
func appendQueryReplyExt(dst []byte, reply *shardhost.QueryReply, ver uint64) []byte {
	if ver < 2 {
		return dst
	}
	dst = appendUvarint(dst, uint64(max64(reply.QueueNanos, 0)))
	return appendBytes(dst, trace.AppendSpans(nil, reply.Spans))
}

// decodeQueryReplyExt parses the optional trailing reply extension;
// absence (a v1 peer) leaves the reply's trace fields zero.
func decodeQueryReplyExt(d *dec, reply *shardhost.QueryReply) {
	if d.err != nil || len(d.data) == 0 {
		return
	}
	reply.QueueNanos = int64(d.duration())
	sb := d.bytes()
	if d.err != nil {
		return
	}
	if len(sb) > 0 {
		spans, serr := trace.DecodeSpans(sb)
		if serr != nil {
			d.fail("span block: %v", serr)
			return
		}
		reply.Spans = spans
	}
}

// DecodeQueryReply is AppendQueryReply's inverse.
func DecodeQueryReply(data []byte, reply *shardhost.QueryReply) error {
	d := &dec{data: data}
	reply.HostNanos = int64(d.uvarint())
	werr := decodeWireError(d)
	if d.err != nil {
		return d.err
	}
	if werr != nil {
		reply.Err = werr
		decodeQueryReplyExt(d, reply)
		if d.err != nil {
			return d.err
		}
		if len(d.data) != 0 {
			return fmt.Errorf("transport: %d trailing bytes after query error", len(d.data))
		}
		return nil
	}
	n := d.count(1)
	ids := make([]int, 0, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		delta := d.uvarint()
		if i > 0 && delta == 0 {
			// A legitimate answer set is strictly ascending; a zero delta
			// after the first id means a duplicated answer.
			d.fail("answer ids not strictly ascending")
			break
		}
		prev += delta
		if prev > math.MaxInt32 {
			d.fail("answer id %d out of range", prev)
			break
		}
		ids = append(ids, int(prev))
	}
	st := &reply.Stats
	st.Kind = cache.Kind(d.byte())
	st.CandidatesBefore = d.intNonNeg()
	st.SubIsoTests = d.intNonNeg()
	st.TestsSaved = d.intNonNeg()
	st.ContainingHits = d.intNonNeg()
	st.ContainedHits = d.intNonNeg()
	st.IsoHits = d.intNonNeg()
	st.ExactHit = d.bool()
	st.EmptyShortcut = d.bool()
	st.QueryTime = d.duration()
	st.VerifyTime = d.duration()
	st.VerifyCPUTime = d.duration()
	st.VerifyWorkers = d.intNonNeg()
	st.HitTime = d.duration()
	st.HitScanned = d.intNonNeg()
	st.HitCandidates = d.intNonNeg()
	st.Overhead = d.duration()
	st.ConsistencyTime = d.duration()
	st.CacheBypassed = d.bool()
	st.PlanTime = d.duration()
	st.PlanAlgorithm = d.str()
	st.PlanCached = d.bool()
	st.Truncated = d.bool()
	decodeQueryReplyExt(d, reply)
	if d.err != nil {
		return d.err
	}
	if len(d.data) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after query reply", len(d.data))
	}
	reply.IDs = ids
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var _ = core.QueryStats{} // wire fields mirror core.QueryStats; keep the import explicit
