// Package transport carries the ShardService contract between the
// router and its shard hosts. It defines the ShardClient interface the
// router fans out over, two implementations — Local (direct in-process
// calls, zero serialization) and Loopback (a real TCP transport with
// CRC length-prefixed frames in the internal/persist framing style) —
// and the shared error taxonomy mapping the serving stack's typed
// failures onto transport status codes. The HTTP layer and the wire
// codecs both consult the same table, so a shard error surfaces with
// the same meaning whether the shard was reached by a struct pointer or
// over a socket.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"gcplus/internal/core"
)

// ErrClosed is returned by operations on a closed server. (The message
// keeps the historical "serve:" prefix: it is part of the HTTP error
// surface and of test expectations predating the router/shard-host
// split.)
var ErrClosed = errors.New("serve: server is closed")

// OverloadError is returned when admission control sheds a request
// because the in-flight limit is saturated. The HTTP layer maps it to
// 429 with a Retry-After header; programmatic callers should back off
// and retry — nothing was executed or enqueued.
type OverloadError struct {
	// Kind is "query" or "update".
	Kind string
	// Limit is the in-flight bound that was saturated.
	Limit int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %s load shed: %d in flight (admission limit reached)", e.Kind, e.Limit)
}

// IsOverload reports whether err is an admission-control shed.
func IsOverload(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe)
}

// DurabilityError reports an update batch that was applied in memory
// but whose WAL append failed — the batch may not survive a crash.
// Clients must NOT blindly retry: the ops are already applied, and
// re-submitting would double-apply them.
type DurabilityError struct {
	Epoch uint64
	Shard int
	Err   error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("serve: WAL append for batch %d failed on shard %d (applied in memory, may not be durable): %v",
		e.Epoch, e.Shard, e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// Status classifies a serving-stack failure for transport and HTTP
// surfaces. The taxonomy is the single shared table: StatusOf decides
// the class, HTTPCode renders it, and the loopback wire codec carries
// the same byte so a remote shard's error decodes back into the same
// class it left with.
type Status uint8

const (
	// StatusOK: no error.
	StatusOK Status = iota
	// StatusBadRequest: the request itself is malformed — an
	// undecodable or oversized frame, an invalid parameter. Nothing was
	// executed.
	StatusBadRequest
	// StatusOverload: admission control shed the request
	// (*OverloadError). Safe to retry after backoff.
	StatusOverload
	// StatusCanceled: the request's deadline expired or its context was
	// cancelled (*core.CancelError, stage-tagged).
	StatusCanceled
	// StatusClosed: the server or transport is shut down (ErrClosed).
	StatusClosed
	// StatusDurability: the operation was applied but could not be made
	// durable (*DurabilityError, WAL-policy failures). NOT safe to
	// retry blindly.
	StatusDurability
	// StatusInternal: everything else.
	StatusInternal
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusOverload:
		return "overload"
	case StatusCanceled:
		return "canceled"
	case StatusClosed:
		return "closed"
	case StatusDurability:
		return "durability"
	case StatusInternal:
		return "internal"
	}
	return "unknown"
}

// HTTPCode maps a status to its HTTP response code — the other half of
// the shared table.
func (s Status) HTTPCode() int {
	switch s {
	case StatusOK:
		return http.StatusOK
	case StatusBadRequest:
		return http.StatusBadRequest
	case StatusOverload:
		return http.StatusTooManyRequests
	case StatusCanceled:
		return http.StatusGatewayTimeout
	case StatusClosed, StatusDurability:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// StatusOf classifies err. Unrecognized errors are StatusInternal.
func StatusOf(err error) Status {
	if err == nil {
		return StatusOK
	}
	if errors.Is(err, ErrClosed) {
		return StatusClosed
	}
	var oe *OverloadError
	if errors.As(err, &oe) {
		return StatusOverload
	}
	var ce *core.CancelError
	if errors.As(err, &ce) {
		return StatusCanceled
	}
	var de *DurabilityError
	if errors.As(err, &de) {
		return StatusDurability
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.status
	}
	return StatusInternal
}

// statusError carries a status across a decode boundary for classes
// that have no richer typed form (bad requests, opaque remote
// internals). StatusOf recognizes it so a remote error keeps its class.
type statusError struct {
	status Status
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// badRequestf builds a StatusBadRequest error.
func badRequestf(format string, args ...any) error {
	return &statusError{status: StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// appendWireError encodes err for the wire: the status byte from the
// shared table plus the per-class payload needed to reconstruct the
// typed error on the other side.
func appendWireError(dst []byte, err error) []byte {
	st := StatusOf(err)
	dst = append(dst, byte(st))
	switch st {
	case StatusOK:
	case StatusClosed:
		// No payload: the decoder returns the canonical ErrClosed.
	case StatusOverload:
		var oe *OverloadError
		errors.As(err, &oe)
		dst = appendString(dst, oe.Kind)
		dst = appendUvarint(dst, uint64(oe.Limit))
	case StatusCanceled:
		var ce *core.CancelError
		errors.As(err, &ce)
		dst = appendString(dst, ce.Stage)
		if errors.Is(ce.Err, context.DeadlineExceeded) {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 2)
		}
	case StatusDurability:
		var de *DurabilityError
		errors.As(err, &de)
		dst = appendUvarint(dst, de.Epoch)
		dst = appendUvarint(dst, uint64(de.Shard))
		dst = appendString(dst, fmt.Sprint(de.Err))
	default:
		dst = appendString(dst, err.Error())
	}
	return dst
}

// decodeWireError is appendWireError's inverse; it reconstructs the
// typed error so StatusOf and errors.As work identically on both sides
// of the wire.
func decodeWireError(d *dec) error {
	st := Status(d.byte())
	switch st {
	case StatusOK:
		return nil
	case StatusOverload:
		kind := d.str()
		limit := int(d.uvarint())
		if d.err != nil {
			return d.err
		}
		return &OverloadError{Kind: kind, Limit: limit}
	case StatusCanceled:
		stage := d.str()
		which := d.byte()
		if d.err != nil {
			return d.err
		}
		cause := context.Canceled
		if which == 1 {
			cause = context.DeadlineExceeded
		}
		return &core.CancelError{Stage: stage, Err: cause}
	case StatusClosed:
		return ErrClosed
	case StatusDurability:
		epoch := d.uvarint()
		shard := int(d.uvarint())
		msg := d.str()
		if d.err != nil {
			return d.err
		}
		return &DurabilityError{Epoch: epoch, Shard: shard, Err: errors.New(msg)}
	default:
		msg := d.str()
		if d.err != nil {
			return d.err
		}
		return &statusError{status: st, msg: msg}
	}
}
