package transport

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gcplus/internal/persist"
	"gcplus/internal/shardhost"
)

// The loopback transport runs the full wire path — request encode,
// TCP, server decode, owner-job dispatch, reply encode, TCP, client
// decode — with every shard host living in the same process behind
// 127.0.0.1. It exists to pin the cluster seam: a remote shard host is
// this server listening on a non-loopback address, nothing else
// changes.
//
// Ordering. The router's consistency argument needs per-shard call
// order fixed synchronously at call time. The client provides it with
// one TCP connection per shard and a mutex-serialized frame write
// inside each method: wire order equals call order. The server's
// per-connection reader dispatches frames to the host in arrival
// order, so the shard's FIFO job queue observes exactly the client's
// call order. CANCEL frames are the one exception — the reader handles
// them inline (cancelling the in-flight request's context) instead of
// enqueueing, so a cancel is never stuck behind the work it cancels.
//
// Deadlines cross the wire as relative budgets (no clock agreement
// needed); explicit context cancellation additionally sends a CANCEL
// frame via context.AfterFunc.

// LoopbackServer serves a set of shard hosts over TCP on 127.0.0.1.
type LoopbackServer struct {
	hosts  []*shardhost.Host
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeLoopback starts a server for hosts on an ephemeral 127.0.0.1
// port. The hosts must already be started; the server does not own
// their lifecycle.
func ServeLoopback(hosts []*shardhost.Host) (*LoopbackServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &LoopbackServer{hosts: hosts, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address to dial.
func (s *LoopbackServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, tears down every connection, and waits for
// the connection handlers to drain.
func (s *LoopbackServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *LoopbackServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// srvReply is one queued reply: the writer goroutine renders it so
// encoding never runs on the shard owner goroutine.
type srvReply struct {
	typ byte
	id  uint64
	enc func(dst []byte) []byte
}

func (s *LoopbackServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// HELLO: the first frame binds this connection to one shard.
	hello, err := readFrame(conn, 0)
	if err != nil {
		return
	}
	hd := &dec{data: hello}
	if hd.byte() != msgHello {
		return
	}
	shard := hd.uvarint()
	// Optional protocol version; a v1 client's HELLO ends at the shard.
	ver := uint64(1)
	if hd.err == nil && len(hd.data) > 0 {
		ver = hd.uvarint()
	}
	if hd.err != nil || shard >= uint64(len(s.hosts)) {
		return
	}
	host := s.hosts[shard]

	outCh := make(chan srvReply, 256)
	var pending sync.WaitGroup
	var imu sync.Mutex
	inflight := make(map[uint64]context.CancelFunc)

	// Writer: renders and writes replies until outCh closes. After a
	// write error it keeps draining (discarding) so reply senders on
	// owner goroutines never block on a dead connection.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var buf []byte
		dead := false
		for r := range outCh {
			if dead {
				continue
			}
			buf = buf[:0]
			buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
			buf = append(buf, msgReply)
			buf = appendUvarint(buf, r.id)
			buf = append(buf, r.typ)
			// Piggyback the shard's pressure sample on every reply so the
			// client's Signals stay fresh with zero extra round trips.
			sig := host.Signals()
			buf = appendUvarint(buf, uint64(sig.QueueLen))
			buf = appendUvarint(buf, uint64(max64(sig.PendingRepairs, 0)))
			buf = r.enc(buf)
			payload := buf[frameHeaderSize:]
			binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
			if _, err := conn.Write(buf); err != nil {
				dead = true
			}
		}
	}()

	// reply hands one completed request to the writer. outCh is closed
	// only after pending.Wait(), so a send can never hit a closed
	// channel.
	reply := func(typ byte, id uint64, enc func([]byte) []byte) {
		outCh <- srvReply{typ: typ, id: id, enc: enc}
		pending.Done()
	}

	// Reader: dispatch frames in arrival order until the connection
	// dies or a frame is malformed (poisoned stream — stop cold rather
	// than guess at resynchronization).
	for {
		payload, err := readFrame(conn, 0)
		if err != nil {
			break
		}
		d := &dec{data: payload}
		typ := d.byte()
		if typ == msgCancel {
			target := d.uvarint()
			if d.err != nil {
				break
			}
			imu.Lock()
			cancel := inflight[target]
			imu.Unlock()
			if cancel != nil {
				cancel()
			}
			continue
		}
		id := d.uvarint()
		if d.err != nil {
			break
		}
		body := d.data

		switch typ {
		case msgQuery:
			req, budget, derr := DecodeQueryRequest(body)
			if derr != nil {
				pending.Add(1)
				r := &shardhost.QueryReply{Err: badRequestf("%v", derr)}
				reply(typ, id, func(dst []byte) []byte { return AppendQueryReply(dst, r, ver) })
				continue
			}
			var ctx context.Context
			var cancel context.CancelFunc
			if budget > 0 {
				ctx, cancel = context.WithTimeout(context.Background(), budget)
			} else {
				ctx, cancel = context.WithCancel(context.Background())
			}
			imu.Lock()
			inflight[id] = cancel
			imu.Unlock()
			pending.Add(1)
			at := time.Now()
			r := &shardhost.QueryReply{}
			host.Query(ctx, req, r, func() {
				imu.Lock()
				delete(inflight, id)
				imu.Unlock()
				cancel()
				reply(typ, id, func(dst []byte) []byte {
					// The piggybacked span subtree is synthesized here, on
					// the writer goroutine, so the shard owner never pays
					// for span construction (the reply is final by the time
					// the writer renders it).
					if ver >= 2 && req.Trace.Sampled && req.Trace.Valid() {
						r.Spans = shardhost.BuildShardSpans(req.Trace, host.ID(), at.UnixNano(),
							time.Duration(r.QueueNanos), &r.Stats, r.Err, host.CacheEnabled())
					}
					return AppendQueryReply(dst, r, ver)
				})
			})

		case msgApplyOp:
			req, derr := DecodeOpRequest(body)
			if derr != nil {
				pending.Add(1)
				r := &shardhost.OpReply{ID: -1, Err: badRequestf("%v", derr)}
				reply(typ, id, func(dst []byte) []byte { return appendOpReply(dst, r) })
				continue
			}
			pending.Add(1)
			r := &shardhost.OpReply{}
			host.ApplyOp(req, r, func() {
				reply(typ, id, func(dst []byte) []byte { return appendOpReply(dst, r) })
			})

		case msgAppendWAL:
			ed := &dec{data: body}
			epoch := ed.uvarint()
			if ed.err != nil {
				goto drain
			}
			pending.Add(1)
			r := &shardhost.WALAppendReply{}
			host.AppendWAL(epoch, r, func() {
				reply(typ, id, func(dst []byte) []byte {
					dst = appendWireError(dst, r.Err)
					if ver >= 2 {
						dst = appendUvarint(dst, uint64(max64(r.Nanos, 0)))
					}
					return dst
				})
			})

		case msgSync:
			pending.Add(1)
			host.Sync(func() {
				reply(typ, id, func(dst []byte) []byte { return dst })
			})

		case msgSnapshot:
			ed := &dec{data: body}
			epoch := ed.uvarint()
			if ed.err != nil {
				goto drain
			}
			pending.Add(1)
			r := &shardhost.SnapshotReply{}
			host.Snapshot(epoch, r, func() {
				reply(typ, id, func(dst []byte) []byte { return appendSnapshotReply(dst, r) })
			})

		case msgStats:
			pending.Add(1)
			r := &shardhost.StatsReply{}
			host.Stats(r, func() {
				reply(typ, id, func(dst []byte) []byte {
					b, jerr := json.Marshal(r)
					dst = appendWireError(dst, jerr)
					if jerr == nil {
						dst = appendBytes(dst, b)
					}
					return dst
				})
			})

		default:
			// Unknown message type: poisoned stream.
			goto drain
		}
	}
drain:
	// Abort whatever is still running, let every dispatched request
	// deliver its reply (discarded by the dead writer if the conn is
	// gone), then release the writer.
	imu.Lock()
	for _, cancel := range inflight {
		cancel()
	}
	imu.Unlock()
	pending.Wait()
	close(outCh)
	<-writerDone
}

// appendOpReply encodes an OpReply body: errblock, then the assigned
// global id on success.
func appendOpReply(dst []byte, r *shardhost.OpReply) []byte {
	dst = appendWireError(dst, r.Err)
	if r.Err == nil {
		dst = appendUvarint(dst, uint64(max64(int64(r.ID), 0)))
	}
	return dst
}

// appendSnapshotReply encodes a SnapshotReply body: errblock (rotation
// failure, or host-side encode failure — either abandons the
// generation), presence flag, encoded snapshot.
func appendSnapshotReply(dst []byte, r *shardhost.SnapshotReply) []byte {
	var payload []byte
	var encErr error
	if r.Snap != nil {
		payload, encErr = persist.EncodeShardSnapshot(r.Snap)
	}
	werr := r.RotateErr
	if werr == nil {
		werr = encErr
	}
	dst = appendWireError(dst, werr)
	ok := payload != nil && encErr == nil
	dst = appendBool(dst, ok)
	if ok {
		dst = appendBytes(dst, payload)
	}
	return dst
}

// call is one in-flight client request: where to decode the reply, and
// how to tell the caller.
type call struct {
	typ     byte
	qreply  *shardhost.QueryReply
	oreply  *shardhost.OpReply
	wreply  *shardhost.WALAppendReply
	snreply *shardhost.SnapshotReply
	streply *shardhost.StatsReply
	done    func()
	stop    func() bool // context.AfterFunc release, queries only
}

// LoopbackClient is one shard's ShardClient over the loopback wire.
type LoopbackClient struct {
	shard int
	conn  net.Conn

	// wmu serializes frame writes: wire order is call order, which is
	// the transport's half of the router's ordering contract. wbuf is
	// the reused encode buffer it guards.
	wmu  sync.Mutex
	wbuf []byte

	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]*call
	closed  bool

	queueLen       atomic.Int64
	pendingRepairs atomic.Int64

	// maxFrame bounds an outbound frame payload; oversize requests are
	// rejected client-side with StatusBadRequest before any bytes move.
	// Unexported: tests shrink it to exercise the rejection path.
	maxFrame int

	readerDone chan struct{}
}

// DialLoopback connects to a LoopbackServer and binds the connection
// to shard.
func DialLoopback(addr string, shard int) (*LoopbackClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Request/reply frames are small and latency-bound; never let Nagle
	// hold one back waiting for an ACK.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &LoopbackClient{
		shard:      shard,
		conn:       conn,
		pending:    make(map[uint64]*call),
		maxFrame:   MaxFramePayload,
		readerDone: make(chan struct{}),
	}
	hello := appendUvarint(appendUvarint([]byte{msgHello}, uint64(shard)), protocolVersion)
	if _, err := conn.Write(appendFrame(nil, hello)); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *LoopbackClient) Kind() string { return "loopback" }

func (c *LoopbackClient) Signals() shardhost.Signals {
	return shardhost.Signals{
		QueueLen:       int(c.queueLen.Load()),
		PendingRepairs: c.pendingRepairs.Load(),
	}
}

// send encodes {typ, id, body} into one frame and writes it under wmu.
// The call is registered before the write so an instant reply cannot
// race the registration. Returns a non-nil error — already delivered
// into the call's reply and done — when nothing was sent.
func (c *LoopbackClient) send(id uint64, cl *call, build func(dst []byte) ([]byte, error)) {
	c.wmu.Lock()
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, 0, 0, 0, 0, 0, 0, 0, 0)
	c.wbuf = append(c.wbuf, cl.typ)
	c.wbuf = appendUvarint(c.wbuf, id)
	var berr error
	c.wbuf, berr = build(c.wbuf)
	payload := c.wbuf[frameHeaderSize:]
	if berr == nil && len(payload) > c.maxFrame {
		berr = badRequestf("transport: request frame payload %d exceeds limit %d", len(payload), c.maxFrame)
	}
	if berr != nil {
		c.wmu.Unlock()
		c.deliverErr(cl, berr)
		return
	}
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		c.wmu.Unlock()
		c.deliverErr(cl, ErrClosed)
		return
	}
	c.pending[id] = cl
	c.pmu.Unlock()
	binary.LittleEndian.PutUint32(c.wbuf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(c.wbuf[4:8], crc32.ChecksumIEEE(payload))
	_, werr := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("transport: shard %d connection write: %w", c.shard, werr))
	}
}

func (c *LoopbackClient) Query(ctx context.Context, req *shardhost.QueryRequest, reply *shardhost.QueryReply, done func()) {
	id := c.nextID.Add(1)
	cl := &call{typ: msgQuery, qreply: reply, done: done}
	var budget time.Duration
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
			if budget <= 0 {
				// Already expired: ship the smallest non-zero budget so the
				// server cancels it at the queue stage (zero means "none").
				budget = time.Nanosecond
			}
		}
		if ctx.Done() != nil {
			cl.stop = context.AfterFunc(ctx, func() { c.sendCancel(id) })
		}
	}
	c.send(id, cl, func(dst []byte) ([]byte, error) {
		return AppendQueryRequest(dst, req, budget), nil
	})
}

// sendCancel asks the server to cancel request id. Best effort: a
// cancel for a finished (or never-sent) request is a no-op there.
func (c *LoopbackClient) sendCancel(id uint64) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, 0, 0, 0, 0, 0, 0, 0, 0)
	c.wbuf = append(c.wbuf, msgCancel)
	c.wbuf = appendUvarint(c.wbuf, id)
	payload := c.wbuf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(c.wbuf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(c.wbuf[4:8], crc32.ChecksumIEEE(payload))
	c.conn.Write(c.wbuf)
}

func (c *LoopbackClient) ApplyOp(req *shardhost.OpRequest, reply *shardhost.OpReply, done func()) {
	id := c.nextID.Add(1)
	cl := &call{typ: msgApplyOp, oreply: reply, done: done}
	c.send(id, cl, func(dst []byte) ([]byte, error) {
		return AppendOpRequest(dst, req)
	})
}

func (c *LoopbackClient) AppendWAL(epoch uint64, reply *shardhost.WALAppendReply, done func()) {
	id := c.nextID.Add(1)
	cl := &call{typ: msgAppendWAL, wreply: reply, done: done}
	c.send(id, cl, func(dst []byte) ([]byte, error) {
		return appendUvarint(dst, epoch), nil
	})
}

func (c *LoopbackClient) Sync(done func()) {
	id := c.nextID.Add(1)
	cl := &call{typ: msgSync}
	if done != nil {
		cl.done = done
	} else {
		cl.done = func() {}
	}
	c.send(id, cl, func(dst []byte) ([]byte, error) { return dst, nil })
}

func (c *LoopbackClient) Snapshot(epoch uint64, reply *shardhost.SnapshotReply, done func()) {
	id := c.nextID.Add(1)
	cl := &call{typ: msgSnapshot, snreply: reply, done: done}
	c.send(id, cl, func(dst []byte) ([]byte, error) {
		return appendUvarint(dst, epoch), nil
	})
}

func (c *LoopbackClient) Stats(reply *shardhost.StatsReply, done func()) {
	id := c.nextID.Add(1)
	cl := &call{typ: msgStats, streply: reply, done: done}
	c.send(id, cl, func(dst []byte) ([]byte, error) { return dst, nil })
}

// Close tears the connection down; in-flight calls complete with
// ErrClosed.
func (c *LoopbackClient) Close() error {
	c.fail(ErrClosed)
	<-c.readerDone
	return nil
}

// deliverErr completes a call that never reached (or never left) the
// wire.
func (c *LoopbackClient) deliverErr(cl *call, err error) {
	c.setErr(cl, err)
	if cl.stop != nil {
		cl.stop()
	}
	cl.done()
}

// setErr routes err into the reply slot the call's type uses.
// StatsReply and SnapshotReply carry transport failures in Err and
// RotateErr respectively; for Sync there is nowhere to put it — the
// sweep's effect is ordered by the call sequence, and a lost
// connection fails the surrounding batch through its other calls.
func (c *LoopbackClient) setErr(cl *call, err error) {
	switch cl.typ {
	case msgQuery:
		cl.qreply.Err = err
	case msgApplyOp:
		cl.oreply.ID = -1
		cl.oreply.Err = err
	case msgAppendWAL:
		cl.wreply.Err = err
	case msgSnapshot:
		cl.snreply.RotateErr = err
	case msgStats:
		cl.streply.Err = err
	}
}

// fail poisons the client: every pending call completes with err, the
// connection closes, and later sends fail fast.
func (c *LoopbackClient) fail(err error) {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return
	}
	c.closed = true
	calls := make([]*call, 0, len(c.pending))
	for _, cl := range c.pending {
		calls = append(calls, cl)
	}
	c.pending = make(map[uint64]*call)
	c.pmu.Unlock()
	c.conn.Close()
	for _, cl := range calls {
		c.deliverErr(cl, err)
	}
}

func (c *LoopbackClient) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := readFrame(c.conn, 0)
		if err != nil {
			c.fail(fmt.Errorf("transport: shard %d connection read: %w", c.shard, err))
			return
		}
		d := &dec{data: payload}
		if d.byte() != msgReply {
			c.fail(fmt.Errorf("transport: shard %d: unexpected frame type", c.shard))
			return
		}
		id := d.uvarint()
		typ := d.byte()
		ql := d.uvarint()
		pr := d.uvarint()
		if d.err != nil {
			c.fail(d.err)
			return
		}
		c.queueLen.Store(int64(ql))
		c.pendingRepairs.Store(int64(pr))
		c.pmu.Lock()
		cl := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if cl == nil {
			continue // reply to an abandoned call (e.g. an unregistered Sync)
		}
		if derr := c.decodeReply(typ, d, cl); derr != nil {
			// A malformed reply means the stream itself can no longer be
			// trusted; fail the call and the connection with it.
			c.setErr(cl, derr)
			if cl.stop != nil {
				cl.stop()
			}
			cl.done()
			c.fail(derr)
			return
		}
		if cl.stop != nil {
			cl.stop()
		}
		cl.done()
	}
}

// decodeReply decodes one reply body into the call's reply struct.
func (c *LoopbackClient) decodeReply(typ byte, d *dec, cl *call) error {
	if typ != cl.typ {
		return fmt.Errorf("transport: shard %d: reply type %d for request type %d", c.shard, typ, cl.typ)
	}
	switch typ {
	case msgQuery:
		return DecodeQueryReply(d.data, cl.qreply)
	case msgApplyOp:
		werr := decodeWireError(d)
		if d.err != nil {
			return d.err
		}
		if werr != nil {
			cl.oreply.ID = -1
			cl.oreply.Err = werr
			return nil
		}
		gid := d.uvarint()
		if d.err != nil {
			return d.err
		}
		cl.oreply.ID = int(gid)
		return nil
	case msgAppendWAL:
		werr := decodeWireError(d)
		if d.err == nil && len(d.data) > 0 {
			// v2 extension: host-measured append latency.
			cl.wreply.Nanos = int64(d.duration())
		}
		if d.err != nil {
			return d.err
		}
		cl.wreply.Err = werr
		return nil
	case msgSync:
		return nil
	case msgSnapshot:
		werr := decodeWireError(d)
		hasSnap := d.bool()
		var payload []byte
		if hasSnap {
			payload = d.bytes()
		}
		if d.err != nil {
			return d.err
		}
		cl.snreply.RotateErr = werr
		cl.snreply.Payload = payload
		return nil
	case msgStats:
		werr := decodeWireError(d)
		if d.err != nil {
			return d.err
		}
		if werr != nil {
			cl.streply.Err = werr
			return nil
		}
		b := d.bytes()
		if d.err != nil {
			return d.err
		}
		if jerr := json.Unmarshal(b, cl.streply); jerr != nil {
			return fmt.Errorf("transport: shard %d stats reply: %w", c.shard, jerr)
		}
		return nil
	}
	return fmt.Errorf("transport: shard %d: unknown reply type %d", c.shard, typ)
}
