package transport

import (
	"context"

	"gcplus/internal/shardhost"
)

// Local is the in-process transport: a ShardClient that calls the Host
// directly. Zero serialization, zero goroutine hops beyond the shard
// worker itself — this is byte-for-byte the pre-split call path, which
// is why it must (and does) benchmark within noise of it.
type Local struct {
	h *shardhost.Host
}

// NewLocal wraps a host in the direct in-process transport.
func NewLocal(h *shardhost.Host) *Local { return &Local{h: h} }

// Host exposes the wrapped host for in-process seams the contract does
// not cover (boot-time recovery, snapshot durability acks).
func (l *Local) Host() *shardhost.Host { return l.h }

func (l *Local) Kind() string { return "local" }

func (l *Local) Query(ctx context.Context, req *shardhost.QueryRequest, reply *shardhost.QueryReply, done func()) {
	l.h.Query(ctx, req, reply, done)
}

func (l *Local) ApplyOp(req *shardhost.OpRequest, reply *shardhost.OpReply, done func()) {
	l.h.ApplyOp(req, reply, done)
}

func (l *Local) AppendWAL(epoch uint64, reply *shardhost.WALAppendReply, done func()) {
	l.h.AppendWAL(epoch, reply, done)
}

func (l *Local) Sync(done func()) { l.h.Sync(done) }

func (l *Local) Snapshot(epoch uint64, reply *shardhost.SnapshotReply, done func()) {
	l.h.Snapshot(epoch, reply, done)
}

func (l *Local) Stats(reply *shardhost.StatsReply, done func()) {
	l.h.Stats(reply, done)
}

func (l *Local) Signals() shardhost.Signals { return l.h.Signals() }

func (l *Local) Close() error { return nil }
