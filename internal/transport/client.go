package transport

import (
	"context"

	"gcplus/internal/shardhost"
)

// ShardClient is the router's only view of a shard. Every method
// mirrors the shardhost.ShardService contract: it fixes this shard's
// call order synchronously — by the time the method returns, the shard
// will observe this call after every earlier call on the same client
// and before every later one — fills the caller-owned reply
// asynchronously, and invokes done exactly once when the reply is
// ready. That synchronous-ordering property is what lets the router's
// seqMu epoch-sequencing protocol work identically over a struct
// pointer and over a socket.
type ShardClient interface {
	// Kind names the transport ("local" or "loopback") for metrics
	// labels and benchmark output.
	Kind() string

	// Query runs one containment query; ctx deadlines and cancellation
	// propagate to the shard (over the wire as a relative time budget
	// plus an explicit cancel frame).
	Query(ctx context.Context, req *shardhost.QueryRequest, reply *shardhost.QueryReply, done func())

	// ApplyOp applies one routed change operation.
	ApplyOp(req *shardhost.OpRequest, reply *shardhost.OpReply, done func())

	// AppendWAL asks the shard to seal its pending batch ops into the
	// epoch's WAL frame.
	AppendWAL(epoch uint64, reply *shardhost.WALAppendReply, done func())

	// Sync enqueues one cache-reconciliation sweep. done may be nil for
	// fire-and-forget sweeps ordered by the call sequence itself.
	Sync(done func())

	// Snapshot exports the shard's state for the snapshot generation at
	// epoch and rotates its WAL. In-process transports return the raw
	// export (reply.Snap); wire transports return it encoded
	// (reply.Payload).
	Snapshot(epoch uint64, reply *shardhost.SnapshotReply, done func())

	// Stats takes the shard's statistics snapshot in owner context.
	Stats(reply *shardhost.StatsReply, done func())

	// Signals samples the shard's pressure inputs without a round trip:
	// lock-free host reads for the local transport, the last reply
	// frame's piggybacked sample for the wire transport.
	Signals() shardhost.Signals

	// Close releases the client's resources (the shard host itself is
	// owned and stopped by whoever started it).
	Close() error
}
