package transport

// Wire-codec fuzzers: every decoder must reject malformed input with an
// error — never panic, never over-allocate, never silently truncate.
// Each fuzzer seeds its corpus with real encodes (so coverage starts on
// the happy path and mutates outward) and, when a mutated input does
// decode, closes the loop: re-encoding the decoded value must reproduce
// a payload that decodes to the same thing.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/shardhost"
	"gcplus/internal/trace"
)

func fuzzSeedGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(1, 2),
		graph.Path(3, 1, 4, 1),
		graph.Star(2, 5, 6, 7),
	}
}

func FuzzWireQuery(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		f.Add(AppendQueryRequest(nil, &shardhost.QueryRequest{
			Kind:  cache.KindSub,
			Query: g,
			Opts:  core.QueryOptions{Limit: 3, MaxVerifyParallelism: 2},
		}, 250*time.Millisecond))
		f.Add(AppendQueryRequest(nil, &shardhost.QueryRequest{
			Kind:  cache.KindSuper,
			Query: g,
			Opts:  core.QueryOptions{BypassCache: true},
		}, 0))
		f.Add(AppendQueryRequest(nil, &shardhost.QueryRequest{
			Kind:  cache.KindSub,
			Query: g,
			Trace: trace.Context{TraceID: 0xfeed, Parent: 0xbeef, Sampled: true},
		}, time.Second))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, deadline, err := DecodeQueryRequest(data)
		if err != nil {
			return
		}
		if req.Query == nil {
			t.Fatal("decoded query request without a graph")
		}
		if req.Kind != cache.KindSub && req.Kind != cache.KindSuper {
			t.Fatalf("decoded invalid kind %d", req.Kind)
		}
		if req.Opts.Limit < 0 || req.Opts.MaxVerifyParallelism < 0 || deadline < 0 {
			t.Fatalf("decoded negative field: %+v deadline %v", req.Opts, deadline)
		}
		re := AppendQueryRequest(nil, req, deadline)
		req2, deadline2, err := DecodeQueryRequest(re)
		if err != nil {
			t.Fatalf("re-encode of a decoded request failed to decode: %v", err)
		}
		if deadline2 != deadline || req2.Kind != req.Kind ||
			req2.Opts.Limit != req.Opts.Limit ||
			req2.Opts.BypassCache != req.Opts.BypassCache ||
			req2.Opts.MaxVerifyParallelism != req.Opts.MaxVerifyParallelism {
			t.Fatalf("round trip diverged: %+v/%v vs %+v/%v", req, deadline, req2, deadline2)
		}
		if req.Trace.Valid() && req2.Trace != req.Trace {
			t.Fatalf("round trip diverged on trace context: %+v vs %+v", req.Trace, req2.Trace)
		}
		if !bytes.Equal(graph.Marshal(req.Query), graph.Marshal(req2.Query)) {
			t.Fatal("round trip diverged on the query graph")
		}
	})
}

func FuzzWireOps(f *testing.F) {
	for i, g := range fuzzSeedGraphs() {
		if b, err := AppendOpRequest(nil, &shardhost.OpRequest{Op: changeplan.AddOp(g), GlobalID: 40 + i}); err == nil {
			f.Add(b)
		}
	}
	for _, op := range []changeplan.Op{
		changeplan.DeleteOp(7),
		{Type: dataset.OpUpdateAddEdge, GraphID: 3, U: 0, V: 2},
		{Type: dataset.OpUpdateRemoveEdge, GraphID: 3, U: 1, V: 2},
	} {
		if b, err := AppendOpRequest(nil, &shardhost.OpRequest{Op: op, GlobalID: 3}); err == nil {
			f.Add(b)
		}
	}
	if b, err := AppendOpRequest(nil, &shardhost.OpRequest{
		Op:       changeplan.DeleteOp(2),
		GlobalID: 2,
		Trace:    trace.Context{TraceID: 0xabc, Parent: 0xdef, Sampled: true},
	}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeOpRequest(data)
		if err != nil {
			return
		}
		if req.GlobalID < 0 {
			t.Fatalf("decoded negative global id %d", req.GlobalID)
		}
		if req.Op.Type == dataset.OpAdd && req.Op.Graph == nil {
			t.Fatal("decoded ADD without a graph")
		}
		re, err := AppendOpRequest(nil, req)
		if err != nil {
			t.Fatalf("re-encode of a decoded op failed: %v", err)
		}
		req2, err := DecodeOpRequest(re)
		if err != nil {
			t.Fatalf("re-encode of a decoded op failed to decode: %v", err)
		}
		if req2.GlobalID != req.GlobalID || req2.Op.Type != req.Op.Type ||
			req2.Op.GraphID != req.Op.GraphID || req2.Op.U != req.Op.U || req2.Op.V != req.Op.V {
			t.Fatalf("round trip diverged: %+v vs %+v", req, req2)
		}
		if req.Trace.Valid() && req2.Trace != req.Trace {
			t.Fatalf("round trip diverged on trace context: %+v vs %+v", req.Trace, req2.Trace)
		}
	})
}

func FuzzWireResult(f *testing.F) {
	f.Add(AppendQueryReply(nil, &shardhost.QueryReply{
		IDs:       []int{2, 5, 11, 40},
		Stats:     core.QueryStats{Kind: cache.KindSub, SubIsoTests: 9, TestsSaved: 4, QueryTime: time.Millisecond, PlanAlgorithm: "VF2+", Truncated: true},
		HostNanos: 12345,
	}, protocolVersion))
	f.Add(AppendQueryReply(nil, &shardhost.QueryReply{
		Err:       &core.CancelError{Stage: "verify", Err: nil},
		HostNanos: 99,
	}, protocolVersion))
	f.Add(AppendQueryReply(nil, &shardhost.QueryReply{
		Err: &OverloadError{Kind: "query", Limit: 8},
	}, 1)) // v1 body: no trailing extension
	f.Add(AppendQueryReply(nil, &shardhost.QueryReply{}, protocolVersion))
	f.Add(AppendQueryReply(nil, &shardhost.QueryReply{
		IDs:        []int{3},
		QueueNanos: 4200,
		Spans: []trace.Span{
			{TraceID: 9, ID: 1, Name: "shard", Attrs: []trace.Attr{{Key: "shard", Value: "0"}}},
			{TraceID: 9, ID: 2, Parent: 1, Name: "verify", DurNanos: 777},
		},
	}, protocolVersion))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var reply shardhost.QueryReply
		if err := DecodeQueryReply(data, &reply); err != nil {
			return
		}
		for i := 1; i < len(reply.IDs); i++ {
			if reply.IDs[i] <= reply.IDs[i-1] {
				t.Fatalf("decoded answer ids not strictly ascending: %v", reply.IDs)
			}
		}
		if reply.HostNanos < 0 {
			t.Fatalf("decoded negative host nanos %d", reply.HostNanos)
		}
		re := AppendQueryReply(nil, &reply, protocolVersion)
		var reply2 shardhost.QueryReply
		if err := DecodeQueryReply(re, &reply2); err != nil {
			t.Fatalf("re-encode of a decoded reply failed to decode: %v", err)
		}
		if !equalInts(reply.IDs, reply2.IDs) || reply.Stats != reply2.Stats || reply.HostNanos != reply2.HostNanos {
			t.Fatalf("round trip diverged:\n %+v\n %+v", reply, reply2)
		}
		if reply2.QueueNanos != reply.QueueNanos {
			t.Fatalf("round trip diverged on queue nanos: %d vs %d", reply.QueueNanos, reply2.QueueNanos)
		}
		if !reflect.DeepEqual(reply.Spans, reply2.Spans) {
			t.Fatalf("round trip diverged on spans:\n %+v\n %+v", reply.Spans, reply2.Spans)
		}
		if (reply.Err == nil) != (reply2.Err == nil) {
			t.Fatalf("round trip diverged on error presence: %v vs %v", reply.Err, reply2.Err)
		}
		if reply.Err != nil && reply.Err.Error() != reply2.Err.Error() {
			t.Fatalf("round trip diverged on error text: %q vs %q", reply.Err, reply2.Err)
		}
	})
}
