// Package bitset provides a dynamically sized bit set.
//
// GC+ uses bit sets pervasively: a cached query's answer set and its
// dataset-graph-validity indicator CGvalid (Algorithm 2 of the paper) are
// both bit sets indexed by dataset graph id, and the candidate set handed
// to Method M is a bit set over the live dataset. The implementation is a
// plain []uint64 with copy-on-grow semantics; it is not safe for
// concurrent mutation.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dynamically sized bit set. The zero value is an empty set ready
// to use. Bits beyond the highest ever set are implicitly zero.
type Set struct {
	words []uint64
}

// New returns a set with capacity preallocated for bits [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices builds a set containing exactly the given indices.
func FromIndices(idx ...int) *Set {
	s := &Set{}
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	nw := make([]uint64, word+1)
	copy(nw, s.words)
	s.words = nw
}

// Set sets bit i to true. Negative indices panic.
func (s *Set) Set(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to false.
func (s *Set) Clear(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// SetTo sets bit i to v.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Get reports whether bit i is set. Out-of-range indices report false.
func (s *Set) Get(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// None reports whether no bit is set.
func (s *Set) None() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool { return !s.None() }

// Len returns one past the highest bit that could be set without growth
// (the current capacity in bits). It mirrors java.util.BitSet.size() as
// used by Algorithm 2's length check.
func (s *Set) Len() int { return len(s.words) * wordBits }

// Max returns the highest set bit, or -1 if the set is empty.
func (s *Set) Max() int {
	for w := len(s.words) - 1; w >= 0; w-- {
		if s.words[w] != 0 {
			return w*wordBits + 63 - bits.LeadingZeros64(s.words[w])
		}
	}
	return -1
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o.
func (s *Set) CopyFrom(o *Set) {
	if len(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		for i := len(o.words); i < len(s.words); i++ {
			s.words[i] = 0
		}
		s.words = s.words[:maxInt(len(s.words), len(o.words))]
	}
	copy(s.words, o.words)
}

// Reset clears all bits, retaining capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// And intersects s with o in place.
func (s *Set) And(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Or unions o into s.
func (s *Set) Or(o *Set) {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words) - 1)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// AndNot removes every bit of o from s (set difference).
func (s *Set) AndNot(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// Xor symmetric-differences o into s.
func (s *Set) Xor(o *Set) {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words) - 1)
	}
	for i, w := range o.words {
		s.words[i] ^= w
	}
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// Intersects reports whether s ∩ o is non-empty.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every bit of s is also set in o.
func (s *Set) IsSubsetOf(o *Set) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var sw, ow uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(o.words) {
			ow = o.words[i]
		}
		if sw != ow {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// NextSet returns the smallest set bit >= i, or -1 if none exists.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	if w >= len(s.words) {
		return -1
	}
	cur := s.words[w] >> uint(i%wordBits)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// Words returns a copy of the set's backing words (64 bits each, little
// bit-endian within a word), trimmed of trailing zero words — the
// canonical serialized form the durability subsystem persists. The
// trimming makes the representation independent of the set's growth
// history, so equal sets serialize identically.
func (s *Set) Words() []uint64 {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	out := make([]uint64, n)
	copy(out, s.words)
	return out
}

// FromWords builds a set from backing words as produced by Words. The
// slice is copied.
func FromWords(ws []uint64) *Set {
	s := &Set{words: make([]uint64, len(ws))}
	copy(s.words, ws)
	return s
}

// ComplementWithin returns universe \ s as a new set. It is the paper's
// "complementary set of CGvalid against the state-of-the-art dataset"
// (formula (4)), where universe is the set of live dataset graph ids.
func (s *Set) ComplementWithin(universe *Set) *Set {
	c := universe.Clone()
	c.AndNot(s)
	return c
}

// String renders the set as "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
