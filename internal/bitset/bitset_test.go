package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if s.Any() {
		t.Fatal("zero set should be empty")
	}
	if s.Get(100) {
		t.Fatal("unset bit reported set")
	}
	s.Set(100)
	if !s.Get(100) {
		t.Fatal("bit 100 should be set")
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestSetClearGet(t *testing.T) {
	s := New(10)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s.Set(i)
		if !s.Get(i) {
			t.Errorf("Get(%d) = false after Set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Errorf("Get(%d) = true after Clear", i)
		}
	}
}

func TestSetToMatchesSetClear(t *testing.T) {
	s := New(0)
	s.SetTo(7, true)
	if !s.Get(7) {
		t.Fatal("SetTo(7,true) did not set")
	}
	s.SetTo(7, false)
	if s.Get(7) {
		t.Fatal("SetTo(7,false) did not clear")
	}
}

func TestNegativeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	New(0).Set(-1)
}

func TestClearBeyondLenNoop(t *testing.T) {
	s := New(1)
	s.Clear(5000) // must not panic or grow
	if s.Len() >= 5000 {
		t.Fatal("Clear grew the set")
	}
}

func TestCountNoneAny(t *testing.T) {
	s := New(200)
	if !s.None() || s.Any() {
		t.Fatal("fresh set should be None")
	}
	s.Set(3)
	s.Set(150)
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if s.None() || !s.Any() {
		t.Fatal("set with bits should be Any")
	}
}

func TestMax(t *testing.T) {
	s := New(0)
	if s.Max() != -1 {
		t.Fatalf("empty Max = %d, want -1", s.Max())
	}
	s.Set(0)
	if s.Max() != 0 {
		t.Fatalf("Max = %d, want 0", s.Max())
	}
	s.Set(511)
	if s.Max() != 511 {
		t.Fatalf("Max = %d, want 511", s.Max())
	}
	s.Clear(511)
	if s.Max() != 0 {
		t.Fatalf("Max after clear = %d, want 0", s.Max())
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromIndices(1, 2, 3)
	c := s.Clone()
	c.Set(99)
	if s.Get(99) {
		t.Fatal("mutating clone affected original")
	}
	s.Clear(2)
	if !c.Get(2) {
		t.Fatal("mutating original affected clone")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromIndices(1, 500)
	o := FromIndices(2, 3)
	s.CopyFrom(o)
	if !s.Equal(o) {
		t.Fatalf("CopyFrom: got %v want %v", s, o)
	}
	if s.Get(500) {
		t.Fatal("stale high bit survived CopyFrom")
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(1, 2, 3, 100)
	b := FromIndices(2, 3, 4, 200)

	and := a.Clone()
	and.And(b)
	if got, want := and.String(), "{2, 3}"; got != want {
		t.Errorf("And = %s, want %s", got, want)
	}

	or := a.Clone()
	or.Or(b)
	if got, want := or.Count(), 6; got != want {
		t.Errorf("Or count = %d, want %d", got, want)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got, want := diff.String(), "{1, 100}"; got != want {
		t.Errorf("AndNot = %s, want %s", got, want)
	}

	xor := a.Clone()
	xor.Xor(b)
	if got, want := xor.String(), "{1, 4, 100, 200}"; got != want {
		t.Errorf("Xor = %s, want %s", got, want)
	}
}

func TestAndShrinksHighBits(t *testing.T) {
	a := FromIndices(1, 700)
	b := FromIndices(1)
	a.And(b)
	if a.Get(700) {
		t.Fatal("And left a high bit set beyond the shorter operand")
	}
}

func TestIntersectionCountAndIntersects(t *testing.T) {
	a := FromIndices(0, 64, 128)
	b := FromIndices(64, 128, 256)
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	c := FromIndices(1, 2)
	if a.Intersects(c) {
		t.Fatal("Intersects = true, want false")
	}
	if got := a.IntersectionCount(c); got != 0 {
		t.Fatalf("IntersectionCount = %d, want 0", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(1, 2)
	b := FromIndices(1, 2, 3)
	if !a.IsSubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.IsSubsetOf(a.Clone()) {
		t.Fatal("a should be subset of itself")
	}
	// Equal must ignore trailing zero words.
	c := New(1000)
	c.Set(1)
	c.Set(2)
	if !a.Equal(c) {
		t.Fatal("Equal should ignore capacity differences")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromIndices(5, 1, 300, 64)
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{1, 5, 64, 300}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	n := 0
	s.ForEach(func(i int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestIndices(t *testing.T) {
	s := FromIndices(9, 0, 63, 64)
	got := s.Indices()
	want := []int{0, 9, 63, 64}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestNextSet(t *testing.T) {
	s := FromIndices(3, 64, 130)
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, -1}, {-5, 3},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(0).NextSet(0); got != -1 {
		t.Errorf("empty NextSet = %d, want -1", got)
	}
}

func TestComplementWithin(t *testing.T) {
	universe := FromIndices(0, 1, 2, 3, 4)
	s := FromIndices(1, 3, 9) // 9 outside universe must be ignored
	c := s.ComplementWithin(universe)
	if got, want := c.String(), "{0, 2, 4}"; got != want {
		t.Fatalf("ComplementWithin = %s, want %s", got, want)
	}
}

func TestReset(t *testing.T) {
	s := FromIndices(1, 2, 3)
	s.Reset()
	if s.Any() {
		t.Fatal("Reset left bits set")
	}
}

func TestString(t *testing.T) {
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	if got := FromIndices(2, 7).String(); got != "{2, 7}" {
		t.Fatalf("String = %q", got)
	}
}

// reference is a map-backed model used by the property tests.
type reference map[int]bool

func (r reference) toSet() *Set {
	s := New(0)
	for i, v := range r {
		if v {
			s.Set(i)
		}
	}
	return s
}

// TestQuickAgainstReference drives random operation sequences against both
// the bitset and a map model and requires identical observable state.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		ref := reference{}
		for step := 0; step < 300; step++ {
			i := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Get(i) != ref[i] {
					return false
				}
			}
		}
		count := 0
		for _, v := range ref {
			if v {
				count++
			}
		}
		return s.Count() == count && s.Equal(ref.toSet())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBooleanLaws checks algebraic identities on random pairs.
func TestQuickBooleanLaws(t *testing.T) {
	gen := func(rng *rand.Rand) *Set {
		s := New(0)
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			s.Set(rng.Intn(256))
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)

		// |a ∩ b| + |a \ b| == |a|
		ab := a.Clone()
		ab.And(b)
		diff := a.Clone()
		diff.AndNot(b)
		if ab.Count()+diff.Count() != a.Count() {
			return false
		}
		// De Morgan within a universe: U\(a ∪ b) == (U\a) ∩ (U\b)
		u := New(0)
		for i := 0; i < 256; i++ {
			u.Set(i)
		}
		union := a.Clone()
		union.Or(b)
		lhs := union.ComplementWithin(u)
		rhs := a.ComplementWithin(u)
		rhs.And(b.ComplementWithin(u))
		if !lhs.Equal(rhs) {
			return false
		}
		// IntersectionCount agrees with materialized And.
		if a.IntersectionCount(b) != ab.Count() {
			return false
		}
		// subset relations
		if !ab.IsSubsetOf(a) || !ab.IsSubsetOf(b) || !a.IsSubsetOf(union) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetGet(b *testing.B) {
	s := New(4096)
	for i := 0; i < b.N; i++ {
		s.Set(i % 4096)
		_ = s.Get((i * 7) % 4096)
	}
}

func BenchmarkAnd(b *testing.B) {
	x := New(40000)
	y := New(40000)
	for i := 0; i < 40000; i += 3 {
		x.Set(i)
	}
	for i := 0; i < 40000; i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.And(y)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := FromIndices(0, 63, 64, 200)
	r := FromWords(s.Words())
	if !r.Equal(s) || r.Count() != 4 {
		t.Fatalf("round trip: %v vs %v", r, s)
	}
	// Trailing zero words are trimmed: growth history does not leak
	// into the serialized form.
	grown := FromIndices(1)
	grown.Set(500)
	grown.Clear(500)
	if len(grown.Words()) != 1 {
		t.Fatalf("want 1 word after trimming, got %d", len(grown.Words()))
	}
	if len(New(0).Words()) != 0 {
		t.Fatal("empty set should serialize to no words")
	}
	// FromWords copies: mutating the source slice must not alias.
	ws := []uint64{7}
	c := FromWords(ws)
	ws[0] = 0
	if c.Count() != 3 {
		t.Fatal("FromWords aliased its input")
	}
}
