package dataset

import (
	"testing"

	"gcplus/internal/graph"
)

func TestExportRestore(t *testing.T) {
	initial := []*graph.Graph{graph.Path(1, 2), graph.Path(2, 3), graph.Star(1, 2, 3)}
	d := New(initial)
	if _, err := d.Add(graph.Path(4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateAddEdge(0, 0, 1); err == nil {
		t.Fatal("duplicate edge accepted") // sanity: Path(1,2) already has {0,1}
	}
	if err := d.UpdateAddEdge(2, 1, 2); err != nil {
		t.Fatal(err)
	}

	snap := d.Export()
	r := Restore(snap)

	if r.Seq() != d.Seq() {
		t.Fatalf("seq %d != %d", r.Seq(), d.Seq())
	}
	if r.LiveCount() != d.LiveCount() || r.MaxID() != d.MaxID() {
		t.Fatalf("live=%d/%d max=%d/%d", r.LiveCount(), d.LiveCount(), r.MaxID(), d.MaxID())
	}
	for id := 0; id <= d.MaxID(); id++ {
		if (r.Graph(id) == nil) != (d.Graph(id) == nil) {
			t.Fatalf("graph %d liveness differs", id)
		}
		if r.Graph(id) != d.Graph(id) {
			t.Fatalf("graph %d not shared", id) // immutable values are shared, not copied
		}
	}

	// The restored log starts empty at the snapshot cursor...
	if recs := r.RecordsSince(snap.Seq); recs != nil {
		t.Fatalf("restored dataset has %d records past the snapshot", len(recs))
	}
	// ...continues numbering seamlessly...
	if err := r.Delete(0); err != nil {
		t.Fatal(err)
	}
	recs := r.RecordsSince(snap.Seq)
	if len(recs) != 1 || recs[0].Seq != snap.Seq+1 || recs[0].Op != OpDelete || recs[0].GraphID != 0 {
		t.Fatalf("post-restore records: %+v", recs)
	}
	// ...assigns the next id exactly like the original would...
	origID, err := d.Add(graph.Path(6))
	if err != nil {
		t.Fatal(err)
	}
	restID, err := r.Add(graph.Path(6))
	if err != nil {
		t.Fatal(err)
	}
	if origID != restID {
		t.Fatalf("post-restore ADD id %d, original %d", restID, origID)
	}
	// ...and refuses cursors below the retained base.
	defer func() {
		if recover() == nil {
			t.Fatal("RecordsSince below the log base did not panic")
		}
	}()
	r.RecordsSince(snap.Seq - 1)
}
