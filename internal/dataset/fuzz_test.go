package dataset

import "testing"

// FuzzParseOpType checks that ParseOpType accepts exactly the paper's
// four abbreviations and that accepted values round-trip through
// OpType.String.
func FuzzParseOpType(f *testing.F) {
	for _, s := range []string{"ADD", "DEL", "UA", "UR", "", "add", "ADD ", "DELETE", "U", "URR"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		op, err := ParseOpType(s)
		canonical := s == "ADD" || s == "DEL" || s == "UA" || s == "UR"
		if err != nil {
			if canonical {
				t.Fatalf("ParseOpType rejected canonical %q: %v", s, err)
			}
			return
		}
		if !canonical {
			t.Fatalf("ParseOpType accepted %q as %v", s, op)
		}
		if op.String() != s {
			t.Fatalf("round trip %q → %v → %q", s, op, op.String())
		}
		if again, err := ParseOpType(op.String()); err != nil || again != op {
			t.Fatalf("re-parse of %q: %v, %v", op.String(), again, err)
		}
	})
}
