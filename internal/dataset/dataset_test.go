package dataset

import (
	"math/rand"
	"sync"
	"testing"

	"gcplus/internal/graph"
)

func threeGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(1, 2),
		graph.Path(1, 2, 3),
		graph.Cycle(1, 2, 3),
	}
}

func TestNewAssignsDenseIDs(t *testing.T) {
	d := New(threeGraphs())
	if d.LiveCount() != 3 || d.MaxID() != 2 {
		t.Fatalf("LiveCount=%d MaxID=%d", d.LiveCount(), d.MaxID())
	}
	if d.Seq() != 0 {
		t.Fatal("initial load must not be logged")
	}
	for id := 0; id < 3; id++ {
		if d.Graph(id) == nil {
			t.Fatalf("graph %d missing", id)
		}
	}
	if d.Graph(3) != nil || d.Graph(-1) != nil {
		t.Fatal("out-of-range Graph should be nil")
	}
}

func TestEmptyDataset(t *testing.T) {
	d := New(nil)
	if d.MaxID() != -1 || d.LiveCount() != 0 {
		t.Fatal("empty dataset wrong")
	}
	id, err := d.Add(graph.Single(1))
	if err != nil || id != 0 {
		t.Fatalf("Add on empty: id=%d err=%v", id, err)
	}
}

func TestAddDeleteLifecycle(t *testing.T) {
	d := New(threeGraphs())
	id, err := d.Add(graph.Single(9))
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("new id = %d, want 3", id)
	}
	if err := d.Delete(0); err != nil {
		t.Fatal(err)
	}
	if d.Graph(0) != nil {
		t.Fatal("deleted graph still visible")
	}
	if err := d.Delete(0); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := d.Delete(99); err == nil {
		t.Fatal("delete out of range accepted")
	}
	// ids never reused
	id2, _ := d.Add(graph.Single(8))
	if id2 != 4 {
		t.Fatalf("id after delete = %d, want 4", id2)
	}
	live := d.LiveIDs()
	want := []int{1, 2, 3, 4}
	if len(live) != len(want) {
		t.Fatalf("LiveIDs = %v", live)
	}
	for i := range want {
		if live[i] != want[i] {
			t.Fatalf("LiveIDs = %v, want %v", live, want)
		}
	}
	if _, err := d.Add(nil); err == nil {
		t.Fatal("Add(nil) accepted")
	}
}

func TestUpdateEdges(t *testing.T) {
	d := New(threeGraphs())
	before := d.Graph(0) // path 0-1
	if err := d.UpdateAddEdge(0, 0, 1); err == nil {
		t.Fatal("adding existing edge accepted")
	}
	if err := d.UpdateRemoveEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Graph(0).NumEdges() != 0 {
		t.Fatal("UR did not remove edge")
	}
	if before.NumEdges() != 1 {
		t.Fatal("UR mutated the old snapshot (copy-on-write violated)")
	}
	if err := d.UpdateAddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Graph(0).NumEdges() != 1 {
		t.Fatal("UA did not add edge")
	}
	if err := d.UpdateAddEdge(5, 0, 1); err == nil {
		t.Fatal("UA on missing graph accepted")
	}
	if err := d.UpdateRemoveEdge(0, 0, 0); err == nil {
		t.Fatal("UR self loop accepted")
	}
	// updates on deleted graphs fail
	if err := d.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateAddEdge(1, 0, 1); err == nil {
		t.Fatal("UA on deleted graph accepted")
	}
}

func TestLogRecords(t *testing.T) {
	d := New(threeGraphs())
	if _, err := d.Add(graph.Single(4)); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateRemoveEdge(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateAddEdge(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if d.Seq() != 4 {
		t.Fatalf("Seq = %d, want 4", d.Seq())
	}
	all := d.RecordsSince(0)
	if len(all) != 4 {
		t.Fatalf("records = %d, want 4", len(all))
	}
	wantOps := []OpType{OpAdd, OpUpdateRemoveEdge, OpDelete, OpUpdateAddEdge}
	for i, r := range all {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %v, want %v", i, r.Op, wantOps[i])
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d", i, r.Seq)
		}
	}
	tail := d.RecordsSince(2)
	if len(tail) != 2 || tail[0].Op != OpDelete {
		t.Fatalf("RecordsSince(2) = %v", tail)
	}
	if got := d.RecordsSince(4); got != nil {
		t.Fatalf("RecordsSince(latest) = %v, want nil", got)
	}
	if got := d.RecordsSince(99); got != nil {
		t.Fatalf("RecordsSince(future) = %v, want nil", got)
	}
}

func TestOpTypeString(t *testing.T) {
	cases := map[OpType]string{
		OpAdd: "ADD", OpDelete: "DEL", OpUpdateAddEdge: "UA", OpUpdateRemoveEdge: "UR",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if OpType(42).String() == "" {
		t.Error("unknown op should still render")
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: OpUpdateAddEdge, GraphID: 3},
		{Seq: 2, Op: OpUpdateAddEdge, GraphID: 3},
		{Seq: 3, Op: OpUpdateRemoveEdge, GraphID: 5},
		{Seq: 4, Op: OpAdd, GraphID: 7},
		{Seq: 5, Op: OpDelete, GraphID: 2},
		{Seq: 6, Op: OpUpdateAddEdge, GraphID: 5},
	}
	c := Analyze(recs)
	if c.Empty() || c.Records != 6 {
		t.Fatalf("Records = %d", c.Records)
	}
	if c.Total[3] != 2 || c.UA[3] != 2 || c.UR[3] != 0 {
		t.Errorf("graph 3 counters wrong: %+v", c)
	}
	if !c.UAExclusive(3) {
		t.Error("graph 3 should be UA-exclusive")
	}
	if c.URExclusive(3) {
		t.Error("graph 3 is not UR-exclusive")
	}
	// graph 5 has UR then UA: neither exclusive
	if c.UAExclusive(5) || c.URExclusive(5) {
		t.Error("graph 5 mixed ops must not be exclusive")
	}
	// ADD/DEL count into Total only
	if c.Total[7] != 1 || c.UA[7] != 0 || c.UR[7] != 0 {
		t.Error("ADD must only bump CT")
	}
	if c.UAExclusive(7) || c.URExclusive(7) {
		t.Error("ADD-touched graph must not be UA/UR exclusive")
	}
	if c.UAExclusive(99) || c.URExclusive(99) {
		t.Error("untouched graph must not be exclusive")
	}
	ids := c.TouchedIDs()
	if len(ids) != 4 {
		t.Errorf("TouchedIDs = %v", ids)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	c := Analyze(nil)
	if !c.Empty() || len(c.TouchedIDs()) != 0 {
		t.Fatal("empty analysis wrong")
	}
}

func TestAnalyzeSince(t *testing.T) {
	d := New(threeGraphs())
	if err := d.UpdateAddEdge(0, 0, 1); err == nil {
		t.Fatal("edge exists; expected error")
	}
	if err := d.UpdateRemoveEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	mark := d.Seq()
	if err := d.UpdateAddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	c := d.AnalyzeSince(mark)
	if c.Records != 1 || c.UA[0] != 1 {
		t.Fatalf("AnalyzeSince wrong: %+v", c)
	}
	// failed operations must not be logged
	full := d.AnalyzeSince(0)
	if full.Records != 2 {
		t.Fatalf("full analysis Records = %d, want 2", full.Records)
	}
}

func TestComputeStats(t *testing.T) {
	d := New(threeGraphs()) // sizes: (2v,1e),(3v,2e),(3v,3e)
	s := d.ComputeStats()
	if s.Graphs != 3 || s.TotalV != 8 || s.TotalE != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxV != 3 || s.MaxE != 3 || s.LabelKinds != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if err := d.Delete(2); err != nil {
		t.Fatal(err)
	}
	s = d.ComputeStats()
	if s.Graphs != 2 || s.TotalE != 3 {
		t.Fatalf("stats after delete = %+v", s)
	}
}

func TestLiveSnapshotIsolation(t *testing.T) {
	d := New(threeGraphs())
	snap := d.LiveSnapshot()
	if err := d.Delete(1); err != nil {
		t.Fatal(err)
	}
	if !snap.Get(1) {
		t.Fatal("snapshot mutated by later delete")
	}
	snap.Clear(0)
	if !d.LiveSnapshot().Get(0) {
		t.Fatal("mutating snapshot affected dataset")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(threeGraphs())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				switch rng.Intn(4) {
				case 0:
					_, _ = d.Add(graph.Path(1, 2))
				case 1:
					ids := d.LiveIDs()
					if len(ids) > 1 {
						_ = d.Delete(ids[rng.Intn(len(ids))])
					}
				case 2:
					_ = d.Graph(rng.Intn(10))
					_ = d.LiveCount()
				case 3:
					_ = d.AnalyzeSince(0)
					_ = d.ComputeStats()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// log must be dense and ordered
	recs := d.RecordsSince(0)
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("log seq %d at index %d", r.Seq, i)
		}
	}
}
