package dataset

// This file implements the Log Analyzer component of the Dataset Manager
// subsystem — Algorithm 1 of the paper ("Analyzing Log for the CON
// Cache"). The analyzer categorizes the not-yet-reflected log records
// into three per-graph counters:
//
//	CT — total operations touching the graph,
//	CA — UA (edge addition) operations only,
//	CR — UR (edge removal) operations only.
//
// The Cache Validator (Algorithm 2, internal/cache) consumes the counter
// container: a graph whose operations are exclusively UA (CT == CA)
// preserves positive cached answers, one whose operations are exclusively
// UR (CT == CR) preserves negative ones; anything else invalidates.

// Counters is the counter container C of Algorithm 1.
type Counters struct {
	// Total is CT: graph id -> number of operations of any type.
	Total map[int]int
	// UA is CA: graph id -> number of edge-addition updates.
	UA map[int]int
	// UR is CR: graph id -> number of edge-removal updates.
	UR map[int]int
	// Records is the number of log records folded in.
	Records int
}

// NewCounters returns an empty counter container (Algorithm 1 line 4).
func NewCounters() *Counters {
	return &Counters{
		Total: make(map[int]int),
		UA:    make(map[int]int),
		UR:    make(map[int]int),
	}
}

// Analyze folds the incremental records into fresh counters
// (Algorithm 1 lines 5–17).
func Analyze(records []Record) *Counters {
	c := NewCounters()
	for _, r := range records {
		switch r.Op {
		case OpUpdateAddEdge:
			c.UA[r.GraphID]++
		case OpUpdateRemoveEdge:
			c.UR[r.GraphID]++
		}
		c.Total[r.GraphID]++
		c.Records++
	}
	return c
}

// AnalyzeSince runs the Log Analyzer over the dataset's records newer
// than the given sequence number.
func (d *Dataset) AnalyzeSince(after uint64) *Counters {
	return Analyze(d.RecordsSince(after))
}

// UAExclusive reports whether every operation on graph id was UA
// (the tc == uac test of Algorithm 2 line 12).
func (c *Counters) UAExclusive(id int) bool {
	return c.Total[id] > 0 && c.Total[id] == c.UA[id]
}

// URExclusive reports whether every operation on graph id was UR
// (the tc == urc test of Algorithm 2 line 14).
func (c *Counters) URExclusive(id int) bool {
	return c.Total[id] > 0 && c.Total[id] == c.UR[id]
}

// Empty reports whether no record was analyzed.
func (c *Counters) Empty() bool { return c.Records == 0 }

// TouchedIDs returns the ids of all graphs with at least one operation
// (the keyset iterated by Algorithm 2 line 7), in unspecified order.
func (c *Counters) TouchedIDs() []int {
	out := make([]int, 0, len(c.Total))
	for id := range c.Total {
		out = append(out, id)
	}
	return out
}
