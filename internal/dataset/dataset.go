// Package dataset implements GC+'s Dataset Manager subsystem (§4 of the
// paper): the store of dataset graphs, the four change operations the
// paper models — graph addition (ADD), graph deletion (DEL), graph update
// by edge addition (UA) and by edge removal (UR) — the dataset update log,
// and the Log Analyzer of Algorithm 1.
//
// Graph ids are dense integers assigned at insertion and never reused:
// in Figure 2 of the paper, after {G0..G3}, an ADD creates G4, and after
// DEL G0 the remaining ids stay {1,2,3,4}. Cached answer/validity bitsets
// are indexed by these ids, so id stability is what makes Algorithm 2's
// bit bookkeeping sound.
package dataset

import (
	"fmt"
	"sync"

	"gcplus/internal/bitset"
	"gcplus/internal/graph"
)

// OpType enumerates the paper's dataset change operations.
type OpType uint8

const (
	// OpAdd inserts a new dataset graph (paper: ADD).
	OpAdd OpType = iota
	// OpDelete removes a dataset graph (paper: DEL).
	OpDelete
	// OpUpdateAddEdge adds one edge to an existing graph (paper: UA).
	OpUpdateAddEdge
	// OpUpdateRemoveEdge removes one edge from an existing graph (paper: UR).
	OpUpdateRemoveEdge
)

// String returns the paper's abbreviation for the operation.
func (t OpType) String() string {
	switch t {
	case OpAdd:
		return "ADD"
	case OpDelete:
		return "DEL"
	case OpUpdateAddEdge:
		return "UA"
	case OpUpdateRemoveEdge:
		return "UR"
	}
	return fmt.Sprintf("OpType(%d)", uint8(t))
}

// ParseOpType converts the paper's abbreviation ("ADD", "DEL", "UA",
// "UR") back to an OpType; update APIs use it to decode wire requests.
func ParseOpType(s string) (OpType, error) {
	switch s {
	case "ADD":
		return OpAdd, nil
	case "DEL":
		return OpDelete, nil
	case "UA":
		return OpUpdateAddEdge, nil
	case "UR":
		return OpUpdateRemoveEdge, nil
	}
	return 0, fmt.Errorf("dataset: unknown op type %q (want ADD, DEL, UA or UR)", s)
}

// Record is one entry of the dataset update log.
type Record struct {
	// Seq is the 1-based log sequence number.
	Seq uint64
	// Op is the operation type.
	Op OpType
	// GraphID identifies the dataset graph operated on (for OpAdd, the id
	// assigned to the new graph).
	GraphID int
	// U, V are the edge endpoints for OpUpdateAddEdge/OpUpdateRemoveEdge.
	U, V int32
}

// Dataset is a mutable collection of labelled graphs with a change log.
// It is safe for concurrent use.
type Dataset struct {
	mu     sync.RWMutex
	graphs []*graph.Graph // id -> current version; nil after DEL
	live   *bitset.Set
	log    []Record
	seq    uint64
	// logBase is the sequence number the (possibly empty) log starts
	// after: record with Seq s sits at index s-1-logBase. It is 0 for a
	// fresh dataset and the snapshot's sequence number for a dataset
	// rebuilt by Restore, whose pre-snapshot history is not retained.
	logBase uint64
}

// New builds a dataset from the initial graphs, assigning ids 0..n-1.
// The initial load is not logged: the log records *changes* relative to
// the dataset the cache warmed against, exactly as in the paper's model.
func New(initial []*graph.Graph) *Dataset {
	d := &Dataset{
		graphs: make([]*graph.Graph, 0, len(initial)),
		live:   bitset.New(len(initial)),
	}
	for _, g := range initial {
		g.Summary() // warm the structural summary off the query path
		d.graphs = append(d.graphs, g)
		d.live.Set(len(d.graphs) - 1)
	}
	return d
}

// Add appends a new graph, returning its id (the paper's ADD).
func (d *Dataset) Add(g *graph.Graph) (int, error) {
	if g == nil {
		return 0, fmt.Errorf("dataset: cannot add nil graph")
	}
	g.Summary() // warm the structural summary off the query path
	d.mu.Lock()
	defer d.mu.Unlock()
	id := len(d.graphs)
	d.graphs = append(d.graphs, g)
	d.live.Set(id)
	d.seq++
	d.log = append(d.log, Record{Seq: d.seq, Op: OpAdd, GraphID: id})
	return id, nil
}

// Delete removes graph id (the paper's DEL).
func (d *Dataset) Delete(id int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLive(id); err != nil {
		return err
	}
	d.graphs[id] = nil
	d.live.Clear(id)
	d.seq++
	d.log = append(d.log, Record{Seq: d.seq, Op: OpDelete, GraphID: id})
	return nil
}

// UpdateAddEdge adds the edge {u,v} to graph id (the paper's UA).
func (d *Dataset) UpdateAddEdge(id int, u, v int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLive(id); err != nil {
		return err
	}
	g, err := d.graphs[id].WithEdge(u, v)
	if err != nil {
		return fmt.Errorf("dataset: UA on graph %d: %w", id, err)
	}
	g.Summary() // the updated version is a fresh graph; warm its summary
	d.graphs[id] = g
	d.seq++
	d.log = append(d.log, Record{Seq: d.seq, Op: OpUpdateAddEdge, GraphID: id, U: int32(u), V: int32(v)})
	return nil
}

// UpdateRemoveEdge removes the edge {u,v} from graph id (the paper's UR).
func (d *Dataset) UpdateRemoveEdge(id int, u, v int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLive(id); err != nil {
		return err
	}
	g, err := d.graphs[id].WithoutEdge(u, v)
	if err != nil {
		return fmt.Errorf("dataset: UR on graph %d: %w", id, err)
	}
	g.Summary() // the updated version is a fresh graph; warm its summary
	d.graphs[id] = g
	d.seq++
	d.log = append(d.log, Record{Seq: d.seq, Op: OpUpdateRemoveEdge, GraphID: id, U: int32(u), V: int32(v)})
	return nil
}

func (d *Dataset) checkLive(id int) error {
	if id < 0 || id >= len(d.graphs) {
		return fmt.Errorf("dataset: graph id %d out of range [0,%d)", id, len(d.graphs))
	}
	if d.graphs[id] == nil {
		return fmt.Errorf("dataset: graph %d is deleted", id)
	}
	return nil
}

// Graph returns the current version of graph id, or nil if it was deleted
// or never existed.
func (d *Dataset) Graph(id int) *graph.Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.graphs) {
		return nil
	}
	return d.graphs[id]
}

// LiveSnapshot returns a copy of the set of live graph ids — the
// state-of-the-art dataset, which doubles as Method M's candidate set
// CS_M(g) when GC+ fronts a pure SI method.
func (d *Dataset) LiveSnapshot() *bitset.Set {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.live.Clone()
}

// LiveIDs returns the live graph ids in ascending order.
func (d *Dataset) LiveIDs() []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.live.Indices()
}

// LiveCount returns the number of live graphs.
func (d *Dataset) LiveCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.live.Count()
}

// MaxID returns the maximum graph id ever assigned, or -1 for an empty
// dataset. Algorithm 2 uses it to extend validity indicators.
func (d *Dataset) MaxID() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.graphs) - 1
}

// Seq returns the sequence number of the latest log record (0 if none).
func (d *Dataset) Seq() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seq
}

// RecordsSince returns a copy of all log records with Seq > after, i.e.
// the "incremental records R extracted from L" of Algorithm 1 line 5.
// after must not precede the log's base (the snapshot sequence number
// for a Restored dataset): records before the base are gone, so such a
// call could not be answered soundly and panics instead of silently
// dropping history.
func (d *Dataset) RecordsSince(after uint64) []Record {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if after >= d.seq {
		return nil
	}
	if after < d.logBase {
		panic(fmt.Sprintf("dataset: RecordsSince(%d) precedes the retained log (base %d)", after, d.logBase))
	}
	// Seq is 1-based and dense above the base: record with Seq s sits at
	// index s-1-logBase.
	recs := d.log[after-d.logBase:]
	out := make([]Record, len(recs))
	copy(out, recs)
	return out
}

// Snapshot is an exported point-in-time dataset state: the full id →
// graph table (nil marking deleted ids, so id stability survives a
// restart) and the log sequence number it reflects. Graphs are shared,
// not copied — graph values are immutable once published.
type Snapshot struct {
	// Graphs is indexed by graph id; nil entries are deleted ids.
	Graphs []*graph.Graph
	// Seq is the log sequence number the table reflects.
	Seq uint64
}

// Export snapshots the dataset state. The update log itself is not
// exported: callers snapshot at a reconciliation point (cache
// AppliedSeq == Seq), after which the log's only consumers are future
// records.
func (d *Dataset) Export() *Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := &Snapshot{Graphs: make([]*graph.Graph, len(d.graphs)), Seq: d.seq}
	copy(s.Graphs, d.graphs)
	return s
}

// Restore rebuilds a dataset from an exported snapshot. The restored
// dataset continues sequence numbering at s.Seq with an empty log
// (RecordsSince can answer any cursor ≥ s.Seq, which is where a
// restored cache's AppliedSeq starts), and ids beyond the snapshot are
// assigned exactly as the original would have.
func Restore(s *Snapshot) *Dataset {
	d := &Dataset{
		graphs:  make([]*graph.Graph, len(s.Graphs)),
		live:    bitset.New(len(s.Graphs)),
		seq:     s.Seq,
		logBase: s.Seq,
	}
	copy(d.graphs, s.Graphs)
	for id, g := range d.graphs {
		if g != nil {
			g.Summary() // warm the structural summary off the query path
			d.live.Set(id)
		}
	}
	return d
}

// Stats summarizes the live part of the dataset; the benchmark reports use
// it to document generated datasets next to the AIDS statistics the paper
// quotes (≈45 vertices avg, ≈47 edges avg).
type Stats struct {
	Graphs      int
	MeanV       float64
	MeanE       float64
	MaxV        int
	MaxE        int
	LabelKinds  int
	TotalV      int
	TotalE      int
	MeanDegrees float64
}

// ComputeStats scans the live graphs.
func (d *Dataset) ComputeStats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var s Stats
	labels := map[graph.Label]struct{}{}
	d.live.ForEach(func(id int) bool {
		g := d.graphs[id]
		s.Graphs++
		s.TotalV += g.NumVertices()
		s.TotalE += g.NumEdges()
		if g.NumVertices() > s.MaxV {
			s.MaxV = g.NumVertices()
		}
		if g.NumEdges() > s.MaxE {
			s.MaxE = g.NumEdges()
		}
		for _, l := range g.Labels() {
			labels[l] = struct{}{}
		}
		return true
	})
	s.LabelKinds = len(labels)
	if s.Graphs > 0 {
		s.MeanV = float64(s.TotalV) / float64(s.Graphs)
		s.MeanE = float64(s.TotalE) / float64(s.Graphs)
	}
	if s.TotalV > 0 {
		s.MeanDegrees = 2 * float64(s.TotalE) / float64(s.TotalV)
	}
	return s
}
