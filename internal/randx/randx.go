// Package randx provides the deterministic random samplers used by the
// GC+ evaluation: seeded uniform sources and the rank-based Zipf sampler
// from §7.1 of the paper (p(x) = x^(-α)/ζ(α), default α = 1.4).
//
// Every generator in this repository takes an explicit *rand.Rand so that
// whole experiments are reproducible from a single seed.
package randx

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// New returns a seeded *rand.Rand. It exists so callers never reach for
// the global source by accident.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf samples ranks in [0, n) with P(rank k) ∝ (k+1)^(-α). Unlike
// math/rand's Zipf it allows 0 < α ≤ 1 as well and its parameterization
// matches the paper's directly (probability density x^(-α)/ζ(α) truncated
// to n items and renormalized).
type Zipf struct {
	cum   []float64 // cumulative probabilities, cum[n-1] == 1
	alpha float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("randx: Zipf needs n > 0, got %d", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("randx: Zipf needs alpha > 0, got %g", alpha)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -alpha)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1 // guard against floating point slack
	return &Zipf{cum: cum, alpha: alpha}, nil
}

// MustZipf is NewZipf that panics on error.
func MustZipf(n int, alpha float64) *Zipf {
	z, err := NewZipf(n, alpha)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Alpha returns the exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Prob returns the probability of rank k.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cum) {
		return 0
	}
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}

// Shuffle permutes xs deterministically under rng.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Choice returns a uniformly chosen element of xs; it panics on empty xs.
func Choice[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}
