package randx

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1.4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("alpha<0 accepted")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := MustZipf(100, 1.4)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z := MustZipf(50, 1.4)
	for k := 1; k < z.N(); k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-12 {
			t.Fatalf("Prob(%d)=%g > Prob(%d)=%g", k, z.Prob(k), k-1, z.Prob(k-1))
		}
	}
}

func TestZipfRatioMatchesPowerLaw(t *testing.T) {
	alpha := 1.4
	z := MustZipf(1000, alpha)
	// P(1)/P(2) should be 2^alpha.
	got := z.Prob(0) / z.Prob(1)
	want := math.Pow(2, alpha)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("P(1)/P(2) = %g, want %g", got, want)
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	rng := New(42)
	z := MustZipf(20, 1.4)
	counts := make([]int, z.N())
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= z.N() {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	for k := 0; k < 5; k++ {
		emp := float64(counts[k]) / draws
		want := z.Prob(k)
		if math.Abs(emp-want) > 0.01 {
			t.Errorf("rank %d: empirical %g, want %g", k, emp, want)
		}
	}
	// skew check: rank 0 should dominate
	if counts[0] <= counts[1] || counts[1] <= counts[5] {
		t.Error("distribution not skewed as expected")
	}
}

func TestZipfSingleRank(t *testing.T) {
	z := MustZipf(1, 2.0)
	rng := New(1)
	for i := 0; i < 10; i++ {
		if z.Sample(rng) != 0 {
			t.Fatal("single-rank Zipf must always return 0")
		}
	}
}

func TestDeterminism(t *testing.T) {
	z := MustZipf(100, 1.4)
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if z.Sample(a) != z.Sample(b) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestShuffleAndChoice(t *testing.T) {
	rng := New(3)
	xs := []int{1, 2, 3, 4, 5}
	orig := append([]int(nil), xs...)
	Shuffle(rng, xs)
	if len(xs) != 5 {
		t.Fatal("shuffle changed length")
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v vs %v", xs, orig)
	}
	c := Choice(rng, xs)
	found := false
	for _, x := range xs {
		if x == c {
			found = true
		}
	}
	if !found {
		t.Fatal("choice returned foreign element")
	}
}

func TestMustZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustZipf should panic on bad input")
		}
	}()
	MustZipf(0, 1)
}
