// Package synthetic generates AIDS-like molecule datasets.
//
// The paper evaluates GC+ on the NCI AIDS Antiviral Screen dataset:
// 40,000 labelled graphs averaging ≈45 vertices (σ=22, max 245) and ≈47
// edges (σ=23, max 250), with ~62 atom-type labels whose frequencies are
// heavily skewed (carbon dominates, then oxygen and nitrogen). The
// dataset itself is not redistributable here, so this package synthesizes
// graphs reproducing the properties GC+'s behaviour actually depends on:
//
//   - the vertex-count distribution (clipped normal with the published
//     mean/σ/max), which drives sub-iso cost variance and thus the PINC
//     cost model and Figure 6's absolute times;
//   - sparsity: |E| ≈ 1.05·|V| with a molecule-like degree cap (valence),
//     keeping graphs connected, mostly tree-like with a few rings;
//   - the skewed label distribution (Zipf), which makes label-based
//     filters selective — the property underlying both the feature
//     prefilter and Method M's pruning rules.
//
// DESIGN.md §3 documents this substitution; the generator's moments are
// reported next to AIDS's in EXPERIMENTS.md.
package synthetic

import (
	"fmt"
	"math"
	"math/rand"

	"gcplus/internal/graph"
	"gcplus/internal/randx"
)

// Config parameterizes the generator. The zero value is not valid; start
// from Default().
//
// Graphs are assembled from a library of recurring *motifs* (small
// connected fragments standing in for rings, chains and functional
// groups). Motif recurrence is what gives real molecule datasets their
// cache-friendliness: queries extracted from different graphs still
// contain one another because they cover the same fragments. A generator
// without shared motifs yields structurally idiosyncratic graphs and
// starves GC+ of subgraph/supergraph hits — unlike AIDS.
type Config struct {
	// NumGraphs is the dataset size (paper: 40,000).
	NumGraphs int
	// MeanVertices and StdVertices shape the clipped-normal vertex-count
	// distribution (paper: 45 and 22).
	MeanVertices float64
	StdVertices  float64
	// MinVertices and MaxVertices clip the distribution (4 and 245).
	MinVertices int
	MaxVertices int
	// EdgeFactor targets |E| ≈ EdgeFactor·|V| (AIDS: 47/45 ≈ 1.045).
	EdgeFactor float64
	// MaxDegree caps vertex degree, mimicking atom valence (default 4).
	MaxDegree int
	// NumLabels is the alphabet size (AIDS: 62 atom types).
	NumLabels int
	// LabelAlpha is the Zipf exponent of the label distribution; the
	// default 2.5 makes the top label cover ≈75% of vertices, matching
	// AIDS's carbon dominance. Selectivity then comes from structure
	// (ring sizes, branching, rarer hetero-labels), as in AIDS.
	LabelAlpha float64
	// MotifCount is the size of the shared fragment library (0 disables
	// motif structure and falls back to purely random assembly).
	MotifCount int
	// MotifMinVertices and MotifMaxVertices bound fragment sizes.
	MotifMinVertices int
	MotifMaxVertices int
	// MotifAlpha is the Zipf exponent of motif popularity: a few
	// fragments (benzene-like) appear in most graphs.
	MotifAlpha float64
	// Seed drives the generator deterministically.
	Seed int64
}

// Default returns the AIDS-calibrated configuration at full paper scale.
// Benchmarks typically shrink NumGraphs while keeping the per-graph
// parameters (see the bench package's scaled configs).
func Default() Config {
	return Config{
		NumGraphs:        40000,
		MeanVertices:     45,
		StdVertices:      22,
		MinVertices:      4,
		MaxVertices:      245,
		EdgeFactor:       1.045,
		MaxDegree:        4,
		NumLabels:        62,
		LabelAlpha:       2.5,
		MotifCount:       16,
		MotifMinVertices: 3,
		MotifMaxVertices: 10,
		MotifAlpha:       1.4,
		Seed:             1,
	}
}

// WithGraphs returns a copy of the config scaled to n graphs.
func (c Config) WithGraphs(n int) Config {
	c.NumGraphs = n
	return c
}

func (c Config) validate() error {
	if c.NumGraphs <= 0 {
		return fmt.Errorf("synthetic: NumGraphs must be positive, got %d", c.NumGraphs)
	}
	if c.MinVertices < 1 || c.MaxVertices < c.MinVertices {
		return fmt.Errorf("synthetic: bad vertex bounds [%d,%d]", c.MinVertices, c.MaxVertices)
	}
	if c.NumLabels <= 0 {
		return fmt.Errorf("synthetic: NumLabels must be positive, got %d", c.NumLabels)
	}
	if c.MaxDegree < 2 {
		return fmt.Errorf("synthetic: MaxDegree must be ≥ 2, got %d", c.MaxDegree)
	}
	if c.EdgeFactor < 1.0-1e-9 {
		return fmt.Errorf("synthetic: EdgeFactor must be ≥ 1 for connected graphs, got %g", c.EdgeFactor)
	}
	if c.MotifCount > 0 {
		if c.MotifMinVertices < 2 || c.MotifMaxVertices < c.MotifMinVertices {
			return fmt.Errorf("synthetic: bad motif size bounds [%d,%d]", c.MotifMinVertices, c.MotifMaxVertices)
		}
		if c.MotifAlpha <= 0 {
			return fmt.Errorf("synthetic: MotifAlpha must be positive, got %g", c.MotifAlpha)
		}
	}
	return nil
}

// Generate produces the dataset. The same config always yields the same
// graphs.
func Generate(cfg Config) ([]*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	labelDist := randx.MustZipf(cfg.NumLabels, cfg.LabelAlpha)
	lib := buildMotifLibrary(rng, labelDist, cfg)
	out := make([]*graph.Graph, cfg.NumGraphs)
	for i := range out {
		n := clampedNormal(rng, cfg.MeanVertices, cfg.StdVertices, cfg.MinVertices, cfg.MaxVertices)
		var g *graph.Graph
		if lib != nil {
			g = assembleFromMotifs(rng, lib, labelDist, n, cfg)
		} else {
			g = generateOne(rng, labelDist, n, cfg)
		}
		g.SetName(fmt.Sprintf("G%d", i))
		out[i] = g
	}
	return out, nil
}

// motif is one library fragment: labels plus internal edges.
type motif struct {
	labels []graph.Label
	edges  [][2]int
}

// motifLibrary pairs fragments with their Zipf popularity sampler.
type motifLibrary struct {
	motifs []motif
	pop    *randx.Zipf
}

// buildMotifLibrary creates the shared fragment library: small connected
// degree-capped graphs (paths, rings and branched rings) with labels from
// the dataset's label distribution.
func buildMotifLibrary(rng *rand.Rand, labels *randx.Zipf, cfg Config) *motifLibrary {
	if cfg.MotifCount <= 0 {
		return nil
	}
	lib := &motifLibrary{
		motifs: make([]motif, cfg.MotifCount),
		pop:    randx.MustZipf(cfg.MotifCount, cfg.MotifAlpha),
	}
	span := cfg.MotifMaxVertices - cfg.MotifMinVertices + 1
	for i := range lib.motifs {
		n := cfg.MotifMinVertices + rng.Intn(span)
		m := motif{labels: make([]graph.Label, n)}
		for v := range m.labels {
			m.labels[v] = graph.Label(labels.Sample(rng))
		}
		// backbone path
		for v := 1; v < n; v++ {
			m.edges = append(m.edges, [2]int{v - 1, v})
		}
		// close some motifs into rings (benzene-like) and branch a few;
		// the probabilities are tuned so assembled graphs land at the
		// AIDS edge ratio |E| ≈ 1.045·|V| without a trimming pass.
		if n >= 3 && rng.Float64() < 0.4 {
			m.edges = append(m.edges, [2]int{n - 1, 0})
		}
		if n >= 5 && rng.Float64() < 0.1 {
			m.edges = append(m.edges, [2]int{0, n / 2})
		}
		lib.motifs[i] = m
	}
	return lib
}

// assembleFromMotifs builds one dataset graph by chaining Zipf-popular
// motifs with single linker edges until the vertex target is reached,
// then adds a few ring-closing extras, all under the degree cap.
func assembleFromMotifs(rng *rand.Rand, lib *motifLibrary, labels *randx.Zipf, n int, cfg Config) *graph.Graph {
	b := graph.NewBuilder()
	deg := make([]int, 0, n+cfg.MotifMaxVertices)
	var edges []pair
	addEdge := func(u, v int) bool {
		if u == v || deg[u] >= cfg.MaxDegree || deg[v] >= cfg.MaxDegree {
			return false
		}
		edges = append(edges, pair{u, v})
		deg[u]++
		deg[v]++
		return true
	}
	prevBase := -1
	for b.NumVertices() < n {
		m := lib.motifs[lib.pop.Sample(rng)]
		base := b.NumVertices()
		for _, l := range m.labels {
			// Occasional label substitution per instance: recurring
			// skeletons with sporadic hetero-atoms, which is what gives
			// AIDS both its query repeats and its rare-label selectivity.
			if rng.Float64() < 0.08 {
				l = graph.Label(labels.Sample(rng))
			}
			b.AddVertex(l)
			deg = append(deg, 0)
		}
		for _, e := range m.edges {
			addEdge(base+e[0], base+e[1])
		}
		if prevBase >= 0 {
			// Linker edge between the previous fragment and this one,
			// from any two endpoints with spare degree. The degree cap
			// (≥2) and the fragments' path/ring shapes (max internal
			// degree 3) guarantee spare endpoints exist.
			linked := false
			for tries := 0; tries < 8 && !linked; tries++ {
				linked = addEdge(prevBase+rng.Intn(base-prevBase), base+rng.Intn(len(m.labels)))
			}
			for u := prevBase; u < base && !linked; u++ {
				for v := base; v < b.NumVertices() && !linked; v++ {
					linked = addEdge(u, v)
				}
			}
		}
		prevBase = base
	}
	// occasional cross-fragment ring closure up to the edge target
	nv := b.NumVertices()
	target := int(math.Round(cfg.EdgeFactor * float64(nv)))
	for tries := 0; len(edges) < target && tries < 10*nv; tries++ {
		u := rng.Intn(nv)
		v := rng.Intn(nv)
		if u != v && !hasEdge(edges, u, v) {
			addEdge(u, v)
		}
	}
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.MustBuild()
}

// pair is an endpoint pair used during assembly.
type pair struct{ u, v int }

func hasEdge(edges []pair, u, v int) bool {
	for _, e := range edges {
		if (e.u == u && e.v == v) || (e.u == v && e.v == u) {
			return true
		}
	}
	return false
}

// MustGenerate is Generate that panics on config errors.
func MustGenerate(cfg Config) []*graph.Graph {
	gs, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return gs
}

func clampedNormal(rng *rand.Rand, mean, std float64, lo, hi int) int {
	n := int(math.Round(mean + std*rng.NormFloat64()))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// generateOne builds one connected molecule-like graph: a degree-capped
// random spanning tree (attaching each new vertex near the frontier,
// which yields chain- and branch-like shapes instead of stars) plus
// ring-closing extra edges up to the edge target.
func generateOne(rng *rand.Rand, labels *randx.Zipf, n int, cfg Config) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(labels.Sample(rng)))
	}
	deg := make([]int, n)
	type edge struct{ u, v int }
	var edges []edge
	present := make(map[[2]int]bool, n*2)
	addEdge := func(u, v int) bool {
		if u == v || deg[u] >= cfg.MaxDegree || deg[v] >= cfg.MaxDegree {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if present[key] {
			return false
		}
		present[key] = true
		edges = append(edges, edge{u, v})
		deg[u]++
		deg[v]++
		return true
	}

	// Spanning tree: attach vertex i to a vertex drawn from a recency-
	// biased window of the already attached prefix, so long chains with
	// branches emerge (molecule skeletons) rather than hubs.
	for i := 1; i < n; i++ {
		attached := false
		for tries := 0; tries < 8 && !attached; tries++ {
			lo := i - 1 - rng.Intn(min(i, 6))
			if lo < 0 {
				lo = 0
			}
			attached = addEdge(i, lo+rng.Intn(i-lo))
		}
		for j := i - 1; j >= 0 && !attached; j-- {
			attached = addEdge(i, j) // fall back to any degree-feasible vertex
		}
		if !attached {
			// All earlier vertices saturated (only possible for tiny
			// MaxDegree); relax the cap for this one edge to preserve
			// connectivity.
			deg[i-1] = 0
			addEdge(i, i-1)
			deg[i-1] = cfg.MaxDegree
		}
	}

	// Ring-closing extras up to the edge target.
	target := int(math.Round(cfg.EdgeFactor * float64(n)))
	if max := n * (n - 1) / 2; target > max {
		target = max
	}
	for tries := 0; len(edges) < target && tries < 20*n; tries++ {
		u := rng.Intn(n)
		// prefer short rings: candidates within a small index window
		v := u + 2 + rng.Intn(5)
		if v >= n {
			v = rng.Intn(n)
		}
		addEdge(u, v)
	}

	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.MustBuild()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
