package synthetic

import (
	"math"
	"testing"

	"gcplus/internal/graph"
	"gcplus/internal/stats"
)

func smallConfig() Config {
	c := Default()
	c.NumGraphs = 400
	return c
}

func TestValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.NumGraphs = 0 },
		func(c *Config) { c.MinVertices = 0 },
		func(c *Config) { c.MaxVertices = c.MinVertices - 1 },
		func(c *Config) { c.NumLabels = 0 },
		func(c *Config) { c.MaxDegree = 1 },
		func(c *Config) { c.EdgeFactor = 0.5 },
	}
	for i, mutate := range bad {
		c := smallConfig()
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := smallConfig()
	gs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != cfg.NumGraphs {
		t.Fatalf("generated %d graphs", len(gs))
	}
	for i, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatalf("graph %d invalid: %v", i, err)
		}
		if !g.Connected() {
			t.Fatalf("graph %d disconnected", i)
		}
		if g.NumVertices() < cfg.MinVertices || g.NumVertices() > cfg.MaxVertices {
			t.Fatalf("graph %d has %d vertices", i, g.NumVertices())
		}
		if g.MaxDegree() > cfg.MaxDegree {
			t.Fatalf("graph %d exceeds degree cap: %d", i, g.MaxDegree())
		}
		if g.Name() == "" {
			t.Fatalf("graph %d unnamed", i)
		}
	}
}

func TestMomentsMatchAIDS(t *testing.T) {
	cfg := Default()
	cfg.NumGraphs = 3000
	gs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var vs, es stats.Running
	for _, g := range gs {
		vs.Add(float64(g.NumVertices()))
		es.Add(float64(g.NumEdges()))
	}
	// Published AIDS: |V| mean 45 σ 22, |E| mean 47 σ 23. Clipping at 4
	// shifts the sample mean slightly upward; allow a loose band.
	if vs.Mean() < 40 || vs.Mean() > 52 {
		t.Errorf("mean |V| = %.1f, want ≈45", vs.Mean())
	}
	if vs.Std() < 16 || vs.Std() > 26 {
		t.Errorf("σ|V| = %.1f, want ≈22", vs.Std())
	}
	ratio := es.Mean() / vs.Mean()
	if math.Abs(ratio-cfg.EdgeFactor) > 0.08 {
		t.Errorf("|E|/|V| = %.3f, want ≈%.3f", ratio, cfg.EdgeFactor)
	}
}

func TestLabelSkew(t *testing.T) {
	cfg := smallConfig()
	gs := MustGenerate(cfg)
	counts := map[graph.Label]int{}
	total := 0
	for _, g := range gs {
		for _, l := range g.Labels() {
			counts[l]++
			total++
		}
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	share := float64(top) / float64(total)
	// carbon-like dominance without drowning selectivity (§3 of
	// DESIGN.md): the top label covers a large plurality
	if share < 0.25 || share > 0.8 {
		t.Errorf("top label share = %.2f, want 0.25–0.8", share)
	}
	if len(counts) < 10 {
		t.Errorf("only %d distinct labels in sample", len(counts))
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(smallConfig())
	b := MustGenerate(smallConfig())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].NumVertices() != b[i].NumVertices() || a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("graph %d differs across runs", i)
		}
		for v := 0; v < a[i].NumVertices(); v++ {
			if a[i].Label(v) != b[i].Label(v) {
				t.Fatalf("graph %d label %d differs", i, v)
			}
		}
	}
	c := smallConfig()
	c.Seed = 999
	other := MustGenerate(c)
	same := true
	for i := range a {
		if a[i].NumVertices() != other[i].NumVertices() || a[i].NumEdges() != other[i].NumEdges() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestWithGraphs(t *testing.T) {
	c := Default().WithGraphs(7)
	if c.NumGraphs != 7 {
		t.Fatal("WithGraphs failed")
	}
	if len(MustGenerate(c)) != 7 {
		t.Fatal("scaled generation failed")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(Config{})
}
