package subiso

import "gcplus/internal/graph"

// VF2 is the vanilla VF2 algorithm (Cordella, Foggia, Sansone, Vento,
// IEEE TPAMI 2004) specialized to the non-induced subgraph isomorphism
// decision problem. The pattern is visited in a connectivity-preserving
// order seeded by vertex index; feasibility combines the core adjacency
// rule with the label and degree checks. It is deliberately the least
// aggressive of the three Method M implementations, mirroring its role in
// the paper's evaluation ("vanilla VF2 ... extensively used in FTV
// methods").
type VF2 struct{}

// Name implements Algorithm.
func (VF2) Name() string { return "VF2" }

// Contains implements Algorithm via a one-shot compile of the pattern;
// callers testing one pattern against many targets should CompileSub once
// and reuse the Matcher instead.
func (VF2) Contains(pattern, target *graph.Graph) bool {
	return CompileSub(pattern, VF2{}).Contains(target)
}

// legacyVF2Contains is the original per-call implementation, kept as an
// independent reference for the compiled engine's property tests and as
// the BenchmarkVerifyLegacy baseline.
func legacyVF2Contains(pattern, target *graph.Graph) bool {
	if pattern.NumVertices() == 0 {
		return true
	}
	if quickReject(pattern, target) {
		return false
	}
	s := newVF2State(pattern, target, connectedOrder(pattern, func(a, b int) bool { return a < b }), false)
	return s.match(0)
}

// vf2State is the shared search engine for VF2 and VF2+. The two differ in
// visit order and in whether the neighbourhood look-ahead cuts are applied.
type vf2State struct {
	p, t      *graph.Graph
	order     []int
	anchor    []int
	core      []int  // pattern vertex -> target vertex or -1
	used      []bool // target vertex already an image
	lookahead bool   // VF2+ extra cutting rules
	// capture, when non-nil, receives a copy of the first full mapping.
	capture *[]int
	// countAll, when true, explores the full tree and tallies embeddings.
	countAll bool
	found    int64
	limit    int64 // stop counting at limit when countAll (0 = no limit)
}

func newVF2State(p, t *graph.Graph, order []int, lookahead bool) *vf2State {
	s := &vf2State{
		p:         p,
		t:         t,
		order:     order,
		anchor:    anchorFor(p, order),
		core:      make([]int, p.NumVertices()),
		used:      make([]bool, t.NumVertices()),
		lookahead: lookahead,
	}
	for i := range s.core {
		s.core[i] = -1
	}
	return s
}

// match explores depth d of the search tree; it returns true as soon as a
// full mapping exists (unless countAll is set, in which case it always
// returns false and accumulates s.found).
func (s *vf2State) match(d int) bool {
	if d == len(s.order) {
		if s.capture != nil && *s.capture == nil {
			m := make([]int, len(s.core))
			copy(m, s.core)
			*s.capture = m
		}
		if s.countAll {
			s.found++
			return s.limit > 0 && s.found >= s.limit
		}
		return true
	}
	pv := s.order[d]
	if a := s.anchor[d]; a >= 0 {
		// Candidates are neighbours of the image of the anchor vertex.
		tAnchor := s.core[s.order[a]]
		for _, tv := range s.t.Neighbors(tAnchor) {
			if s.feasible(pv, int(tv)) && s.extend(d, pv, int(tv)) {
				return true
			}
		}
		return false
	}
	// pv starts a new pattern component: try every target vertex.
	for tv := 0; tv < s.t.NumVertices(); tv++ {
		if s.feasible(pv, tv) && s.extend(d, pv, tv) {
			return true
		}
	}
	return false
}

func (s *vf2State) extend(d, pv, tv int) bool {
	s.core[pv] = tv
	s.used[tv] = true
	ok := s.match(d + 1)
	s.core[pv] = -1
	s.used[tv] = false
	return ok
}

// feasible applies the monomorphism feasibility rules for the candidate
// pair (pv, tv).
func (s *vf2State) feasible(pv, tv int) bool {
	if s.used[tv] || s.p.Label(pv) != s.t.Label(tv) {
		return false
	}
	if s.p.Degree(pv) > s.t.Degree(tv) {
		return false
	}
	// Core rule: every already-mapped neighbour of pv must map to a
	// neighbour of tv. (Non-induced: the converse is not required.)
	for _, pn := range s.p.Neighbors(pv) {
		if m := s.core[pn]; m >= 0 && !s.t.HasEdge(m, tv) {
			return false
		}
	}
	if s.lookahead {
		// 1-look-ahead, monomorphism-safe direction only: the unmapped
		// neighbours of pv must fit injectively into the unused
		// neighbours of tv.
		pFree := 0
		for _, pn := range s.p.Neighbors(pv) {
			if s.core[pn] < 0 {
				pFree++
			}
		}
		tFree := 0
		for _, tn := range s.t.Neighbors(tv) {
			if !s.used[tn] {
				tFree++
			}
		}
		if pFree > tFree {
			return false
		}
	}
	return true
}
