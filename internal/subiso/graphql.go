package subiso

import "gcplus/internal/graph"

// GraphQL implements the subgraph-matching algorithm of He & Singh
// (SIGMOD 2008), the strongest of the paper's three Method M choices. It
// prunes candidate sets in three stages before searching:
//
//  1. local pruning: candidates must match the label, dominate the degree
//     and contain the vertex's neighbourhood label profile;
//  2. global iterative refinement ("pseudo subgraph isomorphism"): a
//     candidate v for u survives only if the neighbours of u can be
//     injectively matched to distinct neighbours of v that are themselves
//     candidates — a bipartite matching test, iterated to (bounded)
//     fixpoint;
//  3. search-order optimization: vertices are matched in ascending order
//     of candidate-set size, preferring vertices adjacent to the already
//     matched ones.
type GraphQL struct {
	// RefineLevels bounds the number of global-refinement sweeps; the
	// zero value means DefaultRefineLevels. He & Singh observe little
	// gain beyond 2–3 levels.
	RefineLevels int
}

// DefaultRefineLevels is the global-refinement sweep bound used when
// GraphQL.RefineLevels is zero.
const DefaultRefineLevels = 2

// Name implements Algorithm.
func (GraphQL) Name() string { return "GQL" }

// Contains implements Algorithm via a one-shot compile of the pattern;
// callers testing one pattern against many targets should CompileSub once
// and reuse the Matcher instead.
func (a GraphQL) Contains(pattern, target *graph.Graph) bool {
	return CompileSub(pattern, a).Contains(target)
}

// legacyGQLContains is the original per-call implementation, kept as an
// independent reference for the compiled engine's property tests and as
// the BenchmarkVerifyLegacy baseline.
func legacyGQLContains(a GraphQL, pattern, target *graph.Graph) bool {
	if pattern.NumVertices() == 0 {
		return true
	}
	if quickReject(pattern, target) {
		return false
	}
	np, nt := pattern.NumVertices(), target.NumVertices()

	// Stage 1: local pruning.
	cand := make([][]int32, np) // sorted candidate lists
	inCand := make([][]bool, np)
	profiles := make([][]graph.Label, nt)
	for u := 0; u < np; u++ {
		pu := neighborProfile(pattern, u)
		inCand[u] = make([]bool, nt)
		for v := 0; v < nt; v++ {
			if pattern.Label(u) != target.Label(v) || pattern.Degree(u) > target.Degree(v) {
				continue
			}
			if profiles[v] == nil {
				profiles[v] = neighborProfile(target, v)
			}
			if !profileContains(pu, profiles[v]) {
				continue
			}
			cand[u] = append(cand[u], int32(v))
			inCand[u][v] = true
		}
		if len(cand[u]) == 0 {
			return false
		}
	}

	// Stage 2: global refinement via bipartite matching.
	levels := a.RefineLevels
	if levels <= 0 {
		levels = DefaultRefineLevels
	}
	match := newBipartiteMatcher(nt)
	for level := 0; level < levels; level++ {
		changed := false
		for u := 0; u < np; u++ {
			pn := pattern.Neighbors(u)
			if len(pn) == 0 {
				continue
			}
			kept := cand[u][:0]
			for _, v := range cand[u] {
				if match.semiPerfect(pn, target.Neighbors(int(v)), inCand) {
					kept = append(kept, v)
				} else {
					inCand[u][v] = false
					changed = true
				}
			}
			cand[u] = kept
			if len(cand[u]) == 0 {
				return false
			}
		}
		if !changed {
			break
		}
	}

	// Stage 3: search-order optimization + DFS.
	order := gqlOrder(pattern, cand)
	s := &gqlState{
		p:      pattern,
		t:      target,
		order:  order,
		anchor: anchorFor(pattern, order),
		cand:   cand,
		inCand: inCand,
		core:   make([]int, np),
		used:   make([]bool, nt),
	}
	for i := range s.core {
		s.core[i] = -1
	}
	return s.search(0)
}

// gqlOrder picks the next vertex (preferring ones adjacent to the already
// ordered set) with the smallest candidate list.
func gqlOrder(p *graph.Graph, cand [][]int32) []int {
	n := p.NumVertices()
	order := make([]int, 0, n)
	done := make([]bool, n)
	adjacent := make([]bool, n)
	for len(order) < n {
		best, bestAdj := -1, false
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			switch {
			case best == -1,
				adjacent[v] && !bestAdj,
				adjacent[v] == bestAdj && len(cand[v]) < len(cand[best]),
				adjacent[v] == bestAdj && len(cand[v]) == len(cand[best]) && p.Degree(v) > p.Degree(best):
				best, bestAdj = v, adjacent[v]
			}
		}
		done[best] = true
		order = append(order, best)
		for _, w := range p.Neighbors(best) {
			adjacent[w] = true
		}
	}
	return order
}

type gqlState struct {
	p, t   *graph.Graph
	order  []int
	anchor []int
	cand   [][]int32
	inCand [][]bool
	core   []int
	used   []bool
}

func (s *gqlState) search(d int) bool {
	if d == len(s.order) {
		return true
	}
	pv := s.order[d]
	try := func(tv int) bool {
		if s.used[tv] || !s.inCand[pv][tv] {
			return false
		}
		for _, pn := range s.p.Neighbors(pv) {
			if m := s.core[pn]; m >= 0 && !s.t.HasEdge(m, tv) {
				return false
			}
		}
		s.core[pv] = tv
		s.used[tv] = true
		ok := s.search(d + 1)
		s.core[pv] = -1
		s.used[tv] = false
		return ok
	}
	if a := s.anchor[d]; a >= 0 {
		tAnchor := s.core[s.order[a]]
		for _, tv := range s.t.Neighbors(tAnchor) {
			if try(int(tv)) {
				return true
			}
		}
		return false
	}
	for _, tv := range s.cand[pv] {
		if try(int(tv)) {
			return true
		}
	}
	return false
}

// bipartiteMatcher runs Kuhn's augmenting-path maximum matching between a
// pattern vertex's neighbours and a target vertex's neighbours. Buffers
// are reused across calls; stamp-based visited marks avoid clearing.
type bipartiteMatcher struct {
	matchR  []int // target vertex -> pattern-neighbour index, or -1
	matchU  []int // target vertex -> pattern vertex occupying it
	visited []int // stamp per target vertex
	stamp   int
}

func newBipartiteMatcher(targetVertices int) *bipartiteMatcher {
	m := &bipartiteMatcher{
		matchR:  make([]int, targetVertices),
		matchU:  make([]int, targetVertices),
		visited: make([]int, targetVertices),
	}
	for i := range m.matchR {
		m.matchR[i] = -1
	}
	return m
}

// grow extends the matcher's buffers to cover targetVertices vertices,
// retaining state; semiPerfect resets the entries it touches, so the new
// tail needs no initialization. Used by the pooled compiled-matcher
// scratch, where one bipartiteMatcher serves targets of many sizes.
func (m *bipartiteMatcher) grow(targetVertices int) {
	if len(m.matchR) >= targetVertices {
		return
	}
	n := targetVertices - len(m.matchR)
	m.matchR = append(m.matchR, make([]int, n)...)
	m.matchU = append(m.matchU, make([]int, n)...)
	m.visited = append(m.visited, make([]int, n)...)
}

// semiPerfect reports whether every pattern neighbour pn[i] can be matched
// to a distinct target neighbour tv ∈ tn with tv ∈ cand(pn[i]). This is
// GraphQL's "semi-perfect matching" condition.
func (m *bipartiteMatcher) semiPerfect(pn []int32, tn []int32, inCand [][]bool) bool {
	if len(pn) > len(tn) {
		return false
	}
	for _, tv := range tn {
		m.matchR[tv] = -1
	}
	size := 0
	for i, u := range pn {
		m.stamp++
		if m.augment(int(u), i, tn, inCand) {
			size++
		} else {
			return false // matching must cover every pattern neighbour
		}
	}
	return size == len(pn)
}

func (m *bipartiteMatcher) augment(u, ui int, tn []int32, inCand [][]bool) bool {
	for _, tv := range tn {
		if m.visited[tv] == m.stamp || !inCand[u][tv] {
			continue
		}
		m.visited[tv] = m.stamp
		if m.matchR[tv] == -1 {
			m.matchR[tv] = ui
			m.matchU[tv] = u
			return true
		}
		// try to re-augment the current occupant
		if m.augment(m.matchU[tv], m.matchR[tv], tn, inCand) {
			m.matchR[tv] = ui
			m.matchU[tv] = u
			return true
		}
	}
	return false
}
