// Package subiso implements the subgraph-isomorphism "Method M" algorithms
// that GC+ expedites (§7.1 of the paper): vanilla VF2 (Cordella et al.,
// TPAMI 2004), VF2+ (VF2 with the candidate-ordering and neighbourhood
// pruning refinements used by CT-index, Klein et al., ICDE 2011), and
// GraphQL (He & Singh, SIGMOD 2008: neighbourhood profiles, global
// iterative refinement, and candidate-driven search). A naive brute-force
// matcher doubles as the correctness oracle for the test suite.
//
// All algorithms decide non-induced subgraph isomorphism ("monomorphism"):
// pattern p ⊆ target t iff there is an injection φ from V(p) to V(t) with
// matching labels that maps every edge of p onto an edge of t. Non-edges
// of p impose no constraint, per §3 of the paper.
//
// Repeated tests against a fixed pattern (or fixed target) should go
// through the compiled Matcher (CompileSub/CompileSuper), which hoists
// the per-pattern work out of the loop and runs each test on pooled
// scratch; Algorithm.Contains delegates to a one-shot compile.
package subiso

import (
	"fmt"
	"sort"

	"gcplus/internal/graph"
)

// Algorithm decides subgraph isomorphism.
type Algorithm interface {
	// Name returns the algorithm's short name ("VF2", "VF2+", "GQL", ...).
	Name() string
	// Contains reports whether pattern is subgraph-isomorphic to target.
	Contains(pattern, target *graph.Graph) bool
}

// New returns the algorithm with the given name: "VF2", "VF2+", "GQL" or
// "BRUTE" (case sensitive, matching the paper's names).
func New(name string) (Algorithm, error) {
	switch name {
	case "VF2":
		return VF2{}, nil
	case "VF2+":
		return VF2Plus{}, nil
	case "GQL":
		return GraphQL{}, nil
	case "BRUTE":
		return Brute{}, nil
	}
	return nil, fmt.Errorf("subiso: unknown algorithm %q (want VF2, VF2+, GQL or BRUTE)", name)
}

// Names lists the production algorithm names in the paper's order.
func Names() []string { return []string{"VF2", "VF2+", "GQL"} }

// PlannerAlgorithms returns the algorithms a cost-based planner may
// choose among — the paper's three Method M implementations, all exact,
// so choosing among them can never change an answer. Brute is excluded:
// it exists as a test oracle, never a production choice.
func PlannerAlgorithms() []Algorithm {
	return []Algorithm{VF2{}, VF2Plus{}, GraphQL{}}
}

// legacyContains dispatches to the pre-compilation per-call
// implementations — the baseline the compiled Matcher engine is
// property-tested and benchmarked against. Unknown algorithms fall back
// to their own Contains.
func legacyContains(algo Algorithm, pattern, target *graph.Graph) bool {
	switch a := algo.(type) {
	case VF2:
		return legacyVF2Contains(pattern, target)
	case VF2Plus:
		return legacyVF2PlusContains(pattern, target)
	case GraphQL:
		return legacyGQLContains(a, pattern, target)
	case Brute:
		return legacyBruteContains(pattern, target)
	}
	return algo.Contains(pattern, target)
}

// quickReject applies the O(|V|+|E|) necessary conditions every algorithm
// shares: size bounds and label-multiset containment.
func quickReject(p, t *graph.Graph) bool {
	if p.NumVertices() > t.NumVertices() || p.NumEdges() > t.NumEdges() {
		return true
	}
	if p.MaxDegree() > t.MaxDegree() {
		return true
	}
	tc := t.LabelCounts()
	for l, c := range p.LabelCounts() {
		if tc[l] < c {
			return true
		}
	}
	return false
}

// CheckEmbedding verifies that m is a valid monomorphism from pattern to
// target: m must have one entry per pattern vertex, be injective, preserve
// labels, and map every pattern edge to a target edge. Used by tests.
func CheckEmbedding(pattern, target *graph.Graph, m []int) error {
	if len(m) != pattern.NumVertices() {
		return fmt.Errorf("subiso: mapping has %d entries, pattern has %d vertices", len(m), pattern.NumVertices())
	}
	seen := make(map[int]bool, len(m))
	for u, v := range m {
		if v < 0 || v >= target.NumVertices() {
			return fmt.Errorf("subiso: vertex %d maps out of range (%d)", u, v)
		}
		if seen[v] {
			return fmt.Errorf("subiso: mapping not injective at target vertex %d", v)
		}
		seen[v] = true
		if pattern.Label(u) != target.Label(v) {
			return fmt.Errorf("subiso: label mismatch at %d→%d", u, v)
		}
	}
	for _, e := range pattern.EdgeList() {
		if !target.HasEdge(m[e.U], m[e.V]) {
			return fmt.Errorf("subiso: pattern edge {%d,%d} not preserved", e.U, e.V)
		}
	}
	return nil
}

// connectedOrder returns a visit order for the pattern where each vertex
// after the first of its component has at least one earlier neighbour.
// rootRank breaks ties for component roots and first expansion; it lets
// VF2 use plain index order and VF2+ use rarity order.
func connectedOrder(p *graph.Graph, better func(a, b int) bool) []int {
	n := p.NumVertices()
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	// orderedNeighbors[v] counts already-ordered neighbours of v, used to
	// prefer vertices most constrained by the partial mapping.
	orderedNeighbors := make([]int, n)
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			if best == -1 {
				best = v
				continue
			}
			switch {
			case orderedNeighbors[v] > orderedNeighbors[best]:
				best = v
			case orderedNeighbors[v] == orderedNeighbors[best] && better(v, best):
				best = v
			}
		}
		inOrder[best] = true
		order = append(order, best)
		for _, w := range p.Neighbors(best) {
			orderedNeighbors[w]++
		}
	}
	return order
}

// anchorFor returns, for each position in order, the earliest position of
// an already-ordered neighbour (-1 if the vertex starts a new component).
// During search the candidate set of order[i] is the target-neighbourhood
// of the image of order[anchor[i]].
func anchorFor(p *graph.Graph, order []int) []int {
	pos := make([]int, p.NumVertices())
	for i, v := range order {
		pos[v] = i
	}
	anchor := make([]int, len(order))
	for i, v := range order {
		anchor[i] = -1
		best := len(order)
		for _, w := range p.Neighbors(v) {
			if pw := pos[w]; pw < i && pw < best {
				best = pw
			}
		}
		if best < len(order) {
			anchor[i] = best
		}
	}
	return anchor
}

// neighborLabelCounts returns, for vertex v of g, the multiset of its
// neighbours' labels as a sorted slice (for profile containment checks).
func neighborProfile(g *graph.Graph, v int) []graph.Label {
	ns := g.Neighbors(v)
	out := make([]graph.Label, len(ns))
	for i, w := range ns {
		out[i] = g.Label(int(w))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// profileContains reports whether sorted multiset a is contained in sorted
// multiset b.
func profileContains(a, b []graph.Label) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}
