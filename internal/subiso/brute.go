package subiso

import "gcplus/internal/graph"

// Brute is an exhaustive backtracking matcher with no ordering heuristics
// and no pruning beyond label equality, injectivity and edge preservation.
// It exists as the independent correctness oracle for the other
// algorithms (and is exercised by the property tests); never use it as a
// Method M in measurements.
type Brute struct{}

// Name implements Algorithm.
func (Brute) Name() string { return "BRUTE" }

// Contains implements Algorithm via a one-shot compile.
func (Brute) Contains(pattern, target *graph.Graph) bool {
	return CompileSub(pattern, Brute{}).Contains(target)
}

// legacyBruteContains is the original per-call implementation, kept as an
// independent oracle for the compiled engine's property tests.
func legacyBruteContains(pattern, target *graph.Graph) bool {
	np, nt := pattern.NumVertices(), target.NumVertices()
	if np == 0 {
		return true
	}
	if np > nt {
		return false
	}
	core := make([]int, np)
	for i := range core {
		core[i] = -1
	}
	used := make([]bool, nt)
	var rec func(u int) bool
	rec = func(u int) bool {
		if u == np {
			return true
		}
		for v := 0; v < nt; v++ {
			if used[v] || pattern.Label(u) != target.Label(v) {
				continue
			}
			ok := true
			for _, w := range pattern.Neighbors(u) {
				if m := core[w]; m >= 0 && !target.HasEdge(m, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			core[u] = v
			used[v] = true
			if rec(u + 1) {
				return true
			}
			core[u] = -1
			used[v] = false
		}
		return false
	}
	return rec(0)
}
