package subiso

import "gcplus/internal/graph"

// VF2Plus is the modified VF2 used by CT-index (Klein, Kriege, Mutzel,
// ICDE 2011), which the paper calls VF2+ and reports as a consistently
// better performer than vanilla VF2. The engine is VF2's, with three
// refinements:
//
//  1. rarity-driven visit order: pattern vertices whose labels are rare in
//     the target are matched first (ties broken towards higher degree), so
//     contradictions surface near the root of the search tree;
//  2. neighbourhood label pruning: a candidate target vertex must carry,
//     for every label, at least as many neighbours with that label as the
//     pattern vertex does;
//  3. the monomorphism-safe 1-look-ahead cut on unmatched-neighbour counts
//     (enabled in the shared engine via the lookahead flag).
type VF2Plus struct{}

// Name implements Algorithm.
func (VF2Plus) Name() string { return "VF2+" }

// Contains implements Algorithm via a one-shot compile of the pattern;
// callers testing one pattern against many targets should CompileSub once
// and reuse the Matcher instead.
func (VF2Plus) Contains(pattern, target *graph.Graph) bool {
	return CompileSub(pattern, VF2Plus{}).Contains(target)
}

// legacyVF2PlusContains is the original per-call implementation, kept as
// an independent reference for the compiled engine's property tests and
// as the BenchmarkVerifyLegacy baseline.
func legacyVF2PlusContains(pattern, target *graph.Graph) bool {
	if pattern.NumVertices() == 0 {
		return true
	}
	if quickReject(pattern, target) {
		return false
	}
	labelFreq := target.LabelCounts()
	better := func(a, b int) bool {
		fa, fb := labelFreq[pattern.Label(a)], labelFreq[pattern.Label(b)]
		if fa != fb {
			return fa < fb // rarer label first
		}
		if pattern.Degree(a) != pattern.Degree(b) {
			return pattern.Degree(a) > pattern.Degree(b) // higher degree first
		}
		return a < b
	}
	order := connectedOrder(pattern, better)
	s := newVF2State(pattern, target, order, true)

	// Precompute pattern-side neighbour label requirements and the
	// target-side neighbour label counts once per call; feasible() then
	// adds the O(labels) containment check through the nlcFeasible hook.
	req := make([]map[graph.Label]int, pattern.NumVertices())
	for v := range req {
		m := make(map[graph.Label]int, 4)
		for _, w := range pattern.Neighbors(v) {
			m[pattern.Label(int(w))]++
		}
		req[v] = m
	}
	have := make([]map[graph.Label]int, target.NumVertices())
	for v := range have {
		m := make(map[graph.Label]int, 4)
		for _, w := range target.Neighbors(v) {
			m[target.Label(int(w))]++
		}
		have[v] = m
	}
	return s.matchWithNLC(0, req, have)
}

// matchWithNLC is vf2State.match with the neighbourhood-label-count check
// layered onto feasibility. Kept separate so vanilla VF2 pays nothing.
func (s *vf2State) matchWithNLC(d int, req, have []map[graph.Label]int) bool {
	if d == len(s.order) {
		return true
	}
	pv := s.order[d]
	try := func(tv int) bool {
		if !s.feasible(pv, tv) {
			return false
		}
		for l, c := range req[pv] {
			if have[tv][l] < c {
				return false
			}
		}
		s.core[pv] = tv
		s.used[tv] = true
		ok := s.matchWithNLC(d+1, req, have)
		s.core[pv] = -1
		s.used[tv] = false
		return ok
	}
	if a := s.anchor[d]; a >= 0 {
		tAnchor := s.core[s.order[a]]
		for _, tv := range s.t.Neighbors(tAnchor) {
			if try(int(tv)) {
				return true
			}
		}
		return false
	}
	for tv := 0; tv < s.t.NumVertices(); tv++ {
		if try(tv) {
			return true
		}
	}
	return false
}
