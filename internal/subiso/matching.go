package subiso

import "gcplus/internal/graph"

// This file addresses the *matching* flavour of subgraph isomorphism
// (§2 of the paper distinguishes the decision problem from the matching
// problem that locates occurrences). GC+ itself only needs decisions, but
// the library exposes embeddings and counts because downstream users of a
// graph-query system routinely want them, and the tests use embeddings to
// cross-validate the decision algorithms.

// FindEmbedding returns one monomorphism from pattern into target as a
// slice m with m[u] = image of pattern vertex u, or nil if none exists.
// The VF2 engine is used.
func FindEmbedding(pattern, target *graph.Graph) []int {
	if pattern.NumVertices() == 0 {
		return []int{}
	}
	if quickReject(pattern, target) {
		return nil
	}
	s := newVF2State(pattern, target, connectedOrder(pattern, func(a, b int) bool { return a < b }), false)
	var m []int
	s.capture = &m
	s.match(0)
	return m
}

// CountEmbeddings counts distinct monomorphisms from pattern into target
// (two embeddings are distinct if any vertex maps differently; automorphic
// images are counted separately, the convention of the matching problem).
// A limit > 0 stops the search once that many embeddings are found, so
// callers can ask cheap questions like "are there at least 2?".
func CountEmbeddings(pattern, target *graph.Graph, limit int64) int64 {
	if pattern.NumVertices() == 0 {
		return 1
	}
	if quickReject(pattern, target) {
		return 0
	}
	s := newVF2State(pattern, target, connectedOrder(pattern, func(a, b int) bool { return a < b }), false)
	s.countAll = true
	s.limit = limit
	s.match(0)
	return s.found
}
