package subiso

import (
	"gcplus/internal/graph"
)

// Matcher is a compiled sub-iso tester: one side of the containment test
// is fixed at compile time and the other varies per Contains call. It is
// the verification engine behind the runtime's Method M loop, built so
// that testing one query pattern against thousands of dataset candidates
// pays the per-pattern work (visit order, anchors, summaries) once and
// runs each test on pooled, reusable scratch — zero allocations in steady
// state once the scratch has grown to the largest candidate seen.
//
// A Matcher is NOT safe for concurrent use: the scratch is shared across
// calls. Fork returns an independent Matcher sharing only the immutable
// compiled artifacts, which is how the parallel verification loop gives
// each worker its own scratch.
type Matcher struct {
	algo  Algorithm
	kind  engineKind
	super bool // fixed side is the target, Contains receives patterns

	fixed *graph.Graph
	fsum  *graph.Summary

	// refineLevels is GraphQL's global-refinement sweep bound.
	refineLevels int

	// subOrder/subAnchor are VF2's precompiled visit order and anchors:
	// vanilla VF2 orders by vertex index, which is target-independent, so
	// a sub-mode compile pins them once for every candidate. (VF2+ orders
	// by target label rarity and GQL by candidate-set size, so their
	// orders are rebuilt per call — on scratch, without allocating.)
	subOrder  []int32
	subAnchor []int32

	sc scratch

	// Per-call engine state (set by Contains, read by the recursive
	// search methods; kept on the Matcher so recursion allocates nothing).
	cp, ct   *graph.Graph
	cps, cts *graph.Summary
	order    []int32
	anchor   []int32
	plus     bool // VF2+ pruning rules active
}

// engineKind selects the compiled code path for one Algorithm.
type engineKind uint8

const (
	kindGeneric engineKind = iota // unknown Algorithm: fall back to its Contains
	kindVF2
	kindVF2Plus
	kindGQL
	kindBrute
)

func kindOf(algo Algorithm) engineKind {
	switch algo.(type) {
	case VF2:
		return kindVF2
	case VF2Plus:
		return kindVF2Plus
	case GraphQL:
		return kindGQL
	case Brute:
		return kindBrute
	}
	return kindGeneric
}

// CompileSub compiles pattern for repeated subgraph tests: the returned
// Matcher's Contains(target) reports pattern ⊆ target. This is the shape
// of a subgraph query's verification loop (one pattern, many dataset
// targets).
func CompileSub(pattern *graph.Graph, algo Algorithm) *Matcher {
	m := newMatcher(pattern, algo, false)
	if m.kind == kindVF2 && pattern.NumVertices() > 0 {
		ord := connectedOrder(pattern, func(a, b int) bool { return a < b })
		anc := anchorFor(pattern, ord)
		m.subOrder = make([]int32, len(ord))
		m.subAnchor = make([]int32, len(anc))
		for i, v := range ord {
			m.subOrder[i] = int32(v)
		}
		for i, a := range anc {
			m.subAnchor[i] = int32(a)
		}
	}
	return m
}

// CompileSuper compiles target for repeated supergraph tests: the
// returned Matcher's Contains(candidate) reports candidate ⊆ target. This
// is the shape of a supergraph query's verification loop (many dataset
// patterns, one query target); the target-side artifacts (summary, label
// frequencies, neighbourhood profiles) are fixed, the pattern-side ones
// are rebuilt per call on pooled scratch.
func CompileSuper(target *graph.Graph, algo Algorithm) *Matcher {
	return newMatcher(target, algo, true)
}

func newMatcher(fixed *graph.Graph, algo Algorithm, super bool) *Matcher {
	m := &Matcher{algo: algo, kind: kindOf(algo), super: super, fixed: fixed}
	switch m.kind {
	case kindGeneric, kindBrute:
		// no summary-driven pruning on these paths
	default:
		m.fsum = fixed.Summary()
	}
	if g, ok := algo.(GraphQL); ok {
		m.refineLevels = g.RefineLevels
		if m.refineLevels <= 0 {
			m.refineLevels = DefaultRefineLevels
		}
	}
	return m
}

// Fork returns an independent Matcher sharing m's immutable compiled
// artifacts (pattern, summaries, precompiled order) but owning fresh
// scratch, so the fork and m can run Contains concurrently.
func (m *Matcher) Fork() *Matcher {
	return &Matcher{
		algo:         m.algo,
		kind:         m.kind,
		super:        m.super,
		fixed:        m.fixed,
		fsum:         m.fsum,
		refineLevels: m.refineLevels,
		subOrder:     m.subOrder,
		subAnchor:    m.subAnchor,
	}
}

// Name returns the compiled algorithm's name.
func (m *Matcher) Name() string { return m.algo.Name() }

// Algorithm returns the algorithm the matcher was compiled for.
func (m *Matcher) Algorithm() Algorithm { return m.algo }

// Contains runs one containment test against the compiled side: with
// CompileSub it reports fixedPattern ⊆ other, with CompileSuper it
// reports other ⊆ fixedTarget.
func (m *Matcher) Contains(other *graph.Graph) bool {
	p, t := m.fixed, other
	if m.super {
		p, t = other, m.fixed
	}
	np := p.NumVertices()
	if np == 0 {
		return true
	}
	switch m.kind {
	case kindGeneric:
		return m.algo.Contains(p, t)
	case kindBrute:
		if np > t.NumVertices() {
			return false
		}
		m.cp, m.ct = p, t
		m.prepare(np, t.NumVertices())
		return m.bruteMatch(0)
	}

	ps, ts := m.fsum, other.Summary()
	if m.super {
		ps, ts = other.Summary(), m.fsum
	}
	// Summary quick-reject: the map-free replacement for the legacy
	// LabelCounts/MaxDegree rescan, and strictly stronger (degree-sequence
	// domination).
	if !ps.SubsumedBy(ts) {
		return false
	}
	m.cp, m.ct, m.cps, m.cts = p, t, ps, ts
	nt := t.NumVertices()
	m.prepare(np, nt)
	sc := &m.sc

	switch m.kind {
	case kindVF2:
		m.plus = false
		if m.subOrder != nil {
			m.order, m.anchor = m.subOrder, m.subAnchor
		} else {
			m.order = sc.buildOrder(p, nil)
			m.anchor = sc.buildAnchors(p, m.order)
		}
		return m.vf2Match(0)
	case kindVF2Plus:
		m.plus = true
		freq := sc.freq[:np]
		for v := 0; v < np; v++ {
			freq[v] = ts.LabelFreq(p.Label(v))
		}
		m.order = sc.buildOrder(p, freq)
		m.anchor = sc.buildAnchors(p, m.order)
		return m.vf2Match(0)
	default: // kindGQL
		return m.gql()
	}
}

// prepare sizes the scratch for an (np, nt) test and resets the search
// state (core mapping and used marks).
func (m *Matcher) prepare(np, nt int) {
	sc := &m.sc
	sc.growPattern(np)
	sc.growTarget(nt)
	core := sc.core[:np]
	for i := range core {
		core[i] = -1
	}
	used := sc.used[:nt]
	for i := range used {
		used[i] = false
	}
}

// scratch is the pooled, reusable search state. Slices grow to the
// largest pattern/target seen and are never shrunk, so steady-state
// Contains calls allocate nothing.
type scratch struct {
	// pattern-sized
	order, anchor, pos, ordered, freq, core []int32
	inOrder                                 []bool
	gdone, gadj                             []bool
	cand                                    [][]int32
	inCand                                  [][]bool
	// target-sized
	used []bool
	bm   bipartiteMatcher
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func (sc *scratch) growPattern(np int) {
	sc.order = grow32(sc.order, np)
	sc.anchor = grow32(sc.anchor, np)
	sc.pos = grow32(sc.pos, np)
	sc.ordered = grow32(sc.ordered, np)
	sc.freq = grow32(sc.freq, np)
	sc.core = grow32(sc.core, np)
	sc.inOrder = growBool(sc.inOrder, np)
	sc.gdone = growBool(sc.gdone, np)
	sc.gadj = growBool(sc.gadj, np)
	for len(sc.cand) < np {
		sc.cand = append(sc.cand, nil)
	}
	for len(sc.inCand) < np {
		sc.inCand = append(sc.inCand, nil)
	}
}

func (sc *scratch) growTarget(nt int) {
	sc.used = growBool(sc.used, nt)
	sc.bm.grow(nt)
}

// buildOrder is connectedOrder on scratch: each vertex after the first of
// its component has an earlier neighbour, most-constrained first. A nil
// freq gives VF2's index tie-break; otherwise VF2+'s rarity order (lower
// target label frequency first, then higher degree, then index).
func (sc *scratch) buildOrder(p *graph.Graph, freq []int32) []int32 {
	n := p.NumVertices()
	order := sc.order[:n]
	inOrder := sc.inOrder[:n]
	ordered := sc.ordered[:n]
	for i := range inOrder {
		inOrder[i] = false
		ordered[i] = 0
	}
	for k := 0; k < n; k++ {
		best := -1
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			switch {
			case best == -1:
				best = v
			case ordered[v] > ordered[best]:
				best = v
			case ordered[v] == ordered[best] && betterRoot(p, freq, v, best):
				best = v
			}
		}
		inOrder[best] = true
		order[k] = int32(best)
		for _, w := range p.Neighbors(best) {
			ordered[w]++
		}
	}
	return order
}

func betterRoot(p *graph.Graph, freq []int32, a, b int) bool {
	if freq == nil {
		return a < b
	}
	if freq[a] != freq[b] {
		return freq[a] < freq[b] // rarer label first
	}
	if p.Degree(a) != p.Degree(b) {
		return p.Degree(a) > p.Degree(b) // higher degree first
	}
	return a < b
}

// buildAnchors is anchorFor on scratch: for each order position, the
// earliest position of an already-ordered neighbour (-1 for component
// roots).
func (sc *scratch) buildAnchors(p *graph.Graph, order []int32) []int32 {
	n := len(order)
	pos := sc.pos
	anchor := sc.anchor[:n]
	for i, v := range order {
		pos[v] = int32(i)
	}
	for i, v := range order {
		anchor[i] = -1
		best := int32(n)
		for _, w := range p.Neighbors(int(v)) {
			if pw := pos[w]; pw < int32(i) && pw < best {
				best = pw
			}
		}
		if best < int32(n) {
			anchor[i] = best
		}
	}
	return anchor
}

// vf2Match is the shared VF2/VF2+ search over the compiled state.
func (m *Matcher) vf2Match(d int) bool {
	if d == len(m.order) {
		return true
	}
	pv := int(m.order[d])
	if a := m.anchor[d]; a >= 0 {
		tAnchor := int(m.sc.core[m.order[a]])
		for _, tv := range m.ct.Neighbors(tAnchor) {
			if m.vf2Feasible(pv, int(tv)) && m.vf2Extend(d, pv, int(tv)) {
				return true
			}
		}
		return false
	}
	nt := m.ct.NumVertices()
	for tv := 0; tv < nt; tv++ {
		if m.vf2Feasible(pv, tv) && m.vf2Extend(d, pv, tv) {
			return true
		}
	}
	return false
}

func (m *Matcher) vf2Extend(d, pv, tv int) bool {
	m.sc.core[pv] = int32(tv)
	m.sc.used[tv] = true
	ok := m.vf2Match(d + 1)
	m.sc.core[pv] = -1
	m.sc.used[tv] = false
	return ok
}

func (m *Matcher) vf2Feasible(pv, tv int) bool {
	sc := &m.sc
	if sc.used[tv] || m.cp.Label(pv) != m.ct.Label(tv) {
		return false
	}
	if m.cp.Degree(pv) > m.ct.Degree(tv) {
		return false
	}
	for _, pn := range m.cp.Neighbors(pv) {
		if c := sc.core[pn]; c >= 0 && !m.ct.HasEdge(int(c), tv) {
			return false
		}
	}
	if m.plus {
		// Neighbourhood label containment via the precomputed sorted
		// profiles (the map-free form of VF2+'s per-label count check).
		if !profileContains(m.cps.Profile(pv), m.cts.Profile(tv)) {
			return false
		}
		// Monomorphism-safe 1-look-ahead.
		pFree := 0
		for _, pn := range m.cp.Neighbors(pv) {
			if sc.core[pn] < 0 {
				pFree++
			}
		}
		tFree := 0
		for _, tn := range m.ct.Neighbors(tv) {
			if !sc.used[tn] {
				tFree++
			}
		}
		if pFree > tFree {
			return false
		}
	}
	return true
}

// gql is GraphQL's three stages on compiled state: local pruning from the
// precomputed profiles, global refinement with the pooled bipartite
// matcher, then candidate-ordered search.
func (m *Matcher) gql() bool {
	p, t := m.cp, m.ct
	np, nt := p.NumVertices(), t.NumVertices()
	sc := &m.sc

	// Stage 1: local pruning into pooled candidate rows.
	for u := 0; u < np; u++ {
		pu := m.cps.Profile(u)
		row := growBool(sc.inCand[u], nt)
		sc.inCand[u] = row
		for i := range row {
			row[i] = false
		}
		cu := sc.cand[u][:0]
		lu, du := p.Label(u), p.Degree(u)
		for v := 0; v < nt; v++ {
			if lu != t.Label(v) || du > t.Degree(v) {
				continue
			}
			if !profileContains(pu, m.cts.Profile(v)) {
				continue
			}
			cu = append(cu, int32(v))
			row[v] = true
		}
		sc.cand[u] = cu
		if len(cu) == 0 {
			return false
		}
	}

	// Stage 2: global refinement via semi-perfect bipartite matching.
	for level := 0; level < m.refineLevels; level++ {
		changed := false
		for u := 0; u < np; u++ {
			pn := p.Neighbors(u)
			if len(pn) == 0 {
				continue
			}
			kept := sc.cand[u][:0]
			for _, v := range sc.cand[u] {
				if sc.bm.semiPerfect(pn, t.Neighbors(int(v)), sc.inCand) {
					kept = append(kept, v)
				} else {
					sc.inCand[u][v] = false
					changed = true
				}
			}
			sc.cand[u] = kept
			if len(kept) == 0 {
				return false
			}
		}
		if !changed {
			break
		}
	}

	// Stage 3: search-order optimization + DFS.
	m.order = sc.gqlOrder(p)
	m.anchor = sc.buildAnchors(p, m.order)
	return m.gqlSearch(0)
}

// gqlOrder picks the next vertex (preferring ones adjacent to the already
// ordered set) with the smallest candidate list, on scratch.
func (sc *scratch) gqlOrder(p *graph.Graph) []int32 {
	n := p.NumVertices()
	order := sc.order[:n]
	done := sc.gdone[:n]
	adjacent := sc.gadj[:n]
	for i := range done {
		done[i] = false
		adjacent[i] = false
	}
	for k := 0; k < n; k++ {
		best, bestAdj := -1, false
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			switch {
			case best == -1,
				adjacent[v] && !bestAdj,
				adjacent[v] == bestAdj && len(sc.cand[v]) < len(sc.cand[best]),
				adjacent[v] == bestAdj && len(sc.cand[v]) == len(sc.cand[best]) && p.Degree(v) > p.Degree(best):
				best, bestAdj = v, adjacent[v]
			}
		}
		done[best] = true
		order[k] = int32(best)
		for _, w := range p.Neighbors(best) {
			adjacent[w] = true
		}
	}
	return order
}

func (m *Matcher) gqlSearch(d int) bool {
	if d == len(m.order) {
		return true
	}
	pv := int(m.order[d])
	if a := m.anchor[d]; a >= 0 {
		tAnchor := int(m.sc.core[m.order[a]])
		for _, tv := range m.ct.Neighbors(tAnchor) {
			if m.gqlTry(d, pv, int(tv)) {
				return true
			}
		}
		return false
	}
	for _, tv := range m.sc.cand[pv] {
		if m.gqlTry(d, pv, int(tv)) {
			return true
		}
	}
	return false
}

func (m *Matcher) gqlTry(d, pv, tv int) bool {
	sc := &m.sc
	if sc.used[tv] || !sc.inCand[pv][tv] {
		return false
	}
	for _, pn := range m.cp.Neighbors(pv) {
		if c := sc.core[pn]; c >= 0 && !m.ct.HasEdge(int(c), tv) {
			return false
		}
	}
	sc.core[pv] = int32(tv)
	sc.used[tv] = true
	ok := m.gqlSearch(d + 1)
	sc.core[pv] = -1
	sc.used[tv] = false
	return ok
}

// bruteMatch is the oracle's exhaustive backtracking on pooled scratch —
// deliberately the same heuristic-free logic as the legacy Brute.
func (m *Matcher) bruteMatch(u int) bool {
	if u == m.cp.NumVertices() {
		return true
	}
	sc := &m.sc
	nt := m.ct.NumVertices()
	for v := 0; v < nt; v++ {
		if sc.used[v] || m.cp.Label(u) != m.ct.Label(v) {
			continue
		}
		ok := true
		for _, w := range m.cp.Neighbors(u) {
			if c := sc.core[w]; c >= 0 && !m.ct.HasEdge(int(c), v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		sc.core[u] = int32(v)
		sc.used[v] = true
		if m.bruteMatch(u + 1) {
			return true
		}
		sc.core[u] = -1
		sc.used[v] = false
	}
	return false
}
