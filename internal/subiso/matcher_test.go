package subiso

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"gcplus/internal/graph"
)

// TestMatcherAgreesWithLegacy is the compiled engine's central property:
// a Matcher reused across many targets of varying size (dirty scratch and
// all) must return exactly the legacy per-call verdict for every
// algorithm, in both the CompileSub and CompileSuper directions.
func TestMatcherAgreesWithLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pattern := randomGraph(rng, 7, 3, 0.35)
		targets := make([]*graph.Graph, 8)
		for i := range targets {
			if rng.Intn(3) == 0 && pattern.NumEdges() > 0 {
				// supergraphs of the pattern keep positives in the mix
				targets[i] = randomSupergraph(rng, pattern)
			} else {
				targets[i] = randomGraph(rng, 14, 3, 0.3)
			}
		}
		for _, algo := range allAlgorithms {
			sub := CompileSub(pattern, algo)
			for _, tg := range targets {
				want := legacyContains(algo, pattern, tg)
				if sub.Contains(tg) != want {
					t.Logf("seed %d: %s CompileSub disagrees (want %v)", seed, algo.Name(), want)
					return false
				}
			}
			// super direction: one fixed target, the same graphs as
			// candidate patterns.
			super := CompileSuper(targets[0], algo)
			for _, cand := range targets[1:] {
				want := legacyContains(algo, cand, targets[0])
				if super.Contains(cand) != want {
					t.Logf("seed %d: %s CompileSuper disagrees (want %v)", seed, algo.Name(), want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// randomSupergraph embeds pattern into a larger random graph, guaranteeing
// a positive containment case.
func randomSupergraph(rng *rand.Rand, pattern *graph.Graph) *graph.Graph {
	b := graph.NewBuilder()
	for v := 0; v < pattern.NumVertices(); v++ {
		b.AddVertex(pattern.Label(v))
	}
	for _, e := range pattern.EdgeList() {
		b.AddEdge(int(e.U), int(e.V))
	}
	extra := 1 + rng.Intn(6)
	for i := 0; i < extra; i++ {
		v := b.AddVertex(graph.Label(rng.Intn(3)))
		if v > 0 {
			b.AddEdge(rng.Intn(v), v)
		}
	}
	g, err := b.Build()
	if err != nil {
		// duplicate edge from the random wiring: fall back to the pattern
		return pattern
	}
	return g
}

// TestMatcherReuseAfterEarlyExit makes sure a search that returns true
// mid-tree (leaving core/used dirty) does not poison the next call.
func TestMatcherReuseAfterEarlyExit(t *testing.T) {
	const A graph.Label = 0
	pattern := graph.Path(A, A)
	hit := graph.Clique(A, A, A) // succeeds immediately, scratch left dirty
	miss := graph.Path(A, 1)     // must still be rejected afterwards
	hit2 := graph.Path(A, A, A)  // and positives must still be found
	for _, algo := range allAlgorithms {
		m := CompileSub(pattern, algo)
		for i := 0; i < 3; i++ {
			if !m.Contains(hit) {
				t.Fatalf("%s: hit missed on round %d", algo.Name(), i)
			}
			if m.Contains(miss) {
				t.Fatalf("%s: false positive after early exit on round %d", algo.Name(), i)
			}
			if !m.Contains(hit2) {
				t.Fatalf("%s: positive missed after reject on round %d", algo.Name(), i)
			}
		}
	}
}

// TestMatcherForkParallel runs forked matchers concurrently under -race:
// forks share only immutable compiled artifacts, so verdicts must match
// the sequential ground truth.
func TestMatcherForkParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pattern := randomGraph(rng, 6, 3, 0.4)
	targets := make([]*graph.Graph, 64)
	for i := range targets {
		targets[i] = randomGraph(rng, 16, 3, 0.3)
	}
	for _, algo := range allAlgorithms {
		want := make([]bool, len(targets))
		for i, tg := range targets {
			want[i] = legacyContains(algo, pattern, tg)
		}
		base := CompileSub(pattern, algo)
		const workers = 4
		got := make([]bool, len(targets))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := base.Fork()
				for i := w; i < len(targets); i += workers {
					got[i] = m.Contains(targets[i])
				}
			}(w)
		}
		wg.Wait()
		for i := range targets {
			if got[i] != want[i] {
				t.Fatalf("%s: fork verdict %v != %v on target %d", algo.Name(), got[i], want[i], i)
			}
		}
	}
}

func TestMatcherEmptyAndTrivial(t *testing.T) {
	empty := graph.NewBuilder().MustBuild()
	single := graph.Single(1)
	for _, algo := range allAlgorithms {
		if !CompileSub(empty, algo).Contains(single) {
			t.Errorf("%s: empty pattern should be contained", algo.Name())
		}
		if !CompileSuper(single, algo).Contains(empty) {
			t.Errorf("%s: empty candidate should be contained (super)", algo.Name())
		}
		if CompileSub(single, algo).Contains(empty) {
			t.Errorf("%s: vertex cannot embed in empty target", algo.Name())
		}
		if m := CompileSub(single, algo); !m.Contains(single) {
			t.Errorf("%s: identity containment failed", algo.Name())
		}
	}
}

// verifyBenchCase builds the fixture both verify benchmarks share: one
// query-sized pattern and a batch of AIDS-sized targets, mimicking the
// runtime's verification loop over a pruned candidate set.
func verifyBenchCase() (*graph.Graph, []*graph.Graph) {
	rng := rand.New(rand.NewSource(7))
	targets := make([]*graph.Graph, 64)
	for i := range targets {
		targets[i] = randomGraph(rng, 45, 6, 0.06)
	}
	pattern := bfsExtract(rng, targets[0], 8)
	// Pre-warm summaries, as Dataset insertion does in production.
	for _, tg := range targets {
		tg.Summary()
	}
	return pattern, targets
}

// BenchmarkVerifyCompiled measures the compiled-matcher verification loop
// (compile once, pooled scratch); compare allocs/op and ns/op with
// BenchmarkVerifyLegacy.
func BenchmarkVerifyCompiled(b *testing.B) {
	pattern, targets := verifyBenchCase()
	for _, algo := range allAlgorithms[:3] {
		b.Run(algo.Name(), func(b *testing.B) {
			m := CompileSub(pattern, algo)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Contains(targets[i%len(targets)])
			}
		})
	}
}

// BenchmarkVerifyLegacy measures the pre-compilation per-call path the
// runtime used to take for every candidate.
func BenchmarkVerifyLegacy(b *testing.B) {
	pattern, targets := verifyBenchCase()
	for _, algo := range allAlgorithms[:3] {
		b.Run(algo.Name(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				legacyContains(algo, pattern, targets[i%len(targets)])
			}
		})
	}
}
