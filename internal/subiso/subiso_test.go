package subiso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcplus/internal/graph"
)

var allAlgorithms = []Algorithm{VF2{}, VF2Plus{}, GraphQL{}, Brute{}}

func TestNew(t *testing.T) {
	for _, name := range []string{"VF2", "VF2+", "GQL", "BRUTE"} {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if got := len(Names()); got != 3 {
		t.Errorf("Names() has %d entries, want 3", got)
	}
}

// table-driven known cases exercised against every algorithm.
func TestKnownCases(t *testing.T) {
	const (
		A graph.Label = iota
		B
		C
	)
	triangleAAA := graph.Cycle(A, A, A)
	cases := []struct {
		name    string
		pattern *graph.Graph
		target  *graph.Graph
		want    bool
	}{
		{"single vertex in path", graph.Single(A), graph.Path(B, A, B), true},
		{"single vertex absent label", graph.Single(C), graph.Path(B, A, B), false},
		{"edge in path", graph.Path(A, B), graph.Path(A, B, A), true},
		{"edge reversed labels", graph.Path(B, A), graph.Path(A, B, A), true},
		{"path in cycle", graph.Path(A, A, A), triangleAAA, true},
		{"non-induced: P3 in triangle", graph.Path(A, A, A), triangleAAA, true},
		{"triangle in path", triangleAAA, graph.Path(A, A, A, A), false},
		{"triangle in K4", graph.Cycle(A, A, A), graph.Clique(A, A, A, A), true},
		{"star degree exceeds", graph.Star(A, B, B, B), graph.Path(B, A, B), false},
		{"star fits", graph.Star(A, B, B), graph.Star(A, B, B, B), true},
		{"label multiset exceeds", graph.Path(A, A), graph.Path(A, B), false},
		{"pattern bigger than target", graph.Path(A, A, A), graph.Path(A, A), false},
		{"exact match", graph.Cycle(A, B, C), graph.Cycle(A, B, C), true},
		{"square in triangle", graph.Cycle(A, A, A, A), triangleAAA, false},
		{"square in K4", graph.Cycle(A, A, A, A), graph.Clique(A, A, A, A), true},
		{"labeled cycle rotation", graph.Cycle(A, B, C), graph.Cycle(C, A, B), true},
		{"labeled cycle wrong multiset", graph.Cycle(A, B, B), graph.Cycle(A, A, B), false},
	}
	for _, c := range cases {
		for _, algo := range allAlgorithms {
			if got := algo.Contains(c.pattern, c.target); got != c.want {
				t.Errorf("%s: %s.Contains = %v, want %v", c.name, algo.Name(), got, c.want)
			}
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	empty := graph.NewBuilder().MustBuild()
	target := graph.Path(1, 2)
	for _, algo := range allAlgorithms {
		if !algo.Contains(empty, target) {
			t.Errorf("%s: empty pattern should be contained", algo.Name())
		}
	}
}

func TestSelfContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		g := randomGraph(rng, 14, 4, 0.3)
		for _, algo := range allAlgorithms {
			if !algo.Contains(g, g) {
				t.Fatalf("%s: G ⊆ G failed for %v", algo.Name(), g)
			}
		}
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// pattern: two isolated vertices A, A; target: path A-B-A
	b := graph.NewBuilder()
	b.AddVertex(0)
	b.AddVertex(0)
	pattern := b.MustBuild()
	target := graph.Path(0, 1, 0)
	for _, algo := range allAlgorithms {
		if !algo.Contains(pattern, target) {
			t.Errorf("%s: disconnected pattern should match", algo.Name())
		}
	}
	// needs two A vertices; target with one A must fail
	small := graph.Path(0, 1)
	for _, algo := range allAlgorithms {
		if algo.Contains(pattern, small) {
			t.Errorf("%s: injectivity violated on disconnected pattern", algo.Name())
		}
	}
	// two disconnected edges inside a 4-cycle
	b2 := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b2.AddVertex(0)
	}
	b2.AddEdge(0, 1).AddEdge(2, 3)
	twoEdges := b2.MustBuild()
	square := graph.Cycle(0, 0, 0, 0)
	for _, algo := range allAlgorithms {
		if !algo.Contains(twoEdges, square) {
			t.Errorf("%s: two disjoint edges should embed in C4", algo.Name())
		}
	}
}

// randomGraph generates a random graph with n vertices (1..maxN), labels
// in [0,labels), and edge probability p.
func randomGraph(rng *rand.Rand, maxN, labels int, p float64) *graph.Graph {
	n := 1 + rng.Intn(maxN)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// bfsExtract extracts a connected subgraph of g with up to maxEdges edges,
// starting from a random vertex (mirrors the paper's Type A generation).
func bfsExtract(rng *rand.Rand, g *graph.Graph, maxEdges int) *graph.Graph {
	if g.NumVertices() == 0 {
		return g
	}
	start := rng.Intn(g.NumVertices())
	b := graph.NewBuilder()
	idx := map[int]int{start: b.AddVertex(g.Label(start))}
	queue := []int{start}
	edges := 0
	for len(queue) > 0 && edges < maxEdges {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if edges >= maxEdges {
				break
			}
			wi, seen := idx[int(w)]
			if !seen {
				wi = b.AddVertex(g.Label(int(w)))
				idx[int(w)] = wi
				queue = append(queue, int(w))
				b.AddEdge(idx[v], wi)
				edges++
			}
		}
	}
	return b.MustBuild()
}

// TestQuickAlgorithmsAgree is the central cross-validation property: all
// four algorithms must return the same verdict on random pairs.
func TestQuickAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := randomGraph(rng, 12, 3, 0.3)
		var pattern *graph.Graph
		if rng.Intn(2) == 0 {
			pattern = bfsExtract(rng, target, 1+rng.Intn(6))
		} else {
			pattern = randomGraph(rng, 6, 3, 0.4)
		}
		want := Brute{}.Contains(pattern, target)
		for _, algo := range allAlgorithms[:3] {
			if algo.Contains(pattern, target) != want {
				t.Logf("disagreement: %s on seed %d (want %v)", algo.Name(), seed, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtractedAlwaysContained: any BFS-extracted subgraph must be
// found by every algorithm.
func TestQuickExtractedAlwaysContained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := randomGraph(rng, 20, 4, 0.25)
		pattern := bfsExtract(rng, target, 1+rng.Intn(10))
		for _, algo := range allAlgorithms {
			if !algo.Contains(pattern, target) {
				t.Logf("%s missed extracted subgraph (seed %d)", algo.Name(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFindEmbeddingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	found := 0
	for i := 0; i < 200; i++ {
		target := randomGraph(rng, 12, 3, 0.3)
		pattern := bfsExtract(rng, target, 1+rng.Intn(6))
		m := FindEmbedding(pattern, target)
		if m == nil {
			t.Fatalf("FindEmbedding nil for extracted subgraph (iter %d)", i)
		}
		if err := CheckEmbedding(pattern, target, m); err != nil {
			t.Fatalf("invalid embedding: %v", err)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no cases exercised")
	}
	// negative case
	if m := FindEmbedding(graph.Path(9, 9), graph.Path(1, 2)); m != nil {
		t.Fatal("FindEmbedding returned mapping for impossible pattern")
	}
	// empty pattern gets empty, non-nil mapping
	if m := FindEmbedding(graph.NewBuilder().MustBuild(), graph.Path(1)); m == nil || len(m) != 0 {
		t.Fatal("empty pattern embedding should be empty non-nil")
	}
}

func TestCheckEmbeddingRejects(t *testing.T) {
	p := graph.Path(1, 2)
	tg := graph.Path(1, 2, 1)
	if err := CheckEmbedding(p, tg, []int{0}); err == nil {
		t.Error("short mapping accepted")
	}
	if err := CheckEmbedding(p, tg, []int{0, 0}); err == nil {
		t.Error("non-injective mapping accepted")
	}
	if err := CheckEmbedding(p, tg, []int{0, 5}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
	if err := CheckEmbedding(p, tg, []int{1, 0}); err == nil {
		t.Error("label-violating mapping accepted")
	}
	if err := CheckEmbedding(p, tg, []int{0, 2}); err == nil {
		t.Error("edge-dropping mapping accepted")
	}
	if err := CheckEmbedding(p, tg, []int{0, 1}); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
}

func TestCountEmbeddings(t *testing.T) {
	const A graph.Label = 0
	edge := graph.Path(A, A)
	triangle := graph.Cycle(A, A, A)
	// every ordered pair of adjacent vertices: 3 edges × 2 = 6
	if got := CountEmbeddings(edge, triangle, 0); got != 6 {
		t.Errorf("edge in triangle: %d embeddings, want 6", got)
	}
	// limit should stop early
	if got := CountEmbeddings(edge, triangle, 2); got != 2 {
		t.Errorf("limited count = %d, want 2", got)
	}
	// path of 3 in triangle: 3 choices of middle × 2 orders = 6
	if got := CountEmbeddings(graph.Path(A, A, A), triangle, 0); got != 6 {
		t.Errorf("P3 in triangle: %d, want 6", got)
	}
	// no embedding
	if got := CountEmbeddings(graph.Path(9, 9), triangle, 0); got != 0 {
		t.Errorf("impossible pattern counted %d", got)
	}
	// empty pattern: exactly one (empty) embedding
	if got := CountEmbeddings(graph.NewBuilder().MustBuild(), triangle, 0); got != 1 {
		t.Errorf("empty pattern counted %d, want 1", got)
	}
	// K3 in K4, all same label: 4 choose 3 × 3! = 24
	if got := CountEmbeddings(triangle, graph.Clique(A, A, A, A), 0); got != 24 {
		t.Errorf("K3 in K4: %d, want 24", got)
	}
}

func TestQuickCountPositiveIffContains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := randomGraph(rng, 10, 3, 0.3)
		pattern := randomGraph(rng, 5, 3, 0.4)
		has := Brute{}.Contains(pattern, target)
		n := CountEmbeddings(pattern, target, 0)
		if has != (n > 0) {
			return false
		}
		m := FindEmbedding(pattern, target)
		return has == (m != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotoneUnderEdgeRemoval: removing an edge from the pattern
// can only make containment easier; adding an edge to the target likewise.
func TestQuickMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := randomGraph(rng, 10, 3, 0.35)
		pattern := bfsExtract(rng, target, 2+rng.Intn(5))
		if pattern.NumEdges() == 0 {
			return true
		}
		es := pattern.EdgeList()
		e := es[rng.Intn(len(es))]
		weaker, err := pattern.WithoutEdge(int(e.U), int(e.V))
		if err != nil {
			return false
		}
		for _, algo := range allAlgorithms {
			if algo.Contains(pattern, target) && !algo.Contains(weaker, target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphQLRefineLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		target := randomGraph(rng, 12, 3, 0.3)
		pattern := randomGraph(rng, 6, 3, 0.4)
		want := Brute{}.Contains(pattern, target)
		for _, lv := range []int{1, 2, 5} {
			if got := (GraphQL{RefineLevels: lv}).Contains(pattern, target); got != want {
				t.Fatalf("GQL levels=%d wrong verdict (iter %d)", lv, i)
			}
		}
	}
}

func BenchmarkContains(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	targets := make([]*graph.Graph, 50)
	patterns := make([]*graph.Graph, 50)
	for i := range targets {
		targets[i] = randomGraph(rng, 45, 6, 0.06)
		patterns[i] = bfsExtract(rng, targets[i], 4+rng.Intn(16))
	}
	for _, algo := range allAlgorithms[:3] {
		b.Run(algo.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := i % len(targets)
				algo.Contains(patterns[k], targets[k])
			}
		})
	}
}
