package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// WAL is an append-only frame log for one shard. Appends are not safe
// for concurrent use; the serving layer funnels them through the shard's
// owner goroutine, which is also what orders frames with the dataset
// mutations they record.
type WAL struct {
	fs   FS
	f    File
	path string
	size int64
	sync bool
	buf  []byte // reusable frame assembly buffer
	// broken latches after a failed append whose rollback also failed:
	// the segment may end in a torn frame, and appending past it would
	// let recovery's torn-tail truncation silently discard the later —
	// already-acknowledged — frames. A broken WAL refuses every
	// further append until a snapshot rotation replaces the segment.
	broken bool
}

// AppendError wraps a failed WAL append. Retryable reports that the
// segment was rolled back to its last intact frame, so re-appending
// the same payload is safe (the basis for the serve layer's bounded
// retry-with-backoff under the fail-update policy). A non-retryable
// AppendError means the segment is poisoned until rotation.
type AppendError struct {
	Path      string
	Err       error
	Retryable bool
}

func (e *AppendError) Error() string {
	state := "poisoned until rotation"
	if e.Retryable {
		state = "rolled back, retryable"
	}
	return fmt.Sprintf("persist: WAL %s append failed (%s): %v", e.Path, state, e.Err)
}

func (e *AppendError) Unwrap() error { return e.Err }

// IsRetryableAppend reports whether err is a WAL append failure after
// which the segment was restored to its last intact frame, making an
// immediate re-append of the same payload safe.
func IsRetryableAppend(err error) bool {
	var ae *AppendError
	return errors.As(err, &ae) && ae.Retryable
}

// CreateWAL creates (truncating any previous file) a WAL segment with
// the given shard index and base epoch in its header. sync selects
// fsync-per-append; in sync mode the parent directory is fsynced too —
// a file's own fsync does not commit its directory entry, and a
// rotation whose dirent is lost in a crash would silently drop every
// acknowledged batch the segment held.
func CreateWAL(path string, shard int, baseEpoch uint64, sync bool) (*WAL, error) {
	return CreateWALFS(OSFS, path, shard, baseEpoch, sync)
}

// CreateWALFS is CreateWAL writing through an explicit filesystem.
func CreateWALFS(fsys FS, path string, shard int, baseEpoch uint64, sync bool) (*WAL, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := appendWALHeader(nil, shard, baseEpoch)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{fs: fsys, f: f, path: path, size: int64(len(hdr)), sync: sync}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := syncDirFS(fsys, path); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// OpenWALAppend reopens an existing segment for appending after
// recovery, truncating it to truncAt first (the offset just past the
// last intact frame, as reported by ReadWALFile) so a torn tail never
// precedes fresh frames.
func OpenWALAppend(path string, shard int, truncAt int64, sync bool) (*WAL, error) {
	return OpenWALAppendFS(OSFS, path, shard, truncAt, sync)
}

// OpenWALAppendFS is OpenWALAppend writing through an explicit
// filesystem.
func OpenWALAppendFS(fsys FS, path string, shard int, truncAt int64, sync bool) (*WAL, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if truncAt < walHeaderSize {
		f.Close()
		return nil, fmt.Errorf("persist: WAL truncation offset %d inside the header", truncAt)
	}
	if err := f.Truncate(truncAt); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(truncAt, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{fs: fsys, f: f, path: path, size: truncAt, sync: sync}, nil
}

// Append writes one frame and, when the WAL is in sync mode, fsyncs it
// before returning — the durability point of an update batch.
//
// A failed append leaves the file in an untrustworthy state: it may end
// in a torn frame (short write), or in bytes whose durability is
// unknowable (a failed fsync — the page cache's state after
// fsyncgate-style errors cannot be trusted), and a frame appended after
// either would be cut off by recovery's torn-tail truncation even
// though its batch was acknowledged. Append first tries to roll the
// segment back to the last intact frame (truncate + seek); if the
// rollback succeeds the returned *AppendError is Retryable — the caller
// may re-append the same payload, which rewrites the frame from scratch
// and fsyncs it again. If the rollback itself fails the segment is
// poisoned and refuses all further appends until a snapshot rotation
// opens a fresh segment.
func (w *WAL) Append(payload []byte) error {
	if w.broken {
		return fmt.Errorf("persist: WAL %s is poisoned by an earlier failed append; awaiting rotation", w.path)
	}
	w.buf = appendFrame(w.buf[:0], payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return w.appendFailed(err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return w.appendFailed(err)
		}
	}
	w.size += int64(len(w.buf))
	return nil
}

// appendFailed handles a failed write or fsync: roll back to the last
// intact frame if possible (retryable), poison the segment otherwise.
func (w *WAL) appendFailed(cause error) error {
	if err := w.f.Truncate(w.size); err == nil {
		if _, err := w.f.Seek(w.size, io.SeekStart); err == nil {
			return &AppendError{Path: w.path, Err: cause, Retryable: true}
		}
	}
	w.broken = true
	return &AppendError{Path: w.path, Err: cause, Retryable: false}
}

// Broken reports whether the segment is poisoned (refusing appends
// until rotation).
func (w *WAL) Broken() bool { return w.broken }

// Size returns the current file size in bytes (header + intact frames).
func (w *WAL) Size() int64 { return w.size }

// Path returns the segment's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs and closes the segment.
func (w *WAL) Close() error {
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CloseRaw closes the segment without the final fsync — the
// crash-shaped shutdown: whatever the kernel already has is all a
// recovery may see, exactly as if the process had died.
func (w *WAL) CloseRaw() error { return w.f.Close() }

// WALFrame is one intact frame read back from a segment, with the byte
// offset just past it (the truncation point if this is the last intact
// frame).
type WALFrame struct {
	Payload []byte
	End     int64
}

// ReadWALFile reads a segment's intact frames. A torn tail — partial
// header, partial frame, CRC failure — is not an error: the intact
// prefix is returned along with the offset it ends at, and torn reports
// whether anything was cut. Structural problems (wrong magic, wrong
// shard) are errors.
func ReadWALFile(path string, shard int) (baseEpoch uint64, frames []WALFrame, end int64, torn bool, err error) {
	return ReadWALFileFS(OSFS, path, shard)
}

// ReadWALFileFS is ReadWALFile reading through an explicit filesystem.
func ReadWALFileFS(fsys FS, path string, shard int) (baseEpoch uint64, frames []WALFrame, end int64, torn bool, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, nil, 0, false, err
	}
	baseEpoch, err = parseWALHeader(data, shard)
	if err != nil {
		if errors.Is(err, ErrTornFrame) {
			// Crashed before the header was durable: an empty segment.
			return 0, nil, walHeaderSize, true, nil
		}
		return 0, nil, 0, false, err
	}
	off := int64(walHeaderSize)
	rest := data[walHeaderSize:]
	for {
		payload, next, ferr := readFrame(rest)
		if ferr == io.EOF {
			return baseEpoch, frames, off, false, nil
		}
		if ferr != nil {
			if errors.Is(ferr, ErrTornFrame) {
				return baseEpoch, frames, off, true, nil
			}
			return 0, nil, 0, false, ferr
		}
		off += int64(frameHeaderSize + len(payload))
		frames = append(frames, WALFrame{Payload: payload, End: off})
		rest = next
	}
}

// WriteSnapshotFile atomically writes a snapshot file: the payload is
// framed behind a snapshot header, written to a temporary sibling,
// fsynced, and renamed into place, with the directory fsynced after the
// rename. A crash at any point leaves either no file or a complete one.
func WriteSnapshotFile(path string, shard int, payload []byte) error {
	return WriteSnapshotFileFS(OSFS, path, shard, payload)
}

// WriteSnapshotFileFS is WriteSnapshotFile writing through an explicit
// filesystem.
func WriteSnapshotFileFS(fsys FS, path string, shard int, payload []byte) error {
	buf := appendSnapHeader(nil, shard)
	buf = appendFrame(buf, payload)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return syncDirFS(fsys, path)
}

// ReadSnapshotFile reads and validates a snapshot file, returning its
// frame payload.
func ReadSnapshotFile(path string, shard int) ([]byte, error) {
	return ReadSnapshotFileFS(OSFS, path, shard)
}

// ReadSnapshotFileFS is ReadSnapshotFile reading through an explicit
// filesystem.
func ReadSnapshotFileFS(fsys FS, path string, shard int) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := parseSnapHeader(data, shard); err != nil {
		return nil, err
	}
	payload, rest, err := readFrame(data[snapHeaderSize:])
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: %w", path, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("persist: snapshot %s has %d trailing bytes", path, len(rest))
	}
	return payload, nil
}
