package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame codec: every payload persisted — one WAL batch, one shard
// snapshot — is wrapped in a frame of
//
//	u32 payload length | u32 CRC-32 (IEEE) of the payload | payload
//
// A reader accepts a frame only when the full payload is present and the
// CRC matches; anything else is a torn tail, reported as such so the
// caller can truncate to the last intact frame.

const frameHeaderSize = 8

// maxFramePayload bounds a frame's declared payload so a corrupt length
// word cannot trigger a giant allocation. Snapshots of very large shards
// are the biggest frames; 1 GiB is far above anything the system writes.
const maxFramePayload = 1 << 30

// ErrTornFrame reports a frame that is incomplete or fails its CRC — the
// expected shape of a WAL tail after a crash.
var ErrTornFrame = errors.New("persist: torn frame")

// appendFrame wraps payload in a frame and appends it to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame decodes one frame from the front of data, returning the
// payload and the remaining bytes. io.EOF means data was empty (a clean
// end); ErrTornFrame means a partial or corrupt frame.
func readFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, io.EOF
	}
	if len(data) < frameHeaderSize {
		return nil, nil, ErrTornFrame
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("%w: implausible payload length %d", ErrTornFrame, n)
	}
	body := data[frameHeaderSize:]
	if uint32(len(body)) < n {
		return nil, nil, ErrTornFrame
	}
	payload = body[:n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("%w: CRC mismatch", ErrTornFrame)
	}
	return payload, body[n:], nil
}

// File headers. Both file kinds start with a 4-byte magic and a u32
// format version; WAL files add the shard index and the segment's base
// epoch so a misplaced file fails loudly instead of replaying into the
// wrong shard.

const formatVersion = 1

var (
	walMagic  = [4]byte{'G', 'C', 'W', 'L'}
	snapMagic = [4]byte{'G', 'C', 'S', 'N'}
)

const (
	walHeaderSize  = 4 + 4 + 4 + 8 // magic, version, shard, base epoch
	snapHeaderSize = 4 + 4 + 4     // magic, version, shard
)

func appendWALHeader(buf []byte, shard int, baseEpoch uint64) []byte {
	buf = append(buf, walMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shard))
	return binary.LittleEndian.AppendUint64(buf, baseEpoch)
}

// parseWALHeader validates a WAL file header, returning its base epoch.
func parseWALHeader(data []byte, shard int) (baseEpoch uint64, err error) {
	if len(data) < walHeaderSize {
		return 0, ErrTornFrame // crashed before the header hit disk
	}
	if [4]byte(data[0:4]) != walMagic {
		return 0, fmt.Errorf("persist: not a WAL file (bad magic %q)", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		return 0, fmt.Errorf("persist: unsupported WAL format version %d", v)
	}
	if got := int(binary.LittleEndian.Uint32(data[8:12])); got != shard {
		return 0, fmt.Errorf("persist: WAL file belongs to shard %d, not %d", got, shard)
	}
	return binary.LittleEndian.Uint64(data[12:walHeaderSize]), nil
}

func appendSnapHeader(buf []byte, shard int) []byte {
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	return binary.LittleEndian.AppendUint32(buf, uint32(shard))
}

func parseSnapHeader(data []byte, shard int) error {
	if len(data) < snapHeaderSize {
		return fmt.Errorf("persist: snapshot file too short (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != snapMagic {
		return fmt.Errorf("persist: not a snapshot file (bad magic %q)", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		return fmt.Errorf("persist: unsupported snapshot format version %d", v)
	}
	if got := int(binary.LittleEndian.Uint32(data[8:12])); got != shard {
		return fmt.Errorf("persist: snapshot file belongs to shard %d, not %d", got, shard)
	}
	return nil
}
