package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"gcplus/internal/bitset"
	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

// Payload codecs for the two frame kinds: WAL batches and shard
// snapshots. Everything is uvarints, float64 bit patterns and
// length-prefixed graph blobs in the text codec (internal/graph) — no
// reflection, no allocation surprises, and decoders that fail loudly on
// any inconsistency so the fuzz target (FuzzWALDecode) can assert they
// never panic on corrupt input.

// dec is a bounds-checked little decoder over a payload; the first
// failure latches and every later read returns zero values.
type dec struct {
	data []byte
	err  error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: "+format, args...)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

// count reads a uvarint meant as an element count and bounds it by the
// remaining payload assuming at least minBytes bytes per element, so a
// corrupt count cannot drive a giant allocation.
func (d *dec) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(len(d.data)/minBytes) {
		d.fail("count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.fail("truncated byte")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *dec) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

func (d *dec) bytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

func (d *dec) graph() *graph.Graph {
	blob := d.bytes()
	if d.err != nil {
		return nil
	}
	g, err := graph.Unmarshal(blob)
	if err != nil {
		d.fail("graph blob: %v", err)
		return nil
	}
	return g
}

func (d *dec) bitset() *bitset.Set {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	words := make([]uint64, n)
	for i := range words {
		if len(d.data) < 8 {
			d.fail("truncated bitset word")
			return nil
		}
		words[i] = binary.LittleEndian.Uint64(d.data)
		d.data = d.data[8:]
	}
	return bitset.FromWords(words)
}

func appendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendBitset(buf []byte, s *bitset.Set) []byte {
	words := s.Words()
	buf = binary.AppendUvarint(buf, uint64(len(words)))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// WALOp is one logged operation: the resolved op in shard-local id space
// plus the global id the serving layer assigned (ADD) or targeted
// (DEL/UA/UR), so replay can rebuild the global id map.
type WALOp struct {
	Op       changeplan.Op
	GlobalID int
}

// WALBatch is one WAL frame's payload: the shard's share of one update
// batch. Ops is empty for batches that did not touch the shard — the
// frame still exists, keeping per-shard epochs dense (see the package
// comment's crash-safety argument).
type WALBatch struct {
	Epoch uint64
	Ops   []WALOp
}

// EncodeWALBatch serializes a batch into a frame payload.
func EncodeWALBatch(b *WALBatch) ([]byte, error) {
	buf := binary.AppendUvarint(nil, b.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		if op.GlobalID < 0 {
			return nil, fmt.Errorf("persist: negative global id %d in WAL batch", op.GlobalID)
		}
		buf = binary.AppendUvarint(buf, uint64(op.GlobalID))
		var err error
		if buf, err = op.Op.AppendBinary(buf); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeWALBatch parses a frame payload produced by EncodeWALBatch.
func DecodeWALBatch(payload []byte) (*WALBatch, error) {
	d := &dec{data: payload}
	b := &WALBatch{Epoch: d.uvarint()}
	n := d.count(2)
	for i := 0; i < n && d.err == nil; i++ {
		gid := d.uvarint()
		if d.err != nil {
			break
		}
		op, rest, err := changeplan.DecodeOp(d.data)
		if err != nil {
			d.fail("op %d: %v", i, err)
			break
		}
		d.data = rest
		b.Ops = append(b.Ops, WALOp{Op: op, GlobalID: int(gid)})
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after WAL batch", len(d.data))
	}
	return b, nil
}

// ShardSnapshot is one shard's full durable state at an epoch.
type ShardSnapshot struct {
	// Epoch is the server dataset version the snapshot reflects.
	Epoch uint64
	// Dataset is the shard's dataset table and log position.
	Dataset *dataset.Snapshot
	// LocalToGlobal maps every shard-local graph id (live or deleted)
	// to its global id.
	LocalToGlobal []int
	// State is the shard runtime's warm state (cache + cost model).
	State *core.RuntimeState
}

// EncodeShardSnapshot serializes a shard snapshot into a frame payload.
func EncodeShardSnapshot(s *ShardSnapshot) ([]byte, error) {
	buf := binary.AppendUvarint(nil, s.Epoch)
	buf = binary.AppendUvarint(buf, s.Dataset.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(s.Dataset.Graphs)))
	for _, g := range s.Dataset.Graphs {
		if g == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = appendBytes(buf, graph.Marshal(g))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.LocalToGlobal)))
	for _, gid := range s.LocalToGlobal {
		if gid < 0 {
			return nil, fmt.Errorf("persist: negative global id %d in localToGlobal", gid)
		}
		buf = binary.AppendUvarint(buf, uint64(gid))
	}
	st := s.State
	buf = binary.AppendUvarint(buf, uint64(st.AvgTestCostN))
	buf = appendFloat64(buf, st.AvgTestCostMean)
	buf = appendFloat64(buf, st.AvgTestCostM2)
	if st.Cache == nil {
		return append(buf, 0), nil
	}
	buf = append(buf, 1)
	return appendCacheSnapshot(buf, st.Cache)
}

func appendCacheSnapshot(buf []byte, c *cache.Snapshot) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(c.NextID))
	buf = binary.AppendUvarint(buf, uint64(c.Clock))
	buf = binary.AppendUvarint(buf, c.AppliedSeq)
	for _, ctr := range []int64{c.Admitted, c.Evicted, c.Purges, c.Validates, c.RepairedBits, c.RepairDropped} {
		if ctr < 0 {
			return nil, fmt.Errorf("persist: negative cache counter %d", ctr)
		}
		buf = binary.AppendUvarint(buf, uint64(ctr))
	}
	buf = append(buf, boolByte(c.RelIncomplete))
	buf = binary.AppendUvarint(buf, uint64(len(c.Entries)))
	buf = binary.AppendUvarint(buf, uint64(c.WindowStart))
	for i := range c.Entries {
		e := &c.Entries[i]
		if e.ID < 0 || e.Hits < 0 || e.LastUsed < 0 {
			return nil, fmt.Errorf("persist: negative entry field on entry %d", i)
		}
		buf = binary.AppendUvarint(buf, uint64(e.ID))
		buf = append(buf, byte(e.Kind))
		buf = appendBytes(buf, graph.Marshal(e.Query))
		buf = binary.AppendUvarint(buf, e.Seq)
		buf = appendFloat64(buf, e.R)
		buf = appendFloat64(buf, e.CostEst)
		buf = binary.AppendUvarint(buf, uint64(e.Hits))
		buf = binary.AppendUvarint(buf, uint64(e.LastUsed))
		buf = appendBitset(buf, e.Answer)
		buf = appendBitset(buf, e.Valid)
		buf = append(buf, boolByte(e.RelKnown))
		buf = binary.AppendUvarint(buf, uint64(len(e.Sup)))
		for _, j := range e.Sup {
			buf = binary.AppendUvarint(buf, uint64(j))
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.Sub)))
		for _, j := range e.Sub {
			buf = binary.AppendUvarint(buf, uint64(j))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.RepairQueue)))
	for _, r := range c.RepairQueue {
		buf = binary.AppendUvarint(buf, uint64(r.EntryIdx))
		buf = binary.AppendUvarint(buf, uint64(r.GraphID))
	}
	return buf, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// DecodeShardSnapshot parses a frame payload produced by
// EncodeShardSnapshot.
func DecodeShardSnapshot(payload []byte) (*ShardSnapshot, error) {
	d := &dec{data: payload}
	s := &ShardSnapshot{Epoch: d.uvarint(), Dataset: &dataset.Snapshot{Seq: d.uvarint()}}
	ngraphs := d.count(1)
	if d.err == nil {
		s.Dataset.Graphs = make([]*graph.Graph, ngraphs)
		for i := 0; i < ngraphs && d.err == nil; i++ {
			if d.byte() != 0 {
				s.Dataset.Graphs[i] = d.graph()
			}
		}
	}
	nloc := d.count(1)
	if d.err == nil {
		s.LocalToGlobal = make([]int, nloc)
		for i := range s.LocalToGlobal {
			s.LocalToGlobal[i] = int(d.uvarint())
		}
	}
	s.State = &core.RuntimeState{
		AvgTestCostN:    int64(d.uvarint()),
		AvgTestCostMean: d.float64(),
		AvgTestCostM2:   d.float64(),
	}
	if d.byte() != 0 {
		s.State.Cache = decodeCacheSnapshot(d)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after shard snapshot", len(d.data))
	}
	return s, nil
}

func decodeCacheSnapshot(d *dec) *cache.Snapshot {
	c := &cache.Snapshot{
		NextID:     int(d.uvarint()),
		Clock:      int64(d.uvarint()),
		AppliedSeq: d.uvarint(),
	}
	for _, ctr := range []*int64{&c.Admitted, &c.Evicted, &c.Purges, &c.Validates, &c.RepairedBits, &c.RepairDropped} {
		*ctr = int64(d.uvarint())
	}
	c.RelIncomplete = d.byte() != 0
	n := d.count(8)
	c.WindowStart = int(d.uvarint())
	if d.err != nil {
		return nil
	}
	c.Entries = make([]cache.EntrySnapshot, n)
	for i := 0; i < n && d.err == nil; i++ {
		e := &c.Entries[i]
		e.ID = int(d.uvarint())
		kind := d.byte()
		if kind > byte(cache.KindSuper) {
			d.fail("entry %d: unknown kind %d", i, kind)
			return nil
		}
		e.Kind = cache.Kind(kind)
		e.Query = d.graph()
		e.Seq = d.uvarint()
		e.R = d.float64()
		e.CostEst = d.float64()
		e.Hits = int64(d.uvarint())
		e.LastUsed = int64(d.uvarint())
		e.Answer = d.bitset()
		e.Valid = d.bitset()
		e.RelKnown = d.byte() != 0
		nsup := d.count(1)
		for j := 0; j < nsup && d.err == nil; j++ {
			e.Sup = append(e.Sup, int(d.uvarint()))
		}
		nsub := d.count(1)
		for j := 0; j < nsub && d.err == nil; j++ {
			e.Sub = append(e.Sub, int(d.uvarint()))
		}
	}
	nrep := d.count(2)
	for i := 0; i < nrep && d.err == nil; i++ {
		c.RepairQueue = append(c.RepairQueue, cache.RepairRef{
			EntryIdx: int(d.uvarint()),
			GraphID:  int(d.uvarint()),
		})
	}
	return c
}
