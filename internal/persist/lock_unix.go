//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on <dir>/LOCK so two
// server processes can never recover from and append to the same data
// directory concurrently (a restart manager starting the new instance
// while the old one is still draining would otherwise interleave
// writes into the same segments). The lock dies with the process, so a
// crash never leaves the directory wedged; the LOCK file itself is
// inert on disk.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/LOCK", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data directory %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
