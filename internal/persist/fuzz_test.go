package persist

import (
	"bytes"
	"testing"

	"gcplus/internal/changeplan"
)

// FuzzWALDecode drives arbitrary bytes through the full WAL read path —
// frame splitting plus batch decoding — asserting it never panics and
// that every batch it does accept survives an encode → decode round
// trip structurally intact (the graph text codec is not byte-canonical
// for arbitrary inputs — comments, whitespace — so the invariant is
// structural equality after re-encoding, not byte identity).
func FuzzWALDecode(f *testing.F) {
	// Seed with a realistic two-frame stream.
	b1, err := EncodeWALBatch(&WALBatch{
		Epoch: 1,
		Ops: []WALOp{
			{Op: changeplan.AddOp(testGraph("seed")), GlobalID: 3},
			{Op: changeplan.AddEdgeOp(0, 0, 1), GlobalID: 0},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	b2, err := EncodeWALBatch(&WALBatch{Epoch: 2})
	if err != nil {
		f.Fatal(err)
	}
	stream := appendFrame(appendFrame(nil, b1), b2)
	f.Add(stream)
	f.Add(b1)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			payload, next, err := readFrame(rest)
			if err != nil {
				break
			}
			batch, err := DecodeWALBatch(payload)
			if err == nil {
				re, err := EncodeWALBatch(batch)
				if err != nil {
					t.Fatalf("decoded batch fails to re-encode: %v", err)
				}
				back, err := DecodeWALBatch(re)
				if err != nil {
					t.Fatalf("re-encoded batch fails to decode: %v", err)
				}
				if back.Epoch != batch.Epoch || len(back.Ops) != len(batch.Ops) {
					t.Fatalf("round trip changed batch shape: %+v vs %+v", batch, back)
				}
				for i := range back.Ops {
					a, b := batch.Ops[i], back.Ops[i]
					if a.GlobalID != b.GlobalID || a.Op.Type != b.Op.Type ||
						a.Op.GraphID != b.Op.GraphID || a.Op.U != b.Op.U || a.Op.V != b.Op.V {
						t.Fatalf("round trip changed op %d: %+v vs %+v", i, a, b)
					}
					if (a.Op.Graph == nil) != (b.Op.Graph == nil) {
						t.Fatalf("round trip changed op %d graph presence", i)
					}
					if a.Op.Graph != nil &&
						(a.Op.Graph.NumVertices() != b.Op.Graph.NumVertices() ||
							a.Op.Graph.NumEdges() != b.Op.Graph.NumEdges()) {
						t.Fatalf("round trip changed op %d graph shape", i)
					}
				}
			}
			rest = next
		}
	})
}
