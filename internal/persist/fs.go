package persist

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam the persistence layer writes through. The
// default implementation (OSFS) delegates straight to the os package;
// fault-injection wrappers (internal/faultfs) interpose here to fail
// writes, fsyncs and renames on schedule without touching the real
// disk semantics underneath. The directory lock (flock) deliberately
// stays outside the seam: lock behaviour is kernel state, not I/O, and
// injecting faults there would only test the injector.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the subset of *os.File the persistence layer uses. Sync and
// Truncate are the interesting members for fault injection: a WAL's
// durability point is the fsync, and its self-healing path is the
// truncate back to the last intact frame.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS is the real filesystem. Package-level functions that do not
// take an FS use it.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)       { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
