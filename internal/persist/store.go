package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// Store manages the data directory's layout: one subdirectory per shard
// holding snapshot files and WAL segments, both named by the epoch they
// are anchored at (see the package comment). An open Store holds an
// exclusive advisory lock on the directory until Close.
type Store struct {
	fs     FS
	dir    string
	shards int
	lock   *os.File
}

// storeMeta is the store's authoritative identity, written once at
// creation. Recording the shard count here — rather than inferring it
// from which shard directories happen to be non-empty — is what makes
// partial first generations detectable: a crash mid-generation leaves
// files in a prefix of the shard dirs, and counting those would make
// the prefix look like a smaller, *complete* store (silently serving a
// fraction of the dataset after restart).
type storeMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const (
	metaFile    = "META"
	metaVersion = 1
)

func readMeta(fsys FS, dir string) (storeMeta, bool) {
	data, err := fsys.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return storeMeta{}, false
	}
	var m storeMeta
	if json.Unmarshal(data, &m) != nil || m.Version != metaVersion || m.Shards < 1 {
		return storeMeta{}, false
	}
	return m, true
}

func writeMeta(fsys FS, dir string, m storeMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, metaFile)
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return syncDirFS(fsys, path)
}

// OpenStore opens (creating if needed) a data directory for the given
// shard count and takes its exclusive lock — a second process opening
// the same directory fails loudly instead of corrupting the store. A
// directory created with a different shard count is rejected:
// partitions are not portable across shard counts (see StateShards for
// adopting a directory's own count). Debris from a boot that never
// completed its first snapshot generation — partial generations, empty
// WAL segments — is cleared: nothing was ever recoverable or
// acknowledged from it, and left in place it would wedge every future
// boot.
func OpenStore(dir string, shards int) (*Store, error) {
	return OpenStoreFS(OSFS, dir, shards)
}

// OpenStoreFS is OpenStore reading and writing through an explicit
// filesystem. The directory lock is always taken on the real
// filesystem: advisory locks are kernel state, not file I/O, and the
// fault injector has no business there.
func OpenStoreFS(fsys FS, dir string, shards int) (*Store, error) {
	if shards < 1 {
		return nil, fmt.Errorf("persist: store needs at least 1 shard, got %d", shards)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{fs: fsys, dir: dir, shards: shards, lock: lock}
	if m, ok := readMeta(fsys, dir); ok {
		if m.Shards != shards {
			s.Close()
			return nil, fmt.Errorf("persist: %s was created for %d shards, not %d; shard counts are not portable", dir, m.Shards, shards)
		}
		if len(completeEpochsIn(fsys, dir, m.Shards)) == 0 {
			for i := 0; i < m.Shards; i++ {
				fsys.RemoveAll(shardDirIn(dir, i))
			}
		}
	} else if err := writeMeta(fsys, dir, storeMeta{Version: metaVersion, Shards: shards}); err != nil {
		s.Close()
		return nil, err
	}
	for i := 0; i < shards; i++ {
		if err := fsys.MkdirAll(s.ShardDir(i), 0o755); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Close releases the directory lock. The Store is unusable afterwards.
func (s *Store) Close() {
	unlockDir(s.lock)
	s.lock = nil
}

// StateShards reports the shard count a data directory was created
// with (from its META file), and false for a directory that is not a
// store yet. Front-ends use it to adopt the persisted layout instead
// of requiring the operator to repeat the original -shards value.
func StateShards(dir string) (int, bool) {
	m, ok := readMeta(OSFS, dir)
	return m.Shards, ok
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// FS returns the filesystem the store reads and writes through. WAL
// and snapshot I/O anchored at this store must go through it so fault
// injection covers the whole persistence surface.
func (s *Store) FS() FS { return s.fs }

// Shards returns the shard count the store was opened with.
func (s *Store) Shards() int { return s.shards }

// ShardDir returns shard i's subdirectory.
func (s *Store) ShardDir(i int) string { return shardDirIn(s.dir, i) }

func shardDirIn(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// SnapshotPath returns the snapshot file path for (shard, epoch).
func (s *Store) SnapshotPath(shard int, epoch uint64) string {
	return filepath.Join(s.ShardDir(shard), fmt.Sprintf("snap-%016x.snap", epoch))
}

// WALPath returns the WAL segment path for (shard, base epoch).
func (s *Store) WALPath(shard int, epoch uint64) string {
	return filepath.Join(s.ShardDir(shard), fmt.Sprintf("wal-%016x.log", epoch))
}

// HasState reports whether the directory holds recoverable state: at
// least one snapshot generation complete across every shard — the
// signal that a boot should recover rather than cold-start. Partial
// generations alone are not state (nothing was ever acknowledged
// before the first generation completed).
func (s *Store) HasState() bool {
	return len(s.CompleteSnapshotEpochs()) > 0
}

// HasState reports whether dir holds recoverable state, without
// opening (or locking) it — cmd front-ends use it to decide whether an
// initial dataset is required. Same predicate as Store.HasState, with
// the shard count read from the directory itself.
func HasState(dir string) bool {
	n, ok := StateShards(dir)
	return ok && len(completeEpochsIn(OSFS, dir, n)) > 0
}

// epochsOf lists the epochs of shard i's files with the given prefix and
// suffix, ascending.
func (s *Store) epochsOf(shard int, prefix, suffix string) []uint64 {
	return epochsIn(s.fs, s.ShardDir(shard), prefix, suffix)
}

// epochsIn lists the epochs encoded in a directory's file names with
// the given prefix and suffix, ascending. Unparsable names are ignored.
func epochsIn(fsys FS, dir, prefix, suffix string) []uint64 {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		v, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// CompleteSnapshotEpochs returns the epochs for which *every* shard
// holds a snapshot file, descending (newest first). Recovery uses only
// the newest entry — an older generation's WAL predecessors were
// deleted when the newer one became durable, so "falling back" would
// silently roll back acknowledged batches; a corrupt newest generation
// is a loud boot failure instead.
func (s *Store) CompleteSnapshotEpochs() []uint64 {
	return completeEpochsIn(s.fs, s.dir, s.shards)
}

func completeEpochsIn(fsys FS, dir string, shards int) []uint64 {
	counts := make(map[uint64]int)
	for i := 0; i < shards; i++ {
		for _, e := range epochsIn(fsys, shardDirIn(dir, i), "snap-", ".snap") {
			counts[e]++
		}
	}
	var out []uint64
	for e, n := range counts {
		if n == shards {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] > out[b] })
	return out
}

// WALSegments returns shard i's segment base epochs, ascending.
func (s *Store) WALSegments(shard int) []uint64 {
	return s.epochsOf(shard, "wal-", ".log")
}

// RemoveObsolete deletes snapshot generations and WAL segments strictly
// older than the given epoch — called after a snapshot at that epoch is
// durable on every shard, at which point the older chain can never be
// needed again. Removal failures are ignored (stale files cost disk,
// not correctness: recovery always prefers the newest complete
// generation).
func (s *Store) RemoveObsolete(epoch uint64) {
	for i := 0; i < s.shards; i++ {
		for _, e := range s.epochsOf(i, "snap-", ".snap") {
			if e < epoch {
				s.fs.Remove(s.SnapshotPath(i, e))
			}
		}
		for _, e := range s.epochsOf(i, "wal-", ".log") {
			if e < epoch {
				s.fs.Remove(s.WALPath(i, e))
			}
		}
	}
}

// RemoveSnapshotsAfter deletes snapshot files newer than epoch — at
// recovery time, epoch is the newest *complete* generation, so newer
// files are the partial debris of generations that never completed and
// must not survive to pair up with a future attempt at the same epoch.
func (s *Store) RemoveSnapshotsAfter(epoch uint64) {
	for i := 0; i < s.shards; i++ {
		for _, e := range s.epochsOf(i, "snap-", ".snap") {
			if e > epoch {
				s.fs.Remove(s.SnapshotPath(i, e))
			}
		}
	}
}

// syncDirFS fsyncs the directory containing path, making a just-created
// or just-renamed file's directory entry durable. Failures propagate —
// a lost dirent for a WAL segment would silently drop every
// acknowledged batch the segment holds — except EINVAL, the errno of
// filesystems that do not support directory fsync at all (the dirent
// is inherently best-effort there, and erroring would make such
// filesystems unusable rather than safer).
func syncDirFS(fsys FS, path string) error {
	d, err := fsys.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
