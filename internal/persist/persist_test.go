package persist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1000)}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		got, next, err := readFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		rest = next
	}
	if _, _, err := readFrame(rest); err == nil || len(rest) != 0 {
		t.Fatalf("want clean EOF at end, got rest=%d", len(rest))
	}
}

// TestFrameTornTruncation checks that every strict prefix of a valid
// frame stream decodes to a prefix of the frames plus a torn tail —
// never garbage, never an intact phantom frame.
func TestFrameTornTruncation(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte("bb"), []byte("the third payload")}
	var full []byte
	ends := []int{}
	for _, p := range payloads {
		full = appendFrame(full, p)
		ends = append(ends, len(full))
	}
	for cut := 0; cut < len(full); cut++ {
		data := full[:cut]
		var got int
		for {
			payload, rest, err := readFrame(data)
			if err != nil {
				break
			}
			if !bytes.Equal(payload, payloads[got]) {
				t.Fatalf("cut %d: frame %d corrupted", cut, got)
			}
			got++
			data = rest
		}
		wantIntact := 0
		for _, e := range ends {
			if cut >= e {
				wantIntact++
			}
		}
		if got != wantIntact {
			t.Fatalf("cut %d: decoded %d frames, want %d", cut, got, wantIntact)
		}
	}
	// Flip one payload byte: CRC must reject the frame.
	corrupt := append([]byte(nil), full...)
	corrupt[frameHeaderSize] ^= 0x01
	if _, _, err := readFrame(corrupt); err == nil {
		t.Fatal("corrupted frame passed its CRC")
	}
}

func TestWALAppendReadTruncate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0.log")
	w, err := CreateWAL(path, 3, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	base, frames, end, torn, err := ReadWALFile(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if base != 7 || torn || len(frames) != 3 {
		t.Fatalf("base=%d torn=%v frames=%d, want 7/false/3", base, torn, len(frames))
	}
	fi, _ := os.Stat(path)
	if end != fi.Size() {
		t.Fatalf("end %d != file size %d", end, fi.Size())
	}

	// Simulate a torn tail and verify the intact prefix plus the
	// truncation offset survive, and appending after truncation works.
	if err := os.Truncate(path, frames[2].End-1); err != nil {
		t.Fatal(err)
	}
	_, frames2, end2, torn2, err := ReadWALFile(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !torn2 || len(frames2) != 2 || end2 != frames[1].End {
		t.Fatalf("after tear: torn=%v frames=%d end=%d, want true/2/%d", torn2, len(frames2), end2, frames[1].End)
	}
	w2, err := OpenWALAppend(path, 3, end2, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, frames3, _, torn3, err := ReadWALFile(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if torn3 || len(frames3) != 3 || string(frames3[2].Payload) != "four" {
		t.Fatalf("after re-append: torn=%v frames=%d", torn3, len(frames3))
	}

	// Wrong shard: loud structural error.
	if _, _, _, _, err := ReadWALFile(path, 4); err == nil {
		t.Fatal("WAL for shard 3 accepted as shard 4")
	}
}

// TestWALPoisonedAfterFailedAppend pins the acknowledged-batch-loss
// guard: once an append fails, the segment refuses further appends
// (instead of writing past a possibly-torn frame that recovery would
// truncate, discarding acknowledged batches behind it).
func TestWALPoisonedAfterFailedAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	w, err := CreateWAL(path, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	w.f.Close() // force the next write to fail
	if err := w.Append([]byte("fails")); err == nil {
		t.Fatal("append on a closed file succeeded")
	}
	if err := w.Append([]byte("after")); err == nil {
		t.Fatal("poisoned WAL accepted an append")
	}
	if w.Size() != goodSize {
		t.Fatalf("size advanced past the last intact frame: %d vs %d", w.Size(), goodSize)
	}
	// The intact prefix is still recoverable.
	_, frames, _, _, err := ReadWALFile(path, 0)
	if err != nil || len(frames) != 1 || string(frames[0].Payload) != "good" {
		t.Fatalf("intact prefix lost: %v, %d frames", err, len(frames))
	}
}

func testGraph(name string) *graph.Graph {
	b := graph.NewBuilder()
	b.SetName(name)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddVertex(1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, _ := b.Build()
	return g
}

func TestWALBatchRoundTrip(t *testing.T) {
	batch := &WALBatch{
		Epoch: 42,
		Ops: []WALOp{
			{Op: changeplan.AddOp(testGraph("added")), GlobalID: 17},
			{Op: changeplan.DeleteOp(3), GlobalID: 12},
			{Op: changeplan.AddEdgeOp(2, 0, 1), GlobalID: 9},
			{Op: changeplan.RemoveEdgeOp(1, 1, 2), GlobalID: 5},
		},
	}
	payload, err := EncodeWALBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWALBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != batch.Epoch || len(got.Ops) != len(batch.Ops) {
		t.Fatalf("epoch/ops mismatch: %+v", got)
	}
	for i, op := range got.Ops {
		want := batch.Ops[i]
		if op.GlobalID != want.GlobalID || op.Op.Type != want.Op.Type ||
			op.Op.GraphID != want.Op.GraphID || op.Op.U != want.Op.U || op.Op.V != want.Op.V {
			t.Fatalf("op %d: got %+v want %+v", i, op, want)
		}
	}
	g := got.Ops[0].Op.Graph
	if g == nil || g.Name() != "added" || g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("ADD graph did not round-trip: %v", g)
	}
	// Empty batch (untouched shard) round-trips too.
	empty, err := EncodeWALBatch(&WALBatch{Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWALBatch(empty)
	if err != nil || back.Epoch != 7 || len(back.Ops) != 0 {
		t.Fatalf("empty batch: %v %+v", err, back)
	}
	// Trailing garbage is rejected.
	if _, err := DecodeWALBatch(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	g0, g2 := testGraph("g0"), testGraph("g2")
	ans := bitset.FromIndices(0, 2)
	valid := bitset.FromIndices(0)
	snap := &ShardSnapshot{
		Epoch: 9,
		Dataset: &dataset.Snapshot{
			Graphs: []*graph.Graph{g0, nil, g2}, // id 1 deleted
			Seq:    13,
		},
		LocalToGlobal: []int{0, 4, 8},
		State: &core.RuntimeState{
			AvgTestCostN:    5,
			AvgTestCostMean: 1.5e-6,
			AvgTestCostM2:   math.Pi,
			Cache: &cache.Snapshot{
				Entries: []cache.EntrySnapshot{
					{
						ID: 0, Query: testGraph("q0"), Kind: cache.KindSub,
						Answer: ans, Valid: valid, Seq: 13,
						R: 12.5, CostEst: 3e-6, Hits: 4, LastUsed: 99,
						RelKnown: true, Sup: []int{1}, Sub: nil,
					},
					{
						ID: 1, Query: testGraph("q1"), Kind: cache.KindSuper,
						Answer: bitset.New(0), Valid: bitset.FromIndices(1), Seq: 13,
						RelKnown: true, Sup: nil, Sub: []int{0},
					},
				},
				WindowStart: 1,
				NextID:      2,
				Clock:       7,
				AppliedSeq:  13,
				Admitted:    1, Evicted: 0, Purges: 0, Validates: 2,
				RepairedBits: 3, RepairDropped: 1,
				RepairQueue: []cache.RepairRef{{EntryIdx: 0, GraphID: 2}},
			},
		},
	}
	payload, err := EncodeShardSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || got.Dataset.Seq != 13 || len(got.Dataset.Graphs) != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Dataset.Graphs[1] != nil || got.Dataset.Graphs[0].Name() != "g0" || got.Dataset.Graphs[2].Name() != "g2" {
		t.Fatal("dataset graphs did not round-trip")
	}
	if len(got.LocalToGlobal) != 3 || got.LocalToGlobal[1] != 4 {
		t.Fatalf("localToGlobal: %v", got.LocalToGlobal)
	}
	st := got.State
	if st.AvgTestCostN != 5 || st.AvgTestCostMean != 1.5e-6 || st.AvgTestCostM2 != math.Pi {
		t.Fatalf("cost model: %+v", st)
	}
	c := st.Cache
	if c == nil || len(c.Entries) != 2 || c.WindowStart != 1 || c.NextID != 2 || c.Clock != 7 {
		t.Fatalf("cache header: %+v", c)
	}
	e0 := c.Entries[0]
	if e0.Query.Name() != "q0" || e0.Kind != cache.KindSub || !e0.Answer.Equal(ans) ||
		!e0.Valid.Equal(valid) || e0.R != 12.5 || e0.Hits != 4 || !e0.RelKnown ||
		len(e0.Sup) != 1 || e0.Sup[0] != 1 || len(e0.Sub) != 0 {
		t.Fatalf("entry 0: %+v", e0)
	}
	if c.RepairedBits != 3 || c.RepairDropped != 1 || len(c.RepairQueue) != 1 || c.RepairQueue[0].GraphID != 2 {
		t.Fatalf("repair state: %+v", c)
	}

	// No-cache snapshot round-trips with a nil cache.
	snap.State.Cache = nil
	payload, err = EncodeShardSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeShardSnapshot(payload)
	if err != nil || got.State.Cache != nil {
		t.Fatalf("nil-cache round-trip: %v %+v", err, got.State)
	}
}

func TestSnapshotFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap-0.snap")
	payload := []byte("snapshot payload")
	if err := WriteSnapshotFile(path, 1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path, 1)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round-trip: %v", err)
	}
	if _, err := ReadSnapshotFile(path, 2); err == nil {
		t.Fatal("snapshot for shard 1 accepted as shard 2")
	}
	// A truncated file (torn rename never happens, but disk corruption
	// can) is rejected, not half-read.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path, 1); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// No stray tmp files.
	m, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(m) != 0 {
		t.Fatalf("stray tmp files: %v", m)
	}
}

func TestStoreLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasState() || HasState(dir) {
		t.Fatal("fresh store claims state")
	}
	// The META file records the layout from creation on, even before
	// any snapshot exists.
	if n, ok := StateShards(dir); !ok || n != 2 {
		t.Fatalf("StateShards = (%d, %v), want (2, true)", n, ok)
	}
	// Complete generation at 4 on both shards, plus an incomplete one
	// at 9 (shard 0 only) — discovery must pick 4 and list 9 nowhere.
	for shard := 0; shard < 2; shard++ {
		if err := WriteSnapshotFile(s.SnapshotPath(shard, 4), shard, []byte("gen4")); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSnapshotFile(s.SnapshotPath(0, 9), 0, []byte("gen9")); err != nil {
		t.Fatal(err)
	}
	if !s.HasState() || !HasState(dir) {
		t.Fatal("store with snapshots claims no state")
	}
	gens := s.CompleteSnapshotEpochs()
	if len(gens) != 1 || gens[0] != 4 {
		t.Fatalf("complete generations: %v, want [4]", gens)
	}
	// WAL segments and byte accounting.
	w, err := CreateWAL(s.WALPath(0, 4), 0, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("frame")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if segs := s.WALSegments(0); len(segs) != 1 || segs[0] != 4 {
		t.Fatalf("segments: %v", segs)
	}
	// Cleanup drops strictly older generations only.
	s.RemoveObsolete(9)
	if got := s.CompleteSnapshotEpochs(); len(got) != 0 {
		t.Fatalf("generation 4 should be gone, have %v", got)
	}
	if segs := s.WALSegments(0); len(segs) != 0 {
		t.Fatalf("segment 4 should be gone, have %v", segs)
	}
	// A store is not portable across shard counts (the lock also blocks
	// these, but the count mismatch is checked for unlocked reopens).
	if _, err := OpenStore(dir, 1); err == nil {
		t.Fatal("2-shard store opened with 1 shard")
	}
	if _, err := OpenStore(dir, 4); err == nil {
		t.Fatal("2-shard store opened with 4 shards")
	}
	s.Close()
	if _, err := OpenStore(dir, 4); err == nil {
		t.Fatal("2-shard store opened with 4 shards after unlock")
	}
}

// TestStorePartialFirstGeneration pins the first-boot crash semantics:
// a partial generation (files in only a prefix of the shard dirs) is
// not recoverable state — HasState stays false, the shard count stays
// authoritative from META, and the next OpenStore clears the debris.
func TestStorePartialFirstGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-generation: only shards 0 and 1 got their files.
	for shard := 0; shard < 2; shard++ {
		if err := WriteSnapshotFile(s.SnapshotPath(shard, 0), shard, []byte("partial")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if HasState(dir) {
		t.Fatal("partial generation counted as recoverable state")
	}
	if n, ok := StateShards(dir); !ok || n != 4 {
		t.Fatalf("StateShards = (%d, %v), want (4, true) — prefix dirs must not shrink the count", n, ok)
	}
	// Reopening clears the debris and the store cold-starts cleanly.
	s2, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for shard := 0; shard < 2; shard++ {
		if _, err := os.Stat(s2.SnapshotPath(shard, 0)); err == nil {
			t.Fatalf("shard %d debris survived reopen", shard)
		}
	}
}

// TestStoreLock pins single-process ownership: a data directory cannot
// be opened twice concurrently, and the lock releases on Close.
func TestStoreLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, 1); err == nil {
		t.Fatal("second concurrent open succeeded")
	}
	s1.Close()
	s2, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}
