// Package persist is GC+'s durability subsystem: a per-shard write-ahead
// log of resolved dataset change operations plus periodic snapshots of
// each shard's dataset and cache state, giving the serving layer
// (internal/router) crash-safe warm restarts — a rebooted server resumes
// with the dataset it was serving and every warmed cache entry, instead
// of paying the full sub-iso cost from zero.
//
// # On-disk layout
//
// A data directory holds one subdirectory per shard:
//
//	<data-dir>/
//	  shard-0/
//	    snap-<epoch>.snap   shard snapshot taken at <epoch>
//	    wal-<epoch>.log     WAL segment with frames for epochs > <epoch>
//	  shard-1/
//	    ...
//
// Epochs are update-batch numbers (the serving layer's dataset version).
// A snapshot generation is *complete* when every shard directory holds a
// valid snap file for the same epoch; recovery loads the newest complete
// generation and replays the WAL segments chained after it. Segments
// rotate at snapshot time, so the segment named wal-E.log contains
// exactly the batches applied after the snapshot at epoch E; if a
// snapshot write fails mid-way, the previous generation plus the chained
// segments still reconstruct the full state.
//
// # Frames and crash safety
//
// Both file kinds are sequences of length-prefixed, CRC-32-checked
// frames behind a small typed header. WAL appends write one frame per
// update batch — every shard logs every epoch, with an empty frame when
// the batch did not touch it, which makes per-shard epochs dense and
// lets recovery compute the newest batch durable on *all* shards (the
// cross-shard consistency point) as a simple minimum. Frames are
// fsynced before the update is acknowledged (unless NoSync), so an
// acknowledged batch survives a crash; a torn tail — a partially
// written frame, or a batch durable on only some shards — is detected
// by the CRC/length checks and truncated away, exactly as if the
// unacknowledged batch had never happened.
//
// Snapshot files are written to a temporary name, fsynced and renamed
// into place, so a crash mid-snapshot leaves either the old complete
// generation or the new one, never a half-written file that parses.
//
// # Recovery contract
//
// Replaying the WAL restores the dataset bit-for-bit, but the restored
// cache's validity indicators reflect the snapshot's epoch, not the
// replayed tail. Recovery therefore does not trust them: the serving
// layer runs a CON validation sweep over the replayed log suffix, which
// clears the validity bit of every replay-touched (entry, graph) pair
// and queues the pairs for the background repair pipeline (PR-3), so
// consistency is restored off the query path and answers are
// bit-identical to a cold rebuild from the first post-restart query on.
package persist
