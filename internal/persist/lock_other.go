//go:build !unix

package persist

import "os"

// Non-unix platforms get no advisory lock: single-process operation is
// the operator's responsibility there.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}
