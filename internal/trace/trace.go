// Package trace is GC+'s dependency-free distributed-tracing core: a
// span/event model with trace and span ids, parent links, bounded
// attribute and event lists; a deterministic head sampler; a compact
// wire codec so shard hosts can piggyback their spans on reply frames;
// and a bounded in-memory store with tail-based retention that always
// keeps anomalous traces (slow, error, shed, deadline-exceeded,
// degraded-mode) no matter how fast normal traffic churns the ring.
//
// The model is deliberately small: the router opens a root span per
// query, the fan-out stage carries a Context (trace id + parent span id
// + sampling bit) to every shard over the transport seam, and each
// shard synthesizes its stage spans — queue wait, plan, consistency,
// hit discovery, verify — from the same QueryStats both transports
// already measure. Because the spans are built from measured stats on
// the shard's own goroutine, the local and loopback transports produce
// identically-shaped traces by construction, which is the contract a
// future remote transport inherits.
package trace

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// ID identifies one trace; SpanID one span within it. Both are nonzero
// for real traces — zero means "no trace" and doubles as the absent
// marker on the wire.
type ID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id the way exemplars and /debug/traces spell it:
// 16 lowercase hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit rendering back into an ID.
func ParseID(s string) (ID, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return ID(v), true
}

// Context is what crosses the transport seam: enough for a shard to
// parent its spans under the router's fan-out span and to know whether
// to build spans at all.
type Context struct {
	TraceID ID
	Parent  SpanID
	Sampled bool
}

// Valid reports whether the context names a real trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Attr is one string key/value annotation on a span (hit class,
// plan-cache verdict, degradation rung, error stage, ...).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one timestamped note within a span.
type Event struct {
	UnixNanos int64  `json:"unix_ns"`
	Msg       string `json:"msg"`
}

// Bounded list sizes: a span can never grow past these no matter how
// chatty a stage is, so a trace's memory and wire footprint is O(spans).
const (
	MaxAttrs  = 16
	MaxEvents = 8
)

// Span is one timed operation in a trace. Times are absolute unix
// nanoseconds so spans from different processes need no offset
// agreement; viewers subtract the trace root's start.
type Span struct {
	TraceID    ID
	ID         SpanID
	Parent     SpanID
	Name       string
	StartNanos int64 // unix nanoseconds
	DurNanos   int64
	Attrs      []Attr
	Events     []Event
}

// SetAttr appends one attribute, silently dropping it once MaxAttrs is
// reached (bounded spans beat complete spans on a serving hot path).
// The first attribute reserves room for the typical handful, so a
// span's annotations cost one allocation rather than one per growth.
func (s *Span) SetAttr(key, value string) {
	if len(s.Attrs) >= MaxAttrs {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make([]Attr, 0, 4)
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Attr returns the value of the named attribute ("" when absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// AddEvent appends one event, dropping it once MaxEvents is reached.
func (s *Span) AddEvent(at time.Time, msg string) {
	if len(s.Events) >= MaxEvents {
		return
	}
	s.Events = append(s.Events, Event{UnixNanos: at.UnixNano(), Msg: msg})
}

// Id generation: a process-global counter mixed through splitmix64, so
// ids are unique within a process, well-distributed (usable as hash
// keys and exemplar labels), allocation-free and lock-free. Zero is
// reserved as "absent" and never produced.
var idGen atomic.Uint64

func nextID() uint64 {
	for {
		if v := splitmix64(idGen.Add(1)); v != 0 {
			return v
		}
	}
}

// NewTraceID returns a fresh nonzero trace id.
func NewTraceID() ID { return ID(nextID()) }

// NewSpanID returns a fresh nonzero span id.
func NewSpanID() SpanID { return SpanID(nextID()) }

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap
// bijective mixer turning a sequential counter into well-distributed
// 64-bit ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampler is the deterministic head sampler behind -trace-sample-rate:
// a rate of r samples every round(1/r)-th query (counter-periodic, not
// random, so a seeded benchmark run samples the same queries every
// time). rate ≤ 0 never samples; rate ≥ 1 always samples.
type Sampler struct {
	period uint64 // 0 = never
	n      atomic.Uint64
}

// NewSampler builds a sampler for the given rate.
func NewSampler(rate float64) *Sampler {
	switch {
	case math.IsNaN(rate) || rate <= 0:
		return &Sampler{}
	case rate >= 1:
		return &Sampler{period: 1}
	}
	p := uint64(math.Round(1 / rate))
	if p < 1 {
		p = 1
	}
	return &Sampler{period: p}
}

// Sample reports whether the next unit of work should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.period == 0 {
		return false
	}
	if s.period == 1 {
		return true
	}
	return s.n.Add(1)%s.period == 1
}
