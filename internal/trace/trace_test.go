package trace

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestIDsNonZeroAndDistinct(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
}

func TestIDStringRoundTrip(t *testing.T) {
	for _, id := range []ID{1, 0xdeadbeef, NewTraceID()} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID %v renders as %q (len %d), want 16 hex digits", uint64(id), s, len(s))
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v", s, back, ok, id)
		}
	}
	for _, bad := range []string{"", "zz", "00000000000000000", "g000000000000000"} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID(%q) unexpectedly ok", bad)
		}
	}
}

func TestSamplerRates(t *testing.T) {
	cases := []struct {
		rate float64
		want int // sampled out of 1000
	}{
		{0, 0},
		{-1, 0},
		{1, 1000},
		{2, 1000},
		{0.5, 500},
		{0.01, 10},
	}
	for _, c := range cases {
		s := NewSampler(c.rate)
		got := 0
		for i := 0; i < 1000; i++ {
			if s.Sample() {
				got++
			}
		}
		if got != c.want {
			t.Errorf("rate %v: sampled %d/1000, want %d", c.rate, got, c.want)
		}
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Error("nil sampler sampled")
	}
}

func TestSpanBounds(t *testing.T) {
	var s Span
	for i := 0; i < MaxAttrs+5; i++ {
		s.SetAttr(fmt.Sprintf("k%d", i), "v")
	}
	if len(s.Attrs) != MaxAttrs {
		t.Fatalf("attrs grew to %d, want cap %d", len(s.Attrs), MaxAttrs)
	}
	for i := 0; i < MaxEvents+5; i++ {
		s.AddEvent(time.Unix(0, int64(i)), "e")
	}
	if len(s.Events) != MaxEvents {
		t.Fatalf("events grew to %d, want cap %d", len(s.Events), MaxEvents)
	}
	if got := s.Attr("k0"); got != "v" {
		t.Fatalf("Attr(k0) = %q", got)
	}
	if got := s.Attr("missing"); got != "" {
		t.Fatalf("Attr(missing) = %q", got)
	}
}

func TestStoreTailRetention(t *testing.T) {
	st := NewStore(16)
	anomalous := &Trace{ID: NewTraceID(), Anomaly: AnomalySlow}
	st.Add(anomalous)
	// Flood with healthy traces far past every capacity.
	for i := 0; i < 1000; i++ {
		st.Add(&Trace{ID: NewTraceID()})
	}
	if got := st.Get(anomalous.ID); got != anomalous {
		t.Fatal("anomalous trace evicted by normal traffic")
	}
	// Normal ring full (16) plus the single anomalous entry.
	snap := st.Snapshot()
	if len(snap) != 17 {
		t.Fatalf("snapshot has %d traces, want 17", len(snap))
	}
	found := false
	for _, tr := range snap {
		if tr.ID == anomalous.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("anomalous trace missing from snapshot")
	}
	if st.Added() != 1001 {
		t.Fatalf("Added() = %d, want 1001", st.Added())
	}
}

func TestStoreNewestFirst(t *testing.T) {
	st := NewStore(8)
	var ids []ID
	for i := 0; i < 12; i++ {
		tr := &Trace{ID: NewTraceID()}
		if i%3 == 0 {
			tr.Anomaly = AnomalyError
		}
		st.Add(tr)
		ids = append(ids, tr.ID)
	}
	snap := st.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	// Newest addition must lead regardless of which ring it landed in.
	if snap[0].ID != ids[len(ids)-1] {
		t.Fatalf("snapshot[0] = %v, want newest %v", snap[0].ID, ids[len(ids)-1])
	}
	for i := 1; i < len(snap); i++ {
		// Strictly decreasing insertion order.
		pi, ci := indexOf(ids, snap[i-1].ID), indexOf(ids, snap[i].ID)
		if pi <= ci {
			t.Fatalf("snapshot not newest-first at %d: %d then %d", i, pi, ci)
		}
	}
	var nilStore *Store
	if nilStore.Snapshot() != nil || nilStore.Get(ids[0]) != nil || nilStore.Added() != 0 {
		t.Fatal("nil store must be inert")
	}
}

func indexOf(ids []ID, id ID) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}

func TestCodecRoundTrip(t *testing.T) {
	spans := []Span{
		{
			TraceID: 1, ID: 2, Parent: 0, Name: "query",
			StartNanos: time.Now().UnixNano(), DurNanos: 12345,
			Attrs:  []Attr{{Key: "hit_class", Value: "exact"}, {Key: "shard", Value: "3"}},
			Events: []Event{{UnixNanos: 77, Msg: "admitted"}},
		},
		{TraceID: 1, ID: 3, Parent: 2, Name: "verify", DurNanos: 99},
		{TraceID: 1, ID: 4, Parent: 2, Name: ""},
	}
	enc := AppendSpans(nil, spans)
	got, err := DecodeSpans(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spans) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, spans)
	}
	if _, err := DecodeSpans(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	empty, err := DecodeSpans(AppendSpans(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty block: %v %v", empty, err)
	}
}

func TestCodecHostileInputs(t *testing.T) {
	bad := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd count
		{5},                       // count 5, no spans
		{1, 1, 1, 1, 0xff},        // truncated name length
		AppendSpans(nil, nil)[:0], // empty input (count missing)
	}
	for i, b := range bad {
		if _, err := DecodeSpans(b); err == nil {
			t.Errorf("case %d: hostile input decoded", i)
		}
	}
	// Oversized string is clipped on encode, so it still decodes.
	long := make([]byte, 5000)
	for i := range long {
		long[i] = 'a'
	}
	enc := AppendSpans(nil, []Span{{TraceID: 1, ID: 1, Name: string(long)}})
	got, err := DecodeSpans(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Name) != MaxWireString {
		t.Fatalf("name len %d, want clipped to %d", len(got[0].Name), MaxWireString)
	}
}
