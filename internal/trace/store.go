package trace

import (
	"sort"
	"sync"
)

// Anomaly classes for Trace.Anomaly. A trace carrying any of these is
// retained in the store's reserved anomalous ring, which normal traffic
// cannot evict — the tail-based half of the sampling story: the head
// sampler decides which healthy traces exist, tail retention guarantees
// the pathological ones survive to be read.
const (
	AnomalyNone     = ""
	AnomalySlow     = "slow"
	AnomalyError    = "error"
	AnomalyShed     = "shed"
	AnomalyDeadline = "deadline"
	AnomalyDegraded = "degraded"
)

// Trace is one assembled trace: the root's identity, wall-clock
// extent, anomaly class and every span collected across router and
// shards.
type Trace struct {
	ID         ID
	StartNanos int64 // unix nanoseconds of the root span's start
	WallNanos  int64
	Anomaly    string
	Spans      []Span
}

// entry stamps a trace with the store's insertion sequence so Snapshot
// can interleave the two rings newest-first without comparing clocks.
type entry struct {
	t   *Trace
	seq uint64
}

type ring struct {
	buf  []entry
	next int
	n    int
}

func (r *ring) add(e entry) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring) each(fn func(entry)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)])
	}
}

// DefaultStoreSize is the normal-ring capacity when the configuration
// leaves it zero (-trace-store-size).
const DefaultStoreSize = 256

// Store is the bounded in-memory trace store behind GET /debug/traces:
// a normal ring of size `size` for head-sampled healthy traces plus a
// reserved anomalous ring (a quarter of size, minimum 8) that only
// anomalous traces rotate through — so a flood of healthy traffic can
// never evict the slow/error/shed traces an operator is hunting.
type Store struct {
	mu   sync.Mutex
	norm ring
	anom ring
	seq  uint64
	adds uint64
}

// NewStore builds a store; size ≤ 0 means DefaultStoreSize.
func NewStore(size int) *Store {
	if size <= 0 {
		size = DefaultStoreSize
	}
	anomSize := size / 4
	if anomSize < 8 {
		anomSize = 8
	}
	return &Store{
		norm: ring{buf: make([]entry, size)},
		anom: ring{buf: make([]entry, anomSize)},
	}
}

// Add retains a trace; anomalous traces go to the reserved ring. The
// store takes ownership of t (callers must not mutate it afterwards).
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil || t.ID == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.adds++
	e := entry{t: t, seq: s.seq}
	if t.Anomaly != AnomalyNone {
		s.anom.add(e)
	} else {
		s.norm.add(e)
	}
}

// Get returns the retained trace with the given id, or nil.
func (s *Store) Get(id ID) *Trace {
	if s == nil || id == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var found *Trace
	scan := func(e entry) {
		if found == nil && e.t.ID == id {
			found = e.t
		}
	}
	s.anom.each(scan)
	s.norm.each(scan)
	return found
}

// Snapshot returns every retained trace, newest first across both
// rings. The returned traces are shared; treat them as read-only.
func (s *Store) Snapshot() []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]entry, 0, s.norm.n+s.anom.n)
	s.norm.each(func(e entry) { out = append(out, e) })
	s.anom.each(func(e entry) { out = append(out, e) })
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	ts := make([]*Trace, len(out))
	for i, e := range out {
		ts[i] = e.t
	}
	return ts
}

// Added returns the lifetime count of retained traces (including ones
// since evicted) — the store's throughput counter for /debug/traces.
func (s *Store) Added() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adds
}
