package trace

import (
	"reflect"
	"testing"
)

// FuzzSpanCodec: any byte string either fails to decode or decodes
// into spans that re-encode and re-decode to the identical structure —
// the hostile-reply posture the loopback client needs when a reply
// frame piggybacks a span block.
func FuzzSpanCodec(f *testing.F) {
	f.Add(AppendSpans(nil, nil))
	f.Add(AppendSpans(nil, []Span{{TraceID: 1, ID: 2, Name: "query"}}))
	f.Add(AppendSpans(nil, []Span{
		{
			TraceID: 7, ID: 8, Parent: 2, Name: "verify",
			StartNanos: 1700000000000000000, DurNanos: 250000,
			Attrs:  []Attr{{Key: "subiso_tests", Value: "12"}},
			Events: []Event{{UnixNanos: 5, Msg: "start"}},
		},
		{TraceID: 7, ID: 9, Parent: 8, Name: "queue", DurNanos: 1},
	}))
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := DecodeSpans(data)
		if err != nil {
			return
		}
		enc := AppendSpans(nil, spans)
		back, err := DecodeSpans(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(back, spans) {
			t.Fatalf("re-encode changed structure:\n got %+v\nwant %+v", back, spans)
		}
	})
}
