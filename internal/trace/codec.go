package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Span wire codec: the compact binary form a shard uses to piggyback
// its spans on a reply frame. Self-contained (no dependency on the
// transport package's framing) so the transport can treat the block as
// opaque bytes, and bounds-checked on decode with the same hostile-
// input posture as the rest of the wire: counts are capped, strings
// are capped, and a decoder error never panics or over-allocates.
const (
	// MaxWireSpans bounds one block; a query produces on the order of a
	// dozen spans per shard, so 512 is generous headroom, not a quota.
	MaxWireSpans = 512
	// MaxWireString bounds every name/key/value/message.
	MaxWireString = 1024
)

var errCodec = errors.New("trace: malformed span block")

// AppendSpans encodes spans onto dst. Oversized strings are truncated
// and per-span lists clipped to the model bounds, so the encoded block
// always decodes.
func AppendSpans(dst []byte, spans []Span) []byte {
	if len(spans) > MaxWireSpans {
		spans = spans[:MaxWireSpans]
	}
	dst = binary.AppendUvarint(dst, uint64(len(spans)))
	for i := range spans {
		s := &spans[i]
		dst = binary.AppendUvarint(dst, uint64(s.TraceID))
		dst = binary.AppendUvarint(dst, uint64(s.ID))
		dst = binary.AppendUvarint(dst, uint64(s.Parent))
		dst = appendCapped(dst, s.Name)
		dst = binary.AppendUvarint(dst, uint64(s.StartNanos))
		dst = binary.AppendUvarint(dst, uint64(s.DurNanos))
		attrs := s.Attrs
		if len(attrs) > MaxAttrs {
			attrs = attrs[:MaxAttrs]
		}
		dst = binary.AppendUvarint(dst, uint64(len(attrs)))
		for _, a := range attrs {
			dst = appendCapped(dst, a.Key)
			dst = appendCapped(dst, a.Value)
		}
		events := s.Events
		if len(events) > MaxEvents {
			events = events[:MaxEvents]
		}
		dst = binary.AppendUvarint(dst, uint64(len(events)))
		for _, e := range events {
			dst = binary.AppendUvarint(dst, uint64(e.UnixNanos))
			dst = appendCapped(dst, e.Msg)
		}
	}
	return dst
}

func appendCapped(dst []byte, s string) []byte {
	if len(s) > MaxWireString {
		s = s[:MaxWireString]
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeSpans decodes a block produced by AppendSpans. The whole input
// must be consumed; trailing bytes are an error (the block is embedded
// as a length-delimited field, so a correct frame never has any).
func DecodeSpans(data []byte) ([]Span, error) {
	d := &sdec{data: data}
	n := d.uvarint()
	if n > MaxWireSpans {
		return nil, fmt.Errorf("trace: span count %d exceeds limit %d", n, MaxWireSpans)
	}
	// Every span costs ≥ 8 bytes on the wire; reject counts the input
	// cannot possibly hold before allocating for them.
	if d.err == nil && n > uint64(len(d.data)/8+1) {
		return nil, errCodec
	}
	var spans []Span
	if n > 0 && d.err == nil {
		spans = make([]Span, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s Span
		s.TraceID = ID(d.uvarint())
		s.ID = SpanID(d.uvarint())
		s.Parent = SpanID(d.uvarint())
		s.Name = d.str()
		s.StartNanos = int64(d.uvarint())
		s.DurNanos = int64(d.uvarint())
		na := d.uvarint()
		if na > MaxAttrs {
			return nil, fmt.Errorf("trace: attr count %d exceeds limit %d", na, MaxAttrs)
		}
		for j := uint64(0); j < na && d.err == nil; j++ {
			s.Attrs = append(s.Attrs, Attr{Key: d.str(), Value: d.str()})
		}
		ne := d.uvarint()
		if ne > MaxEvents {
			return nil, fmt.Errorf("trace: event count %d exceeds limit %d", ne, MaxEvents)
		}
		for j := uint64(0); j < ne && d.err == nil; j++ {
			s.Events = append(s.Events, Event{UnixNanos: int64(d.uvarint()), Msg: d.str()})
		}
		if d.err == nil {
			spans = append(spans, s)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, errCodec
	}
	return spans, nil
}

// sdec is the block's bounds-checked decoder: first error latches,
// every subsequent read returns zero values.
type sdec struct {
	data []byte
	err  error
}

func (d *sdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = errCodec
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *sdec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > MaxWireString || n > uint64(len(d.data)) || n > math.MaxInt32 {
		d.err = errCodec
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}
