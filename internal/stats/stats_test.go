package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.CoV2() != 0 || r.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %g", r.Mean())
	}
	if !almost(r.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %g", r.Variance())
	}
	if !almost(r.Std(), 2, 1e-12) {
		t.Fatalf("Std = %g", r.Std())
	}
	if !almost(r.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %g", r.Sum())
	}
	if !almost(r.CoV2(), 4.0/25.0, 1e-12) {
		t.Fatalf("CoV2 = %g", r.CoV2())
	}
}

func TestAddDuration(t *testing.T) {
	var r Running
	r.AddDuration(1500 * time.Millisecond)
	r.AddDuration(500 * time.Millisecond)
	if !almost(r.Mean(), 1.0, 1e-12) {
		t.Fatalf("Mean = %g", r.Mean())
	}
}

func TestCoV2Exponential(t *testing.T) {
	// Exponential distribution has CoV == 1; HD uses CoV² > 1 as the
	// high-variability threshold, so the sample value should hover ~1.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	got := CoV2Of(xs)
	if got < 0.9 || got > 1.1 {
		t.Fatalf("exponential CoV² = %g, want ≈1", got)
	}
}

func TestCoV2Constant(t *testing.T) {
	if got := CoV2Of([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("constant CoV² = %g, want 0", got)
	}
	if got := CoV2Of(nil); got != 0 {
		t.Fatalf("empty CoV² = %g, want 0", got)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean wrong")
	}
	if !almost(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Fatal("Std wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestQuickRunningMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			r.Add(xs[i])
		}
		return almost(r.Mean(), Mean(xs), 1e-9) &&
			almost(r.Std(), Std(xs), 1e-9) &&
			almost(r.CoV2(), CoV2Of(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStdNeverNaN pins the NaN guards: a zero-count accumulator, a
// single observation, and a negative-m2 accumulator (floating-point
// cancellation, or a corrupted restore) must all yield Std() == 0, not
// NaN — NaN is invalid JSON and would poison serialized snapshots.
func TestStdNeverNaN(t *testing.T) {
	var r Running
	if s := r.Std(); s != 0 || math.IsNaN(s) {
		t.Fatalf("zero-value Std = %g, want 0", s)
	}
	r.Add(3)
	if s := r.Std(); s != 0 || math.IsNaN(s) {
		t.Fatalf("single-observation Std = %g, want 0", s)
	}
	var neg Running
	neg.RestoreState(5, 1.0, -1e-12)
	if v := neg.Variance(); v != 0 {
		t.Fatalf("negative-m2 Variance = %g, want 0", v)
	}
	if s := neg.Std(); math.IsNaN(s) || s != 0 {
		t.Fatalf("negative-m2 Std = %g, want 0", s)
	}
	// Welford cancellation shape: many equal large values can leave m2 a
	// tiny negative residue on some platforms; whatever it leaves, Std
	// must be a finite non-negative number.
	var c Running
	for i := 0; i < 1000; i++ {
		c.Add(1e15 + 0.1)
	}
	if s := c.Std(); math.IsNaN(s) || s < 0 {
		t.Fatalf("cancellation Std = %g, want finite ≥ 0", s)
	}
}

func TestRunningStateRoundTrip(t *testing.T) {
	var a Running
	for _, x := range []float64{1, 2, 7, 1.5} {
		a.Add(x)
	}
	var b Running
	b.RestoreState(a.State())
	// The restored accumulator continues the recurrence identically.
	a.Add(3.25)
	b.Add(3.25)
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatalf("restored accumulator diverged: %+v vs %+v", a, b)
	}
}
