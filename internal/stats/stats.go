// Package stats provides the small statistical toolbox GC+ needs: running
// moments (Welford), the squared coefficient of variation used by the HD
// cache-replacement policy (§7.1: CoV² > 1 ⇒ the R distribution is "high
// variability" and PIN is used, otherwise PINC), and summary helpers for
// the benchmark reports.
package stats

import (
	"math"
	"sort"
	"time"
)

// Running accumulates count/mean/variance online (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddDuration folds a duration (in seconds) into the accumulator.
func (r *Running) AddDuration(d time.Duration) { r.Add(d.Seconds()) }

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 for no observations).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance. A negative m2 — reachable
// through floating-point cancellation in the Welford update, or a
// corrupted RestoreState — clamps to 0 so Std can never return NaN
// (NaN is not valid JSON and would poison every serialized snapshot).
func (r *Running) Variance() float64 {
	if r.n == 0 || r.m2 <= 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Sum returns mean*n.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// State returns the accumulator's internal moments (count, mean, sum of
// squared deviations) so the durability subsystem can persist a running
// accumulator across restarts.
func (r *Running) State() (n int64, mean, m2 float64) {
	return r.n, r.mean, r.m2
}

// RestoreState overwrites the accumulator with previously exported
// moments; Add continues the Welford recurrence exactly where the
// exported accumulator left off.
func (r *Running) RestoreState(n int64, mean, m2 float64) {
	r.n, r.mean, r.m2 = n, mean, m2
}

// CoV2 returns the squared coefficient of variation σ²/μ². For an all-zero
// or empty sample it returns 0 (deemed low variability, matching the HD
// policy's intent: indistinguishable R values carry no discriminating
// power).
func (r *Running) CoV2() float64 {
	if r.n == 0 || r.mean == 0 {
		return 0
	}
	return r.Variance() / (r.mean * r.mean)
}

// CoV2Of computes the squared coefficient of variation of a sample.
func CoV2Of(xs []float64) float64 {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.CoV2()
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Std()
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}
