package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

func iptr(v int) *int { return &v }

func codecOf(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, []*graph.Graph{g}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPQueryUpdateStats(t *testing.T) {
	initial := genGraphs(t, 40, 17)
	srv, err := New(initial, Options{Shards: 4, Method: "VF2"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mirror := dataset.New(initial)
	gt := groundTruth(t, mirror)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := testQueries(initial)[0]
	want, err := gt.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}

	// POST /query (sub, then super).
	resp, err := http.Post(ts.URL+"/query?kind=sub", "text/plain", strings.NewReader(codecOf(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	qr := decodeJSON[queryResponse](t, resp.Body)
	resp.Body.Close()
	if !equalIDs(qr.IDs, want.AnswerIDs()) {
		t.Fatalf("HTTP sub answer %v, ground truth %v", qr.IDs, want.AnswerIDs())
	}
	if qr.Kind != "sub" || qr.Epoch != 0 || qr.Count != len(qr.IDs) || qr.Candidates != 40 {
		t.Fatalf("unexpected response envelope: %+v", qr)
	}

	wantSuper, err := gt.SupergraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/query?kind=super", "text/plain", strings.NewReader(codecOf(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	qr = decodeJSON[queryResponse](t, resp.Body)
	resp.Body.Close()
	if !equalIDs(qr.IDs, wantSuper.AnswerIDs()) {
		t.Fatalf("HTTP super answer %v, ground truth %v", qr.IDs, wantSuper.AnswerIDs())
	}

	// POST /update: ADD a clone of graph 1, DEL graph 0, UA on graph 2.
	g2 := mirror.Graph(2)
	var ua struct{ u, v int }
	ua.u, ua.v = -1, -1
	for u := 0; u < g2.NumVertices() && ua.u < 0; u++ {
		for v := u + 1; v < g2.NumVertices(); v++ {
			if !g2.HasEdge(u, v) {
				ua.u, ua.v = u, v
				break
			}
		}
	}
	if ua.u < 0 {
		t.Fatal("graph 2 is complete; pick a different seed")
	}
	update := updateRequest{Ops: []wireOp{
		{Op: "ADD", Graph: codecOf(t, initial[1].Clone())},
		{Op: "DEL", ID: iptr(0)},
		{Op: "UA", ID: iptr(2), U: iptr(ua.u), V: iptr(ua.v)},
	}}
	body, err := json.Marshal(update)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("update status %d: %s", resp.StatusCode, b)
	}
	ur := decodeJSON[updateResponse](t, resp.Body)
	resp.Body.Close()
	if ur.Epoch != 1 || ur.Applied != 3 {
		t.Fatalf("update response: %+v", ur)
	}
	if ur.Ops[0].ID != 40 {
		t.Fatalf("ADD id %d, want 40", ur.Ops[0].ID)
	}

	// Mirror the same ops and re-check the query answer post-update.
	if _, err := mirror.Add(initial[1].Clone()); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := mirror.UpdateAddEdge(2, ua.u, ua.v); err != nil {
		t.Fatal(err)
	}
	want, err = gt.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/query", "text/plain", strings.NewReader(codecOf(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	qr = decodeJSON[queryResponse](t, resp.Body)
	resp.Body.Close()
	if !equalIDs(qr.IDs, want.AnswerIDs()) {
		t.Fatalf("post-update answer %v, ground truth %v", qr.IDs, want.AnswerIDs())
	}
	if qr.Epoch != 1 {
		t.Fatalf("post-update epoch %d, want 1", qr.Epoch)
	}

	// GET /stats.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	st := decodeJSON[Stats](t, resp.Body)
	resp.Body.Close()
	if st.Epoch != 1 || st.Shards != 4 || st.LiveGraphs != 40 { // 40 - DEL + ADD
		t.Fatalf("stats: %+v", st)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d entries", len(st.PerShard))
	}
}

func TestHTTPErrors(t *testing.T) {
	initial := genGraphs(t, 10, 2)
	srv, err := New(initial, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"bad kind", "POST", "/query?kind=nope", "t q\nv 0 1\n", http.StatusBadRequest},
		{"bad graph", "POST", "/query", "not a graph", http.StatusBadRequest},
		{"no graph", "POST", "/query", "", http.StatusBadRequest},
		{"two graphs", "POST", "/query", "t a\nv 0 1\nt b\nv 0 1\n", http.StatusBadRequest},
		{"get query", "GET", "/query", "", http.StatusMethodNotAllowed},
		{"bad op", "POST", "/update", `{"ops":[{"op":"NOPE"}]}`, http.StatusBadRequest},
		{"bad json", "POST", "/update", `{`, http.StatusBadRequest},
		{"empty ops", "POST", "/update", `{"ops":[]}`, http.StatusBadRequest},
		{"bad add graph", "POST", "/update", `{"ops":[{"op":"ADD","graph":"nope"}]}`, http.StatusBadRequest},
		{"DEL without id", "POST", "/update", `{"ops":[{"op":"DEL"}]}`, http.StatusBadRequest},
		{"UA without u/v", "POST", "/update", `{"ops":[{"op":"UA","id":2}]}`, http.StatusBadRequest},
		{"UR without id", "POST", "/update", `{"ops":[{"op":"UR","u":0,"v":1}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	// Oversized request bodies are cut off at the MaxBytesReader limit
	// and answered with 413, for both the text-codec query body and the
	// JSON update body.
	bigQuery := strings.Repeat("# padding line to exceed the query body limit\n", maxQueryBodyBytes/46+2)
	resp413, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(bigQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp413.Body.Close()
	if resp413.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query body: status %d, want 413", resp413.StatusCode)
	}
	bigUpdate := `{"ops":[{"op":"ADD","graph":"` + strings.Repeat("x", maxUpdateBodyBytes) + `"}]}`
	resp413, err = http.Post(ts.URL+"/update", "application/json", strings.NewReader(bigUpdate))
	if err != nil {
		t.Fatal(err)
	}
	resp413.Body.Close()
	if resp413.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized update body: status %d, want 413", resp413.StatusCode)
	}
	// A body under the limit still parses (regression guard for the
	// wrapping itself).
	resp413, err = http.Post(ts.URL+"/query", "text/plain", strings.NewReader("t q\nv 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp413.Body.Close()
	if resp413.StatusCode != http.StatusOK {
		t.Fatalf("small query body: status %d, want 200", resp413.StatusCode)
	}

	// A closed server answers 503.
	srv.Close()
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("t q\nv 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server: status %d, want 503", resp.StatusCode)
	}
}
