package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/trace"
)

// traceShape reduces a trace to its transport-independent structure:
// one line per span — parent name, own name, sorted attribute keys —
// sorted. Durations, ids and attribute values are deliberately absent;
// the differential contract is about which spans exist and how they
// nest, which may depend only on what the query did, never on how fast
// a transport carried it.
func traceShape(t *trace.Trace) string {
	names := make(map[trace.SpanID]string, len(t.Spans))
	for _, sp := range t.Spans {
		names[sp.ID] = sp.Name
	}
	lines := make([]string, 0, len(t.Spans))
	for _, sp := range t.Spans {
		keys := make([]string, 0, len(sp.Attrs))
		for _, a := range sp.Attrs {
			if a.Key == "transport" { // differs by construction
				continue
			}
			keys = append(keys, a.Key)
		}
		sort.Strings(keys)
		parent := names[sp.Parent] // "" for the root
		lines = append(lines, fmt.Sprintf("%s>%s(%s)", parent, sp.Name, strings.Join(keys, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestTraceDifferentialTransports pins the acceptance contract of the
// tracing tentpole: the local and loopback transports must produce
// structurally identical traces for the same workload — same span
// names, same nesting, same attribute keys — because shard spans are
// synthesized from the same QueryStats regardless of the seam that
// carried them.
func TestTraceDifferentialTransports(t *testing.T) {
	initial := genGraphs(t, 40, 23)
	queries := testQueries(initial)
	if len(queries) < 2 {
		t.Fatal("not enough test queries")
	}
	opts := Options{
		Shards:          2,
		Cache:           &cache.Config{Capacity: 32, WindowSize: 4},
		TraceSampleRate: 1,
	}
	shapes := make(map[string][]string)
	for _, tr := range []string{TransportLocal, TransportLoopback} {
		o := opts
		o.Transport = tr
		srv, err := New(initial, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if _, err := srv.SubgraphQuery(q); err != nil {
				t.Fatal(err)
			}
			if _, err := srv.SupergraphQuery(q); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := srv.Update([]changeplan.Op{changeplan.AddOp(initial[0].Clone())}); err != nil {
			t.Fatal(err)
		}
		snap := srv.traces.Snapshot()
		if want := 2*len(queries) + 1; len(snap) != want {
			t.Fatalf("%s: retained %d traces, want %d", tr, len(snap), want)
		}
		// Snapshot is newest-first and both servers ran the same
		// sequence, so index i is the same request on both transports.
		for _, tt := range snap {
			shapes[tr] = append(shapes[tr], traceShape(tt))
		}
		srv.Close()
	}
	for i := range shapes[TransportLocal] {
		if shapes[TransportLocal][i] != shapes[TransportLoopback][i] {
			t.Fatalf("trace %d shape diverges across transports:\nlocal:\n%s\nloopback:\n%s",
				i, shapes[TransportLocal][i], shapes[TransportLoopback][i])
		}
	}
}

// TestTraceSampledQuery checks the span tree of one sampled query:
// router stages plus one shard subtree per shard, all parented
// correctly, and the result carrying the retained trace id.
func TestTraceSampledQuery(t *testing.T) {
	initial := genGraphs(t, 20, 7)
	srv, err := New(initial, Options{Shards: 2, TraceSampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.SubgraphQuery(testQueries(initial)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("sampled query result carries no trace id")
	}
	if len(res.Queue) != 2 {
		t.Fatalf("per-shard queue waits: %v", res.Queue)
	}
	tr := srv.traces.Get(res.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	if tr.Anomaly != trace.AnomalyNone {
		t.Fatalf("healthy query classified %q", tr.Anomaly)
	}
	counts := map[string]int{}
	for _, sp := range tr.Spans {
		counts[sp.Name]++
	}
	for name, want := range map[string]int{
		"query": 1, "admission": 1, "fanout": 1, "merge": 1, "shard": 2, "queue": 2, "verify": 2,
	} {
		if counts[name] != want {
			t.Fatalf("span %q appears %d times, want %d (trace: %v)", name, counts[name], want, counts)
		}
	}
	root := tr.Spans[0]
	if root.Name != "query" || root.Parent != 0 {
		t.Fatalf("first span is not the root: %+v", root)
	}
	if got := root.Attr("kind"); got != "sub" {
		t.Fatalf("root kind attr %q", got)
	}
	// Every non-root span must resolve its parent inside the trace.
	ids := map[trace.SpanID]bool{}
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range tr.Spans[1:] {
		if !ids[sp.Parent] {
			t.Fatalf("span %q has dangling parent %d", sp.Name, sp.Parent)
		}
	}
	// The query trace view links the id.
	if qt := res.Trace(); qt.TraceID != res.TraceID.String() {
		t.Fatalf("QueryTrace.TraceID = %q, want %q", qt.TraceID, res.TraceID)
	}
}

// TestTraceTailRetention checks the tail-sampling half: an unsampled
// query that turns out anomalous (slow) is still retained, with its
// shard subtrees synthesized router-side from the reply stats.
func TestTraceTailRetention(t *testing.T) {
	initial := genGraphs(t, 20, 11)
	srv, err := New(initial, Options{
		Shards:           2,
		TraceSampleRate:  1e-9,            // sampler period ~1e9: only the first query samples
		SlowLogThreshold: time.Nanosecond, // every query is "slow"
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q := testQueries(initial)[0]
	if _, err := srv.SubgraphQuery(q); err != nil { // warm-up: consumes the sampled slot
		t.Fatal(err)
	}
	res, err := srv.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("anomalous unsampled query retained no trace")
	}
	tr := srv.traces.Get(res.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not in store", res.TraceID)
	}
	if tr.Anomaly != trace.AnomalySlow {
		t.Fatalf("anomaly %q, want %q", tr.Anomaly, trace.AnomalySlow)
	}
	if got := tr.Spans[0].Attr("synthesized"); got != "true" {
		t.Fatal("synthesized trace not marked as such")
	}
	shards := 0
	for _, sp := range tr.Spans {
		if sp.Name == "shard" {
			shards++
		}
	}
	if shards != 2 {
		t.Fatalf("synthesized trace has %d shard subtrees, want 2", shards)
	}
}

// TestTraceDisabled checks the off switch: a negative sample rate must
// leave results unstamped, keep the slow log inlining its stage
// breakdown, and have /debug/traces report tracing disabled.
func TestTraceDisabled(t *testing.T) {
	initial := genGraphs(t, 12, 5)
	srv, err := New(initial, Options{
		Shards:           2,
		TraceSampleRate:  -1,
		SlowLogThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.SubgraphQuery(testQueries(initial)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != 0 {
		t.Fatalf("tracing disabled but result stamped %s", res.TraceID)
	}
	entries := srv.SlowQueries()
	if len(entries) != 1 || entries[0].TraceID != "" || entries[0].Trace == nil {
		t.Fatalf("slow entry should inline its trace when tracing is off: %+v", entries)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, body := getBody(t, ts.URL+"/debug/traces")
	if status != http.StatusOK || !strings.Contains(body, `"enabled": false`) {
		t.Fatalf("/debug/traces with tracing off: %d %s", status, body)
	}
	if status, _ := getBody(t, ts.URL+"/debug/traces/00ff"); status != http.StatusNotFound {
		t.Fatalf("by-id with tracing off: status %d, want 404", status)
	}
}

// TestTracesEndpoint drives the debug endpoints over a sampled
// workload: list view newest-first, by-id fetch, and the two error
// paths (bad id, unknown id).
func TestTracesEndpoint(t *testing.T) {
	initial := genGraphs(t, 16, 3)
	srv, err := New(initial, Options{Shards: 2, TraceSampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range testQueries(initial)[:2] {
		if _, err := srv.SubgraphQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type listBody struct {
		Enabled    bool        `json:"enabled"`
		SampleRate float64     `json:"sample_rate"`
		Captured   uint64      `json:"captured"`
		Traces     []wireTrace `json:"traces"`
	}
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[listBody](t, resp.Body)
	resp.Body.Close()
	if !list.Enabled || list.SampleRate != 1 || list.Captured != 2 || len(list.Traces) != 2 {
		t.Fatalf("list view: %+v", list)
	}
	for _, wt := range list.Traces {
		if wt.SpanCount == 0 || len(wt.Spans) != 0 {
			t.Fatalf("summary must count spans without expanding them: %+v", wt)
		}
	}
	resp, err = http.Get(ts.URL + "/debug/traces/" + list.Traces[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	full := decodeJSON[wireTrace](t, resp.Body)
	resp.Body.Close()
	if full.TraceID != list.Traces[0].TraceID || len(full.Spans) != full.SpanCount {
		t.Fatalf("by-id view: %+v", full)
	}
	if full.Spans[0].Name != "query" || full.Spans[0].ParentID != "" {
		t.Fatalf("expanded root: %+v", full.Spans[0])
	}
	if status, _ := getBody(t, ts.URL+"/debug/traces/not-hex"); status != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", status)
	}
	if status, _ := getBody(t, ts.URL+"/debug/traces/00000000000000ff"); status != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", status)
	}
}
