package router

import (
	"fmt"
	"sort"
	"time"

	"gcplus/internal/dataset"
	"gcplus/internal/persist"
	"gcplus/internal/shardhost"
)

// This file is the router side of the durability subsystem
// (internal/persist): WAL-append fan-out, snapshot generations, and
// warm-restart recovery. The per-shard mechanics — batch accumulation,
// append retries, rotation, replay — live in internal/shardhost; the
// router sequences them across shards and owns the generation's files.
// See the persist package comment for the on-disk layout and the
// crash-safety argument.

// enqueueWALAppends dispatches, to every shard, the owner job that
// drains the batch's pending ops into one epoch-stamped frame and
// appends it (fsynced unless NoSync). Called with seqMu held
// exclusively, right after the batch's op jobs — the transport's
// synchronous ordering guarantees the pending list holds exactly this
// batch's applied ops when the job runs. Untouched shards log an empty
// frame, keeping per-shard epochs dense.
// The replies are returned alongside the ack channels so the update
// tracer can read the host-measured append latencies once every ack has
// been drained.
func (s *Server) enqueueWALAppends(epoch uint64) ([]<-chan error, []*shardhost.WALAppendReply) {
	acks := make([]<-chan error, len(s.clients))
	replies := make([]*shardhost.WALAppendReply, len(s.clients))
	for i, c := range s.clients {
		ch := make(chan error, 1)
		acks[i] = ch
		reply := new(shardhost.WALAppendReply)
		replies[i] = reply
		c.AppendWAL(epoch, reply, func() { ch <- reply.Err })
	}
	s.obs.noteTransport("append_wal", int64(len(s.clients)))
	return acks, replies
}

// scheduleSnapshotRetry arranges a background snapshot attempt after a
// backoff that doubles with consecutive generation failures, instead of
// waiting for the next SnapshotEvery trigger. At most one retry is
// pending at a time; a failed attempt re-schedules itself through the
// collector's failure path. Also the hosts' OnDurabilityGap callback:
// a shard that latches a WAL gap gets its healing rotation this way.
func (s *Server) scheduleSnapshotRetry() {
	if s.store == nil || !s.snapRetryPending.CompareAndSwap(false, true) {
		return
	}
	d := snapRetryCap
	if n := s.snapFailures.Load(); n < 6 {
		d = snapRetryBase << n
	}
	time.AfterFunc(d, func() {
		s.snapRetryPending.Store(false)
		// ErrClosed and repeat failures need no handling here: the
		// collector's failure path schedules the next retry.
		_ = s.Snapshot()
	})
}

// Snapshot forces a snapshot generation at the current epoch and waits
// until it is durable on every shard (or fails; a failed generation
// leaves the previous one and its WAL chain intact). It returns an
// error when persistence is not configured.
func (s *Server) Snapshot() error {
	if s.store == nil {
		return fmt.Errorf("serve: persistence is not configured")
	}
	s.snapMu.Lock() // lock order: snapMu before seqMu
	s.seqMu.RLock()
	if s.closed {
		s.seqMu.RUnlock()
		s.snapMu.Unlock()
		return ErrClosed
	}
	done := s.enqueueSnapshotLocked(s.epoch) // releases snapMu when done
	s.seqMu.RUnlock()
	return <-done
}

// maybeSnapshotLocked starts an asynchronous snapshot generation at
// epoch if none is in flight. Called from Update with seqMu held
// exclusively; TryLock keeps the writer path from ever blocking on an
// in-flight generation.
func (s *Server) maybeSnapshotLocked(epoch uint64) {
	if !s.snapMu.TryLock() {
		return
	}
	s.enqueueSnapshotLocked(epoch)
}

// enqueueSnapshotLocked dispatches one snapshot-export request per shard
// and spawns the collector that writes the generation's files. Caller
// holds snapMu and seqMu (either mode); holding seqMu across the
// dispatches is what makes the generation consistent — every shard
// exports at exactly the given epoch. The collector releases snapMu and
// reports on the returned channel.
//
// The shard host does the export and WAL rotation in owner context (see
// shardhost.Host.Snapshot); encoding and file IO run off the owner — on
// this collector for the local transport (reply.Snap), on the wire
// server's writer for loopback (reply.Payload arrives pre-encoded).
func (s *Server) enqueueSnapshotLocked(epoch uint64) <-chan error {
	done := make(chan error, 1)
	start := time.Now()
	replies := make([]shardhost.SnapshotReply, len(s.clients))
	acks := make(chan int, len(s.clients))
	for i, c := range s.clients {
		c.Snapshot(epoch, &replies[i], func() { acks <- 1 })
	}
	s.obs.noteTransport("snapshot", int64(len(s.clients)))
	go func() {
		defer s.snapMu.Unlock()
		for range s.clients {
			<-acks
		}
		var firstErr error
		for i := range replies {
			if err := replies[i].RotateErr; err != nil && firstErr == nil {
				firstErr = fmt.Errorf("serve: WAL rotation: %w", err)
			}
		}
		for i := range replies {
			if firstErr != nil {
				break
			}
			payload := replies[i].Payload
			if payload == nil {
				var err error
				payload, err = persist.EncodeShardSnapshot(replies[i].Snap)
				if err != nil {
					firstErr = fmt.Errorf("serve: snapshot shard %d: %w", i, err)
					break
				}
			}
			if err := persist.WriteSnapshotFileFS(s.store.FS(), s.store.SnapshotPath(i, epoch), i, payload); err != nil {
				firstErr = fmt.Errorf("serve: snapshot shard %d: %w", i, err)
			}
		}
		if firstErr == nil {
			s.store.RemoveObsolete(epoch)
			s.lastSnapshotEpoch.Store(epoch)
			s.snapshotsWritten.Add(1)
			s.snapFailures.Store(0)
			for _, h := range s.hosts {
				// The generation itself proves everything ≤ epoch durable,
				// and the rotation anchored a fresh segment — any open
				// durability gap is healed. This is an in-process seam:
				// the collector owns the files, so only it can know the
				// generation is complete across all shards.
				h.NoteSnapshotDurable(epoch)
			}
			if s.snapHist != nil {
				s.snapHist.Observe(time.Since(start))
			}
			s.log.Info("snapshot generation durable",
				"epoch", epoch, "wall", time.Since(start),
				"generations", s.snapshotsWritten.Load())
		} else {
			// Best-effort removal of the failed generation's files: a
			// stray snap-<epoch> surviving here could later pair with a
			// different attempt's files at the same epoch and
			// masquerade as a complete generation.
			for i := range s.hosts {
				s.store.FS().Remove(s.store.SnapshotPath(i, epoch))
			}
			s.snapFailures.Add(1)
			s.log.Error("snapshot generation failed", "epoch", epoch,
				"consecutive_failures", s.snapFailures.Load(), "err", firstErr)
			s.scheduleSnapshotRetry()
		}
		done <- firstErr
	}()
	return done
}

// Recovered reports whether this server booted via warm-restart
// recovery, and if so how many cache entries were restored and the
// epoch recovery reached after WAL replay.
func (s *Server) Recovered() (entries int, epoch uint64, ok bool) {
	return s.recoveredEntries, s.recoveredEpoch, s.recovered
}

// replayFrame is one decoded WAL batch plus where it lives on disk, so
// recovery can truncate the segment chain at the cross-shard
// consistency point.
type replayFrame struct {
	batch   *persist.WALBatch
	segBase uint64
	end     int64 // offset just past the frame within its segment
}

// recover performs the warm restart: load the newest complete snapshot
// generation, replay each shard's WAL chain up to the newest batch
// durable on every shard, truncate the torn remainder, and rebuild the
// router-level id map and epoch. Recovery always drives the hosts
// directly — it is boot-time construction, before any transport client
// or host goroutine exists.
func (s *Server) recover() error {
	snaps, err := s.loadSnapshots()
	if err != nil {
		return err
	}
	snapEpoch := snaps[0].Epoch
	s.hosts = make([]*shardhost.Host, s.opts.Shards)
	s.shardNextLocal = make([]int, s.opts.Shards)
	for i, snap := range snaps {
		coreOpts, err := s.shardCoreOptions()
		if err != nil {
			return err
		}
		h, err := shardhost.NewOver(i, dataset.Restore(snap.Dataset), snap.LocalToGlobal, coreOpts, s.hostConfig())
		if err != nil {
			return err
		}
		if err := h.Runtime().RestoreState(snap.State); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		s.recoveredEntries += h.Runtime().CacheSize() + h.Runtime().CacheStats().Window
		s.hosts[i] = h
	}

	// Read each shard's segment chain: contiguous epochs starting at
	// snapEpoch+1, stopping at the first gap, torn frame or decode
	// failure. The newest batch durable on every shard is the minimum
	// of the per-shard chain ends — batches beyond it were never
	// acknowledged (their frames are not durable everywhere) and are
	// discarded exactly as if they had never happened.
	chains := make([][]replayFrame, len(s.hosts))
	safe := ^uint64(0)
	for i := range s.hosts {
		chain, err := s.readChain(i, snapEpoch)
		if err != nil {
			return err
		}
		chains[i] = chain
		last := snapEpoch
		if len(chain) > 0 {
			last = chain[len(chain)-1].batch.Epoch
		}
		if last < safe {
			safe = last
		}
	}

	for i, h := range s.hosts {
		for _, f := range chains[i] {
			if f.batch.Epoch > safe {
				break
			}
			if err := h.ReplayBatch(f.batch); err != nil {
				return fmt.Errorf("shard %d, batch %d: %w", i, f.batch.Epoch, err)
			}
		}
		if err := s.resetHostWAL(h, chains[i], snapEpoch, safe); err != nil {
			return err
		}
	}

	// Rebuild the global id map from the shard-local maps: every global
	// id ever assigned belongs to exactly one shard.
	total := 0
	for _, h := range s.hosts {
		total += len(h.LocalToGlobal())
	}
	s.loc = make([]location, total)
	seen := make([]bool, total)
	for sid, h := range s.hosts {
		l2g := h.LocalToGlobal()
		for local, gid := range l2g {
			if gid < 0 || gid >= total || seen[gid] {
				return fmt.Errorf("shard %d maps local %d to invalid or duplicate global id %d", sid, local, gid)
			}
			seen[gid] = true
			s.loc[gid] = location{shard: int32(sid), local: int32(local)}
		}
		s.shardNextLocal[sid] = len(l2g)
	}
	s.nextAdd = total
	s.epoch = safe
	s.recoveredEpoch = safe
	s.recovered = true
	s.lastSnapshotEpoch.Store(snapEpoch)
	for _, h := range s.hosts {
		// Everything replayed is durable by definition — it was read
		// back from disk.
		h.SetDurableEpoch(safe)
	}
	// Purge partial debris of generations newer than the recovery
	// point, so it can never pair up with a future generation attempt
	// at the same epoch.
	s.store.RemoveSnapshotsAfter(snapEpoch)
	return nil
}

// loadSnapshots decodes the newest complete snapshot generation. A
// decode failure is fatal, not a trigger to fall back to an older
// generation: the newest generation's WAL predecessors were deleted
// when it became durable, so booting from an older one would silently
// roll back batches that were fsynced and acknowledged — a loud
// refusal (operator restores from backup) is the only answer that
// keeps the durability contract honest.
func (s *Server) loadSnapshots() ([]*persist.ShardSnapshot, error) {
	gens := s.store.CompleteSnapshotEpochs()
	if len(gens) == 0 {
		return nil, fmt.Errorf("data directory holds state but no complete snapshot generation")
	}
	epoch := gens[0]
	snaps := make([]*persist.ShardSnapshot, s.opts.Shards)
	for i := range snaps {
		payload, err := persist.ReadSnapshotFileFS(s.store.FS(), s.store.SnapshotPath(i, epoch), i)
		if err == nil {
			snaps[i], err = persist.DecodeShardSnapshot(payload)
		}
		if err == nil && snaps[i].Epoch != epoch {
			err = fmt.Errorf("snapshot file claims epoch %d, name says %d", snaps[i].Epoch, epoch)
		}
		if err != nil {
			return nil, fmt.Errorf("newest snapshot generation %d is unreadable (shard %d): %w; refusing to roll back to an older generation", epoch, i, err)
		}
	}
	return snaps, nil
}

// readChain reads shard i's WAL segments from the snapshot epoch on,
// returning the contiguous batch chain. Unreadable or out-of-sequence
// tails are cut, not fatal — they are the expected debris of a crash.
func (s *Server) readChain(i int, snapEpoch uint64) ([]replayFrame, error) {
	segs := s.store.WALSegments(i)
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	var chain []replayFrame
	expect := snapEpoch + 1
	for _, base := range segs {
		if base < snapEpoch {
			continue // pre-generation segment awaiting cleanup
		}
		baseEpoch, frames, _, _, err := persist.ReadWALFileFS(s.store.FS(), s.store.WALPath(i, base), i)
		if err != nil {
			return nil, fmt.Errorf("shard %d, segment %d: %w", i, base, err)
		}
		if len(frames) == 0 {
			break // empty (possibly torn-header) segment ends the chain
		}
		if baseEpoch != base {
			return nil, fmt.Errorf("shard %d: segment file %d has base epoch %d", i, base, baseEpoch)
		}
		brokeChain := false
		for _, f := range frames {
			batch, err := persist.DecodeWALBatch(f.Payload)
			if err != nil || batch.Epoch != expect {
				brokeChain = true
				break // treat like a torn tail: keep the intact prefix
			}
			chain = append(chain, replayFrame{batch: batch, segBase: base, end: f.End})
			expect++
		}
		if brokeChain {
			break
		}
	}
	return chain, nil
}

// resetHostWAL puts one host's on-disk WAL in sync with the recovered
// state: the segment holding the last replayed batch is truncated just
// past it (cutting torn frames and discarded batches), later segments
// are removed, and the host's appender continues from there. With the
// WAL disabled, stale segments are left for the next snapshot's cleanup.
func (s *Server) resetHostWAL(h *shardhost.Host, chain []replayFrame, snapEpoch, safe uint64) error {
	if !s.walWanted() {
		return nil
	}
	keepBase, keepEnd := snapEpoch, int64(-1) // -1: start the base segment afresh
	for _, f := range chain {
		if f.batch.Epoch > safe {
			break
		}
		keepBase, keepEnd = f.segBase, f.end
	}
	for _, base := range s.store.WALSegments(h.ID()) {
		if base > keepBase {
			s.store.FS().Remove(s.store.WALPath(h.ID(), base))
		}
	}
	return h.ResetWAL(keepBase, keepEnd)
}
