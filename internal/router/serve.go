// Package router is the coordinator of GC+'s three-layer serving stack:
//
//	router  — placement, epoch sequencing, fan-out + sorted merge,
//	          admission control, degradation ladder, persistence
//	          coordination (this package)
//	transport — the ShardClient seam the router talks through: "local"
//	          (direct in-process calls) or "loopback" (real TCP framing)
//	shardhost — one Host per shard, owning that partition's dataset,
//	          runtime, GC+ cache and durability state
//
// # Architecture
//
// A core.Runtime is deliberately single-threaded (the paper's evaluation
// harness is single-streamed), so the available concurrency is shard-level
// parallelism. The Server partitions the dataset round-robin over N
// shard hosts; each host runs one worker goroutine — collectively the
// query worker pool — that owns the shard's dataset, runtime and cache
// exclusively and drains a FIFO job queue. A query fans out one request
// per shard through the transport clients, the shards prune and verify
// their partitions in parallel (per-shard CON validation runs exactly as
// in §5.2 against the shard's own update log), and the router unions the
// per-shard answers, already translated to global ids host-side.
//
// The router addresses shards only through the transport.ShardClient
// interface — it cannot tell an in-process Host from one behind a
// socket. The consistency protocol below survives that indirection
// because every ShardClient method fixes its shard's call order
// synchronously, at call time, before returning.
//
// # Epoch-sequenced consistency
//
// Dataset changes flow through a single-writer update path. An update
// batch acquires the sequence lock exclusively, routes each operation to
// the shard owning its target graph, enqueues the operations on the shard
// workers, and advances the epoch — execution and result collection
// happen after the lock is released. Queries likewise acquire the
// sequence lock shared only while *enqueueing* their per-shard jobs
// (snapshotting the epoch at that instant), not while executing. Because
// enqueues are atomic under the lock and each shard worker drains its
// queue in FIFO order, every shard observes a given query strictly before
// or strictly after a given update batch — the same side on every shard.
// Hence each query sees one consistent dataset version: exactly the
// batches with epoch ≤ its snapshot, never a torn mid-batch state, and
// the per-shard GC+ caches reconcile (Algorithms 1+2, or an EVI purge)
// against precisely that version before pruning. Theorems 3 and 6 then
// apply per shard, and the union over a partition preserves them, so
// concurrent serving keeps the paper's no-false-positives /
// no-false-negatives guarantee.
package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/obs"
	"gcplus/internal/persist"
	"gcplus/internal/shardhost"
	"gcplus/internal/subiso"
	"gcplus/internal/trace"
	"gcplus/internal/transport"
)

// ErrClosed is returned by operations on a closed Server. It is the
// transport layer's sentinel so the same closed-server failure is
// recognized whether it was raised router-side or decoded off the wire.
var ErrClosed = transport.ErrClosed

// Transport names accepted by Options.Transport.
const (
	// TransportLocal reaches shard hosts by direct in-process calls —
	// the zero-overhead default.
	TransportLocal = "local"
	// TransportLoopback runs every shard host behind a real TCP
	// connection on the loopback interface, in the same process: the
	// full wire path (framing, codecs, cancel frames, piggybacked
	// pressure signals) with none of the deployment. It exists to
	// rehearse the cluster seam and must be answer-identical to local.
	TransportLoopback = "loopback"
)

// validTransport reports whether t names a supported transport ("" means
// TransportLocal).
func validTransport(t string) bool {
	return t == "" || t == TransportLocal || t == TransportLoopback
}

// Options configures a Server. The zero value gives 4 shards with the
// paper-default CON cache (capacity 100, window 20, HD policy) and VF2.
type Options struct {
	// Shards is the number of runtime shards (default 4).
	Shards int
	// Method names Method M's sub-iso verifier: "VF2" (default), "VF2+",
	// "GQL". Each shard gets its own verifier instance.
	Method string
	// Cache configures each shard's GC+ cache — capacity, window,
	// model, policy, repair queue, and the query index backing
	// sub-linear hit discovery (cache.Config.DisableHitIndex /
	// HitIndexPathLen; the index is on by default and is what makes
	// per-shard capacities in the thousands serve without hit discovery
	// becoming the bottleneck). Nil means the default CON cache; use
	// DisableCache for the raw Method M baseline.
	Cache *cache.Config
	// DisableCache turns GC+ caching off on every shard.
	DisableCache bool
	// EagerValidate runs cache reconciliation (CON validation or EVI
	// purge) on each shard as part of applying an update, instead of
	// lazily before the shard's next query. This moves the consistency
	// cost from the query path to the update path — the serving-friendly
	// trade — at the price of validating even if no query arrives.
	EagerValidate bool
	// VerifyParallelism bounds each shard runtime's intra-query
	// verification worker pool (1 = sequential). 0 picks an
	// oversubscription-free default: GOMAXPROCS divided by the shard
	// count (min 1), so shard fan-out times intra-query fan-out stays
	// near the core count. Raise it explicitly for few-shard,
	// latency-sensitive deployments where single queries face large
	// candidate sets.
	VerifyParallelism int
	// EnablePlanner turns on each shard runtime's cost-based query
	// planner and compiled-plan cache (core.Options.EnablePlanner):
	// per-query algorithm and parallelism choice from measured cost
	// moments, with plans cached under the canonical query key so
	// isomorphic repeats skip compilation. Answers are bit-identical
	// either way.
	EnablePlanner bool
	// PlanCacheSize bounds each shard's compiled-plan cache; 0 means the
	// core default, negative disables plan caching while keeping the
	// planner's choices. Only meaningful with EnablePlanner.
	PlanCacheSize int
	// RepairParallelism bounds each shard's background repair worker:
	// validity bits cleared by CON validation are re-verified off the
	// query path by up to this many goroutines and restored when the
	// verified relation still holds. 0 picks the default of 1 worker per
	// shard. Repair applies only to CON caches; see DisableRepair.
	RepairParallelism int
	// DisableRepair turns the background repair pipeline off, leaving
	// cleared validity bits dead until a future query re-verifies them
	// on the hot path (the pre-repair behavior, and the baseline the
	// gcbench update-heavy scenario compares against).
	DisableRepair bool
	// DataDir enables the durability subsystem (internal/persist): a
	// per-shard write-ahead log of update batches plus periodic
	// snapshots of dataset and cache state under this directory. A boot
	// that finds recoverable state there performs a warm restart —
	// the initial graph slice is ignored in that case — loading the
	// newest complete snapshot generation, replaying the WAL tail and
	// queueing replay-touched validity bits for background repair.
	// Empty (the default) disables persistence entirely.
	DataDir string
	// SnapshotEvery is the number of update batches between automatic
	// snapshot generations (default DefaultSnapshotEvery). Snapshots
	// also happen at boot (anchoring the WAL chain) and at graceful
	// Close. Only meaningful with DataDir.
	SnapshotEvery int
	// DisableWAL turns the write-ahead log off, leaving snapshots as
	// the only durability mechanism: a crash loses every batch applied
	// since the last snapshot generation. Only meaningful with DataDir.
	DisableWAL bool
	// NoSync skips the fsync after each WAL append (snapshot files are
	// always fsynced). Batches survive a process crash but not a
	// machine crash — the usual group-durability trade for tests and
	// benchmarks.
	NoSync bool
	// SlowLogThreshold enables the slow-query log: every query whose
	// end-to-end wall time meets or exceeds it is captured — with its
	// per-shard stage trace and the query text — into a bounded
	// in-memory ring readable via SlowQueries / GET /debug/slowlog.
	// Zero (the default) disables capture.
	SlowLogThreshold time.Duration
	// SlowLogSize bounds the slow-query ring (default 128). Older
	// entries are overwritten; the drop count is retained.
	SlowLogSize int
	// TraceSampleRate is the distributed-tracing head-sampling rate: the
	// fraction of requests whose spans are collected end to end (router
	// stages plus per-shard subtrees piggybacked on reply frames). 0
	// means DefaultTraceSampleRate; negative disables tracing entirely.
	// Independent of the rate, every anomalous request — slow, error,
	// shed, deadline-exceeded, degraded — is retained with a trace
	// synthesized from its reply stats (tail-based retention), so the
	// pathological cases are always inspectable at GET /debug/traces.
	TraceSampleRate float64
	// TraceStoreSize bounds the in-memory trace store's normal ring
	// (default trace.DefaultStoreSize); anomalous traces rotate through
	// a reserved quarter-size ring normal traffic cannot evict.
	TraceStoreSize int
	// ReadyMaxPendingRepairs is the readiness threshold: GET /readyz
	// reports ready only while the summed per-shard repair backlog is at
	// or below it. 0 means the default (DefaultRepairQueue); negative
	// means "any backlog marks the server unready".
	ReadyMaxPendingRepairs int
	// Logger receives structured lifecycle events (recovery summaries,
	// snapshot generations, WAL errors, repair-queue drops, shutdown).
	// Nil discards them.
	Logger *slog.Logger

	// QueryTimeout bounds each query end to end: queue wait, cache sync,
	// hit discovery and verification all count against it. An expired
	// query returns a core.CancelError (HTTP 504) and its shard jobs
	// abort at their next cooperative checkpoint. 0 disables the
	// per-request deadline (callers can still pass their own context).
	QueryTimeout time.Duration
	// UpdateTimeout bounds the admission of an update batch: the
	// deadline is checked up to the moment the batch is enqueued, after
	// which it runs to completion (batches are atomic — a half-applied
	// batch would tear the epoch). 0 disables it.
	UpdateTimeout time.Duration
	// MaxInFlightQueries bounds concurrently admitted queries. Beyond
	// the bound new queries fast-fail with OverloadError (HTTP 429 +
	// Retry-After) instead of convoying on the sequence lock. 0 means
	// DefaultMaxInFlightQueries; negative disables admission control.
	MaxInFlightQueries int
	// MaxInFlightUpdates bounds concurrently admitted update batches
	// the same way. 0 means DefaultMaxInFlightUpdates; negative
	// disables the bound.
	MaxInFlightUpdates int
	// WALPolicy selects what a WAL append failure (after the bounded
	// in-place retries) means: WALPolicyFailUpdate (default) or
	// WALPolicyDegradeToVolatile. See the constants for the contract.
	WALPolicy string
	// DisableDegradation turns the pressure controller off: the server
	// never caps verification or bypasses the cache under load, only
	// sheds at the admission bound.
	DisableDegradation bool
	// Transport selects how the router reaches its shard hosts:
	// TransportLocal (default) or TransportLoopback. Answers, epochs and
	// stats are bit-identical across transports; only the seam differs.
	Transport string
	// Faults installs the chaos harness's fault-injection hooks (nil in
	// production). Deliberately not surfaced on the public facade.
	Faults *FaultInjection

	// pressureInterval overrides the controller's evaluation cadence in
	// in-package tests: 0 means defaultPressureInterval, negative means
	// "create the controller but do not start its ticker" so tests can
	// drive evaluate() deterministically.
	pressureInterval time.Duration
}

// Admission-control defaults. The query bound is sized well above the
// shard fan-out's useful concurrency (a query occupies every shard, so
// beyond a few dozen in flight extra admissions only deepen queue wait)
// and above typical benchmark client counts, so fault-free throughput
// is unaffected; the update bound is tighter because updates serialize
// on the single-writer path anyway.
const (
	DefaultMaxInFlightQueries = 64
	DefaultMaxInFlightUpdates = 16
)

// resolveLimit maps an Options in-flight bound to the semaphore size:
// 0 picks the default, negative disables (returns 0).
func resolveLimit(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// DefaultSnapshotEvery is the default number of update batches between
// automatic snapshot generations.
const DefaultSnapshotEvery = 256

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Method == "" {
		o.Method = "VF2"
	}
	if o.Cache == nil && !o.DisableCache {
		o.Cache = &cache.Config{}
	}
	o.VerifyParallelism = ResolveVerifyParallelism(o.VerifyParallelism, o.Shards)
	o.RepairParallelism = ResolveRepairParallelism(o.RepairParallelism, o.repairEnabled())
	if o.DataDir != "" && o.SnapshotEvery <= 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.RepairParallelism > 0 && o.Cache.RepairQueue == 0 {
		// Copy before defaulting: the Config pointer belongs to the
		// caller and must not be mutated as a side effect.
		cfg := *o.Cache
		cfg.RepairQueue = DefaultRepairQueue
		o.Cache = &cfg
	}
	if o.SlowLogSize <= 0 {
		o.SlowLogSize = DefaultSlowLogSize
	}
	switch {
	case o.ReadyMaxPendingRepairs == 0:
		o.ReadyMaxPendingRepairs = DefaultRepairQueue
	case o.ReadyMaxPendingRepairs < 0:
		o.ReadyMaxPendingRepairs = 0
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.WALPolicy == "" {
		o.WALPolicy = WALPolicyFailUpdate
	}
	return o
}

// repairEnabled reports whether the configuration supports background
// repair: a CON cache (EVI purges wholesale — there is nothing to
// repair) with repair not explicitly disabled.
func (o Options) repairEnabled() bool {
	return !o.DisableRepair && !o.DisableCache &&
		o.Cache != nil && o.Cache.Model == cache.ModelCON
}

// DefaultRepairQueue is the per-shard bound on queued invalidated
// (entry, graph) pairs awaiting repair. Beyond it the validator drops
// pairs (they simply stay invalid), keeping repair memory bounded under
// pathological churn.
const DefaultRepairQueue = 4096

// ResolveRepairParallelism returns the per-shard repair worker count a
// Server with the given settings runs with: 0 when repair is disabled,
// otherwise the configured value with a floor of 1. Exported so
// harnesses recording benchmark configurations can log the effective
// value.
func ResolveRepairParallelism(repairPar int, enabled bool) int {
	if !enabled {
		return 0
	}
	if repairPar < 1 {
		return 1
	}
	return repairPar
}

// ResolveVerifyParallelism returns the per-shard verification worker
// count a Server with the given settings runs with: non-positive values
// resolve to GOMAXPROCS divided by the shard count (min 1). Exported so
// harnesses recording benchmark configurations can log the effective
// value instead of the machine-dependent zero.
func ResolveVerifyParallelism(verifyPar, shards int) int {
	if verifyPar > 0 {
		return verifyPar
	}
	if shards < 1 {
		shards = 1
	}
	if vp := runtime.GOMAXPROCS(0) / shards; vp > 1 {
		return vp
	}
	return 1
}

// location addresses one global graph id inside the shard space.
type location struct {
	shard int32
	local int32
}

// Server is the sharded front-end. All exported methods are safe for
// concurrent use.
type Server struct {
	opts Options
	// hosts are the shard owners; the router touches them directly only
	// at boot (construction, recovery, Start) and for the in-process
	// durability seam (NoteSnapshotDurable). Everything on the serving
	// path goes through clients.
	hosts   []*shardhost.Host
	clients []transport.ShardClient
	// loopback is the in-process wire server all clients dial when the
	// loopback transport is selected (nil for local).
	loopback      *transport.LoopbackServer
	transportKind string

	// seqMu orders job enqueues: queries enqueue under RLock, update
	// batches apply under Lock. This is the epoch sequencer — see the
	// package comment for why enqueue-order atomicity plus per-shard FIFO
	// queues yield per-query dataset-version consistency.
	seqMu  sync.RWMutex
	epoch  uint64
	closed bool

	// writerMu serializes the single-writer update path end to end
	// (target resolution + application + id-map maintenance).
	writerMu sync.Mutex
	// loc maps global graph id -> owning shard and shard-local id; only
	// the update path reads or grows it.
	loc []location
	// nextAdd round-robins ADD placement across shards. Invariant:
	// nextAdd == len(loc), which is what makes ADD placement replayable
	// after a warm restart.
	nextAdd int
	// shardNextLocal is the next local id each shard will assign to an
	// ADD — placement bookkeeping, maintained writer-side at enqueue
	// time so later ops in a batch can target a graph an earlier op is
	// about to add (the host's own map only grows when the job runs).
	shardNextLocal []int

	// Durability state (nil store when persistence is off).
	store   *persist.Store
	started time.Time
	// snapMu serializes snapshot generations; lock order is snapMu
	// before seqMu (automatic triggers inside Update use TryLock, so
	// they never block the writer path on an in-flight snapshot).
	snapMu            sync.Mutex
	lastSnapshotEpoch atomic.Uint64
	snapshotsWritten  atomic.Int64
	// recoveredEntries/recoveredEpoch describe the warm restart this
	// server booted from (zero on a cold boot); written once in New.
	recoveredEntries int
	recoveredEpoch   uint64
	recovered        bool

	// Observability (built once in New, before the shards start).
	log      *slog.Logger
	obs      *serverObs
	slow     *slowLog
	snapHist *obs.Histogram // snapshot-generation wall time (nil without persistence)
	// Tracing state: nil traces means tracing is disabled. cacheOn
	// mirrors !DisableCache for router-side shard-span synthesis;
	// traceRate is the resolved head-sampling rate for /debug/traces.
	traces    *trace.Store
	sampler   *trace.Sampler
	cacheOn   bool
	traceRate float64

	// Resilience state. The semaphores are nil when the corresponding
	// admission bound is disabled; press is nil when degradation is off.
	querySem                 chan struct{}
	updateSem                chan struct{}
	press                    *pressure
	now                      func() time.Time // time.Now, or the clock-skew hook
	shedQueries, shedUpdates atomic.Int64
	deadlines                deadlineCounters
	// snapRetry tracks the snapshot-retry backoff: pending latches while
	// a retry is scheduled, failures counts consecutive failed
	// generations (doubling the delay) and resets on success.
	snapRetryPending atomic.Bool
	snapFailures     atomic.Int64
}

// deadlineCounters tallies deadline expiries by the stage the request
// was in when it gave up, mirrored to
// gcplus_deadline_exceeded_total{stage}. "wait" is the front-end
// abandoning still-running shard jobs; "queue" is a shard job finding
// the deadline already expired before it started; the rest are the
// runtime's cooperative checkpoint stages.
type deadlineCounters struct {
	queue, syncStage, hit, verify, wait, update, other atomic.Int64
}

func (d *deadlineCounters) bucket(stage string) *atomic.Int64 {
	switch stage {
	case "queue":
		return &d.queue
	case "sync":
		return &d.syncStage
	case "hit":
		return &d.hit
	case "verify":
		return &d.verify
	case "wait":
		return &d.wait
	case "update":
		return &d.update
	}
	return &d.other
}

func (d *deadlineCounters) total() int64 {
	return d.queue.Load() + d.syncStage.Load() + d.hit.Load() +
		d.verify.Load() + d.wait.Load() + d.update.Load() + d.other.Load()
}

// noteDeadline records a deadline expiry if err is one (first-error-wins
// means each expired request is counted exactly once).
func (s *Server) noteDeadline(err error) {
	var ce *core.CancelError
	if errors.As(err, &ce) {
		s.deadlines.bucket(ce.Stage).Add(1)
	}
}

// buildVersion is the module version baked into the binary, surfaced on
// /stats so restarted-vs-warm instances are distinguishable next to a
// deploy log.
var buildVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		v := bi.Main.Version
		var rev string
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				rev = s.Value
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		switch {
		case v != "" && v != "(devel)":
			return v
		case rev != "":
			return "devel+" + rev
		}
	}
	return "unknown"
}()

// New builds a Server over the initial dataset graphs, which receive
// global ids 0..len(initial)-1 and are partitioned round-robin across the
// shards. The graphs are treated as immutable and owned by the Server.
//
// With Options.DataDir set, New first looks for recoverable state: if a
// snapshot generation exists there, the server warm-restarts from it —
// the initial slice is ignored — replaying the WAL tail and scheduling
// background repair for replay-touched validity bits (see Recovered).
// On a cold boot with persistence, New writes the initial snapshot
// generation (anchoring the WAL chain) before returning.
func New(initial []*graph.Graph, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if !validWALPolicy(opts.WALPolicy) {
		return nil, fmt.Errorf("serve: unknown WAL policy %q (want %q or %q)",
			opts.WALPolicy, WALPolicyFailUpdate, WALPolicyDegradeToVolatile)
	}
	if !validTransport(opts.Transport) {
		return nil, fmt.Errorf("serve: unknown transport %q (want %q or %q)",
			opts.Transport, TransportLocal, TransportLoopback)
	}
	s := &Server{opts: opts, log: opts.Logger, now: time.Now}
	s.transportKind = opts.Transport
	if s.transportKind == "" {
		s.transportKind = TransportLocal
	}
	if opts.Faults != nil && opts.Faults.Now != nil {
		s.now = opts.Faults.Now
	}
	s.started = s.now()
	if n := resolveLimit(opts.MaxInFlightQueries, DefaultMaxInFlightQueries); n > 0 {
		s.querySem = make(chan struct{}, n)
	}
	if n := resolveLimit(opts.MaxInFlightUpdates, DefaultMaxInFlightUpdates); n > 0 {
		s.updateSem = make(chan struct{}, n)
	}
	s.slow = newSlowLog(opts.SlowLogSize)
	s.cacheOn = !opts.DisableCache
	if rate := opts.TraceSampleRate; rate >= 0 {
		if rate == 0 {
			rate = DefaultTraceSampleRate
		}
		s.traceRate = rate
		s.sampler = trace.NewSampler(rate)
		s.traces = trace.NewStore(opts.TraceStoreSize)
	}
	if opts.DataDir != "" {
		fsys := persist.OSFS
		if opts.Faults != nil && opts.Faults.FS != nil {
			fsys = opts.Faults.FS
		}
		store, err := persist.OpenStoreFS(fsys, opts.DataDir, opts.Shards)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	// Boot failures past this point must release the data directory's
	// lock (and any opened files and sockets) before reporting. Hosts
	// are not started yet on any failing path, so no goroutines to stop.
	fail := func(err error) (*Server, error) {
		for _, c := range s.clients {
			if c != nil {
				c.Close()
			}
		}
		if s.loopback != nil {
			s.loopback.Close()
		}
		for _, h := range s.hosts {
			if h != nil {
				h.CloseWAL(false)
			}
		}
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	if s.store != nil && s.store.HasState() {
		if err := s.recover(); err != nil {
			return fail(fmt.Errorf("serve: warm-restart recovery: %w", err))
		}
	} else if err := s.buildCold(initial); err != nil {
		return fail(err)
	}
	if !opts.DisableDegradation {
		s.press = newPressure(s)
	}
	if err := s.buildClients(); err != nil {
		return fail(fmt.Errorf("serve: %s transport: %w", s.transportKind, err))
	}
	s.initObs()
	for _, h := range s.hosts {
		h.SetLogger(s.log)
		h.SetClock(s.now)
		if opts.Faults != nil {
			h.SetStall(opts.Faults.ShardStall)
		}
		h.Start(opts.RepairParallelism)
	}
	if s.press != nil && opts.pressureInterval >= 0 {
		iv := opts.pressureInterval
		if iv == 0 {
			iv = defaultPressureInterval
		}
		s.press.start(iv)
	}
	if s.recovered {
		s.log.Info("warm restart complete",
			"epoch", s.recoveredEpoch, "cache_entries", s.recoveredEntries,
			"shards", len(s.hosts), "transport", s.transportKind)
	} else {
		s.log.Info("cold boot", "shards", len(s.hosts), "graphs", len(s.loc),
			"persist", s.store != nil, "transport", s.transportKind)
	}
	if s.recovered {
		// Reconcile each shard cache with the replayed log suffix off
		// the query path: the CON validation sweep clears the validity
		// bit of every replay-touched (entry, graph) pair and hands the
		// pairs to the background repair pipeline, so recovery never
		// trusts validity bits the replay may have invalidated.
		for _, c := range s.clients {
			c.Sync(nil)
		}
	} else if s.store != nil {
		if err := s.Snapshot(); err != nil {
			s.closeImpl(false)
			return nil, fmt.Errorf("serve: initial snapshot: %w", err)
		}
	}
	return s, nil
}

// buildCold constructs the shard hosts from the initial dataset (no
// goroutines are started; error paths simply abandon the structures).
func (s *Server) buildCold(initial []*graph.Graph) error {
	opts := s.opts
	s.hosts = make([]*shardhost.Host, opts.Shards)
	s.shardNextLocal = make([]int, opts.Shards)
	s.loc = make([]location, len(initial))
	s.nextAdd = len(initial)
	parts := make([][]*graph.Graph, opts.Shards)
	gids := make([][]int, opts.Shards)
	for gid, g := range initial {
		if g == nil {
			return fmt.Errorf("serve: initial graph %d is nil", gid)
		}
		sid := gid % opts.Shards
		s.loc[gid] = location{shard: int32(sid), local: int32(len(parts[sid]))}
		parts[sid] = append(parts[sid], g)
		gids[sid] = append(gids[sid], gid)
	}
	for i := range s.hosts {
		coreOpts, err := s.shardCoreOptions()
		if err != nil {
			return err
		}
		h, err := shardhost.New(i, parts[i], gids[i], coreOpts, s.hostConfig())
		if err != nil {
			return err
		}
		s.hosts[i] = h
		s.shardNextLocal[i] = len(gids[i])
	}
	return nil
}

// hostConfig is the durability/policy configuration every shard host is
// built with. OnDurabilityGap closes the control loop: a host that
// latches a WAL durability gap asks the router for the healing snapshot
// rotation.
func (s *Server) hostConfig() shardhost.Config {
	return shardhost.Config{
		Store:           s.store,
		WAL:             s.walWanted(),
		NoSync:          s.opts.NoSync,
		WALPolicy:       s.opts.WALPolicy,
		FailUpdateOnGap: s.opts.WALPolicy == WALPolicyFailUpdate,
		OnDurabilityGap: s.scheduleSnapshotRetry,
	}
}

// buildClients wires one transport.ShardClient per shard host according
// to the selected transport. For loopback, every host is served behind
// one TCP listener and each client gets its own connection — the
// ShardClient ordering contract rides on that single ordered stream.
func (s *Server) buildClients() error {
	s.clients = make([]transport.ShardClient, len(s.hosts))
	if s.transportKind != TransportLoopback {
		for i, h := range s.hosts {
			s.clients[i] = transport.NewLocal(h)
		}
		return nil
	}
	lb, err := transport.ServeLoopback(s.hosts)
	if err != nil {
		return err
	}
	s.loopback = lb
	for i := range s.hosts {
		c, err := transport.DialLoopback(lb.Addr(), i)
		if err != nil {
			return err
		}
		s.clients[i] = c
	}
	return nil
}

// shardCoreOptions builds one shard runtime's options (each shard gets
// its own verifier instance and its own copy of the cache config).
func (s *Server) shardCoreOptions() (core.Options, error) {
	algo, err := subiso.New(s.opts.Method)
	if err != nil {
		return core.Options{}, err
	}
	coreOpts := core.Options{
		Algorithm:         algo,
		VerifyParallelism: s.opts.VerifyParallelism,
		EnablePlanner:     s.opts.EnablePlanner,
		PlanCacheSize:     s.opts.PlanCacheSize,
	}
	if !s.opts.DisableCache {
		cfg := *s.opts.Cache
		coreOpts.Cache = &cfg
	}
	return coreOpts, nil
}

// walWanted reports whether update batches should be logged.
func (s *Server) walWanted() bool { return s.store != nil && !s.opts.DisableWAL }

func (s *Server) stopHosts() {
	for _, h := range s.hosts {
		if h != nil {
			h.Stop()
		}
	}
}

// Close shuts the server down gracefully: a final snapshot generation is
// written (when persistence is on), shard job queues drain, and WAL
// segments are flushed and closed. Queries and updates issued after
// Close return ErrClosed. The returned error reports a failed final
// snapshot — the server is down either way, but the data directory then
// holds the previous generation plus the WAL instead of a fresh
// generation (with the WAL disabled that means batches since the last
// generation are lost; callers should surface it loudly).
func (s *Server) Close() error { return s.closeImpl(true) }

// CloseAbrupt shuts the server down without the final snapshot — the
// crash-shaped shutdown: whatever the WAL and the last snapshot
// generation already made durable is all a subsequent boot recovers.
// Crash-recovery tests and the warm-restart benchmark use it to exercise
// the WAL replay path deterministically.
func (s *Server) CloseAbrupt() { _ = s.closeImpl(false) }

func (s *Server) closeImpl(flush bool) error {
	flush = flush && s.store != nil
	holdsSnapMu := false
	if s.store != nil {
		// Acquiring snapMu waits out any in-flight snapshot
		// generation's collector — even on the crash-shaped path, where
		// the collector's file writes and obsolete-chain cleanup must
		// not race a successor process that grabs the directory lock
		// the moment we release it. Lock order: snapMu before seqMu.
		s.snapMu.Lock()
		holdsSnapMu = true
	}
	s.seqMu.Lock()
	if s.closed {
		s.seqMu.Unlock()
		if holdsSnapMu {
			s.snapMu.Unlock()
		}
		return nil
	}
	var snapDone <-chan error
	if flush {
		snapDone = s.enqueueSnapshotLocked(s.epoch) // releases snapMu when done
		holdsSnapMu = false
	}
	s.closed = true
	s.seqMu.Unlock()
	if s.press != nil {
		s.press.stop()
	}
	var flushErr error
	if snapDone != nil {
		// On failure the previous generation plus the WAL chain remain
		// — still recoverable, but the caller must hear about it.
		flushErr = <-snapDone
	}
	s.stopHosts()
	for i, h := range s.hosts {
		// flush=false is crash-shaped: no final fsync — recovery must
		// cope with exactly what the kernel happened to have, like
		// after a real crash — and its close error is deliberately not
		// reported.
		if err := h.CloseWAL(flush); flush && err != nil && flushErr == nil {
			flushErr = fmt.Errorf("serve: closing shard %d WAL: %w", i, err)
		}
	}
	for _, c := range s.clients {
		c.Close()
	}
	if s.loopback != nil {
		s.loopback.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
	if holdsSnapMu {
		s.snapMu.Unlock()
	}
	if flushErr != nil {
		s.log.Error("shutdown with failed final snapshot", "err", flushErr)
	} else {
		s.log.Info("server closed", "final_snapshot", flush)
	}
	return flushErr
}

// Shards returns the number of runtime shards.
func (s *Server) Shards() int { return len(s.hosts) }

// Transport names the shard transport this server was built with
// ("local" or "loopback").
func (s *Server) Transport() string { return s.transportKind }

// Epoch returns the current dataset version (the number of update batches
// applied so far).
func (s *Server) Epoch() uint64 {
	s.seqMu.RLock()
	defer s.seqMu.RUnlock()
	return s.epoch
}

// QueryResult is one query's outcome: the merged answer over all shards
// plus the dataset version it reflects and aggregated execution stats.
type QueryResult struct {
	// IDs is the answer set as ascending global dataset graph ids.
	IDs []int `json:"ids"`
	// Epoch is the dataset version the answer reflects: the query
	// observed exactly the update batches 1..Epoch.
	Epoch uint64 `json:"epoch"`
	// Kind is "sub" or "super".
	Kind string `json:"kind"`
	// Wall is the end-to-end front-end latency.
	Wall time.Duration `json:"wall_ns"`
	// Candidates sums |CS_M| over shards (the live dataset size).
	Candidates int `json:"candidates"`
	// SubIsoTests sums the Method M tests executed across shards.
	SubIsoTests int `json:"subiso_tests"`
	// TestsSaved sums the spared tests across shards.
	TestsSaved int `json:"tests_saved"`
	// ZeroTestShards counts shards that answered without any sub-iso
	// test (§6.3 optimal cases or a fully pruned candidate set).
	ZeroTestShards int `json:"zero_test_shards"`
	// Truncated reports that a limited query's answer may be a proper
	// prefix of the full answer set: the merged IDs were cut to the
	// limit, or at least one shard stopped verification early. The IDs
	// present are still exact — the smallest len(IDs) answers.
	Truncated bool `json:"truncated,omitempty"`
	// PerShard holds the raw per-shard execution stats, shard order.
	PerShard []core.QueryStats `json:"-"`
	// Transport holds the per-shard transport overhead, shard order: the
	// router-observed round trip minus the host-measured service time
	// (clamped at zero). Surfaced as transport_us in the query trace.
	Transport []time.Duration `json:"-"`
	// Queue holds the per-shard owner-queue wait, shard order: the time
	// the shard job spent enqueued behind the owner goroutine before it
	// started. Surfaced as queue_us in the query trace.
	Queue []time.Duration `json:"-"`
	// TraceID is the retained distributed trace's id, zero when the
	// query was neither head-sampled nor anomalous (or tracing is off).
	// Fetch the full span tree at GET /debug/traces/{id}.
	TraceID trace.ID `json:"-"`
}

// SubgraphQuery answers "which live dataset graphs contain q?" across all
// shards.
func (s *Server) SubgraphQuery(q *graph.Graph) (*QueryResult, error) {
	return s.query(context.Background(), q, cache.KindSub, 0)
}

// SupergraphQuery answers "which live dataset graphs are contained in q?"
// across all shards.
func (s *Server) SupergraphQuery(q *graph.Graph) (*QueryResult, error) {
	return s.query(context.Background(), q, cache.KindSuper, 0)
}

// SubgraphQueryCtx is SubgraphQuery under a caller deadline: when ctx
// (or the server's QueryTimeout, whichever is sooner) expires, the
// front-end returns a core.CancelError immediately and the per-shard
// work aborts at its next cooperative checkpoint.
func (s *Server) SubgraphQueryCtx(ctx context.Context, q *graph.Graph) (*QueryResult, error) {
	return s.query(ctx, q, cache.KindSub, 0)
}

// SupergraphQueryCtx is SupergraphQuery under a caller deadline.
func (s *Server) SupergraphQueryCtx(ctx context.Context, q *graph.Graph) (*QueryResult, error) {
	return s.query(ctx, q, cache.KindSuper, 0)
}

// SubgraphQueryLimitCtx is SubgraphQueryCtx returning at most limit
// answers — exactly the limit smallest global ids of the full answer
// set. Each shard streams its verification in ascending id order and
// stops after limit local answers; any global top-limit id has fewer
// than limit predecessors overall, hence fewer than limit within its
// own shard, so the per-shard prefixes always cover the global prefix
// and the merged-and-cut result is exact. QueryResult.Truncated reports
// whether anything was cut. limit <= 0 means unlimited.
func (s *Server) SubgraphQueryLimitCtx(ctx context.Context, q *graph.Graph, limit int) (*QueryResult, error) {
	return s.query(ctx, q, cache.KindSub, limit)
}

// SupergraphQueryLimitCtx is SupergraphQueryCtx with an answer limit;
// see SubgraphQueryLimitCtx for the exactness argument.
func (s *Server) SupergraphQueryLimitCtx(ctx context.Context, q *graph.Graph, limit int) (*QueryResult, error) {
	return s.query(ctx, q, cache.KindSuper, limit)
}

func (s *Server) query(ctx context.Context, q *graph.Graph, kind cache.Kind, limit int) (*QueryResult, error) {
	if q == nil {
		return nil, errors.New("serve: nil query graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if t := s.opts.QueryTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	qt := s.beginTrace("query", kind.String())
	// Admission control: fast-fail instead of convoying on the sequence
	// lock when the in-flight bound is saturated.
	if s.querySem != nil {
		select {
		case s.querySem <- struct{}{}:
			defer func() { <-s.querySem }()
		default:
			s.shedQueries.Add(1)
			qt.finishShed(s)
			return nil, &OverloadError{Kind: "query", Limit: cap(s.querySem)}
		}
	}
	// Apply the active degradation rung. Both rungs keep answers exact:
	// capping verification only slows this query, and bypassing the
	// cache is pure Method M — sound by construction.
	var qopt core.QueryOptions
	if limit > 0 {
		qopt.Limit = limit
	}
	rung, rungName := 0, ""
	if s.press != nil {
		lvl := s.press.Level()
		rung, rungName = int(lvl), lvl.String()
		switch {
		case lvl >= DegradeCacheBypass:
			qopt.BypassCache = true
			qopt.MaxVerifyParallelism = 1
		case lvl >= DegradeCappedVerify:
			qopt.MaxVerifyParallelism = 1
		}
	}
	start := s.now()
	qt.noteAdmitted(start, rung, rungName)
	req := &shardhost.QueryRequest{Kind: kind, Query: q, Opts: qopt, Trace: qt.wireContext()}
	replies := make([]shardhost.QueryReply, len(s.clients))
	rtts := make([]int64, len(s.clients))
	var wg sync.WaitGroup
	done := ctx.Done() // nil for Background: the whole ctx plumbing is then free

	// Dispatch one request per shard atomically w.r.t. update batches —
	// every ShardClient fixes its shard's call order synchronously, so
	// the epoch read here is exactly the dataset version every shard
	// will answer at (FIFO queues — see package comment).
	s.seqMu.RLock()
	if s.closed {
		s.seqMu.RUnlock()
		return nil, ErrClosed
	}
	epoch := s.epoch
	wg.Add(len(s.clients))
	for i, c := range s.clients {
		at := time.Now()
		c.Query(ctx, req, &replies[i], func() {
			rtts[i] = time.Since(at).Nanoseconds()
			wg.Done()
		})
	}
	s.seqMu.RUnlock()
	s.obs.noteTransport("query", int64(len(s.clients)))
	if done == nil {
		wg.Wait()
	} else {
		// Deadline-bounded wait: give up the moment ctx expires instead
		// of riding out a stalled shard. The abandoned jobs abort at
		// their next checkpoint and only touch replies/rtts/wg, which
		// stay alive until they finish — the error path never reads
		// them.
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-done:
			err := &core.CancelError{Stage: "wait", Err: ctx.Err()}
			s.noteDeadline(err)
			qt.finishEarly(s, err)
			return nil, err
		}
	}
	qt.noteFanoutDone(s.now())

	out := &QueryResult{
		Epoch: epoch, Kind: kind.String(),
		PerShard:  make([]core.QueryStats, len(s.clients)),
		Transport: make([]time.Duration, len(s.clients)),
		Queue:     make([]time.Duration, len(s.clients)),
	}
	total := 0
	for i := range replies {
		if err := replies[i].Err; err != nil {
			s.noteDeadline(err)
			qt.finishReplyErr(s, err, replies, start)
			return nil, err
		}
		total += len(replies[i].IDs)
	}
	exID := qt.exemplarID()
	lists := make([][]int, 0, len(replies))
	for i := range replies {
		r := &replies[i]
		lists = append(lists, r.IDs)
		out.PerShard[i] = r.Stats
		out.Queue[i] = time.Duration(r.QueueNanos)
		if d := rtts[i] - r.HostNanos; d > 0 {
			out.Transport[i] = time.Duration(d)
		}
		s.obs.observeRTT(i, time.Duration(rtts[i]), exID)
		out.Candidates += r.Stats.CandidatesBefore
		out.SubIsoTests += r.Stats.SubIsoTests
		out.TestsSaved += r.Stats.TestsSaved
		if r.Stats.SubIsoTests == 0 {
			out.ZeroTestShards++
		}
		if r.Stats.Truncated {
			out.Truncated = true
		}
	}
	out.IDs = mergeSorted(lists, total)
	if limit > 0 && len(out.IDs) > limit {
		// Exact cut: every shard contributed its limit smallest local
		// answers, which always covers the global top-limit prefix.
		out.IDs = out.IDs[:limit]
		out.Truncated = true
	}
	end := s.now()
	if d := end.Sub(start); d > 0 { // clamp: clock-skew injection must not corrupt stats
		out.Wall = d
	}
	// Finish the trace before the slow log captures the result, so a
	// slow entry can link the retained trace id instead of duplicating
	// the stage payload.
	qt.finishQuery(s, out, replies, start, end)
	if t := s.opts.SlowLogThreshold; t > 0 && out.Wall >= t {
		s.slow.record(q, out)
	}
	return out, nil
}

// OpResult is the outcome of one operation within an update batch.
type OpResult struct {
	// ID is the global graph id: the id assigned by ADD, or the target
	// id of DEL/UA/UR. It is -1 when the op failed.
	ID int `json:"id"`
	// Err is the per-op failure, nil on success.
	Err error `json:"-"`
}

// UpdateResult summarizes one update batch.
type UpdateResult struct {
	// Epoch is the dataset version after the batch; queries reporting an
	// epoch ≥ this observe every operation of the batch.
	Epoch uint64 `json:"epoch"`
	// Applied counts the operations that succeeded.
	Applied int `json:"applied"`
	// Ops holds one result per input operation, in order.
	Ops []OpResult `json:"ops"`
}

// Update applies a batch of dataset change operations through the
// single-writer path and advances the epoch once for the whole batch.
// Concurrent queries observe either none or all of the batch. Individual
// operations may fail (e.g. DEL of an already deleted graph) without
// aborting the batch; inspect the per-op results. The returned error is
// non-nil when the server is closed, the batch is empty, or — with the
// WAL enabled — a WAL append failed; in the last case the returned
// result is non-nil and the batch *is* applied in memory, it just may
// not be durable.
//
// The sequence lock is held only while *enqueueing* the batch's shard
// jobs: routing (including the local id an ADD will receive) is decided
// writer-side, so nothing needs a job result before the next op can be
// routed, and queries resume enqueueing while the batch executes —
// FIFO order alone guarantees they observe all of it.
//
// With the WAL enabled, every shard — touched or not — logs one
// epoch-stamped frame for the batch (empty for untouched shards, which
// keeps per-shard epochs dense and crash recovery's cross-shard
// consistency point computable), and Update does not return before the
// frames are durable: an acknowledged batch survives a crash. A WAL
// append failure — after the appender's bounded in-place retries — is
// handled per Options.WALPolicy: under WALPolicyFailUpdate it is
// returned as an error alongside the result (the batch is applied in
// memory but may not be durable, and the durable-epoch claim in Stats
// stops advancing); under WALPolicyDegradeToVolatile the batch is
// acknowledged and the shard latches volatile until a snapshot
// rotation heals it.
func (s *Server) Update(ops []changeplan.Op) (*UpdateResult, error) {
	return s.UpdateCtx(context.Background(), ops)
}

// UpdateCtx is Update under a caller deadline. The deadline (combined
// with Options.UpdateTimeout) governs *admission*: it is checked up to
// the moment the batch is enqueued, after which the batch runs to
// completion — update batches are atomic, and aborting one halfway
// would tear the epoch.
func (s *Server) UpdateCtx(ctx context.Context, ops []changeplan.Op) (*UpdateResult, error) {
	if len(ops) == 0 {
		return nil, errors.New("serve: empty update batch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if t := s.opts.UpdateTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	ut := s.beginTrace("update", "")
	if s.updateSem != nil {
		select {
		case s.updateSem <- struct{}{}:
			defer func() { <-s.updateSem }()
		default:
			s.shedUpdates.Add(1)
			ut.finishShed(s)
			return nil, &OverloadError{Kind: "update", Limit: cap(s.updateSem)}
		}
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if done := ctx.Done(); done != nil {
		// Last admission checkpoint: the wait for the writer lock may
		// have consumed the deadline; past this point we commit.
		select {
		case <-done:
			err := &core.CancelError{Stage: "update", Err: ctx.Err()}
			s.noteDeadline(err)
			ut.finishEarly(s, err)
			return nil, err
		default:
		}
	}
	if ut != nil {
		ut.noteAdmitted(s.now(), 0, "")
	}

	s.seqMu.Lock()
	if s.closed {
		s.seqMu.Unlock()
		return nil, ErrClosed
	}
	utc := ut.wireContext()
	touched := make(map[int]bool)
	pending := make([]<-chan OpResult, len(ops))
	for i, op := range ops {
		pending[i] = s.enqueueOp(op, touched, utc)
	}
	s.epoch++
	epoch := s.epoch
	var walAcks []<-chan error
	var walReplies []*shardhost.WALAppendReply
	if s.walWanted() {
		walAcks, walReplies = s.enqueueWALAppends(epoch)
	}
	if s.opts.EagerValidate {
		// One reconciliation sweep per touched shard covers the whole
		// batch: Sync processes the shard's log suffix in one pass, and
		// FIFO order places it before any query enqueued after us.
		for sid := range touched {
			s.clients[sid].Sync(nil)
		}
		s.obs.noteTransport("sync", int64(len(touched)))
	}
	if s.store != nil && s.opts.SnapshotEvery > 0 &&
		epoch >= s.lastSnapshotEpoch.Load()+uint64(s.opts.SnapshotEvery) {
		// Anchored at the last durable generation (not absolute epoch
		// multiples), so the interval means "batches since the last
		// snapshot" regardless of recovery points or forced snapshots.
		s.maybeSnapshotLocked(epoch)
	}
	s.seqMu.Unlock()

	res := &UpdateResult{Epoch: epoch, Ops: make([]OpResult, len(ops))}
	for i, ch := range pending {
		res.Ops[i] = <-ch
		if res.Ops[i].Err == nil {
			res.Applied++
		}
	}
	var walErr error
	for i, ch := range walAcks {
		// Drain every ack even after a failure: the per-shard appenders
		// must not be left blocking on their result channels.
		if err := <-ch; err != nil && walErr == nil {
			s.log.Error("WAL append failed, batch not durable",
				"epoch", epoch, "shard", i, "policy", s.opts.WALPolicy, "err", err)
			walErr = &transport.DurabilityError{Epoch: epoch, Shard: i, Err: err}
		}
	}
	if ut != nil {
		ut.finishUpdate(s, s.now(), epoch, res.Applied, walReplies, walErr)
	}
	if walErr != nil {
		return res, walErr
	}
	return res, nil
}

// enqueueOp routes one operation to the shard owning its target graph
// and dispatches its application through the shard's client, returning a
// channel that delivers the result once the shard worker has run it.
// Routing failures resolve immediately. Called with writerMu and seqMu
// held; the id bookkeeping (loc, shardNextLocal) is updated here, at
// dispatch time, so later ops in the same batch can target a graph an
// earlier op is about to add. The host applies the op, maintains its
// local→global map and accumulates the WAL batch.
func (s *Server) enqueueOp(op changeplan.Op, touched map[int]bool, tc trace.Context) <-chan OpResult {
	out := make(chan OpResult, 1)
	fail := func(err error) <-chan OpResult {
		out <- OpResult{ID: -1, Err: err}
		return out
	}
	dispatch := func(sid int, op changeplan.Op, gid int) <-chan OpResult {
		touched[sid] = true
		reply := new(shardhost.OpReply)
		s.clients[sid].ApplyOp(&shardhost.OpRequest{Op: op, GlobalID: gid, Trace: tc}, reply, func() {
			out <- OpResult{ID: reply.ID, Err: reply.Err}
		})
		s.obs.noteTransport("apply_op", 1)
		return out
	}
	switch op.Type {
	case dataset.OpAdd:
		if op.Graph == nil {
			return fail(errors.New("serve: ADD with nil graph"))
		}
		sid := s.nextAdd % len(s.clients)
		s.nextAdd++
		gid := len(s.loc)
		s.loc = append(s.loc, location{shard: int32(sid), local: int32(s.shardNextLocal[sid])})
		s.shardNextLocal[sid]++
		return dispatch(sid, op, gid)
	case dataset.OpDelete, dataset.OpUpdateAddEdge, dataset.OpUpdateRemoveEdge:
		gid := op.GraphID
		if gid < 0 || gid >= len(s.loc) {
			return fail(fmt.Errorf("serve: graph id %d out of range [0,%d)", gid, len(s.loc)))
		}
		l := s.loc[gid]
		// Ops cross the service boundary in shard-local id space; the
		// host re-anchors error messages to the global id we pass along.
		lop := changeplan.Op{Type: op.Type, GraphID: int(l.local), U: op.U, V: op.V}
		return dispatch(int(l.shard), lop, gid)
	}
	return fail(fmt.Errorf("serve: unknown op type %v", op.Type))
}

// ShardStats reports one shard's state on the stats endpoint.
type ShardStats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// LiveGraphs is the shard partition's live dataset size.
	LiveGraphs int `json:"live_graphs"`
	// LogSeq is the shard dataset's latest update-log sequence number.
	LogSeq uint64 `json:"log_seq"`
	// HitRate is the fraction of shard queries answered with zero
	// Method M sub-iso tests.
	HitRate float64 `json:"hit_rate"`
	// ValidityRatio is the fraction of (entry, live graph) validity bits
	// currently set in the shard cache — the metric the background
	// repair pipeline recovers after update churn (1 when disabled).
	ValidityRatio float64 `json:"validity_ratio"`
	// QueueLen is the shard job queue's depth at snapshot time — jobs
	// enqueued but not yet started (head-of-line pressure).
	QueueLen int `json:"queue_len"`
	// WALBytes is the shard's current WAL segment size (0 when
	// persistence or the WAL is off). Tracked in memory by the
	// appender — stats snapshots cost no directory IO.
	WALBytes int64 `json:"wal_bytes"`
	// WALAppends and WALAppendErrors count the shard's WAL append
	// attempts and failures over the process lifetime.
	WALAppends      int64 `json:"wal_appends"`
	WALAppendErrors int64 `json:"wal_append_errors"`
	// Metrics is the shard runtime's aggregate query statistics.
	Metrics core.MetricsSnapshot `json:"metrics"`
	// Cache is the shard cache's state snapshot (zero when disabled).
	Cache cache.Stats `json:"cache"`
}

// Stats is the server-wide statistics snapshot.
type Stats struct {
	// Epoch is the current dataset version.
	Epoch uint64 `json:"epoch"`
	// Shards is the shard count.
	Shards int `json:"shards"`
	// Transport names the shard transport ("local" or "loopback").
	Transport string `json:"transport"`
	// LiveGraphs is the live dataset size across shards.
	LiveGraphs int `json:"live_graphs"`
	// Queries is the number of queries served: the maximum per-shard
	// query count (every query touches every shard once, so the counts
	// agree up to queries in flight during the snapshot).
	Queries int64 `json:"queries"`
	// HitRate is the mean per-shard zero-test rate.
	HitRate float64 `json:"hit_rate"`
	// ValidityRatio is the mean per-shard cache validity ratio.
	ValidityRatio float64 `json:"validity_ratio"`
	// RepairedBits sums the validity bits restored by the repair
	// pipeline across shards.
	RepairedBits int64 `json:"repaired_bits"`
	// PendingRepairs sums the queued invalidated pairs across shards.
	PendingRepairs int `json:"pending_repairs"`
	// RepairDropped sums the invalidated pairs shed on full repair
	// queues across shards (they simply stay invalid).
	RepairDropped int64 `json:"repair_dropped"`
	// SlowQueries counts queries captured by the slow-query log over the
	// process lifetime (0 when the log is disabled), including entries
	// the bounded ring has since overwritten.
	SlowQueries int64 `json:"slow_queries"`
	// PlanCacheHits/PlanCacheMisses sum the shards' compiled-plan cache
	// outcomes (both zero unless Options.EnablePlanner).
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`

	// Overload and degradation state.

	// DegradationLevel is the pressure controller's active rung (0 =
	// none, 1 = capped-verify, 2 = cache-bypass); DegradationMode is its
	// name. Always 0/"none" when degradation is disabled.
	DegradationLevel int    `json:"degradation_level"`
	DegradationMode  string `json:"degradation_mode"`
	// DegradedSeconds is the total wall time this process has spent at a
	// degradation level above none.
	DegradedSeconds float64 `json:"degraded_seconds"`
	// ShedQueries/ShedUpdates count requests fast-failed by admission
	// control (HTTP 429) over the process lifetime.
	ShedQueries int64 `json:"shed_queries"`
	ShedUpdates int64 `json:"shed_updates"`
	// DeadlineExceeded counts requests that expired their deadline (HTTP
	// 504); the per-stage split is on /metrics.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// deadlineByStage feeds the labeled /metrics series (not part of the
	// JSON surface; the total above is).
	deadlineByStage map[string]int64

	// UptimeSec is the seconds since this process built the server —
	// monotonic (measured on the runtime's monotonic clock), so ops
	// dashboards can tell a restarted instance from a long-running one
	// regardless of wall-clock adjustments.
	UptimeSec float64 `json:"uptime_sec"`
	// GoVersion and ModuleVersion identify the build serving this
	// process (runtime.Version() and the module's embedded build info).
	GoVersion     string `json:"go_version"`
	ModuleVersion string `json:"module_version"`

	// Durability gauges (all zero when persistence is off).

	// PersistEnabled reports whether a data directory is configured.
	PersistEnabled bool `json:"persist_enabled"`
	// WALBytes sums the shards' current WAL segment sizes (older
	// segments awaiting a generation's cleanup are not counted; they
	// disappear at the next snapshot).
	WALBytes int64 `json:"wal_bytes"`
	// WALAppends and WALAppendErrors sum the shards' WAL append attempts
	// and failures over the process lifetime.
	WALAppends      int64 `json:"wal_appends"`
	WALAppendErrors int64 `json:"wal_append_errors"`
	// LastSnapshotEpoch is the epoch of the newest durable snapshot
	// generation written by this process (the recovered generation's
	// epoch right after a warm restart).
	LastSnapshotEpoch uint64 `json:"last_snapshot_epoch"`
	// SnapshotsWritten counts snapshot generations this process wrote.
	SnapshotsWritten int64 `json:"snapshots_written"`
	// RecoveredEntries is the number of cache entries restored by this
	// boot's warm restart (0 on a cold boot) and RecoveredEpoch the
	// epoch recovery reached after WAL replay.
	RecoveredEntries int    `json:"recovered_entries"`
	RecoveredEpoch   uint64 `json:"recovered_epoch"`
	// DurableEpoch is the newest epoch the server can currently prove
	// durable: the last snapshot generation, advanced by the WAL to the
	// minimum per-shard epoch whose frames were acknowledged by a
	// successful append. It stops advancing the moment any shard's
	// appends fail — under either WAL policy — so "epoch minus
	// durable_epoch" is exactly the window a crash would lose.
	DurableEpoch uint64 `json:"durable_epoch"`
	// WALPolicy is the configured append-failure policy, and
	// WALVolatileShards counts shards with an open WAL durability gap
	// (an append failure survived its retries, so later appends into
	// the same segment cannot prove durability); both policies latch
	// the gap, which heals on the next complete snapshot generation.
	WALPolicy         string `json:"wal_policy,omitempty"`
	WALVolatileShards int    `json:"wal_volatile_shards"`

	// PerShard holds the shard breakdown.
	PerShard []ShardStats `json:"per_shard"`
}

// Stats snapshots server-wide and per-shard statistics. The snapshot is
// epoch-consistent with concurrently running updates, like a query.
func (s *Server) Stats() (*Stats, error) {
	replies := make([]shardhost.StatsReply, len(s.clients))
	var wg sync.WaitGroup

	s.seqMu.RLock()
	if s.closed {
		s.seqMu.RUnlock()
		return nil, ErrClosed
	}
	epoch := s.epoch
	wg.Add(len(s.clients))
	for i, c := range s.clients {
		c.Stats(&replies[i], wg.Done)
	}
	s.seqMu.RUnlock()
	s.obs.noteTransport("stats", int64(len(s.clients)))
	wg.Wait()

	per := make([]ShardStats, len(replies))
	for i := range replies {
		r := &replies[i]
		if r.Err != nil {
			return nil, r.Err
		}
		per[i] = ShardStats{
			Shard:           i,
			LiveGraphs:      r.LiveGraphs,
			LogSeq:          r.LogSeq,
			HitRate:         r.HitRate,
			ValidityRatio:   r.ValidityRatio,
			QueueLen:        r.QueueLen,
			WALBytes:        r.WALBytes,
			WALAppends:      r.WALAppends,
			WALAppendErrors: r.WALAppendErrors,
			Metrics:         r.Metrics,
			Cache:           r.Cache,
		}
	}

	now := s.now()
	out := &Stats{
		Epoch:            epoch,
		Shards:           len(s.hosts),
		Transport:        s.transportKind,
		PerShard:         per,
		GoVersion:        runtime.Version(),
		ModuleVersion:    buildVersion,
		DegradationMode:  DegradeNone.String(),
		ShedQueries:      s.shedQueries.Load(),
		ShedUpdates:      s.shedUpdates.Load(),
		DeadlineExceeded: s.deadlines.total(),
		deadlineByStage: map[string]int64{
			"queue":  s.deadlines.queue.Load(),
			"sync":   s.deadlines.syncStage.Load(),
			"hit":    s.deadlines.hit.Load(),
			"verify": s.deadlines.verify.Load(),
			"wait":   s.deadlines.wait.Load(),
			"update": s.deadlines.update.Load(),
			"other":  s.deadlines.other.Load(),
		},
	}
	if d := now.Sub(s.started); d > 0 { // clamp under clock-skew injection
		out.UptimeSec = d.Seconds()
	}
	if s.press != nil {
		lvl := s.press.Level()
		out.DegradationLevel = int(lvl)
		out.DegradationMode = lvl.String()
		out.DegradedSeconds = s.press.degradedSeconds(now)
	}
	if s.store != nil {
		out.PersistEnabled = true
		out.LastSnapshotEpoch = s.lastSnapshotEpoch.Load()
		out.SnapshotsWritten = s.snapshotsWritten.Load()
		out.RecoveredEntries = s.recoveredEntries
		out.RecoveredEpoch = s.recoveredEpoch
		out.WALPolicy = s.opts.WALPolicy
		out.DurableEpoch = s.lastSnapshotEpoch.Load()
		if s.walWanted() {
			minWAL := uint64(math.MaxUint64)
			for i := range replies {
				if e := replies[i].DurableEpoch; e < minWAL {
					minWAL = e
				}
				if replies[i].VolatileWAL {
					out.WALVolatileShards++
				}
			}
			if minWAL != math.MaxUint64 && minWAL > out.DurableEpoch {
				out.DurableEpoch = minWAL
			}
		}
	}
	out.SlowQueries = s.slow.captured()
	for _, ss := range per {
		out.WALBytes += ss.WALBytes
		out.WALAppends += ss.WALAppends
		out.WALAppendErrors += ss.WALAppendErrors
		out.LiveGraphs += ss.LiveGraphs
		out.HitRate += ss.HitRate
		out.ValidityRatio += ss.ValidityRatio
		out.RepairedBits += ss.Cache.RepairedBits
		out.PendingRepairs += ss.Cache.PendingRepairs
		out.RepairDropped += ss.Cache.RepairDropped
		out.PlanCacheHits += ss.Metrics.PlanCacheHits
		out.PlanCacheMisses += ss.Metrics.PlanCacheMisses
		if ss.Metrics.Queries > out.Queries {
			out.Queries = ss.Metrics.Queries
		}
	}
	if len(per) > 0 {
		out.HitRate /= float64(len(per))
		out.ValidityRatio /= float64(len(per))
	}
	return out, nil
}

// mergeSorted k-way merges the per-shard answer lists. Each list is
// already ascending: shard-local ids are assigned in global-id order
// (round-robin initial partition, then round-robin ADDs), so the local →
// global translation is monotone.
func mergeSorted(lists [][]int, total int) []int {
	out := make([]int, 0, total)
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if pos[i] < len(l) && (best < 0 || l[pos[i]] < lists[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}
