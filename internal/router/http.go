package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"gcplus/internal/changeplan"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/trace"
	"gcplus/internal/transport"
)

// Request-body limits. Handlers wrap bodies in http.MaxBytesReader so an
// oversized (or unbounded) upload is cut off at the limit and answered
// with 413 instead of being buffered into memory. Queries are single
// pattern graphs — small by nature; update batches carry whole graphs
// and get more headroom.
const (
	maxQueryBodyBytes  = 1 << 20  // 1 MiB
	maxUpdateBodyBytes = 16 << 20 // 16 MiB
)

// The HTTP API of cmd/gcserve:
//
//	POST /query?kind=sub|super   body: one graph in the text codec
//	     &trace=1                include the per-shard stage trace
//	     &limit=N                stream: return the N smallest answer ids
//	                             (exact prefix); "truncated" reports a cut
//	POST /update                 body: JSON update batch (see updateRequest)
//	GET  /stats                  JSON server + per-shard statistics
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                liveness: 200 while the server accepts work
//	GET  /readyz                 readiness: 200 while the repair backlog is
//	                             at or below Options.ReadyMaxPendingRepairs
//	GET  /debug/slowlog          JSON slow-query log, newest first
//	GET  /debug/traces           JSON retained distributed traces, newest
//	                             first (summaries: id, wall, anomaly)
//	GET  /debug/traces/{id}      one trace's full span tree by 16-hex id
//
// Queries run concurrently; update batches are serialized through the
// single-writer path and reported with the epoch they produced.

// Handler returns the HTTP API over the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	return mux
}

// queryResponse is the wire form of a QueryResult. Trace is present
// only when the request asked for it (?trace=1).
type queryResponse struct {
	IDs            []int       `json:"ids"`
	Count          int         `json:"count"`
	Epoch          uint64      `json:"epoch"`
	Kind           string      `json:"kind"`
	WallMicros     int64       `json:"wall_us"`
	Candidates     int         `json:"candidates"`
	SubIsoTests    int         `json:"subiso_tests"`
	TestsSaved     int         `json:"tests_saved"`
	ZeroTestShards int         `json:"zero_test_shards"`
	Truncated      bool        `json:"truncated,omitempty"`
	Trace          *QueryTrace `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = "sub"
	}
	if kind != "sub" && kind != "super" {
		httpError(w, http.StatusBadRequest, "kind must be sub or super, got %q", kind)
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", l)
			return
		}
		limit = n
	}
	graphs, err := graph.Parse(http.MaxBytesReader(w, r.Body, maxQueryBodyBytes))
	if err != nil {
		httpError(w, bodyErrorStatus(err), "bad query graph: %v", err)
		return
	}
	if len(graphs) != 1 {
		httpError(w, http.StatusBadRequest, "want exactly one query graph, got %d", len(graphs))
		return
	}
	var res *QueryResult
	if kind == "sub" {
		res, err = s.SubgraphQueryLimitCtx(r.Context(), graphs[0], limit)
	} else {
		res, err = s.SupergraphQueryLimitCtx(r.Context(), graphs[0], limit)
	}
	if err != nil {
		writeErr(w, err, "query failed: %v", err)
		return
	}
	ids := res.IDs
	if ids == nil {
		ids = []int{}
	}
	out := queryResponse{
		IDs:            ids,
		Count:          len(ids),
		Epoch:          res.Epoch,
		Kind:           res.Kind,
		WallMicros:     res.Wall.Microseconds(),
		Candidates:     res.Candidates,
		SubIsoTests:    res.SubIsoTests,
		TestsSaved:     res.TestsSaved,
		ZeroTestShards: res.ZeroTestShards,
		Truncated:      res.Truncated,
	}
	if t := r.URL.Query().Get("trace"); t == "1" || t == "true" {
		out.Trace = res.Trace()
	}
	writeJSON(w, http.StatusOK, out)
}

// updateRequest is the wire form of an update batch.
type updateRequest struct {
	Ops []wireOp `json:"ops"`
}

// wireOp is one operation: {"op":"ADD","graph":"t g\nv 0 1\n..."} or
// {"op":"DEL","id":3} or {"op":"UA","id":2,"u":0,"v":1} (UR likewise).
// The targets are pointers so a missing field is rejected instead of
// silently defaulting to graph 0 / vertex 0.
type wireOp struct {
	Op    string `json:"op"`
	Graph string `json:"graph,omitempty"`
	ID    *int   `json:"id,omitempty"`
	U     *int   `json:"u,omitempty"`
	V     *int   `json:"v,omitempty"`
}

// decode converts the wire op to a changeplan.Op.
func (wo wireOp) decode() (changeplan.Op, error) {
	t, err := dataset.ParseOpType(wo.Op)
	if err != nil {
		return changeplan.Op{}, err
	}
	op := changeplan.Op{Type: t}
	if t == dataset.OpAdd {
		gs, err := graph.Parse(strings.NewReader(wo.Graph))
		if err != nil {
			return changeplan.Op{}, fmt.Errorf("ADD graph: %w", err)
		}
		if len(gs) != 1 {
			return changeplan.Op{}, fmt.Errorf("ADD wants exactly one graph, got %d", len(gs))
		}
		op.Graph = gs[0]
		return op, nil
	}
	if wo.ID == nil {
		return changeplan.Op{}, fmt.Errorf("%s requires \"id\"", wo.Op)
	}
	op.GraphID = *wo.ID
	if t == dataset.OpUpdateAddEdge || t == dataset.OpUpdateRemoveEdge {
		if wo.U == nil || wo.V == nil {
			return changeplan.Op{}, fmt.Errorf("%s requires \"u\" and \"v\"", wo.Op)
		}
		op.U, op.V = *wo.U, *wo.V
	}
	return op, nil
}

// updateResponse is the wire form of an UpdateResult. DurabilityError
// is set (with status 503, under the default fail-update WAL policy)
// when the batch was applied in memory but a WAL append failed — the
// batch may not survive a crash. Clients must NOT blindly retry such a
// 503: the ops are already applied, and re-submitting would
// double-apply them. The error names the failed shard.
type updateResponse struct {
	Epoch           uint64         `json:"epoch"`
	Applied         int            `json:"applied"`
	Ops             []wireOpResult `json:"ops"`
	DurabilityError string         `json:"durability_error,omitempty"`
}

type wireOpResult struct {
	ID    int    `json:"id"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, bodyErrorStatus(err), "bad update request: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		httpError(w, http.StatusBadRequest, "empty update batch")
		return
	}
	ops := make([]changeplan.Op, len(req.Ops))
	for i, wo := range req.Ops {
		op, err := wo.decode()
		if err != nil {
			httpError(w, http.StatusBadRequest, "op %d: %v", i, err)
			return
		}
		ops[i] = op
	}
	res, err := s.UpdateCtx(r.Context(), ops)
	if err != nil && res == nil {
		writeErr(w, err, "update failed: %v", err)
		return
	}
	out := updateResponse{Epoch: res.Epoch, Applied: res.Applied, Ops: make([]wireOpResult, len(res.Ops))}
	for i, opRes := range res.Ops {
		out.Ops[i].ID = opRes.ID
		if opRes.Err != nil {
			out.Ops[i].Error = opRes.Err.Error()
		}
	}
	if err != nil {
		// Applied in memory, durability uncertain (WAL failure under the
		// fail-update policy). Hand the full result back — assigned ids
		// included — under 503 so the client knows the server is shedding
		// durability and must not re-submit the already-applied batch.
		out.DurabilityError = err.Error()
		writeJSON(w, http.StatusServiceUnavailable, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats()
	if err != nil {
		httpError(w, statusOf(err), "stats failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics renders the Prometheus exposition: one epoch-consistent
// Stats snapshot refreshes the mirrored gauges/counters, then the
// registry — live histograms included — is written out.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats()
	if err != nil {
		httpError(w, statusOf(err), "metrics failed: %v", err)
		return
	}
	s.obs.mirror(st)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WriteProm(w)
}

// handleHealthz is liveness: the process is up and the server accepts
// work. It flips to 503 only once Close has run.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.seqMu.RLock()
	closed := s.closed
	s.seqMu.RUnlock()
	if closed {
		httpError(w, http.StatusServiceUnavailable, "server is closed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: recovery is complete (New does not return
// before it is) and the summed repair backlog is at or below the
// configured threshold — a warm-restarted instance behind a load
// balancer should not take traffic while its cache validity is still
// being repaired en masse.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats()
	if err != nil {
		httpError(w, statusOf(err), "readiness check failed: %v", err)
		return
	}
	// Degradation state rides along for operators but does not flip
	// readiness: degraded answers are still exact, and pulling a
	// degraded instance out of rotation would only concentrate the load
	// on its peers.
	body := map[string]any{
		"pending_repairs":   st.PendingRepairs,
		"threshold":         s.opts.ReadyMaxPendingRepairs,
		"degradation_level": st.DegradationLevel,
		"degradation_mode":  st.DegradationMode,
	}
	if st.PendingRepairs > s.opts.ReadyMaxPendingRepairs {
		body["ready"] = false
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["ready"] = true
	writeJSON(w, http.StatusOK, body)
}

// handleSlowLog serves the retained slow-query entries, newest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	entries := s.SlowQueries()
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_us": s.opts.SlowLogThreshold.Microseconds(),
		"captured":     s.slow.captured(),
		"entries":      entries,
	})
}

// wireTrace / wireSpan are the JSON forms of a retained trace. Ids are
// the 16-hex-digit spelling exemplars use, so a trace_id copied off a
// /metrics exemplar fetches directly.
type wireTrace struct {
	TraceID        string     `json:"trace_id"`
	StartUnixNanos int64      `json:"start_unix_ns"`
	WallMicros     int64      `json:"wall_us"`
	Anomaly        string     `json:"anomaly,omitempty"`
	SpanCount      int        `json:"span_count"`
	Root           string     `json:"root,omitempty"`
	Spans          []wireSpan `json:"spans,omitempty"`
}

type wireSpan struct {
	SpanID         string            `json:"span_id"`
	ParentID       string            `json:"parent_id,omitempty"`
	Name           string            `json:"name"`
	StartUnixNanos int64             `json:"start_unix_ns"`
	DurMicros      int64             `json:"dur_us"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	Events         []trace.Event     `json:"events,omitempty"`
}

// summarizeTrace renders a trace without its spans (the list view);
// expandTrace includes them (the by-id view).
func summarizeTrace(t *trace.Trace) wireTrace {
	wt := wireTrace{
		TraceID:        t.ID.String(),
		StartUnixNanos: t.StartNanos,
		WallMicros:     t.WallNanos / 1e3,
		Anomaly:        t.Anomaly,
		SpanCount:      len(t.Spans),
	}
	if len(t.Spans) > 0 {
		wt.Root = t.Spans[0].Name
	}
	return wt
}

func expandTrace(t *trace.Trace) wireTrace {
	wt := summarizeTrace(t)
	wt.Spans = make([]wireSpan, len(t.Spans))
	for i, sp := range t.Spans {
		ws := wireSpan{
			SpanID:         fmt.Sprintf("%016x", uint64(sp.ID)),
			Name:           sp.Name,
			StartUnixNanos: sp.StartNanos,
			DurMicros:      sp.DurNanos / 1e3,
			Events:         sp.Events,
		}
		if sp.Parent != 0 {
			ws.ParentID = fmt.Sprintf("%016x", uint64(sp.Parent))
		}
		if len(sp.Attrs) > 0 {
			ws.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ws.Attrs[a.Key] = a.Value
			}
		}
		wt.Spans[i] = ws
	}
	return wt
}

// handleTraces serves the retained traces, newest first across the
// normal and anomalous rings.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false, "traces": []wireTrace{},
		})
		return
	}
	snap := s.traces.Snapshot()
	out := make([]wireTrace, len(snap))
	for i, t := range snap {
		out[i] = summarizeTrace(t)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":     true,
		"sample_rate": s.traceRate,
		"captured":    s.traces.Added(),
		"traces":      out,
	})
}

// handleTraceByID serves one retained trace's full span tree.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusNotFound, "tracing is disabled (-trace-sample-rate < 0)")
		return
	}
	id, ok := trace.ParseID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusBadRequest, "trace id must be up to 16 hex digits, got %q", r.PathValue("id"))
		return
	}
	t := s.traces.Get(id)
	if t == nil {
		httpError(w, http.StatusNotFound, "no retained trace %s (evicted or never sampled)", id)
		return
	}
	writeJSON(w, http.StatusOK, expandTrace(t))
}

// statusOf maps an error to its HTTP status through the shared
// transport status table — the same classification the wire protocol
// uses, so an error crossing the loopback transport lands on the same
// status code as one raised in-process.
func statusOf(err error) int {
	return transport.StatusOf(err).HTTPCode()
}

// writeErr maps err to its status and writes the JSON error body,
// adding the Retry-After header on admission sheds — the one failure
// mode where immediate retry is both safe and useful.
func writeErr(w http.ResponseWriter, err error, format string, args ...any) {
	status := statusOf(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	httpError(w, status, format, args...)
}

// bodyErrorStatus maps a request-body read/decode failure to a status:
// 413 when the MaxBytesReader limit was hit, 400 otherwise.
func bodyErrorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
