package router

import (
	"strconv"
	"time"

	"gcplus/internal/obs"
)

// This file builds the server's Prometheus registry. Two recording
// styles coexist:
//
//   - Live histograms (per-stage latencies, queue wait, WAL appends,
//     snapshot wall time) are owned by the shards/runtimes and record on
//     the hot path; the registry holds references and a scrape renders
//     whatever the atomics say at that instant.
//   - Snapshot gauges and counters (queue depths, validity ratios, WAL
//     bytes, repair counters, ...) are authoritatively tracked by shard
//     state that only the owner goroutine may read. A scrape first takes
//     one epoch-consistent Stats() snapshot — the same mechanism /stats
//     uses — and mirrors it into the registered instruments before
//     rendering, so /metrics and /stats can never disagree about a
//     counter within a scrape.
//
// Metric names are stable API: the CI observability smoke greps for the
// core series, and dashboards are built on them.

// serverObs bundles the registry with the mirrored instruments a scrape
// refreshes from a Stats snapshot.
type serverObs struct {
	reg *obs.Registry

	// Aggregate (server-wide) instruments.
	queries          *obs.Counter
	epoch            *obs.Gauge
	liveGraphs       *obs.Gauge
	hitRate          *obs.Gauge
	validityRatio    *obs.Gauge
	cacheEntries     *obs.Gauge
	cacheWindow      *obs.Gauge
	cacheCapacity    *obs.Gauge
	repairPending    *obs.Gauge
	repairedBits     *obs.Counter
	repairDropped    *obs.Counter
	slowQueries      *obs.Counter
	uptime           *obs.Gauge
	walBytes         *obs.Gauge
	walAppends       *obs.Counter
	walAppendErrs    *obs.Counter
	snapshotsWritten *obs.Counter
	lastSnapEpoch    *obs.Gauge
	planCacheHits    *obs.Counter
	planCacheMisses  *obs.Counter

	// Resilience instruments (mirrored from Stats like the rest).
	// degradedSeconds is a monotone float, hence a Gauge instrument
	// despite the _total name.
	degradeLevel    *obs.Gauge
	degradedSeconds *obs.Gauge
	shedQueries     *obs.Counter
	shedUpdates     *obs.Counter
	durableEpoch    *obs.Gauge
	walVolatile     *obs.Gauge
	// deadlineStage maps the deadlineCounters stages to their labeled
	// series; the label set is fixed at registration.
	deadlineStage map[string]*obs.Counter

	// Transport instruments. transportReqs counts ShardClient calls by
	// service method (incremented live at dispatch, not mirrored);
	// shardRTT records the router-observed round trip of every query
	// dispatch, per shard.
	transportReqs map[string]*obs.Counter
	shardRTT      []*obs.Histogram

	// Per-shard instruments, indexed by shard id.
	shardQueries       []*obs.Counter
	shardLiveGraphs    []*obs.Gauge
	shardHitRate       []*obs.Gauge
	shardValidity      []*obs.Gauge
	shardQueueLen      []*obs.Gauge
	shardRepairPending []*obs.Gauge
	shardRepairDropped []*obs.Counter
	shardWALBytes      []*obs.Gauge
}

// noteTransport bumps the per-method transport request counter by n.
func (o *serverObs) noteTransport(method string, n int64) {
	if c := o.transportReqs[method]; c != nil {
		c.Add(n)
	}
}

// observeRTT records one query dispatch's round trip for shard i,
// citing the sampled trace (if any) as the bucket's exemplar.
func (o *serverObs) observeRTT(i int, d time.Duration, traceID uint64) {
	if i >= 0 && i < len(o.shardRTT) {
		o.shardRTT[i].Observe(d)
		if traceID != 0 {
			o.shardRTT[i].SetExemplar(d, traceID)
		}
	}
}

// stageHistNames orders the per-stage histogram series; the stage label
// values match the Metrics field vocabulary of the paper's evaluation.
var stageHistNames = []string{
	"query", "hit", "verify", "verify_cpu", "overhead", "consistency", "repair_verify", "plan",
}

// initObs builds the registry over the constructed shards. Called from
// New after the shards exist (cold or recovered) and before they start:
// registration is not concurrency-safe with scrapes, construction time
// is the one moment neither queries nor scrapes can be running.
func (s *Server) initObs() {
	o := &serverObs{reg: obs.NewRegistry()}
	r := o.reg

	o.queries = r.Counter("gcplus_queries_total",
		"Queries served (max per-shard count; every query touches every shard).", nil)
	o.epoch = r.Gauge("gcplus_epoch", "Current dataset version (applied update batches).", nil)
	o.liveGraphs = r.Gauge("gcplus_live_graphs", "Live dataset graphs across shards.", nil)
	o.hitRate = r.Gauge("gcplus_hit_rate",
		"Mean per-shard fraction of measured queries answered with zero sub-iso tests.", nil)
	o.validityRatio = r.Gauge("gcplus_cache_validity_ratio",
		"Mean per-shard fraction of (entry, live graph) validity bits currently set.", nil)
	o.cacheEntries = r.Gauge("gcplus_cache_entries", "Admitted cache entries across shards.", nil)
	o.cacheWindow = r.Gauge("gcplus_cache_window", "Admission-window entries across shards.", nil)
	o.cacheCapacity = r.Gauge("gcplus_cache_capacity", "Configured cache capacity across shards.", nil)
	o.repairPending = r.Gauge("gcplus_repair_pending",
		"Invalidated (entry, graph) pairs queued for background repair.", nil)
	o.repairedBits = r.Counter("gcplus_repaired_bits_total",
		"Validity bits restored by the background repair pipeline.", nil)
	o.repairDropped = r.Counter("gcplus_repair_dropped_total",
		"Invalidated pairs shed on a full repair queue (they stay invalid).", nil)
	o.slowQueries = r.Counter("gcplus_slow_queries_total",
		"Queries captured by the slow-query log (0 when disabled).", nil)
	o.uptime = r.Gauge("gcplus_uptime_seconds", "Seconds since this process built the server.", nil)
	o.walBytes = r.Gauge("gcplus_wal_bytes", "Current WAL segment bytes across shards.", nil)
	o.walAppends = r.Counter("gcplus_wal_appends_total", "WAL append attempts across shards.", nil)
	o.walAppendErrs = r.Counter("gcplus_wal_append_errors_total", "Failed WAL appends across shards.", nil)
	o.snapshotsWritten = r.Counter("gcplus_snapshots_written_total",
		"Snapshot generations written by this process.", nil)
	o.lastSnapEpoch = r.Gauge("gcplus_last_snapshot_epoch",
		"Epoch of the newest durable snapshot generation.", nil)
	o.planCacheHits = r.Counter("gcplus_plan_cache_hits_total",
		"Compiled-plan cache hits across shards (0 unless the planner is on).", nil)
	o.planCacheMisses = r.Counter("gcplus_plan_cache_misses_total",
		"Compiled-plan cache misses across shards (0 unless the planner is on).", nil)

	o.degradeLevel = r.Gauge("gcplus_degradation_level",
		"Active degradation rung (0 none, 1 capped-verify, 2 cache-bypass).", nil)
	o.degradedSeconds = r.Gauge("gcplus_degraded_seconds_total",
		"Total wall seconds spent at a degradation level above none.", nil)
	o.shedQueries = r.Counter("gcplus_shed_total",
		"Requests fast-failed by admission control.", obs.Labels{"kind": "query"})
	o.shedUpdates = r.Counter("gcplus_shed_total",
		"Requests fast-failed by admission control.", obs.Labels{"kind": "update"})
	o.durableEpoch = r.Gauge("gcplus_durable_epoch",
		"Newest epoch the server can currently prove durable (0 without persistence).", nil)
	o.walVolatile = r.Gauge("gcplus_wal_volatile_shards",
		"Shards whose WAL has an open durability gap awaiting snapshot rotation.", nil)
	o.deadlineStage = make(map[string]*obs.Counter)
	for _, stage := range []string{"queue", "sync", "hit", "verify", "wait", "update", "other"} {
		o.deadlineStage[stage] = r.Counter("gcplus_deadline_exceeded_total",
			"Requests that expired their deadline, by the stage they gave up in.",
			obs.Labels{"stage": stage})
	}

	o.transportReqs = make(map[string]*obs.Counter)
	for _, method := range []string{"query", "apply_op", "append_wal", "sync", "snapshot", "stats"} {
		o.transportReqs[method] = r.Counter("gcplus_transport_requests_total",
			"ShardClient requests dispatched by the router, by service method and transport.",
			obs.Labels{"method": method, "transport": s.transportKind})
	}

	n := len(s.hosts)
	o.shardRTT = make([]*obs.Histogram, n)
	o.shardQueries = make([]*obs.Counter, n)
	o.shardLiveGraphs = make([]*obs.Gauge, n)
	o.shardHitRate = make([]*obs.Gauge, n)
	o.shardValidity = make([]*obs.Gauge, n)
	o.shardQueueLen = make([]*obs.Gauge, n)
	o.shardRepairPending = make([]*obs.Gauge, n)
	o.shardRepairDropped = make([]*obs.Counter, n)
	o.shardWALBytes = make([]*obs.Gauge, n)
	for sid, h := range s.hosts {
		lbl := strconv.Itoa(sid)
		hists := h.Runtime().StageHists()
		for i, hist := range []*obs.Histogram{
			hists.Query, hists.Hit, hists.Verify, hists.VerifyCPU,
			hists.Overhead, hists.Consistency, hists.RepairVerify, hists.Plan,
		} {
			r.RegisterHistogram("gcplus_stage_duration_seconds",
				"Per-stage query processing latency, by shard and stage.",
				obs.Labels{"shard": lbl, "stage": stageHistNames[i]}, hist)
		}
		r.RegisterHistogram("gcplus_queue_wait_seconds",
			"Time jobs spend queued behind the shard owner goroutine.",
			obs.Labels{"shard": lbl}, h.QueueWaitHist())
		if s.walWanted() {
			r.RegisterHistogram("gcplus_wal_append_duration_seconds",
				"WAL batch append latency (encode + write + fsync).",
				obs.Labels{"shard": lbl}, h.WALAppendHist())
		}
		o.shardRTT[sid] = r.Histogram("gcplus_transport_rtt_seconds",
			"Router-observed round trip of query dispatches, by shard and transport.",
			obs.Labels{"shard": lbl, "transport": s.transportKind})
		o.shardQueries[sid] = r.Counter("gcplus_shard_queries_total",
			"Queries processed by the shard runtime.", obs.Labels{"shard": lbl})
		o.shardLiveGraphs[sid] = r.Gauge("gcplus_shard_live_graphs",
			"Live graphs in the shard partition.", obs.Labels{"shard": lbl})
		o.shardHitRate[sid] = r.Gauge("gcplus_shard_hit_rate",
			"Shard fraction of measured queries answered with zero sub-iso tests.",
			obs.Labels{"shard": lbl})
		o.shardValidity[sid] = r.Gauge("gcplus_shard_validity_ratio",
			"Shard fraction of validity bits currently set.", obs.Labels{"shard": lbl})
		o.shardQueueLen[sid] = r.Gauge("gcplus_shard_queue_len",
			"Shard job-queue depth at snapshot time.", obs.Labels{"shard": lbl})
		o.shardRepairPending[sid] = r.Gauge("gcplus_shard_repair_pending",
			"Shard repair-queue depth.", obs.Labels{"shard": lbl})
		o.shardRepairDropped[sid] = r.Counter("gcplus_shard_repair_dropped_total",
			"Shard invalidated pairs shed on a full repair queue.", obs.Labels{"shard": lbl})
		o.shardWALBytes[sid] = r.Gauge("gcplus_shard_wal_bytes",
			"Shard current WAL segment bytes.", obs.Labels{"shard": lbl})
	}
	if s.store != nil {
		s.snapHist = r.Histogram("gcplus_snapshot_duration_seconds",
			"Snapshot generation wall time, enqueue to durable.", nil)
	}
	s.obs = o
}

// mirror refreshes the snapshot-style instruments from an
// epoch-consistent Stats snapshot. Counter.Set is sound here because
// every mirrored source is monotone over the process lifetime.
func (o *serverObs) mirror(st *Stats) {
	o.queries.Set(st.Queries)
	o.epoch.Set(float64(st.Epoch))
	o.liveGraphs.Set(float64(st.LiveGraphs))
	o.hitRate.Set(st.HitRate)
	o.validityRatio.Set(st.ValidityRatio)
	o.repairPending.Set(float64(st.PendingRepairs))
	o.repairedBits.Set(st.RepairedBits)
	o.repairDropped.Set(st.RepairDropped)
	o.slowQueries.Set(st.SlowQueries)
	o.uptime.Set(st.UptimeSec)
	o.walBytes.Set(float64(st.WALBytes))
	o.walAppends.Set(st.WALAppends)
	o.walAppendErrs.Set(st.WALAppendErrors)
	o.snapshotsWritten.Set(st.SnapshotsWritten)
	o.lastSnapEpoch.Set(float64(st.LastSnapshotEpoch))
	o.planCacheHits.Set(st.PlanCacheHits)
	o.planCacheMisses.Set(st.PlanCacheMisses)
	o.degradeLevel.Set(float64(st.DegradationLevel))
	o.degradedSeconds.Set(st.DegradedSeconds)
	o.shedQueries.Set(st.ShedQueries)
	o.shedUpdates.Set(st.ShedUpdates)
	o.durableEpoch.Set(float64(st.DurableEpoch))
	o.walVolatile.Set(float64(st.WALVolatileShards))
	for stage, n := range st.deadlineByStage {
		if c := o.deadlineStage[stage]; c != nil {
			c.Set(n)
		}
	}
	var entries, window, capacity int
	for _, ss := range st.PerShard {
		if ss.Shard < 0 || ss.Shard >= len(o.shardQueries) {
			continue
		}
		entries += ss.Cache.Entries
		window += ss.Cache.Window
		capacity += ss.Cache.Capacity
		o.shardQueries[ss.Shard].Set(ss.Metrics.Queries)
		o.shardLiveGraphs[ss.Shard].Set(float64(ss.LiveGraphs))
		o.shardHitRate[ss.Shard].Set(ss.HitRate)
		o.shardValidity[ss.Shard].Set(ss.ValidityRatio)
		o.shardQueueLen[ss.Shard].Set(float64(ss.QueueLen))
		o.shardRepairPending[ss.Shard].Set(float64(ss.Cache.PendingRepairs))
		o.shardRepairDropped[ss.Shard].Set(ss.Cache.RepairDropped)
		o.shardWALBytes[ss.Shard].Set(float64(ss.WALBytes))
	}
	o.cacheEntries.Set(float64(entries))
	o.cacheWindow.Set(float64(window))
	o.cacheCapacity.Set(float64(capacity))
}
