package router

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/core"
	"gcplus/internal/faultfs"
	"gcplus/internal/persist"
)

// TestChaosSoakDifferential is the chaos harness acceptance test: a
// durable server runs the PR-3 style differential oracle continuously
// while the fault injector tears WAL writes, fails snapshot files and
// renames, stalls shard jobs and skews the serving clock — under both
// WAL failure policies. The invariants under fault load:
//
//   - every answer stays bit-identical to a fault-free reference
//     replica applying the same batches (degraded or not, answers are
//     exact);
//   - the server never deadlocks or crashes (the test itself, run
//     under -race in CI, is the detector);
//   - after an abrupt kill, warm restart plus re-application of the
//     lost tail converges to the reference again.
func TestChaosSoakDifferential(t *testing.T) {
	for _, policy := range []string{WALPolicyFailUpdate, WALPolicyDegradeToVolatile} {
		t.Run(policy, func(t *testing.T) { chaosSoak(t, policy, TransportLocal) })
	}
	// The same soak over the loopback wire: faults, recovery and the
	// bit-identity oracle must be transport-independent. One policy is
	// enough — the wire path does not branch on WAL policy.
	t.Run(WALPolicyFailUpdate+"/loopback", func(t *testing.T) {
		chaosSoak(t, WALPolicyFailUpdate, TransportLoopback)
	})
}

func chaosSoak(t *testing.T, policy, transport string) {
	initial := genGraphs(t, 36, 21)
	queries := testQueries(initial)
	dir := t.TempDir()

	// The injector boots clean (the initial snapshot generation must
	// land — New fails otherwise) and is armed right after New.
	ffs := faultfs.New(persist.OSFS, 0xC0FFEE)

	// Clock skew: every 13th clock read steps 40ms backwards. Skew must
	// only distort duration metrics, never epochs or durability.
	var clockReads atomic.Int64
	skewedNow := func() time.Time {
		if clockReads.Add(1)%13 == 0 {
			return time.Now().Add(-40 * time.Millisecond)
		}
		return time.Now()
	}
	// Shard stall: every 31st job pauses, injecting head-of-line
	// blocking into the owner queues.
	var jobCount atomic.Int64
	stall := func(int) {
		if jobCount.Add(1)%31 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	opts := Options{
		Shards:        2,
		DataDir:       dir,
		SnapshotEvery: 3,
		NoSync:        true,
		WALPolicy:     policy,
		QueryTimeout:  10 * time.Second, // wired but generous: the soak should not 504
		Cache:         &cache.Config{Capacity: 64, WindowSize: 5, Policy: cache.PolicyPIN},
		Faults:        &FaultInjection{FS: ffs, ShardStall: stall, Now: skewedNow},
		Transport:     transport,
	}
	srv, err := New(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []faultfs.Rule{
		{ID: "wal-write-fail", Op: faultfs.OpWrite, Path: "wal-", Prob: 0.20},
		{ID: "wal-torn", Op: faultfs.OpWrite, Path: "wal-", Prob: 0.10, Torn: 7},
		{ID: "wal-latency", Op: faultfs.OpWrite, Path: "wal-", Prob: 0.10, Delay: 500 * time.Microsecond, DelayOnly: true},
		{ID: "snap-write-fail", Op: faultfs.OpWrite, Path: "snap-", Prob: 0.25},
		{ID: "snap-sync-fail", Op: faultfs.OpSync, Path: "snap-", Prob: 0.20},
		{ID: "snap-rename-fail", Op: faultfs.OpRename, Path: "snap-", Prob: 0.25},
	} {
		ffs.AddRule(r)
	}

	// Fault-free reference replica: same sharding and cache, no
	// persistence. The oracle: answers must match it bit for bit.
	ref, err := New(initial, Options{Shards: 2,
		Cache: &cache.Config{Capacity: 64, WindowSize: 5, Policy: cache.PolicyPIN}})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Background readers keep concurrent query load on the chaotic
	// server for the whole soak; only clean results or admission/
	// deadline errors are acceptable outcomes.
	var stop atomic.Bool
	var readersDone sync.WaitGroup
	var cleanReads atomic.Int64
	for r := 0; r < 3; r++ {
		readersDone.Add(1)
		go func(r int) {
			defer readersDone.Done()
			for !stop.Load() {
				q := queries[r%len(queries)]
				if _, err := srv.SubgraphQuery(q); err != nil {
					var ce *core.CancelError
					if !IsOverload(err) && !errors.As(err, &ce) {
						t.Errorf("reader %d: %v", r, err)
						return
					}
				} else {
					cleanReads.Add(1)
				}
			}
		}(r)
	}

	batches := deterministicBatches(initial, 18)
	for i, ops := range batches {
		res, err := srv.Update(ops)
		if res == nil {
			t.Fatalf("batch %d rejected outright: %v", i, err)
		}
		// err != nil with a result is the fail-update durability report:
		// the batch is applied, the WAL gap is open. Expected chaos.
		if _, err := ref.Update(ops); err != nil {
			t.Fatal(err)
		}
		if (i+1)%3 == 0 {
			requireSameAnswers(t, "soak", probeAnswers(t, ref, queries), probeAnswers(t, srv, queries))
		}
	}
	stop.Store(true)
	readersDone.Wait()
	if cleanReads.Load() == 0 {
		t.Fatal("no successful concurrent reads during the soak")
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	finalEpoch := st.Epoch
	if finalEpoch != uint64(len(batches)) {
		t.Fatalf("epoch %d after %d batches", finalEpoch, len(batches))
	}

	// Abrupt kill mid-chaos, then recovery with the faults stopped (the
	// disk has settled; recovery itself runs on healthy storage).
	srv.CloseAbrupt()
	ffs.Stop()
	events := ffs.Events()
	if len(events) == 0 {
		t.Fatal("chaos soak fired no faults — the schedule is dead")
	}

	rec, err := New(nil, opts)
	if err != nil {
		t.Fatalf("warm restart after chaos: %v", err)
	}
	defer rec.Close()
	_, epoch, ok := rec.Recovered()
	if !ok || epoch > finalEpoch {
		t.Fatalf("recovered (%d, %v), want epoch <= %d", epoch, ok, finalEpoch)
	}
	// Re-apply the batches the crash lost (the client retry path) and
	// demand convergence with the reference.
	for _, ops := range batches[epoch:] {
		if _, err := rec.Update(ops); err != nil {
			t.Fatal(err)
		}
	}
	awaitRepairDrain(t, rec)
	requireSameAnswers(t, "post-recovery", probeAnswers(t, ref, queries), probeAnswers(t, rec, queries))
	t.Logf("soak survived %d injected faults (policy %s), recovered at epoch %d/%d, %d clean concurrent reads",
		len(events), policy, epoch, finalEpoch, cleanReads.Load())
}
