package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/faultfs"
	"gcplus/internal/persist"
	"gcplus/internal/testutil"
)

// blockShard parks shard 0's worker on a job that waits for the
// returned release function, so admission and deadline tests can hold
// the server busy deterministically.
func blockShard(srv *Server) (release func()) {
	gate := make(chan struct{})
	srv.hosts[0].Enqueue(func() { <-gate })
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

func TestAdmissionControlShedsQueries(t *testing.T) {
	initial := genGraphs(t, 20, 3)
	srv, err := New(initial, Options{Shards: 1, MaxInFlightQueries: 1, MaxInFlightUpdates: 1,
		pressureInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q := testQueries(initial)[0]
	release := blockShard(srv)

	// Query A occupies the single admission slot while the shard is
	// blocked; B must be shed immediately rather than queue.
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := srv.SubgraphQuery(q)
		finished <- err
	}()
	<-started
	waitFor(t, func() bool { return inFlight(srv.querySem) == 1 })

	_, err = srv.SubgraphQuery(q)
	var oe *OverloadError
	if !errors.As(err, &oe) || !IsOverload(err) {
		t.Fatalf("saturated query: %v, want OverloadError", err)
	}
	if oe.Kind != "query" || oe.Limit != 1 {
		t.Fatalf("overload error: %+v", oe)
	}

	// Same for the update path: A waits on the blocked shard's op
	// result holding the slot, B is shed.
	ops := []changeplan.Op{changeplan.DeleteOp(0)}
	updStarted := make(chan struct{})
	updFinished := make(chan error, 1)
	go func() {
		close(updStarted)
		_, err := srv.Update(ops)
		updFinished <- err
	}()
	<-updStarted
	waitFor(t, func() bool { return inFlight(srv.updateSem) == 1 })
	_, err = srv.Update([]changeplan.Op{changeplan.DeleteOp(1)})
	if !IsOverload(err) {
		t.Fatalf("saturated update: %v, want OverloadError", err)
	}

	release()
	if err := <-finished; err != nil {
		t.Fatalf("admitted query: %v", err)
	}
	if err := <-updFinished; err != nil {
		t.Fatalf("admitted update: %v", err)
	}

	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedQueries != 1 || st.ShedUpdates != 1 {
		t.Fatalf("shed counters: queries=%d updates=%d, want 1/1", st.ShedQueries, st.ShedUpdates)
	}
}

func inFlight(sem chan struct{}) int { return len(sem) }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueryDeadlineWhileShardBlocked(t *testing.T) {
	initial := genGraphs(t, 20, 3)
	srv, err := New(initial, Options{Shards: 1, pressureInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q := testQueries(initial)[0]
	release := blockShard(srv)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = srv.SubgraphQueryCtx(ctx, q)
	var ce *core.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("deadline query: %v, want CancelError", err)
	}
	if ce.Stage != "wait" && ce.Stage != "queue" {
		t.Fatalf("cancel stage %q, want wait or queue", ce.Stage)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline return took %v: the front-end rode out the stall", d)
	}

	// The update admission checkpoint: an expired context is rejected
	// before anything is applied.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = srv.UpdateCtx(expired, []changeplan.Op{changeplan.DeleteOp(0)})
	if !errors.As(err, &ce) || ce.Stage != "update" {
		t.Fatalf("expired update: %v, want CancelError{update}", err)
	}

	release()
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadlineExceeded < 2 {
		t.Fatalf("deadline counter %d, want >= 2", st.DeadlineExceeded)
	}
	if n := st.deadlineByStage["update"]; n != 1 {
		t.Fatalf("update-stage deadline count %d, want 1", n)
	}
	// Epoch unchanged: the rejected update really applied nothing.
	if st.Epoch != 0 {
		t.Fatalf("epoch %d after rejected update, want 0", st.Epoch)
	}
}

// TestQueryTimeoutOption covers the server-level QueryTimeout (no caller
// context needed): the request 504s and the stage counter attributes it.
func TestQueryTimeoutOption(t *testing.T) {
	initial := genGraphs(t, 20, 3)
	srv, err := New(initial, Options{Shards: 1, QueryTimeout: 15 * time.Millisecond,
		pressureInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	release := blockShard(srv)
	defer release()

	_, err = srv.SubgraphQuery(testQueries(initial)[0])
	var ce *core.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("timed-out query: %v, want CancelError", err)
	}
	release()
	// The shard eventually runs the abandoned job; draining keeps the
	// deferred Close from racing the counter check.
	waitFor(t, func() bool {
		st, err := srv.Stats()
		return err == nil && st.DeadlineExceeded >= 1
	})
}

// TestPressureLadder drives the degradation controller directly (ticker
// disabled): escalation on queue pressure, exact answers under
// cache-bypass, and dwell-gated stepwise de-escalation.
func TestPressureLadder(t *testing.T) {
	initial := genGraphs(t, 30, 7)
	srv, err := New(initial, Options{Shards: 1, pressureInterval: -1,
		Cache: &cache.Config{Capacity: 40, WindowSize: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.press == nil {
		t.Fatal("pressure controller missing")
	}
	q := testQueries(initial)[0]
	want, err := srv.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the shard queue past the critical threshold while the worker
	// is parked, then evaluate: the controller must jump straight to
	// cache-bypass.
	release := blockShard(srv)
	fillDone := make(chan struct{})
	go func() {
		defer close(fillDone)
		for i := 0; i < srv.press.queueCrit; i++ {
			srv.hosts[0].Enqueue(func() {})
		}
	}()
	waitFor(t, func() bool { return srv.hosts[0].QueueLen() >= srv.press.queueCrit })
	base := time.Unix(1000, 0)
	srv.press.evaluate(base)
	if lvl := srv.press.Level(); lvl != DegradeCacheBypass {
		t.Fatalf("level %v under critical queue depth, want cache-bypass", lvl)
	}
	release()
	<-fillDone

	// Degraded serving stays exact and really bypasses the cache.
	got, err := srv.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got.IDs, want.IDs) {
		t.Fatalf("cache-bypass answer %v, want %v", got.IDs, want.IDs)
	}
	if !got.PerShard[0].CacheBypassed {
		t.Fatal("query under cache-bypass did not set CacheBypassed")
	}

	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradationLevel != int(DegradeCacheBypass) || st.DegradationMode != "cache-bypass" {
		t.Fatalf("stats degradation: %d %q", st.DegradationLevel, st.DegradationMode)
	}

	// De-escalation: queue empty now, but each rung needs pressureDwell
	// consecutive calm evaluations.
	waitFor(t, func() bool { return srv.hosts[0].QueueLen() == 0 })
	step := func(n int) {
		for i := 0; i < n; i++ {
			base = base.Add(time.Second)
			srv.press.evaluate(base)
		}
	}
	step(pressureDwell - 1)
	if lvl := srv.press.Level(); lvl != DegradeCacheBypass {
		t.Fatalf("level %v before dwell elapsed, want cache-bypass", lvl)
	}
	step(1)
	if lvl := srv.press.Level(); lvl != DegradeCappedVerify {
		t.Fatalf("level %v after first dwell, want capped-verify", lvl)
	}
	step(pressureDwell)
	if lvl := srv.press.Level(); lvl != DegradeNone {
		t.Fatalf("level %v after second dwell, want none", lvl)
	}
	if s := srv.press.degradedSeconds(base); s <= 0 {
		t.Fatalf("degraded seconds %f, want > 0", s)
	}

	// A degradation-disabled server never builds the controller.
	plain, err := New(initial, Options{Shards: 1, DisableDegradation: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.press != nil {
		t.Fatal("DisableDegradation still built a pressure controller")
	}
}

// TestWALFailurePolicies pins the durability-gap contract for both
// policies: appends that fail after retries open a gap (fail-update
// surfaces it per batch, degrade-to-volatile acks and latches the
// alarm), the durable-epoch claim freezes, and a snapshot rotation
// heals the gap.
func TestWALFailurePolicies(t *testing.T) {
	for _, policy := range []string{WALPolicyFailUpdate, WALPolicyDegradeToVolatile} {
		t.Run(policy, func(t *testing.T) {
			initial := genGraphs(t, 16, 5)
			// After: 1 skips the boot segment's header write; every frame
			// append into the boot segment then fails. The rotated segment
			// (wal-<epoch>) has a different name and stays healthy.
			ffs := faultfs.New(persist.OSFS, 1, faultfs.Rule{
				ID: "boot-wal-writes", Op: faultfs.OpWrite, Path: "wal-0000000000000000", After: 1,
			})
			opts := persistTestOptions(t.TempDir(), 1)
			opts.WALPolicy = policy
			opts.Faults = &FaultInjection{FS: ffs}
			opts.pressureInterval = -1
			srv, err := New(initial, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			// Pin the retry latch so the gap's automatic healing snapshot
			// never races the assertions below; the manual Snapshot call
			// is the only healer in this test.
			srv.snapRetryPending.Store(true)

			res, err := srv.Update([]changeplan.Op{changeplan.DeleteOp(0)})
			if policy == WALPolicyFailUpdate {
				if err == nil || res == nil {
					t.Fatalf("fail-update: res=%v err=%v, want applied result plus durability error", res, err)
				}
				if !strings.Contains(err.Error(), "shard 0") {
					t.Fatalf("durability error does not name the shard: %v", err)
				}
			} else if err != nil {
				t.Fatalf("degrade-to-volatile: %v, want swallowed append failure", err)
			}
			// The batch applied in memory either way.
			if res.Applied != 1 || res.Epoch != 1 {
				t.Fatalf("batch result: %+v", res)
			}

			// Later batches cannot become durable through the gapped
			// segment: no append is attempted, and fail-update keeps
			// reporting the gap.
			res2, err2 := srv.Update([]changeplan.Op{changeplan.DeleteOp(1)})
			if policy == WALPolicyFailUpdate {
				if err2 == nil || !strings.Contains(err2.Error(), "durability gap") {
					t.Fatalf("gapped update error: %v", err2)
				}
			} else if err2 != nil {
				t.Fatal(err2)
			}
			if res2.Epoch != 2 {
				t.Fatalf("epoch %d, want 2", res2.Epoch)
			}

			st, err := srv.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.WALVolatileShards != 1 {
				t.Fatalf("volatile shards %d, want 1 (gap open)", st.WALVolatileShards)
			}
			if st.DurableEpoch != 0 {
				t.Fatalf("durable epoch %d with the gap open, want 0", st.DurableEpoch)
			}
			if st.WALPolicy != policy {
				t.Fatalf("stats policy %q", st.WALPolicy)
			}

			// A snapshot generation rotates to a fresh segment and heals:
			// durability resumes at the generation's epoch.
			if err := srv.Snapshot(); err != nil {
				t.Fatalf("healing snapshot: %v", err)
			}
			st, err = srv.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.WALVolatileShards != 0 || st.DurableEpoch != 2 {
				t.Fatalf("after heal: volatile=%d durable=%d, want 0/2", st.WALVolatileShards, st.DurableEpoch)
			}

			// Post-heal appends land in the rotated segment and advance
			// durability again.
			if _, err := srv.Update([]changeplan.Op{changeplan.DeleteOp(2)}); err != nil {
				t.Fatalf("post-heal update: %v", err)
			}
			st, err = srv.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.DurableEpoch != 3 {
				t.Fatalf("post-heal durable epoch %d, want 3", st.DurableEpoch)
			}
			if len(ffs.Events()) == 0 {
				t.Fatal("no faults fired: the schedule missed the WAL writes")
			}
		})
	}
}

func TestUnknownWALPolicyRejected(t *testing.T) {
	_, err := New(genGraphs(t, 4, 1), Options{Shards: 1, WALPolicy: "retry-forever"})
	if err == nil || !strings.Contains(err.Error(), "WAL policy") {
		t.Fatalf("bad policy: %v", err)
	}
}

// TestCancellationLeavesCacheConsistent sweeps cancellation points
// through live queries — from before the shard job starts to deep in
// verification — and demands that (a) every outcome is either an exact
// answer or a CancelError and (b) the cache's index invariants hold
// after every cancellation.
func TestCancellationLeavesCacheConsistent(t *testing.T) {
	initial := genGraphs(t, 120, 13)
	srv, err := New(initial, Options{Shards: 1, pressureInterval: -1,
		Cache: &cache.Config{Capacity: 30, WindowSize: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	queries := testQueries(initial)
	q := queries[0]
	want, err := srv.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}

	checkCache := func() {
		done := make(chan struct{})
		srv.hosts[0].Enqueue(func() {
			defer close(done)
			testutil.RequireCacheIndex(t, srv.hosts[0].Runtime().Cache())
		})
		<-done
	}

	cancelled := 0
	for i := 0; i < 60; i++ {
		// Mutate between probes so validation and repair churn runs
		// concurrently with the cancellation sweep.
		if i%10 == 5 {
			g := initial[i%len(initial)]
			if _, err := srv.Update([]changeplan.Op{changeplan.AddOp(g.Clone())}); err != nil {
				t.Fatal(err)
			}
			want, err = srv.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		if i == 0 {
			cancel() // deterministic floor: cancelled before the job runs
		} else {
			// Sweep the cancellation point across the query's lifetime.
			d := time.Duration(i) * 40 * time.Microsecond
			timer := time.AfterFunc(d, cancel)
			defer timer.Stop()
		}
		res, err := srv.SubgraphQueryCtx(ctx, q)
		switch {
		case err == nil:
			if !equalIDs(res.IDs, want.IDs) {
				t.Fatalf("probe %d: answer %v, want %v", i, res.IDs, want.IDs)
			}
		default:
			var ce *core.CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("probe %d: %v, want CancelError", i, err)
			}
			cancelled++
			checkCache()
		}
		cancel()
	}
	if cancelled == 0 {
		t.Fatal("sweep produced no cancellations")
	}
	checkCache()
	// The server still serves exact answers after the abuse.
	got, err := srv.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got.IDs, want.IDs) {
		t.Fatalf("post-sweep answer %v, want %v", got.IDs, want.IDs)
	}
	t.Logf("sweep: %d/60 probes cancelled", cancelled)
}

// TestHTTPOverloadAndDeadlineStatuses pins the wire mapping: 429 plus
// Retry-After for shed load, 504 for deadline-exceeded, and the
// degradation fields in /readyz.
func TestHTTPOverloadAndDeadlineStatuses(t *testing.T) {
	initial := genGraphs(t, 20, 3)
	// The 300ms deadline keeps the first request parked on the blocked
	// shard long enough for the overflow request to be shed.
	srv, err := New(initial, Options{Shards: 1, MaxInFlightQueries: 1,
		QueryTimeout: 300 * time.Millisecond, pressureInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := codecOf(t, testQueries(initial)[0])

	release := blockShard(srv)
	defer release()

	// Occupy the admission slot with a request that will ride its
	// deadline out against the blocked shard, then overflow it.
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return inFlight(srv.querySem) == 1 })
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code := <-firstDone; code != http.StatusGatewayTimeout {
		t.Fatalf("deadline request: status %d, want 504", code)
	}
	// Stats-backed endpoints gather per-shard state through the job
	// queue; unblock the shard before probing them.
	release()

	// /readyz surfaces the degradation fields (level none here).
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decodeJSON[map[string]any](t, resp.Body)
	resp.Body.Close()
	if _, ok := ready["degradation_mode"]; !ok {
		t.Fatalf("readyz body lacks degradation_mode: %v", ready)
	}

	// /metrics exposes the new resilience series.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"gcplus_shed_total", "gcplus_deadline_exceeded_total",
		"gcplus_degradation_level", "gcplus_degraded_seconds_total",
		"gcplus_durable_epoch", "gcplus_wal_volatile_shards",
	} {
		if !strings.Contains(string(exposition), name) {
			t.Fatalf("metrics exposition lacks %s", name)
		}
	}
}

// TestHTTPOversizedBodiesUnderConcurrentLoad hammers the body-limit
// path from many goroutines while normal queries interleave: every
// oversized request must 413 and every normal one must succeed — no
// cross-request limiter state.
func TestHTTPOversizedBodiesUnderConcurrentLoad(t *testing.T) {
	initial := genGraphs(t, 20, 3)
	srv, err := New(initial, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	small := codecOf(t, testQueries(initial)[0])
	big := strings.Repeat("# padding line to exceed the query body limit\n", maxQueryBodyBytes/46+2)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*6)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(big))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusRequestEntityTooLarge {
					errs <- fmt.Errorf("worker %d: oversized status %d", w, resp.StatusCode)
				}
				resp, err = http.Post(ts.URL+"/query", "text/plain", strings.NewReader(small))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: normal status %d", w, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHTTPMalformedOpMidBatchAtomicity posts a batch whose second op is
// malformed: decoding rejects the whole batch before anything executes,
// so the epoch and the dataset stay untouched.
func TestHTTPMalformedOpMidBatchAtomicity(t *testing.T) {
	initial := genGraphs(t, 10, 2)
	srv, err := New(initial, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	addBody := codecOf(t, initial[0].Clone())
	payload := fmt.Sprintf(`{"ops":[{"op":"ADD","graph":%q},{"op":"UA","id":2},{"op":"DEL","id":0}]}`, addBody)
	resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed mid-batch op: status %d, want 400", resp.StatusCode)
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || st.LiveGraphs != 10 {
		t.Fatalf("rejected batch mutated state: epoch=%d live=%d", st.Epoch, st.LiveGraphs)
	}
}
