package router

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/synthetic"
)

// genGraphs synthesizes a small AIDS-like dataset.
func genGraphs(t testing.TB, n int, seed int64) []*graph.Graph {
	t.Helper()
	cfg := synthetic.Default().WithGraphs(n)
	cfg.MeanVertices = 14
	cfg.StdVertices = 5
	cfg.MaxVertices = 30
	cfg.Seed = seed
	gs, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

// groundTruth builds the single-threaded no-cache reference runtime (pure
// Method M) over ds.
func groundTruth(t testing.TB, ds *dataset.Dataset) *core.Runtime {
	t.Helper()
	algo, err := subiso.New("VF2")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(ds, core.Options{Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// testQueries derives a mix of small pattern queries from dataset labels.
func testQueries(initial []*graph.Graph) []*graph.Graph {
	var qs []*graph.Graph
	for i := 0; i < 6 && i < len(initial); i++ {
		g := initial[i]
		if g.NumVertices() < 3 {
			continue
		}
		l0, l1, l2 := g.Label(0), g.Label(1), g.Label(2)
		switch i % 3 {
		case 0:
			qs = append(qs, graph.Path(l0, l1))
		case 1:
			qs = append(qs, graph.Path(l0, l1, l2))
		default:
			qs = append(qs, graph.Star(l1, l0, l2))
		}
	}
	return qs
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryMatchesGroundTruthAcrossShardCounts(t *testing.T) {
	initial := genGraphs(t, 60, 11)
	mirror := dataset.New(initial)
	gt := groundTruth(t, mirror)
	queries := testQueries(initial)
	if len(queries) == 0 {
		t.Fatal("no test queries generated")
	}

	for _, shards := range []int{1, 3, 4, 7} {
		srv, err := New(initial, Options{Shards: shards, Method: "VF2"})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want, err := gt.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got.IDs, want.AnswerIDs()) {
				t.Fatalf("shards=%d sub query %d: got %v want %v", shards, qi, got.IDs, want.AnswerIDs())
			}
			if got.Candidates != 60 {
				t.Fatalf("shards=%d: candidates %d, want 60", shards, got.Candidates)
			}

			wantSuper, err := gt.SupergraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			gotSuper, err := srv.SupergraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(gotSuper.IDs, wantSuper.AnswerIDs()) {
				t.Fatalf("shards=%d super query %d: got %v want %v", shards, qi, gotSuper.IDs, wantSuper.AnswerIDs())
			}
		}
		srv.Close()
	}
}

func TestUpdateRoutingMatchesMirror(t *testing.T) {
	initial := genGraphs(t, 40, 23)
	srv, err := New(initial, Options{Shards: 4, Method: "VF2"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mirror := dataset.New(initial)
	gt := groundTruth(t, mirror)
	queries := testQueries(initial)
	rng := rand.New(rand.NewSource(99))

	for batch := 1; batch <= 12; batch++ {
		ops := randomOps(rng, mirror, initial, 5)
		// Mirror first: records the expected per-op outcome, including
		// the global id an ADD must receive.
		type expOp struct {
			id int
			ok bool
		}
		exp := make([]expOp, len(ops))
		for i, op := range ops {
			id, err := op.Apply(mirror)
			exp[i] = expOp{id: id, ok: err == nil}
		}
		res, err := srv.Update(ops)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != uint64(batch) {
			t.Fatalf("batch %d: epoch %d", batch, res.Epoch)
		}
		for i := range ops {
			gotOK := res.Ops[i].Err == nil
			if gotOK != exp[i].ok {
				t.Fatalf("batch %d op %d (%v): server ok=%v mirror ok=%v (err=%v)",
					batch, i, ops[i], gotOK, exp[i].ok, res.Ops[i].Err)
			}
			if gotOK && res.Ops[i].ID != exp[i].id {
				t.Fatalf("batch %d op %d (%v): server id %d, mirror id %d",
					batch, i, ops[i], res.Ops[i].ID, exp[i].id)
			}
		}
		for qi, q := range queries {
			want, err := gt.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got.IDs, want.AnswerIDs()) {
				t.Fatalf("batch %d query %d: got %v want %v", batch, qi, got.IDs, want.AnswerIDs())
			}
			if got.Epoch != uint64(batch) {
				t.Fatalf("batch %d query %d: epoch %d", batch, qi, got.Epoch)
			}
		}
	}
}

func TestUpdateErrors(t *testing.T) {
	initial := genGraphs(t, 8, 3)
	srv, err := New(initial, Options{Shards: 2, Method: "VF2"})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := srv.Update(nil); err == nil {
		t.Fatal("empty batch: want error")
	}
	res, err := srv.Update([]changeplan.Op{
		changeplan.DeleteOp(2),
		changeplan.DeleteOp(2),   // already deleted
		changeplan.DeleteOp(999), // out of range
		{Type: dataset.OpAdd},    // nil graph
		changeplan.AddEdgeOp(0, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("applied %d, want 1", res.Applied)
	}
	for i := 1; i < len(res.Ops); i++ {
		if res.Ops[i].Err == nil {
			t.Fatalf("op %d: want per-op error", i)
		}
		if res.Ops[i].ID != -1 {
			t.Fatalf("op %d: id %d, want -1", i, res.Ops[i].ID)
		}
	}

	srv.Close()
	if _, err := srv.SubgraphQuery(graph.Path(1, 2)); err != ErrClosed {
		t.Fatalf("query after close: %v, want ErrClosed", err)
	}
	if _, err := srv.Update([]changeplan.Op{changeplan.DeleteOp(0)}); err != ErrClosed {
		t.Fatalf("update after close: %v, want ErrClosed", err)
	}
	if _, err := srv.Stats(); err != ErrClosed {
		t.Fatalf("stats after close: %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
}

func TestStatsSnapshot(t *testing.T) {
	initial := genGraphs(t, 30, 5)
	srv, err := New(initial, Options{Shards: 3, Method: "VF2"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	queries := testQueries(initial)
	for _, q := range queries {
		if _, err := srv.SubgraphQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Update([]changeplan.Op{changeplan.DeleteOp(0)}); err != nil {
		t.Fatal(err)
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("shards: %+v", st)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", st.Epoch)
	}
	if st.LiveGraphs != 29 {
		t.Fatalf("live graphs %d, want 29", st.LiveGraphs)
	}
	if st.Queries != int64(len(queries)) {
		t.Fatalf("queries %d, want %d", st.Queries, len(queries))
	}
	for _, ss := range st.PerShard {
		if ss.Metrics.Queries != int64(len(queries)) {
			t.Fatalf("shard %d queries %d, want %d", ss.Shard, ss.Metrics.Queries, len(queries))
		}
		if ss.Cache.Capacity != 100 || ss.Cache.Model != "CON" {
			t.Fatalf("shard %d cache snapshot: %+v", ss.Shard, ss.Cache)
		}
	}
}

// randomOps resolves n random operations against the mirror's current
// state. Ops later invalidated by earlier ops in the same batch fail
// identically on server and mirror, which the callers treat as a matched
// outcome.
func randomOps(rng *rand.Rand, mirror *dataset.Dataset, pool []*graph.Graph, n int) []changeplan.Op {
	ops := make([]changeplan.Op, 0, n)
	for len(ops) < n {
		switch rng.Intn(4) {
		case 0:
			ops = append(ops, changeplan.AddOp(pool[rng.Intn(len(pool))].Clone()))
		case 1:
			ids := mirror.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			ops = append(ops, changeplan.DeleteOp(ids[rng.Intn(len(ids))]))
		case 2:
			ids := mirror.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			g := mirror.Graph(id)
			nv := g.NumVertices()
			if nv < 2 {
				continue
			}
			u, v := rng.Intn(nv), rng.Intn(nv)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			ops = append(ops, changeplan.AddEdgeOp(id, u, v))
		default:
			ids := mirror.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			g := mirror.Graph(id)
			if g.NumEdges() == 0 {
				continue
			}
			es := g.EdgeList()
			ed := es[rng.Intn(len(es))]
			ops = append(ops, changeplan.RemoveEdgeOp(id, int(ed.U), int(ed.V)))
		}
	}
	return ops
}

// TestStressConcurrentQueriesWithSerializedUpdates is the concurrency
// acceptance test: ≥4 shards serving concurrent sub/supergraph queries
// while a writer applies serialized update batches. Every answer must
// equal the single-threaded no-cache ground truth at the epoch the
// answer reports — the paper's no-false-positives / no-false-negatives
// guarantee (Theorems 3 & 6) carried into concurrent serving. Run under
// -race this also proves the shard workers, the epoch sequencer and the
// id translation maps are data-race free.
func TestStressConcurrentQueriesWithSerializedUpdates(t *testing.T) {
	for _, eager := range []bool{false, true} {
		t.Run(fmt.Sprintf("eager=%v", eager), func(t *testing.T) {
			stressRound(t, eager)
		})
	}
}

func stressRound(t *testing.T, eager bool) {
	const (
		shards  = 5
		readers = 8
		batches = 20
		opsPer  = 5
	)
	initial := genGraphs(t, 70, 31)
	srv, err := New(initial, Options{Shards: shards, Method: "VF2", EagerValidate: eager,
		Cache: &cache.Config{Capacity: 40, WindowSize: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mirror := dataset.New(initial)
	gt := groundTruth(t, mirror)
	queries := testQueries(initial)

	// expected[e][qi] is the ground-truth answer of query qi at epoch e;
	// odd qi run as supergraph queries. Written only by the writer (the
	// test goroutine), read only after the readers have joined.
	expected := make([][][]int, batches+1)
	compute := func() [][]int {
		out := make([][]int, len(queries))
		for qi, q := range queries {
			var res *core.Result
			var err error
			if qi%2 == 0 {
				res, err = gt.SubgraphQuery(q)
			} else {
				res, err = gt.SupergraphQuery(q)
			}
			if err != nil {
				t.Error(err)
				return nil
			}
			out[qi] = res.AnswerIDs()
		}
		return out
	}
	expected[0] = compute()

	type observation struct {
		qi    int
		epoch uint64
		ids   []int
	}
	observations := make([][]observation, readers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for !stop.Load() {
				qi := rng.Intn(len(queries))
				var res *QueryResult
				var err error
				if qi%2 == 0 {
					res, err = srv.SubgraphQuery(queries[qi])
				} else {
					res, err = srv.SupergraphQuery(queries[qi])
				}
				if err != nil {
					t.Error(err)
					return
				}
				observations[r] = append(observations[r], observation{qi: qi, epoch: res.Epoch, ids: res.IDs})
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(77))
	for b := 1; b <= batches; b++ {
		ops := randomOps(rng, mirror, initial, opsPer)
		type expOp struct {
			id int
			ok bool
		}
		exp := make([]expOp, len(ops))
		for i, op := range ops {
			id, err := op.Apply(mirror)
			exp[i] = expOp{id: id, ok: err == nil}
		}
		res, err := srv.Update(ops)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != uint64(b) {
			t.Fatalf("batch %d: epoch %d", b, res.Epoch)
		}
		for i := range ops {
			if (res.Ops[i].Err == nil) != exp[i].ok || (exp[i].ok && res.Ops[i].ID != exp[i].id) {
				t.Fatalf("batch %d op %d (%v): server %+v, mirror %+v", b, i, ops[i], res.Ops[i], exp[i])
			}
		}
		expected[b] = compute()
	}
	stop.Store(true)
	wg.Wait()

	total := 0
	for r, obs := range observations {
		for _, o := range obs {
			total++
			if o.epoch > uint64(batches) {
				t.Fatalf("reader %d: impossible epoch %d", r, o.epoch)
			}
			if !equalIDs(o.ids, expected[o.epoch][o.qi]) {
				t.Fatalf("reader %d query %d at epoch %d: got %v, ground truth %v",
					r, o.qi, o.epoch, o.ids, expected[o.epoch][o.qi])
			}
		}
	}
	if total == 0 {
		t.Fatal("no concurrent observations recorded")
	}
	t.Logf("verified %d concurrent answers against ground truth across %d epochs (eager=%v)", total, batches+1, eager)
}
