package router

import (
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/graph"
	"gcplus/internal/persist"
)

// persistTestOptions returns serving options with durability on. The
// PIN policy keeps eviction deterministic (HD/PINC score by measured
// CPU time), so recovered and reference instances stay comparable
// entry for entry; NoSync skips per-append fsyncs — the tests exercise
// crash *consistency* (torn files, partial generations), not the
// storage stack's power-loss behavior.
func persistTestOptions(dir string, shards int) Options {
	return Options{
		Shards:        shards,
		DataDir:       dir,
		SnapshotEvery: 1 << 30, // snapshots forced explicitly
		NoSync:        true,
		Cache:         &cache.Config{Capacity: 64, WindowSize: 5, Policy: cache.PolicyPIN},
	}
}

// deterministicBatches builds n update batches whose per-op outcomes
// are functions of dataset state only, so a reference replica applying
// the same batches lands in the identical state.
func deterministicBatches(initial []*graph.Graph, n int) [][]changeplan.Op {
	batches := make([][]changeplan.Op, 0, n)
	for j := 0; j < n; j++ {
		g := initial[j%len(initial)]
		ops := []changeplan.Op{changeplan.AddOp(g.Clone())}
		if g.NumEdges() > 0 {
			e := g.EdgeList()[j%g.NumEdges()]
			ops = append(ops, changeplan.RemoveEdgeOp(j%len(initial), int(e.U), int(e.V)))
		}
		if j%3 == 2 {
			ops = append(ops, changeplan.DeleteOp(j))
		}
		batches = append(batches, ops)
	}
	return batches
}

// probeAnswers runs every query in both kinds and returns the answer id
// lists in order.
func probeAnswers(t *testing.T, srv *Server, queries []*graph.Graph) [][]int {
	t.Helper()
	var out [][]int
	for _, q := range queries {
		sub, err := srv.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := srv.SupergraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sub.IDs, sup.IDs)
	}
	return out
}

func requireSameAnswers(t *testing.T, label string, want, got [][]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d probe answers", label, len(want), len(got))
	}
	for i := range want {
		if !equalIDs(want[i], got[i]) {
			t.Fatalf("%s: probe %d: want %v, got %v", label, i, want[i], got[i])
		}
	}
}

// awaitRepairDrain polls until the repair pipeline is idle: no queued
// pairs and no commit in flight (the restored-bits counter stable
// across polls). Full validity is not required — entries admitted
// before an ADD legitimately stay invalid on the new graph id until a
// re-execution refreshes them; repair only restores bits it can prove.
func awaitRepairDrain(t *testing.T, srv *Server) *Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	lastRepaired := int64(-1)
	for {
		st, err := srv.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.PendingRepairs == 0 {
			if st.RepairedBits == lastRepaired {
				return st
			}
			lastRepaired = st.RepairedBits
		} else {
			lastRepaired = -1
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair did not drain: pending=%d repaired=%d", st.PendingRepairs, st.RepairedBits)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWarmRestartDifferential is the end-to-end recovery oracle: a
// durable server takes queries and update batches, shuts down
// gracefully, and is rebooted from its data directory; a cold replica
// applies the identical batches from scratch. The recovered server must
// answer every probe bit-identically to the cold rebuild — and keep
// doing so as further updates and queries land on both — while having
// restored its cache entries rather than recomputed them.
func TestWarmRestartDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		initial := genGraphs(t, 36, seed)
		queries := testQueries(initial)
		dir := t.TempDir()
		opts := persistTestOptions(dir, 3)
		opts.SnapshotEvery = 3 // let the automatic trigger fire too

		srv, err := New(initial, opts)
		if err != nil {
			t.Fatal(err)
		}
		batches := deterministicBatches(initial, 7)
		for i, ops := range batches {
			probeAnswers(t, srv, queries) // warm the caches between batches
			if _, err := srv.Update(ops); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		probeAnswers(t, srv, queries)
		st, err := srv.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Epoch != uint64(len(batches)) {
			t.Fatalf("epoch %d, want %d", st.Epoch, len(batches))
		}
		warmEntries := 0
		for _, ss := range st.PerShard {
			warmEntries += ss.Cache.Entries + ss.Cache.Window
		}
		if warmEntries == 0 {
			t.Fatal("test needs a warmed cache")
		}
		srv.Close() // graceful: final snapshot generation

		// Cold replica: fresh server, same batches.
		coldOpts := opts
		coldOpts.DataDir = ""
		cold, err := New(initial, coldOpts)
		if err != nil {
			t.Fatal(err)
		}
		defer cold.Close()
		for _, ops := range batches {
			if _, err := cold.Update(ops); err != nil {
				t.Fatal(err)
			}
		}

		// Warm restart. The initial slice is ignored: pass nil.
		srv2, err := New(nil, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		entries, epoch, ok := srv2.Recovered()
		if !ok || entries != warmEntries || epoch != uint64(len(batches)) {
			t.Fatalf("seed %d: recovered (%d,%d,%v), want (%d,%d,true)",
				seed, entries, epoch, ok, warmEntries, len(batches))
		}
		requireSameAnswers(t, "after restart",
			probeAnswers(t, cold, queries), probeAnswers(t, srv2, queries))

		// Both keep evolving identically: more updates, more queries.
		more := deterministicBatches(initial, 11)[7:]
		for _, ops := range more {
			r1, err := srv2.Update(ops)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := cold.Update(ops)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Applied != r2.Applied {
				t.Fatalf("seed %d: applied %d vs %d", seed, r1.Applied, r2.Applied)
			}
			for i := range r1.Ops {
				if r1.Ops[i].ID != r2.Ops[i].ID {
					t.Fatalf("seed %d: op %d assigned id %d vs %d", seed, i, r1.Ops[i].ID, r2.Ops[i].ID)
				}
			}
		}
		requireSameAnswers(t, "after post-restart updates",
			probeAnswers(t, cold, queries), probeAnswers(t, srv2, queries))
		drained := awaitRepairDrain(t, srv2)
		if !drained.PersistEnabled || drained.RecoveredEntries != warmEntries {
			t.Fatalf("seed %d: stats %+v", seed, drained)
		}
		srv2.Close()
	}
}

// copyTree clones a data directory so each kill point starts from the
// same post-crash disk image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryKillPoints truncates the WAL at every frame boundary
// and mid-frame and asserts that recovery plus re-application of the
// lost batches converges to answers bit-identical to an uninterrupted
// run — after the repair pipeline drains. Single shard, so every kill
// point is a well-defined byte offset.
func TestCrashRecoveryKillPoints(t *testing.T) {
	initial := genGraphs(t, 30, 5)
	queries := testQueries(initial)
	dir := t.TempDir()
	opts := persistTestOptions(dir, 1)

	srv, err := New(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	batches := deterministicBatches(initial, 6)
	const snapAfter = 2
	for i, ops := range batches {
		probeAnswers(t, srv, queries)
		if _, err := srv.Update(ops); err != nil {
			t.Fatal(err)
		}
		if i+1 == snapAfter {
			if err := srv.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	probeAnswers(t, srv, queries)
	srv.CloseAbrupt() // crash: no final snapshot, WAL tail only

	// Uninterrupted reference.
	refOpts := opts
	refOpts.DataDir = ""
	ref, err := New(initial, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, ops := range batches {
		if _, err := ref.Update(ops); err != nil {
			t.Fatal(err)
		}
	}
	want := probeAnswers(t, ref, queries)

	// The crash image: snapshot at epoch 2, wal-2.log with frames for
	// epochs 3..6. (Recoveries below run on copies, so holding this
	// store's lock on the original is fine.)
	store, err := persist.OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	walPath := store.WALPath(0, snapAfter)
	base, frames, _, torn, err := persist.ReadWALFile(walPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base != snapAfter || torn || len(frames) != len(batches)-snapAfter {
		t.Fatalf("crash image: base=%d torn=%v frames=%d", base, torn, len(frames))
	}

	// Kill points: just past the header (no frames), every frame
	// boundary, and the middle of every frame. The framing overhead and
	// header size are derived from the read-back offsets, not hardcoded.
	overhead := (frames[1].End - frames[0].End) - int64(len(frames[1].Payload))
	headerEnd := frames[0].End - int64(len(frames[0].Payload)) - overhead
	type killPoint struct {
		cut    int64
		intact int // frames surviving the cut
	}
	points := []killPoint{
		{headerEnd, 0},
		{headerEnd + (frames[0].End-headerEnd)/2, 0}, // mid first frame
	}
	for i, f := range frames {
		points = append(points, killPoint{f.End, i + 1})
		if i+1 < len(frames) {
			points = append(points, killPoint{f.End + (frames[i+1].End-f.End)/2, i + 1})
		}
	}

	for _, kp := range points {
		killDir := t.TempDir()
		copyTree(t, dir, killDir)
		if err := os.Truncate(filepath.Join(killDir, "shard-0", filepath.Base(walPath)), kp.cut); err != nil {
			t.Fatal(err)
		}
		kopts := opts
		kopts.DataDir = killDir
		rec, err := New(nil, kopts)
		if err != nil {
			t.Fatalf("cut %d: %v", kp.cut, err)
		}
		entries, epoch, ok := rec.Recovered()
		wantEpoch := uint64(snapAfter + kp.intact)
		if !ok || epoch != wantEpoch || entries == 0 {
			t.Fatalf("cut %d: recovered (%d,%d,%v), want epoch %d", kp.cut, entries, epoch, ok, wantEpoch)
		}
		// Re-apply the batches the cut lost (the client retry path) …
		for _, ops := range batches[epoch:] {
			if _, err := rec.Update(ops); err != nil {
				t.Fatal(err)
			}
		}
		// … drain repair, and demand bit-identical answers.
		awaitRepairDrain(t, rec)
		requireSameAnswers(t, "kill point", want, probeAnswers(t, rec, queries))
		rec.Close()
	}
}

// TestCrashRecoveryCrossShardTorn pins the cross-shard consistency
// point: when a crash leaves one shard's WAL a batch ahead of
// another's, recovery rolls every shard back to the newest batch
// durable everywhere — and truncates the over-long WAL on disk, so a
// second recovery agrees with the first.
func TestCrashRecoveryCrossShardTorn(t *testing.T) {
	initial := genGraphs(t, 24, 9)
	queries := testQueries(initial)
	dir := t.TempDir()
	opts := persistTestOptions(dir, 2)

	srv, err := New(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	batches := deterministicBatches(initial, 4)
	for _, ops := range batches {
		probeAnswers(t, srv, queries)
		if _, err := srv.Update(ops); err != nil {
			t.Fatal(err)
		}
	}
	srv.CloseAbrupt()

	// Cut shard 1's last frame: shard 0 now claims epoch 4, shard 1
	// only 3. (Close the inspection store before recovery — an open
	// store holds the directory's exclusive lock.)
	store, err := persist.OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, frames, _, _, err := persist.ReadWALFile(store.WALPath(1, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("shard 1 has %d frames", len(frames))
	}
	if err := os.Truncate(store.WALPath(1, 0), frames[2].End); err != nil {
		t.Fatal(err)
	}
	store.Close()

	rec, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, epoch, ok := rec.Recovered()
	if !ok || epoch != 3 {
		t.Fatalf("recovered epoch %d, want 3 (newest batch durable on both shards)", epoch)
	}
	rec.CloseAbrupt()

	// The discarded shard-0 frame must be gone from disk: a second
	// recovery sees the same world.
	rec2, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, epoch2, _ := rec2.Recovered()
	if epoch2 != 3 {
		t.Fatalf("second recovery epoch %d, want 3", epoch2)
	}
	// Re-apply the rolled-back batch; answers must match a reference
	// that applied all four.
	if _, err := rec2.Update(batches[3]); err != nil {
		t.Fatal(err)
	}
	refOpts := opts
	refOpts.DataDir = ""
	ref, err := New(initial, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, ops := range batches {
		if _, err := ref.Update(ops); err != nil {
			t.Fatal(err)
		}
	}
	awaitRepairDrain(t, rec2)
	requireSameAnswers(t, "cross-shard", probeAnswers(t, ref, queries), probeAnswers(t, rec2, queries))
	rec2.Close()
}

// TestSnapshotAutoTriggerAndNoWAL covers the automatic snapshot cadence
// and the snapshot-only (-nowal) durability mode, whose crash contract
// is "state as of the last snapshot".
func TestSnapshotAutoTriggerAndNoWAL(t *testing.T) {
	initial := genGraphs(t, 20, 11)
	queries := testQueries(initial)
	dir := t.TempDir()
	opts := persistTestOptions(dir, 2)
	opts.SnapshotEvery = 2
	opts.DisableWAL = true

	srv, err := New(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs 2 and 4 trigger asynchronous generations. Wait each one
	// out before the next batch — back-to-back batches would otherwise
	// legitimately skip a trigger while the previous generation is
	// still writing.
	awaitSnapshot := func(epoch uint64) *Stats {
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, err := srv.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.LastSnapshotEpoch == epoch {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("auto snapshot never reached epoch %d (at %d)", epoch, st.LastSnapshotEpoch)
			}
			time.Sleep(time.Millisecond)
		}
	}
	batches := deterministicBatches(initial, 5)
	for i, ops := range batches {
		probeAnswers(t, srv, queries)
		if _, err := srv.Update(ops); err != nil {
			t.Fatal(err)
		}
		if e := uint64(i + 1); e%2 == 0 {
			awaitSnapshot(e)
		}
	}
	st := awaitSnapshot(4)
	if st.SnapshotsWritten < 3 { // boot generation + the two auto triggers
		t.Fatalf("snapshots written: %d", st.SnapshotsWritten)
	}
	if st.WALBytes != 0 {
		t.Fatalf("WAL bytes %d with the WAL disabled", st.WALBytes)
	}
	srv.CloseAbrupt()

	// Recovery lands at the last generation: epoch 4, batch 5 lost.
	rec, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	_, epoch, ok := rec.Recovered()
	if !ok || epoch != 4 {
		t.Fatalf("recovered epoch %d, want 4 (snapshot-only durability)", epoch)
	}
	ref, err := New(initial, Options{Shards: 2, Cache: opts.Cache})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, ops := range batches[:4] {
		if _, err := ref.Update(ops); err != nil {
			t.Fatal(err)
		}
	}
	requireSameAnswers(t, "nowal", probeAnswers(t, ref, queries), probeAnswers(t, rec, queries))
}

// TestStatsOpsFields pins the /stats operability additions: monotonic
// uptime and build identification.
func TestStatsOpsFields(t *testing.T) {
	srv, err := New(genGraphs(t, 8, 1), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	st1, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st1.GoVersion != runtime.Version() {
		t.Fatalf("go version %q", st1.GoVersion)
	}
	if st1.ModuleVersion == "" {
		t.Fatal("empty module version")
	}
	if st1.PersistEnabled || st1.RecoveredEntries != 0 {
		t.Fatalf("persistence fields set without a data dir: %+v", st1)
	}
	time.Sleep(5 * time.Millisecond)
	st2, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.UptimeSec <= st1.UptimeSec || st1.UptimeSec < 0 {
		t.Fatalf("uptime not monotonic: %f then %f", st1.UptimeSec, st2.UptimeSec)
	}
}
