package router

import (
	"time"

	"gcplus/internal/persist"
	"gcplus/internal/transport"
)

// This file holds the overload / failure-policy vocabulary of the
// resilience layer: the WAL failure policies and the fault injection
// hooks the chaos harness drives. The typed errors themselves live in
// internal/transport (one shared table classifies them into transport
// status codes for both the HTTP handlers and the wire protocol);
// aliases are kept here so existing callers keep compiling.

// OverloadError is returned when admission control sheds a request
// because the in-flight limit is saturated. The HTTP layer maps it to
// 429 with a Retry-After header; programmatic callers should back off
// and retry — nothing was executed or enqueued.
type OverloadError = transport.OverloadError

// DurabilityError is returned (alongside the applied result) when a WAL
// append ultimately failed under the fail-update policy: the batch is
// applied in memory but may not be durable.
type DurabilityError = transport.DurabilityError

// IsOverload reports whether err is an admission-control shed.
func IsOverload(err error) bool { return transport.IsOverload(err) }

// WAL failure policies (Options.WALPolicy). The policy decides what an
// update batch whose WAL append ultimately failed — after the bounded
// in-place retries — means for the caller.
const (
	// WALPolicyFailUpdate (the default) propagates the failure: Update
	// returns the result alongside an error, the HTTP layer answers 503
	// with the failed shard's detail, and the durable-epoch claim in
	// /stats stops advancing. The batch IS applied in memory — clients
	// must not blindly re-submit.
	WALPolicyFailUpdate = "fail-update"
	// WALPolicyDegradeToVolatile acknowledges the batch (200) despite
	// the append failure and latches the shard volatile: an
	// edge-triggered alarm is logged, gcplus_wal_volatile_shards rises,
	// and the durable-epoch claim stops advancing until a snapshot
	// rotation heals the segment. Availability over durability.
	WALPolicyDegradeToVolatile = "degrade-to-volatile"
)

// snapshot retry backoff: a failed generation schedules a retry
// instead of waiting for the next SnapshotEvery trigger; consecutive
// failures double the delay up to the cap.
const (
	snapRetryBase = 250 * time.Millisecond
	snapRetryCap  = 8 * time.Second
)

// FaultInjection carries the chaos harness's hooks into the serving
// path. All hooks are optional; nil fields mean "no injection". The
// struct is plumbed via Options.Faults and is intentionally not
// exposed on the public gcplus facade.
type FaultInjection struct {
	// FS replaces the persistence layer's filesystem (see
	// internal/faultfs) so WAL and snapshot I/O fail on schedule.
	FS persist.FS
	// ShardStall, when set, is invoked at the start of every shard job
	// execution — sleeping inside it stalls the shard's owner goroutine
	// exactly like a descheduled or I/O-blocked worker, backing up the
	// FIFO queue behind it.
	ShardStall func(shard int)
	// Now replaces time.Now for the server's bookkeeping clocks (queue
	// wait, uptime, slow-log timestamps), simulating wall-clock skew.
	// Epoch sequencing and durability never consult it — correctness
	// must not depend on the clock, which is what the hook proves.
	Now func() time.Time
}

// validWALPolicy reports whether p names a known WAL failure policy
// ("" means the default).
func validWALPolicy(p string) bool {
	return p == "" || p == WALPolicyFailUpdate || p == WALPolicyDegradeToVolatile
}
