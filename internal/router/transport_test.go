package router

import (
	"context"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
)

// TestTransportDifferential runs the same query workload against two
// routers that differ only in their shard transport — local in-process
// calls vs the loopback TCP wire — and demands bit-identical results:
// same answer ids, same limited prefixes, same truncation flags. The
// transport seam must be invisible to every caller above the router.
func TestTransportDifferential(t *testing.T) {
	initial := genGraphs(t, 60, 17)
	queries := testQueries(initial)
	if len(queries) == 0 {
		t.Fatal("no test queries generated")
	}

	opts := Options{
		Shards: 4,
		Method: "VF2",
		Cache:  &cache.Config{Capacity: 32, WindowSize: 4},
	}
	local, err := New(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	optsLB := opts
	optsLB.Transport = TransportLoopback
	remote, err := New(initial, optsLB)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if local.Transport() != TransportLocal || remote.Transport() != TransportLoopback {
		t.Fatalf("transports %q / %q", local.Transport(), remote.Transport())
	}

	ctx := context.Background()
	for qi, q := range queries {
		a, err := local.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := remote.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a.IDs, b.IDs) {
			t.Fatalf("sub query %d: local %v loopback %v", qi, a.IDs, b.IDs)
		}
		if a.Candidates != b.Candidates || a.SubIsoTests != b.SubIsoTests {
			t.Fatalf("sub query %d: stats diverge local(%d,%d) loopback(%d,%d)",
				qi, a.Candidates, a.SubIsoTests, b.Candidates, b.SubIsoTests)
		}

		as, err := local.SupergraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := remote.SupergraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(as.IDs, bs.IDs) {
			t.Fatalf("super query %d: local %v loopback %v", qi, as.IDs, bs.IDs)
		}

		// ?limit=N semantics must agree too: the limited answer is an
		// exact prefix of the full global (ascending-id) answer, and the
		// truncation flag fires on both sides or neither.
		for _, limit := range []int{1, 2, len(a.IDs), len(a.IDs) + 3} {
			if limit == 0 {
				continue
			}
			la, err := local.SubgraphQueryLimitCtx(ctx, q, limit)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := remote.SubgraphQueryLimitCtx(ctx, q, limit)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(la.IDs, lb.IDs) || la.Truncated != lb.Truncated {
				t.Fatalf("sub query %d limit %d: local %v(%v) loopback %v(%v)",
					qi, limit, la.IDs, la.Truncated, lb.IDs, lb.Truncated)
			}
			wantPrefix := a.IDs
			if limit < len(wantPrefix) {
				wantPrefix = wantPrefix[:limit]
			}
			if !equalIDs(la.IDs, wantPrefix) {
				t.Fatalf("sub query %d limit %d: %v is not a prefix of %v", qi, limit, la.IDs, a.IDs)
			}
			if la.Truncated != (limit < len(a.IDs)) {
				t.Fatalf("sub query %d limit %d: truncated=%v with %d full answers",
					qi, limit, la.Truncated, len(a.IDs))
			}
		}
	}

	// Updates must route identically over both transports.
	for _, g := range genGraphs(t, 4, 99) {
		ops := []changeplan.Op{changeplan.AddOp(g.Clone())}
		if _, err := local.Update(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := remote.Update([]changeplan.Op{changeplan.AddOp(g.Clone())}); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range queries {
		a, err := local.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := remote.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a.IDs, b.IDs) {
			t.Fatalf("post-update sub query %d: local %v loopback %v", qi, a.IDs, b.IDs)
		}
	}
}
