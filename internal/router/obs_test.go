package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/dataset"
)

// promLine matches one Prometheus text-format sample line, optionally
// carrying an OpenMetrics-style exemplar suffix (same validator the obs
// package pins; duplicated here because it is not exported API, only a
// test contract).
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)( # \{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"\} (-?[0-9.e+-]+|NaN|\+Inf|-Inf))?$`)

func checkExposition(t *testing.T, body string) {
	t.Helper()
	samples := 0
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("exposition line %d is malformed: %q", ln+1, line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("exposition rendered no samples")
	}
}

// promValue extracts one sample's value from an exposition body; the
// series must appear exactly once.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	var got float64
	found := 0
	for _, line := range strings.Split(body, "\n") {
		name := line
		if i := strings.LastIndex(line, " "); i >= 0 {
			name = line[:i]
		}
		if name != series {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		got = v
		found++
	}
	if found != 1 {
		t.Fatalf("series %q appears %d times, want 1", series, found)
	}
	return got
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestMetricsExposition(t *testing.T) {
	initial := genGraphs(t, 24, 9)
	srv, err := New(initial, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := testQueries(initial)
	const rounds = 7
	for i := 0; i < rounds; i++ {
		q := queries[i%len(queries)]
		if _, err := srv.SubgraphQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Update([]changeplan.Op{changeplan.AddOp(initial[0].Clone())}); err != nil {
		t.Fatal(err)
	}

	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	checkExposition(t, body)

	// The core series must exist — CI greps for these names too.
	for _, want := range []string{
		"# TYPE gcplus_queries_total counter",
		"# TYPE gcplus_stage_duration_seconds histogram",
		"# TYPE gcplus_queue_wait_seconds histogram",
		"gcplus_epoch 1",
		"gcplus_live_graphs 25",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The acceptance invariant: the aggregate query counter equals every
	// shard's query-stage histogram count (each query touches each
	// shard exactly once, and histograms never reset).
	total := promValue(t, body, "gcplus_queries_total")
	if total != rounds {
		t.Fatalf("gcplus_queries_total = %v, want %d", total, rounds)
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if int64(total) != st.Queries {
		t.Fatalf("exposition total %v != Stats.Queries %d", total, st.Queries)
	}
	for i := 0; i < srv.Shards(); i++ {
		series := fmt.Sprintf(`gcplus_stage_duration_seconds_count{shard="%d",stage="query"}`, i)
		if got := promValue(t, body, series); got != total {
			t.Fatalf("%s = %v, want %v", series, got, total)
		}
		shardQ := fmt.Sprintf(`gcplus_shard_queries_total{shard="%d"}`, i)
		if got := promValue(t, body, shardQ); got != total {
			t.Fatalf("%s = %v, want %v", shardQ, got, total)
		}
	}
	// Stage histogram sums must be self-consistent: the verify stage is
	// part of the query stage, so its summed time cannot exceed it by
	// more than rounding.
	qSum := promValue(t, body, `gcplus_stage_duration_seconds_sum{shard="0",stage="query"}`)
	vSum := promValue(t, body, `gcplus_stage_duration_seconds_sum{shard="0",stage="verify"}`)
	if vSum > qSum+1e-6 {
		t.Fatalf("verify sum %v exceeds query sum %v", vSum, qSum)
	}
}

func TestHealthzReadyz(t *testing.T) {
	initial := genGraphs(t, 16, 3)
	srv, err := New(initial, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := getBody(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if status, body := getBody(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz status %d: %s", status, body)
	}

	srv.Close()
	if status, _ := getBody(t, ts.URL+"/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: status %d, want 503", status)
	}
	if status, _ := getBody(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close: status %d, want 503", status)
	}
}

// TestReadyzBacklog: with repair disabled but a repair queue configured,
// invalidated pairs accumulate with nothing draining them, and a
// negative threshold (= "any backlog is unready") must flip readiness.
func TestReadyzBacklog(t *testing.T) {
	initial := genGraphs(t, 16, 5)
	srv, err := New(initial, Options{
		Shards:                 2,
		Cache:                  &cache.Config{Capacity: 32, WindowSize: 2, RepairQueue: 64},
		DisableRepair:          true,
		EagerValidate:          true,
		ReadyMaxPendingRepairs: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := getBody(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("fresh server readyz status %d: %s", status, body)
	}

	// Populate the cache, then invalidate: edge updates clear validity
	// bits during eager validation and enqueue the pairs for repair —
	// which nothing drains.
	for _, q := range testQueries(initial) {
		if _, err := srv.SubgraphQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	ua := func(id, u, v int) changeplan.Op {
		return changeplan.Op{Type: dataset.OpUpdateAddEdge, GraphID: id, U: u, V: v}
	}
	ur := func(id, u, v int) changeplan.Op {
		return changeplan.Op{Type: dataset.OpUpdateRemoveEdge, GraphID: id, U: u, V: v}
	}
	var pending int
	for try := 0; try < 40 && pending == 0; try++ {
		for id := 0; id < len(initial); id++ {
			// One of the pair always applies, whichever way (0,1) starts.
			srv.Update([]changeplan.Op{ua(id, 0, 1)})
			srv.Update([]changeplan.Op{ur(id, 0, 1)})
		}
		st, err := srv.Stats()
		if err != nil {
			t.Fatal(err)
		}
		pending = st.PendingRepairs
	}
	if pending == 0 {
		t.Skip("workload produced no repair backlog; nothing to assert")
	}
	if status, body := getBody(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with backlog %d: status %d, want 503 (%s)", pending, status, body)
	}
}

func TestQueryTraceAndSlowLog(t *testing.T) {
	initial := genGraphs(t, 20, 7)
	srv, err := New(initial, Options{
		Shards:           2,
		SlowLogThreshold: time.Nanosecond, // capture everything
		SlowLogSize:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := testQueries(initial)
	q := queries[0]
	resp, err := http.Post(ts.URL+"/query?kind=sub&trace=1", "text/plain",
		strings.NewReader(codecOf(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	qr := decodeJSON[queryResponse](t, resp.Body)
	resp.Body.Close()
	if qr.Trace == nil {
		t.Fatal("trace requested but absent")
	}
	if len(qr.Trace.PerShard) != 2 {
		t.Fatalf("trace has %d shards, want 2", len(qr.Trace.PerShard))
	}
	for _, sp := range qr.Trace.PerShard {
		if sp.QueryMicros < 0 || sp.VerifyMicros < 0 {
			t.Fatalf("negative span: %+v", sp)
		}
	}
	if qr.Trace.WallMicros < qr.Trace.PerShard[0].QueryMicros {
		t.Fatalf("wall %dus below shard 0 query time %dus",
			qr.Trace.WallMicros, qr.Trace.PerShard[0].QueryMicros)
	}

	// Untraced query: no trace field.
	resp, err = http.Post(ts.URL+"/query?kind=sub", "text/plain",
		strings.NewReader(codecOf(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	qr = decodeJSON[queryResponse](t, resp.Body)
	resp.Body.Close()
	if qr.Trace != nil {
		t.Fatal("trace present without trace=1")
	}

	// Fill past the ring bound; retention is the newest SlowLogSize.
	for i := 0; i < 6; i++ {
		if _, err := srv.SubgraphQuery(queries[i%len(queries)]); err != nil {
			t.Fatal(err)
		}
	}
	type slowLogBody struct {
		ThresholdUS int64       `json:"threshold_us"`
		Captured    int64       `json:"captured"`
		Entries     []SlowQuery `json:"entries"`
	}
	resp, err = http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	slow := decodeJSON[slowLogBody](t, resp.Body)
	resp.Body.Close()
	if slow.Captured != 8 { // 2 HTTP + 6 direct
		t.Fatalf("captured = %d, want 8", slow.Captured)
	}
	if len(slow.Entries) != 4 {
		t.Fatalf("retained = %d, want ring size 4", len(slow.Entries))
	}
	for i, e := range slow.Entries {
		// Tracing is on by default and a slow query is anomalous, so
		// every entry links a retained trace instead of inlining the
		// stage payload.
		if e.TraceID == "" {
			t.Fatalf("entry %d links no retained trace: %+v", i, e)
		}
		if e.Trace != nil {
			t.Fatalf("entry %d inlines a trace despite linking %s", i, e.TraceID)
		}
		if status, body := getBody(t, ts.URL+"/debug/traces/"+e.TraceID); status != http.StatusOK {
			t.Fatalf("linked trace %s not fetchable: status %d (%s)", e.TraceID, status, body)
		}
		if !strings.HasPrefix(e.Query, "t ") {
			t.Fatalf("entry %d query text not in codec form: %q", i, e.Query)
		}
		if i > 0 && e.Time.After(slow.Entries[i-1].Time) {
			t.Fatalf("entries not newest-first at %d", i)
		}
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SlowQueries != 8 {
		t.Fatalf("Stats.SlowQueries = %d, want 8", st.SlowQueries)
	}
}

// TestObsUnderConcurrentLoad hammers queries, updates and observability
// endpoints concurrently (race detector coverage), then checks the
// final exposition is parseable and count-consistent.
func TestObsUnderConcurrentLoad(t *testing.T) {
	initial := genGraphs(t, 30, 13)
	srv, err := New(initial, Options{
		Shards:           2,
		SlowLogThreshold: time.Nanosecond,
		SlowLogSize:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := testQueries(initial)
	const queriers, perQuerier = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perQuerier; i++ {
				if _, err := srv.SubgraphQuery(queries[(w+i)%len(queries)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := srv.Update([]changeplan.Op{changeplan.AddOp(initial[i].Clone())}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			status, body := getBody(t, ts.URL+"/metrics")
			if status != http.StatusOK {
				t.Errorf("concurrent metrics status %d", status)
				return
			}
			checkExposition(t, body)
			if status, _ := getBody(t, ts.URL+"/debug/slowlog"); status != http.StatusOK {
				t.Errorf("concurrent slowlog status %d", status)
				return
			}
		}
	}()
	wg.Wait()

	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("final metrics status %d", status)
	}
	checkExposition(t, body)
	want := float64(queriers * perQuerier)
	if got := promValue(t, body, "gcplus_queries_total"); got != want {
		t.Fatalf("gcplus_queries_total = %v, want %v", got, want)
	}
	for i := 0; i < srv.Shards(); i++ {
		series := fmt.Sprintf(`gcplus_stage_duration_seconds_count{shard="%d",stage="query"}`, i)
		if got := promValue(t, body, series); got != want {
			t.Fatalf("%s = %v, want %v", series, got, want)
		}
	}
}
