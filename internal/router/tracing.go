package router

import (
	"errors"
	"strconv"
	"time"

	"gcplus/internal/core"
	"gcplus/internal/shardhost"
	"gcplus/internal/trace"
)

// Router-side distributed tracing. The router owns the trace: it opens
// the root span, times its own stages (admission, fan-out, merge for
// queries; admission, apply, WAL appends for updates), carries a
// trace.Context to every shard through the transport seam, and adopts
// the span subtrees the shards piggyback on their replies. Head
// sampling (Options.TraceSampleRate) decides which healthy requests
// build spans at all; tail retention keeps every anomalous trace —
// slow, error, shed, deadline-exceeded, degraded — even unsampled ones,
// whose shard subtrees are synthesized router-side from the same
// QueryStats every reply already carries.

// DefaultTraceSampleRate is the head-sampling rate when
// Options.TraceSampleRate is zero: one query in a hundred.
const DefaultTraceSampleRate = 0.01

// requestTrace accumulates one request's router-side trace state. All
// methods are nil-receiver safe so the serving path stays branch-light
// when tracing is disabled. A requestTrace exists for every request
// while tracing is enabled — sampled or not — because tail retention
// must be able to promote any request to a retained trace after the
// fact; only the store Add pays allocation beyond the struct itself.
type requestTrace struct {
	id      trace.ID
	sampled bool
	op      string // root span name: "query" or "update"
	kind    string // "sub"/"super" for queries, "" for updates
	start   time.Time
	rootID  trace.SpanID
	fanID   trace.SpanID
	// admitEnd is zero until admission succeeded; fanEnd zero until the
	// fan-out wait completed. Their zeroness encodes how far the request
	// got, which is what decides the span tree of an early exit.
	admitEnd time.Time
	fanEnd   time.Time
	rung     int
	rungName string
}

// beginTrace opens a request trace, or returns nil when tracing is off.
func (s *Server) beginTrace(op, kind string) *requestTrace {
	if s.traces == nil {
		return nil
	}
	return &requestTrace{
		id:      trace.NewTraceID(),
		sampled: s.sampler.Sample(),
		op:      op,
		kind:    kind,
		start:   s.now(),
		rootID:  trace.NewSpanID(),
		fanID:   trace.NewSpanID(),
	}
}

// context is the trace context shards parent their spans under.
func (t *requestTrace) context() trace.Context {
	if t == nil {
		return trace.Context{}
	}
	return trace.Context{TraceID: t.id, Parent: t.fanID, Sampled: t.sampled}
}

// wireContext is the context to propagate over the transport: only
// sampled traces cross the wire, so an unsampled request's frames stay
// byte-identical to tracing-off and the shards never build spans the
// router might discard.
func (t *requestTrace) wireContext() trace.Context {
	if t == nil || !t.sampled {
		return trace.Context{}
	}
	return t.context()
}

// exemplarID is the trace id to cite on histogram exemplars: only
// sampled traces, so every exemplar points at a trace whose shard spans
// were really collected.
func (t *requestTrace) exemplarID() uint64 {
	if t == nil || !t.sampled {
		return 0
	}
	return uint64(t.id)
}

// noteAdmitted marks the end of the admission stage and records the
// degradation rung the request was admitted under.
func (t *requestTrace) noteAdmitted(at time.Time, rung int, rungName string) {
	if t == nil {
		return
	}
	t.admitEnd = at
	t.rung = rung
	t.rungName = rungName
}

// noteFanoutDone marks the completion of the shard fan-out wait.
func (t *requestTrace) noteFanoutDone(at time.Time) {
	if t != nil {
		t.fanEnd = at
	}
}

// nanosBetween is b-a clamped at zero: clock-skew fault injection must
// never produce a negative span duration.
func nanosBetween(a, b time.Time) int64 {
	if d := b.Sub(a); d > 0 {
		return int64(d)
	}
	return 0
}

// capErr truncates an error message to a span-attribute-friendly size.
func capErr(err error) string {
	msg := err.Error()
	if len(msg) > 256 {
		msg = msg[:256]
	}
	return msg
}

// assemble builds the router span tree — root plus the stages the
// request reached — appends the per-shard subtrees straight off the
// replies (plus any extra spans the caller synthesized, e.g. WAL
// appends), and retains the trace when it is sampled or anomalous.
// The whole trace lands in one allocation: the slice is sized for the
// router stages plus every shard subtree up front, and shard spans are
// appended here rather than concatenated by the caller first. Returns
// whether the trace was retained. Only call with finished replies.
func (t *requestTrace) assemble(s *Server, end time.Time, anomaly, errMsg string, rootAttrs []trace.Attr, replies []shardhost.QueryReply, dispatch time.Time, extra []trace.Span) bool {
	if t == nil {
		return false
	}
	if !t.sampled && anomaly == trace.AnomalyNone {
		return false
	}
	startN := t.start.UnixNano()
	root := trace.Span{
		TraceID: t.id, ID: t.rootID, Name: t.op,
		StartNanos: startN, DurNanos: nanosBetween(t.start, end),
	}
	if t.kind != "" {
		root.SetAttr("kind", t.kind)
	}
	for _, a := range rootAttrs {
		root.SetAttr(a.Key, a.Value)
	}
	root.SetAttr("transport", s.transportKind)
	if t.rung > 0 {
		root.SetAttr("degraded", t.rungName)
	}
	if anomaly != trace.AnomalyNone {
		root.SetAttr("anomaly", anomaly)
	}
	if errMsg != "" {
		root.SetAttr("error", errMsg)
	}
	if !t.sampled {
		root.SetAttr("synthesized", "true")
	}

	capHint := 4 + len(extra)
	for i := range replies {
		if t.sampled && len(replies[i].Spans) > 0 {
			capHint += len(replies[i].Spans)
		} else {
			capHint += 6 // synthesized subtree: root + up to 5 stage spans
		}
	}
	spans := make([]trace.Span, 0, capHint)
	spans = append(spans, root)
	adm := trace.Span{
		TraceID: t.id, ID: trace.NewSpanID(), Parent: t.rootID,
		Name: "admission", StartNanos: startN,
	}
	if t.admitEnd.IsZero() {
		// Shed or expired inside admission: the whole request was the
		// admission stage.
		adm.DurNanos = root.DurNanos
		spans = append(spans, adm)
	} else {
		adm.DurNanos = nanosBetween(t.start, t.admitEnd)
		spans = append(spans, adm)
		fanEnd := t.fanEnd
		if fanEnd.IsZero() {
			fanEnd = end // fan-out abandoned at the deadline
		}
		fan := trace.Span{
			TraceID: t.id, ID: t.fanID, Parent: t.rootID,
			Name: "fanout", StartNanos: t.admitEnd.UnixNano(),
			DurNanos: nanosBetween(t.admitEnd, fanEnd),
		}
		fan.SetAttr("shards", strconv.Itoa(len(s.clients)))
		spans = append(spans, fan)
		if !t.fanEnd.IsZero() && t.op == "query" {
			spans = append(spans, trace.Span{
				TraceID: t.id, ID: trace.NewSpanID(), Parent: t.rootID,
				Name: "merge", StartNanos: t.fanEnd.UnixNano(),
				DurNanos: nanosBetween(t.fanEnd, end),
			})
		}
	}
	// Per-shard subtrees: the shards' own spans when the trace was
	// sampled, otherwise subtrees synthesized here from the reply stats —
	// structurally identical to what the shard would have built, because
	// both paths run the shardhost span builder over the same non-timing
	// stats fields. Synthesis appends straight into the trace's backing
	// array, so it leaves no intermediate garbage behind.
	tc := trace.Context{TraceID: t.id, Parent: t.fanID, Sampled: true}
	for i := range replies {
		r := &replies[i]
		if t.sampled && len(r.Spans) > 0 {
			spans = append(spans, r.Spans...)
			continue
		}
		spans = shardhost.AppendShardSpans(spans, tc, i, dispatch.UnixNano(),
			time.Duration(r.QueueNanos), &r.Stats, r.Err, s.cacheOn)
	}
	spans = append(spans, extra...)
	s.traces.Add(&trace.Trace{
		ID: t.id, StartNanos: startN, WallNanos: root.DurNanos,
		Anomaly: anomaly, Spans: spans,
	})
	return true
}

// finishShed retains the trace of a request fast-failed by admission
// control: root + admission only, always kept (tail retention).
func (t *requestTrace) finishShed(s *Server) {
	if t == nil {
		return
	}
	t.assemble(s, s.now(), trace.AnomalyShed, "", nil, nil, time.Time{}, nil)
}

// finishEarly retains the trace of a request that failed before any
// shard reply could be read (deadline during admission or during the
// fan-out wait): the shard subtrees are unknown, the router stages and
// the anomaly class are not.
func (t *requestTrace) finishEarly(s *Server, err error) {
	if t == nil {
		return
	}
	t.assemble(s, s.now(), anomalyOf(err), capErr(err), nil, nil, time.Time{}, nil)
}

// finishReplyErr retains the trace of a query whose shards all
// finished but at least one reported an error. Partial shard spans —
// root + queue — survive for every failed shard.
func (t *requestTrace) finishReplyErr(s *Server, err error, replies []shardhost.QueryReply, dispatch time.Time) {
	if t == nil {
		return
	}
	t.assemble(s, s.now(), anomalyOf(err), capErr(err), nil, replies, dispatch, nil)
}

// finishQuery classifies and retains a successful query's trace,
// stamping the result with the trace id when the trace was kept.
func (t *requestTrace) finishQuery(s *Server, out *QueryResult, replies []shardhost.QueryReply, dispatch, end time.Time) {
	if t == nil {
		return
	}
	anomaly := trace.AnomalyNone
	switch {
	case s.opts.SlowLogThreshold > 0 && out.Wall >= s.opts.SlowLogThreshold:
		anomaly = trace.AnomalySlow
	case t.rung > 0:
		anomaly = trace.AnomalyDegraded
	}
	if !t.sampled && anomaly == trace.AnomalyNone {
		return
	}
	if t.assemble(s, end, anomaly, "", nil, replies, dispatch, nil) {
		out.TraceID = t.id
	}
}

// finishUpdate retains a successful (or durability-degraded) update
// batch's trace: root + admission + apply + one wal_append child per
// shard, with the host-measured append latency off the reply frames.
func (t *requestTrace) finishUpdate(s *Server, end time.Time, epoch uint64, applied int, walReplies []*shardhost.WALAppendReply, walErr error) {
	if t == nil {
		return
	}
	anomaly := trace.AnomalyNone
	errMsg := ""
	if walErr != nil {
		anomaly = trace.AnomalyError
		errMsg = capErr(walErr)
	}
	if !t.sampled && anomaly == trace.AnomalyNone {
		return
	}
	var spans []trace.Span
	for i, r := range walReplies {
		if r == nil {
			continue
		}
		sp := trace.Span{
			TraceID: t.id, ID: trace.NewSpanID(), Parent: t.fanID,
			Name: "wal_append", StartNanos: t.admitEnd.UnixNano(),
			DurNanos: r.Nanos,
		}
		sp.SetAttr("shard", strconv.Itoa(i))
		if r.Err != nil {
			sp.SetAttr("error", capErr(r.Err))
		}
		spans = append(spans, sp)
	}
	t.fanEnd = end
	t.assemble(s, end, anomaly, errMsg, []trace.Attr{
		{Key: "epoch", Value: strconv.FormatUint(epoch, 10)},
		{Key: "applied", Value: strconv.Itoa(applied)},
	}, nil, time.Time{}, spans)
}

// anomalyOf maps a request error to its trace anomaly class.
func anomalyOf(err error) string {
	var ce *core.CancelError
	if errors.As(err, &ce) {
		return trace.AnomalyDeadline
	}
	return trace.AnomalyError
}
