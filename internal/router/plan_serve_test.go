package router

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

// TestQueryLimitExactPrefix pins the serving layer's streaming contract:
// for any limit, SubgraphQueryLimitCtx returns exactly the min(limit, n)
// smallest ids of the full n-id answer, with Truncated set whenever ids
// were withheld — across shard merge, planner on.
func TestQueryLimitExactPrefix(t *testing.T) {
	initial := genGraphs(t, 60, 29)
	srv, err := New(initial, Options{
		Shards:        3,
		Method:        "VF2",
		EnablePlanner: true,
		Cache:         &cache.Config{Capacity: 30, WindowSize: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mirror := dataset.New(initial)
	gt := groundTruth(t, mirror)
	ctx := context.Background()

	queries := testQueries(initial)
	if len(queries) == 0 {
		t.Fatal("no test queries generated")
	}
	sawTruncated := false
	for qi, q := range queries {
		want, err := gt.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		full := want.AnswerIDs()
		for _, limit := range []int{1, 2, len(full) / 2, len(full), len(full) + 5} {
			if limit <= 0 {
				continue
			}
			res, err := srv.SubgraphQueryLimitCtx(ctx, q, limit)
			if err != nil {
				t.Fatal(err)
			}
			n := limit
			if n > len(full) {
				n = len(full)
			}
			if !equalIDs(res.IDs, full[:n]) {
				t.Fatalf("query %d limit %d: got %v, want prefix %v", qi, limit, res.IDs, full[:n])
			}
			if limit < len(full) && !res.Truncated {
				t.Fatalf("query %d limit %d < %d answers: Truncated not set", qi, limit, len(full))
			}
			if limit > len(full) && res.Truncated {
				t.Fatalf("query %d limit %d > %d answers: spurious Truncated", qi, limit, len(full))
			}
			sawTruncated = sawTruncated || res.Truncated
		}
		// The unlimited path must be unaffected by interleaved streaming.
		res, err := srv.SubgraphQueryCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(res.IDs, full) {
			t.Fatalf("query %d: full answer %v != ground truth %v", qi, res.IDs, full)
		}
	}
	if !sawTruncated {
		t.Fatal("fixture never produced a truncated answer; contract not exercised")
	}

	// The repeated query stream above must have hit the plan cache, and
	// the counters must surface through Stats.
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits == 0 {
		t.Fatalf("PlanCacheHits = 0 after repeated queries (misses=%d)", st.PlanCacheMisses)
	}
}

// TestHTTPQueryLimit drives ?limit=N through the HTTP surface: the
// truncated field and the plan-cache counter in /metrics.
func TestHTTPQueryLimit(t *testing.T) {
	initial := genGraphs(t, 40, 31)
	srv, err := New(initial, Options{Shards: 2, Method: "VF2", EnablePlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mirror := dataset.New(initial)
	gt := groundTruth(t, mirror)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var q *graph.Graph
	for _, cand := range testQueries(initial) {
		want, err := gt.SubgraphQuery(cand)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.AnswerIDs()) >= 3 {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no query with >= 3 answers")
	}
	want, err := gt.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	full := want.AnswerIDs()

	resp, err := http.Post(ts.URL+"/query?kind=sub&limit=2", "text/plain", strings.NewReader(codecOf(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("limited query status %d: %s", resp.StatusCode, body)
	}
	qr := decodeJSON[queryResponse](t, resp.Body)
	resp.Body.Close()
	if !equalIDs(qr.IDs, full[:2]) || !qr.Truncated {
		t.Fatalf("limit=2: ids=%v truncated=%v, want %v truncated", qr.IDs, qr.Truncated, full[:2])
	}

	// Malformed limits are client errors, not servework.
	for _, bad := range []string{"0", "-3", "x"} {
		resp, err := http.Post(ts.URL+"/query?kind=sub&limit="+bad, "text/plain", strings.NewReader(codecOf(t, q)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=%q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Repeat the query so the plan cache hits, then look for the counter
	// in the Prometheus exposition.
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/query?kind=sub", "text/plain", strings.NewReader(codecOf(t, q)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "gcplus_plan_cache_hits_total") {
		t.Fatal("exposition missing gcplus_plan_cache_hits_total")
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "gcplus_plan_cache_hits_total ") {
			if strings.TrimSpace(strings.TrimPrefix(line, "gcplus_plan_cache_hits_total")) == "0" {
				t.Fatalf("plan cache hits stayed 0 after repeats: %q", line)
			}
		}
	}
}
