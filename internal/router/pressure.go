package router

import (
	"sync/atomic"
	"time"

	"gcplus/internal/shardhost"
)

// The pressure controller implements graceful degradation: when the
// server is overloaded it sheds *work quality* stepwise instead of
// falling over, and steps back up when the pressure clears. Every
// degraded answer is still exact — the ladder only trades cache
// effectiveness and verification parallelism for responsiveness.
//
// Signals (all lock-free reads of state the shards already publish):
//
//   - queue depth: the deepest shard job queue, relative to its bound.
//     A deep queue means owner goroutines cannot keep up and queue wait
//     is about to dominate latency.
//   - repair backlog: invalidated (entry, graph) pairs awaiting repair,
//     summed over shards. A growing backlog means update churn is
//     outpacing repair and the cache's pruning power is bleeding away —
//     queries pay ever more verification for ever fewer skips.
//
// Ladder:
//
//	level 0 (none)          — normal serving.
//	level 1 (capped-verify) — per-query verification parallelism capped
//	                          at 1, freeing cores for throughput over
//	                          single-query latency.
//	level 2 (cache-bypass)  — queries skip the cache entirely (pure
//	                          Method M): no hit discovery, no admission,
//	                          no repair traffic. Sound by construction,
//	                          so answers remain exact while the repair
//	                          pipeline drains.
//
// Escalation is immediate; de-escalation requires pressureDwell
// consecutive calm evaluations below the (lower) exit thresholds, so
// the controller cannot flap on a sawtooth load.

// DegradeLevel is a rung on the degradation ladder.
type DegradeLevel int32

const (
	DegradeNone         DegradeLevel = 0
	DegradeCappedVerify DegradeLevel = 1
	DegradeCacheBypass  DegradeLevel = 2
)

func (l DegradeLevel) String() string {
	switch l {
	case DegradeNone:
		return "none"
	case DegradeCappedVerify:
		return "capped-verify"
	case DegradeCacheBypass:
		return "cache-bypass"
	default:
		return "unknown"
	}
}

const (
	// pressureInterval is how often the controller re-evaluates.
	defaultPressureInterval = 50 * time.Millisecond
	// pressureDwell is how many consecutive calm evaluations must pass
	// before stepping down one level.
	pressureDwell = 4
)

// pressureSignals is one evaluation's view of the load.
type pressureSignals struct {
	MaxQueueDepth  int // deepest shard job queue
	PendingRepairs int // repair backlog summed over shards
}

type pressure struct {
	s *Server

	level       atomic.Int32 // DegradeLevel, read on every query
	activeSince atomic.Int64 // unix nanos when level left 0; 0 = not degraded
	degradedNS  atomic.Int64 // accumulated nanos of completed degraded periods
	transitions atomic.Int64

	// Entry thresholds (exit thresholds are derived fractions).
	queueHigh, queueCrit   int
	repairHigh, repairCrit int

	// ticker-goroutine state
	calm    int
	started bool
	quit    chan struct{}
	done    chan struct{}
}

func newPressure(s *Server) *pressure {
	p := &pressure{
		s:         s,
		queueHigh: shardhost.JobQueueDepth / 2,
		queueCrit: shardhost.JobQueueDepth * 7 / 8,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	// Repair thresholds scale with the configured per-shard repair
	// queue; when repair is disabled the backlog signal is always 0.
	bound := 0
	if s.opts.Cache != nil {
		bound = s.opts.Cache.RepairQueue
	}
	p.repairHigh = len(s.hosts) * bound / 2
	p.repairCrit = len(s.hosts) * bound * 7 / 8
	if p.repairHigh < 1 {
		p.repairHigh = 1
	}
	if p.repairCrit <= p.repairHigh {
		p.repairCrit = p.repairHigh + 1
	}
	return p
}

func (p *pressure) start(interval time.Duration) {
	p.started = true
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.quit:
				return
			case <-t.C:
				p.evaluate(time.Now())
			}
		}
	}()
}

func (p *pressure) stop() {
	if p.started {
		close(p.quit)
		<-p.done
	}
	// Close out an active degraded period so DegradedSeconds is final.
	p.settle(time.Now())
}

// Level is the rung queries consult; lock-free.
func (p *pressure) Level() DegradeLevel { return DegradeLevel(p.level.Load()) }

// degradedSeconds is total wall time spent at level > 0.
func (p *pressure) degradedSeconds(now time.Time) float64 {
	ns := p.degradedNS.Load()
	if since := p.activeSince.Load(); since != 0 {
		if d := now.UnixNano() - since; d > 0 {
			ns += d
		}
	}
	return time.Duration(ns).Seconds()
}

// sample gathers the current signals through the transport clients'
// Signals method: lock-free host reads for the local transport, the
// last reply frame's piggybacked sample for loopback — the controller
// never pays a round trip.
func (p *pressure) sample() pressureSignals {
	var sig pressureSignals
	for _, c := range p.s.clients {
		s := c.Signals()
		if s.QueueLen > sig.MaxQueueDepth {
			sig.MaxQueueDepth = s.QueueLen
		}
		sig.PendingRepairs += int(s.PendingRepairs)
	}
	return sig
}

// evaluate runs one controller step: escalate immediately to the level
// the signals demand, de-escalate one rung after pressureDwell calm
// steps. Called from the ticker goroutine (and directly from tests —
// with the ticker disabled via Options.pressureInterval < 0).
func (p *pressure) evaluate(now time.Time) {
	sig := p.sample()
	cur := p.Level()
	want := cur
	switch {
	case sig.MaxQueueDepth >= p.queueCrit || sig.PendingRepairs >= p.repairCrit:
		want = DegradeCacheBypass
	case sig.MaxQueueDepth >= p.queueHigh || sig.PendingRepairs >= p.repairHigh:
		if want < DegradeCappedVerify {
			want = DegradeCappedVerify
		}
	}
	if want > cur {
		p.setLevel(cur, want, now, sig)
		p.calm = 0
		return
	}
	// De-escalation: calm means comfortably below the *entry*
	// thresholds (hysteresis), sustained for pressureDwell steps.
	if cur > DegradeNone &&
		sig.MaxQueueDepth < p.queueHigh/4 &&
		sig.PendingRepairs < p.repairHigh/2 {
		p.calm++
		if p.calm >= pressureDwell {
			p.setLevel(cur, cur-1, now, sig)
			p.calm = 0
		}
	} else {
		p.calm = 0
	}
}

// setLevel applies a transition and keeps the degraded-time books.
func (p *pressure) setLevel(from, to DegradeLevel, now time.Time, sig pressureSignals) {
	p.level.Store(int32(to))
	p.transitions.Add(1)
	if from == DegradeNone && to > DegradeNone {
		p.activeSince.Store(now.UnixNano())
	} else if from > DegradeNone && to == DegradeNone {
		p.settle(now)
	}
	p.s.log.Warn("degradation level changed",
		"from", from.String(), "to", to.String(),
		"max_queue_depth", sig.MaxQueueDepth, "pending_repairs", sig.PendingRepairs)
}

// settle folds an active degraded period into the accumulator.
func (p *pressure) settle(now time.Time) {
	if since := p.activeSince.Swap(0); since != 0 {
		if d := now.UnixNano() - since; d > 0 {
			p.degradedNS.Add(d)
		}
	}
}
