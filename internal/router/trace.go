package router

import (
	"strings"
	"sync"
	"time"

	"gcplus/internal/core"
	"gcplus/internal/graph"
)

// ShardTrace is one shard's stage breakdown of a query — the per-shard
// core.QueryStats in wire form (microseconds), the unit of both the
// inline ?trace=1 response and the slow-query log.
type ShardTrace struct {
	Shard int `json:"shard"`
	// Stage durations in microseconds. Query is the shard's end-to-end
	// processing time minus cache maintenance; Overhead the maintenance;
	// Consistency the log-analysis/validation share of Overhead.
	QueryMicros       int64 `json:"query_us"`
	HitMicros         int64 `json:"hit_us"`
	VerifyMicros      int64 `json:"verify_us"`
	VerifyCPUMicros   int64 `json:"verify_cpu_us"`
	OverheadMicros    int64 `json:"overhead_us"`
	ConsistencyMicros int64 `json:"consistency_us"`
	PlanMicros        int64 `json:"plan_us"`
	// TransportMicros is the transport overhead of this shard's dispatch:
	// the router-observed round trip minus the host-measured service
	// time. Near zero for the local transport; framing + TCP for
	// loopback.
	TransportMicros int64 `json:"transport_us"`
	// QueueMicros is the time this shard's job spent enqueued behind the
	// owner goroutine before it started — head-of-line wait, the part of
	// the round trip neither the stage times nor transport overhead
	// explain.
	QueueMicros int64 `json:"queue_us"`
	// Work counters explaining where the time went.
	SubIsoTests   int  `json:"subiso_tests"`
	TestsSaved    int  `json:"tests_saved"`
	HitCandidates int  `json:"hit_candidates"`
	ExactHit      bool `json:"exact_hit,omitempty"`
	EmptyShortcut bool `json:"empty_shortcut,omitempty"`
	// Planner outcome for this shard's execution (planner-enabled
	// servers only): the chosen Method M algorithm, whether the compiled
	// plan came from the plan cache, and whether streaming stopped
	// verification early.
	PlanAlgo   string `json:"plan_algo,omitempty"`
	PlanCached bool   `json:"plan_cached,omitempty"`
	Truncated  bool   `json:"truncated,omitempty"`
}

// QueryTrace is a query's full execution trace: the front-end wall time
// plus one ShardTrace per shard. The slowest shard bounds the wall time;
// the gap between them is fan-out/merge and queue wait. TraceID links
// the distributed trace retained for this query (fetch the span tree at
// GET /debug/traces/{id}); empty when the query was neither sampled nor
// anomalous.
type QueryTrace struct {
	TraceID    string       `json:"trace_id,omitempty"`
	WallMicros int64        `json:"wall_us"`
	PerShard   []ShardTrace `json:"per_shard"`
}

func shardTrace(i int, st core.QueryStats, transport, queue time.Duration) ShardTrace {
	return ShardTrace{
		Shard:             i,
		TransportMicros:   transport.Microseconds(),
		QueueMicros:       queue.Microseconds(),
		QueryMicros:       st.QueryTime.Microseconds(),
		HitMicros:         st.HitTime.Microseconds(),
		VerifyMicros:      st.VerifyTime.Microseconds(),
		VerifyCPUMicros:   st.VerifyCPUTime.Microseconds(),
		OverheadMicros:    st.Overhead.Microseconds(),
		ConsistencyMicros: st.ConsistencyTime.Microseconds(),
		PlanMicros:        st.PlanTime.Microseconds(),
		SubIsoTests:       st.SubIsoTests,
		TestsSaved:        st.TestsSaved,
		HitCandidates:     st.HitCandidates,
		ExactHit:          st.ExactHit,
		EmptyShortcut:     st.EmptyShortcut,
		PlanAlgo:          st.PlanAlgorithm,
		PlanCached:        st.PlanCached,
		Truncated:         st.Truncated,
	}
}

// Trace builds the execution trace of a finished query result.
func (res *QueryResult) Trace() *QueryTrace {
	t := &QueryTrace{
		WallMicros: res.Wall.Microseconds(),
		PerShard:   make([]ShardTrace, len(res.PerShard)),
	}
	if res.TraceID != 0 {
		t.TraceID = res.TraceID.String()
	}
	for i, st := range res.PerShard {
		var tr, qw time.Duration
		if i < len(res.Transport) {
			tr = res.Transport[i]
		}
		if i < len(res.Queue) {
			qw = res.Queue[i]
		}
		t.PerShard[i] = shardTrace(i, st, tr, qw)
	}
	return t
}

// DefaultSlowLogSize bounds the slow-query ring when
// Options.SlowLogSize is unset.
const DefaultSlowLogSize = 128

// slowQueryTextLimit truncates captured query texts: queries are small
// by nature, but the log must stay bounded even against a pathological
// near-1MiB upload.
const slowQueryTextLimit = 4096

// SlowQuery is one captured slow query.
type SlowQuery struct {
	// Time is the wall-clock completion time.
	Time time.Time `json:"time"`
	// Kind is "sub" or "super"; Epoch the dataset version answered at.
	Kind  string `json:"kind"`
	Epoch uint64 `json:"epoch"`
	// Query is the query graph in the text codec (truncated at 4KiB).
	Query string `json:"query"`
	// Results is the answer-set size.
	Results     int   `json:"results"`
	SubIsoTests int   `json:"subiso_tests"`
	WallMicros  int64 `json:"wall_us"`
	// TraceID links the distributed trace retained for this query —
	// slow queries are anomalous, so tail retention keeps their traces
	// whenever tracing is enabled. Fetch the full span tree at
	// GET /debug/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the inline per-shard stage breakdown, captured only when
	// no retained trace exists to link (tracing disabled): the retained
	// trace already carries every stage duration as spans, so inlining
	// it too would duplicate the payload in the ring.
	Trace *QueryTrace `json:"trace,omitempty"`
}

// slowLog is a bounded ring of the slowest-path evidence: queries whose
// wall time crossed Options.SlowLogThreshold, newest overwriting oldest.
type slowLog struct {
	mu    sync.Mutex
	buf   []SlowQuery
	next  int   // ring write position
	total int64 // lifetime captures (≥ len of retained entries)
}

func newSlowLog(size int) *slowLog {
	return &slowLog{buf: make([]SlowQuery, 0, size)}
}

// record captures one slow query. The query text is rendered here, on
// the already-slow path — the fast path never pays for it.
func (l *slowLog) record(q *graph.Graph, res *QueryResult) {
	var b strings.Builder
	_ = graph.Write(&b, []*graph.Graph{q})
	text := b.String()
	if len(text) > slowQueryTextLimit {
		text = text[:slowQueryTextLimit] + "…(truncated)"
	}
	entry := SlowQuery{
		Time:        time.Now(),
		Kind:        res.Kind,
		Epoch:       res.Epoch,
		Query:       text,
		Results:     len(res.IDs),
		SubIsoTests: res.SubIsoTests,
		WallMicros:  res.Wall.Microseconds(),
	}
	if res.TraceID != 0 {
		entry.TraceID = res.TraceID.String()
	} else {
		entry.Trace = res.Trace()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, entry)
		return
	}
	if cap(l.buf) == 0 {
		return
	}
	l.buf[l.next] = entry
	l.next = (l.next + 1) % cap(l.buf)
}

// snapshot returns the retained entries, newest first.
func (l *slowLog) snapshot() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.buf))
	// The ring's chronological order is buf[next:] then buf[:next] when
	// full, plain append order while filling; walk it backwards.
	for i := len(l.buf) - 1; i >= 0; i-- {
		out = append(out, l.buf[(l.next+i)%len(l.buf)])
	}
	return out
}

func (l *slowLog) captured() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SlowQueries returns the retained slow-query log entries, newest
// first. Empty when Options.SlowLogThreshold is unset.
func (s *Server) SlowQueries() []SlowQuery { return s.slow.snapshot() }
