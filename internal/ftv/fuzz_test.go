package ftv

import (
	"strconv"
	"strings"
	"testing"

	"gcplus/internal/graph"
)

// fuzzGraph decodes arbitrary bytes into a small labelled graph:
// byte 0 picks the vertex count, the next n bytes pick labels, and the
// remaining byte pairs propose edges (self loops and duplicates are
// skipped so Build always succeeds).
func fuzzGraph(data []byte) *graph.Graph {
	if len(data) == 0 {
		return graph.NewBuilder().MustBuild()
	}
	n := int(data[0])%7 + 1
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		lbl := graph.Label(0)
		if 1+i < len(data) {
			lbl = graph.Label(data[1+i] % 5)
		}
		b.AddVertex(lbl)
	}
	seen := map[[2]int]bool{}
	for i := 1 + n; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// FuzzPathSignatures checks the FTV index's canonical path signatures
// on arbitrary graphs: the enumeration must be deterministic, sorted
// and duplicate-free; every signature must be the lexicographically
// smaller reading direction of its path; every vertex label must appear
// as a length-0 path; and raising maxLen must only ever add signatures.
func FuzzPathSignatures(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 3, 0, 1, 1, 2, 0, 2})
	f.Add([]byte{6, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add([]byte{1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		var prev []string
		for maxLen := 0; maxLen <= 3; maxLen++ {
			sigs := PathSignatures(g, maxLen)
			if again := PathSignatures(g, maxLen); !equalStrings(sigs, again) {
				t.Fatalf("maxLen=%d: non-deterministic signatures", maxLen)
			}
			set := make(map[string]bool, len(sigs))
			for i, s := range sigs {
				if i > 0 && sigs[i-1] >= s {
					t.Fatalf("maxLen=%d: signatures not strictly sorted at %d: %q ≥ %q",
						maxLen, i, sigs[i-1], s)
				}
				set[s] = true
				if rev := reverseSignature(t, s); rev < s {
					t.Fatalf("maxLen=%d: %q is not canonical (reversal %q is smaller)", maxLen, s, rev)
				}
			}
			for v := 0; v < g.NumVertices(); v++ {
				if l := strconv.FormatUint(uint64(g.Label(v)), 10); !set[l] {
					t.Fatalf("maxLen=%d: vertex label signature %q missing", maxLen, l)
				}
			}
			for _, s := range prev {
				if !set[s] {
					t.Fatalf("maxLen=%d dropped signature %q present at maxLen=%d", maxLen, s, maxLen-1)
				}
			}
			prev = sigs
		}
	})
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func reverseSignature(t *testing.T, sig string) string {
	t.Helper()
	parts := strings.Split(sig, "-")
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "-")
}
