package ftv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

func TestPathSignaturesSmall(t *testing.T) {
	// path 1-2-3: paths of length ≤2:
	// singles {1,2,3}; edges {1-2, 2-3}; one 2-path 1-2-3.
	g := graph.Path(1, 2, 3)
	sigs := PathSignatures(g, 2)
	want := map[string]bool{
		"1": true, "2": true, "3": true,
		"1-2": true, "2-3": true,
		"1-2-3": true,
	}
	if len(sigs) != len(want) {
		t.Fatalf("signatures = %v", sigs)
	}
	for _, s := range sigs {
		if !want[s] {
			t.Fatalf("unexpected signature %q in %v", s, sigs)
		}
	}
}

func TestPathSignaturesCanonical(t *testing.T) {
	// 2-1 must canonicalize to 1-2 regardless of direction of traversal
	g := graph.Path(2, 1)
	sigs := PathSignatures(g, 1)
	for _, s := range sigs {
		if s == "2-1" {
			t.Fatal("non-canonical signature emitted")
		}
	}
}

func TestIndexBasics(t *testing.T) {
	ix := New(0)
	if ix.MaxLen() != DefaultMaxLen {
		t.Fatalf("MaxLen = %d", ix.MaxLen())
	}
	if err := ix.Add(-1, graph.Path(1)); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := ix.Add(0, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if err := ix.Add(0, graph.Path(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, graph.Path(1, 2)); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 2 || ix.Features() == 0 {
		t.Fatalf("Size=%d Features=%d", ix.Size(), ix.Features())
	}

	cands := ix.Candidates(graph.Path(2, 3))
	if got := cands.String(); got != "{0}" {
		t.Fatalf("Candidates(2-3) = %s", got)
	}
	cands = ix.Candidates(graph.Path(1, 2))
	if got := cands.String(); got != "{0, 1}" {
		t.Fatalf("Candidates(1-2) = %s", got)
	}
	cands = ix.Candidates(graph.Path(9))
	if cands.Any() {
		t.Fatalf("Candidates(9) = %s", cands)
	}
}

func TestIndexRemove(t *testing.T) {
	ix := New(2)
	if err := ix.Add(0, graph.Path(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	feats := ix.Features()
	ix.Remove(0)
	if ix.Size() != 0 || ix.Features() != 0 {
		t.Fatalf("after remove: Size=%d Features=%d (was %d)", ix.Size(), ix.Features(), feats)
	}
	ix.Remove(0) // idempotent
	if ix.Candidates(graph.Path(1, 2)).Any() {
		t.Fatal("removed graph still a candidate")
	}
}

func TestIndexUpdateReindexes(t *testing.T) {
	ix := New(2)
	g := graph.Path(1, 2, 3)
	if err := ix.Add(0, g); err != nil {
		t.Fatal(err)
	}
	// UR: drop edge 1-2 (vertices 0-1); the path 1-2-3 disappears
	g2, err := g.WithoutEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Update(0, g2); err != nil {
		t.Fatal(err)
	}
	if ix.Candidates(graph.Path(1, 2)).Any() {
		t.Fatal("stale posting for removed edge")
	}
	if !ix.Candidates(graph.Path(2, 3)).Get(0) {
		t.Fatal("surviving path lost on update")
	}
}

func TestEmptyQueryMatchesEverything(t *testing.T) {
	ix := New(2)
	if err := ix.Add(3, graph.Path(1, 2)); err != nil {
		t.Fatal(err)
	}
	empty := graph.NewBuilder().MustBuild()
	if got := ix.Candidates(empty).String(); got != "{3}" {
		t.Fatalf("empty-query candidates = %s", got)
	}
}

// TestQuickNoFalseNegatives is the FTV soundness property: the candidate
// set must contain every true answer.
func TestQuickNoFalseNegatives(t *testing.T) {
	oracle := subiso.Brute{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New(3)
		graphs := make([]*graph.Graph, 6)
		for i := range graphs {
			graphs[i] = testutil.RandomGraph(rng, 10, 3, 0.3)
			if err := ix.Add(i, graphs[i]); err != nil {
				return false
			}
		}
		q := testutil.BFSExtract(rng, graphs[rng.Intn(len(graphs))], 0, 1+rng.Intn(5))
		cands := ix.Candidates(q)
		for i, g := range graphs {
			if oracle.Contains(q, g) && !cands.Get(i) {
				t.Logf("false negative: graph %d for seed %d", i, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdateConsistency: after random UA/UR + Update, the index
// behaves as if built fresh.
func TestQuickUpdateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomConnectedGraph(rng, 8, 3, 0.3)
		ix := New(3)
		if err := ix.Add(0, g); err != nil {
			return false
		}
		// random edge flip
		for tries := 0; tries < 16; tries++ {
			u, v := rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())
			if u == v {
				continue
			}
			var g2 *graph.Graph
			var err error
			if g.HasEdge(u, v) {
				g2, err = g.WithoutEdge(u, v)
			} else {
				g2, err = g.WithEdge(u, v)
			}
			if err != nil {
				continue
			}
			g = g2
			break
		}
		if err := ix.Update(0, g); err != nil {
			return false
		}
		fresh := New(3)
		if err := fresh.Add(0, g); err != nil {
			return false
		}
		if ix.Features() != fresh.Features() {
			return false
		}
		// candidate behaviour identical on a probe query
		q := testutil.BFSExtract(rng, g, 0, 3)
		return ix.Candidates(q).Equal(fresh.Candidates(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFilterSelectivity: on AIDS-like graphs the filter should prune a
// solid share of non-answers for mid-size queries.
func TestFilterSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix := New(3)
	graphs := make([]*graph.Graph, 40)
	for i := range graphs {
		graphs[i] = testutil.RandomConnectedGraph(rng, 20, 6, 0.1)
		if err := ix.Add(i, graphs[i]); err != nil {
			t.Fatal(err)
		}
	}
	algo := subiso.VF2Plus{}
	totalCand, totalTrue, totalAll := 0, 0, 0
	for k := 0; k < 30; k++ {
		q := testutil.BFSExtract(rng, graphs[rng.Intn(len(graphs))], rng.Intn(5), 8)
		cands := ix.Candidates(q)
		totalCand += cands.Count()
		totalAll += len(graphs)
		for i, g := range graphs {
			has := algo.Contains(q, g)
			if has {
				totalTrue++
				if !cands.Get(i) {
					t.Fatal("false negative")
				}
			}
		}
	}
	if totalCand >= totalAll {
		t.Fatalf("filter pruned nothing: %d candidates of %d", totalCand, totalAll)
	}
	if totalCand < totalTrue {
		t.Fatalf("impossible: fewer candidates (%d) than answers (%d)", totalCand, totalTrue)
	}
	t.Logf("filter: %d candidates for %d true answers out of %d pairs", totalCand, totalTrue, totalAll)
}
