// Package ftv implements a filter-then-verify (FTV) subgraph-query
// method: a path-based dataset index in the spirit of GraphGrep/gIndex
// that produces candidate sets much smaller than the whole dataset, which
// a sub-iso verifier then confirms.
//
// The paper's §1 motivates GC+ with exactly this class of systems: FTV
// indexes prune well on *static* datasets, but "none of the proposed FTV
// algorithms so far has updatable index or similar solutions to tackle
// dataset changes" — forcing evaluators back to raw SI methods when the
// dataset evolves. This package plays both roles in the reproduction:
//
//   - as a third kind of Method M whose candidate set is index-derived
//     rather than the whole dataset (usable on static snapshots), and
//   - as the motivating contrast: the index supports incremental updates
//     only through full per-graph re-indexing (Update/Remove), whose cost
//     the ablation benches quantify against GC+'s validity bookkeeping.
//
// The index maps every labelled path of length ≤ MaxLen (vertex-label
// sequences along simple paths, canonicalized to their lexicographically
// smaller direction) to the set of dataset graphs containing it. A query
// graph's paths are extracted the same way; the candidate set is the
// intersection of their posting sets. Path containment is a necessary
// condition for subgraph isomorphism, so the filter never drops a true
// answer (no false negatives); the verifier removes false positives.
package ftv

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"

	"gcplus/internal/bitset"
	"gcplus/internal/graph"
)

// DefaultMaxLen is the default maximum indexed path length (in edges).
// Length 3 is the classic sweet spot: selective enough to prune, small
// enough to enumerate everywhere.
const DefaultMaxLen = 3

// Index is a path-based FTV index over a set of graphs. It is not safe
// for concurrent mutation.
type Index struct {
	maxLen int
	// postings maps a canonical path signature to the graph ids
	// containing that path.
	postings map[string]*bitset.Set
	// indexed tracks which ids are present (for re-index and stats).
	indexed *bitset.Set
	// paths remembers each graph's signatures so Remove can clean up.
	paths map[int][]string
}

// New creates an empty index for paths of length ≤ maxLen edges
// (DefaultMaxLen if maxLen ≤ 0).
func New(maxLen int) *Index {
	if maxLen <= 0 {
		maxLen = DefaultMaxLen
	}
	return &Index{
		maxLen:   maxLen,
		postings: make(map[string]*bitset.Set),
		indexed:  bitset.New(0),
		paths:    make(map[int][]string),
	}
}

// MaxLen returns the maximum indexed path length.
func (ix *Index) MaxLen() int { return ix.maxLen }

// Size returns the number of indexed graphs.
func (ix *Index) Size() int { return ix.indexed.Count() }

// Features returns the number of distinct path signatures.
func (ix *Index) Features() int { return len(ix.postings) }

// Add indexes graph g under the given id. Re-adding an id first removes
// the stale postings (the "full per-graph re-index" an FTV system must
// pay on every UA/UR).
func (ix *Index) Add(id int, g *graph.Graph) error {
	if id < 0 {
		return fmt.Errorf("ftv: negative graph id %d", id)
	}
	if g == nil {
		return fmt.Errorf("ftv: nil graph for id %d", id)
	}
	if ix.indexed.Get(id) {
		ix.Remove(id)
	}
	sigs := PathSignatures(g, ix.maxLen)
	ix.paths[id] = sigs
	for _, s := range sigs {
		p, ok := ix.postings[s]
		if !ok {
			p = bitset.New(0)
			ix.postings[s] = p
		}
		p.Set(id)
	}
	ix.indexed.Set(id)
	return nil
}

// Remove deletes graph id from the index.
func (ix *Index) Remove(id int) {
	if !ix.indexed.Get(id) {
		return
	}
	for _, s := range ix.paths[id] {
		if p := ix.postings[s]; p != nil {
			p.Clear(id)
			if p.None() {
				delete(ix.postings, s)
			}
		}
	}
	delete(ix.paths, id)
	ix.indexed.Clear(id)
}

// Update re-indexes graph id after an edge update — the expensive
// operation the paper contrasts with GC+'s O(changed-bits) validation.
func (ix *Index) Update(id int, g *graph.Graph) error { return ix.Add(id, g) }

// Candidates returns the ids of indexed graphs that contain every path of
// q — a superset of the true answer set of the subgraph query q. The
// result is freshly allocated.
func (ix *Index) Candidates(q *graph.Graph) *bitset.Set {
	sigs := PathSignatures(q, ix.maxLen)
	if len(sigs) == 0 {
		// no structure to filter on: every indexed graph is a candidate
		return ix.indexed.Clone()
	}
	// rarest-first intersection finishes early
	sort.Slice(sigs, func(i, j int) bool {
		return postingLen(ix.postings[sigs[i]]) < postingLen(ix.postings[sigs[j]])
	})
	out := bitset.New(0)
	first, ok := ix.postings[sigs[0]]
	if !ok {
		return out // some query path exists in no graph
	}
	out.Or(first)
	for _, s := range sigs[1:] {
		p, ok := ix.postings[s]
		if !ok {
			return bitset.New(0)
		}
		out.And(p)
		if out.None() {
			break
		}
	}
	return out
}

func postingLen(p *bitset.Set) int {
	if p == nil {
		return 0
	}
	return p.Count()
}

// PathSignatures enumerates the canonical signatures of all simple paths
// of 0..maxLen edges in g. A path's signature is the label sequence along
// it, canonicalized to the lexicographically smaller of its two reading
// directions, so the undirected path is counted once.
//
// This is the FTV index's hot loop (it runs for every indexed graph and
// every query, and again on each per-graph re-index after an update), so
// signature bytes are rendered with strconv.AppendUint into two shared
// buffers; a string is allocated only when a signature is first seen —
// map lookups use the non-allocating string(bytes) form.
func PathSignatures(g *graph.Graph, maxLen int) []string {
	seen := make(map[string]struct{}, 64)
	labels := make([]graph.Label, 0, maxLen+1)
	onPath := make([]bool, g.NumVertices())
	var fwd, bwd []byte
	var dfs func(v, depth int)
	dfs = func(v, depth int) {
		labels = append(labels, g.Label(v))
		onPath[v] = true
		fwd, bwd = canonicalAppend(labels, fwd[:0], bwd[:0])
		sig := fwd
		if bytes.Compare(bwd, fwd) < 0 {
			sig = bwd
		}
		if _, ok := seen[string(sig)]; !ok {
			seen[string(sig)] = struct{}{}
		}
		if depth < maxLen {
			for _, w := range g.Neighbors(v) {
				if !onPath[w] {
					dfs(int(w), depth+1)
				}
			}
		}
		onPath[v] = false
		labels = labels[:len(labels)-1]
	}
	for v := 0; v < g.NumVertices(); v++ {
		dfs(v, 0)
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CanonicalKey renders a deterministic, isomorphism-invariant key for g:
// vertex and edge counts, the sorted degree sequence, the sorted
// (label, count) multiset, and the canonical path signatures up to
// maxLen (≤ 0 means DefaultMaxLen). Isomorphic graphs always produce
// equal keys, so distinct keys prove non-isomorphism; equal keys are
// strong but not conclusive evidence, and callers needing exactness
// (like the query planner's plan cache) confirm with a structural or
// sub-iso check.
func CanonicalKey(g *graph.Graph, maxLen int) string {
	if maxLen <= 0 {
		maxLen = DefaultMaxLen
	}
	var b bytes.Buffer
	b.WriteByte('v')
	b.WriteString(strconv.Itoa(g.NumVertices()))
	b.WriteString(";e")
	b.WriteString(strconv.Itoa(g.NumEdges()))
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	b.WriteString(";d")
	for i, d := range degs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(d))
	}
	counts := g.LabelCounts()
	labels := make([]int, 0, len(counts))
	for l := range counts {
		labels = append(labels, int(l))
	}
	sort.Ints(labels)
	b.WriteString(";l")
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(counts[graph.Label(l)]))
	}
	b.WriteString(";p")
	for i, sig := range PathSignatures(g, maxLen) {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(sig)
	}
	return b.String()
}

// canonicalAppend renders the label sequence into fwd and its reversal
// into bwd ("17-3-42" style, byte-identical to the historical
// fmt-formatted signatures), returning the grown buffers.
func canonicalAppend(labels []graph.Label, fwd, bwd []byte) ([]byte, []byte) {
	for i, l := range labels {
		if i > 0 {
			fwd = append(fwd, '-')
			bwd = append(bwd, '-')
		}
		fwd = strconv.AppendUint(fwd, uint64(l), 10)
		bwd = strconv.AppendUint(bwd, uint64(labels[len(labels)-1-i]), 10)
	}
	return fwd, bwd
}
