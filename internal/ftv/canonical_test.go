package ftv

import (
	"math/rand"
	"testing"

	"gcplus/internal/graph"
)

// permuteGraph rebuilds g with vertex v renamed to perm[v]. The result is
// isomorphic to g by construction — the relabelled copies CanonicalKey
// must treat as equal.
func permuteGraph(g *graph.Graph, perm []int) *graph.Graph {
	inv := make([]int, len(perm))
	for old, nw := range perm {
		inv[nw] = old
	}
	b := graph.NewBuilder()
	for nw := 0; nw < len(perm); nw++ {
		b.AddVertex(g.Label(inv[nw]))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				b.AddEdge(perm[v], perm[int(w)])
			}
		}
	}
	return b.MustBuild()
}

func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// TestCanonicalKeyInvariance pins the plan-cache key contract: the key is
// deterministic, ignores vertex numbering and graph names, and separates
// the structurally distinct fixtures below.
func TestCanonicalKeyInvariance(t *testing.T) {
	fixtures := []*graph.Graph{
		graph.Path(1, 2, 3),
		graph.Path(3, 2, 1), // same key as above: path read in either direction
		graph.Cycle(1, 2, 3),
		graph.Star(0, 1, 1, 2),
		graph.Clique(4, 4, 4),
		graph.Path(1, 2, 3, 4, 5),
		graph.NewBuilder().MustBuild(), // empty graph
	}
	rng := rand.New(rand.NewSource(17))
	for i, g := range fixtures {
		key := CanonicalKey(g, 0)
		if again := CanonicalKey(g, 0); again != key {
			t.Fatalf("fixture %d: key not deterministic: %q vs %q", i, key, again)
		}
		if ck := CanonicalKey(g.Clone(), 0); ck != key {
			t.Fatalf("fixture %d: clone key %q != %q", i, ck, key)
		}
		if def := CanonicalKey(g, DefaultMaxLen); def != key {
			t.Fatalf("fixture %d: maxLen 0 does not default to DefaultMaxLen", i)
		}
		named := g.Clone()
		named.SetName("renamed-for-test")
		if nk := CanonicalKey(named, 0); nk != key {
			t.Fatalf("fixture %d: key depends on graph name", i)
		}
		for trial := 0; trial < 5; trial++ {
			p := permuteGraph(g, randPerm(rng, g.NumVertices()))
			if pk := CanonicalKey(p, 0); pk != key {
				t.Fatalf("fixture %d trial %d: permuted key %q != %q", i, trial, pk, key)
			}
		}
	}
	// Path(1,2,3) and Path(3,2,1) are the same undirected labelled path;
	// everything else in the fixture set must have a distinct key.
	keys := make(map[string]int)
	for i, g := range fixtures {
		k := CanonicalKey(g, 0)
		if j, dup := keys[k]; dup {
			if !(i == 1 && j == 0) {
				t.Fatalf("fixtures %d and %d collide on key %q", j, i, k)
			}
			continue
		}
		keys[k] = i
	}
	if CanonicalKey(fixtures[0], 0) != CanonicalKey(fixtures[1], 0) {
		t.Fatal("Path(1,2,3) and Path(3,2,1) must share a canonical key")
	}
}

// FuzzCanonicalKey feeds arbitrary graphs through the plan-cache key:
// the key must be deterministic, invariant under vertex renumbering, and
// must always disagree when cheap isomorphism witnesses (vertex count,
// edge count, label multiset) disagree.
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{3, 1, 2, 3, 0, 1, 1, 2, 0, 2}, uint8(1))
	f.Add([]byte{6, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0}, uint8(7))
	f.Add([]byte{1, 4}, uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, permSeed uint8) {
		g := fuzzGraph(data)
		key := CanonicalKey(g, 0)
		if again := CanonicalKey(g, 0); again != key {
			t.Fatalf("non-deterministic key: %q vs %q", key, again)
		}
		rng := rand.New(rand.NewSource(int64(permSeed)))
		p := permuteGraph(g, randPerm(rng, g.NumVertices()))
		if pk := CanonicalKey(p, 0); pk != key {
			t.Fatalf("permuted graph key %q != original %q", pk, key)
		}
		// A one-vertex extension is never isomorphic to g, so its key must
		// differ — the plan cache would otherwise serve a plan compiled
		// for a different query shape.
		b := graph.NewBuilder()
		for v := 0; v < g.NumVertices(); v++ {
			b.AddVertex(g.Label(v))
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(v) {
				if int(w) > v {
					b.AddEdge(v, int(w))
				}
			}
		}
		b.AddVertex(graph.Label(9))
		if ek := CanonicalKey(b.MustBuild(), 0); ek == key {
			t.Fatalf("graph and its one-vertex extension share key %q", key)
		}
	})
}
