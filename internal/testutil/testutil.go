// Package testutil provides shared helpers for the test suites: random
// graph generation, connected-subgraph extraction, and brute-force ground
// truth for whole-dataset queries. It is imported only from _test files
// and benchmark seeding code.
package testutil

import (
	"math/rand"
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
)

// CacheIndexes is the slice of *cache.Cache these helpers exercise: its
// two index invariants. Declaring the interface here (instead of
// importing the cache package) keeps testutil importable from the test
// suites of cache's own dependencies, e.g. internal/ftv.
type CacheIndexes interface {
	// CheckIndex verifies the inverted invalidation index invariant.
	CheckIndex() error
	// CheckQueryIndex verifies the query-index invariant.
	CheckQueryIndex() error
}

// RequireCacheIndex fails the test when either of the cache's indexes
// violates its invariant: the inverted invalidation index (index pairs
// must be exactly the live entries' set validity bits; cache.CheckIndex)
// or the query index (postings must hold exactly the live entries'
// query features; cache.CheckQueryIndex). Test suites call it after
// every mutation sequence — admit, evict, purge, validate, repair — so
// index maintenance bugs surface at the mutation that introduced them.
func RequireCacheIndex(t testing.TB, c CacheIndexes) {
	t.Helper()
	if c == nil {
		return
	}
	if err := c.CheckIndex(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckQueryIndex(); err != nil {
		t.Fatal(err)
	}
}

// RandomGraph generates a random labelled graph with 1..maxN vertices,
// labels drawn from [0, labels) and independent edge probability p.
func RandomGraph(rng *rand.Rand, maxN, labels int, p float64) *graph.Graph {
	n := 1 + rng.Intn(maxN)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// RandomConnectedGraph generates a connected graph with exactly n
// vertices: a random spanning tree plus, per vertex pair, an extra edge
// with probability p.
func RandomConnectedGraph(rng *rand.Rand, n, labels int, p float64) *graph.Graph {
	b := graph.NewBuilder()
	present := make(map[[2]int]bool)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || present[[2]int{u, v}] {
			return
		}
		present[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	for i := 1; i < n; i++ {
		addEdge(i, rng.Intn(i))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				addEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// BFSExtract extracts a connected subgraph with up to maxEdges edges from
// g, starting at the given vertex — the paper's Type A query generation:
// a BFS where, for each newly visited node, all its edges back to already
// visited nodes are added until the desired query size is reached.
func BFSExtract(rng *rand.Rand, g *graph.Graph, start, maxEdges int) *graph.Graph {
	if g.NumVertices() == 0 || start < 0 || start >= g.NumVertices() {
		return graph.NewBuilder().MustBuild()
	}
	b := graph.NewBuilder()
	idx := map[int]int{start: b.AddVertex(g.Label(start))}
	added := make(map[[2]int]bool)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if !added[[2]int{u, v}] {
			added[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
	}
	queue := []int{start}
	edges := 0
	for len(queue) > 0 && edges < maxEdges {
		v := queue[0]
		queue = queue[1:]
		ns := append([]int32(nil), g.Neighbors(v)...)
		rng.Shuffle(len(ns), func(i, j int) { ns[i], ns[j] = ns[j], ns[i] })
		for _, w := range ns {
			if edges >= maxEdges {
				break
			}
			wi, seen := idx[int(w)]
			if !seen {
				wi = b.AddVertex(g.Label(int(w)))
				idx[int(w)] = wi
				queue = append(queue, int(w))
			}
			before := len(added)
			addEdge(idx[v], wi)
			if len(added) > before {
				edges++
			}
		}
	}
	return b.MustBuild()
}

// GroundTruthSub computes {id : q ⊆ G_id} over the live dataset with the
// brute-force oracle.
func GroundTruthSub(ds *dataset.Dataset, q *graph.Graph) *bitset.Set {
	return groundTruth(ds, q, true)
}

// GroundTruthSuper computes {id : G_id ⊆ q}.
func GroundTruthSuper(ds *dataset.Dataset, q *graph.Graph) *bitset.Set {
	return groundTruth(ds, q, false)
}

func groundTruth(ds *dataset.Dataset, q *graph.Graph, sub bool) *bitset.Set {
	oracle := subiso.Brute{}
	out := bitset.New(0)
	for _, id := range ds.LiveIDs() {
		g := ds.Graph(id)
		var ok bool
		if sub {
			ok = oracle.Contains(q, g)
		} else {
			ok = oracle.Contains(g, q)
		}
		if ok {
			out.Set(id)
		}
	}
	return out
}

// RandomChange applies one uniformly chosen ADD/DEL/UA/UR to the dataset,
// mirroring the paper's change-plan op construction: ADD re-inserts a
// clone of a pool graph, DEL/UA/UR pick a live graph uniformly; UA adds a
// uniformly chosen absent edge, UR removes a uniformly chosen present
// edge. Inapplicable draws (e.g. UR on an edgeless graph) are retried a
// bounded number of times; false is returned if nothing was applied.
func RandomChange(rng *rand.Rand, ds *dataset.Dataset, pool []*graph.Graph) bool {
	for tries := 0; tries < 16; tries++ {
		ids := ds.LiveIDs()
		switch rng.Intn(4) {
		case 0: // ADD
			if len(pool) == 0 {
				continue
			}
			g := pool[rng.Intn(len(pool))].Clone()
			if _, err := ds.Add(g); err == nil {
				return true
			}
		case 1: // DEL
			if len(ids) <= 1 {
				continue
			}
			if ds.Delete(ids[rng.Intn(len(ids))]) == nil {
				return true
			}
		case 2: // UA
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			g := ds.Graph(id)
			n := g.NumVertices()
			if n < 2 {
				continue
			}
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if ds.UpdateAddEdge(id, u, v) == nil {
				return true
			}
		case 3: // UR
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			g := ds.Graph(id)
			if g.NumEdges() == 0 {
				continue
			}
			es := g.EdgeList()
			e := es[rng.Intn(len(es))]
			if ds.UpdateRemoveEdge(id, int(e.U), int(e.V)) == nil {
				return true
			}
		}
	}
	return false
}
