package cache

import (
	"fmt"
	"sort"
)

// Model selects the cache-consistency model of §5.
type Model uint8

const (
	// ModelCON keeps the cache across dataset changes and refreshes
	// per-entry validity indicators (§5.2). The paper's headline model.
	ModelCON Model = iota
	// ModelEVI evicts cache and window on any dataset change (§5.1).
	ModelEVI
)

// String returns "CON" or "EVI".
func (m Model) String() string {
	if m == ModelEVI {
		return "EVI"
	}
	return "CON"
}

// ParseModel converts "CON"/"EVI" to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "CON":
		return ModelCON, nil
	case "EVI":
		return ModelEVI, nil
	}
	return 0, fmt.Errorf("cache: unknown model %q (want CON or EVI)", s)
}

// Config sizes and parameterizes a Cache. The defaults mirror §7.1: cache
// capacity 100, window 20, HD replacement.
type Config struct {
	// Capacity is the maximum number of admitted entries (default 100).
	Capacity int
	// WindowSize is the admission window length (default 20).
	WindowSize int
	// Model is the consistency model (default CON).
	Model Model
	// Policy is the replacement policy (default HD).
	Policy Policy
	// StrictInvalidation disables Algorithm 2's UA/UR-exclusive survival
	// rules: every logged operation invalidates its graph's bit in every
	// entry. Used by the validity-optimization ablation; always sound,
	// strictly less effective.
	StrictInvalidation bool
	// RepairQueue bounds the queue of invalidated (entry, graph) pairs
	// collected by Validate for background repair. 0 (the default)
	// disables collection entirely; when the queue is full further pairs
	// are dropped (and counted) rather than blocking the validator.
	RepairQueue int
	// DisableHitIndex turns the query index off: hit discovery falls
	// back to the linear scan over every entry (the differential-test
	// reference). The index is on by default — it is what keeps hit
	// discovery sub-linear as Capacity grows past the paper's 100.
	DisableHitIndex bool
	// HitIndexPathLen bounds the path length (in edges) of the query
	// index's path-signature postings: 0 means DefaultHitIndexPathLen,
	// negative disables path postings (label and size-bucket postings
	// remain). Ignored when DisableHitIndex is set.
	HitIndexPathLen int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 100
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 20
	}
	if c.Policy == "" {
		c.Policy = PolicyHD
	}
	if c.HitIndexPathLen == 0 {
		c.HitIndexPathLen = DefaultHitIndexPathLen
	}
	return c
}

// Validate rejects configurations that name an unknown replacement
// policy or consistency model. Zero values are fine (withDefaults fills
// them); the point is that a mistyped Policy fails loudly here instead
// of silently scoring like PIN at the first eviction. core.NewRuntime
// calls it and returns the error; New panics on it, so no invalid
// configuration can reach scoreAll either way.
func (c Config) Validate() error {
	switch c.Policy {
	case "", PolicyPIN, PolicyPINC, PolicyHD, PolicyLRU, PolicyLFU:
	default:
		return fmt.Errorf("cache: unknown policy %q (want PIN, PINC, HD, LRU or LFU)", c.Policy)
	}
	if c.Model != ModelCON && c.Model != ModelEVI {
		return fmt.Errorf("cache: unknown model %d (want ModelCON or ModelEVI)", c.Model)
	}
	return nil
}

// Cache holds admitted entries plus the admission window. It is not
// safe for concurrent mutation; GC+'s runtime serializes access (the
// paper's concurrent admission is modelled synchronously for determinism).
type Cache struct {
	cfg        Config
	entries    []*Entry
	window     []*Entry
	nextID     int
	clock      int64
	appliedSeq uint64

	// idx is the inverted invalidation index: graph id -> slots of
	// entries whose Valid bit covers it (see index.go).
	idx *invIndex
	// qidx is the query index backing sub-linear hit discovery (see
	// qindex.go); nil when Config.DisableHitIndex is set.
	qidx *queryIndex
	// slots holds the live entries by slot; freeSlots recycles slots of
	// evicted entries so index bitsets stay small.
	slots     []*Entry
	freeSlots []int
	// repairQ is the bounded FIFO of invalidated pairs awaiting repair.
	repairQ []RepairTask

	// lifetime counters for reports
	admitted      int64
	evicted       int64
	purges        int64
	validates     int64
	repairedBits  int64
	repairDropped int64
}

// New builds an empty cache. It panics on an invalid configuration
// (unknown policy or model); callers that want an error instead should
// run Config.Validate first, as core.NewRuntime does.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, idx: newInvIndex()}
	if !cfg.DisableHitIndex {
		c.qidx = newQueryIndex(cfg.HitIndexPathLen)
	}
	return c
}

// Config returns the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Model returns the configured consistency model.
func (c *Cache) Model() Model { return c.cfg.Model }

// Size returns the number of admitted (post-window) entries.
func (c *Cache) Size() int { return len(c.entries) }

// WindowLen returns the number of entries waiting in the window.
func (c *Cache) WindowLen() int { return len(c.window) }

// AppliedSeq returns the dataset log sequence number the cache contents
// reflect.
func (c *Cache) AppliedSeq() uint64 { return c.appliedSeq }

// SetAppliedSeq records seq as reflected. Used with Purge by the EVI
// model, where clearing the cache trivially reconciles any log suffix.
func (c *Cache) SetAppliedSeq(seq uint64) { c.appliedSeq = seq }

// Tick advances and returns the logical clock used for recency.
func (c *Cache) Tick() int64 {
	c.clock++
	return c.clock
}

// Now returns the current logical time.
func (c *Cache) Now() int64 { return c.clock }

// ForEach visits every entry usable for hits — window first (most recent
// knowledge), then admitted entries. Return false to stop.
func (c *Cache) ForEach(fn func(*Entry) bool) {
	for _, e := range c.window {
		if !fn(e) {
			return
		}
	}
	for _, e := range c.entries {
		if !fn(e) {
			return
		}
	}
}

// Add places a freshly executed query into the admission window
// (§4: queries are batched in the Window store before entering cache).
// When the window fills up it is flushed into the cache, triggering
// replacement if capacity is exceeded. Entries must already carry answer,
// validity and seq per NewEntry.
//
// Add records no query-to-query relations, which permanently disables
// the query index's repeated-query fast path for this cache — it exists
// for cache-level tests. The runtime admits via AddWithRelations.
func (c *Cache) Add(e *Entry) { c.AddWithRelations(e, nil, nil) }

// AddWithRelations is Add plus the hit classification of e.Query
// against the current cache contents: containing holds the live
// same-kind entries whose queries contain e.Query, contained those it
// contains (an isomorphic entry would belong to both, but the runtime
// never admits alongside one — it refreshes instead). The query index
// memoizes the relations so a later query isomorphic to e.Query reads
// its hits instead of re-deriving them (ForEachRelated). Passing nil
// slices means the relations are unknown; pass empty non-nil slices for
// a query with no hits.
func (c *Cache) AddWithRelations(e *Entry, containing, contained []*Entry) {
	e.ID = c.nextID
	c.nextID++
	if e.LastUsed == 0 {
		e.LastUsed = c.Tick()
	}
	c.assignSlot(e)
	c.idx.addEntry(e)
	if c.qidx != nil {
		c.qidx.addEntry(e, containing, contained)
	}
	c.window = append(c.window, e)
	if len(c.window) >= c.cfg.WindowSize {
		c.flushWindow()
	}
}

// flushWindow moves the window into the cache and evicts down to capacity
// using the configured policy. Entries keep their slots across the move,
// so neither index changes.
func (c *Cache) flushWindow() {
	c.entries = append(c.entries, c.window...)
	c.admitted += int64(len(c.window))
	c.window = c.window[:0]
	c.evictToCapacity()
}

func (c *Cache) evictToCapacity() {
	over := len(c.entries) - c.cfg.Capacity
	if over <= 0 {
		return
	}
	scores := c.cfg.Policy.scoreAll(c.entries, c.RValues())
	// Evict the `over` lowest-scored entries; ties break towards older
	// IDs so runs are reproducible.
	idx := make([]int, len(c.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] < scores[ib]
		}
		return c.entries[ia].ID < c.entries[ib].ID
	})
	drop := make(map[int]bool, over)
	for _, i := range idx[:over] {
		drop[i] = true
	}
	kept := c.entries[:0]
	for i, e := range c.entries {
		if !drop[i] {
			kept = append(kept, e)
		} else {
			c.releaseEntry(e)
		}
	}
	// Zero the tail so evicted entries can be collected.
	for i := len(kept); i < len(c.entries); i++ {
		c.entries[i] = nil
	}
	c.entries = kept
	c.evicted += int64(over)
}

// Purge drops every entry and the window — the EVI model's response to
// any dataset change (§5.1: "Cache Validator then clears cached contents
// indiscriminately").
func (c *Cache) Purge() {
	for _, e := range c.entries {
		c.releaseEntry(e)
	}
	for _, e := range c.window {
		c.releaseEntry(e)
	}
	c.entries = nil
	c.window = nil
	c.repairQ = nil // queued pairs refer to dead entries only
	c.purges++
}

// NoteValidation counts a CON validation sweep (for overhead reports).
func (c *Cache) NoteValidation() { c.validates++ }

// Counters reports lifetime admission/eviction/purge/validation counts.
func (c *Cache) Counters() (admitted, evicted, purges, validates int64) {
	return c.admitted, c.evicted, c.purges, c.validates
}

// Stats is a point-in-time snapshot of a cache's state and lifetime
// counters. Serving front-ends report one Stats per shard-local cache
// (the /stats endpoint of cmd/gcserve); all fields are plain values so
// the snapshot serializes to JSON without exposing the live cache.
type Stats struct {
	// Entries is the number of admitted (post-window) entries.
	Entries int `json:"entries"`
	// Window is the number of entries waiting in the admission window.
	Window int `json:"window"`
	// Capacity is the configured maximum number of admitted entries.
	Capacity int `json:"capacity"`
	// Model is the consistency model ("CON" or "EVI").
	Model string `json:"model"`
	// Policy is the replacement policy name.
	Policy string `json:"policy"`
	// Admitted, Evicted, Purges and Validations are lifetime counters.
	Admitted    int64 `json:"admitted"`
	Evicted     int64 `json:"evicted"`
	Purges      int64 `json:"purges"`
	Validations int64 `json:"validations"`
	// PendingRepairs is the current length of the repair queue.
	PendingRepairs int `json:"pending_repairs"`
	// RepairedBits counts validity bits restored by the repair pipeline.
	RepairedBits int64 `json:"repaired_bits"`
	// RepairDropped counts invalidated pairs dropped on a full queue.
	RepairDropped int64 `json:"repair_dropped"`
	// AppliedSeq is the dataset log sequence number the contents reflect.
	AppliedSeq uint64 `json:"applied_seq"`
}

// Stats snapshots the cache state and lifetime counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Entries:        len(c.entries),
		Window:         len(c.window),
		Capacity:       c.cfg.Capacity,
		Model:          c.cfg.Model.String(),
		Policy:         string(c.cfg.Policy),
		Admitted:       c.admitted,
		Evicted:        c.evicted,
		Purges:         c.purges,
		Validations:    c.validates,
		PendingRepairs: len(c.repairQ),
		RepairedBits:   c.repairedBits,
		RepairDropped:  c.repairDropped,
		AppliedSeq:     c.appliedSeq,
	}
}

// RValues snapshots the R statistic of all admitted and windowed entries;
// the HD policy derives its variability signal from this distribution.
func (c *Cache) RValues() []float64 {
	out := make([]float64, 0, len(c.entries)+len(c.window))
	for _, e := range c.entries {
		out = append(out, e.R)
	}
	for _, e := range c.window {
		out = append(out, e.R)
	}
	return out
}
