package cache

import (
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
)

// FuzzParseModel checks that ParseModel accepts exactly CON and EVI and
// that accepted values round-trip through Model.String.
func FuzzParseModel(f *testing.F) {
	for _, s := range []string{"CON", "EVI", "", "con", "EVI ", "CONN", "E"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseModel(s)
		canonical := s == "CON" || s == "EVI"
		if err != nil {
			if canonical {
				t.Fatalf("ParseModel rejected canonical %q: %v", s, err)
			}
			return
		}
		if !canonical {
			t.Fatalf("ParseModel accepted %q as %v", s, m)
		}
		if m.String() != s {
			t.Fatalf("round trip %q → %v → %q", s, m, m.String())
		}
	})
}

// FuzzQueryIndex drives a random operation stream — admissions (with
// brute-force-derived relations, as the runtime would supply), window
// flushes, evictions, refreshes and purges — against the query index
// and checks both cache index invariants after every operation.
func FuzzQueryIndex(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{200, 63, 17, 99, 250, 1, 42, 42, 42, 13, 13, 13, 7, 7})
	f.Add([]byte{255, 254, 253, 3, 9, 27, 81, 243, 12, 34, 56, 78, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(Config{Capacity: 6, WindowSize: 2})
		oracle := subiso.Brute{}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		check := func(op string) {
			if err := c.CheckIndex(); err != nil {
				t.Fatalf("after %s: %v", op, err)
			}
			if err := c.CheckQueryIndex(); err != nil {
				t.Fatalf("after %s: %v", op, err)
			}
		}
		var live []*Entry
		refreshLive := func() {
			live = live[:0]
			c.ForEach(func(e *Entry) bool {
				live = append(live, e)
				return true
			})
		}
		for pos < len(data) {
			switch op := next() % 8; op {
			case 7: // purge (rare-ish)
				c.Purge()
				check("purge")
			case 6: // refresh a live entry in place
				refreshLive()
				if len(live) > 0 {
					e := live[int(next())%len(live)]
					c.RefreshEntry(e, bitset.FromIndices(int(next())%8), bitset.FromIndices(0, 1, 2))
					check("refresh")
				}
			default: // admit a small graph with exact relations
				b := graph.NewBuilder()
				n := 1 + int(next())%4
				for i := 0; i < n; i++ {
					b.AddVertex(graph.Label(next() % 3))
				}
				mask := next()
				edge := 0
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						if mask&(1<<uint(edge%8)) != 0 {
							b.AddEdge(u, v)
						}
						edge++
					}
				}
				g := b.MustBuild()
				kind := Kind(op % 2)
				e := NewEntry(g, kind, bitset.FromIndices(int(next())%8), bitset.FromIndices(0, 1, 2, 3), 0, 1)
				containing, contained := []*Entry{}, []*Entry{}
				refreshLive()
				for _, o := range live {
					if o.Kind != kind {
						continue
					}
					if oracle.Contains(g, o.Query) {
						containing = append(containing, o)
					}
					if oracle.Contains(o.Query, g) {
						contained = append(contained, o)
					}
				}
				c.AddWithRelations(e, containing, contained)
				check("add")
			}
		}
	})
}

// FuzzParsePolicy checks that ParsePolicy accepts exactly the five
// replacement policies, as themselves.
func FuzzParsePolicy(f *testing.F) {
	for _, s := range []string{"PIN", "PINC", "HD", "LRU", "LFU", "", "pin", "PINCC", "H D"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		canonical := s == "PIN" || s == "PINC" || s == "HD" || s == "LRU" || s == "LFU"
		if err != nil {
			if canonical {
				t.Fatalf("ParsePolicy rejected canonical %q: %v", s, err)
			}
			return
		}
		if !canonical {
			t.Fatalf("ParsePolicy accepted %q as %v", s, p)
		}
		if string(p) != s {
			t.Fatalf("ParsePolicy changed %q to %q", s, p)
		}
	})
}
