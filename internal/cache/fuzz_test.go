package cache

import "testing"

// FuzzParseModel checks that ParseModel accepts exactly CON and EVI and
// that accepted values round-trip through Model.String.
func FuzzParseModel(f *testing.F) {
	for _, s := range []string{"CON", "EVI", "", "con", "EVI ", "CONN", "E"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseModel(s)
		canonical := s == "CON" || s == "EVI"
		if err != nil {
			if canonical {
				t.Fatalf("ParseModel rejected canonical %q: %v", s, err)
			}
			return
		}
		if !canonical {
			t.Fatalf("ParseModel accepted %q as %v", s, m)
		}
		if m.String() != s {
			t.Fatalf("round trip %q → %v → %q", s, m, m.String())
		}
	})
}

// FuzzParsePolicy checks that ParsePolicy accepts exactly the five
// replacement policies, as themselves.
func FuzzParsePolicy(f *testing.F) {
	for _, s := range []string{"PIN", "PINC", "HD", "LRU", "LFU", "", "pin", "PINCC", "H D"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		canonical := s == "PIN" || s == "PINC" || s == "HD" || s == "LRU" || s == "LFU"
		if err != nil {
			if canonical {
				t.Fatalf("ParsePolicy rejected canonical %q: %v", s, err)
			}
			return
		}
		if !canonical {
			t.Fatalf("ParsePolicy accepted %q as %v", s, p)
		}
		if string(p) != s {
			t.Fatalf("ParsePolicy changed %q to %q", s, p)
		}
	})
}
