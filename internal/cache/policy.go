package cache

import (
	"fmt"

	"gcplus/internal/stats"
)

// Policy names a cache-replacement policy. Entries with the *lowest*
// scores are evicted first.
type Policy string

const (
	// PolicyPIN scores an entry by R, the total number of subgraph
	// isomorphism tests it spared (§7.1).
	PolicyPIN Policy = "PIN"
	// PolicyPINC extends PIN with the heuristic per-test cost estimate:
	// score = R × Ĉ, valuing entries whose spared tests were expensive.
	PolicyPINC Policy = "PINC"
	// PolicyHD is the paper's hybrid default: when the R distribution
	// across the cache has squared coefficient of variation > 1 (high
	// variability) it scores like PIN, otherwise like PINC.
	PolicyHD Policy = "HD"
	// PolicyLRU evicts the least recently used entry (GC baseline).
	PolicyLRU Policy = "LRU"
	// PolicyLFU evicts the least frequently contributing entry.
	PolicyLFU Policy = "LFU"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyPIN, PolicyPINC, PolicyHD, PolicyLRU, PolicyLFU:
		return Policy(s), nil
	}
	return "", fmt.Errorf("cache: unknown policy %q (want PIN, PINC, HD, LRU or LFU)", s)
}

// scoreAll computes the eviction score of every entry under the policy.
// HD decides between PIN and PINC once per invocation, from the CoV² of
// rvalues — the cache's full R distribution as documented by
// Cache.RValues (admitted entries plus window). Eviction only ever runs
// right after a window flush, when the window is empty, so the sample
// and the scored entries coincide there; passing the distribution
// explicitly pins that semantics instead of leaving it an accident of
// call order. Config validation guarantees the policy is known, so an
// unrecognized value is a programming error and panics rather than
// silently scoring like PIN.
func (p Policy) scoreAll(entries []*Entry, rvalues []float64) []float64 {
	eff := p
	if p == PolicyHD {
		var r stats.Running
		for _, v := range rvalues {
			r.Add(v)
		}
		if r.CoV2() > 1 {
			eff = PolicyPIN
		} else {
			eff = PolicyPINC
		}
	}
	scores := make([]float64, len(entries))
	for i, e := range entries {
		switch eff {
		case PolicyPIN:
			scores[i] = e.R
		case PolicyPINC:
			scores[i] = e.R * e.CostEst
		case PolicyLRU:
			scores[i] = float64(e.LastUsed)
		case PolicyLFU:
			scores[i] = float64(e.Hits)
		default:
			panic(fmt.Sprintf("cache: scoreAll on unvalidated policy %q", p))
		}
	}
	return scores
}
