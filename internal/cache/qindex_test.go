package cache

import (
	"math/rand"
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/feature"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
)

// requireQueryIndex is the in-package form of the query-index half of
// testutil.RequireCacheIndex.
func requireQueryIndex(t testing.TB, c *Cache) {
	t.Helper()
	if err := c.CheckIndex(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckQueryIndex(); err != nil {
		t.Fatal(err)
	}
}

// randomQueryGraph builds a small random connected-ish labelled graph.
func randomQueryGraph(rng *rand.Rand) *graph.Graph {
	n := 1 + rng.Intn(6)
	b := graph.NewBuilder()
	present := make(map[[2]int]bool)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(5)))
	}
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || present[[2]int{u, v}] {
			return
		}
		present[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	for i := 1; i < n; i++ {
		addEdge(i, rng.Intn(i))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.2 {
				addEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func randomQueryEntry(rng *rand.Rand) *Entry {
	kind := KindSub
	if rng.Intn(2) == 1 {
		kind = KindSuper
	}
	return NewEntry(randomQueryGraph(rng), kind,
		bitset.FromIndices(rng.Intn(8)), bitset.FromIndices(0, 1, 2, 3), 0, 1)
}

// TestQueryIndexCandidateSoundness checks the index's core guarantee on
// randomized contents: ForEachHitCandidate visits candidates in exactly
// ForEach's order, never under-flags an entry that could classify as a
// hit, and only drops an entry (or a direction) when the decisive
// containment test provably fails — the drop is verified against
// brute-force sub-iso ground truth. (The mayContain direction filters
// on path signatures, which are finer than the fingerprint, so dropping
// a fingerprint-passing entry is legal exactly when containment fails.)
func TestQueryIndexCandidateSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	oracle := subiso.Brute{}
	c := New(Config{Capacity: 40, WindowSize: 7})
	for i := 0; i < 120; i++ {
		c.Add(randomQueryEntry(rng))
		if i%10 == 0 {
			requireQueryIndex(t, c)
		}
	}
	requireQueryIndex(t, c)
	for trial := 0; trial < 60; trial++ {
		q := randomQueryGraph(rng)
		qf := feature.Of(q)
		for _, kind := range []Kind{KindSub, KindSuper} {
			got := make(map[*Entry][2]bool)
			var order []*Entry
			c.ForEachHitCandidate(kind, q, func(e *Entry, mayContain, mayBeContained bool) bool {
				got[e] = [2]bool{mayContain, mayBeContained}
				order = append(order, e)
				return true
			})
			// Order must be the ForEach order restricted to candidates.
			i := 0
			c.ForEach(func(e *Entry) bool {
				if i < len(order) && order[i] == e {
					i++
				}
				return true
			})
			if i != len(order) {
				t.Fatalf("trial %d kind %v: candidate order diverges from ForEach", trial, kind)
			}
			c.ForEach(func(e *Entry) bool {
				if e.Kind != kind {
					return true
				}
				flags := got[e]
				if qf.SubsumedBy(e.Fp) && !flags[0] {
					// Dropping the containing direction is sound only
					// when q provably does not embed into the entry.
					if oracle.Contains(q, e.Query) {
						t.Fatalf("trial %d kind %v: entry #%d contains q but was dropped", trial, kind, e.ID)
					}
				}
				if e.Fp.SubsumedBy(qf) && !flags[1] {
					// No finer filter exists in this direction: a
					// fingerprint-passing entry must always be flagged.
					t.Fatalf("trial %d kind %v: entry #%d lost its mayBeContained flag", trial, kind, e.ID)
				}
				return true
			})
		}
	}
}

// TestQueryIndexIsoCandidates checks that the iso probe never misses an
// entry with a fingerprint identical to the query's.
func TestQueryIndexIsoCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New(Config{Capacity: 30, WindowSize: 5})
	for i := 0; i < 80; i++ {
		c.Add(randomQueryEntry(rng))
	}
	requireQueryIndex(t, c)
	for trial := 0; trial < 60; trial++ {
		q := randomQueryGraph(rng)
		qf := feature.Of(q)
		for _, kind := range []Kind{KindSub, KindSuper} {
			want := make(map[*Entry]bool)
			c.ForEach(func(e *Entry) bool {
				if e.Kind == kind && qf.SubsumedBy(e.Fp) && e.Fp.SubsumedBy(qf) {
					want[e] = true
				}
				return true
			})
			got := make(map[*Entry]bool)
			c.ForEachIsoCandidate(kind, q, func(e *Entry) bool {
				got[e] = true
				return true
			})
			for e := range want {
				if !got[e] {
					t.Fatalf("trial %d: iso probe missed fingerprint-equal entry #%d", trial, e.ID)
				}
			}
		}
	}
}

// TestQueryIndexRelations exercises the memoized relation graph through
// admissions with relations, reciprocal updates, eviction cleanup and
// the incompleteness gating.
func TestQueryIndexRelations(t *testing.T) {
	c := New(Config{Capacity: 3, WindowSize: 1}) // window 1: admit straight through
	mk := func(g *graph.Graph) *Entry {
		return NewEntry(g, KindSub, bitset.New(4), bitset.FromIndices(0, 1, 2, 3), 0, 1)
	}
	big := mk(graph.Path(1, 2, 3))
	c.AddWithRelations(big, []*Entry{}, []*Entry{})
	small := mk(graph.Path(1, 2))
	// path(1,2) ⊆ path(1,2,3): big contains small.
	c.AddWithRelations(small, []*Entry{big}, []*Entry{})
	requireQueryIndex(t, c)

	// small's relations: big contains it; big's reciprocal: contains small.
	n, ok := c.ForEachRelated(small, func(e *Entry, contains, containedIn bool) bool {
		switch e {
		case small:
			if !contains || !containedIn {
				t.Fatal("base entry must carry both flags")
			}
		case big:
			if !contains || containedIn {
				t.Fatalf("big: contains=%v containedIn=%v", contains, containedIn)
			}
		default:
			t.Fatalf("unexpected related entry %v", e)
		}
		return true
	})
	if !ok || n != 2 {
		t.Fatalf("ForEachRelated(small) = %d, %v", n, ok)
	}
	n, ok = c.ForEachRelated(big, func(e *Entry, contains, containedIn bool) bool {
		if e == small && (contains || !containedIn) {
			t.Fatalf("small from big: contains=%v containedIn=%v", contains, containedIn)
		}
		return true
	})
	if !ok || n != 2 {
		t.Fatalf("ForEachRelated(big) = %d, %v", n, ok)
	}

	// Eviction cleans both directions (capacity 3, PIN ties → oldest out).
	third := mk(graph.Path(9))
	c.AddWithRelations(third, []*Entry{}, []*Entry{})
	fourth := mk(graph.Path(8))
	c.AddWithRelations(fourth, []*Entry{}, []*Entry{})
	requireQueryIndex(t, c)

	// A relation-less Add poisons the fast path.
	if !c.qidx.relIncomplete {
		c.Add(mk(graph.Path(7)))
		if !c.qidx.relIncomplete {
			t.Fatal("raw Add must mark relations incomplete")
		}
	}
	if _, ok := c.ForEachRelated(fourth, func(*Entry, bool, bool) bool { return true }); ok {
		t.Fatal("fast path must be gated after a relation-less admission")
	}
	requireQueryIndex(t, c)
	c.Purge()
	requireQueryIndex(t, c)
}

// TestConfigValidate pins loud failure on mistyped policies and models.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if err := (Config{Policy: "PIM"}).Validate(); err == nil {
		t.Fatal("mistyped policy accepted")
	}
	if err := (Config{Model: Model(9)}).Validate(); err == nil {
		t.Fatal("unknown model accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on an invalid config")
		}
	}()
	New(Config{Policy: "PIM"})
}
