package cache

import (
	"fmt"

	"gcplus/internal/bitset"
	"gcplus/internal/feature"
	"gcplus/internal/graph"
)

// This file implements cache state export/import for the durability
// subsystem (internal/persist): a Snapshot captures every admitted and
// windowed entry — query graph, answer snapshot, validity indicator,
// Statistics Manager bookkeeping — plus the memoized query-to-query
// relation graph and the pending repair queue, so a restarted server
// resumes with a warm cache instead of re-executing every query.
//
// Both slot-addressed indexes (the inverted invalidation index and the
// query index's postings) are *rebuilt* from the restored entries rather
// than persisted: they are pure functions of entry state, rebuilding is
// linear in the snapshot size, and it keeps the on-disk format
// independent of index internals. The relation graph is the exception —
// its edges are the product of pairwise sub-iso tests at admission time
// and cannot be recomputed cheaply, so Snapshot carries them explicitly.

// EntrySnapshot is the exported state of one cached query. All fields
// are plain values or owned copies; mutating the live cache after export
// does not affect a snapshot.
type EntrySnapshot struct {
	// ID is the entry's cache-unique id (eviction tiebreak).
	ID int
	// Query is the cached query graph (shared pointer; graphs are
	// immutable once published).
	Query *graph.Graph
	// Kind is the query kind.
	Kind Kind
	// Answer and Valid are clones of the entry's answer snapshot and
	// validity indicator.
	Answer, Valid *bitset.Set
	// Seq is the dataset log sequence number Valid reflects.
	Seq uint64
	// R, CostEst, Hits and LastUsed are the Statistics Manager fields
	// feeding the replacement policies.
	R        float64
	CostEst  float64
	Hits     int64
	LastUsed int64
	// RelKnown reports whether the entry was admitted with its hit
	// classification (AddWithRelations with non-nil slices).
	RelKnown bool
	// Sup and Sub list the snapshot indices (into Snapshot.Entries)
	// of entries whose queries contain / are contained in this one —
	// the memoized relation graph's adjacency, symmetric across the
	// snapshot.
	Sup, Sub []int
}

// RepairRef is one queued invalidated pair, referencing its entry by
// snapshot index.
type RepairRef struct {
	EntryIdx int
	GraphID  int
}

// Snapshot is a full cache state export.
type Snapshot struct {
	// Entries holds every live entry: the admitted store in order,
	// then the admission window in order.
	Entries []EntrySnapshot
	// WindowStart is the index of the first window entry in Entries.
	WindowStart int
	// NextID, Clock and AppliedSeq restore id assignment, the logical
	// recency clock and the reconciliation cursor.
	NextID     int
	Clock      int64
	AppliedSeq uint64
	// Lifetime counters.
	Admitted, Evicted, Purges, Validates int64
	RepairedBits, RepairDropped          int64
	// RelIncomplete marks a cache whose relation graph is unusable
	// (some entry — possibly since evicted — was admitted without
	// relations); restored caches inherit the flag.
	RelIncomplete bool
	// RepairQueue is the pending repair queue in FIFO order.
	RepairQueue []RepairRef
}

// Export snapshots the full cache state. The snapshot is immutable with
// respect to subsequent cache mutations (bitsets are cloned; graphs are
// shared immutable values).
func (c *Cache) Export() *Snapshot {
	s := &Snapshot{
		Entries:       make([]EntrySnapshot, 0, len(c.entries)+len(c.window)),
		WindowStart:   len(c.entries),
		NextID:        c.nextID,
		Clock:         c.clock,
		AppliedSeq:    c.appliedSeq,
		Admitted:      c.admitted,
		Evicted:       c.evicted,
		Purges:        c.purges,
		Validates:     c.validates,
		RepairedBits:  c.repairedBits,
		RepairDropped: c.repairDropped,
	}
	// Slot → snapshot index, for relation and repair-queue references.
	slotIdx := make(map[int]int, cap(s.Entries))
	export := func(e *Entry) {
		slotIdx[e.slot] = len(s.Entries)
		s.Entries = append(s.Entries, EntrySnapshot{
			ID:       e.ID,
			Query:    e.Query,
			Kind:     e.Kind,
			Answer:   e.Answer.Clone(),
			Valid:    e.Valid.Clone(),
			Seq:      e.Seq,
			R:        e.R,
			CostEst:  e.CostEst,
			Hits:     e.Hits,
			LastUsed: e.LastUsed,
		})
	}
	for _, e := range c.entries {
		export(e)
	}
	for _, e := range c.window {
		export(e)
	}
	if c.qidx != nil {
		s.RelIncomplete = c.qidx.relIncomplete
		for _, e := range c.entries {
			c.exportRelations(e, slotIdx, s)
		}
		for _, e := range c.window {
			c.exportRelations(e, slotIdx, s)
		}
	}
	for _, t := range c.repairQ {
		if t.Entry.dead {
			continue
		}
		s.RepairQueue = append(s.RepairQueue, RepairRef{EntryIdx: slotIdx[t.Entry.slot], GraphID: t.GraphID})
	}
	return s
}

func (c *Cache) exportRelations(e *Entry, slotIdx map[int]int, s *Snapshot) {
	i := slotIdx[e.slot]
	es := &s.Entries[i]
	es.RelKnown = c.qidx.relKnown[e.slot]
	c.qidx.sup[e.slot].ForEach(func(slot int) bool {
		es.Sup = append(es.Sup, slotIdx[slot])
		return true
	})
	c.qidx.sub[e.slot].ForEach(func(slot int) bool {
		es.Sub = append(es.Sub, slotIdx[slot])
		return true
	})
}

// Restore rebuilds the cache from a snapshot. The receiver must be
// freshly constructed (New, no entries admitted yet); both slot indexes
// are rebuilt from the restored entries, and the relation graph is
// replayed from the snapshot's adjacency. Restoring into a cache whose
// configuration differs from the exporter's is allowed — capacity and
// window bounds re-assert themselves at the next admission, and a
// disabled query index simply drops the relation graph.
func (c *Cache) Restore(s *Snapshot) error {
	if len(c.entries) != 0 || len(c.window) != 0 || c.nextID != 0 {
		return fmt.Errorf("cache: Restore requires a fresh cache (have %d entries, %d windowed, nextID %d)",
			len(c.entries), len(c.window), c.nextID)
	}
	if s.WindowStart < 0 || s.WindowStart > len(s.Entries) {
		return fmt.Errorf("cache: snapshot window start %d out of range [0,%d]", s.WindowStart, len(s.Entries))
	}
	restored := make([]*Entry, len(s.Entries))
	for i := range s.Entries {
		es := &s.Entries[i]
		if es.Query == nil {
			return fmt.Errorf("cache: snapshot entry %d has no query graph", i)
		}
		e := &Entry{
			ID:       es.ID,
			Query:    es.Query,
			Kind:     es.Kind,
			Fp:       feature.Of(es.Query),
			Answer:   es.Answer.Clone(),
			Valid:    es.Valid.Clone(),
			Seq:      es.Seq,
			R:        es.R,
			CostEst:  es.CostEst,
			Hits:     es.Hits,
			LastUsed: es.LastUsed,
		}
		restored[i] = e
		c.assignSlot(e)
		c.idx.addEntry(e)
		if c.qidx != nil {
			// Replay the relation graph: each unordered pair is recorded
			// once, when its higher-indexed member is added — exactly how
			// admission built it — so reciprocal writes in addEntry
			// reconstruct the full symmetric adjacency.
			var containing, contained []*Entry
			if es.RelKnown {
				containing, contained = []*Entry{}, []*Entry{}
				for _, j := range es.Sup {
					if j < 0 || j >= len(s.Entries) {
						return fmt.Errorf("cache: snapshot entry %d sup-related to out-of-range index %d", i, j)
					}
					if j < i {
						containing = append(containing, restored[j])
					}
				}
				for _, j := range es.Sub {
					if j < 0 || j >= len(s.Entries) {
						return fmt.Errorf("cache: snapshot entry %d sub-related to out-of-range index %d", i, j)
					}
					if j < i {
						contained = append(contained, restored[j])
					}
				}
			}
			c.qidx.addEntry(e, containing, contained)
		}
	}
	c.entries = append(c.entries, restored[:s.WindowStart]...)
	c.window = append(c.window, restored[s.WindowStart:]...)
	c.nextID = s.NextID
	c.clock = s.Clock
	c.appliedSeq = s.AppliedSeq
	c.admitted = s.Admitted
	c.evicted = s.Evicted
	c.purges = s.Purges
	c.validates = s.Validates
	c.repairedBits = s.RepairedBits
	c.repairDropped = s.RepairDropped
	if c.qidx != nil && s.RelIncomplete {
		c.qidx.relIncomplete = true
	}
	for _, ref := range s.RepairQueue {
		if ref.EntryIdx < 0 || ref.EntryIdx >= len(restored) {
			return fmt.Errorf("cache: snapshot repair ref to out-of-range entry %d", ref.EntryIdx)
		}
		if c.cfg.RepairQueue <= 0 || len(c.repairQ) >= c.cfg.RepairQueue {
			c.repairDropped++
			continue
		}
		c.repairQ = append(c.repairQ, RepairTask{Entry: restored[ref.EntryIdx], GraphID: ref.GraphID})
	}
	return nil
}
