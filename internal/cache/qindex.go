package cache

import (
	"fmt"

	"gcplus/internal/bitset"
	"gcplus/internal/ftv"
	"gcplus/internal/graph"
)

// This file implements the cache-side query index: the structure that
// makes hit discovery sub-linear in the cache size.
//
// # Why
//
// The GC+sub/GC+super processors must find, for a new query g, the
// cached queries that could contain g and those g could contain. The
// fingerprint prefilter makes each pairwise check cheap, but a linear
// scan still pays O(cache size) fingerprint checks per query — the
// scaling wall once caches grow past the paper's capacity of 100. The
// query index replays the original GraphCache's query-index idea on the
// cache side: per query kind it maintains postings over entry *slots*
// (the same dense, recycled slot space the inverted invalidation index
// uses) keyed by containment-monotone features of each entry's query:
//
//   - per-label postings: slots of entries whose query carries a label;
//   - vertex- and edge-count buckets: slots grouped by query size;
//   - optional short-path-signature postings reusing internal/ftv's
//     canonical path extraction (gIndex-style filtering applied to the
//     cached queries instead of the dataset).
//
// Candidate lookup is then bitset algebra: "entries that could contain
// g" is the intersection of g's label (and path) postings minus the
// too-small size buckets; "entries g could contain" is the kind's slot
// set minus postings of labels g lacks and minus the too-large buckets.
// Both are over-approximations of the fingerprint tests they replace —
// every feature is monotone under subgraph embedding, so no true hit is
// ever dropped — and the decisive fingerprint + query-to-query sub-iso
// tests still run per candidate. The win is that they run on the few
// candidates instead of on every entry.
//
// # Consistency
//
// The index is maintained by exactly the two mutation points every
// entry passes through: Cache.Add (admission to the window) and
// Cache.releaseEntry (eviction, purge). Window flush moves entries
// between stores without changing their slot, so nothing to do;
// RefreshEntry and repair commits (RestoreBit) rewrite an entry's
// Answer/Valid bitsets but never its query graph, so the postings —
// keyed on query structure only — stay exact. CheckQueryIndex verifies
// the invariant after every mutation sequence in tests, and
// FuzzQueryIndex drives random op streams against it.

// DefaultHitIndexPathLen is the default maximum path length (in edges)
// of the query index's path-signature postings. Short paths keep
// per-admission extraction cheap while pruning far better than labels
// alone; length 2 is plenty for the small query graphs GC+ caches.
const DefaultHitIndexPathLen = 2

// qindexMaxBucket saturates the size buckets: queries with ≥ this many
// vertices (or edges) share the top bucket. Below the cap the bucket is
// the exact count, so size cuts are exact for typical query sizes.
const qindexMaxBucket = 64

func qindexBucket(n int) int {
	if n > qindexMaxBucket {
		return qindexMaxBucket
	}
	return n
}

// queryIndex holds one kindIndex per query kind, the per-slot path
// signatures needed to undo path postings on removal, and the memoized
// query-to-query relation graph.
type queryIndex struct {
	pathLen int // ≤ 0 disables path postings
	kinds   [2]kindIndex
	// sigs remembers each slot's path signatures so removeEntry can
	// clean up without re-extracting (extraction is deterministic, but
	// the entry may hold the only reference to its query by then).
	sigs map[int][]string
	// containing/contained are the lookup scratch sets, reused across
	// queries (the cache is owned by one goroutine, like all its state)
	// so candidate lookup allocates nothing per query.
	containing, contained *bitset.Set
	// sigMemo caches the last probe query's path signatures: the iso
	// probe and the candidate lookup run back-to-back on the same
	// query graph, and extraction (a DFS with string canonicalization)
	// is the expensive part of a lookup.
	sigMemoGraph *graph.Graph
	sigMemo      []string

	// sup/sub, indexed by slot, memoize the query-to-query containment
	// relations among live same-kind entries: sup[s] holds the slots of
	// entries whose query contains slot s's query, sub[s] those it
	// contains (in the style of one-hop sub-query caches). The
	// relations fall out of hit discovery for free — when an entry is
	// admitted, the query that produced it was just classified against
	// every live same-kind entry — and every pair of live entries had
	// its relation computed when the younger one was admitted, so the
	// graph is complete. Symmetry invariant: a ∈ sup[b] ⟺ b ∈ sub[a].
	// A repeated query that proves isomorphic to a cached entry reads
	// its hit sets straight from these bitsets, skipping every pairwise
	// sub-iso test (ForEachRelated).
	sup, sub []*bitset.Set
	// relKnown marks slots admitted with their relations; entries added
	// without them (AddWithRelations(e, nil, nil), i.e. the bare Add
	// used by cache-level tests) leave the slot readable for reciprocal
	// bookkeeping but unusable as a fast-path base.
	relKnown []bool
	// relIncomplete is set once any entry was admitted without
	// relations: pairs involving it are missing everywhere, so the
	// whole fast path is disabled for this cache instance. The runtime
	// always admits with relations; only raw test admissions trip this.
	relIncomplete bool
}

// qindexLabelCountCap bounds the per-label count thresholds indexed:
// byLabel[l][k-1] holds entries with ≥ k vertices of label l, for
// k ≤ the cap. Label multiplicities above the cap are approximated by
// the cap posting (sound: a superset).
const qindexLabelCountCap = 8

// kindIndex is the posting store for one query kind.
type kindIndex struct {
	// all is the slot set of every indexed entry of this kind.
	all *bitset.Set
	// byLabel maps a vertex label to count-threshold postings:
	// byLabel[l][k-1] is the slots of entries whose query carries at
	// least k vertices of label l (k = 1..qindexLabelCountCap). Count
	// thresholds cut far deeper than bare membership: an entry needing
	// three vertices of a label cannot contain a query offering one,
	// and vice versa.
	byLabel map[graph.Label][]*bitset.Set
	// byPath maps a canonical path signature (ftv.PathSignatures) to the
	// slots of entries whose query contains the path.
	byPath map[string]*bitset.Set
	// byVertices/byEdges/byMaxDeg group slots by saturated query
	// vertex-count, edge-count and maximum-degree buckets.
	byVertices []*bitset.Set
	byEdges    []*bitset.Set
	byMaxDeg   []*bitset.Set
}

func newQueryIndex(pathLen int) *queryIndex {
	qi := &queryIndex{
		pathLen:    pathLen,
		containing: bitset.New(0),
		contained:  bitset.New(0),
	}
	if pathLen > 0 {
		qi.sigs = make(map[int][]string)
	}
	for k := range qi.kinds {
		qi.kinds[k] = kindIndex{
			all:     bitset.New(0),
			byLabel: make(map[graph.Label][]*bitset.Set),
			byPath:  make(map[string]*bitset.Set),
		}
	}
	return qi
}

func labelCap(count int32) int {
	if count > qindexLabelCountCap {
		return qindexLabelCountCap
	}
	return int(count)
}

func (ki *kindIndex) labelAdd(l graph.Label, count int32, slot int) {
	ps := ki.byLabel[l]
	top := labelCap(count)
	for len(ps) < top {
		ps = append(ps, bitset.New(slot+1))
	}
	ki.byLabel[l] = ps
	for k := 0; k < top; k++ {
		ps[k].Set(slot)
	}
}

func (ki *kindIndex) labelRemove(l graph.Label, count int32, slot int) {
	ps := ki.byLabel[l]
	for k := 0; k < labelCap(count) && k < len(ps); k++ {
		ps[k].Clear(slot)
	}
	// Trim postings that emptied out (thresholds empty top-down: the
	// ≥k posting is a superset of the ≥k+1 one).
	for len(ps) > 0 && ps[len(ps)-1].None() {
		ps = ps[:len(ps)-1]
	}
	if len(ps) == 0 {
		delete(ki.byLabel, l)
	} else {
		ki.byLabel[l] = ps
	}
}

func bucketSet(buckets *[]*bitset.Set, b, slot int) {
	for len(*buckets) <= b {
		*buckets = append(*buckets, nil)
	}
	if (*buckets)[b] == nil {
		(*buckets)[b] = bitset.New(slot + 1)
	}
	(*buckets)[b].Set(slot)
}

func bucketClear(buckets []*bitset.Set, b, slot int) {
	if b < len(buckets) && buckets[b] != nil {
		buckets[b].Clear(slot)
	}
}

// addEntry indexes e under its assigned slot. containing/contained are
// the live entries whose queries contain / are contained in e.Query
// (nil when unknown, which disables the relation fast path — see
// queryIndex.relIncomplete); reciprocal edges are recorded on the spot
// so the relation graph stays symmetric.
func (qi *queryIndex) addEntry(e *Entry, containing, contained []*Entry) {
	ki := &qi.kinds[e.Kind]
	sum := e.Query.Summary()
	ki.all.Set(e.slot)
	for len(qi.sup) <= e.slot {
		qi.sup = append(qi.sup, nil)
		qi.sub = append(qi.sub, nil)
		qi.relKnown = append(qi.relKnown, false)
	}
	qi.sup[e.slot] = bitset.New(e.slot + 1)
	qi.sub[e.slot] = bitset.New(e.slot + 1)
	qi.relKnown[e.slot] = containing != nil || contained != nil
	if !qi.relKnown[e.slot] {
		qi.relIncomplete = true
	}
	for _, s := range containing {
		qi.sup[e.slot].Set(s.slot)
		qi.sub[s.slot].Set(e.slot)
	}
	for _, s := range contained {
		qi.sub[e.slot].Set(s.slot)
		qi.sup[s.slot].Set(e.slot)
	}
	for _, lc := range sum.LabelCounts() {
		ki.labelAdd(lc.Label, lc.Count, e.slot)
	}
	bucketSet(&ki.byVertices, qindexBucket(sum.Vertices()), e.slot)
	bucketSet(&ki.byEdges, qindexBucket(sum.Edges()), e.slot)
	bucketSet(&ki.byMaxDeg, qindexBucket(sum.MaxDegree()), e.slot)
	if qi.pathLen > 0 {
		sigs := ftv.PathSignatures(e.Query, qi.pathLen)
		qi.sigs[e.slot] = sigs
		for _, s := range sigs {
			p := ki.byPath[s]
			if p == nil {
				p = bitset.New(e.slot + 1)
				ki.byPath[s] = p
			}
			p.Set(e.slot)
		}
	}
}

// removeEntry drops e's postings and relation edges, releasing empty
// postings. Every edge touching e is registered in e's own sup/sub sets
// (reciprocals are written at admission), so cleanup is O(degree).
func (qi *queryIndex) removeEntry(e *Entry) {
	ki := &qi.kinds[e.Kind]
	sum := e.Query.Summary()
	ki.all.Clear(e.slot)
	qi.sup[e.slot].ForEach(func(s int) bool {
		qi.sub[s].Clear(e.slot)
		return true
	})
	qi.sub[e.slot].ForEach(func(s int) bool {
		qi.sup[s].Clear(e.slot)
		return true
	})
	qi.sup[e.slot], qi.sub[e.slot] = nil, nil
	qi.relKnown[e.slot] = false
	for _, lc := range sum.LabelCounts() {
		ki.labelRemove(lc.Label, lc.Count, e.slot)
	}
	bucketClear(ki.byVertices, qindexBucket(sum.Vertices()), e.slot)
	bucketClear(ki.byEdges, qindexBucket(sum.Edges()), e.slot)
	bucketClear(ki.byMaxDeg, qindexBucket(sum.MaxDegree()), e.slot)
	if qi.pathLen > 0 {
		for _, s := range qi.sigs[e.slot] {
			if p := ki.byPath[s]; p != nil {
				p.Clear(e.slot)
				if p.None() {
					delete(ki.byPath, s)
				}
			}
		}
		delete(qi.sigs, e.slot)
	}
}

// couldContain fills out with the slots of entries whose query could
// contain a query with the given summary and path signatures (a
// superset of the entries passing qf.SubsumedBy(e.Fp), and of those
// passing the decisive sub-iso test): intersection of the query's label
// and path postings, minus the buckets of entries smaller (or of lower
// maximum degree) than the query.
func (ki *kindIndex) couldContain(sum *graph.Summary, sigs []string, out *bitset.Set) {
	first := true
	for _, lc := range sum.LabelCounts() {
		// Entries must carry at least the query's count of each of its
		// labels (an embedding maps same-labeled vertices injectively).
		ps := ki.byLabel[lc.Label]
		kq := labelCap(lc.Count)
		if len(ps) < kq {
			out.Reset() // no cached query has enough of this label
			return
		}
		p := ps[kq-1]
		if first {
			out.CopyFrom(p)
			first = false
		} else {
			out.And(p)
		}
		if out.None() {
			return
		}
	}
	if first {
		// A query with no vertices is contained in everything.
		out.CopyFrom(ki.all)
	}
	for _, s := range sigs {
		p := ki.byPath[s]
		if p == nil {
			out.Reset()
			return
		}
		out.And(p)
		if out.None() {
			return
		}
	}
	cutBucketsBelow(out, ki.byVertices, qindexBucket(sum.Vertices()))
	cutBucketsBelow(out, ki.byEdges, qindexBucket(sum.Edges()))
	cutBucketsBelow(out, ki.byMaxDeg, qindexBucket(sum.MaxDegree()))
}

// couldBeContained fills out with the slots of entries whose query
// could be contained in a query with the given summary (a superset of
// the entries passing e.Fp.SubsumedBy(qf)): the kind's slot set minus
// postings of labels the query lacks and minus the buckets of entries
// larger (or of higher maximum degree) than the query. Path postings
// are not consulted in this direction — filtering "entries with a path
// outside the query's paths" would mean walking the whole posting map,
// defeating the lookup.
func (ki *kindIndex) couldBeContained(sum *graph.Summary, out *bitset.Set) {
	out.CopyFrom(ki.all)
	for l, ps := range ki.byLabel {
		// Entries needing more copies of a label than the query offers
		// cannot embed into it: cut the "≥ count+1" threshold posting
		// (for an absent label that is the "≥ 1" membership posting).
		cq := int(sum.LabelFreq(l))
		if cq < qindexLabelCountCap && cq < len(ps) {
			out.AndNot(ps[cq])
			if out.None() {
				return
			}
		}
	}
	cutBucketsAbove(out, ki.byVertices, qindexBucket(sum.Vertices()))
	cutBucketsAbove(out, ki.byEdges, qindexBucket(sum.Edges()))
	cutBucketsAbove(out, ki.byMaxDeg, qindexBucket(sum.MaxDegree()))
}

// querySigs extracts q's path signatures, memoizing the last query so
// the iso probe and the candidate lookup of one hit discovery share one
// extraction. Graphs are immutable once published, so pointer identity
// is a sound memo key.
func (qi *queryIndex) querySigs(q *graph.Graph) []string {
	if qi.pathLen <= 0 {
		return nil
	}
	if qi.sigMemoGraph != q {
		qi.sigMemoGraph = q
		qi.sigMemo = ftv.PathSignatures(q, qi.pathLen)
	}
	return qi.sigMemo
}

func cutBucketsBelow(out *bitset.Set, buckets []*bitset.Set, b int) {
	if b > len(buckets) {
		b = len(buckets)
	}
	for i := 0; i < b; i++ {
		if buckets[i] != nil {
			out.AndNot(buckets[i])
		}
	}
}

func cutBucketsAbove(out *bitset.Set, buckets []*bitset.Set, b int) {
	for i := b + 1; i < len(buckets); i++ {
		if buckets[i] != nil {
			out.AndNot(buckets[i])
		}
	}
}

// QueryIndexEnabled reports whether the cache maintains a query index
// for hit discovery.
func (c *Cache) QueryIndexEnabled() bool { return c.qidx != nil }

// QuerySigPathLen returns the path-signature length the query index
// extracts per probe query (0 when the index is off or path postings
// are disabled). Callers holding pre-extracted signatures at this
// length can seed them with PrimeQuerySigs.
func (c *Cache) QuerySigPathLen() int {
	if c.qidx == nil {
		return 0
	}
	return c.qidx.pathLen
}

// PrimeQuerySigs seeds the query-index signature memo for q with
// signatures previously extracted — at QuerySigPathLen — from q or any
// structurally equal graph (path signatures are a pure function of
// structure). Hit discovery for q then skips its extraction, the
// dominant per-probe cost. A nil or foreign-length sigs is simply not
// seeded; correctness never depends on priming.
func (c *Cache) PrimeQuerySigs(q *graph.Graph, sigs []string) {
	if c.qidx == nil || c.qidx.pathLen <= 0 || sigs == nil {
		return
	}
	c.qidx.sigMemoGraph = q
	c.qidx.sigMemo = sigs
}

// ForEachIsoCandidate visits the entries of the given kind whose
// indexed features exactly match query q's — equal size and max-degree
// buckets, equal (capped) per-label counts, and containing all of q's
// path signatures — the only entries that could be isomorphic to q.
// Iteration order is unspecified (candidates are interchangeable for an
// isomorphism probe); return false from fn to stop. Panics when the
// index is disabled.
func (c *Cache) ForEachIsoCandidate(kind Kind, q *graph.Graph, fn func(e *Entry) bool) {
	qi := c.qidx
	ki := &qi.kinds[kind]
	sum := q.Summary()
	out := qi.containing
	ki.couldContain(sum, qi.querySigs(q), out)
	if out.None() {
		return
	}
	// couldContain already cut everything smaller than q; equality
	// additionally cuts everything larger.
	cutBucketsAbove(out, ki.byVertices, qindexBucket(sum.Vertices()))
	cutBucketsAbove(out, ki.byEdges, qindexBucket(sum.Edges()))
	cutBucketsAbove(out, ki.byMaxDeg, qindexBucket(sum.MaxDegree()))
	for _, lc := range sum.LabelCounts() {
		// Entries with more copies of one of q's labels cannot be
		// isomorphic to it (couldContain enforced "at least").
		if cq := labelCap(lc.Count); cq < qindexLabelCountCap {
			if ps := ki.byLabel[lc.Label]; cq < len(ps) {
				out.AndNot(ps[cq])
			}
		}
	}
	out.ForEach(func(slot int) bool {
		return fn(c.slots[slot])
	})
}

// ForEachRelated replays the memoized hit classification of base's
// query: it visits, in exactly the order ForEach uses, every live
// entry related to base — base itself plus the entries whose queries
// contain (contains=true) or are contained in (containedIn=true) it —
// with both flags true for base and any entry isomorphic to it. For a
// probe query isomorphic to base.Query this IS the hit classification
// (containment is isomorphism-invariant), so hit discovery for a
// repeated query costs zero query-to-query sub-iso tests.
//
// The visit count and true are returned when the relations are usable;
// false means base was admitted without relations, or some entry in
// this cache was (relations are pairwise, so one unknown entry poisons
// every set) — callers must then fall back to candidate classification.
func (c *Cache) ForEachRelated(base *Entry, fn func(e *Entry, contains, containedIn bool) bool) (int, bool) {
	qi := c.qidx
	if qi.relIncomplete || base.dead || !qi.relKnown[base.slot] {
		return 0, false
	}
	sup, sub := qi.sup[base.slot], qi.sub[base.slot]
	visited := 0
	visit := func(e *Entry) bool {
		contains := e == base || sup.Get(e.slot)
		containedIn := e == base || sub.Get(e.slot)
		if !contains && !containedIn {
			return true
		}
		visited++
		return fn(e, contains, containedIn)
	}
	for _, e := range c.window {
		if !visit(e) {
			return visited, true
		}
	}
	for _, e := range c.entries {
		if !visit(e) {
			return visited, true
		}
	}
	return visited, true
}

// ForEachHitCandidate visits, in exactly the order ForEach uses (window
// first, then admitted entries), every entry of the given kind the
// query index cannot rule out as a hit for query q, passing the
// directions that remain possible: mayContain means the entry's query
// could contain q ("fingerprints that could subsume q"), mayBeContained
// means q could contain it ("that q could subsume"). A false flag is a
// guarantee — the corresponding fingerprint subsumption, and hence the
// sub-iso test it gates, would fail — so index-backed hit discovery
// classifies and credits identically to the linear scan it replaces.
// Return false from fn to stop early. The number of entries visited is
// returned. Lookup allocates nothing beyond the index's scratch sets;
// it panics when the index is disabled.
//
// Order is produced by walking the window and entry stores and probing
// the candidate bitsets per entry — one O(1) membership test each,
// ~1000x cheaper than the fingerprint check the scan pays per entry.
// Enumerating the candidate bitsets instead would make the walk
// proportional to the candidates, but only at the price of re-sorting
// them into ForEach order (slots do not encode it); at the capacities
// this index targets the probe walk is noise next to the per-candidate
// classification it feeds.
func (c *Cache) ForEachHitCandidate(kind Kind, q *graph.Graph, fn func(e *Entry, mayContain, mayBeContained bool) bool) int {
	qi := c.qidx
	ki := &qi.kinds[kind]
	sum := q.Summary()
	ki.couldContain(sum, qi.querySigs(q), qi.containing)
	ki.couldBeContained(sum, qi.contained)
	visited := 0
	visit := func(e *Entry) bool {
		mayContain := qi.containing.Get(e.slot)
		mayBeContained := qi.contained.Get(e.slot)
		if !mayContain && !mayBeContained {
			return true
		}
		visited++
		return fn(e, mayContain, mayBeContained)
	}
	for _, e := range c.window {
		if !visit(e) {
			return visited
		}
	}
	for _, e := range c.entries {
		if !visit(e) {
			return visited
		}
	}
	return visited
}

// CheckQueryIndex verifies the query-index invariant: for each kind the
// postings hold exactly the live entries of that kind — slot membership
// in the kind set, in every label posting of the entry's query, in
// exactly its size buckets, and (when path postings are on) in exactly
// its path-signature postings — with no stray slots anywhere; and the
// relation graph is symmetric (a ∈ sup[b] ⟺ b ∈ sub[a]), references
// only live same-kind slots, and is present for exactly the live
// entries. A disabled index trivially passes, as does a nil receiver.
func (c *Cache) CheckQueryIndex() error {
	if c == nil || c.qidx == nil {
		return nil
	}
	if err := c.checkRelationGraph(); err != nil {
		return err
	}
	type want struct {
		all, label, path, vbucket, ebucket, dbucket int
	}
	var wants [2]want
	var failed error
	c.ForEach(func(e *Entry) bool {
		ki := &c.qidx.kinds[e.Kind]
		sum := e.Query.Summary()
		if !ki.all.Get(e.slot) {
			failed = fmt.Errorf("cache: entry #%d missing from %s kind set", e.ID, e.Kind)
			return false
		}
		wants[e.Kind].all++
		for _, lc := range sum.LabelCounts() {
			ps := ki.byLabel[lc.Label]
			for k := 1; k <= labelCap(lc.Count); k++ {
				if len(ps) < k || !ps[k-1].Get(e.slot) {
					failed = fmt.Errorf("cache: entry #%d missing from label %d ≥%d posting", e.ID, lc.Label, k)
					return false
				}
				wants[e.Kind].label++
			}
		}
		vb, eb, db := qindexBucket(sum.Vertices()), qindexBucket(sum.Edges()), qindexBucket(sum.MaxDegree())
		if vb >= len(ki.byVertices) || ki.byVertices[vb] == nil || !ki.byVertices[vb].Get(e.slot) {
			failed = fmt.Errorf("cache: entry #%d missing from vertex bucket %d", e.ID, vb)
			return false
		}
		if eb >= len(ki.byEdges) || ki.byEdges[eb] == nil || !ki.byEdges[eb].Get(e.slot) {
			failed = fmt.Errorf("cache: entry #%d missing from edge bucket %d", e.ID, eb)
			return false
		}
		if db >= len(ki.byMaxDeg) || ki.byMaxDeg[db] == nil || !ki.byMaxDeg[db].Get(e.slot) {
			failed = fmt.Errorf("cache: entry #%d missing from max-degree bucket %d", e.ID, db)
			return false
		}
		wants[e.Kind].vbucket++
		wants[e.Kind].ebucket++
		wants[e.Kind].dbucket++
		if c.qidx.pathLen > 0 {
			sigs := ftv.PathSignatures(e.Query, c.qidx.pathLen)
			stored := c.qidx.sigs[e.slot]
			if len(stored) != len(sigs) {
				failed = fmt.Errorf("cache: entry #%d stored %d path sigs, query has %d",
					e.ID, len(stored), len(sigs))
				return false
			}
			for _, s := range sigs {
				if p := ki.byPath[s]; p == nil || !p.Get(e.slot) {
					failed = fmt.Errorf("cache: entry #%d missing from path posting %q", e.ID, s)
					return false
				}
				wants[e.Kind].path++
			}
		}
		return true
	})
	if failed != nil {
		return failed
	}
	for k := range c.qidx.kinds {
		ki := &c.qidx.kinds[k]
		got := want{all: ki.all.Count()}
		for _, ps := range ki.byLabel {
			for _, p := range ps {
				got.label += p.Count()
			}
		}
		for _, p := range ki.byPath {
			got.path += p.Count()
		}
		for _, p := range ki.byVertices {
			if p != nil {
				got.vbucket += p.Count()
			}
		}
		for _, p := range ki.byEdges {
			if p != nil {
				got.ebucket += p.Count()
			}
		}
		for _, p := range ki.byMaxDeg {
			if p != nil {
				got.dbucket += p.Count()
			}
		}
		if got != wants[k] {
			return fmt.Errorf("cache: query index for kind %v holds %+v pairs, entries need %+v",
				Kind(k), got, wants[k])
		}
	}
	return nil
}

// checkRelationGraph verifies the memoized relation sets: allocated for
// exactly the live slots, symmetric, and kind-homogeneous.
func (c *Cache) checkRelationGraph() error {
	qi := c.qidx
	live := make(map[int]*Entry)
	c.ForEach(func(e *Entry) bool {
		live[e.slot] = e
		return true
	})
	for slot := 0; slot < len(qi.sup); slot++ {
		e := live[slot]
		if e == nil {
			if qi.sup[slot] != nil || qi.sub[slot] != nil || qi.relKnown[slot] {
				return fmt.Errorf("cache: free slot %d still carries relation state", slot)
			}
			continue
		}
		if qi.sup[slot] == nil || qi.sub[slot] == nil {
			return fmt.Errorf("cache: entry #%d has no relation sets", e.ID)
		}
		var err error
		check := func(set *bitset.Set, mirror func(int) *bitset.Set, dir string) {
			set.ForEach(func(s int) bool {
				o := live[s]
				if o == nil {
					err = fmt.Errorf("cache: entry #%d %s-related to dead slot %d", e.ID, dir, s)
					return false
				}
				if o.Kind != e.Kind {
					err = fmt.Errorf("cache: entry #%d %s-related across kinds to #%d", e.ID, dir, o.ID)
					return false
				}
				if !mirror(s).Get(slot) {
					err = fmt.Errorf("cache: relation #%d→#%d (%s) not mirrored", e.ID, o.ID, dir)
					return false
				}
				return true
			})
		}
		check(qi.sup[slot], func(s int) *bitset.Set { return qi.sub[s] }, "sup")
		if err == nil {
			check(qi.sub[slot], func(s int) *bitset.Set { return qi.sup[s] }, "sub")
		}
		if err != nil {
			return err
		}
	}
	return nil
}
