// Package cache implements GC+'s Cache Manager subsystem (§4–5 of the
// paper): the store of cached queries and their answers, the admission
// Window, the Statistics Manager feeding the replacement policies (PIN,
// PINC and the hybrid HD, plus LRU/LFU baselines), and — new in GC+ over
// the original GraphCache — the Cache Validator that keeps per-entry
// dataset-graph-validity indicators consistent with the dataset update
// log (Algorithm 2), under either of the two consistency models:
//
//   - ModelEVI evicts the entire cache and window whenever the dataset
//     changed (§5.1);
//   - ModelCON refreshes each cached query's CGvalid bitset from the Log
//     Analyzer's counters, preserving still-valid results (§5.2).
//
// Beyond the paper, the cache maintains two slot-addressed indexes over
// its entries: the inverted invalidation index (index.go), which lets
// the Validator and the background repair pipeline touch only affected
// (entry, graph) pairs, and the query index (qindex.go), which makes
// hit discovery sub-linear in the cache size and memoizes
// query-to-query containment relations for repeated queries.
package cache

import (
	"fmt"

	"gcplus/internal/bitset"
	"gcplus/internal/feature"
	"gcplus/internal/graph"
)

// Kind distinguishes what relation a cached query's answer set records.
type Kind uint8

const (
	// KindSub marks a subgraph query: Answer = {G : q ⊆ G}.
	KindSub Kind = iota
	// KindSuper marks a supergraph query: Answer = {G : G ⊆ q}.
	KindSuper
)

// String returns "sub" or "super".
func (k Kind) String() string {
	if k == KindSuper {
		return "super"
	}
	return "sub"
}

// Entry is one cached query: the query graph, the snapshot of its answer
// set at execution time, and the validity indicator CGvalid telling which
// answer bits still reflect the current dataset.
type Entry struct {
	// ID is a cache-unique id (also the deterministic eviction tiebreak).
	ID int
	// Query is the cached query graph.
	Query *graph.Graph
	// Kind tells whether Answer records containment of the query in
	// dataset graphs (sub) or of dataset graphs in the query (super).
	Kind Kind
	// Fp is the query's containment-monotone fingerprint, used by the
	// GC+sub/GC+super processors to prefilter hit candidates.
	Fp *feature.Fingerprint
	// Answer is the query's answer set at execution time, indexed by
	// dataset graph id. It is never recomputed (the paper: "once a query
	// is executed, its answer set is finalized").
	Answer *bitset.Set
	// Valid is CGvalid: bit i set means the relation recorded by
	// Answer bit i still holds for the current dataset graph i.
	Valid *bitset.Set
	// Seq is the dataset log sequence number Valid reflects.
	Seq uint64

	// Statistics Manager fields.

	// R is the number of sub-iso tests this entry spared (PIN's score).
	R float64
	// CostEst is the estimated cost (seconds) of one spared sub-iso test
	// for this entry — the heuristic C of the PINC policy.
	CostEst float64
	// Hits counts how many queries this entry contributed to (LFU).
	Hits int64
	// LastUsed is the cache's logical clock at the entry's last
	// contribution (LRU).
	LastUsed int64

	// slot is the entry's index in the cache's slot table; the inverted
	// invalidation index and the query index both address entries by
	// slot so their bitsets stay dense under eviction churn. Managed by
	// Cache.assignSlot/releaseEntry.
	slot int
	// dead marks an evicted or purged entry so queued repair tasks that
	// still reference it are skipped instead of resurrecting its bits.
	dead bool
}

// NewEntry builds a cache entry for a query executed against the dataset
// version identified by seq, whose live ids are given. The entry starts
// fully valid on exactly the live graphs (its answer is a fresh fact about
// each of them) and invalid everywhere else.
func NewEntry(q *graph.Graph, kind Kind, answer, live *bitset.Set, seq uint64, costEst float64) *Entry {
	return &Entry{
		Query:   q,
		Kind:    kind,
		Fp:      feature.Of(q),
		Answer:  answer.Clone(),
		Valid:   live.Clone(),
		Seq:     seq,
		CostEst: costEst,
	}
}

// FullyValid reports whether the entry holds validity on every graph of
// the given live set — the precondition of both §6.3 optimal cases.
func (e *Entry) FullyValid(live *bitset.Set) bool {
	return live.IsSubsetOf(e.Valid)
}

// ValidAnswer returns CGvalid(e) ∩ Answer(e): the dataset graphs whose
// positive relation with the cached query is still guaranteed. The result
// is freshly allocated.
func (e *Entry) ValidAnswer() *bitset.Set {
	va := e.Valid.Clone()
	va.And(e.Answer)
	return va
}

// PossibleAnswer returns complement(CGvalid) ∪ Answer within the given
// live universe — formula (4)'s g″.Answer_super(g): every live graph that
// could possibly relate positively to a query containing e.Query.
func (e *Entry) PossibleAnswer(live *bitset.Set) *bitset.Set {
	pa := e.Valid.ComplementWithin(live)
	pa.Or(e.Answer)
	pa.And(live)
	return pa
}

// Credit records that this entry's cached result spared the given number
// of sub-iso tests for one query (Statistics Manager update backing the
// PIN/PINC scores), at logical time now.
func (e *Entry) Credit(testsSpared int, now int64) {
	e.R += float64(testsSpared)
	e.Hits++
	e.LastUsed = now
}

// String summarizes the entry for debugging.
func (e *Entry) String() string {
	return fmt.Sprintf("Entry(#%d %s q=%s |answer|=%d |valid|=%d R=%.0f)",
		e.ID, e.Kind, e.Query.Name(), e.Answer.Count(), e.Valid.Count(), e.R)
}
