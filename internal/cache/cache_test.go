package cache

import (
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

func testEntry(kind Kind, answer, live []int, seq uint64) *Entry {
	return NewEntry(graph.Path(1, 2), kind,
		bitset.FromIndices(answer...), bitset.FromIndices(live...), seq, 1)
}

func TestNewEntrySnapshotsBitsets(t *testing.T) {
	ans := bitset.FromIndices(1)
	live := bitset.FromIndices(0, 1)
	e := NewEntry(graph.Path(1, 2), KindSub, ans, live, 0, 0.5)
	ans.Set(7)
	live.Clear(0)
	if e.Answer.Get(7) || !e.Valid.Get(0) {
		t.Fatal("entry shares bitsets with caller")
	}
	if e.CostEst != 0.5 {
		t.Fatal("cost estimate lost")
	}
}

func TestValidAnswerAndPossibleAnswer(t *testing.T) {
	// answers {2,3}, valid {0,1,2}: valid positives = {2}
	e := testEntry(KindSub, []int{2, 3}, []int{0, 1, 2}, 0)
	if got := e.ValidAnswer().String(); got != "{2}" {
		t.Fatalf("ValidAnswer = %s", got)
	}
	// formula (4): complement(valid) ∪ answer within live {0,1,2,3,4}
	live := bitset.FromIndices(0, 1, 2, 3, 4)
	// complement(valid) = {3,4}; ∪ answer {2,3} = {2,3,4}
	if got := e.PossibleAnswer(live).String(); got != "{2, 3, 4}" {
		t.Fatalf("PossibleAnswer = %s", got)
	}
}

func TestFullyValid(t *testing.T) {
	e := testEntry(KindSub, nil, []int{0, 1, 2}, 0)
	if !e.FullyValid(bitset.FromIndices(0, 1, 2)) {
		t.Fatal("entry should be fully valid")
	}
	if !e.FullyValid(bitset.FromIndices(0, 2)) {
		t.Fatal("fully valid on a subset of its validity")
	}
	if e.FullyValid(bitset.FromIndices(0, 3)) {
		t.Fatal("id 3 is not valid")
	}
}

func TestCreditUpdatesStats(t *testing.T) {
	e := testEntry(KindSub, nil, nil, 0)
	e.Credit(5, 17)
	e.Credit(3, 18)
	if e.R != 8 || e.Hits != 2 || e.LastUsed != 18 {
		t.Fatalf("stats wrong: %+v", e)
	}
}

// ---------------------------------------------------------------------
// Algorithm 2 (Refresh) semantics
// ---------------------------------------------------------------------

func countersFor(records ...dataset.Record) *dataset.Counters {
	return dataset.Analyze(records)
}

func TestRefreshUAExclusiveKeepsPositive(t *testing.T) {
	e := testEntry(KindSub, []int{0}, []int{0, 1}, 0)
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateAddEdge, GraphID: 0})
	e.Refresh(c, 1)
	if !e.Valid.Get(0) {
		t.Fatal("UA-exclusive positive bit must survive (sub kind)")
	}
	if e.Seq != 1 {
		t.Fatal("Seq not advanced")
	}
}

func TestRefreshUAExclusiveClearsNegative(t *testing.T) {
	e := testEntry(KindSub, nil, []int{0}, 0) // negative answer on 0
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateAddEdge, GraphID: 0})
	e.Refresh(c, 1)
	if e.Valid.Get(0) {
		t.Fatal("UA on a negative answer must invalidate (g ⊄ Gi may flip)")
	}
}

func TestRefreshURExclusiveKeepsNegative(t *testing.T) {
	e := testEntry(KindSub, nil, []int{0}, 0)
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateRemoveEdge, GraphID: 0})
	e.Refresh(c, 1)
	if !e.Valid.Get(0) {
		t.Fatal("UR-exclusive negative bit must survive (sub kind)")
	}
}

func TestRefreshURExclusiveClearsPositive(t *testing.T) {
	e := testEntry(KindSub, []int{0}, []int{0}, 0)
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateRemoveEdge, GraphID: 0})
	e.Refresh(c, 1)
	if e.Valid.Get(0) {
		t.Fatal("UR on a positive answer must invalidate")
	}
}

func TestRefreshMixedOpsClear(t *testing.T) {
	pos := testEntry(KindSub, []int{0}, []int{0}, 0)
	neg := testEntry(KindSub, nil, []int{0}, 0)
	c := countersFor(
		dataset.Record{Seq: 1, Op: dataset.OpUpdateAddEdge, GraphID: 0},
		dataset.Record{Seq: 2, Op: dataset.OpUpdateRemoveEdge, GraphID: 0},
	)
	pos.Refresh(c, 2)
	neg.Refresh(c, 2)
	if pos.Valid.Get(0) || neg.Valid.Get(0) {
		t.Fatal("mixed UA+UR must invalidate both polarities")
	}
}

func TestRefreshDeleteClears(t *testing.T) {
	e := testEntry(KindSub, []int{0}, []int{0}, 0)
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpDelete, GraphID: 0})
	e.Refresh(c, 1)
	if e.Valid.Get(0) {
		t.Fatal("DEL must invalidate")
	}
}

func TestRefreshAlreadyInvalidStaysInvalid(t *testing.T) {
	e := testEntry(KindSub, []int{0}, nil, 0) // valid nowhere
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateAddEdge, GraphID: 0})
	e.Refresh(c, 1)
	if e.Valid.Get(0) {
		t.Fatal("refresh must never resurrect validity")
	}
}

func TestRefreshNewIDStaysInvalid(t *testing.T) {
	e := testEntry(KindSub, nil, []int{0, 1}, 0)
	c := countersFor(dataset.Record{Seq: 1, Op: dataset.OpAdd, GraphID: 5})
	e.Refresh(c, 1)
	if e.Valid.Get(5) {
		t.Fatal("new dataset graph must be invalid for old entries")
	}
	if !e.Valid.Get(0) || !e.Valid.Get(1) {
		t.Fatal("untouched ids must keep validity")
	}
}

func TestRefreshSuperKindMirrored(t *testing.T) {
	// supergraph entries: UR-exclusive preserves positives,
	// UA-exclusive preserves negatives.
	posUR := testEntry(KindSuper, []int{0}, []int{0}, 0)
	posUR.Refresh(countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateRemoveEdge, GraphID: 0}), 1)
	if !posUR.Valid.Get(0) {
		t.Fatal("super: UR-exclusive positive must survive")
	}
	posUA := testEntry(KindSuper, []int{0}, []int{0}, 0)
	posUA.Refresh(countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateAddEdge, GraphID: 0}), 1)
	if posUA.Valid.Get(0) {
		t.Fatal("super: UA on positive must invalidate")
	}
	negUA := testEntry(KindSuper, nil, []int{0}, 0)
	negUA.Refresh(countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateAddEdge, GraphID: 0}), 1)
	if !negUA.Valid.Get(0) {
		t.Fatal("super: UA-exclusive negative must survive")
	}
	negUR := testEntry(KindSuper, nil, []int{0}, 0)
	negUR.Refresh(countersFor(dataset.Record{Seq: 1, Op: dataset.OpUpdateRemoveEdge, GraphID: 0}), 1)
	if negUR.Valid.Get(0) {
		t.Fatal("super: UR on negative must invalidate")
	}
}

// TestFigure2Timeline replays the running example of the paper's Figure 2
// and checks the validity indicators after every event.
func TestFigure2Timeline(t *testing.T) {
	// T1: g' executed against {G0..G3}: g'⊆G2, g'⊆G3.
	gPrime := testEntry(KindSub, []int{2, 3}, []int{0, 1, 2, 3}, 0)

	// T2: ADD G4, UR G3.
	c2 := countersFor(
		dataset.Record{Seq: 1, Op: dataset.OpAdd, GraphID: 4},
		dataset.Record{Seq: 2, Op: dataset.OpUpdateRemoveEdge, GraphID: 3},
	)
	gPrime.Refresh(c2, 2)
	if got := gPrime.Valid.String(); got != "{0, 1, 2}" {
		t.Fatalf("after T2, CGvalid(g') = %s, want {0, 1, 2}", got)
	}

	// T3: g'' executed against {G0..G4}: g''⊆G2, g''⊆G3 (Figure 3(b)),
	// fully valid on the then-current dataset.
	gDouble := testEntry(KindSub, []int{2, 3}, []int{0, 1, 2, 3, 4}, 2)

	// T4: DEL G0, UA G1.
	c4 := countersFor(
		dataset.Record{Seq: 3, Op: dataset.OpDelete, GraphID: 0},
		dataset.Record{Seq: 4, Op: dataset.OpUpdateAddEdge, GraphID: 1},
	)
	gPrime.Refresh(c4, 4)
	gDouble.Refresh(c4, 4)

	// Figure 3(a): CGvalid(g') = {G2}.
	if got := gPrime.Valid.String(); got != "{2}" {
		t.Fatalf("after T4, CGvalid(g') = %s, want {2}", got)
	}
	// Figure 3(b): CGvalid(g'') = {G2, G3, G4}.
	if got := gDouble.Valid.String(); got != "{2, 3, 4}" {
		t.Fatalf("after T4, CGvalid(g'') = %s, want {2, 3, 4}", got)
	}
}

// ---------------------------------------------------------------------
// Cache admission, window, eviction, policies
// ---------------------------------------------------------------------

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Capacity != 100 || cfg.WindowSize != 20 || cfg.Policy != PolicyHD || cfg.Model != ModelCON {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestWindowFlushAtCapacity(t *testing.T) {
	c := New(Config{Capacity: 10, WindowSize: 3})
	for i := 0; i < 2; i++ {
		c.Add(testEntry(KindSub, nil, nil, 0))
	}
	if c.WindowLen() != 2 || c.Size() != 0 {
		t.Fatalf("window=%d size=%d", c.WindowLen(), c.Size())
	}
	c.Add(testEntry(KindSub, nil, nil, 0))
	if c.WindowLen() != 0 || c.Size() != 3 {
		t.Fatalf("after flush: window=%d size=%d", c.WindowLen(), c.Size())
	}
	admitted, evicted, _, _ := c.Counters()
	if admitted != 3 || evicted != 0 {
		t.Fatalf("admitted=%d evicted=%d", admitted, evicted)
	}
}

func TestEvictionKeepsHighScores(t *testing.T) {
	c := New(Config{Capacity: 2, WindowSize: 4, Policy: PolicyPIN})
	rs := []float64{5, 1, 9, 3}
	for _, r := range rs {
		e := testEntry(KindSub, nil, nil, 0)
		e.R = r
		c.Add(e)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
	var kept []float64
	c.ForEach(func(e *Entry) bool {
		kept = append(kept, e.R)
		return true
	})
	want := map[float64]bool{5: true, 9: true}
	for _, r := range kept {
		if !want[r] {
			t.Fatalf("kept R=%v, want {5,9}", kept)
		}
	}
	_, evicted, _, _ := c.Counters()
	if evicted != 2 {
		t.Fatalf("evicted = %d", evicted)
	}
}

func TestEvictionTieBreaksByID(t *testing.T) {
	c := New(Config{Capacity: 1, WindowSize: 2, Policy: PolicyPIN})
	a := testEntry(KindSub, nil, nil, 0)
	b := testEntry(KindSub, nil, nil, 0)
	c.Add(a) // ID 0
	c.Add(b) // ID 1 — same score; older (ID 0) evicted first
	if c.Size() != 1 {
		t.Fatalf("size = %d", c.Size())
	}
	c.ForEach(func(e *Entry) bool {
		if e.ID != 1 {
			t.Fatalf("kept entry ID %d, want 1", e.ID)
		}
		return true
	})
}

// rValuesOf mirrors Cache.RValues for a bare entry slice: the R
// distribution HD's CoV² decision reads.
func rValuesOf(entries []*Entry) []float64 {
	out := make([]float64, len(entries))
	for i, e := range entries {
		out[i] = e.R
	}
	return out
}

func TestPolicyScores(t *testing.T) {
	e1 := testEntry(KindSub, nil, nil, 0)
	e1.R, e1.CostEst, e1.Hits, e1.LastUsed = 10, 0.5, 3, 100
	e2 := testEntry(KindSub, nil, nil, 0)
	e2.R, e2.CostEst, e2.Hits, e2.LastUsed = 4, 2.0, 9, 50
	entries := []*Entry{e1, e2}

	rvals := rValuesOf(entries)
	if s := PolicyPIN.scoreAll(entries, rvals); s[0] != 10 || s[1] != 4 {
		t.Errorf("PIN scores %v", s)
	}
	if s := PolicyPINC.scoreAll(entries, rvals); s[0] != 5 || s[1] != 8 {
		t.Errorf("PINC scores %v", s)
	}
	if s := PolicyLRU.scoreAll(entries, rvals); s[0] != 100 || s[1] != 50 {
		t.Errorf("LRU scores %v", s)
	}
	if s := PolicyLFU.scoreAll(entries, rvals); s[0] != 3 || s[1] != 9 {
		t.Errorf("LFU scores %v", s)
	}
}

func TestHDSwitchesOnCoV(t *testing.T) {
	// Low variability R values: HD must behave like PINC.
	low1 := testEntry(KindSub, nil, nil, 0)
	low1.R, low1.CostEst = 10, 3
	low2 := testEntry(KindSub, nil, nil, 0)
	low2.R, low2.CostEst = 11, 1
	s := PolicyHD.scoreAll([]*Entry{low1, low2}, rValuesOf([]*Entry{low1, low2}))
	if s[0] != 30 || s[1] != 11 {
		t.Errorf("HD low-CoV scores %v, want PINC scores", s)
	}
	// High variability: one huge outlier forces CoV² > 1 → PIN.
	hi1 := testEntry(KindSub, nil, nil, 0)
	hi1.R, hi1.CostEst = 1000, 3
	hi2 := testEntry(KindSub, nil, nil, 0)
	hi2.R, hi2.CostEst = 1, 1
	hi3 := testEntry(KindSub, nil, nil, 0)
	hi3.R, hi3.CostEst = 1, 1
	hi4 := testEntry(KindSub, nil, nil, 0)
	hi4.R, hi4.CostEst = 1, 1
	s = PolicyHD.scoreAll([]*Entry{hi1, hi2, hi3, hi4}, rValuesOf([]*Entry{hi1, hi2, hi3, hi4}))
	if s[0] != 1000 || s[1] != 1 {
		t.Errorf("HD high-CoV scores %v, want PIN scores", s)
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{Capacity: 10, WindowSize: 2, Model: ModelEVI})
	c.Add(testEntry(KindSub, nil, nil, 0))
	c.Add(testEntry(KindSub, nil, nil, 0))
	c.Add(testEntry(KindSub, nil, nil, 0))
	if c.Size() == 0 && c.WindowLen() == 0 {
		t.Fatal("setup failed")
	}
	c.Purge()
	if c.Size() != 0 || c.WindowLen() != 0 {
		t.Fatal("purge left entries")
	}
	_, _, purges, _ := c.Counters()
	if purges != 1 {
		t.Fatalf("purges = %d", purges)
	}
}

func TestForEachWindowFirstAndEarlyStop(t *testing.T) {
	c := New(Config{Capacity: 10, WindowSize: 2})
	c.Add(testEntry(KindSub, nil, nil, 0)) // ID 0
	c.Add(testEntry(KindSub, nil, nil, 0)) // ID 1 → flush both to cache
	c.Add(testEntry(KindSub, nil, nil, 0)) // ID 2 stays in window
	var ids []int
	c.ForEach(func(e *Entry) bool {
		ids = append(ids, e.ID)
		return true
	})
	if len(ids) != 3 || ids[0] != 2 {
		t.Fatalf("ForEach order %v, want window entry (2) first", ids)
	}
	n := 0
	c.ForEach(func(e *Entry) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestValidateSweepsWindowAndCache(t *testing.T) {
	c := New(Config{Capacity: 10, WindowSize: 2})
	e1 := testEntry(KindSub, []int{0}, []int{0}, 0)
	e2 := testEntry(KindSub, []int{0}, []int{0}, 0)
	e3 := testEntry(KindSub, []int{0}, []int{0}, 0)
	c.Add(e1)
	c.Add(e2) // flushed with e1
	c.Add(e3) // in window
	ctrs := countersFor(dataset.Record{Seq: 1, Op: dataset.OpDelete, GraphID: 0})
	c.Validate(ctrs, 1)
	for _, e := range []*Entry{e1, e2, e3} {
		if e.Valid.Get(0) {
			t.Fatal("Validate missed an entry")
		}
		if e.Seq != 1 {
			t.Fatal("Seq not advanced")
		}
	}
	if c.AppliedSeq() != 1 {
		t.Fatalf("AppliedSeq = %d", c.AppliedSeq())
	}
}

func TestParseModelAndPolicy(t *testing.T) {
	if m, err := ParseModel("EVI"); err != nil || m != ModelEVI {
		t.Error("ParseModel EVI failed")
	}
	if m, err := ParseModel("CON"); err != nil || m != ModelCON {
		t.Error("ParseModel CON failed")
	}
	if _, err := ParseModel("x"); err == nil {
		t.Error("bad model accepted")
	}
	if ModelEVI.String() != "EVI" || ModelCON.String() != "CON" {
		t.Error("Model.String wrong")
	}
	for _, p := range []string{"PIN", "PINC", "HD", "LRU", "LFU"} {
		if _, err := ParsePolicy(p); err != nil {
			t.Errorf("ParsePolicy(%s): %v", p, err)
		}
	}
	if _, err := ParsePolicy("RANDOM"); err == nil {
		t.Error("bad policy accepted")
	}
	if KindSub.String() != "sub" || KindSuper.String() != "super" {
		t.Error("Kind.String wrong")
	}
}

func TestRValues(t *testing.T) {
	c := New(Config{Capacity: 10, WindowSize: 3})
	for i, r := range []float64{1, 2, 3, 4} {
		e := testEntry(KindSub, nil, nil, 0)
		e.R = r
		c.Add(e)
		_ = i
	}
	vals := c.RValues()
	if len(vals) != 4 {
		t.Fatalf("RValues len = %d", len(vals))
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("RValues sum = %g", sum)
	}
}
