package cache

import (
	"fmt"
	"sort"

	"gcplus/internal/bitset"
)

// This file implements the inverted invalidation index and the repair
// queue — the data structures behind the background cache-repair
// pipeline.
//
// # Inverted invalidation index
//
// Algorithm 2's original sweep visits every cached entry for every
// logged operation. The index inverts the validity relation: for each
// dataset graph id it records the set of entries whose CGvalid bit
// covers that graph, so the Cache Validator touches exactly the
// (entry, graph) pairs an operation can invalidate — entries whose bit
// is already dead cost nothing. Entry sets are bitsets over *slots*,
// small dense indices recycled as entries are admitted and evicted, so
// the index stays compact no matter how many graph ids or cache
// generations the server has seen.
//
// # Repair queue
//
// Every bit the Validator clears is a candidate for off-path repair:
// re-verifying the (entry.Query, graph) relation against the current
// dataset version restores the bit without waiting for a future query
// to rediscover the fact on the hot path. Cleared pairs are appended to
// a bounded FIFO; the repair pipeline (internal/core + internal/router)
// drains it, re-verifies with forked compiled matchers, and calls
// RestoreBit. When the queue is full, further pairs are dropped and
// counted — a dropped pair simply stays invalid, which is exactly the
// pre-repair behavior.

// invIndex maps a dataset graph id to the slots of entries whose Valid
// bit covers it.
type invIndex struct {
	byGraph map[int]*bitset.Set
}

func newInvIndex() *invIndex {
	return &invIndex{byGraph: make(map[int]*bitset.Set)}
}

func (ix *invIndex) add(id, slot int) {
	s := ix.byGraph[id]
	if s == nil {
		s = bitset.New(slot + 1)
		ix.byGraph[id] = s
	}
	s.Set(slot)
}

func (ix *invIndex) remove(id, slot int) {
	if s := ix.byGraph[id]; s != nil {
		s.Clear(slot)
		if s.None() {
			delete(ix.byGraph, id)
		}
	}
}

// addEntry indexes every valid bit of e.
func (ix *invIndex) addEntry(e *Entry) {
	e.Valid.ForEach(func(id int) bool {
		ix.add(id, e.slot)
		return true
	})
}

// removeEntry drops every valid bit of e from the index.
func (ix *invIndex) removeEntry(e *Entry) {
	e.Valid.ForEach(func(id int) bool {
		ix.remove(id, e.slot)
		return true
	})
}

// pairs returns the total number of (graph, entry) pairs indexed.
func (ix *invIndex) pairs() int {
	n := 0
	for _, s := range ix.byGraph {
		n += s.Count()
	}
	return n
}

// RepairTask identifies one invalidated (entry, graph) pair queued for
// off-path re-verification.
type RepairTask struct {
	// Entry is the cached query whose bit was cleared. It may have been
	// evicted since the pair was queued; RestoreBit checks.
	Entry *Entry
	// GraphID is the dataset graph whose validity bit was cleared.
	GraphID int
}

// assignSlot places e into the slot table, reusing a free slot if any.
func (c *Cache) assignSlot(e *Entry) {
	if n := len(c.freeSlots); n > 0 {
		e.slot = c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		c.slots[e.slot] = e
		return
	}
	e.slot = len(c.slots)
	c.slots = append(c.slots, e)
}

// releaseEntry removes an evicted or purged entry from both indexes and
// returns its slot to the free list. The entry is marked dead so queued
// repair tasks referring to it are skipped.
func (c *Cache) releaseEntry(e *Entry) {
	c.idx.removeEntry(e)
	if c.qidx != nil {
		c.qidx.removeEntry(e)
	}
	c.slots[e.slot] = nil
	c.freeSlots = append(c.freeSlots, e.slot)
	e.dead = true
}

// invalidate clears the (e, id) validity bit, maintains the index, and
// queues the pair for background repair (when a repair queue is
// configured). Caller guarantees the bit is currently set.
func (c *Cache) invalidate(e *Entry, id int) {
	e.Valid.Clear(id)
	c.idx.remove(id, e.slot)
	if c.cfg.RepairQueue <= 0 {
		return
	}
	if len(c.repairQ) >= c.cfg.RepairQueue {
		c.repairDropped++
		return
	}
	c.repairQ = append(c.repairQ, RepairTask{Entry: e, GraphID: id})
}

// PendingRepairs returns the number of queued invalidated pairs.
func (c *Cache) PendingRepairs() int { return len(c.repairQ) }

// DrainRepairs pops up to max queued pairs in FIFO order, skipping
// pairs whose entry has been evicted or purged since they were queued.
func (c *Cache) DrainRepairs(max int) []RepairTask {
	if max <= 0 || len(c.repairQ) == 0 {
		return nil
	}
	out := make([]RepairTask, 0, min(max, len(c.repairQ)))
	i := 0
	for ; i < len(c.repairQ) && len(out) < max; i++ {
		if t := c.repairQ[i]; !t.Entry.dead {
			out = append(out, t)
		}
	}
	c.repairQ = c.repairQ[i:]
	if len(c.repairQ) == 0 {
		c.repairQ = nil // release the drained backing array
	}
	return out
}

// RestoreBit atomically restores one (entry, graph) validity bit after
// an off-path re-verification: the Answer bit is overwritten with the
// freshly verified relation (positive = the entry's recorded relation
// holds for the current graph version) and the Valid bit is set, with
// the invalidation index maintained. It returns false — and changes
// nothing — if the entry has been evicted or purged since the pair was
// queued. Callers own the staleness check on the *graph* side: the bit
// asserted here is a fact about the dataset graph version current at
// call time.
func (c *Cache) RestoreBit(e *Entry, id int, positive bool) bool {
	if e.dead {
		return false
	}
	e.Answer.SetTo(id, positive)
	e.Valid.Set(id)
	c.idx.add(id, e.slot)
	c.repairedBits++
	return true
}

// RefreshEntry overwrites an entry's answer snapshot and validity
// indicator in place — the isomorphic-hit admission path, where a
// just-executed query refreshes its cached twin instead of duplicating
// it. The index is rebuilt for the entry and its recency bumped.
func (c *Cache) RefreshEntry(e *Entry, answer, valid *bitset.Set) {
	c.idx.removeEntry(e)
	e.Answer.CopyFrom(answer)
	e.Valid.CopyFrom(valid)
	e.Seq = c.appliedSeq
	e.LastUsed = c.Tick()
	c.idx.addEntry(e)
}

// RepairCounters reports the lifetime repair counters: bits restored by
// RestoreBit and pairs dropped on a full queue.
func (c *Cache) RepairCounters() (restored, dropped int64) {
	return c.repairedBits, c.repairDropped
}

// ValidityRatio returns the fraction of (entry, live graph) validity
// bits currently set across cache and window — the health metric the
// repair pipeline recovers after update churn. An empty cache (or an
// empty live set) is vacuously fully valid (ratio 1).
func (c *Cache) ValidityRatio(live *bitset.Set) float64 {
	entries := len(c.entries) + len(c.window)
	liveCount := live.Count()
	if entries == 0 || liveCount == 0 {
		return 1
	}
	valid := 0
	c.ForEach(func(e *Entry) bool {
		valid += e.Valid.IntersectionCount(live)
		return true
	})
	return float64(valid) / float64(entries*liveCount)
}

// CheckIndex verifies the invalidation-index invariant: the index holds
// exactly the pairs {(id, e) : e alive ∧ e.Valid(id)}, every live entry
// occupies its slot, and no dead entry is referenced. Tests call it
// (via testutil.RequireCacheIndex) after every mutation sequence. A nil
// receiver (cache disabled) trivially passes, so helpers can check a
// runtime's cache without caring whether one exists.
func (c *Cache) CheckIndex() error {
	if c == nil {
		return nil
	}
	seen := 0
	err := func() error {
		var failed error
		c.ForEach(func(e *Entry) bool {
			if e.dead {
				failed = fmt.Errorf("cache: live entry #%d marked dead", e.ID)
				return false
			}
			if e.slot < 0 || e.slot >= len(c.slots) || c.slots[e.slot] != e {
				failed = fmt.Errorf("cache: entry #%d slot %d does not map back to it", e.ID, e.slot)
				return false
			}
			var badID int = -1
			e.Valid.ForEach(func(id int) bool {
				s := c.idx.byGraph[id]
				if s == nil || !s.Get(e.slot) {
					badID = id
					return false
				}
				return true
			})
			if badID >= 0 {
				failed = fmt.Errorf("cache: entry #%d valid on graph %d but not indexed", e.ID, badID)
				return false
			}
			seen += e.Valid.Count()
			return true
		})
		return failed
	}()
	if err != nil {
		return err
	}
	if got := c.idx.pairs(); got != seen {
		return fmt.Errorf("cache: index holds %d pairs, entries hold %d valid bits", got, seen)
	}
	for _, t := range c.repairQ {
		if t.Entry == nil {
			return fmt.Errorf("cache: nil entry in repair queue")
		}
	}
	return nil
}

// slotsAscending returns the live entries for the given slot set in
// ascending slot order — the deterministic iteration order the Validator
// uses so repair-queue contents do not depend on map iteration.
func (c *Cache) slotsAscending(s *bitset.Set) []*Entry {
	out := make([]*Entry, 0, s.Count())
	s.ForEach(func(slot int) bool {
		if e := c.slots[slot]; e != nil {
			out = append(out, e)
		}
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
