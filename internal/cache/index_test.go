package cache

import (
	"math/rand"
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
)

// requireIndex is the in-package form of testutil.RequireCacheIndex
// (testutil imports cache, so cache's own tests cannot import it back).
func requireIndex(t *testing.T, c *Cache) {
	t.Helper()
	if err := c.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}

func randomEntry(rng *rand.Rand, maxID int) *Entry {
	kind := KindSub
	if rng.Intn(2) == 1 {
		kind = KindSuper
	}
	answer := bitset.New(maxID)
	valid := bitset.New(maxID)
	for id := 0; id < maxID; id++ {
		if rng.Intn(2) == 0 {
			valid.Set(id)
		}
		if rng.Intn(3) == 0 {
			answer.Set(id)
		}
	}
	e := NewEntry(graph.Path(1, 2), kind, answer, valid, 0, 1)
	e.R = float64(rng.Intn(50))
	return e
}

// TestIndexAcrossAdmitEvictPurge drives the full entry lifecycle —
// admission, window flush, eviction, validation, repair restore, purge —
// checking the invalidation-index invariant after every mutation.
func TestIndexAcrossAdmitEvictPurge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(Config{Capacity: 8, WindowSize: 3, Policy: PolicyPIN, RepairQueue: 64})
	const maxID = 12
	for i := 0; i < 40; i++ {
		c.Add(randomEntry(rng, maxID))
		requireIndex(t, c)
		if rng.Intn(4) == 0 {
			id := rng.Intn(maxID)
			op := dataset.OpUpdateAddEdge
			if rng.Intn(2) == 0 {
				op = dataset.OpUpdateRemoveEdge
			}
			seq := c.AppliedSeq() + 1
			c.Validate(dataset.Analyze([]dataset.Record{{Seq: seq, Op: op, GraphID: id}}), seq)
			requireIndex(t, c)
		}
		if rng.Intn(5) == 0 {
			for _, task := range c.DrainRepairs(4) {
				c.RestoreBit(task.Entry, task.GraphID, rng.Intn(2) == 0)
				requireIndex(t, c)
			}
		}
	}
	if c.Size() != 8 {
		t.Fatalf("size %d, want capacity 8", c.Size())
	}
	c.Purge()
	requireIndex(t, c)
	if c.PendingRepairs() != 0 {
		t.Fatalf("purge left %d queued repairs", c.PendingRepairs())
	}
	// The cache remains usable after a purge: slots are recycled.
	c.Add(randomEntry(rng, maxID))
	requireIndex(t, c)
}

// TestValidateMatchesRefreshReference is the differential check of the
// index-based Validator: its effect on every entry must be bit-identical
// to the reference per-entry Refresh/RefreshStrict sweep.
func TestValidateMatchesRefreshReference(t *testing.T) {
	for _, strict := range []bool{false, true} {
		rng := rand.New(rand.NewSource(11))
		c := New(Config{Capacity: 10, WindowSize: 4, StrictInvalidation: strict})
		const maxID = 10
		var refs []*Entry // parallel clones refreshed with the reference code
		for i := 0; i < 12; i++ {
			e := randomEntry(rng, maxID)
			ref := NewEntry(e.Query, e.Kind, e.Answer, e.Valid, e.Seq, e.CostEst)
			c.Add(e)
			refs = append(refs, ref)
		}
		var recs []dataset.Record
		seq := uint64(0)
		for id := 0; id < maxID; id++ {
			for n := rng.Intn(3); n > 0; n-- {
				seq++
				recs = append(recs, dataset.Record{
					Seq: seq, Op: dataset.OpType(rng.Intn(4)), GraphID: id,
				})
			}
		}
		ctrs := dataset.Analyze(recs)
		c.Validate(ctrs, seq)
		requireIndex(t, c)

		byID := map[int]*Entry{}
		c.ForEach(func(e *Entry) bool {
			byID[e.ID] = e
			return true
		})
		for i := 0; i < len(refs); i++ {
			e, ok := byID[i]
			if !ok {
				continue // evicted; reference has nothing to compare against
			}
			ref := refs[i]
			if strict {
				ref.RefreshStrict(ctrs, seq)
			} else {
				ref.Refresh(ctrs, seq)
			}
			if !e.Valid.Equal(ref.Valid) {
				t.Fatalf("strict=%v entry %d: Validate got %v, Refresh reference %v",
					strict, i, e.Valid.Indices(), ref.Valid.Indices())
			}
			if e.Seq != seq {
				t.Fatalf("strict=%v entry %d: Seq %d, want %d", strict, i, e.Seq, seq)
			}
		}
	}
}

// TestWindowFlushAtExactCapacity flushes a window that lands the cache
// exactly at capacity: nothing may be evicted.
func TestWindowFlushAtExactCapacity(t *testing.T) {
	c := New(Config{Capacity: 4, WindowSize: 2, Policy: PolicyPIN})
	for i := 0; i < 4; i++ {
		c.Add(testEntry(KindSub, nil, []int{0}, 0))
	}
	if c.Size() != 4 || c.WindowLen() != 0 {
		t.Fatalf("size=%d window=%d, want 4/0", c.Size(), c.WindowLen())
	}
	_, evicted, _, _ := c.Counters()
	if evicted != 0 {
		t.Fatalf("evicted %d entries at exact capacity", evicted)
	}
	requireIndex(t, c)
	// One more flush pushes past capacity and must evict exactly the
	// overflow.
	c.Add(testEntry(KindSub, nil, []int{0}, 0))
	c.Add(testEntry(KindSub, nil, []int{0}, 0))
	if c.Size() != 4 {
		t.Fatalf("size %d after overflow flush, want 4", c.Size())
	}
	_, evicted, _, _ = c.Counters()
	if evicted != 2 {
		t.Fatalf("evicted %d, want 2", evicted)
	}
	requireIndex(t, c)
}

// TestEvictionTiesAllEqual: with every score equal the tiebreak must
// evict the oldest IDs, deterministically.
func TestEvictionTiesAllEqual(t *testing.T) {
	c := New(Config{Capacity: 2, WindowSize: 5, Policy: PolicyLFU})
	for i := 0; i < 5; i++ {
		c.Add(testEntry(KindSub, nil, nil, 0)) // Hits all zero → all tied
	}
	var kept []int
	c.ForEach(func(e *Entry) bool {
		kept = append(kept, e.ID)
		return true
	})
	if len(kept) != 2 || kept[0] != 3 || kept[1] != 4 {
		t.Fatalf("kept %v, want [3 4] (oldest evicted on ties)", kept)
	}
	requireIndex(t, c)
}

// TestRValuesEmptyCache: the R snapshot of an empty cache is empty, not
// nil-dereferencing or fabricated.
func TestRValuesEmptyCache(t *testing.T) {
	c := New(Config{})
	if vals := c.RValues(); len(vals) != 0 {
		t.Fatalf("RValues on empty cache = %v", vals)
	}
	if ratio := c.ValidityRatio(bitset.FromIndices(0, 1)); ratio != 1 {
		t.Fatalf("empty-cache validity ratio %v, want vacuous 1", ratio)
	}
}

// TestRepairQueueBoundAndDrain checks the queue bound (drops counted,
// validator never blocked), FIFO drain order, and dead-entry skipping.
func TestRepairQueueBoundAndDrain(t *testing.T) {
	c := New(Config{Capacity: 10, WindowSize: 2, RepairQueue: 3})
	e1 := testEntry(KindSub, []int{0, 1, 2}, []int{0, 1, 2, 3}, 0)
	e2 := testEntry(KindSub, []int{0, 1, 2}, []int{0, 1, 2, 3}, 0)
	c.Add(e1)
	c.Add(e2)
	// DELs invalidate every bit: 8 clears chase a queue of 3.
	recs := []dataset.Record{
		{Seq: 1, Op: dataset.OpDelete, GraphID: 0},
		{Seq: 2, Op: dataset.OpDelete, GraphID: 1},
		{Seq: 3, Op: dataset.OpDelete, GraphID: 2},
		{Seq: 4, Op: dataset.OpDelete, GraphID: 3},
	}
	c.Validate(dataset.Analyze(recs), 4)
	requireIndex(t, c)
	if c.PendingRepairs() != 3 {
		t.Fatalf("pending %d, want 3 (bounded)", c.PendingRepairs())
	}
	_, dropped := c.RepairCounters()
	if dropped != 5 {
		t.Fatalf("dropped %d, want 5", dropped)
	}
	tasks := c.DrainRepairs(2)
	if len(tasks) != 2 || c.PendingRepairs() != 1 {
		t.Fatalf("drained %d pending %d, want 2/1", len(tasks), c.PendingRepairs())
	}
	// FIFO: the first cleared pairs come out first; the validator clears
	// in ascending entry-ID order per graph.
	if tasks[0].Entry.ID > tasks[1].Entry.ID ||
		(tasks[0].Entry.ID == tasks[1].Entry.ID && tasks[0].GraphID >= tasks[1].GraphID) {
		t.Fatalf("drain not FIFO: %v then %v", tasks[0], tasks[1])
	}

	// Restore works and maintains the index; restoring on a dead entry
	// is refused.
	if !c.RestoreBit(tasks[0].Entry, tasks[0].GraphID, true) {
		t.Fatal("RestoreBit refused a live entry")
	}
	requireIndex(t, c)
	if !tasks[0].Entry.Valid.Get(tasks[0].GraphID) || !tasks[0].Entry.Answer.Get(tasks[0].GraphID) {
		t.Fatal("RestoreBit did not set the bits")
	}
	restored, _ := c.RepairCounters()
	if restored != 1 {
		t.Fatalf("restored counter %d, want 1", restored)
	}

	c.Purge()
	if c.PendingRepairs() != 0 {
		t.Fatal("purge must clear the repair queue")
	}
	if c.RestoreBit(e1, 0, true) {
		t.Fatal("RestoreBit resurrected a purged entry")
	}
	requireIndex(t, c)
}

// TestRefreshEntryReindexes: the iso-hit refresh path must rebuild the
// index for the rewritten bitsets.
func TestRefreshEntryReindexes(t *testing.T) {
	c := New(Config{Capacity: 4, WindowSize: 2})
	e := testEntry(KindSub, []int{0}, []int{0, 1}, 0)
	c.Add(e)
	c.RefreshEntry(e, bitset.FromIndices(2), bitset.FromIndices(2, 3, 4))
	requireIndex(t, c)
	if got := e.Valid.String(); got != "{2, 3, 4}" {
		t.Fatalf("Valid after refresh = %s", got)
	}
	if got := e.Answer.String(); got != "{2}" {
		t.Fatalf("Answer after refresh = %s", got)
	}
}
