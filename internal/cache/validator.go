package cache

import (
	"sort"

	"gcplus/internal/dataset"
)

// This file implements the Cache Validator component — Algorithm 2 of the
// paper ("Refreshing a cached graph's validity indicator") — generalized
// to both query kinds.
//
// For a cached subgraph query g and a dataset graph Gi touched by the log:
//
//   - if the operations on Gi were exclusively UA (edge additions) and the
//     cached result is a valid positive (g ⊆ Gi), the bit survives: adding
//     edges cannot destroy an embedding of g in Gi;
//   - if the operations were exclusively UR (edge removals) and the cached
//     result is a valid negative (g ⊄ Gi), the bit survives: an embedding
//     into the shrunken Gi would also be an embedding into the original;
//   - everything else — DEL, ADD (a fresh id can collide with CT only via
//     its own creation), mixed UA+UR — turns the bit off.
//
// For a cached supergraph query (Answer records Gi ⊆ g) the two survival
// rules swap roles, by the same monotonicity arguments applied on the
// other side of the relation:
//
//   - UR-exclusive preserves positives: Gi ⊆ g and Gi shrinks ⇒ the
//     smaller Gi is a subgraph of the old Gi, hence still ⊆ g;
//   - UA-exclusive preserves negatives: Gi ⊄ g and Gi grows ⇒ if the
//     grown Gi embedded into g, so would its subgraph, the old Gi.
//
// New dataset ids carry no information about older cached queries: their
// validity bits are (implicitly) false — bitset.Get beyond the written
// range returns false, which realizes Algorithm 2's lines 4–6 without an
// explicit extension step.

// Refresh applies Algorithm 2 to a single entry using the Log Analyzer's
// counters, and advances the entry's reflected sequence number to seq.
func (e *Entry) Refresh(c *dataset.Counters, seq uint64) {
	e.refresh(c, seq, false)
}

// RefreshStrict invalidates every touched bit without the UA/UR-exclusive
// survival rules — the ablated Algorithm 2 used to quantify how much of
// CON's benefit the optimizations contribute (still correct, strictly
// more conservative).
func (e *Entry) RefreshStrict(c *dataset.Counters, seq uint64) {
	e.refresh(c, seq, true)
}

func (e *Entry) refresh(c *dataset.Counters, seq uint64, strict bool) {
	for id := range c.Total {
		if strict {
			e.Valid.Clear(id)
			continue
		}
		keepPositive := c.UAExclusive(id)
		keepNegative := c.URExclusive(id)
		if e.Kind == KindSuper {
			keepPositive, keepNegative = keepNegative, keepPositive
		}
		switch {
		case keepPositive && e.Valid.Get(id) && e.Answer.Get(id):
			// validity survives (Algorithm 2 line 12–13)
		case keepNegative && e.Valid.Get(id) && !e.Answer.Get(id):
			// validity survives (Algorithm 2 line 14–15)
		default:
			e.Valid.Clear(id) // Algorithm 2 line 17
		}
	}
	e.Seq = seq
}

// Validate runs the Cache Validator over every cached and windowed entry
// (the paper: "cached graphs/queries by default cover those previous
// queries in both cache and window"). Counters must describe exactly the
// log records in (AppliedSeq, seq]. When the cache was configured with
// StrictInvalidation, the ablated rule is used.
//
// Unlike the per-entry Refresh sweep (kept above as the reference
// semantics), Validate consults the inverted invalidation index: for
// each touched graph id it visits only the entries whose Valid bit
// actually covers that id — entries with a dead bit need no work, since
// Algorithm 2 can only ever *clear* bits. Each bit it clears is queued
// for background repair (when configured). The result is bit-identical
// to running Refresh/RefreshStrict on every entry.
func (c *Cache) Validate(ctrs *dataset.Counters, seq uint64) {
	strict := c.cfg.StrictInvalidation
	touched := ctrs.TouchedIDs()
	sort.Ints(touched) // counters are a map; fix the order so the repair queue is deterministic
	for _, id := range touched {
		slots := c.idx.byGraph[id]
		if slots == nil {
			continue // no entry holds a live bit for this graph
		}
		keepPositive := ctrs.UAExclusive(id)
		keepNegative := ctrs.URExclusive(id)
		// Materialize in deterministic order before clearing: clearing
		// mutates the very slot set being iterated, and the repair queue
		// must not depend on map or mutation order.
		for _, e := range c.slotsAscending(slots) {
			kp, kn := keepPositive, keepNegative
			if e.Kind == KindSuper {
				kp, kn = kn, kp
			}
			positive := e.Answer.Get(id)
			if !strict && ((kp && positive) || (kn && !positive)) {
				continue // validity survives (Algorithm 2 lines 12–15)
			}
			c.invalidate(e, id) // Algorithm 2 line 17, repair-queued
		}
	}
	for _, e := range c.entries {
		e.Seq = seq
	}
	for _, e := range c.window {
		e.Seq = seq
	}
	c.appliedSeq = seq
}
