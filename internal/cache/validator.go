package cache

import "gcplus/internal/dataset"

// This file implements the Cache Validator component — Algorithm 2 of the
// paper ("Refreshing a cached graph's validity indicator") — generalized
// to both query kinds.
//
// For a cached subgraph query g and a dataset graph Gi touched by the log:
//
//   - if the operations on Gi were exclusively UA (edge additions) and the
//     cached result is a valid positive (g ⊆ Gi), the bit survives: adding
//     edges cannot destroy an embedding of g in Gi;
//   - if the operations were exclusively UR (edge removals) and the cached
//     result is a valid negative (g ⊄ Gi), the bit survives: an embedding
//     into the shrunken Gi would also be an embedding into the original;
//   - everything else — DEL, ADD (a fresh id can collide with CT only via
//     its own creation), mixed UA+UR — turns the bit off.
//
// For a cached supergraph query (Answer records Gi ⊆ g) the two survival
// rules swap roles, by the same monotonicity arguments applied on the
// other side of the relation:
//
//   - UR-exclusive preserves positives: Gi ⊆ g and Gi shrinks ⇒ the
//     smaller Gi is a subgraph of the old Gi, hence still ⊆ g;
//   - UA-exclusive preserves negatives: Gi ⊄ g and Gi grows ⇒ if the
//     grown Gi embedded into g, so would its subgraph, the old Gi.
//
// New dataset ids carry no information about older cached queries: their
// validity bits are (implicitly) false — bitset.Get beyond the written
// range returns false, which realizes Algorithm 2's lines 4–6 without an
// explicit extension step.

// Refresh applies Algorithm 2 to a single entry using the Log Analyzer's
// counters, and advances the entry's reflected sequence number to seq.
func (e *Entry) Refresh(c *dataset.Counters, seq uint64) {
	e.refresh(c, seq, false)
}

// RefreshStrict invalidates every touched bit without the UA/UR-exclusive
// survival rules — the ablated Algorithm 2 used to quantify how much of
// CON's benefit the optimizations contribute (still correct, strictly
// more conservative).
func (e *Entry) RefreshStrict(c *dataset.Counters, seq uint64) {
	e.refresh(c, seq, true)
}

func (e *Entry) refresh(c *dataset.Counters, seq uint64, strict bool) {
	for id := range c.Total {
		if strict {
			e.Valid.Clear(id)
			continue
		}
		keepPositive := c.UAExclusive(id)
		keepNegative := c.URExclusive(id)
		if e.Kind == KindSuper {
			keepPositive, keepNegative = keepNegative, keepPositive
		}
		switch {
		case keepPositive && e.Valid.Get(id) && e.Answer.Get(id):
			// validity survives (Algorithm 2 line 12–13)
		case keepNegative && e.Valid.Get(id) && !e.Answer.Get(id):
			// validity survives (Algorithm 2 line 14–15)
		default:
			e.Valid.Clear(id) // Algorithm 2 line 17
		}
	}
	e.Seq = seq
}

// Validate runs the Cache Validator over every cached and windowed entry
// (the paper: "cached graphs/queries by default cover those previous
// queries in both cache and window"). Counters must describe exactly the
// log records in (AppliedSeq, seq]. When the cache was configured with
// StrictInvalidation, the ablated rule is used.
func (c *Cache) Validate(ctrs *dataset.Counters, seq uint64) {
	refresh := (*Entry).Refresh
	if c.cfg.StrictInvalidation {
		refresh = (*Entry).RefreshStrict
	}
	for _, e := range c.entries {
		refresh(e, ctrs, seq)
	}
	for _, e := range c.window {
		refresh(e, ctrs, seq)
	}
	c.appliedSeq = seq
}
