package cache

import (
	"math/rand"
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/dataset"
	"gcplus/internal/subiso"
)

// buildRelatedCache fills a cache the way the runtime does: every
// admission carries its true hit classification against the live
// same-kind entries (brute-force containment ground truth), so the
// relation graph is complete and the repeated-query fast path is live.
func buildRelatedCache(t *testing.T, cfg Config, n int, seed int64) *Cache {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := New(cfg)
	oracle := subiso.Brute{}
	for i := 0; i < n; i++ {
		e := randomQueryEntry(rng)
		e.R = float64(rng.Intn(50))
		e.Hits = int64(rng.Intn(5))
		e.LastUsed = c.Tick()
		var containing, contained []*Entry
		c.ForEach(func(o *Entry) bool {
			if o.Kind != e.Kind {
				return true
			}
			if oracle.Contains(o.Query, e.Query) {
				containing = append(containing, o)
			}
			if oracle.Contains(e.Query, o.Query) {
				contained = append(contained, o)
			}
			return true
		})
		c.AddWithRelations(e, containing, contained)
	}
	return c
}

// snapshotStats compares the observable state of two caches.
func requireSameCacheState(t *testing.T, a, b *Cache) {
	t.Helper()
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Fatalf("stats differ:\n a: %+v\n b: %+v", sa, sb)
	}
	var ea, eb []*Entry
	a.ForEach(func(e *Entry) bool { ea = append(ea, e); return true })
	b.ForEach(func(e *Entry) bool { eb = append(eb, e); return true })
	if len(ea) != len(eb) {
		t.Fatalf("entry count %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		x, y := ea[i], eb[i]
		if x.ID != y.ID || x.Kind != y.Kind || x.Seq != y.Seq ||
			x.R != y.R || x.CostEst != y.CostEst || x.Hits != y.Hits || x.LastUsed != y.LastUsed ||
			!x.Answer.Equal(y.Answer) || !x.Valid.Equal(y.Valid) ||
			!x.Fp.SubsumedBy(y.Fp) || !y.Fp.SubsumedBy(x.Fp) {
			t.Fatalf("entry %d differs:\n a: %v\n b: %v", i, x, y)
		}
	}
}

func TestCacheExportRestoreRoundTrip(t *testing.T) {
	cfg := Config{Capacity: 30, WindowSize: 7, RepairQueue: 64}
	c := buildRelatedCache(t, cfg, 80, 11)
	requireQueryIndex(t, c)

	// Invalidate some bits so the export carries a repair queue and a
	// non-trivial validity pattern.
	ctrs := dataset.Analyze([]dataset.Record{
		{Seq: 1, Op: dataset.OpDelete, GraphID: 1},
		{Seq: 2, Op: dataset.OpUpdateAddEdge, GraphID: 2, U: 0, V: 1},
	})
	c.Validate(ctrs, 2)
	c.NoteValidation()
	requireQueryIndex(t, c)
	if c.PendingRepairs() == 0 {
		t.Fatal("test needs a non-empty repair queue")
	}

	snap := c.Export()
	r := New(cfg)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	requireQueryIndex(t, r)
	requireSameCacheState(t, c, r)

	// The memoized relation graph must replay identically: for every
	// entry, ForEachRelated visits the same ids with the same flags.
	var entries []*Entry
	c.ForEach(func(e *Entry) bool { entries = append(entries, e); return true })
	var restored []*Entry
	r.ForEach(func(e *Entry) bool { restored = append(restored, e); return true })
	for i := range entries {
		type rel struct {
			id                    int
			contains, containedIn bool
		}
		var ra, rb []rel
		na, oka := c.ForEachRelated(entries[i], func(e *Entry, contains, containedIn bool) bool {
			ra = append(ra, rel{e.ID, contains, containedIn})
			return true
		})
		nb, okb := r.ForEachRelated(restored[i], func(e *Entry, contains, containedIn bool) bool {
			rb = append(rb, rel{e.ID, contains, containedIn})
			return true
		})
		if na != nb || oka != okb || len(ra) != len(rb) {
			t.Fatalf("entry %d: relations visited %d/%v vs %d/%v", i, na, oka, nb, okb)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("entry %d relation %d: %+v vs %+v", i, j, ra[j], rb[j])
			}
		}
	}

	// The restored repair queue drains the same pairs.
	da, db := c.DrainRepairs(1000), r.DrainRepairs(1000)
	if len(da) != len(db) {
		t.Fatalf("repair queues %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i].GraphID != db[i].GraphID || da[i].Entry.ID != db[i].Entry.ID {
			t.Fatalf("repair pair %d: (%d,%d) vs (%d,%d)",
				i, da[i].Entry.ID, da[i].GraphID, db[i].Entry.ID, db[i].GraphID)
		}
	}

	// Restored caches keep evolving correctly: admissions, eviction and
	// purge hold the index invariants.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		r.Add(randomQueryEntry(rng))
	}
	requireQueryIndex(t, r)
	r.Purge()
	requireQueryIndex(t, r)
}

func TestCacheRestoreIntoIndexlessConfig(t *testing.T) {
	c := buildRelatedCache(t, Config{Capacity: 20, WindowSize: 5}, 30, 3)
	snap := c.Export()
	r := New(Config{Capacity: 20, WindowSize: 5, DisableHitIndex: true})
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	requireQueryIndex(t, r) // trivially passes with the index off
	if r.QueryIndexEnabled() {
		t.Fatal("index-off cache reports an index")
	}
	requireSameCacheState(t, c, r)
}

func TestCacheRestoreRejects(t *testing.T) {
	c := buildRelatedCache(t, Config{Capacity: 10, WindowSize: 4}, 6, 9)
	snap := c.Export()

	nonEmpty := New(Config{})
	nonEmpty.Add(NewEntry(randomQueryGraph(rand.New(rand.NewSource(1))), KindSub,
		bitset.New(1), bitset.FromIndices(0), 0, 1))
	if err := nonEmpty.Restore(snap); err == nil {
		t.Fatal("restore into a non-empty cache accepted")
	}

	bad := *snap
	bad.WindowStart = len(snap.Entries) + 1
	if err := New(Config{}).Restore(&bad); err == nil {
		t.Fatal("out-of-range window start accepted")
	}

	// An out-of-range relation index must error, not panic.
	bad2 := c.Export()
	bad2.Entries[len(bad2.Entries)-1].Sup = []int{999}
	if err := New(Config{}).Restore(bad2); err == nil {
		t.Fatal("out-of-range relation index accepted")
	}
}

// TestCacheRestoreWithoutRelations pins the bare-Add degradation: a
// cache whose entries were admitted without relations restores with the
// fast path disabled, exactly like the original.
func TestCacheRestoreWithoutRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := New(Config{Capacity: 10, WindowSize: 4})
	for i := 0; i < 12; i++ {
		c.Add(randomQueryEntry(rng))
	}
	snap := c.Export()
	if !snap.RelIncomplete {
		t.Fatal("bare admissions should mark relations incomplete")
	}
	r := New(Config{Capacity: 10, WindowSize: 4})
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	requireQueryIndex(t, r)
	var base *Entry
	r.ForEach(func(e *Entry) bool { base = e; return false })
	if _, ok := r.ForEachRelated(base, func(*Entry, bool, bool) bool { return true }); ok {
		t.Fatal("relation fast path usable after relation-less restore")
	}
}
