package feature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcplus/internal/graph"
	"gcplus/internal/subiso"
)

func TestBasicAccessors(t *testing.T) {
	f := Of(graph.Path(1, 2, 3))
	if f.Vertices() != 3 || f.Edges() != 2 {
		t.Fatalf("got |V|=%d |E|=%d", f.Vertices(), f.Edges())
	}
}

func TestSubsumedByObviousCases(t *testing.T) {
	small := Of(graph.Path(1, 2))
	big := Of(graph.Path(1, 2, 3))
	if !small.SubsumedBy(big) {
		t.Error("P2 fingerprint should be subsumed by P3's")
	}
	if big.SubsumedBy(small) {
		t.Error("P3 fingerprint must not be subsumed by P2's")
	}
	if !small.SubsumedBy(small) {
		t.Error("fingerprint should subsume itself")
	}
}

func TestSubsumedByLabelSensitive(t *testing.T) {
	a := Of(graph.Path(1, 1))
	b := Of(graph.Path(1, 2, 2))
	// a needs two vertices labelled 1; b only has one
	if a.SubsumedBy(b) {
		t.Error("label multiset violation not caught")
	}
}

func TestSubsumedByEdgePairSensitive(t *testing.T) {
	// same vertex labels, different edge wiring:
	// a: 1-1 edge; b: path 1-2-1 has only (1,2) edges
	a := Of(graph.Path(1, 1))
	bld := graph.NewBuilder()
	bld.AddVertex(1)
	bld.AddVertex(2)
	bld.AddVertex(1)
	bld.AddEdge(0, 1)
	bld.AddEdge(1, 2)
	b := Of(bld.MustBuild())
	if a.SubsumedBy(b) {
		t.Error("edge label-pair violation not caught")
	}
}

func TestSubsumedByDegreeSensitive(t *testing.T) {
	star := Of(graph.Star(1, 1, 1, 1)) // center degree 3
	path := Of(graph.Path(1, 1, 1, 1)) // max degree 2
	if star.SubsumedBy(path) {
		t.Error("degree sequence violation not caught")
	}
}

func TestSameSize(t *testing.T) {
	a := Of(graph.Path(1, 2, 3))
	b := Of(graph.Cycle(1, 2, 3))
	if a.SameSize(b) {
		t.Error("P3 and C3 differ in edges")
	}
	c := Of(graph.Path(3, 2, 1))
	if !a.SameSize(c) {
		t.Error("same-size graphs not recognized")
	}
}

func randomGraph(rng *rand.Rand, maxN, labels int, p float64) *graph.Graph {
	n := 1 + rng.Intn(maxN)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// TestQuickSoundness is the load-bearing property: containment must imply
// fingerprint subsumption (no false negatives for the prefilter).
func TestQuickSoundness(t *testing.T) {
	oracle := subiso.Brute{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := randomGraph(rng, 6, 3, 0.4)
		tgt := randomGraph(rng, 10, 3, 0.35)
		if oracle.Contains(pat, tgt) && !Of(pat).SubsumedBy(Of(tgt)) {
			t.Logf("soundness violated at seed %d", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelectivity sanity-checks that the filter actually rejects a
// decent share of non-containments (it is a heuristic, so only a loose
// bound is asserted).
func TestQuickSelectivity(t *testing.T) {
	oracle := subiso.Brute{}
	rng := rand.New(rand.NewSource(17))
	rejected, negatives := 0, 0
	for i := 0; i < 500; i++ {
		pat := randomGraph(rng, 6, 3, 0.4)
		tgt := randomGraph(rng, 10, 3, 0.35)
		if !oracle.Contains(pat, tgt) {
			negatives++
			if !Of(pat).SubsumedBy(Of(tgt)) {
				rejected++
			}
		}
	}
	if negatives == 0 {
		t.Skip("no negatives generated")
	}
	if float64(rejected)/float64(negatives) < 0.3 {
		t.Errorf("filter rejected only %d/%d negatives", rejected, negatives)
	}
}
