// Package feature computes containment-monotone fingerprints of graphs.
//
// GC+'s query processors must discover, for a new query g, the cached
// queries g′ with g ⊆ g′ and the cached g″ with g″ ⊆ g (Result_sub and
// Result_super of §6). Testing sub-isomorphism against every cached query
// would be wasteful, so — standing in for the query index of the original
// GraphCache — each cached query carries a fingerprint for which
//
//	g1 ⊆ g2  ⇒  Fingerprint(g1).SubsumedBy(Fingerprint(g2))
//
// holds (the converse need not). The fingerprint combines vertex/edge
// counts, the descending degree sequence, per-label vertex counts and
// per-label-pair edge counts; each component is monotone under subgraph
// embedding, so SubsumedBy is a sound necessary condition usable as a
// prefilter in both directions.
package feature

import (
	"sort"

	"gcplus/internal/graph"
)

// Fingerprint is a containment-monotone summary of one graph.
type Fingerprint struct {
	vertices int
	edges    int
	// degrees is the degree sequence, sorted descending.
	degrees []int32
	// labels holds per-label vertex counts, sorted by label.
	labels []labelCount
	// pairs holds per-label-pair edge counts, sorted by key.
	pairs []pairCount
}

type labelCount struct {
	label graph.Label
	count int32
}

type pairCount struct {
	key   uint64 // min label << 32 | max label
	count int32
}

// Of computes the fingerprint of g.
func Of(g *graph.Graph) *Fingerprint {
	f := &Fingerprint{
		vertices: g.NumVertices(),
		edges:    g.NumEdges(),
		degrees:  make([]int32, g.NumVertices()),
	}
	lc := make(map[graph.Label]int32, 8)
	for v := 0; v < g.NumVertices(); v++ {
		f.degrees[v] = int32(g.Degree(v))
		lc[g.Label(v)]++
	}
	sort.Slice(f.degrees, func(i, j int) bool { return f.degrees[i] > f.degrees[j] })
	f.labels = make([]labelCount, 0, len(lc))
	for l, c := range lc {
		f.labels = append(f.labels, labelCount{l, c})
	}
	sort.Slice(f.labels, func(i, j int) bool { return f.labels[i].label < f.labels[j].label })

	pc := make(map[uint64]int32, 8)
	for _, e := range g.EdgeList() {
		la, lb := g.Label(int(e.U)), g.Label(int(e.V))
		if la > lb {
			la, lb = lb, la
		}
		pc[uint64(la)<<32|uint64(lb)]++
	}
	f.pairs = make([]pairCount, 0, len(pc))
	for k, c := range pc {
		f.pairs = append(f.pairs, pairCount{k, c})
	}
	sort.Slice(f.pairs, func(i, j int) bool { return f.pairs[i].key < f.pairs[j].key })
	return f
}

// Vertices returns |V|.
func (f *Fingerprint) Vertices() int { return f.vertices }

// Edges returns |E|.
func (f *Fingerprint) Edges() int { return f.edges }

// SubsumedBy reports whether every fingerprint component of f is
// dominated by o's — a necessary condition for the underlying graph of f
// being subgraph-isomorphic to that of o.
func (f *Fingerprint) SubsumedBy(o *Fingerprint) bool {
	if f.vertices > o.vertices || f.edges > o.edges {
		return false
	}
	// k-th largest degree must be dominated (valid because an embedding
	// pairs every pattern vertex with a target vertex of ≥ degree, and
	// sorted sequences preserve pairwise domination).
	for k, d := range f.degrees {
		if d > o.degrees[k] {
			return false
		}
	}
	// per-label vertex counts
	i, j := 0, 0
	for i < len(f.labels) {
		if j == len(o.labels) || f.labels[i].label < o.labels[j].label {
			return false // label missing in o
		}
		if f.labels[i].label > o.labels[j].label {
			j++
			continue
		}
		if f.labels[i].count > o.labels[j].count {
			return false
		}
		i++
		j++
	}
	// per-label-pair edge counts
	i, j = 0, 0
	for i < len(f.pairs) {
		if j == len(o.pairs) || f.pairs[i].key < o.pairs[j].key {
			return false
		}
		if f.pairs[i].key > o.pairs[j].key {
			j++
			continue
		}
		if f.pairs[i].count > o.pairs[j].count {
			return false
		}
		i++
		j++
	}
	return true
}

// SameSize reports whether f and o describe graphs with identical vertex
// and edge counts — with SubsumedBy in one direction this witnesses the
// "same number of nodes and edges" test of the paper's exact-match optimal
// case (§6.3).
func (f *Fingerprint) SameSize(o *Fingerprint) bool {
	return f.vertices == o.vertices && f.edges == o.edges
}
