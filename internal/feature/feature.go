// Package feature computes containment-monotone fingerprints of graphs.
//
// GC+'s query processors must discover, for a new query g, the cached
// queries g′ with g ⊆ g′ and the cached g″ with g″ ⊆ g (Result_sub and
// Result_super of §6). Testing sub-isomorphism against every cached query
// would be wasteful, so each cached query carries a fingerprint for which
//
//	g1 ⊆ g2  ⇒  Fingerprint(g1).SubsumedBy(Fingerprint(g2))
//
// holds (the converse need not). The fingerprint combines vertex/edge
// counts, the descending degree sequence, per-label vertex counts and
// per-label-pair edge counts; each component is monotone under subgraph
// embedding, so SubsumedBy is a sound necessary condition usable as a
// prefilter in both directions.
//
// The fingerprint decides the *pairwise* prefilter; the cache-side query
// index (internal/cache/qindex.go — the reproduction's analogue of the
// original GraphCache's query index) answers the *set* question "which
// fingerprints could pass" without touching every entry, using postings
// over the same monotone features.
package feature

import (
	"sort"

	"gcplus/internal/graph"
)

// Fingerprint is a containment-monotone summary of one graph.
type Fingerprint struct {
	// sum is the graph's memoized structural Summary (vertex/edge counts,
	// descending degree sequence, sorted per-label counts), shared with
	// the verification engine; its SubsumedBy supplies every dominance
	// check except the label-pair one.
	sum *graph.Summary
	// pairs holds per-label-pair edge counts, sorted by key.
	pairs []pairCount
}

type pairCount struct {
	key   uint64 // min label << 32 | max label
	count int32
}

// Of computes the fingerprint of g. It runs on every query and every
// cache admission, so it is kept allocation-lean: everything except the
// label-pair counts is the graph's memoized Summary (computed once per
// graph, shared with the verification engine), and the label-pair counts
// iterate adjacency directly — no materialized edge list, no maps.
func Of(g *graph.Graph) *Fingerprint {
	nv := g.NumVertices()
	f := &Fingerprint{sum: g.Summary()}

	keys := make([]uint64, 0, g.NumEdges())
	for u := 0; u < nv; u++ {
		lu := g.Label(u)
		for _, v := range g.Neighbors(u) {
			if int32(u) >= v {
				continue // each undirected edge once
			}
			la, lb := lu, g.Label(int(v))
			if la > lb {
				la, lb = lb, la
			}
			keys = append(keys, uint64(la)<<32|uint64(lb))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		f.pairs = append(f.pairs, pairCount{keys[i], int32(j - i)})
		i = j
	}
	return f
}

// Vertices returns |V|.
func (f *Fingerprint) Vertices() int { return f.sum.Vertices() }

// Edges returns |E|.
func (f *Fingerprint) Edges() int { return f.sum.Edges() }

// SubsumedBy reports whether every fingerprint component of f is
// dominated by o's — a necessary condition for the underlying graph of f
// being subgraph-isomorphic to that of o. The size, degree-sequence and
// per-label dominance checks are the Summary's own; the fingerprint adds
// the per-label-pair edge counts (monotone like the rest: an embedding
// maps each pattern edge onto a target edge with the same label pair).
func (f *Fingerprint) SubsumedBy(o *Fingerprint) bool {
	if !f.sum.SubsumedBy(o.sum) {
		return false
	}
	i, j := 0, 0
	for i < len(f.pairs) {
		if j == len(o.pairs) || f.pairs[i].key < o.pairs[j].key {
			return false
		}
		if f.pairs[i].key > o.pairs[j].key {
			j++
			continue
		}
		if f.pairs[i].count > o.pairs[j].count {
			return false
		}
		i++
		j++
	}
	return true
}

// SameSize reports whether f and o describe graphs with identical vertex
// and edge counts — with SubsumedBy in one direction this witnesses the
// "same number of nodes and edges" test of the paper's exact-match optimal
// case (§6.3).
func (f *Fingerprint) SameSize(o *Fingerprint) bool {
	return f.sum.Vertices() == o.sum.Vertices() && f.sum.Edges() == o.sum.Edges()
}
