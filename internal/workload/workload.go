// Package workload synthesizes the query workloads of the paper's
// evaluation (§7.1).
//
// Type A workloads extract each query by a BFS from a randomly selected
// node of a randomly selected dataset graph, with either Uniform (U) or
// Zipf (Z, α=1.4) distributions for the two selections; the paper's
// categories "UU", "ZU" and "ZZ" name the (graph, node) distribution
// pair. Query sizes are drawn uniformly from {4, 8, 12, 16, 20} edges.
//
// Type B workloads mix queries from two pre-built pools — one whose
// queries have non-empty answers against the initial dataset (random-walk
// extracted), and one of "no-answer" queries (random-walk extracted, then
// relabelled until the query keeps a non-empty candidate set but an empty
// answer set). A biased coin picks the pool (no-answer probability 0%,
// 20% or 50%), then a Zipf draw picks the query within the pool, so
// popular queries repeat — the cache-hit-friendly skew the paper relies
// on.
package workload

import (
	"fmt"
	"math/rand"

	"gcplus/internal/feature"
	"gcplus/internal/graph"
	"gcplus/internal/randx"
	"gcplus/internal/subiso"
)

// DefaultSizes are the paper's query sizes in edges.
var DefaultSizes = []int{4, 8, 12, 16, 20}

// DefaultAlpha is the paper's Zipf exponent.
const DefaultAlpha = 1.4

// Dist selects a sampling distribution for Type A.
type Dist uint8

const (
	// Uniform selection.
	Uniform Dist = iota
	// Zipf selection with the workload's Alpha.
	Zipf
)

// String returns "U" or "Z".
func (d Dist) String() string {
	if d == Zipf {
		return "Z"
	}
	return "U"
}

// Workload is a named sequence of query graphs.
type Workload struct {
	// Name is the paper's label: "UU", "ZU", "ZZ", "0%", "20%", "50%".
	Name string
	// Queries in submission order.
	Queries []*graph.Graph
}

// TypeAConfig parameterizes Type A generation.
type TypeAConfig struct {
	// Queries is the workload length (paper: 10,000).
	Queries int
	// Sizes are the query sizes in edges (default DefaultSizes).
	Sizes []int
	// GraphDist and NodeDist choose source graph and start node.
	GraphDist, NodeDist Dist
	// Alpha is the Zipf exponent (default 1.4).
	Alpha float64
	// Seed drives generation.
	Seed int64
}

// TypeA generates a Type A workload over the initial dataset graphs.
func TypeA(dataset []*graph.Graph, cfg TypeAConfig) (*Workload, error) {
	if len(dataset) == 0 {
		return nil, fmt.Errorf("workload: empty dataset")
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("workload: Queries must be positive, got %d", cfg.Queries)
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	rng := randx.New(cfg.Seed)
	var graphZipf *randx.Zipf
	if cfg.GraphDist == Zipf {
		graphZipf = randx.MustZipf(len(dataset), cfg.Alpha)
	}
	w := &Workload{
		Name:    cfg.GraphDist.String() + cfg.NodeDist.String(),
		Queries: make([]*graph.Graph, cfg.Queries),
	}
	for i := range w.Queries {
		var src *graph.Graph
		if graphZipf != nil {
			src = dataset[graphZipf.Sample(rng)]
		} else {
			src = dataset[rng.Intn(len(dataset))]
		}
		var start int
		if cfg.NodeDist == Zipf {
			z := randx.MustZipf(src.NumVertices(), cfg.Alpha)
			start = z.Sample(rng)
		} else {
			start = rng.Intn(src.NumVertices())
		}
		size := cfg.Sizes[rng.Intn(len(cfg.Sizes))]
		q := bfsQuery(src, start, size)
		q.SetName(fmt.Sprintf("%s-q%d", w.Name, i))
		w.Queries[i] = q
	}
	return w, nil
}

// bfsQuery extracts a connected query of up to maxEdges edges: a BFS from
// start where each newly reached node brings every edge connecting it to
// already-visited nodes, until the size is reached (§7.1 Type A rules).
//
// The extraction is deterministic in (g, start, maxEdges) — neighbours are
// visited in adjacency order, as in the paper, which does not randomize
// the BFS. Determinism is what makes repeated (graph, node) selections
// yield *identical* queries (the exact-match cache hits the paper counts)
// and makes different sizes from the same start form prefix-containment
// chains (its subgraph/supergraph hits).
func bfsQuery(g *graph.Graph, start, maxEdges int) *graph.Graph {
	b := graph.NewBuilder()
	idx := map[int]int{start: b.AddVertex(g.Label(start))}
	visited := []int{start}
	queue := []int{start}
	edges := 0
	for len(queue) > 0 && edges < maxEdges {
		v := queue[0]
		queue = queue[1:]
		for _, w32 := range g.Neighbors(v) {
			if edges >= maxEdges {
				break
			}
			w := int(w32)
			if _, seen := idx[w]; seen {
				continue
			}
			wi := b.AddVertex(g.Label(w))
			idx[w] = wi
			// all edges of w into the visited set
			for _, u := range visited {
				if g.HasEdge(w, u) && edges < maxEdges {
					b.AddEdge(wi, idx[u])
					edges++
				}
			}
			visited = append(visited, w)
			queue = append(queue, w)
		}
	}
	return b.MustBuild()
}

// randomWalkQuery extracts a connected query of up to maxEdges edges by a
// random walk from start, adding each first-traversed edge (§7.1 Type B
// rules). Walks that stall (all neighbours exhausted repeatedly) return
// early with fewer edges.
func randomWalkQuery(rng *rand.Rand, g *graph.Graph, start, maxEdges int) *graph.Graph {
	b := graph.NewBuilder()
	idx := map[int]int{start: b.AddVertex(g.Label(start))}
	type key [2]int
	taken := map[key]bool{}
	cur := start
	edges := 0
	for steps := 0; edges < maxEdges && steps < 50*maxEdges; steps++ {
		ns := g.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		next := int(ns[rng.Intn(len(ns))])
		a, c := cur, next
		if a > c {
			a, c = c, a
		}
		if !taken[key{a, c}] {
			taken[key{a, c}] = true
			ni, seen := idx[next]
			if !seen {
				ni = b.AddVertex(g.Label(next))
				idx[next] = ni
			}
			b.AddEdge(idx[cur], ni)
			edges++
		}
		cur = next
	}
	return b.MustBuild()
}

// TypeBConfig parameterizes Type B generation.
type TypeBConfig struct {
	// Queries is the workload length.
	Queries int
	// Sizes are the query sizes in edges.
	Sizes []int
	// PoolSize is the per-size positive pool size (paper: 10,000 total).
	PoolSize int
	// NoAnswerPoolSize is the per-size no-answer pool size (paper: 3,000
	// total).
	NoAnswerPoolSize int
	// NoAnswerProb is the biased coin's no-answer probability
	// (0, 0.2, 0.5).
	NoAnswerProb float64
	// Alpha is the Zipf exponent for in-pool selection.
	Alpha float64
	// Seed drives generation.
	Seed int64
	// Verifier decides answer emptiness when building the pools
	// (default VF2+).
	Verifier subiso.Algorithm
}

// TypeB generates a Type B workload over the initial dataset graphs.
func TypeB(dataset []*graph.Graph, cfg TypeBConfig) (*Workload, error) {
	if len(dataset) == 0 {
		return nil, fmt.Errorf("workload: empty dataset")
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("workload: Queries must be positive, got %d", cfg.Queries)
	}
	if cfg.NoAnswerProb < 0 || cfg.NoAnswerProb > 1 {
		return nil, fmt.Errorf("workload: NoAnswerProb out of [0,1]: %g", cfg.NoAnswerProb)
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 100
	}
	if cfg.NoAnswerPoolSize <= 0 {
		cfg.NoAnswerPoolSize = cfg.PoolSize * 3 / 10
	}
	if cfg.Verifier == nil {
		cfg.Verifier = subiso.VF2Plus{}
	}
	rng := randx.New(cfg.Seed)

	// Node universe: uniform over all nodes of all dataset graphs.
	type site struct{ g, v int }
	var sites []site
	labelPool := make([]graph.Label, 0, 1024)
	for gi, g := range dataset {
		for v := 0; v < g.NumVertices(); v++ {
			sites = append(sites, site{gi, v})
			labelPool = append(labelPool, g.Label(v))
		}
	}
	fps := make([]*feature.Fingerprint, len(dataset))
	for i, g := range dataset {
		fps[i] = feature.Of(g)
	}
	hasAnswer := func(q *graph.Graph) bool {
		qf := feature.Of(q)
		m := subiso.CompileSub(q, cfg.Verifier) // one compile, many targets
		for i, g := range dataset {
			if qf.SubsumedBy(fps[i]) && m.Contains(g) {
				return true
			}
		}
		return false
	}
	hasCandidates := func(q *graph.Graph) bool {
		qf := feature.Of(q)
		for i := range dataset {
			if qf.SubsumedBy(fps[i]) {
				return true
			}
		}
		return false
	}

	drawPositive := func() (*graph.Graph, error) {
		for tries := 0; tries < 1000; tries++ {
			s := sites[rng.Intn(len(sites))]
			size := cfg.Sizes[rng.Intn(len(cfg.Sizes))]
			q := randomWalkQuery(rng, dataset[s.g], s.v, size)
			if q.NumEdges() > 0 {
				return q, nil // extracted from a dataset graph ⇒ answer non-empty
			}
		}
		return nil, fmt.Errorf("workload: dataset graphs have no extractable edges")
	}

	positives := make([]*graph.Graph, cfg.PoolSize)
	for i := range positives {
		q, err := drawPositive()
		if err != nil {
			return nil, err
		}
		positives[i] = q
	}

	noAnswers := make([]*graph.Graph, 0, cfg.NoAnswerPoolSize)
	for rounds := 0; len(noAnswers) < cfg.NoAnswerPoolSize; rounds++ {
		if rounds > 50*cfg.NoAnswerPoolSize {
			return nil, fmt.Errorf("workload: could not synthesize %d no-answer queries (label space too uniform?)", cfg.NoAnswerPoolSize)
		}
		q, err := drawPositive()
		if err != nil {
			return nil, err
		}
		// relabel until candidate set non-empty but answer empty
		for attempt := 0; attempt < 200; attempt++ {
			b := graph.NewBuilder()
			for v := 0; v < q.NumVertices(); v++ {
				b.AddVertex(labelPool[rng.Intn(len(labelPool))])
			}
			for _, e := range q.EdgeList() {
				b.AddEdge(int(e.U), int(e.V))
			}
			cand := b.MustBuild()
			if hasCandidates(cand) && !hasAnswer(cand) {
				noAnswers = append(noAnswers, cand)
				break
			}
		}
	}

	posZipf := randx.MustZipf(len(positives), cfg.Alpha)
	negZipf := randx.MustZipf(len(noAnswers), cfg.Alpha)
	w := &Workload{
		Name:    fmt.Sprintf("%d%%", int(cfg.NoAnswerProb*100)),
		Queries: make([]*graph.Graph, cfg.Queries),
	}
	for i := range w.Queries {
		var q *graph.Graph
		if rng.Float64() < cfg.NoAnswerProb {
			q = noAnswers[negZipf.Sample(rng)]
		} else {
			q = positives[posZipf.Sample(rng)]
		}
		// queries repeat by design; clone so per-query names are unique
		qc := q.Clone()
		qc.SetName(fmt.Sprintf("%s-q%d", w.Name, i))
		w.Queries[i] = qc
	}
	return w, nil
}
