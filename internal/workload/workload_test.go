package workload

import (
	"testing"

	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/synthetic"
)

func testDataset(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	cfg := synthetic.Default().WithGraphs(n)
	cfg.MeanVertices = 20
	cfg.StdVertices = 6
	cfg.MaxVertices = 40
	gs, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func TestTypeAValidation(t *testing.T) {
	ds := testDataset(t, 5)
	if _, err := TypeA(nil, TypeAConfig{Queries: 5}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := TypeA(ds, TypeAConfig{Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestTypeACategories(t *testing.T) {
	ds := testDataset(t, 30)
	cases := []struct {
		gd, nd Dist
		name   string
	}{
		{Uniform, Uniform, "UU"},
		{Zipf, Uniform, "ZU"},
		{Zipf, Zipf, "ZZ"},
	}
	for _, c := range cases {
		w, err := TypeA(ds, TypeAConfig{Queries: 60, GraphDist: c.gd, NodeDist: c.nd, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != c.name {
			t.Errorf("Name = %q, want %q", w.Name, c.name)
		}
		if len(w.Queries) != 60 {
			t.Fatalf("%s: %d queries", c.name, len(w.Queries))
		}
		for i, q := range w.Queries {
			if err := q.Validate(); err != nil {
				t.Fatalf("%s query %d invalid: %v", c.name, i, err)
			}
			if q.NumEdges() == 0 || q.NumEdges() > 20 {
				t.Fatalf("%s query %d has %d edges", c.name, i, q.NumEdges())
			}
			if !q.Connected() {
				t.Fatalf("%s query %d disconnected", c.name, i)
			}
		}
	}
}

func TestTypeAQueriesAreSubgraphsOfSource(t *testing.T) {
	ds := testDataset(t, 20)
	w, err := TypeA(ds, TypeAConfig{Queries: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	algo := subiso.VF2Plus{}
	for i, q := range w.Queries {
		found := false
		for _, g := range ds {
			if algo.Contains(q, g) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d matches no dataset graph (extraction broken)", i)
		}
	}
}

func TestTypeASizesRespected(t *testing.T) {
	ds := testDataset(t, 10)
	w, err := TypeA(ds, TypeAConfig{Queries: 100, Sizes: []int{4}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		if q.NumEdges() > 4 {
			t.Fatalf("query %d has %d edges, cap 4", i, q.NumEdges())
		}
	}
}

func TestTypeAZipfSkewsSourceGraphs(t *testing.T) {
	// With Zipf graph selection, early dataset graphs must be used much
	// more often. Track usage via label statistics proxy: instead,
	// regenerate with single-graph equality checks: make dataset graphs
	// distinguishable by size.
	ds := testDataset(t, 50)
	wz, err := TypeA(ds, TypeAConfig{Queries: 400, GraphDist: Zipf, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wu, err := TypeA(ds, TypeAConfig{Queries: 400, GraphDist: Uniform, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// proxy: count exact-duplicate queries; the Zipf workload revisits
	// the same few source graphs and nodes far more often.
	dup := func(w *Workload) int {
		seen := map[string]int{}
		for _, q := range w.Queries {
			key := fingerprintKey(q)
			seen[key]++
		}
		d := 0
		for _, c := range seen {
			if c > 1 {
				d += c - 1
			}
		}
		return d
	}
	if dup(wz) <= dup(wu) {
		t.Errorf("Zipf workload no more repetitive than uniform: %d vs %d", dup(wz), dup(wu))
	}
}

func fingerprintKey(g *graph.Graph) string {
	out := make([]byte, 0, 64)
	out = append(out, byte(g.NumVertices()), byte(g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		out = append(out, byte(g.Label(v)), byte(g.Degree(v)))
	}
	return string(out)
}

func TestTypeADeterminism(t *testing.T) {
	ds := testDataset(t, 10)
	a, err := TypeA(ds, TypeAConfig{Queries: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TypeA(ds, TypeAConfig{Queries: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if fingerprintKey(a.Queries[i]) != fingerprintKey(b.Queries[i]) {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
}

func TestTypeBValidation(t *testing.T) {
	ds := testDataset(t, 5)
	if _, err := TypeB(nil, TypeBConfig{Queries: 5}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := TypeB(ds, TypeBConfig{Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := TypeB(ds, TypeBConfig{Queries: 5, NoAnswerProb: 1.5}); err == nil {
		t.Error("bad probability accepted")
	}
}

func TestTypeBWorkloads(t *testing.T) {
	ds := testDataset(t, 25)
	oracle := subiso.VF2Plus{}
	hasAnswer := func(q *graph.Graph) bool {
		for _, g := range ds {
			if oracle.Contains(q, g) {
				return true
			}
		}
		return false
	}
	for _, prob := range []float64{0, 0.2, 0.5} {
		w, err := TypeB(ds, TypeBConfig{
			Queries: 60, PoolSize: 30, NoAnswerPoolSize: 10,
			NoAnswerProb: prob, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantName := map[float64]string{0: "0%", 0.2: "20%", 0.5: "50%"}[prob]
		if w.Name != wantName {
			t.Errorf("Name = %q, want %q", w.Name, wantName)
		}
		empty := 0
		for i, q := range w.Queries {
			if err := q.Validate(); err != nil {
				t.Fatalf("%s query %d invalid: %v", w.Name, i, err)
			}
			if !hasAnswer(q) {
				empty++
			}
		}
		frac := float64(empty) / float64(len(w.Queries))
		if prob == 0 && empty != 0 {
			t.Errorf("0%% workload contains %d no-answer queries", empty)
		}
		if prob > 0 && (frac < prob-0.2 || frac > prob+0.2) {
			t.Errorf("%s workload: no-answer fraction %.2f, want ≈%.2f", w.Name, frac, prob)
		}
	}
}

func TestTypeBQueriesRepeat(t *testing.T) {
	// Zipf pool selection must produce repeated queries — the skew that
	// makes caching worthwhile.
	ds := testDataset(t, 25)
	w, err := TypeB(ds, TypeBConfig{Queries: 120, PoolSize: 40, NoAnswerPoolSize: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, q := range w.Queries {
		seen[fingerprintKey(q)]++
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 3 {
		t.Errorf("most popular query repeated only %d times", max)
	}
}

func TestDistString(t *testing.T) {
	if Uniform.String() != "U" || Zipf.String() != "Z" {
		t.Fatal("Dist.String wrong")
	}
}
