package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. Set exists so a
// serving layer can mirror a counter that is authoritatively tracked
// elsewhere (a shard-owned lifetime counter snapshotted at scrape time);
// callers must only ever Set monotonically non-decreasing values.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter with a snapshot of its source.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Labels name one instrument's label set, e.g. {"shard": "0"}. Labels
// are rendered sorted by name, so two equal maps always produce the
// same series identity.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith renders the label set with one extra pair appended (the
// histogram writer's le label).
func renderWith(rendered, name, value string) string {
	if rendered == "" {
		return "{" + name + `="` + value + `"}`
	}
	return rendered[:len(rendered)-1] + "," + name + `="` + value + `"}`
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// metric kinds, matching the Prometheus TYPE keywords.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// sample is one registered instrument under a family.
type sample struct {
	labels string // pre-rendered
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every sample sharing a metric name; HELP and TYPE are
// emitted once per family, as the exposition format requires.
type family struct {
	name    string
	help    string
	kind    string
	samples []*sample
}

// Registry holds registered instruments and renders them in the
// Prometheus text exposition format (version 0.0.4). Registration
// happens at boot; rendering may run concurrently with recording.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (r *Registry) add(name, help, kind string, s *sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	for _, prev := range f.samples {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.samples = append(f.samples, s)
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, &sample{labels: labels.render(), c: c})
	return c
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, &sample{labels: labels.render(), g: g})
	return g
}

// Histogram registers and returns a new histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := NewHistogram()
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// RegisterHistogram attaches an existing histogram (e.g. one owned by a
// runtime shard) to the registry under the given name and labels.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.add(name, help, kindHistogram, &sample{labels: labels.render(), h: h})
}

// WriteProm renders every registered family in the Prometheus text
// exposition format. Families appear in registration order, samples in
// registration order within a family.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
			case kindHistogram:
				les, cums, total, sum := s.h.promBuckets()
				for i, le := range les {
					fmt.Fprintf(&b, "%s_bucket%s %d",
						f.name, renderWith(s.labels, "le", formatFloat(le)), cums[i])
					writeExemplar(&b, s.h, i)
					b.WriteByte('\n')
				}
				fmt.Fprintf(&b, "%s_bucket%s %d", f.name, renderWith(s.labels, "le", "+Inf"), total)
				writeExemplar(&b, s.h, len(les))
				b.WriteByte('\n')
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, total)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeExemplar appends the OpenMetrics exemplar suffix to a bucket
// line — ` # {trace_id="<16 hex>"} <value>` — when the histogram holds
// an exemplar for that exposition bucket.
func writeExemplar(b *strings.Builder, h *Histogram, slot int) {
	id, sec, ok := h.exemplar(slot)
	if !ok {
		return
	}
	fmt.Fprintf(b, ` # {trace_id="%016x"} %s`, id, formatFloat(sec))
}

// escapeHelp escapes a HELP string per the text exposition format:
// backslashes and newlines only (quotes stay literal in HELP lines).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
