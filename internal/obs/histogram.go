// Package obs is GC+'s dependency-free observability core: log-bucketed
// latency histograms with O(1) concurrent recording and exact-bound
// percentile extraction, monotonic counters, gauges, and a registry that
// renders the Prometheus text exposition format.
//
// The paper's evaluation is built on per-stage measurement (Figures 4–6
// report per-stage means); a serving system additionally needs tail
// latencies and live gauges. The histogram here is the single latency
// representation shared by the serving layer (/metrics, the slow-query
// log) and the benchmark harness (gcbench -throughput p50/p95/p99), so
// a percentile on a dashboard and a percentile in a BENCH_*.json came
// from the identical code path.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing: values are nanoseconds bucketed log-linearly —
// 2^subBits sub-buckets per power of two, so every bucket's width is at
// most 1/2^subBits (12.5%) of its lower bound. Values below 2^subBits ns
// get exact unit buckets. The scheme is the HdrHistogram layout reduced
// to its core: index arithmetic only (one bits.Len64, no floats, no
// branches on magnitude tables), O(1) per record.
const (
	subBits    = 3
	subBuckets = 1 << subBits // 8
	// numBuckets covers the full non-negative int64 nanosecond range:
	// 8 unit buckets + 8 sub-buckets per octave for octaves 3..62.
	numBuckets = subBuckets + (63-subBits)*subBuckets
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	o := bits.Len64(v) - 1 // floor(log2 v), ≥ subBits
	sub := (v >> (uint(o) - subBits)) & (subBuckets - 1)
	return subBuckets + (o-subBits)*subBuckets + int(sub)
}

// bucketUpperNS returns the largest nanosecond value the bucket holds —
// the exact bound Quantile reports.
func bucketUpperNS(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	block := uint(idx-subBuckets) / subBuckets
	sub := uint64(idx-subBuckets) % subBuckets
	return (subBuckets+sub+1)<<block - 1
}

// Histogram is a fixed-size log-bucketed latency histogram. Recording is
// a single atomic add per bucket plus one for the running sum — O(1),
// allocation-free, and safe for concurrent use (shard owner goroutines
// and benchmark clients record into the same histogram a scrape reads).
//
// Reads (Count, Quantile, ForEachBucket) are lock-free snapshots of the
// atomics; under concurrent recording the bucket counts, total count and
// sum may each lag by a handful of in-flight observations, which is the
// usual — and acceptable — scrape-time skew of live counters.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	// Exemplars: one slot per exposition bucket, holding the observed
	// value (ns) and the trace id of the most recent trace-sampled
	// observation that landed there. Attach-only (SetExemplar), read by
	// the exposition writer.
	exVal [promSlots]atomic.Uint64
	exID  [promSlots]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// ObserveSeconds records one duration given in seconds. Hostile floats
// are tamed before the int64 conversion (whose result is otherwise
// implementation-defined in Go): NaN and negatives record as 0, values
// beyond the int64 nanosecond range saturate at the top bucket. The
// histogram therefore never holds a count in an undefined bucket no
// matter what arithmetic produced s.
func (h *Histogram) ObserveSeconds(s float64) {
	if math.IsNaN(s) || s <= 0 {
		h.Observe(0)
		return
	}
	if s >= float64(math.MaxInt64)/float64(time.Second) {
		h.Observe(time.Duration(math.MaxInt64))
		return
	}
	h.Observe(time.Duration(s * float64(time.Second)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumSeconds returns the sum of all observations in seconds.
func (h *Histogram) SumSeconds() float64 {
	return float64(h.sumNS.Load()) / float64(time.Second)
}

// MeanSeconds returns the mean observation in seconds (0 when empty).
func (h *Histogram) MeanSeconds() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNS.Load()) / float64(n) / float64(time.Second)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) in seconds, as an
// exact bucket bound: the true quantile value v satisfies
// lower(bucket) ≤ v ≤ returned bound, so the reported figure is never
// below the true value by more than one bucket width (≤ 12.5% of the
// value).
//
// Edge cases are pinned: an empty histogram yields 0 for every q; q
// outside (0, 1) clamps (q ≤ 0 → minimum observation's bound, q ≥ 1 →
// maximum's); a NaN q reads as 1 (the max) — the result is always a
// finite, non-negative bucket bound, so no caller can leak NaN into
// /stats JSON or the Prometheus exposition through this path.
func (h *Histogram) Quantile(q float64) float64 {
	// Rank against the sum of bucket counts, not h.count: under
	// concurrent recording the two can differ transiently, and ranking
	// against the buckets themselves keeps the walk self-consistent.
	var total int64
	var snap [numBuckets]int64
	for i := range snap {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	// NaN fails every comparison, so test it explicitly — a bare
	// clamp pair would let it through to the int64 conversion below,
	// whose result for NaN is implementation-defined.
	if math.IsNaN(q) || q > 1 {
		q = 1
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(total) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range snap {
		cum += snap[i]
		if cum >= rank {
			return float64(bucketUpperNS(i)) / float64(time.Second)
		}
	}
	return float64(bucketUpperNS(numBuckets-1)) / float64(time.Second)
}

// ForEachBucket visits the non-empty buckets in ascending order with
// their upper bound (seconds) and count. Used by the exposition writer
// and by tests asserting bucket totals.
func (h *Histogram) ForEachBucket(fn func(upperSec float64, count int64)) {
	for i := 0; i < numBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			fn(float64(bucketUpperNS(i))/float64(time.Second), c)
		}
	}
}

// Exposition bucket ladder: the fine internal buckets would make every
// scrape carry ~500 series per histogram, so the Prometheus rendering
// coarsens to one cumulative bucket per power of two from 128ns to ~34s
// (29 bounds plus +Inf). The fine octave sub-buckets align exactly with
// these bounds, so no observation is ever attributed to the wrong
// exposition bucket.
const (
	promMinExp = 7  // 2^7 ns = 128ns
	promMaxExp = 35 // 2^35 ns ≈ 34.36s
	// promSlots is one exemplar slot per exposition bucket: the 29
	// finite bounds plus +Inf.
	promSlots = promMaxExp - promMinExp + 2
)

// SetExemplar cites traceID as the exemplar for the exposition bucket a
// d-long observation lands in — the /metrics → /debug/traces bridge: an
// operator who spots a suspect bucket follows its exemplar's trace id
// to a full trace. Attach-only: callers record the duration through
// their existing Observe path; SetExemplar never touches the counts.
// Last writer per bucket wins, so each bucket cites a recent
// representative. A zero traceID is ignored.
func (h *Histogram) SetExemplar(d time.Duration, traceID uint64) {
	if h == nil || traceID == 0 {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Smallest exp with 2^exp > ns is bits.Len64(ns); clamping covers
	// values below the first bound and at-or-above the last (+Inf).
	slot := bits.Len64(uint64(ns)) - promMinExp
	if slot < 0 {
		slot = 0
	}
	if slot > promSlots-1 {
		slot = promSlots - 1
	}
	// Two independent stores: a concurrent writer to the same slot can
	// transiently pair one observation's value with another's id, but
	// both came from the same bucket, so the exemplar stays in range.
	h.exVal[slot].Store(uint64(ns))
	h.exID[slot].Store(traceID)
}

// exemplar returns the slot's exemplar trace id and value (seconds);
// ok is false when the slot never received one.
func (h *Histogram) exemplar(slot int) (traceID uint64, valSec float64, ok bool) {
	if slot < 0 || slot >= promSlots {
		return 0, 0, false
	}
	id := h.exID[slot].Load()
	if id == 0 {
		return 0, 0, false
	}
	return id, float64(h.exVal[slot].Load()) / float64(time.Second), true
}

// promBuckets returns the cumulative exposition buckets (upper bounds in
// seconds, cumulative counts), the total count and the sum in seconds.
// The +Inf bucket is implicit: its cumulative count is the returned
// total.
func (h *Histogram) promBuckets() (les []float64, cums []int64, total int64, sumSec float64) {
	var snap [numBuckets]int64
	for i := range snap {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	sumSec = float64(h.sumNS.Load()) / float64(time.Second)
	les = make([]float64, 0, promMaxExp-promMinExp+1)
	cums = make([]int64, 0, promMaxExp-promMinExp+1)
	var cum int64
	idx := 0
	for exp := promMinExp; exp <= promMaxExp; exp++ {
		bound := uint64(1) << uint(exp)
		// Fine buckets are ascending; accumulate every bucket whose
		// values are < bound (upper bound bound-1 ≤ bound-1 < bound).
		for idx < numBuckets && bucketUpperNS(idx) < bound {
			cum += snap[idx]
			idx++
		}
		les = append(les, float64(bound)/float64(time.Second))
		cums = append(cums, cum)
	}
	return les, cums, total, sumSec
}
