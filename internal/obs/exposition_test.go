package obs

import (
	"strings"
	"testing"
	"time"
)

// Exposition-grammar tests: hostile HELP strings, hostile label values
// and the exemplar suffix must all render lines the text-format grammar
// accepts — a scraper must never see a broken line no matter what
// strings instrument registration fed in.

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("gc_hostile_help_total", "line one\nline \\two", nil)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validateExposition(t, out)
	want := `# HELP gc_hostile_help_total line one\nline \\two`
	if !strings.Contains(out, want) {
		t.Fatalf("HELP not escaped, want %q in:\n%s", want, out)
	}
	// The raw newline must not have survived: every line is either a
	// comment or a sample, never a bare continuation.
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d broken by unescaped HELP: %q", ln+1, line)
		}
	}
}

func TestHostileLabelValues(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("gc_hostile_label", "Hostile labels.", Labels{
		"path": "a\\b\"c\nd",
	})
	g.Set(1)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validateExposition(t, out)
	if !strings.Contains(out, `gc_hostile_label{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gc_ex_seconds", "Exemplars.", Labels{"shard": "0"})
	// One observation per interesting bucket, each tagged with a trace.
	h.Observe(3 * time.Millisecond)
	h.SetExemplar(3*time.Millisecond, 0xdeadbeef)
	h.Observe(0) // below the first exposition bound
	h.SetExemplar(0, 0x1)
	h.Observe(time.Duration(1) << 40) // past the last bound: +Inf slot
	h.SetExemplar(time.Duration(1)<<40, 0x2)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validateExposition(t, out)

	for _, want := range []string{
		` # {trace_id="00000000deadbeef"} 0.003`,
		`le="+Inf"} 3 # {trace_id="0000000000000002"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing exemplar %q:\n%s", want, out)
		}
	}
	// The exemplar must ride the bucket that holds the observation: 3ms
	// lands in the (2^21 ns, 2^22 ns] bound ≈ 0.004194304s.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `trace_id="00000000deadbeef"`) &&
			!strings.Contains(line, `le="0.004194304"`) {
			t.Fatalf("exemplar on wrong bucket: %q", line)
		}
	}

	// Attach-only and nil/zero safety.
	if h.Count() != 3 {
		t.Fatalf("SetExemplar changed count: %d", h.Count())
	}
	var nilH *Histogram
	nilH.SetExemplar(time.Second, 1) // must not panic
	h.SetExemplar(time.Second, 0)    // zero id ignored
	if id, _, ok := h.exemplar(bucketSlotForTest(time.Second)); ok && id == 0 {
		t.Fatal("zero trace id retained")
	}
}

// bucketSlotForTest mirrors SetExemplar's slot arithmetic for assertions.
func bucketSlotForTest(d time.Duration) int {
	h := NewHistogram()
	h.SetExemplar(d, 0xabc)
	for i := 0; i < promSlots; i++ {
		if id, _, ok := h.exemplar(i); ok && id == 0xabc {
			return i
		}
	}
	return -1
}
