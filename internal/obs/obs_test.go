package obs

import (
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds checks, over the whole value range, that every
// value lands in a bucket whose bounds contain it and that buckets are
// contiguous and ascending.
func TestBucketIndexBounds(t *testing.T) {
	prevUpper := int64(-1)
	for idx := 0; idx < numBuckets; idx++ {
		upper := int64(bucketUpperNS(idx))
		if upper <= prevUpper {
			t.Fatalf("bucket %d upper %d not above previous %d", idx, upper, prevUpper)
		}
		// The upper bound itself must map back to the bucket, and the
		// next value must map to the next bucket.
		if got := bucketIndex(uint64(upper)); got != idx {
			t.Fatalf("bucketIndex(upper=%d) = %d, want %d", upper, got, idx)
		}
		if idx+1 < numBuckets {
			if got := bucketIndex(uint64(upper + 1)); got != idx+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", upper+1, got, idx+1)
			}
		}
		prevUpper = upper
	}
}

func TestBucketIndexRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := uint64(rng.Int63())
		idx := bucketIndex(v)
		upper := bucketUpperNS(idx)
		if v > upper {
			t.Fatalf("value %d above its bucket %d upper %d", v, idx, upper)
		}
		if idx > 0 && v <= bucketUpperNS(idx-1) {
			t.Fatalf("value %d at or below previous bucket upper %d", v, bucketUpperNS(idx-1))
		}
	}
}

// TestQuantileExactBound: the histogram quantile must be an upper bound
// of the true (sorted) quantile, and no more than one bucket width
// (12.5%) above it.
func TestQuantileExactBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	vals := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over 1µs..1s, the latency range that matters.
		v := time.Duration(1000 * (1 << uint(rng.Intn(20))))
		v += time.Duration(rng.Int63n(int64(v)))
		h.Observe(v)
		vals = append(vals, v.Seconds())
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(q*float64(len(vals))+0.9999999999) - 1
		truth := vals[rank]
		got := h.Quantile(q)
		if got < truth {
			t.Errorf("q=%v: histogram %v below true value %v", q, got, truth)
		}
		if got > truth*(1+1.0/subBuckets)+1e-9 {
			t.Errorf("q=%v: histogram %v more than one bucket above true value %v", q, got, truth)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := h.MeanSeconds(); got != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", got)
	}
	h.Observe(-time.Second) // clamps to 0
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("negative observation quantile = %v, want 0", got)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	h.Observe(time.Millisecond)
	if got := h.Quantile(1.0); got < 0.001 {
		t.Fatalf("q=1 = %v, want ≥ 1ms", got)
	}
	if got := h.Quantile(0); got > 0 {
		t.Fatalf("q=0 = %v, want bucket 0 bound", got)
	}
}

// TestQuantileHostileInputs pins Quantile against inputs outside (0, 1):
// whatever q a caller computes — including NaN from a 0/0 upstream — the
// result must be a finite, non-negative bucket bound.
func TestQuantileHostileInputs(t *testing.T) {
	h := NewHistogram()
	// Empty histogram: every q, however hostile, reads 0.
	for _, q := range []float64{math.NaN(), -1, 0, 0.5, 1, 2, math.Inf(1), math.Inf(-1)} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	lo, hi := h.Quantile(0), h.Quantile(1)
	for _, q := range []float64{math.NaN(), -1, -0.001, 2, 1000, math.Inf(1), math.Inf(-1)} {
		got := h.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("Quantile(%v) = %v, want finite non-negative", q, got)
		}
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v outside observed bound range [%v, %v]", q, got, lo, hi)
		}
	}
	// NaN and +Inf clamp to the max, negatives to the min.
	for _, q := range []float64{math.NaN(), 2, math.Inf(1)} {
		if got := h.Quantile(q); got != hi {
			t.Fatalf("Quantile(%v) = %v, want max bound %v", q, got, hi)
		}
	}
	for _, q := range []float64{-1, math.Inf(-1)} {
		if got := h.Quantile(q); got != lo {
			t.Fatalf("Quantile(%v) = %v, want min bound %v", q, got, lo)
		}
	}
}

// TestObserveSecondsHostileFloats: whatever float arithmetic produced,
// recording it must leave the histogram internally consistent — counts
// land in real buckets and SumSeconds stays finite.
func TestObserveSecondsHostileFloats(t *testing.T) {
	h := NewHistogram()
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -5, 0, 1e300, 1e-12, 0.002}
	for _, s := range hostile {
		h.ObserveSeconds(s)
	}
	if h.Count() != int64(len(hostile)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(hostile))
	}
	var bucketSum int64
	h.ForEachBucket(func(upper float64, c int64) {
		if math.IsNaN(upper) || upper < 0 {
			t.Fatalf("bucket bound %v invalid", upper)
		}
		bucketSum += c
	})
	// ForEachBucket skips the zero bucket only if empty; NaN/-Inf/-5/0
	// all clamp into bucket 0, which is non-empty here, so the walk must
	// account for every observation.
	if bucketSum != h.Count() {
		t.Fatalf("bucket sum %d != count %d: an observation landed outside the bucket range", bucketSum, h.Count())
	}
	if s := h.SumSeconds(); math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		t.Fatalf("SumSeconds = %v, want finite non-negative", s)
	}
	if m := h.MeanSeconds(); math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
		t.Fatalf("MeanSeconds = %v, want finite non-negative", m)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if v := h.Quantile(q); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("Quantile(%v) = %v after hostile observations", q, v)
		}
	}
}

// TestExpositionNoNaN: the grammar regexp in validateExposition accepts a
// literal NaN sample value (Prometheus allows it), so absence of NaN from
// histogram-derived series is asserted explicitly. Histograms fed hostile
// floats must never render NaN into the exposition.
func TestExpositionNoNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gc_hostile_seconds", "Hostile inputs.", nil)
	for _, s := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 1e300, 0.004} {
		h.ObserveSeconds(s)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validateExposition(t, out)
	if strings.Contains(out, "NaN") {
		t.Fatalf("exposition contains NaN:\n%s", out)
	}
	if !strings.Contains(out, "gc_hostile_seconds_count 6") {
		t.Fatalf("exposition lost hostile observations:\n%s", out)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	// Concurrent reads must be safe (and self-consistent enough not to
	// panic or return garbage).
	for i := 0; i < 100; i++ {
		_ = h.Quantile(0.99)
		_ = h.Count()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var sum int64
	h.ForEachBucket(func(_ float64, c int64) { sum += c })
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}

// expositionLine matches one Prometheus text-format sample line. Label
// values may contain backslash escapes (\\, \", \n); a bucket line may
// end with an OpenMetrics exemplar (` # {labels} value`).
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)( # \{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"\} (-?[0-9.e+-]+|NaN|\+Inf|-Inf))?$`)

// ValidateExposition parses a Prometheus text exposition and fails on
// any malformed line. Exported to the test binary only (used by the
// serve handler tests via copy — kept here as the reference validator).
func validateExposition(t *testing.T, body string) (samples int) {
	t.Helper()
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d is not valid exposition: %q", ln+1, line)
		}
		samples++
	}
	return samples
}

func TestRegistryWriteProm(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gc_requests_total", "Total requests.", nil)
	c.Add(41)
	c.Inc()
	g := r.Gauge("gc_temperature", "Current temperature.", Labels{"room": "a"})
	g.Set(3.5)
	h := r.Histogram("gc_latency_seconds", "Latency.", Labels{"shard": "0", "stage": "query"})
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Microsecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := validateExposition(t, out)
	if samples == 0 {
		t.Fatal("no samples rendered")
	}
	for _, want := range []string{
		"# TYPE gc_requests_total counter",
		"gc_requests_total 42",
		"# TYPE gc_temperature gauge",
		`gc_temperature{room="a"} 3.5`,
		"# TYPE gc_latency_seconds histogram",
		`gc_latency_seconds_bucket{shard="0",stage="query",le="+Inf"} 3`,
		`gc_latency_seconds_count{shard="0",stage="query"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative (non-decreasing) and end at
	// the total count.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "gc_latency_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
	if last != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", last)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", Labels{"a": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", Labels{"a": "1"})
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mix_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("mix_total", "", Labels{"a": "1"})
}
